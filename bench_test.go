// Benchmarks regenerating every table and figure of the PIC paper's
// evaluation. Each benchmark runs the corresponding experiment from
// internal/bench and reports the headline quantities (speedups,
// iteration counts, traffic) as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. EXPERIMENTS.md records the
// paper-versus-measured comparison for each.
package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func BenchmarkFig2KMeansRuntimeAndTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "speedup")
		b.ReportMetric(float64(r.ICTrafficBytes)/float64(r.PICTraffic), "traffic-reduction")
		b.ReportMetric(float64(r.ICIterations), "ic-iters")
		b.ReportMetric(float64(r.TopOffIters), "topoff-iters")
	}
}

func BenchmarkFig9SmallClusterSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Rows[0].Speedup, "kmeans-speedup")
		b.ReportMetric(fig.Rows[1].Speedup, "pagerank-speedup")
		b.ReportMetric(fig.Rows[2].Speedup, "linsolve-speedup")
	}
}

func BenchmarkFig10MediumClusterSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Rows[0].Speedup, "kmeans-speedup")
		b.ReportMetric(fig.Rows[1].Speedup, "neuralnet-speedup")
		b.ReportMetric(fig.Rows[2].Speedup, "smoothing-speedup")
	}
}

func BenchmarkFig11StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			b.ReportMetric(p.Speedup, "speedup-"+itoa(p.Nodes)+"n")
		}
	}
}

func BenchmarkFig12aNeuralNetErrorVsTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig12a()
		if err != nil {
			b.Fatal(err)
		}
		icFinal, _ := r.FinalValues()
		icT, picT := r.TimeToReach(icFinal)
		if picT >= 0 && icT > 0 {
			b.ReportMetric(float64(icT)/float64(picT), "time-to-quality-ratio")
		}
		b.ReportMetric(icFinal, "ic-final-error")
	}
}

func BenchmarkFig12bKMeansErrorVsTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig12b()
		if err != nil {
			b.Fatal(err)
		}
		// Displacement at the end of each curve: both must be tiny
		// (converged); PIC's curve must end earlier.
		icEnd := r.IC.Points[len(r.IC.Points)-1].Time
		picEnd := r.PIC.Points[len(r.PIC.Points)-1].Time
		b.ReportMetric(float64(icEnd)/float64(picEnd), "convergence-time-ratio")
	}
}

func BenchmarkFig12cLinSolveErrorVsTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig12c()
		if err != nil {
			b.Fatal(err)
		}
		icFinal, _ := r.FinalValues()
		icT, picT := r.TimeToReach(icFinal * 1.01)
		if picT >= 0 && icT > 0 {
			b.ReportMetric(float64(icT)/float64(picT), "time-to-quality-ratio")
		}
	}
}

func BenchmarkTable1KMeansIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(float64(last.ICIterations), "ic-iters-largest")
		b.ReportMetric(float64(last.BEIterations), "be-iters-largest")
		if locals := last.MaxLocalIters; len(locals) > 1 {
			b.ReportMetric(float64(locals[0]), "first-be-locals")
			b.ReportMetric(float64(locals[1]), "second-be-locals")
		}
	}
}

func BenchmarkTable2KMeansTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TotalICIntermediate)/float64(r.PICIntermediate), "intermediate-reduction")
		b.ReportMetric(float64(r.TotalICModelUpdates)/float64(r.PICModelUpdates), "modelupdate-reduction")
	}
}

func BenchmarkTable3JagotaIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for j, row := range r.Rows {
			b.ReportMetric(row.DiffPercent, "jagota-diff-pct-ds"+itoa(j+1))
		}
	}
}

func BenchmarkAblationPartitionCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationPartitionCount()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.Speedup, "speedup-p"+itoa(row.Partitions))
		}
	}
}

func BenchmarkAblationGraphCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationGraphCoupling()
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		b.ReportMetric(first.Speedup, "speedup-lowest-coupling")
		b.ReportMetric(last.Speedup, "speedup-highest-coupling")
	}
}

func BenchmarkAblationLocalComputeFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationLocalFactor()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.Speedup, "speedup-f"+fmtFactor(row.Factor))
		}
	}
}

func BenchmarkAblationDegeneratePIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationDegenerate()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MaxCentroidDelta, "centroid-delta-vs-ic")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func fmtFactor(f float64) string {
	switch {
	case f >= 0.99:
		return "1"
	case f >= 0.3:
		return "1-3"
	case f >= 0.13:
		return "1-7"
	default:
		return "1-15"
	}
}

func BenchmarkAblationPartitioner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationPartitioner()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.Speedup, "speedup-"+row.Strategy)
		}
	}
}

func BenchmarkAblationNetworkModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationNetworkModel()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Speedup, "speedup-bottleneck")
		b.ReportMetric(r.Rows[1].Speedup, "speedup-maxmin")
	}
}

func BenchmarkAblationAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationAsync()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			// Metric units must not contain whitespace.
			unit := strings.ReplaceAll(row.Mode, " ", "-")
			unit = strings.ReplaceAll(unit, "+", "and")
			b.ReportMetric(row.Speedup, unit)
		}
	}
}

func BenchmarkAblationSeeding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationSeeding()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.ICIterations), "ic-iters-"+row.Seeding)
		}
	}
}

func BenchmarkAblationConvergenceRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationConvergenceRate()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.BERate, "be-rate-p"+itoa(row.Partitions))
		}
	}
}

package writable

import (
	"bytes"
	"testing"
)

// FuzzDecode exercises the decoder with arbitrary byte streams: it must
// never panic, and everything it accepts must re-encode to the bytes it
// consumed (the encoding is canonical).
func FuzzDecode(f *testing.F) {
	seeds := []Writable{
		Null{},
		Text("hello"),
		Int32(-7),
		Int64(1 << 40),
		Float64(3.14),
		Bytes{0, 1, 2},
		Vector{1.5, -2.5},
		Pair{First: Text("k"), Second: Vector{9}},
	}
	for _, w := range seeds {
		f.Add(Encode(nil, w))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		w, rest, err := Decode(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		again := Encode(nil, w)
		if !bytes.Equal(again, consumed) {
			t.Fatalf("decode(%x) re-encoded as %x", consumed, again)
		}
		if Size(w) != len(consumed) {
			t.Fatalf("Size = %d for %d consumed bytes", Size(w), len(consumed))
		}
	})
}

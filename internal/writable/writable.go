// Package writable provides Hadoop-style serializable value types for the
// MapReduce runtime. Every value that flows between map and reduce tasks,
// or that is stored in a model, implements Writable, which defines a
// compact, deterministic binary encoding. The encoded size of a value is
// exact: the network and DFS traffic counters in the runtime charge the
// same number of bytes that Encode produces.
//
// The encoding of a value is a one-byte kind tag followed by a
// kind-specific payload. Variable-length integers use the unsigned varint
// format from encoding/binary; floating-point values use IEEE 754
// big-endian. The format is self-describing, so a stream of encoded
// values can be decoded without out-of-band type information.
package writable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind identifies the concrete type of an encoded Writable.
type Kind uint8

// The supported value kinds. The numeric values are part of the wire
// format and must not be reordered.
const (
	KindNull Kind = iota
	KindText
	KindInt32
	KindInt64
	KindFloat64
	KindBytes
	KindVector
	KindPair
	KindList
)

// String returns the name of the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "Null"
	case KindText:
		return "Text"
	case KindInt32:
		return "Int32"
	case KindInt64:
		return "Int64"
	case KindFloat64:
		return "Float64"
	case KindBytes:
		return "Bytes"
	case KindVector:
		return "Vector"
	case KindPair:
		return "Pair"
	case KindList:
		return "List"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Writable is a value with a deterministic binary encoding. Implementations
// are the only value types accepted by the MapReduce runtime and the model
// store.
type Writable interface {
	// Kind reports the wire-format tag of the value.
	Kind() Kind
	// EncodedSize reports the exact number of payload bytes AppendTo
	// will write (excluding the kind tag).
	EncodedSize() int
	// AppendTo appends the payload encoding to dst and returns the
	// extended slice.
	AppendTo(dst []byte) []byte
}

// decoder is implemented by pointers to the concrete value types; Decode
// uses it to parse payloads in place.
type decoder interface {
	decodeFrom(src []byte) ([]byte, error)
}

// ErrTruncated is returned when a buffer ends before a complete value.
var ErrTruncated = errors.New("writable: truncated input")

// ErrNonCanonical is returned when an input uses a non-minimal varint
// encoding. The wire format is canonical: every value has exactly one
// valid encoding, so encodings can be compared byte-wise.
var ErrNonCanonical = errors.New("writable: non-canonical varint")

// Size reports the full encoded size of w, including the kind tag.
// A nil Writable encodes as Null and has size 1.
func Size(w Writable) int {
	if w == nil {
		return 1
	}
	return 1 + w.EncodedSize()
}

// Encode appends the full encoding of w (kind tag plus payload) to dst.
// A nil Writable is encoded as Null.
func Encode(dst []byte, w Writable) []byte {
	if w == nil {
		return append(dst, byte(KindNull))
	}
	dst = append(dst, byte(w.Kind()))
	return w.AppendTo(dst)
}

// Decode parses one value from src and returns it along with the
// unconsumed remainder of the buffer.
func Decode(src []byte) (Writable, []byte, error) {
	if len(src) == 0 {
		return nil, nil, ErrTruncated
	}
	kind := Kind(src[0])
	src = src[1:]
	var w decoder
	switch kind {
	case KindNull:
		return Null{}, src, nil
	case KindText:
		w = new(Text)
	case KindInt32:
		w = new(Int32)
	case KindInt64:
		w = new(Int64)
	case KindFloat64:
		w = new(Float64)
	case KindBytes:
		w = new(Bytes)
	case KindVector:
		w = new(Vector)
	case KindPair:
		w = new(Pair)
	case KindList:
		w = new(List)
	default:
		return nil, nil, fmt.Errorf("writable: unknown kind %d", kind)
	}
	rest, err := w.decodeFrom(src)
	if err != nil {
		return nil, nil, err
	}
	return deref(w), rest, nil
}

// deref converts the pointer types used during decoding to the value
// types the package hands out.
func deref(w decoder) Writable {
	switch v := w.(type) {
	case *Text:
		return *v
	case *Int32:
		return *v
	case *Int64:
		return *v
	case *Float64:
		return *v
	case *Bytes:
		return *v
	case *Vector:
		return *v
	case *Pair:
		return *v
	case *List:
		return *v
	case *Null:
		return *v
	default:
		panic("writable: unhandled decoder type")
	}
}

// Null is the zero-size placeholder value.
type Null struct{}

// Kind implements Writable.
func (Null) Kind() Kind { return KindNull }

// EncodedSize implements Writable.
func (Null) EncodedSize() int { return 0 }

// AppendTo implements Writable.
func (Null) AppendTo(dst []byte) []byte { return dst }

func (*Null) decodeFrom(src []byte) ([]byte, error) { return src, nil }

// Text is a UTF-8 string value, analogous to Hadoop's Text.
type Text string

// Kind implements Writable.
func (Text) Kind() Kind { return KindText }

// EncodedSize implements Writable.
func (t Text) EncodedSize() int { return uvarintLen(uint64(len(t))) + len(t) }

// AppendTo implements Writable.
func (t Text) AppendTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	return append(dst, t...)
}

func (t *Text) decodeFrom(src []byte) ([]byte, error) {
	n, rest, err := readUvarint(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(rest)) < n {
		return nil, ErrTruncated
	}
	*t = Text(rest[:n])
	return rest[n:], nil
}

// Int32 is a 32-bit signed integer, analogous to Hadoop's IntWritable.
type Int32 int32

// Kind implements Writable.
func (Int32) Kind() Kind { return KindInt32 }

// EncodedSize implements Writable.
func (Int32) EncodedSize() int { return 4 }

// AppendTo implements Writable.
func (v Int32) AppendTo(dst []byte) []byte {
	return binary.BigEndian.AppendUint32(dst, uint32(v))
}

func (v *Int32) decodeFrom(src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, ErrTruncated
	}
	*v = Int32(binary.BigEndian.Uint32(src))
	return src[4:], nil
}

// Int64 is a 64-bit signed integer, analogous to Hadoop's LongWritable.
type Int64 int64

// Kind implements Writable.
func (Int64) Kind() Kind { return KindInt64 }

// EncodedSize implements Writable.
func (Int64) EncodedSize() int { return 8 }

// AppendTo implements Writable.
func (v Int64) AppendTo(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v))
}

func (v *Int64) decodeFrom(src []byte) ([]byte, error) {
	if len(src) < 8 {
		return nil, ErrTruncated
	}
	*v = Int64(binary.BigEndian.Uint64(src))
	return src[8:], nil
}

// Float64 is a double-precision float, analogous to Hadoop's
// DoubleWritable.
type Float64 float64

// Kind implements Writable.
func (Float64) Kind() Kind { return KindFloat64 }

// EncodedSize implements Writable.
func (Float64) EncodedSize() int { return 8 }

// AppendTo implements Writable.
func (v Float64) AppendTo(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(float64(v)))
}

func (v *Float64) decodeFrom(src []byte) ([]byte, error) {
	if len(src) < 8 {
		return nil, ErrTruncated
	}
	*v = Float64(math.Float64frombits(binary.BigEndian.Uint64(src)))
	return src[8:], nil
}

// Bytes is a raw byte-string value, analogous to Hadoop's BytesWritable.
type Bytes []byte

// Kind implements Writable.
func (Bytes) Kind() Kind { return KindBytes }

// EncodedSize implements Writable.
func (b Bytes) EncodedSize() int { return uvarintLen(uint64(len(b))) + len(b) }

// AppendTo implements Writable.
func (b Bytes) AppendTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func (b *Bytes) decodeFrom(src []byte) ([]byte, error) {
	n, rest, err := readUvarint(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(rest)) < n {
		return nil, ErrTruncated
	}
	*b = append(Bytes(nil), rest[:n]...)
	return rest[n:], nil
}

// Vector is a dense vector of float64 components. It is the workhorse
// value type of the iterative-convergence applications: points,
// centroids, weight blocks, matrix rows and image rows are all Vectors.
type Vector []float64

// Kind implements Writable.
func (Vector) Kind() Kind { return KindVector }

// EncodedSize implements Writable.
func (v Vector) EncodedSize() int { return uvarintLen(uint64(len(v))) + 8*len(v) }

// AppendTo implements Writable.
func (v Vector) AppendTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

func (v *Vector) decodeFrom(src []byte) ([]byte, error) {
	n, rest, err := readUvarint(src)
	if err != nil {
		return nil, err
	}
	if uint64(len(rest)) < 8*n {
		return nil, ErrTruncated
	}
	out := make(Vector, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(rest[8*i:]))
	}
	*v = out
	return rest[8*n:], nil
}

// Clone returns an independent copy of the vector.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Pair is an ordered pair of Writables, useful for composite values such
// as a (partial sum, count) accumulator.
type Pair struct {
	First  Writable
	Second Writable
}

// Kind implements Writable.
func (Pair) Kind() Kind { return KindPair }

// EncodedSize implements Writable.
func (p Pair) EncodedSize() int { return Size(p.First) + Size(p.Second) }

// AppendTo implements Writable.
func (p Pair) AppendTo(dst []byte) []byte {
	dst = Encode(dst, p.First)
	return Encode(dst, p.Second)
}

func (p *Pair) decodeFrom(src []byte) ([]byte, error) {
	first, rest, err := Decode(src)
	if err != nil {
		return nil, err
	}
	second, rest, err := Decode(rest)
	if err != nil {
		return nil, err
	}
	p.First, p.Second = first, second
	return rest, nil
}

// List is an ordered sequence of Writables, analogous to Hadoop's
// ArrayWritable. Elements may be of mixed kinds.
type List []Writable

// Kind implements Writable.
func (List) Kind() Kind { return KindList }

// EncodedSize implements Writable.
func (l List) EncodedSize() int {
	n := uvarintLen(uint64(len(l)))
	for _, w := range l {
		n += Size(w)
	}
	return n
}

// AppendTo implements Writable.
func (l List) AppendTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(l)))
	for _, w := range l {
		dst = Encode(dst, w)
	}
	return dst
}

func (l *List) decodeFrom(src []byte) ([]byte, error) {
	n, rest, err := readUvarint(src)
	if err != nil {
		return nil, err
	}
	// A list cannot hold more elements than remaining bytes (each
	// element is at least one kind byte) — reject absurd lengths before
	// allocating.
	if n > uint64(len(rest)) {
		return nil, ErrTruncated
	}
	out := make(List, n)
	for i := range out {
		out[i], rest, err = Decode(rest)
		if err != nil {
			return nil, err
		}
	}
	*l = out
	return rest, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func readUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	if n != uvarintLen(v) {
		return 0, nil, ErrNonCanonical
	}
	return v, src[n:], nil
}

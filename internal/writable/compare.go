package writable

// Equal reports whether two values have identical encodings, which for
// all kinds in this package coincides with semantic equality (NaN
// payloads compare bitwise).
func Equal(a, b Writable) bool {
	if Size(a) != Size(b) {
		return false
	}
	ea := Encode(nil, a)
	eb := Encode(nil, b)
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of w. It round-trips through the binary
// encoding, so the copy shares no mutable state with the original.
func Clone(w Writable) Writable {
	if w == nil {
		return nil
	}
	c, _, err := Decode(Encode(nil, w))
	if err != nil {
		// Every Writable produced by this package decodes its own
		// encoding; a failure here is a programming error.
		panic("writable: clone round-trip failed: " + err.Error())
	}
	return c
}

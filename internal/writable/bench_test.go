package writable

import "testing"

func BenchmarkEncodeVector(b *testing.B) {
	v := make(Vector, 100)
	for i := range v {
		v[i] = float64(i)
	}
	buf := make([]byte, 0, Size(v))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], v)
	}
}

func BenchmarkDecodeVector(b *testing.B) {
	v := make(Vector, 100)
	buf := Encode(nil, v)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePair(b *testing.B) {
	p := Pair{First: Text("centroid-00042"), Second: Vector{1, 2, 3}}
	buf := make([]byte, 0, Size(p))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], p)
	}
}

func BenchmarkSizeVector(b *testing.B) {
	v := make(Vector, 100)
	for i := 0; i < b.N; i++ {
		if Size(v) == 0 {
			b.Fatal("zero size")
		}
	}
}

package writable

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, w Writable) Writable {
	t.Helper()
	buf := Encode(nil, w)
	if got, want := len(buf), Size(w); got != want {
		t.Fatalf("encoded %d bytes, Size reported %d for %v", got, want, w)
	}
	out, rest, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode %v: %v", w, err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode %v left %d bytes", w, len(rest))
	}
	return out
}

func TestNullRoundTrip(t *testing.T) {
	out := roundTrip(t, Null{})
	if _, ok := out.(Null); !ok {
		t.Fatalf("got %T, want Null", out)
	}
}

func TestNilEncodesAsNull(t *testing.T) {
	buf := Encode(nil, nil)
	if len(buf) != 1 || Kind(buf[0]) != KindNull {
		t.Fatalf("nil encoded as %v", buf)
	}
	if Size(nil) != 1 {
		t.Fatalf("Size(nil) = %d, want 1", Size(nil))
	}
}

func TestTextRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", "日本語", string(make([]byte, 300))} {
		out := roundTrip(t, Text(s))
		if got := out.(Text); string(got) != s {
			t.Fatalf("got %q, want %q", got, s)
		}
	}
}

func TestInt32RoundTrip(t *testing.T) {
	for _, v := range []int32{0, 1, -1, math.MaxInt32, math.MinInt32} {
		out := roundTrip(t, Int32(v))
		if got := out.(Int32); int32(got) != v {
			t.Fatalf("got %d, want %d", got, v)
		}
	}
}

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		out := roundTrip(t, Int64(v))
		if got := out.(Int64); int64(got) != v {
			t.Fatalf("got %d, want %d", got, v)
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	for _, v := range []float64{0, -0.0, 1.5, -2.25, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64} {
		out := roundTrip(t, Float64(v))
		if got := out.(Float64); float64(got) != v {
			t.Fatalf("got %v, want %v", got, v)
		}
	}
}

func TestFloat64NaNRoundTrip(t *testing.T) {
	out := roundTrip(t, Float64(math.NaN()))
	if got := out.(Float64); !math.IsNaN(float64(got)) {
		t.Fatalf("got %v, want NaN", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, b := range [][]byte{{}, {0}, {1, 2, 3}, make([]byte, 1000)} {
		out := roundTrip(t, Bytes(b))
		got := out.(Bytes)
		if len(got) != len(b) {
			t.Fatalf("got len %d, want %d", len(got), len(b))
		}
		for i := range b {
			if got[i] != b[i] {
				t.Fatalf("byte %d: got %d, want %d", i, got[i], b[i])
			}
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	v := Vector{1, -2.5, math.Pi, 0, 1e300}
	out := roundTrip(t, v).(Vector)
	if len(out) != len(v) {
		t.Fatalf("got len %d, want %d", len(out), len(v))
	}
	for i := range v {
		if out[i] != v[i] {
			t.Fatalf("component %d: got %v, want %v", i, out[i], v[i])
		}
	}
}

func TestEmptyVectorRoundTrip(t *testing.T) {
	out := roundTrip(t, Vector{}).(Vector)
	if len(out) != 0 {
		t.Fatalf("got len %d, want 0", len(out))
	}
}

func TestPairRoundTrip(t *testing.T) {
	p := Pair{First: Vector{1, 2}, Second: Int64(7)}
	out := roundTrip(t, p).(Pair)
	if !Equal(out.First, p.First) || !Equal(out.Second, p.Second) {
		t.Fatalf("got %v, want %v", out, p)
	}
}

func TestNestedPairRoundTrip(t *testing.T) {
	p := Pair{First: Pair{First: Text("x"), Second: Null{}}, Second: Float64(3)}
	out := roundTrip(t, p).(Pair)
	if !Equal(out, p) {
		t.Fatalf("got %v, want %v", out, p)
	}
}

func TestPairWithNilFields(t *testing.T) {
	p := Pair{}
	out := roundTrip(t, p).(Pair)
	if _, ok := out.First.(Null); !ok {
		t.Fatalf("nil First decoded as %T", out.First)
	}
}

func TestDecodeTruncated(t *testing.T) {
	values := []Writable{Text("hello"), Int32(7), Int64(7), Float64(1.5), Bytes{1, 2, 3}, Vector{1, 2, 3}, Pair{First: Text("a"), Second: Int32(1)}}
	for _, w := range values {
		buf := Encode(nil, w)
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := Decode(buf[:cut]); err == nil {
				t.Fatalf("decoding %d/%d bytes of %v succeeded", cut, len(buf), w)
			}
		}
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	if _, _, err := Decode([]byte{0xFF}); err == nil {
		t.Fatal("decoding unknown kind succeeded")
	}
}

func TestDecodeEmpty(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("decoding empty buffer succeeded")
	}
}

func TestDecodeStream(t *testing.T) {
	var buf []byte
	in := []Writable{Text("a"), Int64(42), Vector{1, 2}}
	for _, w := range in {
		buf = Encode(buf, w)
	}
	for i, want := range in {
		var got Writable
		var err error
		got, buf, err = Decode(buf)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !Equal(got, want) {
			t.Fatalf("value %d: got %v, want %v", i, got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("stream left %d bytes", len(buf))
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Writable
		want bool
	}{
		{Text("a"), Text("a"), true},
		{Text("a"), Text("b"), false},
		{Int32(1), Int64(1), false},
		{Vector{1, 2}, Vector{1, 2}, true},
		{Vector{1, 2}, Vector{1, 2, 3}, false},
		{Null{}, nil, true},
		{nil, nil, true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := Clone(v).(Vector)
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("clone shares storage with original")
	}
}

func TestCloneNil(t *testing.T) {
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[1] = -1
	if v[1] != 2 {
		t.Fatal("Vector.Clone shares storage")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindNull, KindText, KindInt32, KindInt64, KindFloat64, KindBytes, KindVector, KindPair, Kind(42)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Fatalf("empty name for kind %d", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

// Property: every randomly generated value round-trips through its
// encoding bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rng.Seed(seed)
		w := randomWritable(rng, 3)
		buf := Encode(nil, w)
		if len(buf) != Size(w) {
			return false
		}
		out, rest, err := Decode(buf)
		return err == nil && len(rest) == 0 && Equal(out, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Size is additive across concatenated encodings.
func TestQuickStreamSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rng.Seed(seed)
		n := rng.Intn(5) + 1
		var buf []byte
		total := 0
		for i := 0; i < n; i++ {
			w := randomWritable(rng, 2)
			buf = Encode(buf, w)
			total += Size(w)
		}
		return len(buf) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomWritable(rng *rand.Rand, depth int) Writable {
	n := 8
	if depth <= 0 {
		n = 6 // no nested pairs or lists at the bottom
	}
	switch rng.Intn(n) {
	case 0:
		return Null{}
	case 1:
		b := make([]byte, rng.Intn(20))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return Text(b)
	case 2:
		return Int32(rng.Int31() - rng.Int31())
	case 3:
		return Int64(rng.Int63() - rng.Int63())
	case 4:
		return Float64(rng.NormFloat64() * 1e6)
	case 5:
		v := make(Vector, rng.Intn(10))
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	case 6:
		return Pair{First: randomWritable(rng, depth-1), Second: randomWritable(rng, depth-1)}
	default:
		l := make(List, rng.Intn(4))
		for i := range l {
			l[i] = randomWritable(rng, depth-1)
		}
		return l
	}
}

func TestDecodeRejectsNonCanonicalVarint(t *testing.T) {
	// 0x80 0x00 is a two-byte encoding of zero; the canonical form is
	// the single byte 0x00.
	if _, _, err := Decode([]byte{byte(KindVector), 0x80, 0x00}); err == nil {
		t.Fatal("non-minimal varint accepted")
	}
	if _, _, err := Decode([]byte{byte(KindText), 0x81, 0x00, 'x'}); err == nil {
		t.Fatal("non-minimal text length accepted")
	}
}

func TestListRoundTrip(t *testing.T) {
	l := List{Text("a"), Int64(7), Vector{1, 2}, Null{}}
	out := roundTrip(t, l).(List)
	if len(out) != len(l) {
		t.Fatalf("got len %d, want %d", len(out), len(l))
	}
	for i := range l {
		if !Equal(out[i], l[i]) {
			t.Fatalf("element %d: got %v, want %v", i, out[i], l[i])
		}
	}
}

func TestEmptyListRoundTrip(t *testing.T) {
	out := roundTrip(t, List{}).(List)
	if len(out) != 0 {
		t.Fatalf("got len %d", len(out))
	}
}

func TestNestedListRoundTrip(t *testing.T) {
	l := List{List{Int32(1)}, Pair{First: Text("k"), Second: List{}}}
	out := roundTrip(t, l).(List)
	if !Equal(out, l) {
		t.Fatalf("got %v, want %v", out, l)
	}
}

func TestListTruncatedAndAbsurdLength(t *testing.T) {
	l := List{Text("abc"), Int64(1)}
	buf := Encode(nil, l)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded", cut, len(buf))
		}
	}
	// Claimed length far beyond the buffer must be rejected cheaply.
	if _, _, err := Decode([]byte{byte(KindList), 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Fatal("absurd list length accepted")
	}
}

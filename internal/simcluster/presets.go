package simcluster

// Presets mirroring the three testbeds of the PIC paper (§V-A). Compute
// rates are in abstract cost units per second; the applications' cost
// models are expressed in the same units, so only ratios between compute
// and network speeds matter.

// GigE is Gigabit Ethernet NIC bandwidth in bytes per second.
const GigE = 125e6

// Small returns the paper's 6-node research testbed: one rack, one
// Gigabit switch, 24 map and 24 reduce slots.
func Small() Config {
	return Config{
		Nodes:              6,
		RackSize:           6,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 4,
		ComputeRate:        1e9,
		NodeBandwidth:      GigE,
		RackBandwidth:      6 * GigE, // single switch: no rack uplink bottleneck
		CoreBandwidth:      6 * GigE,
	}
}

// Medium returns the paper's 64-node production cluster: 6 racks on a
// Gigabit interconnect, 330 map and 110 reduce slots (≈5 and 2 per
// node). The core is oversubscribed roughly 3:1, typical of production
// Hadoop clusters of the era.
func Medium() Config {
	return Config{
		Nodes:              64,
		RackSize:           11,
		MapSlotsPerNode:    5,
		ReduceSlotsPerNode: 2,
		ComputeRate:        1.2e9,
		NodeBandwidth:      GigE,
		RackBandwidth:      4 * GigE,
		CoreBandwidth:      12 * GigE,
	}
}

// Large returns the paper's Amazon Elastic MapReduce testbed scaled to n
// extra-large instances (64 ≤ n ≤ 256 in the paper): 16-node racks,
// 4 map and 2 reduce slots per instance, and a core whose bisection does
// not grow with n — the scarce resource of §I.
func Large(n int) Config {
	return Config{
		Nodes:              n,
		RackSize:           16,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 2,
		ComputeRate:        1e9,
		NodeBandwidth:      GigE,
		RackBandwidth:      6 * GigE,
		CoreBandwidth:      24 * GigE,
	}
}

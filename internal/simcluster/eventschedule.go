package simcluster

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// EventSchedule is an alternative implementation of Schedule built on
// the discrete-event engine: slots announce themselves free as events,
// and the dispatcher assigns the next queued task on each slot-free
// event, preferring the task whose input lives on the freed slot's node.
// It exists to cross-validate the greedy list scheduler — both must
// produce the same makespan for the same inputs — and as the natural
// extension point for time-dependent scheduling policies.
func (c *Cluster) EventSchedule(tasks []Task, slotsPerNode int) ([]Placement, simtime.Duration) {
	if slotsPerNode <= 0 {
		panic("simcluster: slotsPerNode must be positive")
	}
	for _, t := range tasks {
		if t.Cost < 0 {
			panic("simcluster: negative task cost")
		}
	}

	type slot struct{ node int }
	slots := make([]slot, 0, len(c.nodes)*slotsPerNode)
	for _, n := range c.nodes {
		for s := 0; s < slotsPerNode; s++ {
			slots = append(slots, slot{node: n})
		}
	}

	placements := make([]Placement, len(tasks))
	pending := make([]int, len(tasks)) // task indices not yet dispatched
	for i := range pending {
		pending[i] = i
	}
	var makespan simtime.Duration

	eng := simtime.NewEngine()
	var onFree func(si int)
	dispatch := func(si int, at simtime.Time) {
		if len(pending) == 0 {
			return
		}
		node := slots[si].node
		// Prefer the earliest pending task homed on this node,
		// otherwise the earliest pending task (FIFO) — the same
		// tie-breaking the list scheduler uses.
		pick := 0
		for qi, ti := range pending {
			if tasks[ti].Preferred == node {
				pick = qi
				break
			}
		}
		ti := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		dur := simtime.Duration(tasks[ti].Cost / c.nodeRate(node))
		end := at + dur
		placements[ti] = Placement{
			Node:  node,
			Start: at,
			End:   end,
			Local: tasks[ti].Preferred < 0 || node == tasks[ti].Preferred,
		}
		if simtime.Duration(end) > makespan {
			makespan = simtime.Duration(end)
		}
		eng.At(end, func() { onFree(si) })
	}
	onFree = func(si int) { dispatch(si, eng.Now()) }

	// All slots free at time zero, in deterministic node order.
	for si := range slots {
		si := si
		eng.At(0, func() { onFree(si) })
	}
	eng.Run()
	c.chargeUsage(placements)
	return placements, makespan
}

// ScheduleFailureAware schedules tasks like EventSchedule while honoring
// the view's registered FailurePlan, with the plan's absolute times
// aligned so that simulated time start corresponds to wave time zero:
// slots on nodes dead at the wave start never dispatch, a task in flight
// on a node when it crashes is killed and re-queued onto survivors (the
// failed attempt's work is lost, as in Hadoop), and a node that recovers
// mid-wave rejoins with empty slots. Placements are relative to the wave
// start, like Schedule's. killed reports how many in-flight attempts
// node crashes destroyed. exclude optionally names nodes whose slots
// must not dispatch at all for this wave even though they are alive —
// the engine passes nodes a network partition has made unreachable, so
// task attempts are re-homed off them. It returns an error when tasks
// remain unrunnable because every node in the view is dead or excluded
// with no recovery scheduled.
func (c *Cluster) ScheduleFailureAware(tasks []Task, slotsPerNode int, start simtime.Time, exclude map[int]bool) (pl []Placement, makespan simtime.Duration, killed int, err error) {
	if slotsPerNode <= 0 {
		panic("simcluster: slotsPerNode must be positive")
	}
	for _, t := range tasks {
		if t.Cost < 0 {
			panic("simcluster: negative task cost")
		}
	}

	inView := make(map[int]bool, len(c.nodes))
	for _, n := range c.nodes {
		inView[n] = true
	}
	dead := map[int]bool{}
	for n, d := range c.failplan.DeadAt(start) {
		if d && inView[n] {
			dead[n] = true
		}
	}

	type slot struct {
		node    int
		gen     int // bumped when the node crashes, invalidating completions
		running int // task index in flight, or -1
		startAt simtime.Time
	}
	slots := make([]*slot, 0, len(c.nodes)*slotsPerNode)
	byNode := map[int][]int{} // node -> slot indices
	for _, n := range c.nodes {
		for s := 0; s < slotsPerNode; s++ {
			byNode[n] = append(byNode[n], len(slots))
			slots = append(slots, &slot{node: n, running: -1})
		}
	}

	placements := make([]Placement, len(tasks))
	pending := make([]int, len(tasks))
	for i := range pending {
		pending[i] = i
	}
	completed := 0

	eng := simtime.NewEngine()
	var dispatch func(si int, at simtime.Time)
	complete := func(si, gen int, at simtime.Time) {
		s := slots[si]
		if s.gen != gen || s.running < 0 {
			return // stale completion: the attempt was killed by a crash
		}
		ti := s.running
		end := at
		placements[ti] = Placement{
			Node:  s.node,
			Start: s.startAt,
			End:   end,
			Local: tasks[ti].Preferred < 0 || s.node == tasks[ti].Preferred,
		}
		completed++
		if simtime.Duration(end) > makespan {
			makespan = simtime.Duration(end)
		}
		s.running = -1
		dispatch(si, at)
	}
	dispatch = func(si int, at simtime.Time) {
		s := slots[si]
		if dead[s.node] || exclude[s.node] || s.running >= 0 || len(pending) == 0 {
			return
		}
		// Same tie-breaking as EventSchedule: the earliest pending task
		// homed on this node, else FIFO.
		pick := 0
		for qi, ti := range pending {
			if tasks[ti].Preferred == s.node {
				pick = qi
				break
			}
		}
		ti := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		dur := simtime.Duration(tasks[ti].Cost / c.nodeRate(s.node))
		s.running, s.startAt = ti, at
		gen := s.gen
		eng.At(at+dur, func() { complete(si, gen, eng.Now()) })
	}

	// Crash/recover events strictly after the wave start, on the wave's
	// relative clock.
	for _, ev := range c.failplan.Sorted() {
		if ev.Time <= start || !inView[ev.Node] {
			continue
		}
		ev := ev
		eng.At(ev.Time-start, func() {
			if ev.Recover {
				if !dead[ev.Node] {
					return
				}
				delete(dead, ev.Node)
				for _, si := range byNode[ev.Node] {
					dispatch(si, eng.Now())
				}
				return
			}
			if dead[ev.Node] {
				return
			}
			dead[ev.Node] = true
			for _, si := range byNode[ev.Node] {
				s := slots[si]
				if s.running >= 0 {
					pending = append(pending, s.running)
					s.running = -1
					killed++
				}
				s.gen++
			}
			// Survivors' idle slots pick up the re-queued work.
			for si := range slots {
				dispatch(si, eng.Now())
			}
		})
	}

	for si := range slots {
		si := si
		eng.At(0, func() { dispatch(si, eng.Now()) })
	}
	eng.Run()
	if completed < len(tasks) {
		return nil, 0, killed, fmt.Errorf("simcluster: %d of %d tasks stranded: no live reachable nodes in view and no recovery scheduled",
			len(tasks)-completed, len(tasks))
	}
	c.chargeUsage(placements)
	return placements, makespan, killed, nil
}

// sortedByStart is a test helper ordering placements by start time.
func sortedByStart(pl []Placement) []Placement {
	out := append([]Placement(nil), pl...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

package simcluster

import (
	"sort"

	"repro/internal/simtime"
)

// EventSchedule is an alternative implementation of Schedule built on
// the discrete-event engine: slots announce themselves free as events,
// and the dispatcher assigns the next queued task on each slot-free
// event, preferring the task whose input lives on the freed slot's node.
// It exists to cross-validate the greedy list scheduler — both must
// produce the same makespan for the same inputs — and as the natural
// extension point for time-dependent scheduling policies.
func (c *Cluster) EventSchedule(tasks []Task, slotsPerNode int) ([]Placement, simtime.Duration) {
	if slotsPerNode <= 0 {
		panic("simcluster: slotsPerNode must be positive")
	}
	for _, t := range tasks {
		if t.Cost < 0 {
			panic("simcluster: negative task cost")
		}
	}

	type slot struct{ node int }
	slots := make([]slot, 0, len(c.nodes)*slotsPerNode)
	for _, n := range c.nodes {
		for s := 0; s < slotsPerNode; s++ {
			slots = append(slots, slot{node: n})
		}
	}

	placements := make([]Placement, len(tasks))
	pending := make([]int, len(tasks)) // task indices not yet dispatched
	for i := range pending {
		pending[i] = i
	}
	var makespan simtime.Duration

	eng := simtime.NewEngine()
	var onFree func(si int)
	dispatch := func(si int, at simtime.Time) {
		if len(pending) == 0 {
			return
		}
		node := slots[si].node
		// Prefer the earliest pending task homed on this node,
		// otherwise the earliest pending task (FIFO) — the same
		// tie-breaking the list scheduler uses.
		pick := 0
		for qi, ti := range pending {
			if tasks[ti].Preferred == node {
				pick = qi
				break
			}
		}
		ti := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		dur := simtime.Duration(tasks[ti].Cost / c.nodeRate(node))
		end := at + dur
		placements[ti] = Placement{
			Node:  node,
			Start: at,
			End:   end,
			Local: tasks[ti].Preferred < 0 || node == tasks[ti].Preferred,
		}
		if simtime.Duration(end) > makespan {
			makespan = simtime.Duration(end)
		}
		eng.At(end, func() { onFree(si) })
	}
	onFree = func(si int) { dispatch(si, eng.Now()) }

	// All slots free at time zero, in deterministic node order.
	for si := range slots {
		si := si
		eng.At(0, func() { onFree(si) })
	}
	eng.Run()
	return placements, makespan
}

// sortedByStart is a test helper ordering placements by start time.
func sortedByStart(pl []Placement) []Placement {
	out := append([]Placement(nil), pl...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Package simcluster models the compute side of a shared-nothing
// cluster: nodes with a fixed number of map and reduce task slots,
// grouped into racks, attached to a simnet fabric. The MapReduce runtime
// schedules tasks onto slots through this package and charges network
// transfers through the shared fabric.
//
// A Cluster value is a *view*: a subset of the nodes of one physical
// fabric. Sub-cluster views are how the PIC best-effort phase confines a
// sub-problem to a node group — jobs scheduled on a view only use that
// view's nodes, while traffic from all views meets in the one fabric.
package simcluster

import (
	"fmt"
	"sort"

	"repro/internal/corrupt"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// Config describes a cluster: its size, slot counts, compute speed, and
// interconnect.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// RackSize is the number of nodes per rack.
	RackSize int
	// MapSlotsPerNode and ReduceSlotsPerNode bound per-node task
	// concurrency, like Hadoop's slot model.
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// ComputeRate is how many task cost units one slot retires per
	// simulated second.
	ComputeRate float64
	// NodeRateFactors optionally scales each node's compute rate
	// (heterogeneous hardware: a factor of 0.5 makes a node half
	// speed). Empty means uniform; otherwise it must have one entry
	// per node, each positive.
	NodeRateFactors []float64
	// NodeBandwidth, RackBandwidth and CoreBandwidth configure the
	// fabric (bytes/second); see simnet.Config.
	NodeBandwidth float64
	RackBandwidth float64
	CoreBandwidth float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("simcluster: Nodes = %d, must be positive", c.Nodes)
	}
	if c.RackSize <= 0 {
		return fmt.Errorf("simcluster: RackSize = %d, must be positive", c.RackSize)
	}
	if c.MapSlotsPerNode <= 0 || c.ReduceSlotsPerNode <= 0 {
		return fmt.Errorf("simcluster: slot counts must be positive (map=%d reduce=%d)",
			c.MapSlotsPerNode, c.ReduceSlotsPerNode)
	}
	if c.ComputeRate <= 0 {
		return fmt.Errorf("simcluster: ComputeRate = %g, must be positive", c.ComputeRate)
	}
	if len(c.NodeRateFactors) != 0 {
		if len(c.NodeRateFactors) != c.Nodes {
			return fmt.Errorf("simcluster: %d rate factors for %d nodes", len(c.NodeRateFactors), c.Nodes)
		}
		for i, f := range c.NodeRateFactors {
			if f <= 0 {
				return fmt.Errorf("simcluster: node %d rate factor %g, must be positive", i, f)
			}
		}
	}
	return c.NetConfig().Validate()
}

// NetConfig derives the fabric configuration.
func (c Config) NetConfig() simnet.Config {
	return simnet.Config{
		Nodes:         c.Nodes,
		RackSize:      c.RackSize,
		NodeBandwidth: c.NodeBandwidth,
		CoreBandwidth: c.CoreBandwidth,
		RackBandwidth: c.RackBandwidth,
	}
}

// Usage accumulates slot occupancy across every wave scheduled on one
// physical cluster: how long each node's slots ran completed task
// attempts, and how many attempts each node retired. All views over the
// same fabric share one accumulator, so best-effort group waves and
// full-cluster waves land in the same per-node totals.
type Usage struct {
	// SlotBusy is per-node busy seconds, indexed by global node id.
	SlotBusy []simtime.Duration
	// Tasks is per-node completed task attempts.
	Tasks []int
}

// MaxBusy returns the busiest node's slot-busy seconds.
func (u Usage) MaxBusy() simtime.Duration {
	var worst simtime.Duration
	for _, b := range u.SlotBusy {
		if b > worst {
			worst = b
		}
	}
	return worst
}

// TotalBusy returns the summed slot-busy seconds across nodes.
func (u Usage) TotalBusy() simtime.Duration {
	var total simtime.Duration
	for _, b := range u.SlotBusy {
		total += b
	}
	return total
}

// TotalTasks returns the summed completed task attempts.
func (u Usage) TotalTasks() int {
	var total int
	for _, t := range u.Tasks {
		total += t
	}
	return total
}

// computeLoad tracks the compute capacity co-tenants consume on each
// node: registered per-tenant fractions and their per-node aggregate,
// rebuilt in sorted-tenant order on every change so float summation is
// deterministic. Shared by every view over one fabric, like Usage.
type computeLoad struct {
	tenants map[string]map[int]float64 // tenant id -> node -> fraction
	agg     []float64                  // per-node aggregate, indexed by global id
}

// Cluster is a scheduling view over (a subset of) a fabric's nodes.
type Cluster struct {
	cfg    Config
	fabric *simnet.Fabric
	nodes  []int // sorted global node ids in this view
	// usage accumulates slot occupancy; shared by all views over the
	// same fabric (see Usage).
	usage *Usage
	// comp holds co-tenant compute occupancy; shared by derived views.
	comp *computeLoad
	// failplan, when set, scripts node crashes and recoveries against
	// the simulated clock (see SetFailurePlan). Shared by derived views.
	failplan *FailurePlan
	// corruptplan, when set, scripts silent data corruption (see
	// SetCorruptionPlan). Shared by derived views.
	corruptplan *corrupt.Plan
}

// New builds a full-cluster view and its fabric. It panics on an invalid
// configuration; topologies come from experiment code, not user input.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nodes := make([]int, cfg.Nodes)
	for i := range nodes {
		nodes[i] = i
	}
	usage := &Usage{SlotBusy: make([]simtime.Duration, cfg.Nodes), Tasks: make([]int, cfg.Nodes)}
	comp := &computeLoad{tenants: map[string]map[int]float64{}, agg: make([]float64, cfg.Nodes)}
	return &Cluster{cfg: cfg, fabric: simnet.New(cfg.NetConfig()), nodes: nodes, usage: usage, comp: comp}
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Fabric returns the shared interconnect. All views over the same
// physical cluster return the same fabric.
func (c *Cluster) Fabric() *simnet.Fabric { return c.fabric }

// Nodes returns the global ids of the nodes in this view. The caller
// must not modify the returned slice.
func (c *Cluster) Nodes() []int { return c.nodes }

// Size reports the number of nodes in this view.
func (c *Cluster) Size() int { return len(c.nodes) }

// Contains reports whether the given global node id is in this view.
func (c *Cluster) Contains(node int) bool {
	i := sort.SearchInts(c.nodes, node)
	return i < len(c.nodes) && c.nodes[i] == node
}

// MapSlots reports the total map slots in this view.
func (c *Cluster) MapSlots() int { return len(c.nodes) * c.cfg.MapSlotsPerNode }

// ReduceSlots reports the total reduce slots in this view.
func (c *Cluster) ReduceSlots() int { return len(c.nodes) * c.cfg.ReduceSlotsPerNode }

// Subset returns a view restricted to the given global node ids, sharing
// this view's fabric and counters.
func (c *Cluster) Subset(nodes []int) *Cluster {
	if len(nodes) == 0 {
		panic("simcluster: empty subset")
	}
	sorted := append([]int(nil), nodes...)
	sort.Ints(sorted)
	for i, n := range sorted {
		if n < 0 || n >= c.cfg.Nodes {
			panic(fmt.Sprintf("simcluster: node %d out of range", n))
		}
		if i > 0 && sorted[i-1] == n {
			panic(fmt.Sprintf("simcluster: duplicate node %d in subset", n))
		}
	}
	return &Cluster{cfg: c.cfg, fabric: c.fabric, nodes: sorted, usage: c.usage, comp: c.comp, failplan: c.failplan, corruptplan: c.corruptplan}
}

// Usage returns a snapshot of the slot-occupancy accumulator shared by
// every view over this cluster's fabric.
func (c *Cluster) Usage() Usage {
	return Usage{
		SlotBusy: append([]simtime.Duration(nil), c.usage.SlotBusy...),
		Tasks:    append([]int(nil), c.usage.Tasks...),
	}
}

// chargeUsage folds a wave's completed placements into the shared
// occupancy accumulator.
func (c *Cluster) chargeUsage(placements []Placement) {
	for _, p := range placements {
		c.usage.SlotBusy[p.Node] += p.End - p.Start
		c.usage.Tasks[p.Node]++
	}
}

// Groups splits this view into p disjoint sub-views of near-equal size,
// assigning contiguous node ranges so that groups align with racks
// whenever the arithmetic allows. It panics if p exceeds the view size.
func (c *Cluster) Groups(p int) []*Cluster {
	if p <= 0 || p > len(c.nodes) {
		panic(fmt.Sprintf("simcluster: cannot split %d nodes into %d groups", len(c.nodes), p))
	}
	groups := make([]*Cluster, p)
	for i := 0; i < p; i++ {
		lo := i * len(c.nodes) / p
		hi := (i + 1) * len(c.nodes) / p
		groups[i] = c.Subset(c.nodes[lo:hi])
	}
	return groups
}

// Task is one unit of schedulable work.
type Task struct {
	// Cost is the compute demand in cost units; duration on a slot is
	// Cost / ComputeRate.
	Cost float64
	// Preferred is the global id of the node holding the task's input
	// (for locality), or -1 for no preference.
	Preferred int
}

// Placement records where and when a scheduled task ran, in time
// relative to the start of its wave.
type Placement struct {
	Node       int
	Start, End simtime.Time
	// Local reports whether the task ran on its preferred node (always
	// true when there was no preference).
	Local bool
}

// Schedule assigns tasks to slots using greedy earliest-start list
// scheduling with locality preference: when several slots could start a
// task at the same earliest time, a slot on the task's preferred node
// wins. It returns the placements and the makespan. Scheduling is
// deterministic.
//
// slotsPerNode selects the slot pool (use Config.MapSlotsPerNode or
// ReduceSlotsPerNode).
func (c *Cluster) Schedule(tasks []Task, slotsPerNode int) ([]Placement, simtime.Duration) {
	if slotsPerNode <= 0 {
		panic("simcluster: slotsPerNode must be positive")
	}
	// free[i] holds the sorted free times of node c.nodes[i]'s slots.
	free := make([][]simtime.Time, len(c.nodes))
	for i := range free {
		free[i] = make([]simtime.Time, slotsPerNode)
	}
	index := make(map[int]int, len(c.nodes)) // global node id -> view index
	for i, n := range c.nodes {
		index[n] = i
	}

	placements := make([]Placement, len(tasks))
	var makespan simtime.Duration
	for ti, task := range tasks {
		if task.Cost < 0 {
			panic("simcluster: negative task cost")
		}
		// Earliest slot availability across the view.
		best := free[0][0]
		for _, f := range free[1:] {
			if f[0] < best {
				best = f[0]
			}
		}
		// Prefer the task's home node when it can start equally early.
		chosen := -1
		if pi, ok := index[task.Preferred]; ok && free[pi][0] == best {
			chosen = pi
		} else {
			for i, f := range free {
				if f[0] == best {
					chosen = i
					break
				}
			}
		}
		dur := simtime.Duration(task.Cost / c.nodeRate(c.nodes[chosen]))
		end := best + dur
		placements[ti] = Placement{
			Node:  c.nodes[chosen],
			Start: best,
			End:   end,
			Local: task.Preferred < 0 || c.nodes[chosen] == task.Preferred,
		}
		// Re-insert the slot's new free time, keeping the list sorted.
		f := free[chosen]
		f[0] = end
		for j := 1; j < len(f) && f[j] < f[j-1]; j++ {
			f[j], f[j-1] = f[j-1], f[j]
		}
		if end > makespan {
			makespan = end
		}
	}
	c.chargeUsage(placements)
	return placements, makespan
}

// nodeRate is the compute rate of global node n, after any
// heterogeneous rate factor and the residual left by registered
// co-tenant compute loads.
func (c *Cluster) nodeRate(n int) float64 {
	rate := c.cfg.ComputeRate
	if len(c.cfg.NodeRateFactors) > 0 {
		rate *= c.cfg.NodeRateFactors[n]
	}
	if share := c.comp.agg[n]; share > 0 {
		if left := 1 - share; left > minComputeResidual {
			rate *= left
		} else {
			rate *= minComputeResidual
		}
	}
	return rate
}

// minComputeResidual bounds how far co-tenants can squeeze a node: even
// a fully loaded node retires foreground work at 5% speed, mirroring
// simnet's residual-capacity floor.
const minComputeResidual = 0.05

// SetTenantCompute registers (or replaces) the compute occupancy of the
// co-tenant identified by id: for each listed global node, the fraction
// of that node's compute capacity the tenant consumes while its work
// overlaps other jobs'. Fractions must lie in [0, 1]. The registration
// is shared by every view over this cluster's fabric.
func (c *Cluster) SetTenantCompute(id string, perNode map[int]float64) {
	for n, v := range perNode {
		if n < 0 || n >= c.cfg.Nodes {
			panic(fmt.Sprintf("simcluster: node %d out of range", n))
		}
		if v != v || v < 0 || v > 1 {
			panic(fmt.Sprintf("simcluster: tenant compute share %g on node %d outside [0, 1]", v, n))
		}
	}
	copied := make(map[int]float64, len(perNode))
	for n, v := range perNode {
		copied[n] = v
	}
	c.comp.tenants[id] = copied
	c.comp.recompute()
}

// ClearTenantCompute removes a registered compute occupancy. Clearing
// an unknown id is a no-op.
func (c *Cluster) ClearTenantCompute(id string) {
	if _, ok := c.comp.tenants[id]; !ok {
		return
	}
	delete(c.comp.tenants, id)
	c.comp.recompute()
}

// ClearAllTenantCompute removes every registered compute occupancy.
func (c *Cluster) ClearAllTenantCompute() {
	if len(c.comp.tenants) == 0 {
		return
	}
	c.comp.tenants = map[string]map[int]float64{}
	c.comp.recompute()
}

// NodeComputeLoad reports the aggregate co-tenant compute share on
// global node n.
func (c *Cluster) NodeComputeLoad(n int) float64 { return c.comp.agg[n] }

// MaxComputeLoad reports the largest aggregate co-tenant compute share
// across all nodes — the telemetry layer's one-number summary of how
// contended the cluster's compute is right now.
func (c *Cluster) MaxComputeLoad() float64 {
	var max float64
	for _, v := range c.comp.agg {
		if v > max {
			max = v
		}
	}
	return max
}

// recompute rebuilds the per-node aggregate in sorted-tenant order.
func (l *computeLoad) recompute() {
	for i := range l.agg {
		l.agg[i] = 0
	}
	ids := make([]string, 0, len(l.tenants))
	for id := range l.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for n, v := range l.tenants[id] {
			l.agg[n] += v
		}
	}
}

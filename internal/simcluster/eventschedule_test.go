package simcluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestEventScheduleSingleTask(t *testing.T) {
	c := New(testConfig())
	pl, makespan := c.EventSchedule([]Task{{Cost: 50, Preferred: -1}}, 2)
	if makespan != 5 || pl[0].End != 5 {
		t.Fatalf("makespan=%v placement=%+v", makespan, pl[0])
	}
}

func TestEventScheduleLocalityPreference(t *testing.T) {
	// Locality in the event scheduler is slot-driven: a freed slot
	// takes its node's earliest local task, falling back to FIFO. With
	// one slot per node, every task lands on its preferred node.
	c := New(testConfig())
	tasks := []Task{
		{Cost: 10, Preferred: 3},
		{Cost: 10, Preferred: 2},
		{Cost: 10, Preferred: 1},
		{Cost: 10, Preferred: 0},
	}
	pl, _ := c.EventSchedule(tasks, 1)
	for i, p := range pl {
		if p.Node != tasks[i].Preferred {
			t.Fatalf("task %d placed on %d, want %d", i, p.Node, tasks[i].Preferred)
		}
		if !p.Local {
			t.Fatalf("task %d not marked local", i)
		}
	}
}

func TestEventScheduleWaves(t *testing.T) {
	c := New(testConfig()) // 8 map slots
	tasks := make([]Task, 9)
	for i := range tasks {
		tasks[i] = Task{Cost: 10, Preferred: -1}
	}
	pl, makespan := c.EventSchedule(tasks, 2)
	if makespan != 2 {
		t.Fatalf("makespan = %v, want 2", makespan)
	}
	ordered := sortedByStart(pl)
	if ordered[8].Start != 1 {
		t.Fatalf("overflow task starts at %v", ordered[8].Start)
	}
}

func TestEventScheduleRejectsBadInputs(t *testing.T) {
	c := New(testConfig())
	for _, fn := range []func(){
		func() { c.EventSchedule([]Task{{Cost: 1}}, 0) },
		func() { c.EventSchedule([]Task{{Cost: -1}}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad input did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: the event-driven scheduler and the greedy list scheduler
// agree exactly on makespan for preference-free workloads, and within
// the classic list-scheduling bounds otherwise. Both always respect the
// work and critical-path lower bounds.
func TestQuickEventScheduleCrossValidation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig())
		n := rng.Intn(30) + 1
		withPrefs := rng.Intn(2) == 0
		tasks := make([]Task, n)
		var total, longest float64
		for i := range tasks {
			cost := float64(rng.Intn(100) + 1)
			pref := -1
			if withPrefs {
				pref = rng.Intn(4)
			}
			tasks[i] = Task{Cost: cost, Preferred: pref}
			total += cost
			if cost > longest {
				longest = cost
			}
		}
		_, listMakespan := c.Schedule(tasks, 2)
		_, eventMakespan := c.EventSchedule(tasks, 2)

		lower := simtime.Duration(total / 10 / 8)
		if l := simtime.Duration(longest / 10); l > lower {
			lower = l
		}
		// Graham's bound: any greedy list schedule is within 2x of any
		// other (both are ≤ 2·OPT and ≥ OPT ≥ lower).
		if eventMakespan < lower-1e-9 || listMakespan < lower-1e-9 {
			return false
		}
		if eventMakespan > 2*listMakespan+1e-9 || listMakespan > 2*eventMakespan+1e-9 {
			return false
		}
		if !withPrefs && eventMakespan != listMakespan {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the event scheduler is deterministic.
func TestQuickEventScheduleDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig())
		n := rng.Intn(20) + 1
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{Cost: float64(rng.Intn(50)), Preferred: rng.Intn(4)}
		}
		a, ma := c.EventSchedule(tasks, 2)
		b, mb := c.EventSchedule(tasks, 2)
		if ma != mb {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

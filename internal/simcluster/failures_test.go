package simcluster

import (
	"reflect"
	"strings"
	"testing"
)

func TestConfigValidateRejectsDegenerateTopologies(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantMsg string
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }, "Nodes = 0"},
		{"negative nodes", func(c *Config) { c.Nodes = -3 }, "Nodes = -3"},
		{"zero rack size", func(c *Config) { c.RackSize = 0 }, "RackSize = 0"},
		{"negative compute rate", func(c *Config) { c.ComputeRate = -1 }, "ComputeRate"},
		{"short rate factors", func(c *Config) { c.NodeRateFactors = []float64{1} }, "1 rate factors for 4 nodes"},
		{"negative rate factor", func(c *Config) { c.NodeRateFactors = []float64{1, 1, -0.5, 1} }, "node 2 rate factor -0.5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("config %+v accepted", cfg)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantMsg)
			}
		})
	}
}

func TestFailurePlanValidate(t *testing.T) {
	ok := &FailurePlan{Events: []NodeEvent{
		{Node: 0, Time: 0},
		{Node: 3, Time: 2.5, Recover: true},
	}}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := []struct {
		name    string
		plan    *FailurePlan
		wantMsg string
	}{
		{"node beyond cluster", &FailurePlan{Events: []NodeEvent{{Node: 4, Time: 1}}},
			"node 4 out of range [0,4)"},
		{"negative node", &FailurePlan{Events: []NodeEvent{{Node: -1, Time: 1}}},
			"node -1 out of range"},
		{"negative time", &FailurePlan{Events: []NodeEvent{{Node: 0, Time: 0}, {Node: 1, Time: -2}}},
			"event 1: negative time -2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(4)
			if err == nil {
				t.Fatalf("plan %+v accepted", tc.plan)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantMsg)
			}
		})
	}
}

func TestSetFailurePlanPanicsOnInvalidPlan(t *testing.T) {
	c := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range failure plan accepted")
		}
	}()
	c.SetFailurePlan(&FailurePlan{Events: []NodeEvent{{Node: 99, Time: 0}}})
}

func TestFailurePlanDeadAtReplaysInOrder(t *testing.T) {
	// Events deliberately out of time order: Sorted must order them and
	// DeadAt must replay crash → recover correctly.
	p := &FailurePlan{Events: []NodeEvent{
		{Node: 1, Time: 5, Recover: true},
		{Node: 1, Time: 2},
		{Node: 3, Time: 4},
	}}
	if dead := p.DeadAt(1); len(dead) != 0 {
		t.Fatalf("dead before any event: %v", dead)
	}
	if dead := p.DeadAt(4); !dead[1] || !dead[3] || len(dead) != 2 {
		t.Fatalf("DeadAt(4) = %v, want {1,3}", dead)
	}
	if dead := p.DeadAt(5); dead[1] || !dead[3] {
		t.Fatalf("DeadAt(5) = %v, want node 1 recovered", dead)
	}
	var nilPlan *FailurePlan
	if dead := nilPlan.DeadAt(10); dead != nil {
		t.Fatalf("nil plan DeadAt = %v", dead)
	}
}

func TestLiveNodesAtFiltersView(t *testing.T) {
	c := New(testConfig())
	c.SetFailurePlan(&FailurePlan{Events: []NodeEvent{
		{Node: 1, Time: 1},
		{Node: 2, Time: 3},
		{Node: 1, Time: 6, Recover: true},
	}})
	if got := c.LiveNodesAt(0); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("LiveNodesAt(0) = %v", got)
	}
	if got := c.LiveNodesAt(4); !reflect.DeepEqual(got, []int{0, 3}) {
		t.Fatalf("LiveNodesAt(4) = %v", got)
	}
	if got := c.LiveNodesAt(7); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("LiveNodesAt(7) = %v", got)
	}
	// Sub-views derived after registration inherit the plan.
	sub := c.Subset([]int{1, 2})
	if got := sub.LiveNodesAt(4); len(got) != 0 {
		t.Fatalf("sub-view LiveNodesAt(4) = %v, want empty", got)
	}
}

func TestContains(t *testing.T) {
	c := New(testConfig())
	sub := c.Subset([]int{1, 3})
	for n, want := range map[int]bool{0: false, 1: true, 2: false, 3: true, 4: false} {
		if sub.Contains(n) != want {
			t.Fatalf("Contains(%d) = %v, want %v", n, !want, want)
		}
	}
}

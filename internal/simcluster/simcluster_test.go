package simcluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func testConfig() Config {
	return Config{
		Nodes:              4,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        10,
		NodeBandwidth:      100,
		RackBandwidth:      200,
		CoreBandwidth:      200,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := testConfig()
	bad.MapSlotsPerNode = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero map slots accepted")
	}
	bad = testConfig()
	bad.ComputeRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero compute rate accepted")
	}
	bad = testConfig()
	bad.NodeBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestNewClusterView(t *testing.T) {
	c := New(testConfig())
	if c.Size() != 4 {
		t.Fatalf("Size = %d, want 4", c.Size())
	}
	if c.MapSlots() != 8 || c.ReduceSlots() != 4 {
		t.Fatalf("slots = %d/%d, want 8/4", c.MapSlots(), c.ReduceSlots())
	}
	for i, n := range c.Nodes() {
		if n != i {
			t.Fatalf("Nodes() = %v", c.Nodes())
		}
	}
}

func TestSubsetSharesFabric(t *testing.T) {
	c := New(testConfig())
	s := c.Subset([]int{1, 3})
	if s.Fabric() != c.Fabric() {
		t.Fatal("subset has its own fabric")
	}
	if s.Size() != 2 {
		t.Fatalf("subset size = %d", s.Size())
	}
}

func TestSubsetRejectsBadNodes(t *testing.T) {
	c := New(testConfig())
	for _, nodes := range [][]int{{}, {-1}, {4}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Subset(%v) did not panic", nodes)
				}
			}()
			c.Subset(nodes)
		}()
	}
}

func TestGroupsPartitionNodes(t *testing.T) {
	c := New(testConfig())
	groups := c.Groups(2)
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	seen := map[int]bool{}
	total := 0
	for _, g := range groups {
		for _, n := range g.Nodes() {
			if seen[n] {
				t.Fatalf("node %d in two groups", n)
			}
			seen[n] = true
			total++
		}
	}
	if total != 4 {
		t.Fatalf("groups cover %d nodes, want 4", total)
	}
}

func TestGroupsUnevenSplit(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 5
	cfg.RackSize = 3
	c := New(cfg)
	groups := c.Groups(3)
	sizes := []int{}
	for _, g := range groups {
		sizes = append(sizes, g.Size())
	}
	total := 0
	for _, s := range sizes {
		total += s
		if s < 1 || s > 2 {
			t.Fatalf("unbalanced group sizes %v", sizes)
		}
	}
	if total != 5 {
		t.Fatalf("sizes %v do not cover 5 nodes", sizes)
	}
}

func TestGroupsBounds(t *testing.T) {
	c := New(testConfig())
	for _, p := range []int{0, -1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Groups(%d) did not panic", p)
				}
			}()
			c.Groups(p)
		}()
	}
}

func TestScheduleSingleTask(t *testing.T) {
	c := New(testConfig())
	pl, makespan := c.Schedule([]Task{{Cost: 50, Preferred: -1}}, 2)
	if makespan != 5 { // 50 cost units / 10 units-per-second
		t.Fatalf("makespan = %v, want 5", makespan)
	}
	if pl[0].Start != 0 || pl[0].End != 5 {
		t.Fatalf("placement = %+v", pl[0])
	}
}

func TestScheduleFillsSlotsBeforeQueueing(t *testing.T) {
	c := New(testConfig())
	// 8 map slots; 8 equal tasks must all start at 0.
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Cost: 10, Preferred: -1}
	}
	pl, makespan := c.Schedule(tasks, 2)
	for i, p := range pl {
		if p.Start != 0 {
			t.Fatalf("task %d starts at %v", i, p.Start)
		}
	}
	if makespan != 1 {
		t.Fatalf("makespan = %v, want 1", makespan)
	}
}

func TestScheduleSecondWave(t *testing.T) {
	c := New(testConfig())
	tasks := make([]Task, 9) // one more than the 8 slots
	for i := range tasks {
		tasks[i] = Task{Cost: 10, Preferred: -1}
	}
	pl, makespan := c.Schedule(tasks, 2)
	if pl[8].Start != 1 {
		t.Fatalf("overflow task starts at %v, want 1", pl[8].Start)
	}
	if makespan != 2 {
		t.Fatalf("makespan = %v, want 2", makespan)
	}
}

func TestScheduleLocalityPreference(t *testing.T) {
	c := New(testConfig())
	// All slots free: each task should land on its preferred node.
	tasks := []Task{
		{Cost: 10, Preferred: 3},
		{Cost: 10, Preferred: 2},
		{Cost: 10, Preferred: 1},
		{Cost: 10, Preferred: 0},
	}
	pl, _ := c.Schedule(tasks, 2)
	for i, p := range pl {
		if p.Node != tasks[i].Preferred {
			t.Fatalf("task %d placed on %d, want %d", i, p.Node, tasks[i].Preferred)
		}
		if !p.Local {
			t.Fatalf("task %d not marked local", i)
		}
	}
}

func TestScheduleNonLocalWhenBusy(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 2
	cfg.RackSize = 2
	c := New(cfg)
	// Node 0 has 1 slot in this pool; three tasks prefer node 0, but
	// greedy earliest-start forces the second onto node 1 at time 0.
	tasks := []Task{
		{Cost: 10, Preferred: 0},
		{Cost: 10, Preferred: 0},
		{Cost: 10, Preferred: 0},
	}
	pl, makespan := c.Schedule(tasks, 1)
	if pl[0].Node != 0 || !pl[0].Local {
		t.Fatalf("first task = %+v", pl[0])
	}
	if pl[1].Node != 1 || pl[1].Local {
		t.Fatalf("second task = %+v", pl[1])
	}
	if pl[2].Node != 0 || pl[2].Start != 1 {
		t.Fatalf("third task = %+v", pl[2])
	}
	if makespan != 2 {
		t.Fatalf("makespan = %v, want 2", makespan)
	}
}

func TestScheduleOnSubset(t *testing.T) {
	c := New(testConfig())
	s := c.Subset([]int{2, 3})
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = Task{Cost: 10, Preferred: -1}
	}
	pl, _ := c.Schedule(tasks, 2) // silence unused warning path: full view
	_ = pl
	plSub, _ := s.Schedule(tasks, 2)
	for i, p := range plSub {
		if p.Node != 2 && p.Node != 3 {
			t.Fatalf("task %d escaped subset: node %d", i, p.Node)
		}
	}
}

func TestScheduleZeroCostTask(t *testing.T) {
	c := New(testConfig())
	pl, makespan := c.Schedule([]Task{{Cost: 0, Preferred: -1}}, 1)
	if makespan != 0 || pl[0].End != 0 {
		t.Fatalf("zero-cost task: makespan=%v placement=%+v", makespan, pl[0])
	}
}

func TestScheduleNegativeCostPanics(t *testing.T) {
	c := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative cost did not panic")
		}
	}()
	c.Schedule([]Task{{Cost: -1, Preferred: -1}}, 1)
}

func TestPresetsAreValid(t *testing.T) {
	for name, cfg := range map[string]Config{
		"small":    Small(),
		"medium":   Medium(),
		"large64":  Large(64),
		"large256": Large(256),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
	if Small().Nodes != 6 || Medium().Nodes != 64 || Large(128).Nodes != 128 {
		t.Error("preset sizes do not match the paper")
	}
	// The paper's medium cluster has 330 map and 110 reduce slots; ours
	// must be close (within one slot per node).
	m := New(Medium())
	if m.MapSlots() < 300 || m.MapSlots() > 360 {
		t.Errorf("medium map slots = %d, want ≈330", m.MapSlots())
	}
	if m.ReduceSlots() < 100 || m.ReduceSlots() > 140 {
		t.Errorf("medium reduce slots = %d, want ≈110", m.ReduceSlots())
	}
}

// Property: makespan is at least total-work/total-slots (no slot is
// oversubscribed) and at least the longest task; every placement falls
// within [0, makespan].
func TestQuickScheduleBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig())
		n := rng.Intn(40) + 1
		tasks := make([]Task, n)
		var total, longest float64
		for i := range tasks {
			cost := float64(rng.Intn(100))
			tasks[i] = Task{Cost: cost, Preferred: rng.Intn(6) - 1}
			if tasks[i].Preferred >= 4 {
				tasks[i].Preferred = -1
			}
			total += cost
			if cost > longest {
				longest = cost
			}
		}
		pl, makespan := c.Schedule(tasks, 2)
		lowerBound := simtime.Duration(total / 10 / 8) // rate 10, 8 slots
		if makespan < lowerBound || makespan < simtime.Duration(longest/10) {
			return false
		}
		for _, p := range pl {
			if p.Start < 0 || p.End > makespan || p.End < p.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: scheduling is deterministic — same input, same placements.
func TestQuickScheduleDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig())
		n := rng.Intn(20) + 1
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{Cost: float64(rng.Intn(50)), Preferred: rng.Intn(4)}
		}
		a, ma := c.Schedule(tasks, 2)
		b, mb := c.Schedule(tasks, 2)
		if ma != mb {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousRates(t *testing.T) {
	cfg := testConfig()
	cfg.NodeRateFactors = []float64{1, 1, 1, 0.5} // node 3 half speed
	c := New(cfg)
	pl, _ := c.Schedule([]Task{{Cost: 100, Preferred: 3}}, 2)
	if pl[0].Node != 3 {
		t.Fatalf("task placed on %d", pl[0].Node)
	}
	if pl[0].End != 20 { // 100 / (10*0.5)
		t.Fatalf("slow-node task ended at %v, want 20", pl[0].End)
	}
	pl, _ = c.Schedule([]Task{{Cost: 100, Preferred: 0}}, 2)
	if pl[0].End != 10 {
		t.Fatalf("fast-node task ended at %v, want 10", pl[0].End)
	}
}

func TestRateFactorsValidation(t *testing.T) {
	cfg := testConfig()
	cfg.NodeRateFactors = []float64{1, 1} // wrong length
	if err := cfg.Validate(); err == nil {
		t.Fatal("wrong-length rate factors accepted")
	}
	cfg.NodeRateFactors = []float64{1, 1, 0, 1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero rate factor accepted")
	}
	cfg.NodeRateFactors = []float64{1, 1, 2, 0.5}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid factors rejected: %v", err)
	}
}

func TestUsageAccounting(t *testing.T) {
	c := New(Config{Nodes: 4, RackSize: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		ComputeRate: 1, NodeBandwidth: 1, RackBandwidth: 1, CoreBandwidth: 1})
	tasks := []Task{{Cost: 2, Preferred: -1}, {Cost: 3, Preferred: -1}, {Cost: 4, Preferred: -1}}
	placements, _ := c.Schedule(tasks, 1)
	u := c.Usage()
	var want simtime.Duration
	for _, p := range placements {
		want += p.End - p.Start
	}
	if got := u.TotalBusy(); got != want {
		t.Fatalf("TotalBusy = %v, want %v", got, want)
	}
	if u.TotalTasks() != len(tasks) {
		t.Fatalf("TotalTasks = %d", u.TotalTasks())
	}
	if u.MaxBusy() <= 0 {
		t.Fatalf("MaxBusy = %v", u.MaxBusy())
	}
	// Sub-views charge the same shared accumulator.
	sub := c.Subset([]int{0, 1})
	sub.Schedule([]Task{{Cost: 5, Preferred: -1}}, 1)
	u2 := c.Usage()
	if u2.TotalTasks() != len(tasks)+1 {
		t.Fatalf("shared accumulator missed sub-view wave: %d", u2.TotalTasks())
	}
	if u2.TotalBusy() != want+5 {
		t.Fatalf("TotalBusy after sub-view = %v", u2.TotalBusy())
	}
	// The snapshot is a copy.
	u2.SlotBusy[0] = 999
	if c.Usage().SlotBusy[0] == 999 {
		t.Fatal("Usage returned a live slice")
	}
}

package simcluster

import (
	"fmt"
	"sort"

	"repro/internal/corrupt"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// NodeEvent is one liveness transition in a FailurePlan: a whole-node
// crash (the node's slots stop dispatching and its disk contents are
// lost) or a recovery (the node rejoins with empty disks).
type NodeEvent struct {
	// Node is the global id of the node the event applies to.
	Node int
	// Time is when the event takes effect on the simulated clock.
	Time simtime.Time
	// Recover marks the event as a node rejoining; false is a crash.
	Recover bool
}

// FailurePlan scripts whole-node crashes and recoveries against the
// simulated clock. Register it with Cluster.SetFailurePlan before
// building runtimes or sub-views; schedulers and the DFS then honor it.
// Crashing an already-dead node or recovering a live one is a no-op, so
// arbitrary (e.g. fuzz-generated) event sequences are valid plans.
type FailurePlan struct {
	Events []NodeEvent
}

// Validate reports whether every event names a node in [0, nodes) at a
// non-negative time.
func (p *FailurePlan) Validate(nodes int) error {
	for i, ev := range p.Events {
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("simcluster: failure event %d: node %d out of range [0,%d)", i, ev.Node, nodes)
		}
		if ev.Time < 0 {
			return fmt.Errorf("simcluster: failure event %d: negative time %g", i, float64(ev.Time))
		}
	}
	return nil
}

// Sorted returns the events ordered by time; events at equal times keep
// their plan order, so replaying a plan is deterministic.
func (p *FailurePlan) Sorted() []NodeEvent {
	if p == nil {
		return nil
	}
	out := append([]NodeEvent(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// DeadAt replays the plan up to and including time t and returns the set
// of nodes dead at that instant. A nil plan returns nil.
func (p *FailurePlan) DeadAt(t simtime.Time) map[int]bool {
	if p == nil {
		return nil
	}
	dead := map[int]bool{}
	for _, ev := range p.Sorted() {
		if ev.Time > t {
			break
		}
		if ev.Recover {
			delete(dead, ev.Node)
		} else {
			dead[ev.Node] = true
		}
	}
	return dead
}

// SetFailurePlan registers a node-failure script on this view and every
// view later derived from it with Subset or Groups. Call it before
// deriving sub-views or constructing runtimes; views created earlier do
// not see the plan. It panics on an invalid plan.
func (c *Cluster) SetFailurePlan(p *FailurePlan) {
	if p != nil {
		if err := p.Validate(c.cfg.Nodes); err != nil {
			panic(err)
		}
	}
	c.failplan = p
}

// FailurePlan returns the registered failure script (nil when none).
func (c *Cluster) FailurePlan() *FailurePlan { return c.failplan }

// SetNetworkPlan registers a network fault script on the shared
// fabric, after validating it against this cluster's topology. Unlike
// a FailurePlan, the plan lives on the fabric itself, so every view
// over the same physical cluster — including views derived before the
// call — sees it. It panics on an invalid plan; use
// simnet.NetworkPlan.Validate for the typed error.
func (c *Cluster) SetNetworkPlan(p *simnet.NetworkPlan) {
	c.fabric.SetNetworkPlan(p)
}

// NetworkPlan returns the network fault script registered on the
// shared fabric (nil when none).
func (c *Cluster) NetworkPlan() *simnet.NetworkPlan { return c.fabric.NetworkPlan() }

// SetCorruptionPlan registers a silent-corruption script on this view
// and every view later derived from it with Subset or Groups. Like
// SetFailurePlan, call it before deriving sub-views or constructing
// runtimes. It panics on an invalid plan; use corrupt.Plan.Validate for
// the typed error.
func (c *Cluster) SetCorruptionPlan(p *corrupt.Plan) {
	if p != nil {
		if err := p.Validate(c.cfg.Nodes); err != nil {
			panic(err)
		}
	}
	c.corruptplan = p
}

// CorruptionPlan returns the registered corruption script (nil when
// none).
func (c *Cluster) CorruptionPlan() *corrupt.Plan { return c.corruptplan }

// LiveNodesAt returns the view's nodes alive at time t under the
// registered plan (all nodes when no plan is registered).
func (c *Cluster) LiveNodesAt(t simtime.Time) []int {
	dead := c.failplan.DeadAt(t)
	if len(dead) == 0 {
		return c.nodes
	}
	live := make([]int, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !dead[n] {
			live = append(live, n)
		}
	}
	return live
}

package bench

import (
	"sync"
	"sync/atomic"
)

// Experiment cells.
//
// Every figure row, table column and ablation sweep point is an
// independent experiment cell: it builds its own workload, cluster,
// fabric and metrics registry, runs to completion, and deposits its
// result at a fixed index. Nothing is shared between cells but
// read-only inputs (a generated graph, the global scale), so cells can
// execute concurrently without changing a single byte of output: the
// simulated clocks and traffic counters live inside each cell, and
// results are assembled by index, never by completion order.

// parallelism is the bound on concurrently running cells. It is set
// once by the driver before experiments start (picbench -parallel).
var parallelism atomic.Int64

func init() { parallelism.Store(1) }

// SetParallelism bounds how many experiment cells may run at once.
// Values below 1 are treated as 1 (serial).
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the current cell-parallelism bound.
func Parallelism() int { return int(parallelism.Load()) }

// runCells executes fn(0) … fn(n-1) on at most Parallelism() workers
// and returns the error of the lowest failing index — the same error a
// serial loop would report first. Cells after a failing one may still
// have run; their results are discarded by the caller returning the
// error.
func runCells(n int, fn func(i int) error) error {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

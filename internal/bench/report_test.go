package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// reportScale shrinks the report workloads for test speed, restoring
// the global scale afterwards.
func reportScale(t *testing.T) {
	t.Helper()
	scale = 0.05
	t.Cleanup(func() { scale = 1.0 })
}

func TestRunReportUnknownWorkload(t *testing.T) {
	if _, err := RunReport("no-such-workload"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunReportArtifacts(t *testing.T) {
	reportScale(t)
	rep, err := RunReport("kmeans")
	if err != nil {
		t.Fatal(err)
	}

	// Convergence CSV: header, one row per observed iteration, strictly
	// monotone simulated time across the best-effort/top-off boundary.
	lines := strings.Split(strings.TrimSpace(rep.ConvergenceCSV()), "\n")
	if lines[0] != "phase,iteration,time_s,delta" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("csv has %d rows", len(lines)-1)
	}
	prev := math.Inf(-1)
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			t.Fatalf("csv row %q", line)
		}
		ts, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || ts <= prev {
			t.Fatalf("csv time not monotone at %q (prev %g)", line, prev)
		}
		prev = ts
	}

	// Chrome trace: parses back through encoding/json and contains
	// spans from the network, framework and driver layers.
	var buf bytes.Buffer
	if err := rep.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	cats := map[string]bool{}
	for _, e := range tr.TraceEvents {
		if e.Ph != "M" {
			cats[e.Cat] = true
		}
	}
	for _, want := range []string{"simnet", "mapred", "core"} {
		if !cats[want] {
			t.Fatalf("trace missing %s spans; have %v", want, cats)
		}
	}

	// The registry's phase counters must equal the driver's Metrics
	// phase breakdown — the consistency the report's table asserts.
	snap := rep.Registry.Snapshot()
	for _, p := range []struct {
		name string
		want float64
	}{
		{"map", float64(rep.Result.Metrics.MapPhase)},
		{"shuffle", float64(rep.Result.Metrics.ShufflePhase)},
		{"reduce", float64(rep.Result.Metrics.ReducePhase)},
		{"model", float64(rep.Result.Metrics.ModelPhase)},
		{"overhead", float64(rep.Result.Metrics.OverheadPhase)},
	} {
		got := phaseCounter(snap, p.name)
		if math.Abs(got-p.want) > 1e-9*math.Max(1, p.want) {
			t.Fatalf("phase %s: registry %g != metrics %g", p.name, got, p.want)
		}
	}

	out := rep.Render()
	for _, want := range []string{"run inspector: kmeans", "per-node utilization", "metrics registry", "end-to-end"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunReportDeterministic(t *testing.T) {
	reportScale(t)
	render := make([]string, 2)
	traces := make([][]byte, 2)
	csvs := make([]string, 2)
	for i := range render {
		rep, err := RunReport("kmeans")
		if err != nil {
			t.Fatal(err)
		}
		render[i] = rep.Render()
		var buf bytes.Buffer
		if err := rep.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		traces[i] = buf.Bytes()
		csvs[i] = rep.ConvergenceCSV()
	}
	if render[0] != render[1] {
		t.Fatal("report text differs between identical runs")
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Fatal("trace JSON differs between identical runs")
	}
	if csvs[0] != csvs[1] {
		t.Fatal("convergence CSV differs between identical runs")
	}
}

// Package bench regenerates every table and figure of the paper's
// evaluation (§V and §VI): the runtime/traffic breakdown of Figure 2,
// the cluster speedups of Figures 9–11, the error-vs-time trajectories
// of Figure 12, and Tables I–III, plus ablations over the design knobs
// DESIGN.md calls out. Each experiment returns a structured result and
// renders the same rows/series the paper reports.
package bench

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// HadoopCost returns the cost model calibrated to the Hadoop-0.20-era
// behaviour the paper measures:
//
//   - ≈400 µs of framework-plus-user cost per map record (record
//     reader, object churn, context.write, and the per-record math of
//     the case studies on 2008-era Xeons);
//   - per-byte costs for the serialize/sort/spill handling of
//     intermediate data;
//   - a small per-job overhead — the paper subtracts repeated job
//     initialization from its baseline (§V-A), so only a residual
//     start/finish cost remains, paid equally by both schemes;
//   - local (in-memory) iterations at 1/7 of framework cost. The
//     paper's own measurements imply this ratio: its best-effort phase
//     runs ≈42 local iterations in one fifth of the time the baseline
//     spends on 31 framework iterations (§II, Table I), giving
//     31/(5·42) ≈ 1/7. The ablation bench sweeps this knob.
func HadoopCost() mapred.CostModel {
	return mapred.CostModel{
		MapCostPerRecord:   400e3,
		MapCostPerByte:     10,
		EmitCostPerByte:    30,
		ReduceCostPerValue: 100e3,
		ShuffleOverlap:     0.5,
		JobOverhead:        0.05,
		LocalComputeFactor: 1.0 / 7.0,
	}
}

// Workload bundles everything needed to run one application under both
// schemes on fresh, identical runtimes.
type Workload struct {
	// Name labels the workload in rendered tables.
	Name string
	// Cluster is the testbed configuration.
	Cluster simcluster.Config
	// Cost is the cost model (defaults to HadoopCost).
	Cost mapred.CostModel
	// MakeApp builds a fresh application instance (apps may carry
	// partitioning state, so each run gets its own).
	MakeApp func() core.PICApp
	// MakeInput builds the input dataset on the given cluster view.
	MakeInput func(c *simcluster.Cluster) *mapred.Input
	// MakeModel builds the initial model.
	MakeModel func() *model.Model
	// ICOpts and PICOpts configure the two drivers.
	ICOpts  core.ICOptions
	PICOpts core.PICOptions
	// Tracer, when set, is attached to every runtime the workload
	// creates, collecting the execution timeline.
	Tracer *trace.Tracer
}

// engineWorkers pins the real (not simulated) execution parallelism of
// every engine the bench creates; zero (the default) leaves the
// engine's own GOMAXPROCS default. Simulated results are identical at
// any setting — the determinism tests hold this invariant.
var engineWorkers atomic.Int64

// SetEngineWorkers pins Engine.Workers on every runtime subsequently
// built by a Workload. Zero restores the GOMAXPROCS default.
func SetEngineWorkers(n int) { engineWorkers.Store(int64(n)) }

// NewRuntime builds a fresh runtime for the workload's cluster.
func (w *Workload) NewRuntime() *core.Runtime {
	cluster := simcluster.New(w.Cluster)
	rt := core.NewRuntime(cluster, dfs.DefaultConfig())
	cost := w.Cost
	if cost == (mapred.CostModel{}) {
		cost = HadoopCost()
	}
	rt.Engine().SetCostModel(cost)
	rt.Engine().Workers = int(engineWorkers.Load())
	rt.SetTracer(w.Tracer)
	return rt
}

// Comparison holds one IC-versus-PIC run of a workload.
type Comparison struct {
	Workload *Workload
	IC       *core.ICResult
	PIC      *core.PICResult
}

// Speedup is the headline metric: conventional time over PIC time.
func (c *Comparison) Speedup() float64 {
	return float64(c.IC.Duration) / float64(c.PIC.Duration)
}

// RunIC executes only the conventional scheme (with an optional
// observer for trajectory experiments).
func (w *Workload) RunIC(obs core.Observer) (*core.ICResult, error) {
	rt := w.NewRuntime()
	opts := w.ICOpts
	opts.Observer = obs
	return core.RunIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), &opts)
}

// RunPIC executes only the PIC scheme.
func (w *Workload) RunPIC(obs core.Observer) (*core.PICResult, error) {
	rt := w.NewRuntime()
	opts := w.PICOpts
	opts.Observer = obs
	return core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), opts)
}

// RunComparison executes the workload under both schemes.
func RunComparison(w *Workload) (*Comparison, error) {
	ic, err := w.RunIC(nil)
	if err != nil {
		return nil, fmt.Errorf("bench: %s baseline: %w", w.Name, err)
	}
	pic, err := w.RunPIC(nil)
	if err != nil {
		return nil, fmt.Errorf("bench: %s PIC: %w", w.Name, err)
	}
	return &Comparison{Workload: w, IC: ic, PIC: pic}, nil
}

// ICNetworkBytes sums the baseline's interconnect traffic: shuffle that
// crossed nodes, model distribution, and model updates.
func (c *Comparison) ICNetworkBytes() int64 {
	return c.IC.Metrics.ShuffleNetworkBytes + c.IC.Metrics.ModelBytes + c.IC.ModelUpdateBytes
}

// PICNetworkBytes sums PIC's interconnect traffic, including the
// best-effort phase's repartition and merge flows.
func (c *Comparison) PICNetworkBytes() int64 {
	return c.PIC.Metrics.ShuffleNetworkBytes + c.PIC.Metrics.ModelBytes + c.PIC.ModelUpdateBytes +
		c.PIC.RepartitionBytes + c.PIC.MergeTrafficBytes
}

// FormatBytes renders a byte count the way the paper's Table II does.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// FormatDuration renders simulated seconds.
func FormatDuration(d simtime.Duration) string {
	return fmt.Sprintf("%.1f s", float64(d))
}

// table renders fixed-width rows.
type table struct {
	sb strings.Builder
}

func (t *table) title(s string) { fmt.Fprintf(&t.sb, "%s\n%s\n", s, strings.Repeat("-", len(s))) }

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i == 0 {
			fmt.Fprintf(&t.sb, "%-36s", c)
		} else {
			fmt.Fprintf(&t.sb, "  %16s", c)
		}
	}
	t.sb.WriteByte('\n')
}

func (t *table) String() string { return t.sb.String() }

// scale is the dataset-size multiplier (picbench -scale). The default
// of 1 reproduces the paper-shaped configurations; values below 1
// shrink datasets for smoke runs, and values above 1 climb the scale
// ladder — the tiered kernels and abl-scale grow records and simulated
// nodes with the tier (tier 100 ≈ 10⁷ records on 1000+ nodes).
var scale = 1.0

// SetScale adjusts the dataset-size multiplier applied by the
// experiment functions and the scale-tier kernels. Values in (0, 1)
// are smoke tiers, 1 is the paper shape (EXPERIMENTS.md numbers), and
// values above 1 are ladder rungs; only non-positive values are
// rejected.
func SetScale(s float64) {
	if s <= 0 {
		panic("bench: scale must be positive")
	}
	scale = s
}

// Scale reports the current dataset-size multiplier.
func Scale() float64 { return scale }

// scaled applies the current scale to a dataset size, keeping at least
// floor records.
func scaled(n, floor int) int {
	out := int(float64(n) * scale)
	if out < floor {
		out = floor
	}
	return out
}

package bench

import (
	"strings"
	"testing"
)

// TestExperimentsSmoke runs every paper experiment at 5% scale: each
// must complete, produce well-formed results, and render. The
// full-scale numbers live in EXPERIMENTS.md; this guards the harness
// itself.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests skipped in -short mode")
	}
	SetScale(0.05)
	defer SetScale(1.0)

	t.Run("fig2", func(t *testing.T) {
		r, err := Fig2()
		if err != nil {
			t.Fatal(err)
		}
		if r.Speedup <= 0 || r.ICIterations == 0 {
			t.Fatalf("malformed result: %+v", r)
		}
		if !strings.Contains(r.Render(), "Speedup") {
			t.Fatal("render missing speedup")
		}
	})
	t.Run("fig9", func(t *testing.T) {
		fig, err := Fig9()
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Rows) != 3 {
			t.Fatalf("got %d rows", len(fig.Rows))
		}
		for _, row := range fig.Rows {
			if row.Speedup <= 0 {
				t.Fatalf("row %q speedup %v", row.App, row.Speedup)
			}
		}
	})
	t.Run("fig11", func(t *testing.T) {
		r, err := Fig11()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Points) != 4 {
			t.Fatalf("got %d points", len(r.Points))
		}
	})
	t.Run("fig12c", func(t *testing.T) {
		r, err := Fig12c()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.IC.Points) == 0 || len(r.PIC.Points) == 0 {
			t.Fatal("empty trajectories")
		}
		icFinal, picFinal := r.FinalValues()
		if icFinal <= 0 || picFinal <= 0 {
			t.Fatalf("non-positive final errors: %v, %v", icFinal, picFinal)
		}
		if !strings.Contains(r.Render(), "log scale") {
			t.Fatal("solver trajectory not log-scaled")
		}
	})
	t.Run("table1", func(t *testing.T) {
		r, err := Table1()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 4 {
			t.Fatalf("got %d rows", len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.ICIterations == 0 || row.BEIterations == 0 {
				t.Fatalf("malformed row: %+v", row)
			}
		}
	})
	t.Run("table2", func(t *testing.T) {
		r, err := Table2()
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalICIntermediate <= r.OneIterIntermediate {
			t.Fatalf("totals inconsistent: %+v", r)
		}
		if r.PICIntermediate >= r.TotalICIntermediate {
			t.Fatal("PIC intermediate not below baseline")
		}
	})
	t.Run("table3", func(t *testing.T) {
		r, err := Table3()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.DiffPercent > 10 {
				t.Fatalf("best-effort quality gap %.1f%%", row.DiffPercent)
			}
		}
	})
	t.Run("abl-faults", func(t *testing.T) {
		r, err := AblationNodeFailure()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 4 {
			t.Fatalf("got %d rows", len(r.Rows))
		}
		for _, row := range r.Rows {
			if !row.ConvergedLikeSame {
				t.Fatalf("%s %s did not converge", row.Scheme, row.Condition)
			}
			if row.Condition == "node crash" && row.ReReplicationB == 0 {
				t.Fatalf("%s crash run charged no re-replication traffic", row.Scheme)
			}
		}
		if !strings.Contains(r.Render(), "Re-repl") {
			t.Fatal("render missing re-replication column")
		}
	})
	t.Run("abl-tenancy", func(t *testing.T) {
		r, err := AblationMultiTenant()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 4 {
			t.Fatalf("got %d rows", len(r.Rows))
		}
		if !r.Monotone() {
			t.Fatalf("speedup not monotone in co-tenant load: %+v", r.Rows)
		}
		for i, row := range r.Rows {
			if row.Speedup <= 1 {
				t.Fatalf("row %d: PIC not ahead under contention: %+v", i, row)
			}
			if row.ICSteps != r.Rows[0].ICSteps || row.PICSteps != r.Rows[0].PICSteps {
				t.Fatalf("iteration counts vary with contention — timing leaked into model math: %+v", r.Rows)
			}
		}
		rend := r.Render()
		for _, want := range []string{"Per-tenant metrics", "analytics", "background", "Scheduler spans"} {
			if !strings.Contains(rend, want) {
				t.Fatalf("render missing %q:\n%s", want, rend)
			}
		}
	})
	t.Run("abl-degenerate", func(t *testing.T) {
		r, err := AblationDegenerate()
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxCentroidDelta >= r.ConvergenceThreshold {
			t.Fatalf("degenerate delta %.3g above threshold %.3g",
				r.MaxCentroidDelta, r.ConvergenceThreshold)
		}
	})
}

func TestSetScaleValidation(t *testing.T) {
	for _, s := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v accepted", s)
				}
			}()
			SetScale(s)
		}()
	}
	// Ladder tiers above 1 are valid: scaled() grows with them.
	SetScale(10)
	if scaled(100, 1) != 1000 {
		t.Fatalf("scaled(100) = %d at scale 10", scaled(100, 1))
	}
	SetScale(0.5)
	if scaled(100, 1) != 50 {
		t.Fatalf("scaled(100) = %d at scale 0.5", scaled(100, 1))
	}
	if scaled(100, 80) != 80 {
		t.Fatal("floor not applied")
	}
	SetScale(1.0)
	if scaled(100, 1) != 100 {
		t.Fatal("scale not restored")
	}
}

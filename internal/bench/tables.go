package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps/kmeans"
	"repro/internal/quality"
	"repro/internal/simcluster"
)

// Table1Row is one dataset size of Table I.
type Table1Row struct {
	Size          int
	ICIterations  int
	BEIterations  int
	MaxLocalIters []int
}

// Table1Result reproduces Table I: iterations required by the
// conventional scheme versus the best-effort phase of PIC for K-means
// across dataset sizes (paper: 0.5M–500M points; scaled to 2k–200k).
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the iteration-count experiment on the small cluster.
func Table1() (*Table1Result, error) {
	res := &Table1Result{}
	for i, size := range []int{scaled(60_000, 10_000), scaled(150_000, 20_000), scaled(300_000, 40_000), scaled(600_000, 80_000)} {
		w, _ := KMeansWorkload(fmt.Sprintf("kmeans-tab1-%d", size),
			simcluster.Small(), size, 25, 3, 6, int64(10+i))
		c, err := RunComparison(w)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Size:          size,
			ICIterations:  c.IC.Iterations,
			BEIterations:  c.PIC.BEIterations,
			MaxLocalIters: c.PIC.MaxLocalIterationsPerBE(),
		})
	}
	return res, nil
}

// Render formats the table with the paper's three rows.
func (r *Table1Result) Render() string {
	var t table
	t.title("Table I — iterations for IC and the best-effort phase of PIC (K-means)")
	cells := []string{"DataSet Size"}
	for _, row := range r.Rows {
		cells = append(cells, fmt.Sprintf("%dk", row.Size/1000))
	}
	t.row(cells...)
	cells = []string{"Number of IC Iterations"}
	for _, row := range r.Rows {
		cells = append(cells, fmt.Sprint(row.ICIterations))
	}
	t.row(cells...)
	cells = []string{"Number of Best-effort Iterations"}
	for _, row := range r.Rows {
		cells = append(cells, fmt.Sprint(row.BEIterations))
	}
	t.row(cells...)
	cells = []string{"(Max) Local Iterations per BE iter"}
	for _, row := range r.Rows {
		parts := make([]string, len(row.MaxLocalIters))
		for i, n := range row.MaxLocalIters {
			parts[i] = fmt.Sprint(n)
		}
		cells = append(cells, strings.Join(parts, " "))
	}
	t.row(cells...)
	return t.String()
}

// Table2Result reproduces Table II: the volume of intermediate data and
// model updates for K-means under both schemes (paper: 500M points on
// the small cluster; scaled to 200k).
//
// Counter correspondence: the IC columns report Hadoop's "map output
// bytes" counter (intermediate data is materialized before the combiner
// runs); the PIC column reports the bytes that actually crossed node
// boundaries during the best-effort phase — local iterations keep
// intermediate pairs in memory, so, exactly as in the paper, only the
// partial-model movement of the merge step is visible. TopOff columns
// are reported separately for transparency.
type Table2Result struct {
	OneIterIntermediate int64
	TotalICIntermediate int64
	PICIntermediate     int64 // best-effort phase network bytes + merge traffic
	TopOffIntermediate  int64 // map output of the top-off iterations

	OneIterModelUpdates int64
	TotalICModelUpdates int64
	PICModelUpdates     int64

	ICIterations int
	TopOffIters  int
}

// Table2 runs the traffic-volume experiment on the small cluster.
func Table2() (*Table2Result, error) {
	w, _ := KMeansWorkload("kmeans-tab2", simcluster.Small(), scaled(600_000, 30_000), 25, 3, 6, 2)

	// One baseline iteration.
	one := *w
	one.ICOpts.MaxIterations = 1
	oneRun, err := one.RunIC(nil)
	if err != nil {
		return nil, err
	}
	// Full baseline.
	c, err := RunComparison(w)
	if err != nil {
		return nil, err
	}
	return &Table2Result{
		OneIterIntermediate: oneRun.Metrics.MapOutputBytes,
		TotalICIntermediate: c.IC.Metrics.MapOutputBytes,
		PICIntermediate: c.PIC.BEMetrics.ShuffleNetworkBytes + c.PIC.MergeTrafficBytes +
			c.PIC.RepartitionBytes,
		TopOffIntermediate:  c.PIC.TopOffMetrics.MapOutputBytes,
		OneIterModelUpdates: oneRun.ModelUpdateBytes,
		TotalICModelUpdates: c.IC.ModelUpdateBytes,
		PICModelUpdates:     c.PIC.ModelUpdateBytes,
		ICIterations:        c.IC.Iterations,
		TopOffIters:         c.PIC.TopOffIterations,
	}, nil
}

// Render formats the table like the paper's Table II.
func (r *Table2Result) Render() string {
	var t table
	t.title("Table II — data read or generated, K-means clustering (scaled: 600k points)")
	t.row("", "1 Baseline It.", "Total Baseline", "Total PIC (BE)", "PIC top-off")
	t.row("Intermediate data",
		FormatBytes(r.OneIterIntermediate), FormatBytes(r.TotalICIntermediate),
		FormatBytes(r.PICIntermediate), FormatBytes(r.TopOffIntermediate))
	t.row("Model updates",
		FormatBytes(r.OneIterModelUpdates), FormatBytes(r.TotalICModelUpdates),
		FormatBytes(r.PICModelUpdates), "-")
	t.row("Iterations", "1", fmt.Sprint(r.ICIterations), "-", fmt.Sprint(r.TopOffIters))
	return t.String()
}

// Table3Row is one dataset of Table III.
type Table3Row struct {
	Dataset     string
	ICJagota    float64
	PICBEJagota float64
	DiffPercent float64
}

// Table3Result reproduces Table III: the quality of the best-effort
// phase's model, measured by the Jagota index against the full IC
// solution (the paper reports differences of 0.14% and 2.75%).
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the clustering-quality experiment on two datasets.
func Table3() (*Table3Result, error) {
	res := &Table3Result{}
	for i, seed := range []int64{21, 22} {
		w, ps := KMeansWorkload(fmt.Sprintf("kmeans-tab3-%d", i+1),
			simcluster.Small(), scaled(150_000, 20_000), 25, 3, 6, seed)
		c, err := RunComparison(w)
		if err != nil {
			return nil, err
		}
		icQ := quality.JagotaIndex(ps.Points, kmeans.Centroids(c.IC.Model))
		beQ := quality.JagotaIndex(ps.Points, kmeans.Centroids(c.PIC.BestEffortModel))
		res.Rows = append(res.Rows, Table3Row{
			Dataset:     fmt.Sprintf("Dataset %d", i+1),
			ICJagota:    icQ,
			PICBEJagota: beQ,
			DiffPercent: quality.PercentDifference(beQ, icQ),
		})
	}
	return res, nil
}

// Render formats the table like the paper's Table III.
func (r *Table3Result) Render() string {
	var t table
	t.title("Table III — quality of PIC's best-effort phase, Jagota index (K-means)")
	cells := []string{""}
	for _, row := range r.Rows {
		cells = append(cells, row.Dataset)
	}
	t.row(cells...)
	cells = []string{"IC K-means"}
	for _, row := range r.Rows {
		cells = append(cells, fmt.Sprintf("%.4f", row.ICJagota))
	}
	t.row(cells...)
	cells = []string{"PIC BE Phase K-means"}
	for _, row := range r.Rows {
		cells = append(cells, fmt.Sprintf("%.4f", row.PICBEJagota))
	}
	t.row(cells...)
	cells = []string{"Difference (%)"}
	for _, row := range r.Rows {
		cells = append(cells, fmt.Sprintf("%.2f%%", row.DiffPercent))
	}
	t.row(cells...)
	return t.String()
}

package bench

import (
	"strings"
	"testing"

	"repro/internal/mapred"
	"repro/internal/simcluster"
	"repro/internal/writable"
)

func TestTierShape(t *testing.T) {
	// Clamps at the bottom of the ladder.
	nodes, racks, parts, records := tierShape(0.01)
	if nodes != 8 || racks != 1 || parts != 4 || records != 5_000 {
		t.Fatalf("tier 0.01 shape = %d/%d/%d/%d", nodes, racks, parts, records)
	}
	// Monotone growth up the ladder, and the documented top-end claim:
	// combined tier 1000 reaches 10⁷+ records on 1,000+ nodes.
	prevNodes, prevRecords := 0, 0
	for _, tier := range []float64{1, 10, 100, 1000} {
		nodes, racks, parts, records := tierShape(tier)
		if nodes <= prevNodes || records <= prevRecords {
			t.Fatalf("tier %g did not grow: %d nodes, %d records", tier, nodes, records)
		}
		if parts != 4*racks {
			t.Fatalf("tier %g: %d partitions for %d racks", tier, parts, racks)
		}
		prevNodes, prevRecords = nodes, records
	}
	nodes, _, _, records = tierShape(1000)
	if nodes < 1_000 || records < 10_000_000 {
		t.Fatalf("tier 1000 = %d nodes, %d records; documented as 1k+ nodes, 10⁷+ records", nodes, records)
	}
}

// TestScaleWorkloadMatchesResident pins the streamed workload's input
// to the resident dealing it replaces: same keys, same order, same
// split homes, same encoded bytes.
func TestScaleWorkloadMatchesResident(t *testing.T) {
	const n, k, dims = 3_000, 5, 3
	w, stream := scaleWorkload("scale-equiv", 8, n, k, dims, 4, 3)
	cluster := simcluster.New(w.Cluster)
	in := w.MakeInput(cluster)

	ps := stream.Materialize()
	src := &mixtureSource{stream: stream, splits: 1}
	recs := src.Records(0, nil)
	if len(recs) != n {
		t.Fatalf("source dealt %d records for n=%d", len(recs), n)
	}
	for i, rec := range recs {
		vec := rec.Value.(writable.Vector)
		if len(vec) != dims {
			t.Fatalf("record %d has %d dims", i, len(vec))
		}
		for d := range vec {
			if vec[d] != ps.Points[i][d] {
				t.Fatalf("record %d dim %d: streamed %v, materialized %v", i, d, vec[d], ps.Points[i][d])
			}
		}
	}
	if got, want := in.TotalBytes(), mapred.RecordsSize(recs); got != want {
		t.Fatalf("streamed input totals %d bytes, resident records total %d", got, want)
	}
}

func TestAblationScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale ablation smoke skipped in -short mode")
	}
	SetScale(0.05)
	defer SetScale(1.0)
	res, err := AblationScale()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("expected 2 tiers x 2 strategies, got %d cells", len(res.Cells))
	}
	if !res.Identical() {
		t.Fatal("workers 1 vs 8 outputs differ")
	}
	if !res.SentinelsQuiet() {
		t.Fatal("cost-model sentinel tripped on a healthy run")
	}
	if !res.CoreReduced() {
		t.Fatal("hierarchical merge did not reduce core-crossing bytes on a multi-rack rung")
	}
	for tier, st := range res.Stream {
		if st.Records == 0 || st.Bytes == 0 {
			t.Fatalf("tier %g stream stats empty: %+v", tier, st)
		}
		if st.PeakResidentBytes >= st.Bytes/2 {
			t.Fatalf("tier %g streaming held %d of %d bytes resident — not out-of-core", tier, st.PeakResidentBytes, st.Bytes)
		}
	}
	out := res.Render()
	for _, want := range []string{"scale ladder", "core-byte reduction", "byte-identical", "sentinel"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simcluster"
	"repro/internal/simtime"
)

// smallKMeans builds a fast workload for harness tests.
func smallKMeans(t *testing.T) *Workload {
	t.Helper()
	w, _ := KMeansWorkload("kmeans-test", simcluster.Small(), 30_000, 8, 3, 6, 1)
	return w
}

func TestHadoopCostValid(t *testing.T) {
	if err := HadoopCost().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunComparisonProducesBothResults(t *testing.T) {
	c, err := RunComparison(smallKMeans(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.IC == nil || c.PIC == nil {
		t.Fatal("missing results")
	}
	if c.IC.Duration <= 0 || c.PIC.Duration <= 0 {
		t.Fatal("zero durations")
	}
	if c.Speedup() <= 0 {
		t.Fatalf("speedup = %v", c.Speedup())
	}
}

func TestComparisonTrafficAccessors(t *testing.T) {
	c, err := RunComparison(smallKMeans(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.ICNetworkBytes() <= 0 || c.PICNetworkBytes() <= 0 {
		t.Fatalf("traffic: ic=%d pic=%d", c.ICNetworkBytes(), c.PICNetworkBytes())
	}
}

func TestWorkloadRunICWithObserver(t *testing.T) {
	w := smallKMeans(t)
	n := 0
	res, err := w.RunIC(func(core.Sample) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != res.Iterations {
		t.Fatalf("observer fired %d times for %d iterations", n, res.Iterations)
	}
}

func TestWorkloadDefaultsCost(t *testing.T) {
	w := smallKMeans(t)
	rt := w.NewRuntime()
	if rt.Engine().CostModelValue() != HadoopCost() {
		t.Fatal("workload without Cost did not default to HadoopCost")
	}
	w.Cost = HadoopCost()
	w.Cost.JobOverhead = 42
	rt = w.NewRuntime()
	if rt.Engine().CostModelValue().JobOverhead != 42 {
		t.Fatal("explicit cost not applied")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2048:          "2.00 KB",
		3 << 20:       "3.00 MB",
		5 << 30:       "5.00 GB",
		9<<30 + 1<<29: "9.50 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(simtime.Duration(12.34)); got != "12.3 s" {
		t.Fatalf("FormatDuration = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	var tb table
	tb.title("Demo")
	tb.row("col", "a", "b")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "----") {
		t.Fatalf("missing title/underline: %q", out)
	}
	if !strings.Contains(out, "col") || !strings.Contains(out, "a") {
		t.Fatalf("missing cells: %q", out)
	}
}

func TestWorkloadConstructorsBuild(t *testing.T) {
	// Every constructor must produce a runnable workload (checked by
	// building inputs and models, not full runs — those are the
	// benchmarks' job).
	kw, ps := KMeansWorkload("k", simcluster.Small(), 1_000, 4, 3, 2, 1)
	if len(ps.Points) != 1_000 {
		t.Fatal("kmeans dataset size")
	}
	pw, g := PageRankWorkload("p", simcluster.Small(), 500, 5, 0.1, 1)
	if g.N != 500 {
		t.Fatal("graph size")
	}
	lw, app := LinSolveWorkload("l", simcluster.Small(), 20, 4, 1)
	if app == nil {
		t.Fatal("nil linsolve app")
	}
	nw, _, train, valid := NeuralNetWorkload("n", simcluster.Small(), 200, 4, 1)
	if len(train.Vectors) != 200 || len(valid.Vectors) != 50 {
		t.Fatal("ocr sizes")
	}
	sw, img := SmoothingWorkload("s", simcluster.Small(), 32, 16, 4, 1)
	if img.Width != 32 {
		t.Fatal("image size")
	}
	for _, w := range []*Workload{kw, pw, lw, nw, sw} {
		rt := w.NewRuntime()
		in := w.MakeInput(rt.Cluster())
		if in.NumRecords() == 0 {
			t.Fatalf("%s: empty input", w.Name)
		}
		if w.MakeModel().Len() == 0 {
			t.Fatalf("%s: empty model", w.Name)
		}
		if w.MakeApp() == nil {
			t.Fatalf("%s: nil app", w.Name)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	// Rendering smoke tests over synthetic results (no experiment runs).
	fig := &SpeedupFigure{Title: "T", Rows: []SpeedupRow{{App: "a", Speedup: 2}}}
	if !strings.Contains(fig.Render(), "2.00x") {
		t.Fatal("SpeedupFigure.Render missing speedup")
	}
	f2 := &Fig2Result{Speedup: 3, ICTrafficBytes: 1 << 20, PICTraffic: 1 << 10}
	if !strings.Contains(f2.Render(), "3.00x") {
		t.Fatal("Fig2Result.Render missing speedup")
	}
	f11 := &Fig11Result{Points: []Fig11Point{{Nodes: 64, Speedup: 3.3}}}
	if !strings.Contains(f11.Render(), "64") {
		t.Fatal("Fig11Result.Render missing nodes")
	}
	f12 := &Fig12Result{Title: "t", Metric: "err",
		IC:  Trajectory{Points: []TrajectoryPoint{{Time: 1, Value: 0.5}}},
		PIC: Trajectory{Points: []TrajectoryPoint{{Time: 2, Value: 0.25}}}}
	if !strings.Contains(f12.Render(), "0.5") {
		t.Fatal("Fig12Result.Render missing values")
	}
	t1 := &Table1Result{Rows: []Table1Row{{Size: 1000, ICIterations: 30, BEIterations: 4, MaxLocalIters: []int{20, 3}}}}
	if !strings.Contains(t1.Render(), "30") || !strings.Contains(t1.Render(), "20 3") {
		t.Fatal("Table1Result.Render missing data")
	}
	t2 := &Table2Result{OneIterIntermediate: 1 << 20}
	if !strings.Contains(t2.Render(), "1.00 MB") {
		t.Fatal("Table2Result.Render missing bytes")
	}
	t3 := &Table3Result{Rows: []Table3Row{{Dataset: "Dataset 1", ICJagota: 2.1, PICBEJagota: 2.15, DiffPercent: 2.4}}}
	if !strings.Contains(t3.Render(), "2.40%") {
		t.Fatal("Table3Result.Render missing percent")
	}
	ps := &PartitionSweepResult{Rows: []PartitionSweepRow{{Partitions: 6, Speedup: 2}}}
	if !strings.Contains(ps.Render(), "6") {
		t.Fatal("PartitionSweepResult.Render missing partitions")
	}
	cs := &CouplingSweepResult{Rows: []CouplingRow{{CrossFraction: 0.05, Speedup: 2}}}
	if !strings.Contains(cs.Render(), "0.05") {
		t.Fatal("CouplingSweepResult.Render missing fraction")
	}
	lf := &LocalFactorSweepResult{Rows: []LocalFactorRow{{Factor: 0.5, Speedup: 2}}}
	if !strings.Contains(lf.Render(), "0.500") {
		t.Fatal("LocalFactorSweepResult.Render missing factor")
	}
	dg := &DegenerateResult{MaxCentroidDelta: 0.001}
	if !strings.Contains(dg.Render(), "0.001") {
		t.Fatal("DegenerateResult.Render missing delta")
	}
}

func TestFig12TimeToReach(t *testing.T) {
	r := &Fig12Result{
		IC: Trajectory{Points: []TrajectoryPoint{
			{Time: 1, Value: 0.9}, {Time: 2, Value: 0.5}, {Time: 3, Value: 0.1}}},
		PIC: Trajectory{Points: []TrajectoryPoint{
			{Time: 0.5, Value: 0.4}, {Time: 1, Value: 0.05}}},
	}
	icT, picT := r.TimeToReach(0.45)
	if icT != 3 || picT != 0.5 {
		t.Fatalf("TimeToReach = %v, %v", icT, picT)
	}
	icT, _ = r.TimeToReach(0.001)
	if icT != -1 {
		t.Fatalf("unreachable level gave %v", icT)
	}
	ic, pic := r.FinalValues()
	if ic != 0.1 || pic != 0.05 {
		t.Fatalf("FinalValues = %v, %v", ic, pic)
	}
}

func TestPICBeatsICOnSmallWorkload(t *testing.T) {
	// The headline claim at unit-test scale: PIC is faster and moves
	// fewer recurring bytes.
	c, err := RunComparison(smallKMeans(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup() <= 1 {
		t.Fatalf("PIC not faster: %.2fx", c.Speedup())
	}
	// Excluding the one-time repartitioning, PIC's recurring traffic
	// must be lower.
	picRecurring := c.PICNetworkBytes() - c.PIC.RepartitionBytes
	if picRecurring >= c.ICNetworkBytes() {
		t.Fatalf("PIC recurring traffic %d not below IC %d", picRecurring, c.ICNetworkBytes())
	}
}

func TestChartRendering(t *testing.T) {
	r := &Fig12Result{
		Title:  "demo",
		Metric: "err",
		IC: Trajectory{Points: []TrajectoryPoint{
			{Time: 0, Value: 100}, {Time: 10, Value: 1}, {Time: 20, Value: 0.01}}},
		PIC: Trajectory{Points: []TrajectoryPoint{
			{Time: 0, Value: 100}, {Time: 5, Value: 0.01}}},
	}
	chart := r.Chart(40, 10)
	if !strings.Contains(chart, "log scale") {
		t.Fatal("wide-range chart not log scaled")
	}
	if !strings.Contains(chart, "i") || !strings.Contains(chart, "p") {
		t.Fatalf("chart missing series marks:\n%s", chart)
	}
	lines := strings.Split(strings.TrimRight(chart, "\n"), "\n")
	if len(lines) != 2+10+2 { // header, axis label, grid, axis, x labels
		t.Fatalf("chart has %d lines:\n%s", len(lines), chart)
	}
	// Tiny dimensions are clamped, empty input handled.
	if out := r.Chart(1, 1); out == "" {
		t.Fatal("clamped chart empty")
	}
	empty := &Fig12Result{}
	if out := empty.Chart(40, 10); !strings.Contains(out, "no samples") {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestChartLinearScale(t *testing.T) {
	r := &Fig12Result{
		Metric: "err",
		IC:     Trajectory{Points: []TrajectoryPoint{{Time: 0, Value: 10}, {Time: 1, Value: 5}}},
		PIC:    Trajectory{Points: []TrajectoryPoint{{Time: 0, Value: 9}}},
	}
	if strings.Contains(r.Chart(40, 10), "log scale") {
		t.Fatal("narrow-range chart log scaled")
	}
}

func TestSpeedupBars(t *testing.T) {
	fig := &SpeedupFigure{Title: "demo", Rows: []SpeedupRow{
		{App: "kmeans", Speedup: 3.0},
		{App: "pagerank", Speedup: 1.5},
	}}
	out := fig.Bars(40)
	if !strings.Contains(out, "###") || !strings.Contains(out, "3.00x") {
		t.Fatalf("Bars missing content:\n%s", out)
	}
	if !strings.Contains(out, "IC baseline") {
		t.Fatalf("Bars missing baseline reference:\n%s", out)
	}
	// The longer bar belongs to the larger speedup.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Fatalf("bar lengths not ordered:\n%s", out)
	}
}

func TestConvergenceRateDegradesWithPartitions(t *testing.T) {
	// §VI-B: "more partitions translate to a slower convergence rate
	// in the best-effort phase."
	r, err := AblationConvergenceRate()
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.BERate <= first.BERate {
		t.Errorf("BE contraction rate did not degrade: %.3f (p=%d) vs %.3f (p=%d)",
			first.BERate, first.Partitions, last.BERate, last.Partitions)
	}
	// Each best-effort iteration still contracts far more than one
	// conventional sweep — it embeds many local sweeps.
	for _, row := range r.Rows {
		if row.BERate >= row.ICRate {
			t.Errorf("p=%d: BE rate %.3f not below IC rate %.3f",
				row.Partitions, row.BERate, row.ICRate)
		}
	}
}

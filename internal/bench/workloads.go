package bench

import (
	"math"

	"repro/internal/apps/kmeans"
	"repro/internal/apps/linsolve"
	"repro/internal/apps/neuralnet"
	"repro/internal/apps/pagerank"
	"repro/internal/apps/smoothing"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/webgraph"
)

// Dataset scale note: the paper's inputs (up to 500M points, a 1.8M-page
// web graph, 210k OCR vectors, a 40-Mpixel image) are scaled down by
// roughly 1000× so every experiment runs on a laptop in seconds. The
// simulated cluster, cost model and algorithms are unchanged; DESIGN.md
// records the substitution.

// KMeansWorkload builds the K-means comparison: n points in dims
// dimensions from moderately overlapping Gaussian components, clustered
// into k centroids, partitioned into `partitions` random sub-problems.
func KMeansWorkload(name string, cluster simcluster.Config, n, k, dims, partitions int, seed int64) (*Workload, *data.PointSet) {
	// Geometry scaled with k: component spacing in the ±100 box is
	// ≈200/k^(1/3); a spread of 20% of the spacing gives the moderate
	// overlap that makes Lloyd's algorithm take a realistic number of
	// iterations, as at the paper's scale.
	spacing := 200.0 / math.Cbrt(float64(k))
	sigma := 0.2 * spacing
	ps := data.GaussianMixture(seed, n, k, dims, 100, sigma)
	// The displacement threshold must exceed the per-partition
	// sampling noise (σ/√(points per cluster per partition)) by a
	// comfortable margin, or local iterations never shorten — at the
	// paper's dataset sizes this holds automatically; at laptop scale
	// the caller must keep n/(partitions·k) in the thousands.
	threshold := sigma / 16
	app := func() core.PICApp {
		a := kmeans.New(k, threshold)
		// Looser best-effort criterion (§III-B): stop merging once
		// improvements fall below a few times the final threshold.
		a.BEThreshold = 2 * threshold
		return a
	}
	w := &Workload{
		Name:    name,
		Cluster: cluster,
		MakeApp: app,
		MakeInput: func(c *simcluster.Cluster) *mapred.Input {
			return mapred.NewInput(kmeans.Records(ps.Points), c, c.MapSlots())
		},
		MakeModel: func() *model.Model { return kmeans.InitialModel(ps.Points, k) },
		ICOpts:    core.ICOptions{MaxIterations: 200},
		PICOpts: core.PICOptions{
			Partitions:         partitions,
			MaxBEIterations:    20,
			MaxLocalIterations: 200,
		},
	}
	return w, ps
}

// PageRankWorkload builds the PageRank comparison on a nearly-uncoupled
// web graph (the paper used the 1.8M-page wikipedia.org graph split
// into 18 partitions).
func PageRankWorkload(name string, cluster simcluster.Config, vertices, partitions int, crossFrac float64, seed int64) (*Workload, *webgraph.Graph) {
	g := webgraph.NearlyUncoupled(seed, vertices, partitions, crossFrac, 4)
	w := &Workload{
		Name:    name,
		Cluster: cluster,
		MakeApp: func() core.PICApp {
			a := pagerank.New(g, 0.85, 0.01, seed)
			a.Strategy = pagerank.PartitionLocality
			return a
		},
		MakeInput: func(c *simcluster.Cluster) *mapred.Input {
			return mapred.NewInput(pagerank.Records(g), c, c.MapSlots())
		},
		MakeModel: func() *model.Model { return pagerank.InitialModel(g) },
		ICOpts:    core.ICOptions{MaxIterations: 60},
		PICOpts: core.PICOptions{
			Partitions: partitions,
			// Each best-effort iteration is one outer block-Jacobi
			// step; locals converge in a few sweeps, and the paper
			// caps both with pre-set limits (§IV-B).
			MaxBEIterations:     60,
			MaxLocalIterations:  10,
			MaxTopOffIterations: 60,
		},
	}
	return w, g
}

// LinSolveWorkload builds the linear-equation-solver comparison: a
// weakly diagonally dominant n×n system (the paper used 100 variables),
// solved by Jacobi iteration and block-Jacobi under PIC.
func LinSolveWorkload(name string, cluster simcluster.Config, n, partitions int, seed int64) (*Workload, *linsolve.App) {
	// A diffusion-like system with a modest dominance margin: plain
	// Jacobi contracts at ≈1/dominance per sweep (the paper's baseline
	// ran ~1 hour on 100 variables), while the band decay keeps the
	// blocks nearly uncoupled for the block solves.
	sys := data.DiffusionSystem(seed, n, 1.35)
	mk := func() *linsolve.App { return linsolve.New(sys.A, sys.B, 1e-4) }
	app := mk()
	w := &Workload{
		Name:    name,
		Cluster: cluster,
		MakeApp: func() core.PICApp { return mk() },
		MakeInput: func(c *simcluster.Cluster) *mapred.Input {
			return mapred.NewInput(mk().Records(), c, c.MapSlots())
		},
		MakeModel: func() *model.Model { return linsolve.InitialModel(n) },
		ICOpts:    core.ICOptions{MaxIterations: 500},
		PICOpts: core.PICOptions{
			Partitions:         partitions,
			MaxBEIterations:    100,
			MaxLocalIterations: 500,
		},
	}
	return w, app
}

// NeuralNetWorkload builds the neural-network-training comparison on
// OCR vectors (the paper used ≈210k training vectors). Training is
// epoch-capped, mirroring the paper's fixed training window.
func NeuralNetWorkload(name string, cluster simcluster.Config, samples, partitions int, seed int64) (*Workload, *neuralnet.App, *data.OCRSet, *data.OCRSet) {
	app := neuralnet.New(data.OCRDims, 16, data.OCRClasses, 0.6, 2e-4)
	// Back-propagation is arithmetic-dense per record (~2k flops), so
	// the framework-versus-in-memory cost ratio is smaller than for
	// light-record applications: heavier per-record cost, local factor
	// 1/4 instead of the default 1/7.
	cost := HadoopCost()
	cost.MapCostPerRecord = 8e6 // ≈8 ms/record: backprop with per-record object churn
	cost.ReduceCostPerValue = 400e3
	cost.LocalComputeFactor = 1.0 / 2.0
	train := data.OCRVectors(seed, samples, 0.12, 0.15)
	valid := data.OCRVectors(seed+1, samples/4, 0.12, 0.15)
	w := &Workload{
		Name:    name,
		Cluster: cluster,
		Cost:    cost,
		MakeApp: func() core.PICApp { return app },
		MakeInput: func(c *simcluster.Cluster) *mapred.Input {
			return mapred.NewInput(neuralnet.Records(train.Vectors, train.Labels), c, c.MapSlots())
		},
		MakeModel: func() *model.Model { return app.InitialModel(seed) },
		ICOpts:    core.ICOptions{MaxIterations: 60},
		PICOpts: core.PICOptions{
			Partitions:          partitions,
			MaxBEIterations:     6,
			MaxLocalIterations:  30,
			MaxTopOffIterations: 60,
		},
	}
	return w, app, train, valid
}

// SmoothingWorkload builds the image-smoothing comparison (the paper
// used a 40-Mpixel image; the model — the image itself — dominates the
// traffic).
func SmoothingWorkload(name string, cluster simcluster.Config, width, height, partitions int, seed int64) (*Workload, *data.Image) {
	img := data.NoisyImage(seed, width, height, 15)
	// μ=2 gives the slow per-sweep contraction of heavy smoothing
	// while influence still decays within a few rows — the locality
	// that makes band partitioning effective (§VI-B).
	app := func() core.PICApp {
		a := smoothing.New(width, height, 2.0, 0.05)
		a.BEThreshold = 0.2
		return a
	}
	w := &Workload{
		Name:    name,
		Cluster: cluster,
		MakeApp: app,
		MakeInput: func(c *simcluster.Cluster) *mapred.Input {
			return mapred.NewInput(smoothing.Records(img), c, c.MapSlots())
		},
		MakeModel: func() *model.Model { return smoothing.InitialModel(img) },
		ICOpts:    core.ICOptions{MaxIterations: 500},
		PICOpts: core.PICOptions{
			Partitions:         partitions,
			MaxBEIterations:    100,
			MaxLocalIterations: 500,
		},
	}
	return w, img
}

package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/corrupt"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simtime"
)

// CorruptionRow is one cell of the silent-corruption ablation: a
// bit-error rate and a detection arm, with the same K-means problem run
// conventionally and under PIC.
type CorruptionRow struct {
	// Rate is the per-attempt corruption probability inside the
	// scripted bit-error windows; zero means no plan (the healthy
	// reference arm).
	Rate float64
	// Detection reports whether checksums were verified (integrity
	// checks on) or corruption passed silently.
	Detection bool
	// Schedule describes the cell's corruption script.
	Schedule string
	// ICTime and PICTime are run durations; ICIters and PICIters the
	// iteration counts (PIC = BE + top-off).
	ICTime, PICTime   simtime.Duration
	ICIters, PICIters int
	// ICResends and PICResends count transfer attempts that arrived
	// with a bad checksum and were re-sent; ResendBytes the traffic
	// those re-sends carried (both runs).
	ICResends, PICResends int
	ResendBytes           int64
	// DetectedBlocks, RepairBytes and ScrubbedBytes sum the DFS
	// integrity layer's activity across both runs: replicas caught by a
	// checksum mismatch, re-replication traffic, and scrubber scan
	// volume.
	DetectedBlocks int
	RepairBytes    int64
	ScrubbedBytes  int64
	// RejectedPartials counts PIC merge inputs whose verified delivery
	// failed (the merge proceeded with the partition's starting model);
	// Rollbacks counts checkpoint restores that fell back to an older
	// verified sequence.
	RejectedPartials int
	Rollbacks        int
	// ICQuality and PICQuality measure final-model damage: the largest
	// per-key delta against the healthy run's converged model
	// (non-finite deltas — a corrupted float blown up to Inf/NaN — are
	// clamped to 1e300 so results stay JSON-encodable).
	ICQuality, PICQuality float64
	// ICConverged and PICConverged report each driver reaching its
	// convergence criterion (rather than its iteration cap).
	ICConverged, PICConverged bool
	// Speedup is ICTime / PICTime.
	Speedup float64
}

// CorruptionSweepResult is the silent-corruption ablation: with
// detection on, checksummed transfers re-send damaged payloads, the
// verify-on-read DFS quarantines poisoned replicas and the scrubber
// repairs them in the background, so both schemes converge to the
// healthy model at every bit-error rate — for bounded re-send and
// repair traffic. With detection off the same script corrupts models
// in flight undetected, and convergence degrades or fails as the rate
// climbs.
type CorruptionSweepResult struct {
	// Period is the window cadence; Horizon how far the script extends.
	Period, Horizon float64
	// Tolerance is the final-model delta below which a run counts as
	// undamaged (a small multiple of the workload's convergence
	// threshold).
	Tolerance float64
	Rows      []CorruptionRow
}

// corruptionCluster is the testbed the corruption script acts on: the
// same 12-node, 4-rack layout as the network-fault ablation, so
// transfer windows sit on genuinely distinct endpoints.
func corruptionCluster() simcluster.Config { return tenancyCluster() }

// corruptionPlan scripts the sweep cell's corruption: back-to-back
// bit-error windows rotating over the non-home nodes (full duty, so
// every model distribution and gather rolls against the rate), one
// poisoned input-block replica per period, and a background scrubber
// pass per period to catch it.
func corruptionPlan(rate, period, horizon float64, input string, nodes int) *corrupt.Plan {
	if rate <= 0 {
		return nil
	}
	p := &corrupt.Plan{}
	for i := 0; ; i++ {
		start := period * float64(i)
		if start+period > horizon {
			break
		}
		p.Events = append(p.Events,
			corrupt.Event{
				Kind:  corrupt.KindTransfer,
				Node:  1 + i%(nodes-1), // never node 0, the model home's rack anchor
				Start: simtime.Duration(start),
				End:   simtime.Duration(start + period),
				Rate:  rate,
				Seed:  0xB17E44 + uint64(i),
			},
			corrupt.Event{
				Kind: corrupt.KindBlockReplica, File: input, Block: 0,
				Node: corrupt.PrimaryReplica,
				At:   simtime.Duration(start + period*0.25),
				Seed: 0x5EED + uint64(i),
			},
			corrupt.Event{
				Kind: corrupt.KindScrub, Budget: 1 << 30,
				At:   simtime.Duration(start + period*0.75),
				Seed: uint64(i),
			},
		)
	}
	return p
}

// corruptionRuntime builds a runtime with the corruption script
// registered and the detection arm selected. The input dataset lives in
// the DFS so the block-replica events have state to poison and the
// scrubber has a namespace to walk.
func corruptionRuntime(w *Workload, plan *corrupt.Plan, detect bool) *core.Runtime {
	cluster := simcluster.New(w.Cluster)
	cluster.SetCorruptionPlan(plan)
	rt := core.NewRuntime(cluster, dfs.DefaultConfig())
	cost := w.Cost
	if cost == (mapred.CostModel{}) {
		cost = HadoopCost()
	}
	rt.Engine().SetCostModel(cost)
	rt.Engine().Workers = int(engineWorkers.Load())
	rt.SetTracer(w.Tracer)
	rt.FS().Create("input/"+w.Name, 64<<20, 0)
	rt.SetIntegrityChecks(detect)
	return rt
}

// modelDamage is the quality metric: the largest per-key delta between
// the healthy reference model and the run's final model, clamped to a
// finite sentinel when corruption blew a value up to Inf/NaN.
func modelDamage(ref, got *model.Model) float64 {
	if got == nil {
		return 1e300
	}
	q := math.Max(model.MaxVectorDelta(ref, got), model.MaxFloatDelta(ref, got))
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return 1e300
	}
	return q
}

// AblationCorruption sweeps the bit-error rate of scripted transfer
// corruption (plus periodic replica poisoning and scrubber passes) and
// runs IC and PIC under each rate twice: once with end-to-end
// integrity checks on, once off. Detection on, corrupt arrivals are
// caught by payload checksums and re-sent, poisoned replicas are
// quarantined on read and repaired by the scrubber, and PIC merges
// reject partials whose verified delivery failed — both schemes reach
// the healthy model. Detection off, the same script damages models in
// flight silently and convergence degrades or fails outright.
func AblationCorruption() (*CorruptionSweepResult, error) {
	points := scaled(300_000, 40_000)
	const dims = 3
	w, _ := KMeansWorkload("kmeans-corruption", corruptionCluster(), points, 25, dims, 6, 3)
	nodes := w.Cluster.Nodes

	runIC := func(rt *core.Runtime, cap int) (*core.ICResult, error) {
		opts := w.ICOpts
		if cap > 0 {
			opts.MaxIterations = cap
		}
		return core.RunIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), &opts)
	}
	runPIC := func(rt *core.Runtime, cap int) (*core.PICResult, error) {
		opts := w.PICOpts
		if cap > 0 {
			opts.MaxTopOffIterations = cap
		}
		return core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), opts)
	}

	// The healthy runs calibrate the schedule and serve as the quality
	// reference: windows repeat every quarter of the healthy IC span,
	// out to a horizon the detection-on runs cannot outlive, and each
	// corrupted run's final model is compared against its own healthy
	// counterpart.
	icHealthy, err := runIC(corruptionRuntime(w, nil, true), 0)
	if err != nil {
		return nil, fmt.Errorf("bench: corruption IC healthy: %w", err)
	}
	picHealthy, err := runPIC(corruptionRuntime(w, nil, true), 0)
	if err != nil {
		return nil, fmt.Errorf("bench: corruption PIC healthy: %w", err)
	}
	period := float64(icHealthy.Duration) / 4
	horizon := float64(icHealthy.Duration) * 8
	// A silently-corrupted run keeps iterating without settling; cap it
	// at a few multiples of the healthy iteration count so "fails to
	// converge" is a bounded observation, not a runaway loop.
	iterCap := max(icHealthy.Iterations*4, 40)

	// The workload's convergence threshold (see KMeansWorkload: σ/16
	// with σ = 20% of the component spacing in the ±100 box): a run
	// whose final centroids sit within a few thresholds of the healthy
	// model is undamaged, one knocked further off was corrupted.
	threshold := 0.2 * (200.0 / math.Cbrt(25)) / 16
	tolerance := 4 * threshold

	rates := []float64{0, 0.1, 0.25, 0.5}
	arms := []bool{true, false}
	res := &CorruptionSweepResult{
		Period: period, Horizon: horizon, Tolerance: tolerance,
		Rows: make([]CorruptionRow, len(rates)*len(arms)),
	}
	if err := runCells(len(res.Rows), func(cell int) error {
		rate, detect := rates[cell/len(arms)], arms[cell%len(arms)]
		plan := corruptionPlan(rate, period, horizon, "input/"+w.Name, nodes)
		arm := "detect"
		if !detect {
			arm = "silent"
		}
		icRT := corruptionRuntime(w, plan, detect)
		ic, err := runIC(icRT, iterCap)
		if err != nil {
			return fmt.Errorf("bench: corruption IC at rate %.2f (%s): %w", rate, arm, err)
		}
		picRT := corruptionRuntime(w, plan, detect)
		pic, err := runPIC(picRT, iterCap)
		if err != nil {
			return fmt.Errorf("bench: corruption PIC at rate %.2f (%s): %w", rate, arm, err)
		}
		schedule := "none"
		if plan != nil {
			schedule = fmt.Sprintf("bit errors rate %.2f, %.1f s windows rotating nodes 1-%d; block poison + scrub each window",
				rate, period, nodes-1)
		}
		icInt, picInt := icRT.FS().Integrity(), picRT.FS().Integrity()
		res.Rows[cell] = CorruptionRow{
			Rate: rate, Detection: detect, Schedule: schedule,
			ICTime: ic.Duration, PICTime: pic.Duration,
			ICIters: ic.Iterations, PICIters: pic.BEIterations + pic.TopOffIterations,
			ICResends: ic.Metrics.CorruptRetries, PICResends: pic.Metrics.CorruptRetries,
			ResendBytes:      ic.Metrics.CorruptRetryBytes + pic.Metrics.CorruptRetryBytes,
			DetectedBlocks:   icInt.DetectedBlocks + picInt.DetectedBlocks,
			RepairBytes:      icInt.RepairedBytes + picInt.RepairedBytes,
			ScrubbedBytes:    icInt.ScrubbedBytes + picInt.ScrubbedBytes,
			RejectedPartials: pic.RejectedPartials,
			Rollbacks:        icRT.IntegrityRollbacks() + picRT.IntegrityRollbacks(),
			ICQuality:        modelDamage(icHealthy.Model, ic.Model),
			PICQuality:       modelDamage(picHealthy.Model, pic.Model),
			ICConverged:      ic.Converged, PICConverged: pic.TopOffConverged,
			Speedup: float64(ic.Duration) / float64(pic.Duration),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// DetectionShields reports the ablation's first acceptance criterion:
// every detection-on cell converged with a final model within
// tolerance of its healthy counterpart, at every bit-error rate.
func (r *CorruptionSweepResult) DetectionShields() bool {
	for _, row := range r.Rows {
		if !row.Detection {
			continue
		}
		if !row.ICConverged || !row.PICConverged ||
			row.ICQuality > r.Tolerance || row.PICQuality > r.Tolerance {
			return false
		}
	}
	return true
}

// SilentDamage reports the second criterion: at the highest scripted
// rate, the detection-off arm visibly suffers — at least one driver
// fails to converge or lands outside tolerance of the healthy model.
func (r *CorruptionSweepResult) SilentDamage() bool {
	var worst *CorruptionRow
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Detection || row.Rate == 0 {
			continue
		}
		if worst == nil || row.Rate > worst.Rate {
			worst = row
		}
	}
	if worst == nil {
		return false
	}
	return !worst.ICConverged || !worst.PICConverged ||
		worst.ICQuality > r.Tolerance || worst.PICQuality > r.Tolerance
}

// fmtQuality renders a model-damage figure compactly, flagging the
// clamped divergence sentinel.
func fmtQuality(q float64) string {
	if q >= 1e300 {
		return "diverged"
	}
	return fmt.Sprintf("%.3g", q)
}

// Render formats the sweep.
func (r *CorruptionSweepResult) Render() string {
	var t table
	t.title(fmt.Sprintf("Ablation — silent corruption (K-means IC vs PIC; bit-error windows every %.1f s, detection on/off; model-damage tolerance %.3g)", r.Period, r.Tolerance))
	t.row("Rate", "Arm", "IC time", "IC iters", "PIC time", "PIC iters",
		"Re-sends", "Detected", "Repair bytes", "Rejected", "IC damage", "PIC damage", "Converged", "Speedup")
	for _, row := range r.Rows {
		arm := "detect"
		if !row.Detection {
			arm = "silent"
		}
		conv := "yes"
		if !row.ICConverged || !row.PICConverged {
			conv = "NO"
		}
		t.row(fmt.Sprintf("%.2f", row.Rate), arm,
			FormatDuration(row.ICTime), fmt.Sprint(row.ICIters),
			FormatDuration(row.PICTime), fmt.Sprint(row.PICIters),
			fmt.Sprint(row.ICResends+row.PICResends), fmt.Sprint(row.DetectedBlocks),
			FormatBytes(row.RepairBytes), fmt.Sprint(row.RejectedPartials),
			fmtQuality(row.ICQuality), fmtQuality(row.PICQuality),
			conv, fmt.Sprintf("%.2fx", row.Speedup))
	}
	if !r.DetectionShields() {
		t.row("WARNING", "a detection-on cell failed to converge to the healthy model")
	}
	if !r.SilentDamage() {
		t.row("WARNING", "the detection-off arm shows no damage at the highest rate — the script is too gentle to demonstrate anything")
	}
	return t.String()
}

package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/simcluster"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// TenancyRow is one background-load level of the multi-tenancy ablation:
// the same K-means problem run conventionally and under PIC on a shared
// cluster whose core bisection is partly consumed by a co-tenant.
type TenancyRow struct {
	// CoreShare is the background tenant's core-bisection fraction.
	CoreShare float64
	// ICBusy and PICBusy are each scheme's executing time under that
	// contention; ICSteps/PICSteps the (contention-independent)
	// iteration counts.
	ICBusy, PICBusy   simtime.Duration
	ICSteps, PICSteps int
	// Speedup is ICBusy / PICBusy.
	Speedup float64
}

// TenancyResult is the multi-tenant ablation: the paper argues PIC's
// advantage comes from avoiding the shared bisection bandwidth, so the
// IC-over-PIC speedup must grow (or at worst hold) as a co-tenant eats
// more of the core — IC's per-iteration shuffle and model distribution
// dilate with the contention while PIC's in-memory local iterations do
// not.
type TenancyResult struct {
	Rows []TenancyRow
	// TenantReport is the per-tenant metrics and scheduler-span summary
	// of the heaviest-contention PIC run.
	TenantReport string
}

// tenancyCluster is a 12-node, 4-rack testbed: small enough to sweep
// quickly, with a rack size that forces the 10-node workload to span
// every rack, so its shuffle and model traffic genuinely crosses the
// contended core. Bandwidths are scaled down with the ~1000× dataset
// shrink (see workloads.go) so the network keeps a paper-realistic share
// of each iteration, and the core is thin enough that a co-tenant can
// make it the bottleneck.
func tenancyCluster() simcluster.Config {
	return simcluster.Config{
		Nodes:              12,
		RackSize:           3,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 2,
		ComputeRate:        1e9,
		NodeBandwidth:      8e6,
		RackBandwidth:      12e6,
		CoreBandwidth:      16e6,
	}
}

// tenancyLoadDuration outlives any foreground run, so the background
// tenant stays resident for the workload's entire execution.
const tenancyLoadDuration simtime.Duration = 1e6

// tenancyStart builds the scheduler Start callback for one scheme of the
// workload; the runtime it receives is bound to the job's node subset of
// the shared cluster.
func tenancyStart(w *Workload, scheme string) func(rt *core.Runtime) (core.Stepper, error) {
	return func(rt *core.Runtime) (core.Stepper, error) {
		rt.Engine().SetCostModel(HadoopCost())
		rt.Engine().Workers = int(engineWorkers.Load())
		in := w.MakeInput(rt.Cluster())
		if scheme == "ic" {
			opts := w.ICOpts
			return core.NewICStepper(rt, w.MakeApp(), in, w.MakeModel(), &opts), nil
		}
		return core.NewPICStepper(rt, w.MakeApp(), in, w.MakeModel(), w.PICOpts)
	}
}

// runTenancyCell runs one (scheme, core share) cell: a fresh shared
// cluster, the background tenant submitted first (landing on nodes 0–1),
// the workload on the remaining 10 nodes.
func runTenancyCell(w *Workload, scheme string, coreShare float64,
	reg *metrics.Registry, tr *trace.Tracer) (sched.JobResult, error) {
	s := sched.New(simcluster.New(tenancyCluster()), sched.Config{})
	s.SetObservability(reg)
	s.SetTracer(tr)
	s.Submit(sched.JobSpec{Tenant: "background", Name: "noise", Nodes: 2,
		Load: &sched.Load{Duration: tenancyLoadDuration, Core: coreShare}})
	s.Submit(sched.JobSpec{Tenant: "analytics", Name: scheme, Nodes: 10,
		Start: tenancyStart(w, scheme)})
	results, err := s.Run()
	if err != nil {
		return sched.JobResult{}, err
	}
	r := results[1]
	if r.State != sched.StateDone || r.Err != nil {
		return sched.JobResult{}, fmt.Errorf("bench: tenancy %s at core share %.2f: state %s, err %v",
			scheme, coreShare, r.State, r.Err)
	}
	return r, nil
}

// AblationMultiTenant sweeps the co-tenant's core-bisection share and
// compares IC against PIC under each level of contention, both running
// as scheduler tenants on the shared cluster.
func AblationMultiTenant() (*TenancyResult, error) {
	// The sweep stops at a 50% core share: up to there the co-tenant
	// dilates IC's per-iteration shuffle and model distribution faster
	// than PIC's occasional merge bursts, and the speedup grows
	// monotonically. Past ~50% the residual core is thin enough that
	// even PIC's remaining traffic (scatter/gather, top-off iterations)
	// is core-bound and the ratio flattens back — PIC reduces bisection
	// use, it does not eliminate it.
	shares := []float64{0, 0.2, 0.35, 0.5}
	w, _ := PageRankWorkload("pagerank-tenancy", tenancyCluster(),
		scaled(10_000, 4_000), 5, 0.02, 7)
	res := &TenancyResult{Rows: make([]TenancyRow, len(shares))}
	if err := runCells(len(shares), func(i int) error {
		share := shares[i]
		ic, err := runTenancyCell(w, "ic", share, nil, nil)
		if err != nil {
			return err
		}
		pic, err := runTenancyCell(w, "pic", share, nil, nil)
		if err != nil {
			return err
		}
		res.Rows[i] = TenancyRow{
			CoreShare: share,
			ICBusy:    ic.Busy, PICBusy: pic.Busy,
			ICSteps: ic.Steps, PICSteps: pic.Steps,
			Speedup: float64(ic.Busy) / float64(pic.Busy),
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Re-run the heaviest-contention PIC cell instrumented, to surface
	// the scheduler's per-tenant metrics and spans in the report.
	reg := metrics.New()
	tr := trace.New()
	if _, err := runTenancyCell(w, "pic", shares[len(shares)-1], reg, tr); err != nil {
		return nil, err
	}
	res.TenantReport = tenantReport(reg, tr, shares[len(shares)-1], "analytics", "background")
	return res, nil
}

// tenantReport renders the scheduler's per-tenant counters and span
// census for one instrumented run.
func tenantReport(reg *metrics.Registry, tr *trace.Tracer, share float64, tenants ...string) string {
	var t table
	t.title(fmt.Sprintf("Per-tenant metrics (PIC run at core share %.2f)", share))
	t.row("Tenant", "completed", "busy", "waited")
	for _, tenant := range tenants {
		l := metrics.L("tenant", tenant)
		t.row(tenant,
			fmt.Sprintf("%.0f", reg.Counter("sched.jobs_completed", l...).Value()),
			FormatDuration(simtime.Duration(reg.Counter("sched.busy_seconds", l...).Value())),
			FormatDuration(simtime.Duration(reg.Counter("sched.wait_seconds", l...).Value())))
	}
	spans := map[trace.Kind]int{}
	for _, e := range tr.Events() {
		if trace.Layer(e.Kind) == "sched" {
			spans[e.Kind]++
		}
	}
	t.row("")
	t.row("Scheduler spans",
		fmt.Sprintf("%d job", spans[trace.KindSchedJob]),
		fmt.Sprintf("%d wait", spans[trace.KindSchedWait]),
		fmt.Sprintf("%d preempt", spans[trace.KindSchedPreempt]))
	return t.String()
}

// Monotone reports whether the speedup column is non-decreasing in the
// background load — the ablation's acceptance criterion.
func (r *TenancyResult) Monotone() bool {
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Speedup < r.Rows[i-1].Speedup-1e-9 {
			return false
		}
	}
	return true
}

// Render formats the sweep plus the per-tenant report.
func (r *TenancyResult) Render() string {
	var t table
	t.title("Ablation — multi-tenant contention (PageRank IC vs PIC on a shared cluster)")
	t.row("Co-tenant core share", "IC time", "IC iters", "PIC time", "PIC iters", "Speedup")
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%.2f", row.CoreShare),
			FormatDuration(row.ICBusy), fmt.Sprint(row.ICSteps),
			FormatDuration(row.PICBusy), fmt.Sprint(row.PICSteps),
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	if !r.Monotone() {
		t.row("WARNING", "speedup not monotone in co-tenant load")
	}
	return t.String() + "\n" + r.TenantReport
}

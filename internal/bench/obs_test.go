package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Telemetry determinism and attribution tests.
//
// The obs layer's contract is that telemetry is a pure function of the
// simulated execution: the JSONL event log, the OpenMetrics export and
// every render must be byte-identical across engine worker counts,
// across serial and parallel harness execution, and across repeated
// runs — even with node crashes and network faults injected. And the
// straggler detector must attribute injected causes correctly, because
// the simulator knows the ground truth.

// obsArtifacts is every byte-comparable telemetry artifact of one run.
type obsArtifacts struct {
	jsonl  string
	om     string
	render string
	flight string
}

// obsChaosWorkload is the K-means problem the chaos tests run, on the
// multi-rack testbed the fault plans act on.
func obsChaosWorkload() *Workload {
	w, _ := KMeansWorkload("kmeans-obschaos", netFaultCluster(), scaled(300_000, 40_000), 25, 3, 6, 3)
	return w
}

// obsChaosRun executes one fully-instrumented PIC run under combined
// chaos — periodic rack-uplink outages and a whole-node crash with
// recovery — at the given engine worker count, and derives all
// telemetry artifacts.
func obsChaosRun(workers int) (obsArtifacts, error) {
	const period = 2.0
	w := obsChaosWorkload()
	netPlan := netFaultPlan(0.25, period, 1000)
	failPlan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 5, Time: 1.5},
		{Node: 5, Time: 6.0, Recover: true},
	}}

	cluster := simcluster.New(w.Cluster)
	cluster.SetFailurePlan(failPlan)
	cluster.SetNetworkPlan(netPlan)
	rt := core.NewRuntime(cluster, dfs.DefaultConfig())
	rt.Engine().SetCostModel(HadoopCost())
	rt.Engine().Workers = workers
	rt.Engine().TransferTimeout = simtime.Duration(period / 3)
	rt.Engine().TransferRetries = 3
	rt.Engine().RetryBackoff = simtime.Duration(period / 24)
	tr := trace.New()
	reg := metrics.New()
	rt.SetTracer(tr)
	rt.SetObservability(reg)
	rt.FS().Create("input/"+w.Name, 64<<20, 0)

	in := w.MakeInput(rt.Cluster())
	if _, err := core.RunPIC(rt, w.MakeApp(), in, w.MakeModel(), w.PICOpts); err != nil {
		return obsArtifacts{}, err
	}
	p := obs.Collect(w.Name, tr, reg, obs.Options{
		Plan: netPlan,
		Sentinel: obs.Sentinel{
			Factor:         4,
			ExpectedRounds: w.PICOpts.MaxBEIterations + w.PICOpts.MaxTopOffIterations + 4,
			BytesPerRound:  in.TotalBytes(),
		},
	})
	var jl, om bytes.Buffer
	if err := p.WriteJSONL(&jl); err != nil {
		return obsArtifacts{}, err
	}
	if err := obs.ValidateJSONL(bytes.NewReader(jl.Bytes())); err != nil {
		return obsArtifacts{}, fmt.Errorf("chaos run log invalid: %w", err)
	}
	if err := p.WriteOpenMetrics(&om); err != nil {
		return obsArtifacts{}, err
	}
	return obsArtifacts{
		jsonl:  jl.String(),
		om:     om.String(),
		render: p.Render(),
		flight: p.Flight.Render(),
	}, nil
}

// diffObs names the first artifact that differs, or "".
func diffObs(base, got obsArtifacts) string {
	switch {
	case base.jsonl != got.jsonl:
		return "JSONL event log"
	case base.om != got.om:
		return "OpenMetrics export"
	case base.render != got.render:
		return "telemetry render"
	case base.flight != got.flight:
		return "flight recorder"
	}
	return ""
}

// TestTelemetryDeterminism is the obs invariant end to end: under
// combined crash + network chaos, every telemetry artifact is
// byte-identical at 1 and 8 engine workers, across repeated runs, and
// under the parallel cell harness.
func TestTelemetryDeterminism(t *testing.T) {
	SetScale(0.05)
	defer SetScale(1.0)

	base, err := obsChaosRun(1)
	if err != nil {
		t.Fatal(err)
	}
	// The run must actually have seen the chaos, or the test compares
	// fair-weather telemetry.
	if !strings.Contains(base.jsonl, `"span":"net-fault"`) {
		t.Fatal("chaos run recorded no net-fault span")
	}
	if !strings.Contains(base.jsonl, `"span":"node-crash"`) {
		t.Fatal("chaos run recorded no node-crash span")
	}

	for _, workers := range []int{1, 8} {
		got, err := obsChaosRun(workers)
		if err != nil {
			t.Fatal(err)
		}
		if d := diffObs(base, got); d != "" {
			t.Fatalf("workers=%d: %s differs from baseline", workers, d)
		}
	}

	// Parallel harness: four concurrent cells re-run the same chaos
	// workload; every one must reproduce the serial baseline exactly.
	SetParallelism(4)
	defer SetParallelism(1)
	results := make([]obsArtifacts, 4)
	err = runCells(len(results), func(i int) error {
		var cellErr error
		results[i], cellErr = obsChaosRun(1 + i%2*7) // alternate 1 and 8 workers
		return cellErr
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range results {
		if d := diffObs(base, got); d != "" {
			t.Fatalf("parallel cell %d: %s differs from serial baseline", i, d)
		}
	}
}

// TestTelemetryDoesNotPerturbRun pins the zero-cost side of the obs
// contract: a run with the tracer and registry attached produces
// exactly the simulated results of a run with observability disabled —
// the instrumentation only observes, never steers.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	SetScale(0.05)
	defer SetScale(1.0)

	run := func(instrument bool) (string, string) {
		w := obsChaosWorkload()
		rt := w.NewRuntime()
		if instrument {
			rt.SetTracer(trace.New())
			rt.SetObservability(metrics.New())
		}
		res, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts)
		if err != nil {
			t.Fatal(err)
		}
		return string(res.Model.Encode(nil)), fmt.Sprintf("%+v", res.Metrics)
	}
	bareModel, bareMetrics := run(false)
	obsModel, obsMetrics := run(true)
	if bareModel != obsModel {
		t.Fatal("instrumentation changed the final model bytes")
	}
	if bareMetrics != obsMetrics {
		t.Fatalf("instrumentation changed driver metrics:\nbare: %s\nobs:  %s", bareMetrics, obsMetrics)
	}
}

// TestObsBrownoutAttribution injects a core-bisection brownout window
// and expects the detector to flag at least one slow transfer and
// attribute it to the scripted fault.
func TestObsBrownoutAttribution(t *testing.T) {
	SetScale(0.05)
	defer SetScale(1.0)

	w := obsChaosWorkload()
	// One deep brownout early in the run: cross-rack traffic inside the
	// window crawls at 5% bandwidth while the rest of the run supplies
	// the healthy peer baseline.
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultCore, Start: 0.5, End: 2.0, Factor: 0.05},
	}}
	cluster := simcluster.New(w.Cluster)
	cluster.SetNetworkPlan(plan)
	rt := core.NewRuntime(cluster, dfs.DefaultConfig())
	rt.Engine().SetCostModel(HadoopCost())
	tr := trace.New()
	reg := metrics.New()
	rt.SetTracer(tr)
	rt.SetObservability(reg)
	if _, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts); err != nil {
		t.Fatal(err)
	}

	p := obs.Collect(w.Name, tr, reg, obs.Options{Plan: plan})
	var hit *obs.Anomaly
	for i, a := range p.Anomalies {
		if a.Kind == "slow-transfer" && a.Cause == obs.CauseLinkBrownout {
			hit = &p.Anomalies[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no slow-transfer attributed to the brownout; anomalies:\n%s", renderAnomalies(p))
	}
	if !strings.Contains(strings.Join(hit.Evidence, "; "), "overlaps fault") {
		t.Fatalf("brownout anomaly lacks fault evidence: %+v", hit)
	}
	// The flagged span must actually overlap the scripted window.
	if hit.End <= 0.5 || hit.Start >= 2.0 {
		t.Fatalf("flagged span [%g, %g] outside the fault window", float64(hit.Start), float64(hit.End))
	}
}

// skewApp wraps a PICApp and concentrates records into partition 0, so
// one best-effort group carries an outsized share of the work. It
// deliberately does not forward LoopPartitioner: the skewed layout must
// be re-dealt (and re-sampled) every iteration.
type skewApp struct {
	core.PICApp
}

func (a skewApp) Partition(in *mapred.Input, m *model.Model, p int) ([]core.SubProblem, error) {
	subs, err := a.PICApp.Partition(in, m, p)
	if err != nil || len(subs) < 2 {
		return subs, err
	}
	// Move 3/4 of every other partition's records into partition 0.
	skewed := append([]mapred.Record(nil), subs[0].Records...)
	for i := 1; i < len(subs); i++ {
		cut := len(subs[i].Records) * 3 / 4
		skewed = append(skewed, subs[i].Records[:cut]...)
		subs[i].Records = subs[i].Records[cut:]
	}
	subs[0].Records = skewed
	return subs, nil
}

// TestObsSkewAttribution runs K-means with an injected skewed
// partitioning and expects the detector to flag the overloaded group as
// a straggler and attribute it to the partition skew.
func TestObsSkewAttribution(t *testing.T) {
	SetScale(0.05)
	defer SetScale(1.0)

	w := obsChaosWorkload()
	rt := w.NewRuntime()
	tr := trace.New()
	reg := metrics.New()
	rt.SetTracer(tr)
	rt.SetObservability(reg)
	app := skewApp{w.MakeApp()}
	if _, err := core.RunPIC(rt, app, w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts); err != nil {
		t.Fatal(err)
	}

	p := obs.Collect(w.Name, tr, reg, obs.Options{})
	var hit *obs.Anomaly
	for i, a := range p.Anomalies {
		if a.Kind == "straggler-group" && a.Cause == obs.CauseSkewedPartition {
			hit = &p.Anomalies[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no straggler attributed to partition skew; anomalies:\n%s", renderAnomalies(p))
	}
	if !strings.Contains(strings.Join(hit.Evidence, "; "), "partition 0 holds") {
		t.Fatalf("skew anomaly lacks partition evidence: %+v", hit)
	}
	if hit.Severity <= 1.5 {
		t.Fatalf("skew severity = %g, expected a clear outlier", hit.Severity)
	}
}

// renderAnomalies prints a product's anomalies for failure messages.
func renderAnomalies(p *obs.Product) string {
	if len(p.Anomalies) == 0 {
		return "  (none)"
	}
	var sb strings.Builder
	for _, a := range p.Anomalies {
		fmt.Fprintf(&sb, "  %s\n", a.Render())
	}
	return sb.String()
}

// TestReportTelemetryArtifacts exercises the report-level plumbing: the
// inspector's report writes a valid event log and a well-formed
// OpenMetrics export, twice identically.
func TestReportTelemetryArtifacts(t *testing.T) {
	SetScale(0.05)
	defer SetScale(1.0)

	rep, err := RunReport("linsolve")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := rep.WriteEventLog(&a); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateJSONL(bytes.NewReader(a.Bytes())); err != nil {
		t.Fatalf("report event log invalid: %v", err)
	}
	if err := rep.WriteEventLog(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated WriteEventLog calls differ")
	}
	a.Reset()
	if err := rep.WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(a.String(), "# EOF\n") {
		t.Fatal("OpenMetrics export does not end with # EOF")
	}
	if !strings.Contains(a.String(), "pic_mapred_jobs_total") {
		t.Fatal("OpenMetrics export missing the jobs counter")
	}
}

// TestLiveReportMatchesFinal pins the live-inspector contract: tailing
// a run through StartReport's event stream never changes the final
// telemetry — the finished report's artifacts match a plain RunReport
// byte for byte.
func TestLiveReportMatchesFinal(t *testing.T) {
	SetScale(0.05)
	defer SetScale(1.0)

	live, err := StartReport("linsolve")
	if err != nil {
		t.Fatal(err)
	}
	// Drain the live stream like the watcher does (dropping is allowed).
	streamed := 0
	for range live.Events {
		streamed++
	}
	liveRep, err := live.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if streamed == 0 {
		t.Fatal("live stream delivered no events")
	}
	plainRep, err := RunReport("linsolve")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := liveRep.WriteEventLog(&a); err != nil {
		t.Fatal(err)
	}
	if err := plainRep.WriteEventLog(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("live-tailed run's event log differs from a plain run")
	}
}

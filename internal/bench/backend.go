package bench

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// Backend ablation.
//
// The BSP backend runs the same applications as superstep programs:
// PageRank and smoothing have native vertex programs, so one framework
// iteration becomes one two-superstep Pregel computation instead of a
// job (pair). Both backends are priced on the same simulated fabric and
// cost model, so the ablation isolates the execution-model difference:
// mapred pays per-job overhead and overlapped shuffles; BSP pays
// per-superstep barriers and un-overlapped message exchanges, with
// sender-node-level combining. The ablation runs IC and PIC under both
// backends, reports the per-link traffic shape (total / cross-rack /
// intra-rack / node-local bytes) of each cell, checks byte-identity of
// every cell across engine worker counts plus a repeated run, and
// sweeps the problem size to locate the pace crossover — the size where
// the winning backend flips (barrier-dominated small problems favor
// BSP; overlap-dominated large exchanges favor mapred).

// BackendCell is one (application, scheme, backend) run.
type BackendCell struct {
	App     string // "pagerank" or "smoothing"
	Scheme  string // "ic" or "pic"
	Backend string // "mapred" or "bsp"
	// Iterations counts framework iterations (IC) or best-effort plus
	// top-off rounds (PIC); Supersteps counts BSP supersteps (zero on
	// the mapred backend).
	Iterations int
	Supersteps int
	// Duration is simulated time.
	Duration simtime.Duration
	// ExchangeSeconds is time moving intermediate data (shuffle on
	// mapred, message exchange on BSP); OverheadSeconds is coordination
	// time (job start/finish on mapred, barriers on BSP).
	ExchangeSeconds simtime.Duration
	OverheadSeconds simtime.Duration
	// Traffic is the per-link-class shape of every byte the cell's
	// fabric carried: cross-rack vs intra-rack vs node-local.
	Traffic simnet.Counters
	// Identical reports that the workers-1, workers-8 and repeated
	// workers-8 runs produced byte-identical models, metrics and
	// durations.
	Identical bool
}

// BackendCrossover is one application's pace-crossover sweep: IC runs
// of both backends across problem sizes.
type BackendCrossover struct {
	App   string
	Sizes []int // vertices (pagerank) or image rows (smoothing)
	// Mapred and BSP are the simulated durations per size; Ratio is
	// Mapred/BSP (values above 1 mean BSP is faster).
	Mapred []simtime.Duration
	BSP    []simtime.Duration
	// CrossoverSize is the interpolated size where the ratio crosses
	// 1.0, or 0 when one backend wins across the whole range.
	CrossoverSize int
}

// Ratio returns Mapred[i]/BSP[i].
func (x *BackendCrossover) Ratio(i int) float64 {
	return float64(x.Mapred[i]) / float64(x.BSP[i])
}

// BackendResult holds the scheme × backend grid and the crossover
// sweeps.
type BackendResult struct {
	Cells      []BackendCell
	Crossovers []BackendCrossover
}

// backendWorkload builds the ablation's workload for one app at one
// problem size, capped to a handful of rounds so the 2×2×2 grid and the
// size sweep stay fast at any scale.
func backendWorkload(app string, size int) (*Workload, error) {
	var w *Workload
	switch app {
	case "pagerank":
		w, _ = PageRankWorkload(fmt.Sprintf("%s-backend-%d", app, size),
			simcluster.Small(), size, 5, 0.05, 4)
	case "smoothing":
		w, _ = SmoothingWorkload(fmt.Sprintf("%s-backend-%d", app, size),
			simcluster.Small(), 64, size, 4, 1)
	default:
		return nil, fmt.Errorf("bench: abl-backend: unknown app %q", app)
	}
	w.ICOpts.MaxIterations = 6
	w.PICOpts.MaxBEIterations = 3
	w.PICOpts.MaxLocalIterations = 5
	w.PICOpts.MaxTopOffIterations = 3
	return w, nil
}

// backendCellSize is the default grid size per app.
func backendCellSize(app string) int {
	if app == "pagerank" {
		return scaled(2_000, 400) // vertices
	}
	return scaled(128, 32) // image rows
}

// runBackendOnce executes one (app, scheme, backend) run at the given
// engine worker count and returns the cell measurements plus a
// byte-identity fingerprint (encoded model, metrics and duration).
func runBackendOnce(app, scheme string, backend core.Backend, size, workers int) (*BackendCell, []byte, error) {
	w, err := backendWorkload(app, size)
	if err != nil {
		return nil, nil, err
	}
	rt := w.NewRuntime()
	rt.Engine().Workers = workers
	if err := rt.SetBackend(backend); err != nil {
		return nil, nil, err
	}
	reg := metrics.New()
	rt.SetObservability(reg)
	in := w.MakeInput(rt.Cluster())

	cell := &BackendCell{App: app, Scheme: scheme, Backend: string(backend)}
	var fp bytes.Buffer
	if scheme == "ic" {
		res, err := core.RunIC(rt, w.MakeApp(), in, w.MakeModel(), &w.ICOpts)
		if err != nil {
			return nil, nil, err
		}
		cell.Iterations = res.Iterations
		cell.Duration = res.Duration
		cell.ExchangeSeconds = res.Metrics.ShufflePhase
		cell.OverheadSeconds = res.Metrics.OverheadPhase
		fp.Write(res.Model.Encode(nil))
		fmt.Fprintf(&fp, "|%+v|%v", res.Metrics, res.Duration)
	} else {
		res, err := core.RunPIC(rt, w.MakeApp(), in, w.MakeModel(), w.PICOpts)
		if err != nil {
			return nil, nil, err
		}
		cell.Iterations = res.BEIterations + res.TopOffIterations
		cell.Duration = res.Duration
		cell.ExchangeSeconds = res.Metrics.ShufflePhase
		cell.OverheadSeconds = res.Metrics.OverheadPhase
		fp.Write(res.Model.Encode(nil))
		fmt.Fprintf(&fp, "|%+v|%v", res.Metrics, res.Duration)
	}
	cell.Traffic = rt.Cluster().Fabric().Counters()
	snap := reg.Snapshot()
	if m, ok := snap.Get("bsp.supersteps"); ok {
		cell.Supersteps = int(m.Value)
	}
	fmt.Fprintf(&fp, "|%+v", cell.Traffic)
	return cell, fp.Bytes(), nil
}

// crossoverSizes returns each app's size ladder for the pace sweep.
func crossoverSizes(app string) []int {
	if app == "pagerank" {
		return []int{500, 2_000, 8_000}
	}
	return []int{48, 192, 768}
}

// interpolateCrossover locates the size where the mapred/BSP duration
// ratio crosses 1.0, linearly interpolating between the two bracketing
// sweep points; zero means no crossover in range.
func interpolateCrossover(x *BackendCrossover) int {
	for i := 1; i < len(x.Sizes); i++ {
		a, b := x.Ratio(i-1)-1, x.Ratio(i)-1
		if a == 0 {
			return x.Sizes[i-1]
		}
		if a*b < 0 {
			t := a / (a - b)
			return x.Sizes[i-1] + int(t*float64(x.Sizes[i]-x.Sizes[i-1]))
		}
	}
	if last := len(x.Sizes) - 1; last >= 0 && x.Ratio(last) == 1 {
		return x.Sizes[last]
	}
	return 0
}

// AblationBackend runs the 2 apps × {IC, PIC} × {mapred, BSP} grid with
// per-cell worker-count and repeat byte-identity checks, then sweeps
// problem size per app to locate the pace crossover between backends.
func AblationBackend() (*BackendResult, error) {
	res := &BackendResult{}
	apps := []string{"pagerank", "smoothing"}

	type gridCell struct{ app, scheme, backend string }
	var grid []gridCell
	for _, app := range apps {
		for _, scheme := range []string{"ic", "pic"} {
			for _, backend := range []string{"mapred", "bsp"} {
				grid = append(grid, gridCell{app, scheme, backend})
			}
		}
	}
	cells := make([]BackendCell, len(grid))
	err := runCells(len(grid), func(i int) error {
		g := grid[i]
		size := backendCellSize(g.app)
		// Serial leg, measured leg, and a repeat of the measured leg:
		// the simulation must not notice real parallelism or reruns.
		_, fpSerial, err := runBackendOnce(g.app, g.scheme, core.Backend(g.backend), size, 1)
		if err != nil {
			return fmt.Errorf("bench: abl-backend %s/%s/%s workers=1: %w", g.app, g.scheme, g.backend, err)
		}
		meas, fpMeas, err := runBackendOnce(g.app, g.scheme, core.Backend(g.backend), size, 8)
		if err != nil {
			return fmt.Errorf("bench: abl-backend %s/%s/%s workers=8: %w", g.app, g.scheme, g.backend, err)
		}
		_, fpRepeat, err := runBackendOnce(g.app, g.scheme, core.Backend(g.backend), size, 8)
		if err != nil {
			return fmt.Errorf("bench: abl-backend %s/%s/%s repeat: %w", g.app, g.scheme, g.backend, err)
		}
		meas.Identical = bytes.Equal(fpSerial, fpMeas) && bytes.Equal(fpMeas, fpRepeat)
		cells[i] = *meas
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells

	crossovers := make([]BackendCrossover, len(apps))
	err = runCells(len(apps), func(i int) error {
		app := apps[i]
		x := BackendCrossover{App: app, Sizes: crossoverSizes(app)}
		for _, size := range x.Sizes {
			for _, backend := range []core.Backend{core.BackendMapred, core.BackendBSP} {
				cell, _, err := runBackendOnce(app, "ic", backend, size, 8)
				if err != nil {
					return fmt.Errorf("bench: abl-backend crossover %s/%s n=%d: %w", app, backend, size, err)
				}
				if backend == core.BackendMapred {
					x.Mapred = append(x.Mapred, cell.Duration)
				} else {
					x.BSP = append(x.BSP, cell.Duration)
				}
			}
		}
		x.CrossoverSize = interpolateCrossover(&x)
		crossovers[i] = x
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Crossovers = crossovers
	return res, nil
}

// Identical reports that every grid cell passed its worker-count and
// repeat byte-identity check.
func (r *BackendResult) Identical() bool {
	for _, c := range r.Cells {
		if !c.Identical {
			return false
		}
	}
	return true
}

// Render formats the grid and the crossover sweeps.
func (r *BackendResult) Render() string {
	var t table
	t.title("Ablation — execution backend (mapred jobs vs BSP supersteps)")
	t.row("App / scheme / backend", "iters", "supersteps", "duration", "exchange", "overhead", "total", "cross-rack", "intra-rack", "local")
	for _, c := range r.Cells {
		steps := "-"
		if c.Supersteps > 0 {
			steps = fmt.Sprint(c.Supersteps)
		}
		t.row(fmt.Sprintf("%s %s %s", c.App, c.Scheme, c.Backend),
			fmt.Sprint(c.Iterations),
			steps,
			FormatDuration(c.Duration),
			FormatDuration(c.ExchangeSeconds),
			FormatDuration(c.OverheadSeconds),
			FormatBytes(c.Traffic.Total),
			FormatBytes(c.Traffic.CrossRack),
			FormatBytes(c.Traffic.IntraRack),
			FormatBytes(c.Traffic.Local))
	}
	for _, x := range r.Crossovers {
		for i, size := range x.Sizes {
			t.row(fmt.Sprintf("%s pace n=%d", x.App, size),
				fmt.Sprintf("mapred %s", FormatDuration(x.Mapred[i])),
				fmt.Sprintf("bsp %s", FormatDuration(x.BSP[i])),
				fmt.Sprintf("ratio %.2fx", x.Ratio(i)))
		}
		if x.CrossoverSize > 0 {
			t.row(fmt.Sprintf("%s pace crossover", x.App), fmt.Sprintf("≈ n=%d", x.CrossoverSize))
		} else {
			last := len(x.Sizes) - 1
			winner := "bsp"
			if x.Ratio(last) < 1 {
				winner = "mapred"
			}
			t.row(fmt.Sprintf("%s pace crossover", x.App), fmt.Sprintf("none in range (%s wins)", winner))
		}
	}
	verdict := "yes"
	if !r.Identical() {
		verdict = "NO — parallelism or repetition changed simulated results"
	}
	t.row("Workers 1 vs 8 vs repeat identical", verdict)
	return t.String()
}

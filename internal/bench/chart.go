package bench

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the two trajectories of a Figure 12 panel as an ASCII
// scatter plot (log-scaled error axis when the values span decades),
// the closest a terminal gets to the paper's figures.
func (r *Fig12Result) Chart(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	all := append(append([]TrajectoryPoint{}, r.IC.Points...), r.PIC.Points...)
	if len(all) == 0 {
		return "(no samples)\n"
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, p := range all {
		t, v := float64(p.Time), p.Value
		minT, maxT = math.Min(minT, t), math.Max(maxT, t)
		if v > 0 {
			minV, maxV = math.Min(minV, v), math.Max(maxV, v)
		}
	}
	if maxT <= minT {
		maxT = minT + 1
	}
	logScale := minV > 0 && maxV/minV > 50
	yOf := func(v float64) float64 {
		if logScale {
			return math.Log10(v)
		}
		return v
	}
	loY, hiY := yOf(minV), yOf(maxV)
	if hiY <= loY {
		hiY = loY + 1
	}

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	plot := func(points []TrajectoryPoint, mark byte) {
		for _, p := range points {
			if p.Value <= 0 && logScale {
				continue
			}
			x := int(float64(width-1) * (float64(p.Time) - minT) / (maxT - minT))
			yFrac := (yOf(p.Value) - loY) / (hiY - loY)
			y := height - 1 - int(float64(height-1)*yFrac)
			if x >= 0 && x < width && y >= 0 && y < height {
				if grid[y][x] == ' ' || grid[y][x] == mark {
					grid[y][x] = mark
				} else {
					grid[y][x] = '#' // overlap
				}
			}
		}
	}
	plot(r.IC.Points, 'i')
	plot(r.PIC.Points, 'p')

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.Title)
	axis := r.Metric
	if logScale {
		axis += " (log scale)"
	}
	fmt.Fprintf(&sb, "%s — i: IC, p: PIC, #: both\n", axis)
	for y, row := range grid {
		label := "          "
		switch y {
		case 0:
			label = trimLabel(maxV)
		case height - 1:
			label = trimLabel(minV)
		}
		fmt.Fprintf(&sb, "%10s |%s\n", label, row)
	}
	fmt.Fprintf(&sb, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%10s  %-*s%s\n", "", width-8, trimLabel(minT)+" s", trimLabel(maxT)+" s")
	return sb.String()
}

func trimLabel(v float64) string {
	s := fmt.Sprintf("%.3g", v)
	if len(s) > 10 {
		s = s[:10]
	}
	return s
}

// Bars renders the speedup figure as a horizontal ASCII bar chart — the
// shape of the paper's Figures 9 and 10.
func (f *SpeedupFigure) Bars(width int) string {
	if width < 20 {
		width = 20
	}
	var maxSpeedup float64
	for _, r := range f.Rows {
		if r.Speedup > maxSpeedup {
			maxSpeedup = r.Speedup
		}
	}
	if maxSpeedup <= 0 {
		maxSpeedup = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", f.Title)
	for _, r := range f.Rows {
		n := int(float64(width) * r.Speedup / maxSpeedup)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(&sb, "%-36s |%s %.2fx\n", r.App, strings.Repeat("#", n), r.Speedup)
	}
	// Reference line at 1x (the baseline).
	one := int(float64(width) / maxSpeedup)
	if one >= 1 {
		fmt.Fprintf(&sb, "%-36s |%s 1.00x (IC baseline)\n", "", strings.Repeat("-", one))
	}
	return sb.String()
}

package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/simcluster"
	"repro/internal/simtime"
)

// FaultRow is one scheme × condition cell of the node-failure ablation.
type FaultRow struct {
	Scheme            string
	Condition         string
	Time              float64
	Slowdown          float64 // vs the same scheme's healthy run
	RescheduledTasks  int
	ReReplicationB    int64
	GroupRepairs      int
	LostPartials      int
	ConvergedLikeSame bool // final model matches the healthy run's quality gate
}

// FaultSweepResult exercises §VII's fault-tolerance claim end to end: a
// whole node crashes mid-run (disk and all), HDFS re-replicates its
// blocks, the framework reschedules its tasks, and — under PIC — the
// best-effort groups repair around the hole. Both schemes must still
// converge; the interesting question is what the crash costs each.
type FaultSweepResult struct {
	CrashNode   int
	CrashTime   float64
	RecoverTime float64
	// Schedule lists the injected fault events, one line each, so the
	// run report records exactly what the numbers were measured under.
	Schedule     []string
	Rows         []FaultRow
	SpeedupFault float64 // PIC-vs-IC speedup with the crash injected
}

// faultRuntime builds a runtime for w with an optional failure plan
// registered on the cluster before the runtime snapshots it.
func faultRuntime(w *Workload, plan *simcluster.FailurePlan) *core.Runtime {
	cluster := simcluster.New(w.Cluster)
	cluster.SetFailurePlan(plan)
	rt := core.NewRuntime(cluster, dfs.DefaultConfig())
	cost := w.Cost
	if cost == (mapred.CostModel{}) {
		cost = HadoopCost()
	}
	rt.Engine().SetCostModel(cost)
	rt.SetTracer(w.Tracer)
	return rt
}

// AblationNodeFailure runs K-means under both schemes on a healthy
// cluster and then again with one node crashing partway through (and
// recovering, empty, near the end of the healthy PIC run's span).
func AblationNodeFailure() (*FaultSweepResult, error) {
	points := scaled(300_000, 40_000)
	const dims = 3
	w, _ := KMeansWorkload("kmeans-faults", simcluster.Small(), points, 25, dims, 6, 3)

	// The input dataset lives in the DFS (as it would on a real cluster),
	// so a crash always has replicated state to restore — even before the
	// first model checkpoint is written.
	newRuntime := func(plan *simcluster.FailurePlan) *core.Runtime {
		rt := faultRuntime(w, plan)
		rt.FS().Create("input/"+w.Name, int64(points)*dims*8, 0)
		return rt
	}

	runIC := func(rt *core.Runtime) (*core.ICResult, error) {
		opts := w.ICOpts
		return core.RunIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), &opts)
	}
	runPIC := func(rt *core.Runtime) (*core.PICResult, error) {
		return core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts)
	}

	// Healthy baselines — they also calibrate the crash time: the node
	// dies a quarter of the way into the healthy PIC run, early enough
	// to land inside every phase of both schemes.
	icHealthy, err := runIC(newRuntime(nil))
	if err != nil {
		return nil, fmt.Errorf("bench: faults IC healthy: %w", err)
	}
	picHealthy, err := runPIC(newRuntime(nil))
	if err != nil {
		return nil, fmt.Errorf("bench: faults PIC healthy: %w", err)
	}

	crashAt := simtime.Time(picHealthy.Duration) / 4
	recoverAt := simtime.Time(picHealthy.Duration) * 9 / 10
	const crashNode = 1
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: crashNode, Time: crashAt},
		{Node: crashNode, Time: recoverAt, Recover: true},
	}}

	icFault, err := runIC(newRuntime(plan))
	if err != nil {
		return nil, fmt.Errorf("bench: faults IC crash: %w", err)
	}
	picFault, err := runPIC(newRuntime(plan))
	if err != nil {
		return nil, fmt.Errorf("bench: faults PIC crash: %w", err)
	}

	res := &FaultSweepResult{
		CrashNode:    crashNode,
		CrashTime:    float64(crashAt),
		RecoverTime:  float64(recoverAt),
		SpeedupFault: float64(icFault.Duration) / float64(picFault.Duration),
	}
	for _, ev := range plan.Events {
		what := "crashes"
		if ev.Recover {
			what = "recovers (empty)"
		}
		res.Schedule = append(res.Schedule, fmt.Sprintf("t=%.1f s: node %d %s", float64(ev.Time), ev.Node, what))
	}
	res.Rows = append(res.Rows,
		FaultRow{Scheme: "IC", Condition: "healthy", Time: float64(icHealthy.Duration), Slowdown: 1,
			ConvergedLikeSame: icHealthy.Converged},
		FaultRow{Scheme: "IC", Condition: "node crash", Time: float64(icFault.Duration),
			Slowdown:         float64(icFault.Duration) / float64(icHealthy.Duration),
			RescheduledTasks: icFault.Metrics.RescheduledTasks, ReReplicationB: icFault.Metrics.ReReplicationBytes,
			ConvergedLikeSame: icFault.Converged},
		FaultRow{Scheme: "PIC", Condition: "healthy", Time: float64(picHealthy.Duration), Slowdown: 1,
			ConvergedLikeSame: picHealthy.TopOffConverged},
		FaultRow{Scheme: "PIC", Condition: "node crash", Time: float64(picFault.Duration),
			Slowdown:         float64(picFault.Duration) / float64(picHealthy.Duration),
			RescheduledTasks: picFault.Metrics.RescheduledTasks, ReReplicationB: picFault.Metrics.ReReplicationBytes,
			GroupRepairs: picFault.GroupRepairs, LostPartials: picFault.LostPartials,
			ConvergedLikeSame: picFault.TopOffConverged},
	)
	return res, nil
}

// Render formats the ablation.
func (r *FaultSweepResult) Render() string {
	var t table
	t.title(fmt.Sprintf("Ablation — node failure (K-means, small cluster; node %d crashes at %.1f s, returns empty at %.1f s)",
		r.CrashNode, r.CrashTime, r.RecoverTime))
	t.row("Scheme / condition", "Time", "Slowdown", "Resched tasks", "Re-repl", "Group repairs", "Converged")
	for _, row := range r.Rows {
		conv := "yes"
		if !row.ConvergedLikeSame {
			conv = "NO"
		}
		t.row(row.Scheme+" "+row.Condition, fmt.Sprintf("%.1f s", row.Time),
			fmt.Sprintf("%.2fx", row.Slowdown), fmt.Sprint(row.RescheduledTasks),
			FormatBytes(row.ReReplicationB),
			fmt.Sprintf("%d (+%d lost)", row.GroupRepairs, row.LostPartials), conv)
	}
	t.row("PIC speedup under failure", fmt.Sprintf("%.2fx", r.SpeedupFault))
	for _, line := range r.Schedule {
		t.row("fault schedule", line)
	}
	return t.String()
}

package bench

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apps/kmeans"
	"repro/internal/apps/linsolve"
	"repro/internal/apps/pagerank"
	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/webgraph"
	"repro/internal/writable"
)

// PartitionSweepRow is one partition count of the P ablation.
type PartitionSweepRow struct {
	Partitions   int
	BEIterations int
	FirstBELocal int
	TopOffIters  int
	Speedup      float64
	NetworkBytes int64
}

// PartitionSweepResult exercises §III-B's trade-off: "more sub-problems
// of smaller size can increase the number of best-effort iterations"
// while reducing per-partition traffic and adding parallelism.
type PartitionSweepResult struct {
	Rows []PartitionSweepRow
}

// AblationPartitionCount sweeps the number of K-means sub-problems on
// the small cluster.
func AblationPartitionCount() (*PartitionSweepResult, error) {
	counts := []int{1, 2, 6, 12, 24}
	res := &PartitionSweepResult{Rows: make([]PartitionSweepRow, len(counts))}
	if err := runCells(len(counts), func(i int) error {
		p := counts[i]
		w, _ := KMeansWorkload(fmt.Sprintf("kmeans-p%d", p), simcluster.Small(), scaled(300_000, 40_000), 25, 3, p, 3)
		c, err := RunComparison(w)
		if err != nil {
			return err
		}
		firstLocal := 0
		if locals := c.PIC.MaxLocalIterationsPerBE(); len(locals) > 0 {
			firstLocal = locals[0]
		}
		res.Rows[i] = PartitionSweepRow{
			Partitions:   p,
			BEIterations: c.PIC.BEIterations,
			FirstBELocal: firstLocal,
			TopOffIters:  c.PIC.TopOffIterations,
			Speedup:      c.Speedup(),
			NetworkBytes: c.PICNetworkBytes(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the sweep.
func (r *PartitionSweepResult) Render() string {
	var t table
	t.title("Ablation — K-means partition count (small cluster, 300k points)")
	t.row("Partitions", "BE iters", "1st-BE locals", "Top-off iters", "Speedup", "PIC net bytes")
	for _, row := range r.Rows {
		t.row(fmt.Sprint(row.Partitions), fmt.Sprint(row.BEIterations),
			fmt.Sprint(row.FirstBELocal), fmt.Sprint(row.TopOffIters),
			fmt.Sprintf("%.2fx", row.Speedup), FormatBytes(row.NetworkBytes))
	}
	return t.String()
}

// CouplingRow is one cross-edge fraction of the coupling ablation.
type CouplingRow struct {
	CrossFraction float64
	CutFraction   float64
	BEIterations  int
	TopOffIters   int
	Speedup       float64
	RankErrorL1   float64
}

// CouplingSweepResult exercises §VI-B: PIC is effective when the
// problem is nearly uncoupled; as cross-partition coupling grows, the
// best-effort phase helps less and the top-off phase works more.
type CouplingSweepResult struct {
	Rows []CouplingRow
}

// AblationGraphCoupling sweeps the web graph's cross-community edge
// fraction for PageRank.
func AblationGraphCoupling() (*CouplingSweepResult, error) {
	fracs := []float64{0.01, 0.05, 0.2, 0.5}
	res := &CouplingSweepResult{Rows: make([]CouplingRow, len(fracs))}
	if err := runCells(len(fracs), func(i int) error {
		cross := fracs[i]
		w, g := PageRankWorkload(fmt.Sprintf("pagerank-x%.2f", cross),
			simcluster.Small(), scaled(10_000, 2_000), 10, cross, 4)
		c, err := RunComparison(w)
		if err != nil {
			return err
		}
		icRanks := pagerank.Ranks(c.IC.Model, g.N)
		picRanks := pagerank.Ranks(c.PIC.Model, g.N)
		var l1, norm float64
		for v := range icRanks {
			d := icRanks[v] - picRanks[v]
			if d < 0 {
				d = -d
			}
			l1 += d
			norm += icRanks[v]
		}
		// The workload partitions by locality (the paper's METIS
		// option), so measure the cut of that assignment.
		assign := webgraph.LocalityPartition(g.N, 10)
		res.Rows[i] = CouplingRow{
			CrossFraction: cross,
			CutFraction:   float64(webgraph.CutEdges(g, assign)) / float64(g.NumEdges()),
			BEIterations:  c.PIC.BEIterations,
			TopOffIters:   c.PIC.TopOffIterations,
			Speedup:       c.Speedup(),
			RankErrorL1:   l1 / norm,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the sweep.
func (r *CouplingSweepResult) Render() string {
	var t table
	t.title("Ablation — PageRank cross-partition coupling (small cluster, 10k pages)")
	t.row("Cross frac", "Cut frac", "BE iters", "Top-off iters", "Speedup", "L1 rank err")
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%.2f", row.CrossFraction), fmt.Sprintf("%.2f", row.CutFraction),
			fmt.Sprint(row.BEIterations), fmt.Sprint(row.TopOffIters),
			fmt.Sprintf("%.2fx", row.Speedup), fmt.Sprintf("%.4f", row.RankErrorL1))
	}
	return t.String()
}

// PartitionerRow is one strategy of the graph-partitioner ablation.
type PartitionerRow struct {
	Strategy     string
	CutFraction  float64
	BEIterations int
	TopOffIters  int
	Speedup      float64
}

// PartitionerSweepResult compares the paper's default random vertex
// partitioning against locality and METIS-style multilevel min-cut
// partitioning (§VI-B: "by properly partitioning it (for example using
// the METIS package), the connectivity matrix of the graph becomes
// nearly uncoupled").
type PartitionerSweepResult struct {
	Rows []PartitionerRow
}

// AblationPartitioner runs PageRank PIC under each partitioning
// strategy on the same graph.
func AblationPartitioner() (*PartitionerSweepResult, error) {
	const (
		vertices   = 10_000
		partitions = 10
		seed       = 4
	)
	g := webgraph.NearlyUncoupled(seed, vertices, partitions, 0.05, 4)
	strategies := []struct {
		name     string
		strategy pagerank.PartitionStrategy
		assign   []int
	}{
		{"random", pagerank.PartitionRandom, webgraph.RandomPartition(seed, vertices, partitions)},
		{"locality", pagerank.PartitionLocality, webgraph.LocalityPartition(vertices, partitions)},
		{"multilevel", pagerank.PartitionMultilevel, webgraph.MultilevelPartition(g, partitions)},
	}
	res := &PartitionerSweepResult{Rows: make([]PartitionerRow, len(strategies))}
	if err := runCells(len(strategies), func(i int) error {
		s := strategies[i]
		strategy := s.strategy
		w := &Workload{
			Name:    "pagerank-" + s.name,
			Cluster: simcluster.Small(),
			MakeApp: func() core.PICApp {
				a := pagerank.New(g, 0.85, 0.01, seed)
				a.Strategy = strategy
				return a
			},
			MakeInput: func(c *simcluster.Cluster) *mapred.Input {
				return mapred.NewInput(pagerank.Records(g), c, c.MapSlots())
			},
			MakeModel: func() *model.Model { return pagerank.InitialModel(g) },
			ICOpts:    core.ICOptions{MaxIterations: 60},
			PICOpts: core.PICOptions{
				Partitions:          partitions,
				MaxBEIterations:     60,
				MaxLocalIterations:  10,
				MaxTopOffIterations: 60,
			},
		}
		c, err := RunComparison(w)
		if err != nil {
			return err
		}
		res.Rows[i] = PartitionerRow{
			Strategy:     s.name,
			CutFraction:  float64(webgraph.CutEdges(g, s.assign)) / float64(g.NumEdges()),
			BEIterations: c.PIC.BEIterations,
			TopOffIters:  c.PIC.TopOffIterations,
			Speedup:      c.Speedup(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the sweep.
func (r *PartitionerSweepResult) Render() string {
	var t table
	t.title("Ablation — PageRank graph partitioner (small cluster, 10k pages)")
	t.row("Partitioner", "Cut frac", "BE iters", "Top-off iters", "Speedup")
	for _, row := range r.Rows {
		t.row(row.Strategy, fmt.Sprintf("%.2f", row.CutFraction),
			fmt.Sprint(row.BEIterations), fmt.Sprint(row.TopOffIters),
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	return t.String()
}

// LocalFactorRow is one setting of the in-memory-speed ablation.
type LocalFactorRow struct {
	Factor  float64
	Speedup float64
}

// LocalFactorSweepResult sweeps the calibrated in-memory/framework
// compute ratio, the one assumed constant in the reproduction's cost
// model (see HadoopCost).
type LocalFactorSweepResult struct {
	Rows []LocalFactorRow
}

// AblationLocalFactor sweeps LocalComputeFactor for K-means.
func AblationLocalFactor() (*LocalFactorSweepResult, error) {
	factors := []float64{1, 1.0 / 3, 1.0 / 7, 1.0 / 15}
	res := &LocalFactorSweepResult{Rows: make([]LocalFactorRow, len(factors))}
	if err := runCells(len(factors), func(i int) error {
		f := factors[i]
		w, _ := KMeansWorkload(fmt.Sprintf("kmeans-lf%.3f", f), simcluster.Small(), scaled(300_000, 40_000), 25, 3, 6, 3)
		cost := HadoopCost()
		cost.LocalComputeFactor = f
		w.Cost = cost
		c, err := RunComparison(w)
		if err != nil {
			return err
		}
		res.Rows[i] = LocalFactorRow{Factor: f, Speedup: c.Speedup()}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the sweep.
func (r *LocalFactorSweepResult) Render() string {
	var t table
	t.title("Ablation — in-memory/framework compute ratio (K-means, small cluster)")
	t.row("LocalComputeFactor", "Speedup")
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%.3f", row.Factor), fmt.Sprintf("%.2fx", row.Speedup))
	}
	return t.String()
}

// DegenerateResult checks the §III-B special case: with one partition
// and a one-iteration best-effort criterion, PIC produces the IC
// solution.
type DegenerateResult struct {
	MaxCentroidDelta float64
	// ConvergenceThreshold is the displacement bound both schemes
	// converged under; the delta must fall below it.
	ConvergenceThreshold float64
}

// looseBEApp wraps a PICApp with an always-true best-effort criterion.
type looseBEApp struct {
	core.PICApp
}

func (looseBEApp) BEConverged(_, _ *model.Model) bool { return true }

// AblationDegenerate runs the degenerate-case check for K-means.
func AblationDegenerate() (*DegenerateResult, error) {
	w, _ := KMeansWorkload("kmeans-degenerate", simcluster.Small(), scaled(60_000, 10_000), 10, 3, 1, 3)
	ic, err := w.RunIC(nil)
	if err != nil {
		return nil, err
	}
	rt := w.NewRuntime()
	opts := w.PICOpts
	opts.Partitions = 1
	pic, err := core.RunPIC(rt, looseBEApp{w.MakeApp()}, w.MakeInput(rt.Cluster()), w.MakeModel(), opts)
	if err != nil {
		return nil, err
	}
	app := w.MakeApp().(*kmeans.App)
	return &DegenerateResult{
		MaxCentroidDelta:     model.MaxVectorDelta(ic.Model, pic.Model),
		ConvergenceThreshold: app.Threshold,
	}, nil
}

// Render formats the check.
func (r *DegenerateResult) Render() string {
	var t table
	t.title("Ablation — degenerate PIC (1 partition) vs IC")
	t.row("Max centroid delta", fmt.Sprintf("%.3g", r.MaxCentroidDelta))
	t.row("Convergence threshold", fmt.Sprintf("%.3g", r.ConvergenceThreshold))
	within := "YES"
	if r.MaxCentroidDelta >= r.ConvergenceThreshold {
		within = "NO"
	}
	t.row("Delta within threshold", within)
	return t.String()
}

// NetworkModelRow is one network model of the robustness ablation.
type NetworkModelRow struct {
	Model   string
	ICTime  float64
	PICTime float64
	Speedup float64
}

// NetworkModelSweepResult checks that the headline speedup does not
// hinge on the simulator's default optimally-scheduled (bottleneck)
// transfer model: the same workload is run under progressive max-min
// fair sharing (the skeptical TCP-like fluid model).
type NetworkModelSweepResult struct {
	Rows []NetworkModelRow
}

// AblationNetworkModel runs K-means under both network models.
func AblationNetworkModel() (*NetworkModelSweepResult, error) {
	modes := []bool{false, true}
	res := &NetworkModelSweepResult{Rows: make([]NetworkModelRow, len(modes))}
	if err := runCells(len(modes), func(i int) error {
		fair := modes[i]
		name := "bottleneck"
		if fair {
			name = "max-min fair"
		}
		w, _ := KMeansWorkload("kmeans-net-"+name, simcluster.Small(), scaled(300_000, 40_000), 25, 3, 6, 3)

		rtIC := w.NewRuntime()
		rtIC.Engine().FairSharingNetwork = fair
		ic, err := core.RunIC(rtIC, w.MakeApp(), w.MakeInput(rtIC.Cluster()), w.MakeModel(), &w.ICOpts)
		if err != nil {
			return err
		}
		rtPIC := w.NewRuntime()
		rtPIC.Engine().FairSharingNetwork = fair
		pic, err := core.RunPIC(rtPIC, w.MakeApp(), w.MakeInput(rtPIC.Cluster()), w.MakeModel(), w.PICOpts)
		if err != nil {
			return err
		}
		res.Rows[i] = NetworkModelRow{
			Model:   name,
			ICTime:  float64(ic.Duration),
			PICTime: float64(pic.Duration),
			Speedup: float64(ic.Duration) / float64(pic.Duration),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the sweep.
func (r *NetworkModelSweepResult) Render() string {
	var t table
	t.title("Ablation — network transfer model (K-means, small cluster)")
	t.row("Model", "IC time", "PIC time", "Speedup")
	for _, row := range r.Rows {
		t.row(row.Model, fmt.Sprintf("%.1f s", row.ICTime), fmt.Sprintf("%.1f s", row.PICTime),
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	return t.String()
}

// AsyncRow is one execution mode of the synchrony ablation.
type AsyncRow struct {
	Mode        string
	BETime      float64
	TopOffIters int
	TotalTime   float64
	Speedup     float64 // vs the conventional IC baseline
}

// AsyncSweepResult compares PIC's synchronous best-effort phase with the
// asynchronous variant (chaotic-relaxation style, §VIII's contrast):
// groups publish partial models on their own clocks instead of
// barriering at each merge.
type AsyncSweepResult struct {
	Rows []AsyncRow
}

// AblationAsync runs K-means conventionally, under synchronous PIC, and
// under asynchronous PIC — first on a healthy cluster, then with
// stragglers, where the barrier-free variant shines.
func AblationAsync() (*AsyncSweepResult, error) {
	modes := []bool{false, true}
	res := &AsyncSweepResult{Rows: make([]AsyncRow, 2*len(modes))}
	if err := runCells(len(modes), func(i int) error {
		straggle := modes[i]
		suffix := ""
		if straggle {
			suffix = " + stragglers"
		}
		w, _ := KMeansWorkload("kmeans-async"+suffix, simcluster.Small(), scaled(300_000, 40_000), 25, 3, 6, 3)
		prep := func() *core.Runtime {
			rt := w.NewRuntime()
			if straggle {
				rt.Engine().StraggleEveryNthMapTask = 4
				rt.Engine().StragglerSlowdown = 6
			}
			return rt
		}

		rtIC := prep()
		ic, err := core.RunIC(rtIC, w.MakeApp(), w.MakeInput(rtIC.Cluster()), w.MakeModel(), &w.ICOpts)
		if err != nil {
			return err
		}
		rtSync := prep()
		sync, err := core.RunPIC(rtSync, w.MakeApp(), w.MakeInput(rtSync.Cluster()), w.MakeModel(), w.PICOpts)
		if err != nil {
			return err
		}
		rtAsync := prep()
		async, err := core.RunPICAsync(rtAsync, w.MakeApp(), w.MakeInput(rtAsync.Cluster()), w.MakeModel(),
			core.AsyncOptions{Partitions: w.PICOpts.Partitions})
		if err != nil {
			return err
		}
		res.Rows[2*i] = AsyncRow{Mode: "sync PIC" + suffix, BETime: float64(sync.BEDuration),
			TopOffIters: sync.TopOffIterations, TotalTime: float64(sync.Duration),
			Speedup: float64(ic.Duration) / float64(sync.Duration)}
		res.Rows[2*i+1] = AsyncRow{Mode: "async PIC" + suffix, BETime: float64(async.BEDuration),
			TopOffIters: async.TopOffIterations, TotalTime: float64(async.Duration),
			Speedup: float64(ic.Duration) / float64(async.Duration)}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the sweep.
func (r *AsyncSweepResult) Render() string {
	var t table
	t.title("Ablation — synchronous vs asynchronous best-effort phase (K-means)")
	t.row("Mode", "BE time", "Top-off iters", "Total", "Speedup vs IC")
	for _, row := range r.Rows {
		t.row(row.Mode, fmt.Sprintf("%.1f s", row.BETime), fmt.Sprint(row.TopOffIters),
			fmt.Sprintf("%.1f s", row.TotalTime), fmt.Sprintf("%.2fx", row.Speedup))
	}
	return t.String()
}

// SeedingRow is one initialization strategy of the seeding ablation.
type SeedingRow struct {
	Seeding      string
	ICIterations int
	ICTime       float64
	PICTime      float64
	Speedup      float64
}

// SeedingSweepResult exercises the observation PIC is built on (§I:
// "the time to convergence depends on the specific choice of the
// initial model"): a better seeding (k-means++) shortens the
// conventional run, and PIC's best-effort phase is itself an
// initial-model generator, so the two compose.
type SeedingSweepResult struct {
	Rows []SeedingRow
}

// AblationSeeding compares clumped, random (first-k of a shuffled
// dataset) and k-means++ initialization under both schemes.
func AblationSeeding() (*SeedingSweepResult, error) {
	seedings := []string{"clumped", "random", "k-means++"}
	res := &SeedingSweepResult{Rows: make([]SeedingRow, len(seedings))}
	if err := runCells(len(seedings), func(i int) error {
		seeding := seedings[i]
		w, ps := KMeansWorkload("kmeans-seed-"+seeding, simcluster.Small(), scaled(300_000, 40_000), 25, 3, 6, 3)
		points := ps.Points
		switch seeding {
		case "clumped":
			// Adversarial start: the k seeds nearest to one point —
			// the "bad initial model" end of §I's observation.
			w.MakeModel = func() *model.Model {
				type cand struct {
					idx  int
					dist float64
				}
				cands := make([]cand, len(points))
				for i, p := range points {
					var d float64
					for j := range p {
						diff := p[j] - points[0][j]
						d += diff * diff
					}
					cands[i] = cand{i, d}
				}
				sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
				seeds := make([]int, 25)
				for i := range seeds {
					seeds[i] = cands[i].idx
				}
				m := model.New()
				for j, idx := range seeds {
					m.Set(kmeans.CentroidKey(j), writableVector(points[idx]))
				}
				return m
			}
		case "k-means++":
			w.MakeModel = func() *model.Model { return kmeans.InitialModelPlusPlus(points, 25, 99) }
		}
		c, err := RunComparison(w)
		if err != nil {
			return err
		}
		res.Rows[i] = SeedingRow{
			Seeding:      seeding,
			ICIterations: c.IC.Iterations,
			ICTime:       float64(c.IC.Duration),
			PICTime:      float64(c.PIC.Duration),
			Speedup:      c.Speedup(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// writableVector deep-copies a point into a writable vector.
func writableVector(p []float64) writable.Vector {
	out := make(writable.Vector, len(p))
	copy(out, p)
	return out
}

// Render formats the sweep.
func (r *SeedingSweepResult) Render() string {
	var t table
	t.title("Ablation — initial-model seeding (K-means, small cluster)")
	t.row("Seeding", "IC iters", "IC time", "PIC time", "Speedup")
	for _, row := range r.Rows {
		t.row(row.Seeding, fmt.Sprint(row.ICIterations), fmt.Sprintf("%.1f s", row.ICTime),
			fmt.Sprintf("%.1f s", row.PICTime), fmt.Sprintf("%.2fx", row.Speedup))
	}
	return t.String()
}

// RateRow is one partition count of the convergence-rate analysis.
type RateRow struct {
	Partitions  int
	BERate      float64 // geometric mean error contraction per BE iteration
	ICRate      float64 // contraction per conventional iteration
	BEIteration int     // iterations observed
}

// RateSweepResult measures §VI-B's analytical claim directly: the
// best-effort phase of a linear solver contracts the error
// geometrically, and "more partitions translate to a slower convergence
// rate in the best-effort phase" — the (ω·β/α)^((k−1)/k) scaling of the
// paper's companion analysis.
type RateSweepResult struct {
	Rows []RateRow
}

// AblationConvergenceRate sweeps block counts for the linear solver and
// fits per-iteration contraction rates from the error-versus-iteration
// trajectories.
func AblationConvergenceRate() (*RateSweepResult, error) {
	const n = 120
	parts := []int{2, 6, 12, 24, 40}
	res := &RateSweepResult{Rows: make([]RateRow, len(parts))}

	contraction := func(errs []float64) float64 {
		// Geometric mean of successive ratios over the clean tail
		// (skip the first point; stop when error hits float noise).
		var logSum float64
		var count int
		for i := 1; i < len(errs); i++ {
			if errs[i] <= 1e-13 || errs[i-1] <= 1e-13 {
				break
			}
			logSum += math.Log(errs[i] / errs[i-1])
			count++
		}
		if count == 0 {
			return 0
		}
		return math.Exp(logSum / float64(count))
	}

	if err := runCells(len(parts), func(i int) error {
		p := parts[i]
		w, app := LinSolveWorkload(fmt.Sprintf("linsolve-rate-p%d", p), simcluster.Small(), n, p, 5)
		golden, err := app.Golden()
		if err != nil {
			return err
		}
		metric := func(s core.Sample) float64 {
			return linsolve.Solution(s.Model, n).Sub(golden).Norm2()
		}

		var icErrs []float64
		if _, err := w.RunIC(func(s core.Sample) { icErrs = append(icErrs, metric(s)) }); err != nil {
			return err
		}
		var beErrs []float64
		if _, err := w.RunPIC(func(s core.Sample) {
			if s.Phase == core.PhaseBestEffort {
				beErrs = append(beErrs, metric(s))
			}
		}); err != nil {
			return err
		}
		res.Rows[i] = RateRow{
			Partitions:  p,
			BERate:      contraction(beErrs),
			ICRate:      contraction(icErrs),
			BEIteration: len(beErrs),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the analysis.
func (r *RateSweepResult) Render() string {
	var t table
	t.title("Ablation — best-effort convergence rate vs partitions (linear solver, §VI-B)")
	t.row("Partitions", "BE rate/iter", "IC rate/iter", "BE iters")
	for _, row := range r.Rows {
		t.row(fmt.Sprint(row.Partitions), fmt.Sprintf("%.3f", row.BERate),
			fmt.Sprintf("%.3f", row.ICRate), fmt.Sprint(row.BEIteration))
	}
	return t.String()
}

package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/simcluster"
	"repro/internal/simtime"
)

// Fig2Result reproduces Figure 2: run time and interconnect traffic for
// K-means on the 64-node cluster, with PIC's time split into its two
// phases (paper: 100M points into 100 clusters; scaled to 100k points).
type Fig2Result struct {
	ICTime         simtime.Duration
	PICBestEffort  simtime.Duration
	PICTopOff      simtime.Duration
	ICTrafficBytes int64 // intermediate data + model updates
	PICTraffic     int64
	Speedup        float64
	ICIterations   int
	BEIterations   int
	TopOffIters    int
}

// Fig2 runs the Figure 2 experiment. The six sub-problems are
// rack-sized node groups (§III-B: "a group of tightly-coupled nodes
// (e.g., a rack) can execute the sub-problem"), keeping per-partition
// clusters statistically meaningful at the scaled-down data size.
func Fig2() (*Fig2Result, error) {
	w, _ := KMeansWorkload("kmeans-fig2", simcluster.Medium(), scaled(600_000, 30_000), 25, 3, 6, 2)
	c, err := RunComparison(w)
	if err != nil {
		return nil, err
	}
	// The traffic panel uses the paper's counters: intermediate data
	// (map output bytes, the Hadoop counter) plus model updates for
	// the baseline; for PIC, the data the best-effort phase moves over
	// the network plus its model updates and the top-off iterations'
	// intermediate data.
	icTraffic := c.IC.Metrics.MapOutputBytes + c.IC.ModelUpdateBytes
	picTraffic := c.PIC.BEMetrics.ShuffleNetworkBytes + c.PIC.MergeTrafficBytes +
		c.PIC.ModelUpdateBytes + c.PIC.TopOffMetrics.MapOutputBytes
	return &Fig2Result{
		ICTime:         c.IC.Duration,
		PICBestEffort:  c.PIC.BEDuration,
		PICTopOff:      c.PIC.TopOffDuration,
		ICTrafficBytes: icTraffic,
		PICTraffic:     picTraffic,
		Speedup:        c.Speedup(),
		ICIterations:   c.IC.Iterations,
		BEIterations:   c.PIC.BEIterations,
		TopOffIters:    c.PIC.TopOffIterations,
	}, nil
}

// Render formats the result as the two panels of Figure 2.
func (r *Fig2Result) Render() string {
	var t table
	t.title("Figure 2 — K-means on the 64-node cluster (scaled: 600k points, 25 clusters)")
	t.row("", "Baseline (IC)", "PIC")
	t.row("Run time", FormatDuration(r.ICTime), FormatDuration(r.PICBestEffort+r.PICTopOff))
	t.row("  best-effort phase", "-", FormatDuration(r.PICBestEffort))
	t.row("  top-off phase", "-", FormatDuration(r.PICTopOff))
	t.row("Iterations", fmt.Sprint(r.ICIterations),
		fmt.Sprintf("%d BE + %d TO", r.BEIterations, r.TopOffIters))
	t.row("Intermediate data + model updates", FormatBytes(r.ICTrafficBytes), FormatBytes(r.PICTraffic))
	t.row("Speedup", "1.00x", fmt.Sprintf("%.2fx", r.Speedup))
	return t.String()
}

// SpeedupRow is one bar of a Figure 9/10 speedup chart.
type SpeedupRow struct {
	App          string
	ICTime       simtime.Duration
	PICBestEff   simtime.Duration
	PICTopOff    simtime.Duration
	Speedup      float64
	ICIterations int
	BEIterations int
	TopOffIters  int
}

// SpeedupFigure holds a full speedup chart.
type SpeedupFigure struct {
	Title string
	Rows  []SpeedupRow
}

// Render formats the chart as a bar chart followed by the table.
func (f *SpeedupFigure) Render() string {
	var t table
	t.sb.WriteString(f.Bars(48))
	t.sb.WriteByte('\n')
	t.title(f.Title)
	t.row("Application", "IC time", "PIC best-eff", "PIC top-off", "Speedup", "iters IC/BE/TO")
	for _, r := range f.Rows {
		t.row(r.App, FormatDuration(r.ICTime), FormatDuration(r.PICBestEff),
			FormatDuration(r.PICTopOff), fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d/%d/%d", r.ICIterations, r.BEIterations, r.TopOffIters))
	}
	return t.String()
}

func speedupRow(app string, c *Comparison) SpeedupRow {
	return SpeedupRow{
		App:          app,
		ICTime:       c.IC.Duration,
		PICBestEff:   c.PIC.BEDuration,
		PICTopOff:    c.PIC.TopOffDuration,
		Speedup:      c.Speedup(),
		ICIterations: c.IC.Iterations,
		BEIterations: c.PIC.BEIterations,
		TopOffIters:  c.PIC.TopOffIterations,
	}
}

// Fig9 reproduces Figure 9: K-means (5M→50k points, 100 clusters),
// PageRank (1.8M→20k pages, 18 partitions) and the linear equation
// solver (100 variables) on the small 6-node cluster.
func Fig9() (*SpeedupFigure, error) {
	fig := &SpeedupFigure{Title: "Figure 9 — speedups on the small (6-node) cluster"}
	cells := []func() (SpeedupRow, error){
		func() (SpeedupRow, error) {
			nKM := scaled(600_000, 30_000)
			km, _ := KMeansWorkload("kmeans-fig9", simcluster.Small(), nKM, 25, 3, 6, 3)
			c, err := RunComparison(km)
			if err != nil {
				return SpeedupRow{}, err
			}
			return speedupRow(fmt.Sprintf("K-means (%dk pts, 25 clusters)", nKM/1000), c), nil
		},
		func() (SpeedupRow, error) {
			nPR := scaled(20_000, 2_000)
			pr, _ := PageRankWorkload("pagerank-fig9", simcluster.Small(), nPR, 18, 0.05, 4)
			c, err := RunComparison(pr)
			if err != nil {
				return SpeedupRow{}, err
			}
			return speedupRow(fmt.Sprintf("PageRank (%dk pages, 18 parts)", nPR/1000), c), nil
		},
		func() (SpeedupRow, error) {
			ls, _ := LinSolveWorkload("linsolve-fig9", simcluster.Small(), 100, 6, 5)
			c, err := RunComparison(ls)
			if err != nil {
				return SpeedupRow{}, err
			}
			return speedupRow("Linear solver (100 vars)", c), nil
		},
	}
	fig.Rows = make([]SpeedupRow, len(cells))
	if err := runCells(len(cells), func(i int) error {
		row, err := cells[i]()
		fig.Rows[i] = row
		return err
	}); err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig10 reproduces Figure 10: K-means (10M→100k 3-D points), neural
// network training (210k→8k OCR vectors) and image smoothing
// (40 Mpixel→0.5 Mpixel) on the medium 64-node cluster.
func Fig10() (*SpeedupFigure, error) {
	fig := &SpeedupFigure{Title: "Figure 10 — speedups on the medium (64-node) cluster"}
	cells := []func() (SpeedupRow, error){
		func() (SpeedupRow, error) {
			nKM := scaled(600_000, 30_000)
			km, _ := KMeansWorkload("kmeans-fig10", simcluster.Medium(), nKM, 25, 3, 6, 6)
			c, err := RunComparison(km)
			if err != nil {
				return SpeedupRow{}, err
			}
			return speedupRow(fmt.Sprintf("K-means (%dk pts, 3-D)", nKM/1000), c), nil
		},
		neuralNetQualityRow,
		func() (SpeedupRow, error) {
			sm, _ := SmoothingWorkload("smoothing-fig10", simcluster.Medium(), 1024, scaled(512, 64), 16, 8)
			c, err := RunComparison(sm)
			if err != nil {
				return SpeedupRow{}, err
			}
			return speedupRow("Image smoothing (1024x512)", c), nil
		},
	}
	fig.Rows = make([]SpeedupRow, len(cells))
	if err := runCells(len(cells), func(i int) error {
		row, err := cells[i]()
		fig.Rows[i] = row
		return err
	}); err != nil {
		return nil, err
	}
	return fig, nil
}

// neuralNetQualityRow compares the schemes the way the paper's Figure
// 12(a) reads: training has no natural fixed point within the epoch
// budget, so PIC's time is measured to the moment its model first
// matches the baseline's final validation error (the paper: "virtually
// identical ... in less than a quarter of the time").
func neuralNetQualityRow() (SpeedupRow, error) {
	w, app, _, valid := NeuralNetWorkload("neuralnet-fig10", simcluster.Medium(), scaled(8_000, 1_000), 6, 7)

	// First pass: the baseline's final validation error.
	icFinal, err := w.RunIC(nil)
	if err != nil {
		return SpeedupRow{}, err
	}
	icErr := app.ModelError(icFinal.Model, valid.Vectors, valid.Labels)

	// Symmetric measurement: the time each scheme FIRST reaches that
	// quality level.
	timeToQuality := func(run func(core.Observer) (simtime.Duration, error)) (simtime.Duration, error) {
		reached := simtime.Time(-1)
		total, err := run(func(s core.Sample) {
			if reached < 0 && app.ModelError(s.Model, valid.Vectors, valid.Labels) <= icErr {
				reached = s.Time
			}
		})
		if err != nil {
			return 0, err
		}
		if reached < 0 {
			return total, nil
		}
		return simtime.Duration(reached), nil
	}
	icTime, err := timeToQuality(func(obs core.Observer) (simtime.Duration, error) {
		r, err := w.RunIC(obs)
		if err != nil {
			return 0, err
		}
		return r.Duration, nil
	})
	if err != nil {
		return SpeedupRow{}, err
	}
	var pic *core.PICResult
	picTime, err := timeToQuality(func(obs core.Observer) (simtime.Duration, error) {
		var err error
		pic, err = w.RunPIC(obs)
		if err != nil {
			return 0, err
		}
		return pic.Duration, nil
	})
	if err != nil {
		return SpeedupRow{}, err
	}
	ic := icFinal
	_ = icTime
	return SpeedupRow{
		App:          "Neural net (8k OCR, equal quality)",
		ICTime:       icTime,
		PICBestEff:   min(pic.BEDuration, picTime),
		PICTopOff:    max(0, picTime-pic.BEDuration),
		Speedup:      float64(icTime) / float64(picTime),
		ICIterations: ic.Iterations,
		BEIterations: pic.BEIterations,
		TopOffIters:  pic.TopOffIterations,
	}, nil
}

// Fig11Point is one cluster size of the strong-scaling experiment.
type Fig11Point struct {
	Nodes   int
	ICTime  simtime.Duration
	PICTime simtime.Duration
	Speedup float64
}

// Fig11Result reproduces Figure 11: PIC-versus-IC speedup for image
// smoothing with a fixed dataset as the cluster grows from 64 to 256
// nodes.
type Fig11Result struct {
	Points []Fig11Point
}

// Fig11 runs the strong-scaling experiment.
func Fig11() (*Fig11Result, error) {
	sizes := []int{64, 128, 192, 256}
	res := &Fig11Result{Points: make([]Fig11Point, len(sizes))}
	if err := runCells(len(sizes), func(i int) error {
		nodes := sizes[i]
		w, _ := SmoothingWorkload(fmt.Sprintf("smoothing-%dn", nodes),
			simcluster.Large(nodes), 1024, scaled(512, 64), 16, 8)
		c, err := RunComparison(w)
		if err != nil {
			return err
		}
		res.Points[i] = Fig11Point{
			Nodes:   nodes,
			ICTime:  c.IC.Duration,
			PICTime: c.PIC.Duration,
			Speedup: c.Speedup(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the scaling series.
func (r *Fig11Result) Render() string {
	var t table
	t.title("Figure 11 — strong scaling of the PIC speedup (image smoothing, fixed input)")
	t.row("Nodes", "IC time", "PIC time", "Speedup")
	for _, p := range r.Points {
		t.row(fmt.Sprint(p.Nodes), FormatDuration(p.ICTime), FormatDuration(p.PICTime),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t.String()
}

package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// CurvePoint is one row of a run's convergence curve: the residual
// (max model delta against the previous iterate) after one iteration,
// stamped on the simulated clock.
type CurvePoint struct {
	Phase     core.Phase
	Iteration int
	Time      simtime.Time
	Delta     float64
}

// Report is the run inspector's view of one fully-instrumented PIC run:
// the execution timeline, the metrics registry, the convergence curve,
// and end-of-run snapshots of every resource accumulator. Everything in
// it derives from the simulated clock, so rendering the same workload
// twice produces byte-identical output.
type Report struct {
	Name     string
	Result   *core.PICResult
	Trace    *trace.Tracer
	Registry *metrics.Registry
	Curve    []CurvePoint

	NetUtil   simnet.Utilization
	SlotUsage simcluster.Usage
	Stored    []int64
	ReRepl    []int64
}

// ReportWorkloads names the workloads RunReport can execute.
func ReportWorkloads() []string { return []string{"kmeans", "pagerank", "linsolve"} }

// reportWorkload builds the named workload at the bench's canonical
// small-cluster configuration (honoring the current -scale).
func reportWorkload(name string) (*Workload, error) {
	switch name {
	case "kmeans":
		w, _ := KMeansWorkload("kmeans", simcluster.Small(), scaled(300_000, 40_000), 25, 3, 6, 3)
		return w, nil
	case "pagerank":
		w, _ := PageRankWorkload("pagerank", simcluster.Small(), scaled(10_000, 2_000), 18, 0.05, 4)
		return w, nil
	case "linsolve":
		w, _ := LinSolveWorkload("linsolve", simcluster.Small(), 100, 6, 5)
		return w, nil
	}
	return nil, fmt.Errorf("bench: unknown report workload %q (have %s)",
		name, strings.Join(ReportWorkloads(), ", "))
}

// RunReport executes one PIC run of the named workload with the tracer
// and metrics registry attached, collecting everything the inspector
// renders.
func RunReport(name string) (*Report, error) {
	w, err := reportWorkload(name)
	if err != nil {
		return nil, err
	}
	tr := trace.New()
	reg := metrics.New()
	rt := w.NewRuntime()
	rt.SetTracer(tr)
	rt.SetObservability(reg)

	rep := &Report{Name: name, Trace: tr, Registry: reg}
	m0 := w.MakeModel()
	prev := m0
	opts := w.PICOpts
	opts.Observer = func(s core.Sample) {
		delta := math.Max(model.MaxVectorDelta(prev, s.Model), model.MaxFloatDelta(prev, s.Model))
		rep.Curve = append(rep.Curve, CurvePoint{Phase: s.Phase, Iteration: s.Iteration, Time: s.Time, Delta: delta})
		prev = s.Model
	}
	res, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), m0, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: report %s: %w", name, err)
	}
	rep.Result = res
	rep.NetUtil = rt.Cluster().Fabric().Utilization()
	rep.SlotUsage = rt.Cluster().Usage()
	rep.Stored = rt.FS().StoredBytes()
	rep.ReRepl = rt.FS().ReReplicationReceived()
	return rep, nil
}

// WriteTrace emits the run's Chrome trace-event JSON (load it in
// chrome://tracing or ui.perfetto.dev).
func (r *Report) WriteTrace(w io.Writer) error { return r.Trace.ChromeTrace(w) }

// ConvergenceCSV renders the convergence curve as CSV with a
// phase,iteration,time_s,delta header. Time is monotone across the
// best-effort/top-off boundary by construction.
func (r *Report) ConvergenceCSV() string {
	var sb strings.Builder
	sb.WriteString("phase,iteration,time_s,delta\n")
	for _, p := range r.Curve {
		fmt.Fprintf(&sb, "%s,%d,%.6f,%.9g\n", p.Phase, p.Iteration, float64(p.Time), p.Delta)
	}
	return sb.String()
}

// phaseCounter reads one mapred.phase_seconds counter from the registry
// snapshot.
func phaseCounter(snap metrics.Snapshot, phase string) float64 {
	m, ok := snap.Get(fmt.Sprintf("mapred.phase_seconds{phase=%s}", phase))
	if !ok {
		return 0
	}
	return m.Value
}

// Render produces the inspector's text report: run summary, wall-clock
// attribution from the trace, the phase breakdown cross-checked between
// the metrics registry and the driver's Metrics, per-node resource
// utilization, and the full registry dump.
func (r *Report) Render() string {
	res := r.Result
	t := &table{}
	t.title("run inspector: " + r.Name)
	t.row("phase", "duration", "iterations")
	t.row("best-effort", FormatDuration(res.BEDuration), fmt.Sprintf("%d", res.BEIterations))
	t.row("top-off", FormatDuration(res.TopOffDuration), fmt.Sprintf("%d", res.TopOffIterations))
	t.row("total", FormatDuration(res.Duration), "")
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteByte('\n')

	sb.WriteString(r.Trace.CriticalPath().Render())
	sb.WriteByte('\n')

	// Phase seconds as the engine's registry counted them against the
	// driver's Metrics accumulator — identical sources, so any drift
	// here is a bug in the instrumentation.
	snap := r.Registry.Snapshot()
	pt := &table{}
	pt.title("framework phase seconds (registry vs driver metrics)")
	pt.row("phase", "registry", "metrics")
	for _, p := range []struct {
		name string
		d    simtime.Duration
	}{
		{"map", res.Metrics.MapPhase},
		{"shuffle", res.Metrics.ShufflePhase},
		{"reduce", res.Metrics.ReducePhase},
		{"model", res.Metrics.ModelPhase},
		{"overhead", res.Metrics.OverheadPhase},
	} {
		pt.row(p.name, fmt.Sprintf("%.3f s", phaseCounter(snap, p.name)), fmt.Sprintf("%.3f s", float64(p.d)))
	}
	sb.WriteString(pt.String())
	sb.WriteByte('\n')

	ut := &table{}
	ut.title("per-node utilization")
	ut.row("node", "slot busy", "tasks", "nic up", "nic down", "stored", "re-repl")
	for n := range r.SlotUsage.SlotBusy {
		ut.row(fmt.Sprintf("node %d", n),
			fmt.Sprintf("%.3f s", float64(r.SlotUsage.SlotBusy[n])),
			fmt.Sprintf("%d", r.SlotUsage.Tasks[n]),
			fmt.Sprintf("%.3f s", float64(r.NetUtil.NodeUp[n])),
			fmt.Sprintf("%.3f s", float64(r.NetUtil.NodeDown[n])),
			FormatBytes(r.Stored[n]),
			FormatBytes(r.ReRepl[n]))
	}
	for rk := range r.NetUtil.RackUp {
		ut.row(fmt.Sprintf("rack %d uplink", rk), "", "",
			fmt.Sprintf("%.3f s", float64(r.NetUtil.RackUp[rk])),
			fmt.Sprintf("%.3f s", float64(r.NetUtil.RackDown[rk])), "", "")
	}
	ut.row("core bisection", "", "", fmt.Sprintf("%.3f s", float64(r.NetUtil.Core)), "", "", "")
	sb.WriteString(ut.String())
	sb.WriteByte('\n')

	sb.WriteString("metrics registry\n----------------\n")
	sb.WriteString(snap.Text())
	return sb.String()
}

package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// CurvePoint is one row of a run's convergence curve: the residual
// (max model delta against the previous iterate) after one iteration,
// stamped on the simulated clock.
type CurvePoint struct {
	Phase     core.Phase
	Iteration int
	Time      simtime.Time
	Delta     float64
}

// Report is the run inspector's view of one fully-instrumented PIC run:
// the execution timeline, the metrics registry, the convergence curve,
// and end-of-run snapshots of every resource accumulator. Everything in
// it derives from the simulated clock, so rendering the same workload
// twice produces byte-identical output.
type Report struct {
	Name     string
	Result   *core.PICResult
	Trace    *trace.Tracer
	Registry *metrics.Registry
	Curve    []CurvePoint

	NetUtil   simnet.Utilization
	SlotUsage simcluster.Usage
	Stored    []int64
	ReRepl    []int64

	// ObsOpts configures the telemetry derivation for this run: the
	// tumbling-window width, the cost-model sentinel bounds derived
	// from the workload, and (for fault-injected runs) the network
	// plan used for anomaly attribution.
	ObsOpts obs.Options
}

// Telemetry derives the run's streaming-telemetry product — windowed
// series, latency histograms, anomalies, flight recorder — from the
// finished tracer and registry. It is a pure function of the run, so
// repeated calls (and repeated runs) yield byte-identical artifacts.
func (r *Report) Telemetry() *obs.Product {
	return obs.Collect(r.Name, r.Trace, r.Registry, r.ObsOpts)
}

// WriteEventLog emits the versioned JSONL telemetry event log.
func (r *Report) WriteEventLog(w io.Writer) error { return r.Telemetry().WriteJSONL(w) }

// WriteOpenMetrics emits an OpenMetrics snapshot of the run.
func (r *Report) WriteOpenMetrics(w io.Writer) error { return r.Telemetry().WriteOpenMetrics(w) }

// ReportWorkloads names the workloads RunReport can execute.
func ReportWorkloads() []string { return []string{"kmeans", "pagerank", "linsolve"} }

// reportWorkload builds the named workload at the bench's canonical
// small-cluster configuration (honoring the current -scale).
func reportWorkload(name string) (*Workload, error) {
	switch name {
	case "kmeans":
		w, _ := KMeansWorkload("kmeans", simcluster.Small(), scaled(300_000, 40_000), 25, 3, 6, 3)
		return w, nil
	case "pagerank":
		w, _ := PageRankWorkload("pagerank", simcluster.Small(), scaled(10_000, 2_000), 18, 0.05, 4)
		return w, nil
	case "linsolve":
		w, _ := LinSolveWorkload("linsolve", simcluster.Small(), 100, 6, 5)
		return w, nil
	}
	return nil, fmt.Errorf("bench: unknown report workload %q (have %s)",
		name, strings.Join(ReportWorkloads(), ", "))
}

// RunReport executes one PIC run of the named workload with the tracer
// and metrics registry attached, collecting everything the inspector
// renders.
func RunReport(name string) (*Report, error) {
	return runReportHooked(name, metrics.New(), nil)
}

// runReportHooked is RunReport with an optional live event hook: every
// trace record is forwarded to hook as it happens, and the registry is
// caller-supplied so a live inspector can snapshot it mid-run (the
// registry is mutex-protected; the tracer is tailed only through the
// hook).
func runReportHooked(name string, reg *metrics.Registry, hook func(trace.Event)) (*Report, error) {
	w, err := reportWorkload(name)
	if err != nil {
		return nil, err
	}
	tr := trace.New()
	tr.OnRecord = hook
	rt := w.NewRuntime()
	rt.SetTracer(tr)
	rt.SetObservability(reg)

	rep := &Report{Name: name, Trace: tr, Registry: reg}
	m0 := w.MakeModel()
	prev := m0
	opts := w.PICOpts
	opts.Observer = func(s core.Sample) {
		delta := math.Max(model.MaxVectorDelta(prev, s.Model), model.MaxFloatDelta(prev, s.Model))
		rep.Curve = append(rep.Curve, CurvePoint{Phase: s.Phase, Iteration: s.Iteration, Time: s.Time, Delta: delta})
		prev = s.Model
	}
	in := w.MakeInput(rt.Cluster())
	// Sentinel bounds from the workload itself: each best-effort merge
	// and each top-off iteration is one synchronized framework round,
	// and a healthy round moves O(input) bytes. The slack factor keeps
	// the sentinel quiet for healthy runs; a run that escapes these
	// bounds has genuinely left the cost model.
	rep.ObsOpts = obs.Options{
		Sentinel: obs.Sentinel{
			Factor:         4,
			ExpectedRounds: opts.MaxBEIterations + opts.MaxTopOffIterations + 4,
			BytesPerRound:  in.TotalBytes(),
		},
	}
	res, err := core.RunPIC(rt, w.MakeApp(), in, m0, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: report %s: %w", name, err)
	}
	rep.Result = res
	rep.NetUtil = rt.Cluster().Fabric().Utilization()
	rep.SlotUsage = rt.Cluster().Usage()
	rep.Stored = rt.FS().StoredBytes()
	rep.ReRepl = rt.FS().ReReplicationReceived()
	return rep, nil
}

// LiveReport is a report workload running in the background with the
// handles a live inspector tails while it executes: a mutex-protected
// registry safe to snapshot at any moment, and a buffered event stream
// fed from the tracer's record hook. If the consumer falls behind the
// stream drops events rather than stalling the run — the final
// artifacts always come from the finished report, so dropped live
// events cost a stale frame, never telemetry.
type LiveReport struct {
	Name     string
	Registry *metrics.Registry
	Events   <-chan trace.Event

	done chan struct{}
	rep  *Report
	err  error
}

// StartReport launches the named report workload in the background and
// returns its live handles. Wait blocks for completion.
func StartReport(name string) (*LiveReport, error) {
	if _, err := reportWorkload(name); err != nil {
		return nil, err
	}
	ch := make(chan trace.Event, 4096)
	l := &LiveReport{
		Name:     name,
		Registry: metrics.New(),
		Events:   ch,
		done:     make(chan struct{}),
	}
	go func() {
		defer close(l.done)
		l.rep, l.err = runReportHooked(name, l.Registry, func(e trace.Event) {
			select {
			case ch <- e:
			default:
			}
		})
		close(ch)
	}()
	return l, nil
}

// Done is closed when the run finishes.
func (l *LiveReport) Done() <-chan struct{} { return l.done }

// Wait blocks until the run finishes and returns its report.
func (l *LiveReport) Wait() (*Report, error) {
	<-l.done
	return l.rep, l.err
}

// WriteTrace emits the run's Chrome trace-event JSON (load it in
// chrome://tracing or ui.perfetto.dev).
func (r *Report) WriteTrace(w io.Writer) error { return r.Trace.ChromeTrace(w) }

// ConvergenceCSV renders the convergence curve as CSV with a
// phase,iteration,time_s,delta header. Time is monotone across the
// best-effort/top-off boundary by construction.
func (r *Report) ConvergenceCSV() string {
	var sb strings.Builder
	sb.WriteString("phase,iteration,time_s,delta\n")
	for _, p := range r.Curve {
		fmt.Fprintf(&sb, "%s,%d,%.6f,%.9g\n", p.Phase, p.Iteration, float64(p.Time), p.Delta)
	}
	return sb.String()
}

// phaseCounter reads one mapred.phase_seconds counter from the registry
// snapshot.
func phaseCounter(snap metrics.Snapshot, phase string) float64 {
	m, ok := snap.Get(fmt.Sprintf("mapred.phase_seconds{phase=%s}", phase))
	if !ok {
		return 0
	}
	return m.Value
}

// Render produces the inspector's text report: run summary, wall-clock
// attribution from the trace, the phase breakdown cross-checked between
// the metrics registry and the driver's Metrics, per-node resource
// utilization, and the full registry dump.
func (r *Report) Render() string {
	res := r.Result
	t := &table{}
	t.title("run inspector: " + r.Name)
	t.row("phase", "duration", "iterations")
	t.row("best-effort", FormatDuration(res.BEDuration), fmt.Sprintf("%d", res.BEIterations))
	t.row("top-off", FormatDuration(res.TopOffDuration), fmt.Sprintf("%d", res.TopOffIterations))
	t.row("total", FormatDuration(res.Duration), "")
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteByte('\n')

	sb.WriteString(r.Trace.CriticalPath().Render())
	sb.WriteByte('\n')

	// Phase seconds as the engine's registry counted them against the
	// driver's Metrics accumulator — identical sources, so any drift
	// here is a bug in the instrumentation.
	snap := r.Registry.Snapshot()
	pt := &table{}
	pt.title("framework phase seconds (registry vs driver metrics)")
	pt.row("phase", "registry", "metrics")
	for _, p := range []struct {
		name string
		d    simtime.Duration
	}{
		{"map", res.Metrics.MapPhase},
		{"shuffle", res.Metrics.ShufflePhase},
		{"reduce", res.Metrics.ReducePhase},
		{"model", res.Metrics.ModelPhase},
		{"overhead", res.Metrics.OverheadPhase},
	} {
		pt.row(p.name, fmt.Sprintf("%.3f s", phaseCounter(snap, p.name)), fmt.Sprintf("%.3f s", float64(p.d)))
	}
	sb.WriteString(pt.String())
	sb.WriteByte('\n')

	ut := &table{}
	ut.title("per-node utilization")
	ut.row("node", "slot busy", "tasks", "nic up", "nic down", "stored", "re-repl")
	for n := range r.SlotUsage.SlotBusy {
		ut.row(fmt.Sprintf("node %d", n),
			fmt.Sprintf("%.3f s", float64(r.SlotUsage.SlotBusy[n])),
			fmt.Sprintf("%d", r.SlotUsage.Tasks[n]),
			fmt.Sprintf("%.3f s", float64(r.NetUtil.NodeUp[n])),
			fmt.Sprintf("%.3f s", float64(r.NetUtil.NodeDown[n])),
			FormatBytes(r.Stored[n]),
			FormatBytes(r.ReRepl[n]))
	}
	for rk := range r.NetUtil.RackUp {
		ut.row(fmt.Sprintf("rack %d uplink", rk), "", "",
			fmt.Sprintf("%.3f s", float64(r.NetUtil.RackUp[rk])),
			fmt.Sprintf("%.3f s", float64(r.NetUtil.RackDown[rk])), "", "")
	}
	ut.row("core bisection", "", "", fmt.Sprintf("%.3f s", float64(r.NetUtil.Core)), "", "", "")
	sb.WriteString(ut.String())
	sb.WriteByte('\n')

	sb.WriteString("metrics registry\n----------------\n")
	sb.WriteString(snap.Text())
	return sb.String()
}

package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps/linsolve"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simtime"
)

// TrajectoryPoint is one sample of an error-vs-time curve.
type TrajectoryPoint struct {
	Time  simtime.Time
	Value float64
}

// Trajectory is one scheme's error-vs-time curve.
type Trajectory struct {
	Scheme string
	Points []TrajectoryPoint
}

// Fig12Result is one panel of Figure 12: the quality trajectory of the
// conventional implementation against PIC's (best-effort samples, then
// top-off samples continuing on the same clock).
type Fig12Result struct {
	Title  string
	Metric string
	IC     Trajectory
	PIC    Trajectory
}

// Render draws the panel as an ASCII chart followed by the sampled
// series.
func (r *Fig12Result) Render() string {
	var sb strings.Builder
	sb.WriteString(r.Chart(72, 16))
	sb.WriteByte('\n')
	var t table
	t.row("scheme", "time", r.Metric)
	for _, p := range r.IC.Points {
		t.row("IC", fmt.Sprintf("%.1f s", float64(p.Time)), fmt.Sprintf("%.6g", p.Value))
	}
	for _, p := range r.PIC.Points {
		t.row("PIC", fmt.Sprintf("%.1f s", float64(p.Time)), fmt.Sprintf("%.6g", p.Value))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// FinalValues returns the last error value of each curve.
func (r *Fig12Result) FinalValues() (ic, pic float64) {
	return r.IC.Points[len(r.IC.Points)-1].Value, r.PIC.Points[len(r.PIC.Points)-1].Value
}

// TimeToReach returns the first time each curve reaches the given error
// level (simtime.Time(-1) when a curve never does) — how the paper reads
// Figure 12: PIC reaches the baseline's final quality in a fraction of
// the time.
func (r *Fig12Result) TimeToReach(level float64) (ic, pic simtime.Time) {
	find := func(tr Trajectory) simtime.Time {
		for _, p := range tr.Points {
			if p.Value <= level {
				return p.Time
			}
		}
		return simtime.Time(-1)
	}
	return find(r.IC), find(r.PIC)
}

func collect(metric func(s core.Sample) float64, out *Trajectory) core.Observer {
	return func(s core.Sample) {
		out.Points = append(out.Points, TrajectoryPoint{Time: s.Time, Value: metric(s)})
	}
}

// Fig12a reproduces Figure 12(a): neural-network validation error
// (misclassification rate) versus time for both schemes.
func Fig12a() (*Fig12Result, error) {
	w, app, _, valid := NeuralNetWorkload("neuralnet-fig12a", simcluster.Medium(), scaled(8_000, 1_000), 6, 7)
	res := &Fig12Result{
		Title:  "Figure 12(a) — neural network training: model error vs time",
		Metric: "validation error",
		IC:     Trajectory{Scheme: "IC"},
		PIC:    Trajectory{Scheme: "PIC"},
	}
	metric := func(s core.Sample) float64 {
		return app.ModelError(s.Model, valid.Vectors, valid.Labels)
	}
	if _, err := w.RunIC(collect(metric, &res.IC)); err != nil {
		return nil, err
	}
	if _, err := w.RunPIC(collect(metric, &res.PIC)); err != nil {
		return nil, err
	}
	return res, nil
}

// Fig12b reproduces Figure 12(b): K-means centroid displacement from
// iteration to iteration versus time.
func Fig12b() (*Fig12Result, error) {
	w, _ := KMeansWorkload("kmeans-fig12b", simcluster.Medium(), scaled(600_000, 30_000), 25, 3, 6, 2)
	res := &Fig12Result{
		Title:  "Figure 12(b) — K-means: centroid displacement vs time",
		Metric: "max centroid displacement",
	}
	displacement := func(prev **model.Model) func(core.Sample) float64 {
		return func(s core.Sample) float64 {
			d := model.MaxVectorDelta(*prev, s.Model)
			*prev = s.Model
			return d
		}
	}
	prevIC := w.MakeModel()
	if _, err := w.RunIC(collect(displacement(&prevIC), &res.IC)); err != nil {
		return nil, err
	}
	prevPIC := w.MakeModel()
	if _, err := w.RunPIC(collect(displacement(&prevPIC), &res.PIC)); err != nil {
		return nil, err
	}
	return res, nil
}

// Fig12c reproduces Figure 12(c): linear-solver distance to the unique
// golden solution versus time.
func Fig12c() (*Fig12Result, error) {
	w, app := LinSolveWorkload("linsolve-fig12c", simcluster.Small(), 100, 6, 5)
	golden, err := app.Golden()
	if err != nil {
		return nil, err
	}
	n := len(golden)
	res := &Fig12Result{
		Title:  "Figure 12(c) — linear equation solver: error vs time",
		Metric: "distance to exact solution",
	}
	metric := func(s core.Sample) float64 {
		return linsolve.Solution(s.Model, n).Sub(golden).Norm2()
	}
	if _, err := w.RunIC(collect(metric, &res.IC)); err != nil {
		return nil, err
	}
	if _, err := w.RunPIC(collect(metric, &res.PIC)); err != nil {
		return nil, err
	}
	return res, nil
}

package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simcluster"
	"repro/internal/simnet"
)

// BenchmarkKMeansBEIter measures one best-effort PIC round of K-means —
// partition, local convergence on every node group, merge — the phase
// the paper's speedups come from.
func BenchmarkKMeansBEIter(b *testing.B) {
	w, _ := KMeansWorkload("bench-kmeans-be", simcluster.Small(), 50_000, 25, 3, 6, 3)
	w.PICOpts.MaxBEIterations = 1
	w.PICOpts.MaxLocalIterations = 10
	w.PICOpts.MaxTopOffIterations = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunPIC(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedMultiTenant measures one multi-tenant scheduler run — a
// PIC job contending with a synthetic co-tenant on one shared cluster —
// mirroring the sched-multitenant snapshot kernel for CI's single-pass
// bench smoke.
func BenchmarkSchedMultiTenant(b *testing.B) {
	w, _ := PageRankWorkload("bench-sched", tenancyCluster(), 2_000, 5, 0.02, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runTenancyCell(w, "pic", 0.5, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegradedMerge measures one best-effort PIC round through the
// degraded network path — fault-overlay transfer pricing and a quorum
// merge around a cut rack — mirroring the degraded-merge snapshot
// kernel for CI's single-pass bench smoke.
func BenchmarkDegradedMerge(b *testing.B) {
	w, _ := KMeansWorkload("bench-degraded", netFaultCluster(), 50_000, 25, 3, 6, 3)
	w.PICOpts.MaxBEIterations = 1
	w.PICOpts.MaxLocalIterations = 10
	w.PICOpts.MaxTopOffIterations = 1
	w.PICOpts.MergeQuorum = 4
	w.PICOpts.MergeTimeout = 5
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultRackUplink, Rack: 2, Start: 0, End: 1e9, Factor: 0},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := netFaultRuntime(w, plan, 60)
		if _, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func validSnapshot() *Snapshot {
	s := &Snapshot{GoVersion: "go1.24.0", GOMAXPROCS: 1, Scale: 1, SuiteWallSeconds: 42}
	for _, name := range KernelNames() {
		s.Kernels = append(s.Kernels, KernelResult{Name: name, Iters: 3, NsPerOp: 1e6})
	}
	return s
}

func TestCheckSnapshotRoundTrip(t *testing.T) {
	s := validSnapshot()
	s.SuiteWallSeconds = 123.4
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := CheckSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.SuiteWallSeconds != 123.4 || len(got.Kernels) != len(KernelNames()) {
		t.Fatalf("round trip mangled snapshot: %+v", got)
	}
}

func TestCheckSnapshotRejectsBadInputs(t *testing.T) {
	marshal := func(s *Snapshot) []byte {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"not json", []byte("nope{")},
		{"empty header", marshal(&Snapshot{Scale: 1})},
		{"zero scale", marshal(func() *Snapshot { s := validSnapshot(); s.Scale = 0; return s }())},
		{"negative scale", marshal(func() *Snapshot { s := validSnapshot(); s.Scale = -2; return s }())},
		{"missing kernel", marshal(func() *Snapshot { s := validSnapshot(); s.Kernels = s.Kernels[1:]; return s }())},
		{"zero timing", marshal(func() *Snapshot { s := validSnapshot(); s.Kernels[0].NsPerOp = 0; return s }())},
		// The suite wall total must be positive: a zero marks the
		// pre-fix bug where baselines recorded suite_wall_seconds 0.
		{"zero wall total", marshal(func() *Snapshot { s := validSnapshot(); s.SuiteWallSeconds = 0; return s }())},
		{"negative wall total", marshal(func() *Snapshot { s := validSnapshot(); s.SuiteWallSeconds = -1; return s }())},
	}
	for _, tc := range cases {
		if _, err := CheckSnapshot(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Ladder tiers above 1 are valid snapshots now (the old (0,1]
	// bound made tier snapshots uncheckable).
	tier := validSnapshot()
	tier.Scale = 10
	if _, err := CheckSnapshot(marshal(tier)); err != nil {
		t.Errorf("tier snapshot rejected: %v", err)
	}
}

func TestKernelNamesStable(t *testing.T) {
	want := []string{"run-grouped", "shuffle-accounting", "local-iteration", "sched-multitenant", "kmeans-be-iter", "per-iter-overhead", "degraded-merge", "stream-split-gen", "sparse-delta", "hier-merge", "scrub-repair", "bsp-superstep"}
	got := KernelNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("kernel set changed: %v (update BENCH_baseline.json and this test together)", got)
	}
}

// TestHarnessParallelismDeterministic holds the harness half of the
// determinism guard: running experiment cells concurrently must render
// byte-identical results, because every cell owns its simulated clocks
// and counters and results are deposited by index.
func TestHarnessParallelismDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("harness determinism test skipped in -short mode")
	}
	SetScale(0.05)
	defer SetScale(1.0)
	run := func() string {
		fig, err := Fig9()
		if err != nil {
			t.Fatal(err)
		}
		rate, err := AblationConvergenceRate()
		if err != nil {
			t.Fatal(err)
		}
		net, err := AblationNetworkModel()
		if err != nil {
			t.Fatal(err)
		}
		return fig.Render() + rate.Render() + net.Render()
	}
	serial := run()
	SetParallelism(4)
	defer SetParallelism(1)
	parallel := run()
	if serial != parallel {
		t.Fatalf("parallel harness changed rendered output:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestReportIdenticalAcrossWorkerCounts holds the engine half of the
// guard end to end: a fully-instrumented report run — render, Chrome
// trace, convergence CSV — is byte-identical whether user code runs on
// one worker or many.
func TestReportIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("report worker-count test skipped in -short mode")
	}
	SetScale(0.05)
	defer SetScale(1.0)
	type artifacts struct {
		render, csv string
		trace       []byte
	}
	run := func(workers int) artifacts {
		SetEngineWorkers(workers)
		defer SetEngineWorkers(0)
		rep, err := RunReport("kmeans")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return artifacts{render: rep.Render(), csv: rep.ConvergenceCSV(), trace: buf.Bytes()}
	}
	one := run(1)
	many := run(8)
	if one.render != many.render {
		t.Fatal("report text differs between worker counts")
	}
	if one.csv != many.csv {
		t.Fatal("convergence CSV differs between worker counts")
	}
	if !bytes.Equal(one.trace, many.trace) {
		t.Fatal("trace JSON differs between worker counts")
	}
}

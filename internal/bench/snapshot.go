package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corrupt"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/writable"
)

// Performance snapshots.
//
// A snapshot is a machine-readable record of the hot-path
// microbenchmarks (and optionally the full suite's wall time) at a
// point in the repository's history. The committed BENCH_baseline.json
// is the regression baseline: CI re-checks that it parses and names
// every current kernel, and a developer chasing a slowdown re-runs
// `picbench bench-snapshot` to diff against it.

// KernelResult is one microbenchmark measurement. Besides the timing,
// it carries the allocator profile of the measured op — the arena and
// pool work on the hot paths is held to account here, not just by eye.
type KernelResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Snapshot is the machine-readable performance record emitted by
// `picbench bench-snapshot`.
type Snapshot struct {
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scale      float64        `json:"scale"`
	Kernels    []KernelResult `json:"kernels"`
	// SuiteWallSeconds is a wall-clock total: the kernel measurements
	// themselves, or one full serial experiment suite at Scale when the
	// snapshot was taken with -suite. It is always positive; a zero
	// value marks a snapshot from before the wall total was recorded,
	// and CheckSnapshot rejects it.
	SuiteWallSeconds float64 `json:"suite_wall_seconds"`
}

// kernel is one named snapshot microbenchmark.
type kernel struct {
	name string
	fn   func(b *testing.B)
}

// groupedFixture builds the synthetic grouped job the mapred kernels
// share: duplicate-heavy keys (the shape every iterative workload
// produces — many records, few distinct reduce keys) through an
// identity mapper and a vector-sum reducer.
func groupedFixture() (*mapred.Engine, *mapred.Job, *mapred.Input) {
	const nRecords = 20_000
	const nKeys = 25
	recs := make([]mapred.Record, nRecords)
	for i := range recs {
		recs[i] = mapred.Record{
			Key:   fmt.Sprintf("k%02d", i%nKeys),
			Value: writable.Vector{float64(i), 1, 2, 3},
		}
	}
	cluster := simcluster.New(simcluster.Small())
	e := mapred.NewEngine(cluster)
	job := &mapred.Job{
		Name: "snapshot-grouped",
		Mapper: mapred.MapperFunc(func(k string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			emit.Emit(k, v)
			return nil
		}),
		Reducer: mapred.ReducerFunc(func(k string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			acc := values[0].(writable.Vector).Clone()
			for _, v := range values[1:] {
				vec := v.(writable.Vector)
				for i := range acc {
					acc[i] += vec[i]
				}
			}
			emit.Emit(k, acc)
			return nil
		}),
		NumReducers: 4,
	}
	return e, job, mapred.NewInput(recs, cluster, cluster.MapSlots())
}

// kernels returns the snapshot microbenchmarks. Their names are stable
// identifiers: BENCH_baseline.json is validated against this list.
func kernels() []kernel {
	return []kernel{
		{"run-grouped", func(b *testing.B) {
			// In-memory path: sort-based grouping + sharded reduce
			// (Engine.RunLocal), the best-effort-phase hot loop.
			e, job, in := groupedFixture()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.RunLocal(job, in, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"shuffle-accounting", func(b *testing.B) {
			// Framework path: partitioning, encoded-size caching and
			// shuffle byte accounting (Engine.Run).
			e, job, in := groupedFixture()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Run(job, in, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"local-iteration", func(b *testing.B) {
			// One Lloyd iteration of K-means through the runtime — the
			// per-iteration cost every figure experiment multiplies.
			w, _ := KMeansWorkload("snapshot-kmeans-iter", simcluster.Small(), 50_000, 25, 3, 6, 3)
			rt := w.NewRuntime()
			app := w.MakeApp()
			in := w.MakeInput(rt.Cluster())
			m := w.MakeModel()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := app.Iteration(rt, in, m); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sched-multitenant", func(b *testing.B) {
			// One multi-tenant scheduler run: a PIC job beside a
			// synthetic co-tenant on one shared cluster — the sched
			// event loop, footprint measurement and residual-capacity
			// accounting end to end.
			w, _ := PageRankWorkload("snapshot-sched", tenancyCluster(), 2_000, 5, 0.02, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runTenancyCell(w, "pic", 0.5, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"kmeans-be-iter", func(b *testing.B) {
			// One best-effort PIC round of K-means: partition, local
			// convergence on every node group, merge.
			w, _ := KMeansWorkload("snapshot-kmeans-be", simcluster.Small(), 50_000, 25, 3, 6, 3)
			w.PICOpts.MaxBEIterations = 1
			w.PICOpts.MaxLocalIterations = 10
			w.PICOpts.MaxTopOffIterations = 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.RunPIC(nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"per-iter-overhead", func(b *testing.B) {
			// Fixed per-iteration overhead with a warm loop cache: a
			// deliberately tiny K-means problem, so the measurement is
			// dominated by the per-iteration bookkeeping (job assembly,
			// accounting, model handling) rather than per-point compute —
			// the quantity the loop-aware runtime drives toward zero. One
			// untimed iteration stages the caches first.
			w, _ := KMeansWorkload("snapshot-per-iter", simcluster.Small(), 2_000, 25, 3, 6, 3)
			rt := w.NewRuntime()
			app := w.MakeApp()
			in := w.MakeInput(rt.Cluster())
			m := w.MakeModel()
			if _, err := app.Iteration(rt, in, m); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := app.Iteration(rt, in, m); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"degraded-merge", func(b *testing.B) {
			// One best-effort PIC round through the degraded network
			// path: a rack uplink is down for the whole run, so every
			// transfer is priced under the fault overlay and the merge
			// settles for a quorum with the cut groups' partials stale.
			w, _ := KMeansWorkload("snapshot-degraded", netFaultCluster(), 50_000, 25, 3, 6, 3)
			w.PICOpts.MaxBEIterations = 1
			w.PICOpts.MaxLocalIterations = 10
			w.PICOpts.MaxTopOffIterations = 1
			w.PICOpts.MergeQuorum = 4
			w.PICOpts.MergeTimeout = 5
			plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
				{Kind: simnet.FaultRackUplink, Rack: 2, Start: 0, End: 1e9, Factor: 0},
			}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt := netFaultRuntime(w, plan, 60)
				if _, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream-split-gen", func(b *testing.B) {
			// Out-of-core split generation: deal one tier's worth of
			// streamed mixture records into splits through the chunked
			// driver. The source is arena-backed, so a full pass keeps
			// exactly one split resident — the allocs column is the
			// point of the measurement.
			n := scaled(100_000, 10_000)
			cluster := simcluster.New(simcluster.Small())
			src := newMixtureSource(3, n, 25, 3, max(n/2_000, 1), true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mapred.StreamSplits(src, cluster, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sparse-delta", func(b *testing.B) {
			// Sparse model-delta round trip: encode the ~1%-changed
			// delta between two model versions into a reused buffer and
			// apply it back — the bytes loop-aware delta shipping and
			// delta checkpoints move per iteration.
			n := scaled(2_000, 200)
			prev := model.NewWithCapacity(n)
			next := model.NewWithCapacity(n)
			for i := 0; i < n; i++ {
				v := writable.Vector{float64(i), 1, 2, 3}
				key := fmt.Sprintf("w%06d", i)
				prev.Set(key, v)
				if i%100 == 0 {
					next.Set(key, writable.Vector{float64(i), 1, 2, 4})
				} else {
					next.Set(key, v)
				}
			}
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = model.EncodeDelta(prev, next, buf[:0])
				if _, err := model.ApplyDeltaBytes(prev, buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"hier-merge", func(b *testing.B) {
			// One best-effort round merged through the rack-local tree
			// on a ladder-sized cluster: rack pre-combines on rack
			// links, one combined model per rack over the core, and the
			// weighted final combine at the model home.
			nodes := scaled(64, 8)
			racks := (nodes + 15) / 16
			w, _ := scaleWorkload("snapshot-hier-merge", nodes, scaled(50_000, 10_000), 25, 3, 4*racks, 3)
			w.PICOpts.MaxBEIterations = 1
			w.PICOpts.MaxLocalIterations = 5
			w.PICOpts.MaxTopOffIterations = 1
			w.PICOpts.HierarchicalMerge = true
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.RunPIC(nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"scrub-repair", func(b *testing.B) {
			// One background-scrubber pass over a namespace with one
			// freshly poisoned replica per file: the deterministic
			// namespace walk, per-replica checksum verification, and the
			// re-replication copy around each detection — the integrity
			// layer's background hot loop.
			cluster := simcluster.New(simcluster.Small())
			fs := dfs.New(cluster, dfs.DefaultConfig())
			const files = 16
			names := make([]string, files)
			for i := range names {
				names[i] = fmt.Sprintf("scrub/f%02d", i)
				fs.Create(names[i], 4<<20, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, name := range names {
					fs.CorruptReplica(name, 0, corrupt.PrimaryReplica, uint64(i*files+j)+1)
				}
				if rep, _ := fs.Scrub(1<<30, 0); rep.RepairedBlocks != files {
					b.Fatalf("scrub repaired %d of %d poisoned blocks", rep.RepairedBlocks, files)
				}
			}
		}},
		{"bsp-superstep", func(b *testing.B) {
			// One native vertex-program iteration of PageRank on the BSP
			// backend: program build, two supersteps (sends, sender-side
			// combining, compute scheduling, message and barrier pricing)
			// and model assembly — the per-iteration hot loop of the
			// superstep engine.
			w, _ := PageRankWorkload("snapshot-bsp", simcluster.Small(), scaled(2_000, 400), 5, 0.05, 4)
			w.ICOpts.MaxIterations = 1
			rt := w.NewRuntime()
			if err := rt.SetBackend(core.BackendBSP); err != nil {
				b.Fatal(err)
			}
			app := w.MakeApp()
			in := w.MakeInput(rt.Cluster())
			m := w.MakeModel()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunIC(rt, app, in, m, &w.ICOpts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// KernelNames lists the snapshot kernels in measurement order.
func KernelNames() []string {
	ks := kernels()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.name
	}
	return names
}

// TakeSnapshot measures every kernel and returns the populated
// snapshot. SuiteWallSeconds is the wall time of the kernel
// measurements themselves; a caller that also times a full experiment
// suite overwrites it with that (longer) figure. Either way it is
// non-zero — a snapshot claiming a zero wall total is malformed, and
// CheckSnapshot rejects it.
func TakeSnapshot() *Snapshot {
	s := &Snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	start := time.Now()
	for _, k := range kernels() {
		r := testing.Benchmark(k.fn)
		s.Kernels = append(s.Kernels, KernelResult{
			Name:        k.name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	s.SuiteWallSeconds = time.Since(start).Seconds()
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// HistoryKernel is one kernel's condensed measurement in a trajectory
// entry: mean timing plus the allocator profile of the op.
type HistoryKernel struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// HistoryEntry is one line of the BENCH_history.jsonl performance
// trajectory: a dated condensation of a snapshot — the suite wall time
// plus each kernel's timing and allocation profile. Kernels marshal as
// a JSON object, which Go emits with sorted keys, so a given snapshot
// always serializes to the same line. (Entries from before the
// allocation columns record each kernel as a bare ns/op number; history
// is append-only, so both shapes coexist in the file.)
type HistoryEntry struct {
	Date             string                   `json:"date"` // YYYY-MM-DD
	GoVersion        string                   `json:"go_version"`
	Scale            float64                  `json:"scale"`
	SuiteWallSeconds float64                  `json:"suite_wall_seconds"`
	Kernels          map[string]HistoryKernel `json:"kernels"`
}

// History condenses the snapshot into a trajectory entry under the
// given date.
func (s *Snapshot) History(date string) HistoryEntry {
	e := HistoryEntry{
		Date:             date,
		GoVersion:        s.GoVersion,
		Scale:            s.Scale,
		SuiteWallSeconds: s.SuiteWallSeconds,
		Kernels:          map[string]HistoryKernel{},
	}
	for _, k := range s.Kernels {
		e.Kernels[k.Name] = HistoryKernel{
			NsPerOp:     k.NsPerOp,
			AllocsPerOp: k.AllocsPerOp,
			BytesPerOp:  k.BytesPerOp,
		}
	}
	return e
}

// AppendHistory writes the snapshot's trajectory entry as one JSONL
// line (the caller opens the history file in append mode).
func (s *Snapshot) AppendHistory(w io.Writer, date string) error {
	return json.NewEncoder(w).Encode(s.History(date))
}

// CheckSnapshot validates a serialized snapshot: it must parse, carry
// a plausible header, and name every current kernel with positive
// timings. It is the CI guard against a stale or hand-mangled
// baseline.
func CheckSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bench: snapshot does not parse: %w", err)
	}
	if s.GoVersion == "" || s.GOMAXPROCS < 1 {
		return nil, fmt.Errorf("bench: snapshot header incomplete (go_version %q, gomaxprocs %d)", s.GoVersion, s.GOMAXPROCS)
	}
	// Any positive scale is a valid tier: sub-1 smoke snapshots, the
	// scale-1 paper shape, and the ladder rungs above it. (An earlier
	// version rejected Scale > 1, which made tier snapshots uncheckable;
	// cross-tier comparison is the caller's job — runSnapshot refuses to
	// -check a snapshot taken at a different tier than the current one.)
	if s.Scale <= 0 {
		return nil, fmt.Errorf("bench: snapshot scale %v must be positive", s.Scale)
	}
	if s.SuiteWallSeconds <= 0 {
		return nil, fmt.Errorf("bench: snapshot suite_wall_seconds %v must be positive (re-take the snapshot; TakeSnapshot records the kernel-suite wall time)", s.SuiteWallSeconds)
	}
	have := map[string]KernelResult{}
	for _, k := range s.Kernels {
		have[k.Name] = k
	}
	for _, name := range KernelNames() {
		k, ok := have[name]
		if !ok {
			return nil, fmt.Errorf("bench: snapshot missing kernel %q", name)
		}
		if k.Iters < 1 || k.NsPerOp <= 0 {
			return nil, fmt.Errorf("bench: snapshot kernel %q has invalid measurement (%d iters, %v ns/op)", name, k.Iters, k.NsPerOp)
		}
	}
	return &s, nil
}

package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// NetFaultRow is one link-outage intensity level of the network-fault
// ablation: the same K-means problem run conventionally and under PIC
// while the cluster's core bisection periodically drops dead.
type NetFaultRow struct {
	// OutageFrac is the fraction of each period the core spends down.
	OutageFrac float64
	// Schedule describes this level's fault windows.
	Schedule string
	// ICTime and PICTime are run durations under that schedule;
	// ICIters and PICIters the iteration counts (PIC = BE + top-off).
	ICTime, PICTime   simtime.Duration
	ICIters, PICIters int
	// ICBlocked and PICBlocked are simulated time each driver spent
	// stalled waiting out fault windows; ICRetries and PICRetries the
	// transfer retries the engine burned bridging them.
	ICBlocked, PICBlocked simtime.Duration
	ICRetries, PICRetries int
	// DegradedMerges counts PIC best-effort merges that proceeded on a
	// quorum of partials.
	DegradedMerges int
	// Converged reports that both schemes still reached their
	// convergence criterion under this schedule — without it the times
	// compare unfinished work.
	Converged bool
	// Speedup is ICTime / PICTime.
	Speedup float64
}

// NetFaultSweepResult is the network-fault ablation: the paper's §VII
// argues PIC's best-effort phase needs no cross-partition traffic, so
// network turbulence that stalls every conventional iteration leaves
// the local solves untouched — the PIC-over-IC speedup must grow (or
// at worst hold) as the outages lengthen.
type NetFaultSweepResult struct {
	// Period is the outage cadence; Horizon is how far the schedule
	// extends (past the longest run).
	Period, Horizon float64
	Rows            []NetFaultRow
}

// netFaultCluster is the multi-rack testbed the outages act on: the
// same 12-node, 4-rack, thin-core layout as the tenancy ablation, so
// cross-rack traffic genuinely depends on the core that fails.
func netFaultCluster() simcluster.Config { return tenancyCluster() }

// netFaultPlan scripts periodic rack-uplink outages: every period
// seconds one rack's uplink goes dark for frac of the period, rotating
// through racks 1–3 (never rack 0, where the driver's model home
// lives), out to horizon. A rack cut severs at most two of PIC's six
// group leaders — few enough that a quorum of four fresh partials
// stays reachable and merges proceed degraded — while IC, which must
// touch every node every iteration, stalls on each window.
func netFaultPlan(frac, period, horizon float64) *simnet.NetworkPlan {
	if frac <= 0 {
		return nil
	}
	p := &simnet.NetworkPlan{}
	for i := 0; ; i++ {
		start := period * float64(i)
		if start+period*frac > horizon {
			break
		}
		p.Faults = append(p.Faults, simnet.NetFault{
			Kind:   simnet.FaultRackUplink,
			Rack:   1 + i%3,
			Start:  simtime.Time(start),
			End:    simtime.Time(start + period*frac),
			Factor: 0,
		})
	}
	return p
}

// netFaultRuntime builds a runtime with the plan registered and the
// engine's degraded-transfer knobs set relative to the fault cadence,
// so the sweep behaves identically at any -scale: attempts get a
// deadline well under a window, and three retries with a short backoff
// bridge brief dips while long outages exhaust them and force the
// driver to block.
func netFaultRuntime(w *Workload, plan *simnet.NetworkPlan, period float64) *core.Runtime {
	cluster := simcluster.New(w.Cluster)
	cluster.SetNetworkPlan(plan)
	rt := core.NewRuntime(cluster, dfs.DefaultConfig())
	cost := w.Cost
	if cost == (mapred.CostModel{}) {
		cost = HadoopCost()
	}
	rt.Engine().SetCostModel(cost)
	rt.Engine().Workers = int(engineWorkers.Load())
	rt.Engine().TransferTimeout = simtime.Duration(period / 3)
	rt.Engine().TransferRetries = 3
	rt.Engine().RetryBackoff = simtime.Duration(period / 24)
	rt.SetTracer(w.Tracer)
	// The input dataset lives in the DFS, so a partition always has
	// replicated state to repair around.
	rt.FS().Create("input/"+w.Name, 64<<20, 0)
	return rt
}

// AblationNetworkFault sweeps the duty fraction of periodic core
// outages and compares IC against PIC under each level. IC needs the
// bisection every iteration (model distribution, input fetch, shuffle)
// and stalls — retrying through short windows, blocking through long
// ones — while PIC's in-memory local solves run straight through and
// only its merges wait, on a quorum.
func AblationNetworkFault() (*NetFaultSweepResult, error) {
	points := scaled(300_000, 40_000)
	const dims = 3
	w, _ := KMeansWorkload("kmeans-netfaults", netFaultCluster(), points, 25, dims, 6, 3)

	runIC := func(rt *core.Runtime) (*core.ICResult, error) {
		opts := w.ICOpts
		return core.RunIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), &opts)
	}
	runPIC := func(rt *core.Runtime) (*core.PICResult, error) {
		return core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts)
	}

	// The healthy IC run calibrates the schedule: outages repeat every
	// quarter of its span, out to a horizon no degraded run outlives.
	// (The period argument is irrelevant under a nil plan — the engine
	// takes its legacy transfer path — so any value calibrates.)
	icHealthy, err := runIC(netFaultRuntime(w, nil, 1))
	if err != nil {
		return nil, fmt.Errorf("bench: netfaults IC healthy: %w", err)
	}
	period := float64(icHealthy.Duration) / 4
	horizon := float64(icHealthy.Duration) * 8

	// Merge on 4 of 6 fresh partials after a short gather wait — a rack
	// cut severs at most two leaders, so a quorum always stays in reach.
	// The fault-free rows never consult these (no plan registered).
	w.PICOpts.MergeQuorum = 4
	w.PICOpts.MergeTimeout = simtime.Duration(period / 24)

	fracs := []float64{0, 0.15, 0.3, 0.45}
	res := &NetFaultSweepResult{Period: period, Horizon: horizon,
		Rows: make([]NetFaultRow, len(fracs))}
	if err := runCells(len(fracs), func(i int) error {
		frac := fracs[i]
		plan := netFaultPlan(frac, period, horizon)
		ic, err := runIC(netFaultRuntime(w, plan, period))
		if err != nil {
			return fmt.Errorf("bench: netfaults IC at %.2f: %w", frac, err)
		}
		pic, err := runPIC(netFaultRuntime(w, plan, period))
		if err != nil {
			return fmt.Errorf("bench: netfaults PIC at %.2f: %w", frac, err)
		}
		schedule := "none"
		if plan != nil {
			schedule = fmt.Sprintf("rack uplink down %.1f s every %.1f s × %d (racks 1-3 rotating)",
				period*frac, period, len(plan.Faults))
		}
		res.Rows[i] = NetFaultRow{
			OutageFrac: frac,
			Schedule:   schedule,
			ICTime:     ic.Duration, PICTime: pic.Duration,
			ICIters: ic.Iterations, PICIters: pic.BEIterations + pic.TopOffIterations,
			ICBlocked: ic.Blocked, PICBlocked: pic.Blocked,
			ICRetries: ic.Metrics.TransferRetries, PICRetries: pic.Metrics.TransferRetries,
			DegradedMerges: len(pic.DegradedMerges),
			Converged:      ic.Converged && pic.TopOffConverged,
			Speedup:        float64(ic.Duration) / float64(pic.Duration),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Monotone reports whether the speedup column is non-decreasing in the
// outage intensity — the ablation's acceptance criterion.
func (r *NetFaultSweepResult) Monotone() bool {
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Speedup < r.Rows[i-1].Speedup-1e-9 {
			return false
		}
	}
	return true
}

// Render formats the sweep, fault schedule included.
func (r *NetFaultSweepResult) Render() string {
	var t table
	t.title(fmt.Sprintf("Ablation — network faults (K-means IC vs PIC; periodic rack-uplink outages, period %.1f s)", r.Period))
	t.row("Outage schedule", "IC time", "IC iters", "IC blocked", "IC retries",
		"PIC time", "PIC iters", "PIC blocked", "Degraded merges", "Converged", "Speedup")
	for _, row := range r.Rows {
		conv := "yes"
		if !row.Converged {
			conv = "NO"
		}
		t.row(row.Schedule,
			FormatDuration(row.ICTime), fmt.Sprint(row.ICIters),
			FormatDuration(row.ICBlocked), fmt.Sprint(row.ICRetries),
			FormatDuration(row.PICTime), fmt.Sprint(row.PICIters),
			FormatDuration(row.PICBlocked), fmt.Sprint(row.DegradedMerges),
			conv, fmt.Sprintf("%.2fx", row.Speedup))
	}
	if !r.Monotone() {
		t.row("WARNING", "speedup not monotone in outage intensity")
	}
	return t.String()
}

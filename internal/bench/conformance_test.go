package bench

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
)

// Cache-conformance layer.
//
// The loop-aware runtime's contract is that caching is invisible to
// every simulated observable: final model bytes, driver metrics, the
// metrics registry and the execution timeline must match a cold run
// exactly, at any worker count, under either harness mode. The only
// permitted differences are the cache's own annotations — cache.*
// registry metrics and cache-warm/cache-evict trace events — which
// these tests strip before comparing. Everything else must be
// byte-identical, or the cache has leaked into simulated results.

// confArtifacts captures every observable of one run, with the cache's
// own annotations stripped so cold and warm runs are comparable.
type confArtifacts struct {
	model   string
	metrics string
	reg     string
	trace   string
}

// stripCacheMetrics drops the cache.* lines from a registry dump.
func stripCacheMetrics(text string) string {
	var sb strings.Builder
	for _, line := range strings.SplitAfter(text, "\n") {
		if strings.HasPrefix(line, "cache.") {
			continue
		}
		sb.WriteString(line)
	}
	return sb.String()
}

// renderEventsSansCache renders a timeline with the cache's point
// annotations removed. Cache events never consume tracer IDs, so the
// remaining events must be identical — IDs included — cold vs warm.
func renderEventsSansCache(events []trace.Event) string {
	var sb strings.Builder
	for _, e := range events {
		if e.Kind == trace.KindCacheWarm || e.Kind == trace.KindCacheEvict {
			continue
		}
		fmt.Fprintf(&sb, "%s|%s|%v|%v|%d|%d|%d|%d\n",
			e.Kind, e.Name, e.Start, e.End, e.Bytes, e.Lane, e.ID, e.Parent)
	}
	return sb.String()
}

// confRun executes one fully-instrumented run of a report workload
// under one scheme, cache mode and worker count.
func confRun(name, scheme string, warm bool, workers int) (confArtifacts, error) {
	w, err := reportWorkload(name)
	if err != nil {
		return confArtifacts{}, err
	}
	tr := trace.New()
	reg := metrics.New()
	rt := w.NewRuntime()
	rt.Engine().Workers = workers
	rt.SetTracer(tr)
	rt.SetObservability(reg)
	if !warm {
		rt.SetLoopCache(false)
	}
	var m *model.Model
	var met mapred.Metrics
	if scheme == "ic" {
		opts := w.ICOpts
		res, err := core.RunIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), &opts)
		if err != nil {
			return confArtifacts{}, err
		}
		m, met = res.Model, res.Metrics
	} else {
		res, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts)
		if err != nil {
			return confArtifacts{}, err
		}
		m, met = res.Model, res.Metrics
	}
	return confArtifacts{
		model:   string(m.Encode(nil)),
		metrics: fmt.Sprintf("%+v", met),
		reg:     stripCacheMetrics(reg.Snapshot().Text()),
		trace:   renderEventsSansCache(tr.Events()),
	}, nil
}

// confCompare reports the first artifact that differs, or "".
func confCompare(base, got confArtifacts) string {
	switch {
	case base.model != got.model:
		return "final model bytes"
	case base.metrics != got.metrics:
		return "driver metrics"
	case base.reg != got.reg:
		return "metrics registry (cache.* lines excluded)"
	case base.trace != got.trace:
		return "trace events (cache events excluded)"
	}
	return ""
}

// TestCacheConformance is the conformance matrix: for every report
// workload and both schemes, a cold single-worker run is the reference,
// and cold×8-workers, warm×1 and warm×8 must all reproduce it exactly.
func TestCacheConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("cache conformance matrix skipped in -short mode")
	}
	SetScale(0.05)
	defer SetScale(1.0)
	for _, name := range ReportWorkloads() {
		for _, scheme := range []string{"ic", "pic"} {
			t.Run(name+"/"+scheme, func(t *testing.T) {
				base, err := confRun(name, scheme, false, 1)
				if err != nil {
					t.Fatal(err)
				}
				cases := []struct {
					label   string
					warm    bool
					workers int
				}{
					{"cold workers=8", false, 8},
					{"warm workers=1", true, 1},
					{"warm workers=8", true, 8},
				}
				for _, tc := range cases {
					got, err := confRun(name, scheme, tc.warm, tc.workers)
					if err != nil {
						t.Fatalf("%s: %v", tc.label, err)
					}
					if diff := confCompare(base, got); diff != "" {
						t.Errorf("%s: %s differ from cold workers=1 reference", tc.label, diff)
					}
				}
			})
		}
	}
}

// TestCacheConformanceParallelHarness runs the warm cells serially and
// under the parallel cell harness and requires identical artifacts —
// warm runs own their job family per runtime, so concurrent cells must
// not perturb each other's caches.
func TestCacheConformanceParallelHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel-harness conformance skipped in -short mode")
	}
	SetScale(0.05)
	defer SetScale(1.0)
	type cell struct {
		name   string
		scheme string
	}
	var cells []cell
	for _, name := range ReportWorkloads() {
		for _, scheme := range []string{"ic", "pic"} {
			cells = append(cells, cell{name, scheme})
		}
	}
	gather := func() []confArtifacts {
		arts := make([]confArtifacts, len(cells))
		if err := runCells(len(cells), func(i int) error {
			a, err := confRun(cells[i].name, cells[i].scheme, true, 0)
			arts[i] = a
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return arts
	}
	serial := gather()
	SetParallelism(4)
	defer SetParallelism(1)
	parallel := gather()
	for i := range cells {
		if diff := confCompare(serial[i], parallel[i]); diff != "" {
			t.Errorf("%s/%s: %s differ between serial and parallel harness",
				cells[i].name, cells[i].scheme, diff)
		}
	}
}

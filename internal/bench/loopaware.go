package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/simtime"
)

// Loop-aware runtime ablation.
//
// The loop-aware runtime pins persistent per-node workers for a run's
// lifetime and caches each split's loop-invariant bytes and derived
// structures, so an iteration ships only the model delta. The honest
// way to evaluate it: simulated results must not move a single byte
// (the cache is a real-wall-clock optimization, not a cost-model
// change), while the real per-iteration wall time collapses toward the
// fixed bookkeeping floor. This ablation runs the same K-means problem
// cold (cache disabled) and warm (default) under both schemes and
// reports both sides of that bargain.

// LoopAwareCell is one (scheme, cache-mode) run of the ablation.
type LoopAwareCell struct {
	// Scheme is "ic" or "pic"; Warm reports whether the loop cache was
	// enabled.
	Scheme string
	Warm   bool
	// Iterations counts framework iterations (IC iterations, or PIC
	// best-effort plus top-off rounds); Duration is the simulated time.
	Iterations int
	Duration   simtime.Duration
	// Wall is the real wall-clock time of the run — the quantity the
	// loop cache actually buys down. WallPerIter is Wall / Iterations.
	Wall        time.Duration
	WallPerIter time.Duration
	// Stats is the family's cache accounting (all zero when cold).
	Stats mapred.FamilyStats
	// model and metrics capture the run's outputs for the
	// byte-identity check against the other cache mode.
	model   []byte
	metrics string
}

// LoopAwareResult holds the 2×2 (scheme × cache mode) sweep.
type LoopAwareResult struct {
	Cells []LoopAwareCell
	// ICIdentical and PICIdentical report that the warm run's final
	// model bytes and metrics matched the cold run's exactly — the
	// ablation's correctness criterion.
	ICIdentical, PICIdentical bool
}

// runLoopAwareCell executes one cell serially (cells time real wall
// clock, so they must not contend with each other for cores).
func runLoopAwareCell(w *Workload, scheme string, warm bool) (LoopAwareCell, error) {
	rt := w.NewRuntime()
	if !warm {
		rt.SetLoopCache(false)
	}
	cell := LoopAwareCell{Scheme: scheme, Warm: warm}
	start := time.Now()
	switch scheme {
	case "ic":
		opts := w.ICOpts
		res, err := core.RunIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), &opts)
		if err != nil {
			return cell, fmt.Errorf("bench: loop-aware %s cold=%v: %w", scheme, !warm, err)
		}
		cell.Iterations = res.Iterations
		cell.Duration = res.Duration
		cell.model = res.Model.Encode(nil)
		cell.metrics = fmt.Sprintf("%+v", res.Metrics)
	default:
		res, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts)
		if err != nil {
			return cell, fmt.Errorf("bench: loop-aware %s cold=%v: %w", scheme, !warm, err)
		}
		cell.Iterations = res.BEIterations + res.TopOffIterations
		cell.Duration = res.Duration
		cell.model = res.Model.Encode(nil)
		cell.metrics = fmt.Sprintf("%+v", res.Metrics)
	}
	cell.Wall = time.Since(start)
	if cell.Iterations > 0 {
		cell.WallPerIter = cell.Wall / time.Duration(cell.Iterations)
	}
	cell.Stats = rt.LoopCacheStats()
	return cell, nil
}

// AblationLoopAware runs K-means cold and warm under both schemes.
func AblationLoopAware() (*LoopAwareResult, error) {
	w, _ := KMeansWorkload("kmeans-loopaware", tenancyCluster(),
		scaled(50_000, 5_000), 25, 3, 6, 3)
	w.PICOpts.MaxBEIterations = 5
	w.PICOpts.MaxLocalIterations = 50
	res := &LoopAwareResult{}
	// Serial on purpose: each cell is a wall-clock measurement.
	for _, scheme := range []string{"ic", "pic"} {
		var pair [2]LoopAwareCell
		for j, warm := range []bool{false, true} {
			cell, err := runLoopAwareCell(w, scheme, warm)
			if err != nil {
				return nil, err
			}
			pair[j] = cell
			res.Cells = append(res.Cells, cell)
		}
		identical := bytes.Equal(pair[0].model, pair[1].model) &&
			pair[0].metrics == pair[1].metrics
		if scheme == "ic" {
			res.ICIdentical = identical
		} else {
			res.PICIdentical = identical
		}
	}
	return res, nil
}

// Identical reports that both schemes produced byte-identical models
// and metrics cold versus warm.
func (r *LoopAwareResult) Identical() bool { return r.ICIdentical && r.PICIdentical }

// Render formats the sweep. Wall-clock columns vary run to run (they
// are real time, not simulated); the simulated columns and the
// identity verdict do not.
func (r *LoopAwareResult) Render() string {
	var t table
	t.title("Ablation — loop-aware runtime (K-means, cold vs warm invariant-input cache)")
	t.row("Scheme / cache", "iters", "sim time", "wall/iter", "hits", "misses", "delta/full")
	for _, c := range r.Cells {
		mode := "cold"
		if c.Warm {
			mode = "warm"
		}
		ratio := "-"
		if c.Stats.FullBytes > 0 {
			ratio = fmt.Sprintf("%.4f", float64(c.Stats.DeltaBytes)/float64(c.Stats.FullBytes))
		}
		t.row(fmt.Sprintf("%s %s", c.Scheme, mode),
			fmt.Sprint(c.Iterations),
			FormatDuration(c.Duration),
			c.WallPerIter.Round(time.Microsecond).String(),
			fmt.Sprint(c.Stats.Hits),
			fmt.Sprint(c.Stats.Misses),
			ratio)
	}
	verdict := "yes"
	if !r.Identical() {
		verdict = "NO — cache changed simulated results"
	}
	t.row("Cold/warm outputs byte-identical", verdict)
	return t.String()
}

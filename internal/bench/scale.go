package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/apps/kmeans"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/simcluster"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/writable"
)

// Scale-ladder ablation.
//
// The paper's testbed tops out at 90 machines; the ladder climbs past
// it. A tier t problem runs K-means on ≈20,000·t streamed records over
// ≈32·√t simulated nodes (so -scale 100 with the tier-10 rung reaches
// ~10⁷ records on 1,000+ nodes), with everything this PR adds engaged
// at once: splits are generated out-of-core (no O(dataset) generator
// buffer), checkpoints ship sparse deltas, and the best-effort merge
// runs both flat (every partial over the model home's core links) and
// hierarchical (rack-local pre-combine, one combined model per rack
// across the core). The ablation reports, per tier and strategy, the
// merge traffic split into total and core-crossing bytes, simulated
// time per iteration, and real wall clock — and holds the ladder to
// the repo's invariants: byte-identical outputs across engine worker
// counts at every tier, and a quiet Goodrich cost-model sentinel.

// mixtureSource deals a MixtureStream's records into mapred splits one
// chunk at a time — the out-of-core counterpart of kmeans.Records over
// a materialized PointSet, producing the same keys ("p<i>") and the
// same vectors in the same order.
//
// With shared=true the point vectors are carved from one flat arena
// that is resliced on every Records call, so a streaming pass allocates
// (almost) nothing — but every record aliases the same backing array.
// Shared sources are for StreamSplits-style chunk-at-a-time consumers
// ONLY; anything that retains records past the callback (including
// InputFromSource, whose Input keeps the Record structs and therefore
// their Vector headers) must use shared=false, which allocates a fresh
// vector per record.
type mixtureSource struct {
	stream *data.MixtureStream
	splits int
	shared bool
	arena  []float64
}

// newMixtureSource builds a streamed k-means dataset source with the
// same mixture geometry scaleWorkload uses.
func newMixtureSource(seed int64, n, k, dims, splits int, shared bool) *mixtureSource {
	sigma := 0.2 * (200.0 / math.Cbrt(float64(k)))
	return &mixtureSource{
		stream: data.NewMixtureStream(seed, n, k, dims, 100, sigma),
		splits: splits,
		shared: shared,
	}
}

// Splits implements mapred.SplitSource.
func (s *mixtureSource) Splits() int { return s.splits }

// Records implements mapred.SplitSource.
func (s *mixtureSource) Records(i int, dst []mapred.Record) []mapred.Record {
	lo, hi := mapred.SourceRange(i, s.splits, int64(s.stream.Len()))
	dims := s.stream.Dims()
	if s.shared {
		need := int(hi-lo) * dims
		if cap(s.arena) < need {
			s.arena = make([]float64, need)
		}
		s.arena = s.arena[:need]
	}
	off := 0
	for r := lo; r < hi; r++ {
		var vec linalg.Vector
		if s.shared {
			vec = s.stream.Point(int(r), linalg.Vector(s.arena[off:off+dims]))
			off += dims
		} else {
			vec = s.stream.Point(int(r), nil)
		}
		dst = append(dst, mapred.Record{Key: fmt.Sprintf("p%d", r), Value: writable.Vector(vec)})
	}
	return dst
}

// scaleWorkload is KMeansWorkload's out-of-core sibling: the same
// mixture geometry, thresholds and driver options, but the dataset
// exists only as a stream — MakeInput deals it into splits through
// InputFromSource and MakeModel seeds the centroids from the first k
// streamed points, so no O(dataset) generator buffer is ever built.
func scaleWorkload(name string, nodes, n, k, dims, partitions int, seed int64) (*Workload, *data.MixtureStream) {
	spacing := 200.0 / math.Cbrt(float64(k))
	sigma := 0.2 * spacing
	threshold := sigma / 16
	stream := data.NewMixtureStream(seed, n, k, dims, 100, sigma)
	w := &Workload{
		Name:    name,
		Cluster: simcluster.Large(nodes),
		MakeApp: func() core.PICApp {
			a := kmeans.New(k, threshold)
			a.BEThreshold = 2 * threshold
			return a
		},
		MakeInput: func(c *simcluster.Cluster) *mapred.Input {
			src := &mixtureSource{stream: stream, splits: c.MapSlots()}
			return mapred.InputFromSource(src, c)
		},
		MakeModel: func() *model.Model {
			// The stream interleaves components (label i%k), so the
			// first k points sample every cluster once — the same
			// "arbitrary but reproducible" seeding the legacy
			// generators got from their shuffle.
			m := model.NewWithCapacity(k)
			for j := 0; j < k; j++ {
				m.Set(kmeans.CentroidKey(j), writable.Vector(stream.Point(j, nil)))
			}
			return m
		},
		ICOpts: core.ICOptions{MaxIterations: 200},
		PICOpts: core.PICOptions{
			Partitions:         partitions,
			MaxBEIterations:    20,
			MaxLocalIterations: 200,
		},
	}
	return w, stream
}

// tierShape maps a ladder tier to its problem size: nodes grow with
// √tier (so racks, and with them merge-tree fan-in, grow steadily) and
// records grow linearly.
func tierShape(tier float64) (nodes, racks, partitions, records int) {
	nodes = max(int(32*math.Sqrt(tier)), 8)
	racks = (nodes + 15) / 16
	partitions = 4 * racks
	records = max(int(20_000*tier), 5_000)
	return nodes, racks, partitions, records
}

// ScaleCell is one (tier, merge-strategy) run of the ladder.
type ScaleCell struct {
	// Tier is the rung (the configured -scale times the ladder step);
	// Strategy is "flat" or "hier".
	Tier     float64
	Strategy string
	// Problem shape at this rung.
	Nodes, Racks, Partitions, Records int
	// Iterations counts best-effort plus top-off rounds; Duration is
	// simulated time.
	Iterations int
	Duration   simtime.Duration
	// MergeBytes is the run's total scatter/gather merge traffic;
	// MergeCoreBytes is the subset that crossed the core switch — the
	// bytes the hierarchical tree exists to shrink.
	MergeBytes     int64
	MergeCoreBytes int64
	// Wall is real wall-clock time of the measured run.
	Wall time.Duration
	// Identical reports the workers-1 and workers-8 runs produced
	// byte-identical models and metrics.
	Identical bool
	// SentinelQuiet reports the Goodrich cost-model sentinel raised no
	// anomaly on the measured run.
	SentinelQuiet bool
	model         []byte
	metrics       string
}

// SimPerIter is simulated seconds per framework iteration.
func (c *ScaleCell) SimPerIter() simtime.Duration {
	if c.Iterations == 0 {
		return 0
	}
	return c.Duration / simtime.Duration(c.Iterations)
}

// ScaleResult holds the tier × strategy sweep.
type ScaleResult struct {
	Cells []ScaleCell
	// Stream holds the per-tier out-of-core split-generation stats:
	// peak single-split residency versus total streamed bytes.
	Stream map[float64]mapred.StreamStats
}

// MarshalJSON renders Stream's float tier keys as strings — JSON
// objects cannot carry float keys, and picbench -json encodes results
// verbatim.
func (r *ScaleResult) MarshalJSON() ([]byte, error) {
	stream := make(map[string]mapred.StreamStats, len(r.Stream))
	for tier, stats := range r.Stream {
		stream[strconv.FormatFloat(tier, 'g', -1, 64)] = stats
	}
	return json.Marshal(struct {
		Cells  []ScaleCell
		Stream map[string]mapred.StreamStats
	}{r.Cells, stream})
}

// scaleCellRun executes one PIC run of the cell's workload, optionally
// instrumented for the sentinel check.
func scaleCellRun(w *Workload, instrument bool) (*core.PICResult, *obs.Product, time.Duration, error) {
	rt := w.NewRuntime()
	// Checkpoints at ladder scale ship sparse deltas; restores must
	// still be exact (the delta tests pin that), and the model bytes
	// the run reports reflect the delta encoding.
	rt.SetDeltaCheckpoints(true)
	var tr *trace.Tracer
	var reg *metrics.Registry
	if instrument {
		tr = trace.New()
		reg = metrics.New()
		rt.SetTracer(tr)
		rt.SetObservability(reg)
	}
	in := w.MakeInput(rt.Cluster())
	start := time.Now()
	res, err := core.RunPIC(rt, w.MakeApp(), in, w.MakeModel(), w.PICOpts)
	wall := time.Since(start)
	if err != nil {
		return nil, nil, 0, err
	}
	var p *obs.Product
	if instrument {
		p = obs.Collect(w.Name, tr, reg, obs.Options{Sentinel: obs.Sentinel{
			Factor:         4,
			ExpectedRounds: w.PICOpts.MaxBEIterations + w.PICOpts.MaxTopOffIterations + 4,
			BytesPerRound:  in.TotalBytes(),
		}})
	}
	return res, p, wall, nil
}

// sentinelQuiet reports whether the product carries no cost-model-bound
// anomaly.
func sentinelQuiet(p *obs.Product) bool {
	for _, a := range p.Anomalies {
		if a.Kind == "cost-model-bound" {
			return false
		}
	}
	return true
}

// AblationScale climbs the ladder: at each rung it runs the streamed
// K-means problem with the flat and the hierarchical merge, checks
// byte-identity across engine worker counts per strategy, and records
// the out-of-core residency of split generation.
func AblationScale() (*ScaleResult, error) {
	res := &ScaleResult{Stream: map[float64]mapred.StreamStats{}}
	defer SetEngineWorkers(0)
	for _, step := range []float64{1, 10} {
		tier := step * scale
		nodes, racks, partitions, records := tierShape(tier)
		const k, dims = 25, 3
		seed := int64(3)

		// Out-of-core residency proof at this rung: stream the whole
		// dataset through an arena-backed source and record how little
		// of it was ever resident at once.
		cluster := simcluster.New(simcluster.Large(nodes))
		src := newMixtureSource(seed, records, k, dims, cluster.MapSlots(), true)
		stats, err := mapred.StreamSplits(src, cluster, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: abl-scale tier %g stream: %w", tier, err)
		}
		res.Stream[tier] = stats

		for _, strategy := range []string{"flat", "hier"} {
			w, _ := scaleWorkload(fmt.Sprintf("scale-t%g-%s", tier, strategy),
				nodes, records, k, dims, partitions, seed)
			w.PICOpts.MaxBEIterations = 2
			w.PICOpts.MaxLocalIterations = 5
			w.PICOpts.MaxTopOffIterations = 1
			w.PICOpts.HierarchicalMerge = strategy == "hier"

			// Identity leg: one worker, uninstrumented.
			SetEngineWorkers(1)
			serial, _, _, err := scaleCellRun(w, false)
			if err != nil {
				return nil, fmt.Errorf("bench: abl-scale tier %g %s workers=1: %w", tier, strategy, err)
			}
			// Measured leg: eight workers, instrumented for the
			// sentinel. Simulated results must not notice the change.
			SetEngineWorkers(8)
			meas, p, wall, err := scaleCellRun(w, true)
			if err != nil {
				return nil, fmt.Errorf("bench: abl-scale tier %g %s workers=8: %w", tier, strategy, err)
			}

			cell := ScaleCell{
				Tier:       tier,
				Strategy:   strategy,
				Nodes:      nodes,
				Racks:      racks,
				Partitions: partitions,
				Records:    records,
				Iterations: meas.BEIterations + meas.TopOffIterations,
				Duration:   meas.Duration,

				MergeBytes:     meas.MergeTrafficBytes,
				MergeCoreBytes: meas.MergeCrossRackBytes,
				Wall:           wall,
				model:          meas.Model.Encode(nil),
				metrics:        fmt.Sprintf("%+v %v", meas.Metrics, meas.Duration),
			}
			cell.Identical = bytes.Equal(cell.model, serial.Model.Encode(nil)) &&
				cell.metrics == fmt.Sprintf("%+v %v", serial.Metrics, serial.Duration)
			cell.SentinelQuiet = sentinelQuiet(p)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// cellsAt returns the (flat, hier) cell pair of one tier.
func (r *ScaleResult) cellsAt(tier float64) (flat, hier *ScaleCell) {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Tier != tier {
			continue
		}
		if c.Strategy == "flat" {
			flat = c
		} else {
			hier = c
		}
	}
	return flat, hier
}

// Tiers lists the rungs in run order.
func (r *ScaleResult) Tiers() []float64 {
	var tiers []float64
	for _, c := range r.Cells {
		if len(tiers) == 0 || tiers[len(tiers)-1] != c.Tier {
			tiers = append(tiers, c.Tier)
		}
	}
	return tiers
}

// Identical reports that every cell's workers-1 and workers-8 runs
// matched byte for byte.
func (r *ScaleResult) Identical() bool {
	for _, c := range r.Cells {
		if !c.Identical {
			return false
		}
	}
	return true
}

// SentinelsQuiet reports that no cell tripped the cost-model sentinel.
func (r *ScaleResult) SentinelsQuiet() bool {
	for _, c := range r.Cells {
		if !c.SentinelQuiet {
			return false
		}
	}
	return true
}

// CoreReduced reports that at every multi-rack rung the hierarchical
// merge moved strictly fewer core-crossing merge bytes than the flat
// merge. Single-rack rungs (smoke scales) have no core links to save
// and are skipped.
func (r *ScaleResult) CoreReduced() bool {
	for _, tier := range r.Tiers() {
		flat, hier := r.cellsAt(tier)
		if flat == nil || hier == nil || flat.Racks < 2 {
			continue
		}
		if hier.MergeCoreBytes >= flat.MergeCoreBytes {
			return false
		}
	}
	return true
}

// Render formats the ladder. Wall-clock columns vary run to run; the
// simulated columns and all three verdicts do not.
func (r *ScaleResult) Render() string {
	var t table
	t.title("Ablation — scale ladder (streamed K-means, flat vs hierarchical merge)")
	t.row("Tier / merge", "nodes", "racks", "parts", "records", "iters", "merge total", "merge core", "sim/iter", "wall")
	for _, c := range r.Cells {
		t.row(fmt.Sprintf("tier %g %s", c.Tier, c.Strategy),
			fmt.Sprint(c.Nodes),
			fmt.Sprint(c.Racks),
			fmt.Sprint(c.Partitions),
			fmt.Sprint(c.Records),
			fmt.Sprint(c.Iterations),
			FormatBytes(c.MergeBytes),
			FormatBytes(c.MergeCoreBytes),
			FormatDuration(c.SimPerIter()),
			c.Wall.Round(time.Millisecond).String())
	}
	for _, tier := range r.Tiers() {
		flat, hier := r.cellsAt(tier)
		if flat == nil || hier == nil || hier.MergeCoreBytes == 0 {
			continue
		}
		t.row(fmt.Sprintf("tier %g core-byte reduction", tier),
			fmt.Sprintf("%.2fx", float64(flat.MergeCoreBytes)/float64(hier.MergeCoreBytes)))
		if st, ok := r.Stream[tier]; ok && st.Bytes > 0 {
			t.row(fmt.Sprintf("tier %g stream residency", tier),
				fmt.Sprintf("%s of %s", FormatBytes(st.PeakResidentBytes), FormatBytes(st.Bytes)))
		}
	}
	verdict := func(ok bool, bad string) string {
		if ok {
			return "yes"
		}
		return bad
	}
	t.row("Hier. merge reduces core bytes", verdict(r.CoreReduced(), "NO"))
	t.row("Workers 1 vs 8 byte-identical", verdict(r.Identical(), "NO — parallelism changed simulated results"))
	t.row("Cost-model sentinel quiet", verdict(r.SentinelsQuiet(), "NO — run escaped the cost model"))
	return t.String()
}

package bsp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/corrupt"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/writable"
)

// maxRestarts bounds crash-triggered restarts of one run; a failure
// plan that keeps killing nodes faster than the program can finish
// eventually surfaces as an error instead of looping forever.
const maxRestarts = 64

// DefaultMaxSupersteps bounds a single run when RunOptions.MaxSupersteps
// is zero — a safety net against programs that never reach global halt.
const DefaultMaxSupersteps = 10000

// Metrics accumulates one BSP run, including any crash-triggered
// restart attempts (restarted work cost real simulated time and is
// counted).
type Metrics struct {
	// Supersteps executed across all attempts; Restarts the number of
	// crash-triggered re-runs from superstep 0.
	Supersteps int
	Restarts   int
	// Vertices counts vertex Compute invocations summed over
	// supersteps; HaltedVotes the subset that voted to halt.
	Vertices    int64
	HaltedVotes int64
	// Messages counts sends before sender-side combining;
	// CombinedMessages after (equal when no combiner).
	Messages         int64
	CombinedMessages int64
	// MessageBytes is the wire size of all delivered messages;
	// MessageNetworkBytes the subset that crossed a node boundary, and
	// MessageCrossRackBytes the subset of that which crossed the core
	// switch.
	MessageBytes          int64
	MessageNetworkBytes   int64
	MessageCrossRackBytes int64
	// ModelBytes is model-distribution traffic to vertex home nodes.
	ModelBytes int64
	// CorruptResends counts payload transfers that arrived with a bad
	// checksum under the registered corruption plan and were re-sent;
	// CorruptResendBytes the traffic the corrupt arrivals carried (also
	// folded into the paying phase's byte counter).
	CorruptResends     int
	CorruptResendBytes int64
	// Phase breakdown of Duration.
	ComputePhase simtime.Duration
	MessagePhase simtime.Duration
	BarrierPhase simtime.Duration
	ModelPhase   simtime.Duration
	Duration     simtime.Duration
}

// Fold maps BSP metrics onto the mapred metrics schema so both backends
// feed the same accounting downstream: compute→map phase,
// messages→shuffle phase (and shuffle byte counters), barrier→overhead
// phase, model→model. Local runs fold like mapred local jobs.
func (m Metrics) Fold(local bool) mapred.Metrics {
	out := mapred.Metrics{Duration: m.Duration}
	if local {
		out.LocalJobs = 1
		out.LocalRecords = m.Vertices
		out.MapPhase = m.ComputePhase
		return out
	}
	out.Jobs = 1
	out.MapPhase = m.ComputePhase
	out.ShufflePhase = m.MessagePhase
	out.OverheadPhase = m.BarrierPhase
	out.ModelPhase = m.ModelPhase
	out.ModelBytes = m.ModelBytes
	out.MapOutputRecords = m.Messages
	out.ShuffleRecords = m.CombinedMessages
	out.ShuffleBytes = m.MessageBytes
	out.ShuffleNetworkBytes = m.MessageNetworkBytes
	out.ShuffleCrossRackBytes = m.MessageCrossRackBytes
	out.CorruptRetries = m.CorruptResends
	out.CorruptRetryBytes = m.CorruptResendBytes
	return out
}

// RunOptions configures one Engine.Run.
type RunOptions struct {
	// Name labels errors, trace spans and loop-cache accounting.
	Name string
	// At is the simulated start time.
	At simtime.Time
	// Local switches to in-memory pricing (PIC best-effort local
	// solves): compute is scaled by LocalComputeFactor and messages,
	// barriers and model distribution are free and unpriced, exactly
	// as mapred.RunLocal skips network and overhead. Failure handling
	// is the caller's concern in local mode (the PIC driver already
	// accounts for crashes of whole best-effort groups).
	Local bool
	// Workers bounds harness parallelism for vertex compute; <=0 means
	// GOMAXPROCS. Results are byte-identical for any setting.
	Workers int
	// Model, if non-nil, is distributed from ModelHome to every vertex
	// home before superstep 0 and priced as model phase traffic.
	// PartitionedModel ships each home a 1/nodes share instead of the
	// full model (the job reads only its partition's slice).
	Model            *model.Model
	ModelHome        int
	PartitionedModel bool
	// Family, if set, records loop-aware delta accounting for the
	// distributed model (what a delta-shipping transport would have
	// moved). Pure accounting: BSP always prices the full
	// distribution, exactly as the mapred engine executes full
	// distribution and books the delta separately.
	Family *mapred.JobFamily
	// MaxSupersteps bounds one attempt; 0 means DefaultMaxSupersteps.
	MaxSupersteps int
}

// Result is one completed run.
type Result struct {
	// Program is the instance (from the final attempt) whose state
	// reflects the completed computation — callers downcast to
	// retrieve outputs or call Modeler.
	Program Program
	// Homes[i] is the node that hosted Vertices()[i] in the final
	// attempt, after any re-homing off dead nodes.
	Homes []int
	// Supersteps mirrors Metrics.Supersteps.
	Supersteps int
	Metrics    Metrics
	// Spans are superstep/barrier trace events from framework runs, in
	// time order, with Lane, ID and Parent unset — the caller stamps
	// and records them under its own job span.
	Spans []trace.Event
	// End is the simulated completion time.
	End simtime.Time
}

// Engine executes BSP programs on a simulated cluster view. It is
// stateless between runs apart from the cost model; one engine may be
// shared across sequential runs on the same view.
type Engine struct {
	cluster *simcluster.Cluster
	cost    CostModel

	// IntegrityChecks enables checksum verification of model and
	// message payloads against the cluster's registered corruption
	// plan: a corrupt arrival is re-sent (bounded) instead of silently
	// consumed. Barrier tokens are tiny control traffic and are not
	// checked. Off on a bare Engine; core.Runtime turns it on.
	IntegrityChecks bool
}

// NewEngine returns an engine over the cluster view with the default
// derived cost model.
func NewEngine(c *simcluster.Cluster) *Engine {
	return &Engine{cluster: c, cost: DefaultCostModel()}
}

// SetCostModel replaces the cost model. It panics on an invalid model,
// mirroring config validation elsewhere: a bad cost model is a
// programming error, not a runtime condition.
func (e *Engine) SetCostModel(c CostModel) {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	e.cost = c
}

// Cluster returns the engine's cluster view.
func (e *Engine) Cluster() *simcluster.Cluster { return e.cluster }

// Cost returns the active cost model.
func (e *Engine) Cost() CostModel { return e.cost }

// corruptResendCap bounds how many corrupt arrivals of one payload
// transfer are re-sent before the superstep fails with a typed
// *simnet.TransferError (kind corrupt).
const corruptResendCap = 8

// chargeVerified prices and records flows at time at; when integrity
// checks are on and the cluster scripts bit-error windows, an arrival
// that fails checksum verification is re-sent immediately (re-priced
// at the advanced clock, which re-rolls the window) up to
// corruptResendCap times. It returns the total elapsed time and the
// bytes the corrupt arrivals carried; netBytes is the network traffic
// of one attempt. With no corruption in play this is exactly
// TransferTimeAt + Record.
func (e *Engine) chargeVerified(flows []simnet.Flow, at simtime.Time, netBytes int64, m *Metrics) (simtime.Duration, int64, error) {
	fab := e.cluster.Fabric()
	cplan := e.cluster.CorruptionPlan()
	check := e.IntegrityChecks && cplan.HasTransferEvents()
	var total simtime.Duration
	var resent int64
	for attempt := 0; ; attempt++ {
		now := at + total
		d, err := fab.TransferTimeAt(flows, now)
		if err != nil {
			return 0, 0, err
		}
		if check {
			if src, dst, hit := corruptFlowAt(cplan, flows, now); hit {
				if attempt >= corruptResendCap {
					return 0, 0, &simnet.TransferError{Kind: simnet.TransferCorrupt, Src: src, Dst: dst, At: now}
				}
				// The damaged payload crossed the fabric whole and
				// crosses again.
				fab.Record(flows)
				total += d
				resent += netBytes
				m.CorruptResends++
				m.CorruptResendBytes += netBytes
				continue
			}
		}
		fab.Record(flows)
		return total + d, resent, nil
	}
}

// corruptFlowAt asks the corruption plan whether any network flow is
// hit by an active bit-error window at time at, returning the first
// offending flow.
func corruptFlowAt(p *corrupt.Plan, flows []simnet.Flow, at simtime.Time) (src, dst int, hit bool) {
	for _, fl := range flows {
		if fl.Src == fl.Dst || fl.Bytes == 0 {
			continue
		}
		if _, h := p.TransferHit(fl.Src, fl.Dst, at); h {
			return fl.Src, fl.Dst, true
		}
	}
	return 0, 0, false
}

// Run executes one BSP program to global halt. build constructs a
// fresh program instance; it is re-invoked after a crash-triggered
// restart so the rebuilt program starts from the iteration's input
// state (BSP has no mid-run task rescheduling — the lockstep barrier
// means a lost node invalidates the attempt, so the engine re-runs the
// program on the surviving nodes while the clock keeps the time the
// lost attempt cost). Network faults surface as *simnet.TransferError
// (wrapped), which the core IC stepper already knows how to wait out.
func (e *Engine) Run(build func() (Program, error), opt *RunOptions) (*Result, error) {
	o := RunOptions{}
	if opt != nil {
		o = *opt
	}
	if o.Name == "" {
		o.Name = "bsp"
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = DefaultMaxSupersteps
	}
	res := &Result{}
	at := o.At
	for {
		prog, err := build()
		if err != nil {
			return nil, fmt.Errorf("bsp: %s: build program: %w", o.Name, err)
		}
		end, restart, err := e.runAttempt(prog, &o, at, res)
		if err != nil {
			return nil, err
		}
		if restart {
			res.Metrics.Restarts++
			if res.Metrics.Restarts > maxRestarts {
				return nil, fmt.Errorf("bsp: %s: gave up after %d crash restarts", o.Name, maxRestarts)
			}
			at = end
			continue
		}
		res.Program = prog
		res.End = end
		res.Supersteps = res.Metrics.Supersteps
		res.Metrics.Duration = end - o.At
		return res, nil
	}
}

type outMsg struct {
	to  string
	tag string
	val writable.Writable
}

// sendBuf is the per-vertex Sender; each compute worker writes only its
// own vertex's buffer, so no locking is needed.
type sendBuf struct {
	msgs []outMsg
}

func (b *sendBuf) Send(to, tag string, v writable.Writable) {
	b.msgs = append(b.msgs, outMsg{to: to, tag: tag, val: v})
}

// wireMsg is a (possibly combined) message annotated with its routing.
type wireMsg struct {
	srcNode int
	dst     int // destination vertex index
	tag     string
	val     writable.Writable
	size    int64
}

// runAttempt executes one attempt from superstep 0. It returns the
// simulated end time, whether a node crash invalidated the attempt
// (restart), and any hard error.
func (e *Engine) runAttempt(prog Program, o *RunOptions, start simtime.Time, res *Result) (simtime.Time, bool, error) {
	m := &res.Metrics
	at := start
	verts := prog.Vertices()
	n := len(verts)
	idx := make(map[string]int, n)
	for i, v := range verts {
		if _, dup := idx[v.ID]; dup {
			return at, false, fmt.Errorf("bsp: %s: duplicate vertex id %q", o.Name, v.ID)
		}
		idx[v.ID] = i
	}

	// Resolve vertex homes against the failure plan: vertices on dead
	// (or unassigned) homes are dealt round-robin over live nodes in
	// vertex order — deterministic, and the same rule mapred uses to
	// re-home orphaned splits.
	var plan *simcluster.FailurePlan
	var dead map[int]bool
	if !o.Local {
		plan = e.cluster.FailurePlan()
		if plan != nil {
			dead = plan.DeadAt(at)
		}
	}
	var live []int
	for _, nd := range e.cluster.Nodes() {
		if !dead[nd] {
			live = append(live, nd)
		}
	}
	if len(live) == 0 {
		return at, false, fmt.Errorf("bsp: %s: no live nodes", o.Name)
	}
	home := make([]int, n)
	rehomed := 0
	for i, v := range verts {
		h := v.Home
		if h < 0 || !e.cluster.Contains(h) || dead[h] {
			h = live[rehomed%len(live)]
			rehomed++
		}
		home[i] = h
	}
	res.Homes = home
	if n == 0 {
		return at, false, nil
	}

	fab := e.cluster.Fabric()

	// Model distribution: the full (or partitioned share of the) model
	// travels from its home to every vertex home before superstep 0.
	// Delta shipping stays pure accounting via the job family, exactly
	// as in mapred.
	if o.Model != nil && !o.Local {
		homeSet := make(map[int]bool, len(live))
		for _, h := range home {
			homeSet[h] = true
		}
		dsts := make([]int, 0, len(homeSet))
		for nd := range homeSet {
			dsts = append(dsts, nd)
		}
		sort.Ints(dsts)
		per := o.Model.Size()
		if o.PartitionedModel && len(dsts) > 0 {
			per /= int64(len(dsts))
		}
		var flows []simnet.Flow
		var moved int64
		for _, nd := range dsts {
			if nd == o.ModelHome || per == 0 {
				continue
			}
			flows = append(flows, simnet.Flow{Src: o.ModelHome, Dst: nd, Bytes: per})
			moved += per
		}
		if len(flows) > 0 {
			d, resent, err := e.chargeVerified(flows, at, moved, m)
			if err != nil {
				return at, false, fmt.Errorf("bsp: %s: model distribution: %w", o.Name, err)
			}
			m.ModelPhase += d
			m.ModelBytes += moved + resent
			at += d
		}
		if o.Family != nil {
			delta := o.Family.ShippedModelBytes(o.Name, o.Model)
			o.Family.NoteWarmIteration(delta, 0)
		}
	}

	var comb Combiner
	if cp, ok := prog.(CombinerProgram); ok {
		comb = cp.Combiner()
	}
	coster, hasCoster := prog.(VertexCoster)

	cfg := e.cluster.Config()
	halted := make([]bool, n)
	inbox := make([][]Message, n)
	outs := make([]sendBuf, n)
	halts := make([]bool, n)
	errs := make([]error, n)
	active := make([]int, 0, n)

	for step := 0; ; step++ {
		active = active[:0]
		for i := range verts {
			if !halted[i] || len(inbox[i]) > 0 {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		if step >= o.MaxSupersteps {
			return at, false, fmt.Errorf("bsp: %s: no global halt within %d supersteps", o.Name, o.MaxSupersteps)
		}
		stepStart := at

		// Compute: concurrent over distinct vertices; per-vertex send
		// buffers keep output independent of worker count.
		for _, i := range active {
			outs[i].msgs = outs[i].msgs[:0]
		}
		parallelFor(len(active), o.Workers, func(k int) {
			i := active[k]
			halts[i], errs[i] = prog.Compute(step, verts[i].ID, inbox[i], &outs[i])
		})
		for _, i := range active {
			if errs[i] != nil {
				return at, false, fmt.Errorf("bsp: %s: superstep %d vertex %s: %w", o.Name, step, verts[i].ID, errs[i])
			}
		}

		// Price compute: node totals pinned to their homes (BSP cannot
		// steal work from a vertex's node), scheduled on map slots.
		nodeCost := make(map[int]float64)
		var nodes []int
		for _, i := range active {
			var c float64
			if hasCoster {
				c = coster.VertexCost(step, verts[i].ID)
			} else {
				var sent int64
				for _, om := range outs[i].msgs {
					sent += messageSize(om.to, om.tag, om.val)
				}
				c = e.cost.ComputePerVertex +
					e.cost.ComputePerMessage*float64(len(inbox[i])) +
					e.cost.EmitPerByte*float64(sent)
			}
			if o.Local {
				c *= e.cost.LocalComputeFactor
			}
			if _, ok := nodeCost[home[i]]; !ok {
				nodes = append(nodes, home[i])
			}
			nodeCost[home[i]] += c
			if halts[i] {
				m.HaltedVotes++
			}
		}
		sort.Ints(nodes)
		tasks := make([]simcluster.Task, len(nodes))
		for t, nd := range nodes {
			tasks[t] = simcluster.Task{Cost: nodeCost[nd], Preferred: nd}
		}
		_, makespan := e.cluster.Schedule(tasks, cfg.MapSlotsPerNode)
		m.ComputePhase += makespan
		m.Vertices += int64(len(active))
		at += makespan

		// Gather sends in global vertex order, combining sender-side
		// per (source node, destination, tag).
		var wire []wireMsg
		type ckey struct {
			srcNode int
			dst     int
			tag     string
		}
		var byKey map[ckey]int
		if comb != nil {
			byKey = make(map[ckey]int)
		}
		totalSends := 0
		for _, i := range active {
			for _, om := range outs[i].msgs {
				j, ok := idx[om.to]
				if !ok {
					return at, false, fmt.Errorf("bsp: %s: superstep %d vertex %s: send to unknown vertex %q", o.Name, step, verts[i].ID, om.to)
				}
				totalSends++
				if comb != nil {
					k := ckey{home[i], j, om.tag}
					if w, dup := byKey[k]; dup {
						wire[w].val = comb.Combine(wire[w].val, om.val)
						continue
					}
					byKey[k] = len(wire)
				}
				wire = append(wire, wireMsg{srcNode: home[i], dst: j, tag: om.tag, val: om.val})
			}
		}
		m.Messages += int64(totalSends)
		m.CombinedMessages += int64(len(wire))

		// Deliver into next-superstep inboxes and account wire sizes.
		nextInbox := make([][]Message, n)
		var stepBytes int64
		for w := range wire {
			wm := &wire[w]
			wm.size = messageSize(verts[wm.dst].ID, wm.tag, wm.val)
			stepBytes += wm.size
			nextInbox[wm.dst] = append(nextInbox[wm.dst], Message{Tag: wm.tag, Value: wm.val})
		}
		m.MessageBytes += stepBytes

		// Price message traffic: one flow per (source node, destination
		// node) link, first-use order — same aggregation a mapred
		// shuffle uses.
		var stepNet int64
		if !o.Local && len(wire) > 0 {
			type link struct{ s, d int }
			acc := make(map[link]int64)
			var order []link
			for w := range wire {
				dn := home[wire[w].dst]
				if wire[w].srcNode == dn {
					continue
				}
				l := link{wire[w].srcNode, dn}
				if _, ok := acc[l]; !ok {
					order = append(order, l)
				}
				acc[l] += wire[w].size
			}
			if len(order) > 0 {
				flows := make([]simnet.Flow, 0, len(order))
				for _, l := range order {
					flows = append(flows, simnet.Flow{Src: l.s, Dst: l.d, Bytes: acc[l]})
					stepNet += acc[l]
				}
				before := fab.Counters()
				d, resent, err := e.chargeVerified(flows, at, stepNet, m)
				if err != nil {
					return at, false, fmt.Errorf("bsp: %s: superstep %d messages: %w", o.Name, step, err)
				}
				m.MessagePhase += d
				m.MessageNetworkBytes += stepNet + resent
				m.MessageCrossRackBytes += fab.Counters().CrossRack - before.CrossRack
				at += d
			}
		}

		if !o.Local {
			res.Spans = append(res.Spans, trace.Event{
				Kind:  trace.KindSuperstep,
				Name:  fmt.Sprintf("superstep %d", step),
				Start: stepStart,
				End:   at,
				Bytes: stepNet,
			})
		}

		// Global barrier: every participating node ships a token to the
		// coordinator (lowest live node) and receives the release, plus
		// a fixed coordination overhead. Local runs barrier in memory
		// for free, as mapred local jobs skip overhead.
		if !o.Local {
			bStart := at
			coord := live[0]
			var up, down []simnet.Flow
			for _, nd := range nodes {
				if nd == coord {
					continue
				}
				up = append(up, simnet.Flow{Src: nd, Dst: coord, Bytes: e.cost.BarrierTokenBytes})
				down = append(down, simnet.Flow{Src: coord, Dst: nd, Bytes: e.cost.BarrierTokenBytes})
			}
			if len(up) > 0 {
				d1, err := fab.TransferTimeAt(up, at)
				if err != nil {
					return at, false, fmt.Errorf("bsp: %s: superstep %d barrier: %w", o.Name, step, err)
				}
				fab.Record(up)
				d2, err := fab.TransferTimeAt(down, at+d1)
				if err != nil {
					return at, false, fmt.Errorf("bsp: %s: superstep %d barrier release: %w", o.Name, step, err)
				}
				fab.Record(down)
				at += d1 + d2
			}
			at += e.cost.BarrierOverhead
			m.BarrierPhase += at - bStart
			res.Spans = append(res.Spans, trace.Event{
				Kind:  trace.KindBarrier,
				Name:  fmt.Sprintf("barrier %d", step),
				Start: bStart,
				End:   at,
			})
		}

		m.Supersteps++

		// Crash check at the barrier: a changed dead set invalidates
		// lockstep state held on the lost nodes, so the attempt
		// restarts on the survivors.
		if plan != nil {
			nowDead := plan.DeadAt(at)
			if deadChanged(dead, nowDead) {
				res.Spans = append(res.Spans, trace.Event{
					Kind:  trace.KindSuperstep,
					Name:  "restart: node crash at barrier",
					Start: at,
					End:   at,
				})
				return at, true, nil
			}
		}

		for _, i := range active {
			halted[i] = halts[i]
		}
		inbox = nextInbox
	}
	return at, false, nil
}

func deadChanged(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return true
	}
	for nd := range b {
		if !a[nd] {
			return true
		}
	}
	return false
}

// parallelFor runs fn(0..n-1) on up to workers goroutines in contiguous
// chunks. Output must not depend on execution order; determinism is the
// caller's responsibility (each index writes disjoint state).
func parallelFor(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Package bsp is a Bulk Synchronous Parallel (Pregel-style) execution
// engine priced on the same simulated cluster fabric as the mapred
// engine. A computation proceeds in supersteps: every active vertex
// runs Compute, may send messages to other vertices, and votes to halt;
// messages are delivered at the start of the next superstep after a
// global barrier. The engine prices three things per superstep on
// simcluster/simnet exactly as mapred prices its phases:
//
//   - compute: per-node cost totals scheduled on the node's slots
//     (locality-pinned — BSP work cannot be stolen from a vertex's home),
//   - messages: aggregated per (source node, destination node) flows
//     priced through Fabric.TransferTimeAt, riding the link/rack/core
//     cost model and any active NetworkPlan overlay,
//   - barrier: token flows from every participating node to a
//     coordinator and back, plus a fixed coordination overhead.
//
// The engine is deterministic: results, metrics and trace spans are
// byte-identical across Workers settings and repeated runs. Compute is
// invoked concurrently on distinct vertices, so a Program must not
// share mutable state between vertices without its own synchronization;
// per-vertex sends are merged in global vertex order regardless of
// worker count.
package bsp

import (
	"repro/internal/model"
	"repro/internal/writable"
)

// VertexInfo names one vertex and the node that owns it. Home must be a
// node id of the engine's cluster view, or -1 to let the engine assign
// one (round-robin over live nodes). Dead homes are re-assigned
// deterministically at run start.
type VertexInfo struct {
	ID   string
	Home int
}

// Message is one delivered message. Tag carries program-defined routing
// or grouping information (the mapred adapter uses it for record keys).
type Message struct {
	Tag   string
	Value writable.Writable
}

// Sender accepts messages during Compute. Messages become visible to
// their destination vertex in the next superstep. Send may only be
// called from inside Compute, and only with destinations that are
// vertices of the running program.
type Sender interface {
	Send(to, tag string, v writable.Writable)
}

// Program is a vertex computation. Vertices is called once per run
// attempt and must return a stable, duplicate-free vertex set. Compute
// runs for every active vertex each superstep: a vertex is active in
// superstep 0, and thereafter when it has incoming messages or did not
// vote to halt. Returning halt=true votes to halt; an incoming message
// reactivates the vertex. The run terminates when every vertex has
// halted and no messages are in flight.
//
// Compute must be safe to call concurrently on distinct vertices.
type Program interface {
	Vertices() []VertexInfo
	Compute(step int, id string, msgs []Message, s Sender) (halt bool, err error)
}

// Combiner merges two message values bound for the same destination
// vertex under the same tag. The engine applies it sender-side, per
// source node, in deterministic send order — mirroring Pregel's
// combiner, which cuts network bytes without changing semantics for
// commutative/associative reductions.
type Combiner interface {
	Combine(a, b writable.Writable) writable.Writable
}

// CombinerProgram is a Program that supplies a Combiner. A nil result
// disables combining.
type CombinerProgram interface {
	Program
	Combiner() Combiner
}

// Modeler is implemented by vertex programs that can assemble the next
// iteration's model after the run terminates. prev is the model the
// program was built from; the result must be a fresh model (prev is not
// mutated). The core runtime requires this for native vertex apps.
type Modeler interface {
	Model(prev *model.Model) (*model.Model, error)
}

// VertexCoster lets a program take full control of compute pricing: if
// implemented, VertexCost is consulted after Compute returns for that
// vertex and its result is the vertex's entire compute cost for the
// superstep, replacing the engine's default
//
//	ComputePerVertex + ComputePerMessage·len(msgs) + EmitPerByte·sentBytes
//
// formula. The mapred adapter uses this to reproduce map/reduce task
// cost accounting.
type VertexCoster interface {
	VertexCost(step int, id string) float64
}

// uvarintLen mirrors the wire framing used by writable and model for
// message size accounting.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// messageSize is the on-wire size of one message: destination id and
// tag (uvarint length-prefixed) plus the encoded value.
func messageSize(to, tag string, v writable.Writable) int64 {
	return int64(uvarintLen(uint64(len(to))) + len(to) +
		uvarintLen(uint64(len(tag))) + len(tag) +
		writable.Size(v))
}

package bsp

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/trace"
	"repro/internal/writable"
)

func testCluster() *simcluster.Cluster {
	return simcluster.New(simcluster.Config{
		Nodes:              4,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
}

// ringProgram passes accumulating float tokens around a ring of n
// vertices for laps supersteps, then every vertex halts. recv[i] is the
// deterministic sum of everything vertex i consumed — the program's
// observable output for identity checks across workers, repeats and
// crash restarts.
type ringProgram struct {
	n, laps int
	homes   []int
	recv    []float64
}

func newRing(n, laps int, homes []int) *ringProgram {
	return &ringProgram{n: n, laps: laps, homes: homes, recv: make([]float64, n)}
}

func ringID(i int) string { return "v" + strconv.Itoa(i) }

func (p *ringProgram) Vertices() []VertexInfo {
	infos := make([]VertexInfo, p.n)
	for i := range infos {
		h := -1
		if p.homes != nil {
			h = p.homes[i]
		}
		infos[i] = VertexInfo{ID: ringID(i), Home: h}
	}
	return infos
}

func (p *ringProgram) Compute(step int, id string, msgs []Message, s Sender) (bool, error) {
	i, err := strconv.Atoi(id[1:])
	if err != nil {
		return false, err
	}
	sum := 0.0
	for _, m := range msgs {
		sum += float64(m.Value.(writable.Float64))
	}
	p.recv[i] += sum
	if step < p.laps {
		s.Send(ringID((i+1)%p.n), "", writable.Float64(sum+float64(i)+1))
		return false, nil
	}
	return true, nil
}

// haltProgram: every vertex halts immediately without sending.
type haltProgram struct{ n int }

func (p *haltProgram) Vertices() []VertexInfo {
	infos := make([]VertexInfo, p.n)
	for i := range infos {
		infos[i] = VertexInfo{ID: ringID(i), Home: -1}
	}
	return infos
}

func (p *haltProgram) Compute(step int, id string, msgs []Message, s Sender) (bool, error) {
	return true, nil
}

func TestRunTerminatesWhenAllHalt(t *testing.T) {
	e := NewEngine(testCluster())
	res, err := e.Run(func() (Program, error) { return &haltProgram{n: 6}, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Fatalf("Supersteps = %d, want 1", res.Supersteps)
	}
	if res.Metrics.Vertices != 6 || res.Metrics.HaltedVotes != 6 {
		t.Fatalf("Vertices/HaltedVotes = %d/%d, want 6/6", res.Metrics.Vertices, res.Metrics.HaltedVotes)
	}
	if res.Metrics.Messages != 0 || res.Metrics.Restarts != 0 {
		t.Fatalf("unexpected messages (%d) or restarts (%d)", res.Metrics.Messages, res.Metrics.Restarts)
	}
}

// reactivateProgram: "a" messages the already-halted "b" in superstep 0;
// the message must reactivate "b" for superstep 1.
type reactivateProgram struct {
	bGot float64
}

func (p *reactivateProgram) Vertices() []VertexInfo {
	return []VertexInfo{{ID: "a", Home: 0}, {ID: "b", Home: 1}}
}

func (p *reactivateProgram) Compute(step int, id string, msgs []Message, s Sender) (bool, error) {
	if step == 0 && id == "a" {
		s.Send("b", "", writable.Float64(42))
	}
	for _, m := range msgs {
		p.bGot += float64(m.Value.(writable.Float64))
	}
	return true, nil // everyone votes to halt every superstep
}

func TestMessageReactivatesHaltedVertex(t *testing.T) {
	e := NewEngine(testCluster())
	prog := &reactivateProgram{}
	res, err := e.Run(func() (Program, error) { return prog, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 2 {
		t.Fatalf("Supersteps = %d, want 2 (halted vertex must wake on message)", res.Supersteps)
	}
	if prog.bGot != 42 {
		t.Fatalf("b received %g, want 42", prog.bGot)
	}
	// Superstep 1 computes only the reactivated vertex.
	if res.Metrics.Vertices != 3 {
		t.Fatalf("Vertices = %d, want 3 (2 in step 0, 1 in step 1)", res.Metrics.Vertices)
	}
}

// fanProgram: nSend sender vertices each send Float64(1) to a single
// sink in superstep 0.
type fanProgram struct {
	nSend   int
	combine bool
	sinkSum float64
	sinkN   int
}

func (p *fanProgram) Vertices() []VertexInfo {
	infos := []VertexInfo{{ID: "sink", Home: 0}}
	for i := 0; i < p.nSend; i++ {
		infos = append(infos, VertexInfo{ID: "s" + strconv.Itoa(i), Home: i % 4})
	}
	return infos
}

func (p *fanProgram) Compute(step int, id string, msgs []Message, s Sender) (bool, error) {
	if step == 0 && id != "sink" {
		s.Send("sink", "acc", writable.Float64(1))
	}
	for _, m := range msgs {
		p.sinkSum += float64(m.Value.(writable.Float64))
		p.sinkN++
	}
	return true, nil
}

type sumCombiner struct{}

func (sumCombiner) Combine(a, b writable.Writable) writable.Writable {
	return a.(writable.Float64) + b.(writable.Float64)
}

// combinedFan adds a Combiner to fanProgram.
type combinedFan struct{ fanProgram }

func (p *combinedFan) Combiner() Combiner { return sumCombiner{} }

func TestCombinerMergesPerSourceNode(t *testing.T) {
	// 8 senders over 4 nodes, without and with a sum combiner. The
	// combiner must collapse each node's sends into one wire message and
	// preserve the sum.
	plainProg := &fanProgram{nSend: 8}
	plain, err := NewEngine(testCluster()).Run(func() (Program, error) { return plainProg, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	combProg := &combinedFan{fanProgram{nSend: 8}}
	comb, err := NewEngine(testCluster()).Run(func() (Program, error) { return combProg, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics.Messages != 8 || plain.Metrics.CombinedMessages != 8 {
		t.Fatalf("plain Messages/Combined = %d/%d, want 8/8",
			plain.Metrics.Messages, plain.Metrics.CombinedMessages)
	}
	if comb.Metrics.Messages != 8 || comb.Metrics.CombinedMessages != 4 {
		t.Fatalf("combined Messages/Combined = %d/%d, want 8/4 (one per source node)",
			comb.Metrics.Messages, comb.Metrics.CombinedMessages)
	}
	if plainProg.sinkSum != 8 || combProg.sinkSum != 8 {
		t.Fatalf("sink sums %g (plain) / %g (combined), want 8 for both",
			plainProg.sinkSum, combProg.sinkSum)
	}
	if combProg.sinkN != 4 {
		t.Fatalf("combined sink received %d messages, want 4", combProg.sinkN)
	}
	if comb.Metrics.MessageBytes >= plain.Metrics.MessageBytes {
		t.Fatalf("combining did not cut wire bytes: %d >= %d",
			comb.Metrics.MessageBytes, plain.Metrics.MessageBytes)
	}
}

// runRing executes a fresh ring run on a fresh cluster and returns the
// result plus the observable output.
func runRing(t *testing.T, workers int) (*Result, []float64) {
	t.Helper()
	e := NewEngine(testCluster())
	var prog *ringProgram
	res, err := e.Run(func() (Program, error) {
		prog = newRing(9, 5, []int{0, 1, 2, 3, 0, 1, 2, 3, 0})
		return prog, nil
	}, &RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res, prog.recv
}

func TestDeterminismAcrossWorkersAndRepeats(t *testing.T) {
	base, baseRecv := runRing(t, 1)
	if base.Supersteps != 6 {
		t.Fatalf("Supersteps = %d, want 6 (laps+1)", base.Supersteps)
	}
	for name, workers := range map[string]int{"workers=8": 8, "repeat": 1, "workers=3": 3} {
		got, gotRecv := runRing(t, workers)
		if !reflect.DeepEqual(got.Metrics, base.Metrics) {
			t.Errorf("%s: metrics diverge:\n got %+v\nwant %+v", name, got.Metrics, base.Metrics)
		}
		if got.End != base.End {
			t.Errorf("%s: end time %v != %v", name, got.End, base.End)
		}
		if !reflect.DeepEqual(got.Spans, base.Spans) {
			t.Errorf("%s: trace spans diverge", name)
		}
		if !reflect.DeepEqual(got.Homes, base.Homes) {
			t.Errorf("%s: vertex homes diverge", name)
		}
		if !reflect.DeepEqual(gotRecv, baseRecv) {
			t.Errorf("%s: program output diverges: %v vs %v", name, gotRecv, baseRecv)
		}
	}
}

func TestCrashRestartsAttemptAtBarrier(t *testing.T) {
	clean, cleanRecv := runRing(t, 1)

	c := testCluster()
	// Node 3 dies just after the run starts: the first barrier observes
	// the changed dead set and restarts the attempt on the survivors.
	c.SetFailurePlan(&simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 3, Time: 1e-12},
	}})
	e := NewEngine(c)
	var prog *ringProgram
	res, err := e.Run(func() (Program, error) {
		prog = newRing(9, 5, []int{0, 1, 2, 3, 0, 1, 2, 3, 0})
		return prog, nil
	}, &RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Metrics.Restarts)
	}
	for i, h := range res.Homes {
		if h == 3 {
			t.Fatalf("vertex %d still homed on dead node 3", i)
		}
	}
	if !reflect.DeepEqual(prog.recv, cleanRecv) {
		t.Fatalf("post-restart output diverges from clean run:\n got %v\nwant %v", prog.recv, cleanRecv)
	}
	if res.End <= clean.End {
		t.Fatalf("restarted run end %v not later than clean %v (lost attempt must cost time)", res.End, clean.End)
	}
	var restartSpan bool
	for _, ev := range res.Spans {
		if strings.Contains(ev.Name, "restart") {
			restartSpan = true
		}
	}
	if !restartSpan {
		t.Fatal("no restart trace span recorded")
	}
}

func TestDeadHomesRehomeDeterministically(t *testing.T) {
	c := testCluster()
	c.SetFailurePlan(&simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 2, Time: 0},
	}})
	e := NewEngine(c)
	var prog *ringProgram
	res, err := e.Run(func() (Program, error) {
		prog = newRing(4, 2, []int{2, 2, 1, -1})
		return prog, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dead (node 2) and unassigned (-1) homes deal round-robin over the
	// live nodes {0, 1, 3} in vertex order.
	want := []int{0, 1, 1, 3}
	if !reflect.DeepEqual(res.Homes, want) {
		t.Fatalf("Homes = %v, want %v", res.Homes, want)
	}
	if prog.recv == nil {
		t.Fatal("program did not run")
	}
}

func TestDuplicateVertexIDRejected(t *testing.T) {
	e := NewEngine(testCluster())
	_, err := e.Run(func() (Program, error) {
		p := newRing(2, 1, nil)
		return &dupProgram{p}, nil
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "duplicate vertex id") {
		t.Fatalf("err = %v, want duplicate vertex id error", err)
	}
}

type dupProgram struct{ *ringProgram }

func (p *dupProgram) Vertices() []VertexInfo {
	infos := p.ringProgram.Vertices()
	infos[1].ID = infos[0].ID
	return infos
}

// strayProgram sends to a vertex that does not exist.
type strayProgram struct{}

func (p *strayProgram) Vertices() []VertexInfo {
	return []VertexInfo{{ID: "only", Home: 0}}
}

func (p *strayProgram) Compute(step int, id string, msgs []Message, s Sender) (bool, error) {
	s.Send("ghost", "", writable.Float64(1))
	return true, nil
}

func TestSendToUnknownVertexRejected(t *testing.T) {
	e := NewEngine(testCluster())
	_, err := e.Run(func() (Program, error) { return &strayProgram{}, nil }, nil)
	if err == nil || !strings.Contains(err.Error(), `send to unknown vertex "ghost"`) {
		t.Fatalf("err = %v, want unknown-vertex error", err)
	}
}

func TestComputeErrorNamesVertex(t *testing.T) {
	e := NewEngine(testCluster())
	_, err := e.Run(func() (Program, error) { return &failProgram{}, nil }, nil)
	if err == nil || !strings.Contains(err.Error(), "vertex bad") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want error naming vertex bad", err)
	}
}

type failProgram struct{}

func (p *failProgram) Vertices() []VertexInfo {
	return []VertexInfo{{ID: "ok", Home: 0}, {ID: "bad", Home: 1}}
}

func (p *failProgram) Compute(step int, id string, msgs []Message, s Sender) (bool, error) {
	if id == "bad" {
		return false, fmt.Errorf("boom")
	}
	return true, nil
}

func TestLocalModeSkipsNetworkBarrierAndSpans(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	var prog *ringProgram
	res, err := e.Run(func() (Program, error) {
		prog = newRing(6, 3, []int{0, 1, 2, 3, 0, 1})
		return prog, nil
	}, &RunOptions{Local: true})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.MessagePhase != 0 || m.BarrierPhase != 0 || m.ModelPhase != 0 {
		t.Fatalf("local run priced network phases: %+v", m)
	}
	if m.MessageNetworkBytes != 0 || m.ModelBytes != 0 {
		t.Fatalf("local run moved network bytes: %+v", m)
	}
	if len(res.Spans) != 0 {
		t.Fatalf("local run recorded %d framework spans, want 0", len(res.Spans))
	}
	if got := c.Fabric().Counters(); got.Transfers != 0 {
		t.Fatalf("local run recorded %d fabric transfers, want 0", got.Transfers)
	}
	if m.ComputePhase <= 0 {
		t.Fatal("local run priced no compute")
	}
	folded := m.Fold(true)
	if folded.LocalJobs != 1 || folded.Jobs != 0 {
		t.Fatalf("local fold = %+v, want LocalJobs=1 Jobs=0", folded)
	}
	_ = prog
}

func TestLocalComputeFactorScalesCompute(t *testing.T) {
	run := func(factor float64) Metrics {
		e := NewEngine(testCluster())
		cost := DefaultCostModel()
		cost.LocalComputeFactor = factor
		e.SetCostModel(cost)
		res, err := e.Run(func() (Program, error) {
			return newRing(6, 3, []int{0, 1, 2, 3, 0, 1}), nil
		}, &RunOptions{Local: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	full := run(1.0)
	half := run(0.5)
	if half.ComputePhase <= 0 || full.ComputePhase <= 0 {
		t.Fatal("no compute priced")
	}
	ratio := float64(half.ComputePhase) / float64(full.ComputePhase)
	if ratio < 0.49 || ratio > 0.51 {
		t.Fatalf("LocalComputeFactor 0.5 scaled compute by %g, want 0.5", ratio)
	}
}

func TestBarrierSpansPairSupersteps(t *testing.T) {
	res, _ := runRing(t, 1)
	var steps, barriers int
	for _, ev := range res.Spans {
		switch ev.Kind {
		case trace.KindSuperstep:
			steps++
		case trace.KindBarrier:
			barriers++
		default:
			t.Fatalf("unexpected span kind %v", ev.Kind)
		}
		if ev.Lane != 0 || ev.ID != 0 || ev.Parent != 0 {
			t.Fatalf("engine span %q already stamped: %+v", ev.Name, ev)
		}
	}
	if steps != res.Supersteps || barriers != res.Supersteps {
		t.Fatalf("spans = %d supersteps + %d barriers, want %d of each", steps, barriers, res.Supersteps)
	}
}

// sumJob is a grouped sum job identical in shape to the apps' jobs: the
// mapper buckets each point under one of a few keys, the combiner and
// reducer both sum vectors.
func sumJob(combine bool) *mapred.Job {
	sum := mapred.ReducerFunc(func(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
		acc := values[0].(writable.Vector).Clone()
		for _, v := range values[1:] {
			vec := v.(writable.Vector)
			for i := range acc {
				acc[i] += vec[i]
			}
		}
		emit.Emit(key, acc)
		return nil
	})
	job := &mapred.Job{
		Name: "sum",
		Mapper: mapred.MapperFunc(func(key string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			if len(key)%2 == 0 {
				emit.Emit("even", v)
			} else {
				emit.Emit("odd", v)
			}
			return nil
		}),
		Reducer: sum,
	}
	if combine {
		job.Combiner = sum
	}
	return job
}

func sumInput(c *simcluster.Cluster) *mapred.Input {
	recs := make([]mapred.Record, 24)
	for i := range recs {
		recs[i] = mapred.Record{
			Key:   fmt.Sprintf("p%d", i),
			Value: writable.Vector{float64(i%7) - 3, float64(i%5) * 2},
		}
	}
	return mapred.NewInput(recs, c, 8)
}

func sortedRecords(recs []mapred.Record) []mapred.Record {
	out := append([]mapred.Record(nil), recs...)
	sortRecords(out)
	return out
}

// TestAdapterMatchesMapredOutput runs the same grouped job through the
// mapred engine and through the partition-level BSP adapter and demands
// identical reduce output — the adapter must be a faithful re-execution
// of the job, not an approximation.
func TestAdapterMatchesMapredOutput(t *testing.T) {
	msgs := map[bool]int64{}
	for _, combine := range []bool{false, true} {
		mc := testCluster()
		mrOut, _, err := mapred.NewEngine(mc).Run(sumJob(combine), sumInput(mc), nil)
		if err != nil {
			t.Fatal(err)
		}
		bc := testCluster()
		bspOut, res, err := RunJob(NewEngine(bc), sumJob(combine), sumInput(bc), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedRecords(bspOut.Records), sortedRecords(mrOut.Records)) {
			t.Fatalf("combine=%v: adapter output diverges:\n got %v\nwant %v",
				combine, sortedRecords(bspOut.Records), sortedRecords(mrOut.Records))
		}
		if len(bspOut.ByReducer) != len(mrOut.ByReducer) {
			t.Fatalf("combine=%v: %d reducers via adapter, %d via mapred",
				combine, len(bspOut.ByReducer), len(mrOut.ByReducer))
		}
		// Grouped adapter jobs are exactly two supersteps: map vertices
		// then reduce vertices.
		if res.Supersteps != 2 {
			t.Fatalf("combine=%v: Supersteps = %d, want 2", combine, res.Supersteps)
		}
		msgs[combine] = res.Metrics.Messages
	}
	// The job's combiner runs inside the map vertex (as in the mapred
	// map pipeline), so the combined variant sends fewer messages.
	if msgs[true] >= msgs[false] {
		t.Fatalf("combiner did not cut adapter messages: %d >= %d", msgs[true], msgs[false])
	}
}

// TestAdapterMapOnlyJob: a job with no reducer finishes in one
// superstep with no messages, and its output matches the mapper run
// directly.
func TestAdapterMapOnlyJob(t *testing.T) {
	job := &mapred.Job{
		Name: "scale",
		Mapper: mapred.MapperFunc(func(key string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			vec := v.(writable.Vector).Clone()
			for i := range vec {
				vec[i] *= 2
			}
			emit.Emit(key, vec)
			return nil
		}),
	}
	mc := testCluster()
	mrOut, _, err := mapred.NewEngine(mc).Run(job, sumInput(mc), nil)
	if err != nil {
		t.Fatal(err)
	}
	bc := testCluster()
	bspOut, res, err := RunJob(NewEngine(bc), job, sumInput(bc), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 || res.Metrics.Messages != 0 {
		t.Fatalf("map-only job: %d supersteps, %d messages, want 1 and 0",
			res.Supersteps, res.Metrics.Messages)
	}
	if !reflect.DeepEqual(sortedRecords(bspOut.Records), sortedRecords(mrOut.Records)) {
		t.Fatal("map-only adapter output diverges from mapred")
	}
}

package bsp

import (
	"fmt"

	"repro/internal/mapred"
	"repro/internal/simtime"
)

// CostModel prices BSP execution in the same cost units as
// mapred.CostModel (retired at simcluster.Config.ComputeRate units per
// second per slot). The defaults are derived from the mapred model so
// the two backends price equivalent work equivalently: a vertex update
// costs what a map record costs, consuming a message costs what a
// grouped reduce value costs, and emitted message bytes cost what
// emitted intermediate bytes cost. Only the barrier terms are new —
// BSP replaces the per-job overhead + shuffle of mapred with a
// per-superstep barrier, which is exactly the trade Pace's
// BSP-vs-MapReduce comparison prices.
type CostModel struct {
	// ComputePerVertex is charged for each vertex update (each active
	// vertex Compute call), mirroring MapCostPerRecord.
	ComputePerVertex float64
	// ComputePerByte is charged per input byte a partition-level
	// vertex reads, mirroring MapCostPerByte (used by the mapred
	// adapter; native vertex programs carry their input in messages
	// and the model).
	ComputePerByte float64
	// ComputePerMessage is charged for each delivered message a vertex
	// consumes, mirroring ReduceCostPerValue.
	ComputePerMessage float64
	// EmitPerByte is charged for each message byte a vertex sends
	// (serialization), mirroring EmitCostPerByte.
	EmitPerByte float64
	// BarrierOverhead is the fixed coordination cost of one global
	// barrier, on top of the priced token exchange. A barrier is far
	// cheaper than a full job start/finish: the workers are already
	// resident, so the default is JobOverhead/10.
	BarrierOverhead simtime.Duration
	// BarrierTokenBytes is the size of the per-node barrier token
	// shipped to the coordinator and back each superstep.
	BarrierTokenBytes int64
	// LocalComputeFactor scales compute for in-memory local execution
	// (RunOptions.Local), mirroring mapred's factor: PIC best-effort
	// local solves skip framework per-record overhead on either
	// backend.
	LocalComputeFactor float64
}

// DeriveCost maps a mapred cost model onto BSP pricing. This is the
// only way bench and core construct BSP cost models, so an ablation
// that sweeps the mapred knobs sweeps both backends coherently.
func DeriveCost(c mapred.CostModel) CostModel {
	return CostModel{
		ComputePerVertex:   c.MapCostPerRecord,
		ComputePerByte:     c.MapCostPerByte,
		ComputePerMessage:  c.ReduceCostPerValue,
		EmitPerByte:        c.EmitCostPerByte,
		BarrierOverhead:    c.JobOverhead / 10,
		BarrierTokenBytes:  64,
		LocalComputeFactor: c.LocalComputeFactor,
	}
}

// DefaultCostModel is DeriveCost over mapred's defaults.
func DefaultCostModel() CostModel {
	return DeriveCost(mapred.DefaultCostModel())
}

// Validate reports whether the cost model is usable.
func (c CostModel) Validate() error {
	if c.ComputePerVertex < 0 || c.ComputePerByte < 0 || c.ComputePerMessage < 0 || c.EmitPerByte < 0 {
		return fmt.Errorf("bsp: negative cost rate")
	}
	if c.BarrierOverhead < 0 {
		return fmt.Errorf("bsp: negative BarrierOverhead")
	}
	if c.BarrierTokenBytes < 0 {
		return fmt.Errorf("bsp: negative BarrierTokenBytes")
	}
	if c.LocalComputeFactor <= 0 {
		return fmt.Errorf("bsp: LocalComputeFactor must be positive")
	}
	return nil
}

package bsp

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

// The partition-level adapter runs an unmodified mapred.Job as a BSP
// program: each input split is a "split vertex" that runs the real
// Mapper in superstep 0 and sends each post-combine intermediate record
// as a message (tag = key) to a "reduce vertex", which runs the real
// Reducer in superstep 1. Map-only jobs finish in one superstep with no
// messages. This is how the three apps without native vertex programs
// (kmeans, neuralnet, linsolve) — and framework jobs like the
// distributed merge — execute on the BSP backend: the shuffle becomes a
// message exchange priced on the same fabric, and the job-overhead
// phase becomes barrier time, which is precisely the cost trade Pace's
// BSP-vs-MapReduce comparison measures.

// jobProgram adapts one mapred.Job. It implements VertexCoster to
// reproduce mapred task cost accounting (per-record map cost, per-byte
// input cost, per-value reduce cost, per-byte emit cost).
type jobProgram struct {
	job    *mapred.Job
	in     *mapred.Input
	m      *model.Model
	cost   CostModel
	nSplit int
	nRed   int
	verts  []VertexInfo
	vidx   map[string]int
	redIDs []string
	part   mapred.Partitioner
	outs   [][]mapred.Record
	vcost  []float64
}

func splitVertexID(i int) string  { return "s" + strconv.Itoa(i) }
func reduceVertexID(j int) string { return "r" + strconv.Itoa(j) }

// newJobProgram builds the adapter. numReducers must already be
// resolved (0 means map-only). Reduce vertices carry Home -1 so the
// engine deals them over live nodes — which keeps reducer placement
// crash-aware for free.
func newJobProgram(job *mapred.Job, in *mapred.Input, m *model.Model, cost CostModel, numReducers int) *jobProgram {
	p := &jobProgram{
		job:    job,
		in:     in,
		m:      m,
		cost:   cost,
		nSplit: len(in.Splits),
		nRed:   numReducers,
		part:   job.Partition,
	}
	if p.part == nil {
		p.part = mapred.HashPartition
	}
	p.verts = make([]VertexInfo, 0, p.nSplit+p.nRed)
	p.vidx = make(map[string]int, p.nSplit+p.nRed)
	for i := range in.Splits {
		id := splitVertexID(i)
		p.vidx[id] = len(p.verts)
		p.verts = append(p.verts, VertexInfo{ID: id, Home: in.Splits[i].Home})
	}
	p.redIDs = make([]string, p.nRed)
	for j := 0; j < p.nRed; j++ {
		id := reduceVertexID(j)
		p.redIDs[j] = id
		p.vidx[id] = len(p.verts)
		p.verts = append(p.verts, VertexInfo{ID: id, Home: -1})
	}
	p.outs = make([][]mapred.Record, len(p.verts))
	p.vcost = make([]float64, len(p.verts))
	return p
}

func (p *jobProgram) Vertices() []VertexInfo { return p.verts }

func (p *jobProgram) VertexCost(step int, id string) float64 {
	return p.vcost[p.vidx[id]]
}

func (p *jobProgram) Compute(step int, id string, msgs []Message, s Sender) (bool, error) {
	v := p.vidx[id]
	if v < p.nSplit {
		if step != 0 {
			return true, nil // split vertices only work in superstep 0
		}
		return true, p.computeSplit(v, s)
	}
	if step == 0 {
		return true, nil // reduce vertices wait for messages
	}
	return true, p.computeReduce(v, msgs)
}

func (p *jobProgram) computeSplit(v int, s Sender) error {
	split := &p.in.Splits[v]
	em := &listEmitter{}
	for _, rec := range split.Records {
		if err := p.job.Mapper.Map(rec.Key, rec.Value, p.m, em); err != nil {
			return err
		}
	}
	// Map task cost mirrors mapred: input records + input bytes +
	// pre-combine emitted bytes.
	p.vcost[v] = float64(len(split.Records))*p.cost.ComputePerVertex +
		float64(split.Bytes)*p.cost.ComputePerByte +
		float64(recordBytes(em.recs))*p.cost.EmitPerByte
	if p.nRed == 0 {
		sortRecords(em.recs)
		p.outs[v] = em.recs
		return nil
	}
	buckets := make([][]mapred.Record, p.nRed)
	for _, r := range em.recs {
		j := p.part(r.Key, p.nRed)
		buckets[j] = append(buckets[j], r)
	}
	for j, b := range buckets {
		sortRecords(b)
		if p.job.Combiner != nil {
			cb, err := combineRecords(p.job.Combiner, b, p.m)
			if err != nil {
				return err
			}
			b = cb
		}
		for _, r := range b {
			s.Send(p.redIDs[j], r.Key, r.Value)
		}
	}
	return nil
}

func (p *jobProgram) computeReduce(v int, msgs []Message) error {
	recs := make([]mapred.Record, len(msgs))
	for i, mg := range msgs {
		recs[i] = mapred.Record{Key: mg.Tag, Value: mg.Value}
	}
	sortRecords(recs)
	em := &listEmitter{}
	var values []writable.Writable
	for lo := 0; lo < len(recs); {
		hi := lo + 1
		for hi < len(recs) && recs[hi].Key == recs[lo].Key {
			hi++
		}
		values = values[:0]
		for _, r := range recs[lo:hi] {
			values = append(values, r.Value)
		}
		if err := p.job.Reducer.Reduce(recs[lo].Key, values, p.m, em); err != nil {
			return err
		}
		lo = hi
	}
	p.outs[v] = em.recs
	p.vcost[v] = float64(len(msgs))*p.cost.ComputePerMessage +
		float64(recordBytes(em.recs))*p.cost.EmitPerByte
	return nil
}

// output assembles a mapred.Output from the completed program:
// ByReducer in reducer index order, Records concatenated — the same
// shape the mapred engine returns.
func (p *jobProgram) output(homes []int) *mapred.Output {
	out := &mapred.Output{}
	if p.nRed == 0 {
		for i := 0; i < p.nSplit; i++ {
			out.Records = append(out.Records, p.outs[i]...)
		}
		return out
	}
	out.ByReducer = make([][]mapred.Record, p.nRed)
	out.ReducerNodes = make([]int, p.nRed)
	for j := 0; j < p.nRed; j++ {
		out.ByReducer[j] = p.outs[p.nSplit+j]
		out.ReducerNodes[j] = homes[p.nSplit+j]
		out.Records = append(out.Records, out.ByReducer[j]...)
	}
	return out
}

// RunJob executes a mapred job through the partition-level adapter and
// returns its output in mapred shape plus the BSP run result. The
// job's cost override (Job.Cost) is honored by deriving a BSP cost
// model from it.
func RunJob(e *Engine, job *mapred.Job, in *mapred.Input, m *model.Model, opt *RunOptions) (*mapred.Output, *Result, error) {
	if job.Mapper == nil {
		return nil, nil, fmt.Errorf("bsp: job %q has no mapper", job.Name)
	}
	o := RunOptions{}
	if opt != nil {
		o = *opt
	}
	if o.Name == "" {
		o.Name = job.Name
	}
	o.Model = m
	o.PartitionedModel = job.PartitionedModel
	cost := e.cost
	if job.Cost != nil {
		if err := job.Cost.Validate(); err != nil {
			return nil, nil, fmt.Errorf("bsp: job %q: %w", job.Name, err)
		}
		cost = DeriveCost(*job.Cost)
	}
	numReducers := 0
	if job.Reducer != nil {
		numReducers = job.NumReducers
		if numReducers <= 0 {
			numReducers = e.cluster.ReduceSlots()
		}
	}
	build := func() (Program, error) {
		return newJobProgram(job, in, m, cost, numReducers), nil
	}
	res, err := e.Run(build, &o)
	if err != nil {
		return nil, nil, err
	}
	jp := res.Program.(*jobProgram)
	return jp.output(res.Homes), res, nil
}

// listEmitter collects emissions in order (mapred's is unexported).
type listEmitter struct {
	recs []mapred.Record
}

func (l *listEmitter) Emit(key string, value writable.Writable) {
	l.recs = append(l.recs, mapred.Record{Key: key, Value: value})
}

func recordBytes(recs []mapred.Record) int64 {
	var n int64
	for _, r := range recs {
		n += r.Size()
	}
	return n
}

func sortRecords(recs []mapred.Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
}

// combineRecords groups a sorted bucket by key and runs the combiner,
// returning its emissions (which replace the bucket on the wire, as in
// the mapred map pipeline).
func combineRecords(c mapred.Reducer, recs []mapred.Record, m *model.Model) ([]mapred.Record, error) {
	em := &listEmitter{}
	var values []writable.Writable
	for lo := 0; lo < len(recs); {
		hi := lo + 1
		for hi < len(recs) && recs[hi].Key == recs[lo].Key {
			hi++
		}
		values = values[:0]
		for _, r := range recs[lo:hi] {
			values = append(values, r.Value)
		}
		if err := c.Reduce(recs[lo].Key, values, m, em); err != nil {
			return nil, err
		}
		lo = hi
	}
	return em.recs, nil
}

package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianMixtureShape(t *testing.T) {
	ps := GaussianMixture(1, 100, 5, 3, 50, 1)
	if len(ps.Points) != 100 || len(ps.Labels) != 100 || len(ps.TrueCenters) != 5 {
		t.Fatalf("shape: %d points, %d labels, %d centers", len(ps.Points), len(ps.Labels), len(ps.TrueCenters))
	}
	for _, p := range ps.Points {
		if len(p) != 3 {
			t.Fatalf("point dims = %d", len(p))
		}
	}
}

func TestGaussianMixtureDeterministic(t *testing.T) {
	a := GaussianMixture(7, 50, 3, 2, 10, 1)
	b := GaussianMixture(7, 50, 3, 2, 10, 1)
	for i := range a.Points {
		for d := range a.Points[i] {
			if a.Points[i][d] != b.Points[i][d] {
				t.Fatal("same seed produced different points")
			}
		}
	}
	c := GaussianMixture(8, 50, 3, 2, 10, 1)
	same := true
	for i := range a.Points {
		for d := range a.Points[i] {
			if a.Points[i][d] != c.Points[i][d] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical points")
	}
}

func TestGaussianMixturePointsNearTheirCenters(t *testing.T) {
	ps := GaussianMixture(3, 200, 4, 3, 100, 0.5)
	for i, p := range ps.Points {
		c := ps.TrueCenters[ps.Labels[i]]
		if p.Dist2(c) > 10 { // 0.5 sigma in 3 dims; 10 is ~13 sigma
			t.Fatalf("point %d is %v away from its center", i, p.Dist2(c))
		}
	}
}

func TestGaussianMixtureBalancedLabels(t *testing.T) {
	ps := GaussianMixture(5, 100, 4, 2, 10, 1)
	counts := map[int]int{}
	for _, l := range ps.Labels {
		counts[l]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 25 {
			t.Fatalf("label counts = %v", counts)
		}
	}
}

func TestOCRVectorsShape(t *testing.T) {
	set := OCRVectors(1, 200, 0.02, 0.05)
	if len(set.Vectors) != 200 || len(set.Labels) != 200 {
		t.Fatal("wrong count")
	}
	for i, v := range set.Vectors {
		if len(v) != OCRDims {
			t.Fatalf("vector %d has %d dims", i, len(v))
		}
		if set.Labels[i] < 0 || set.Labels[i] >= OCRClasses {
			t.Fatalf("label %d out of range", set.Labels[i])
		}
	}
}

func TestOCRCleanVectorsMatchGlyphs(t *testing.T) {
	set := OCRVectors(1, 10, 0, 0) // no noise
	for i, v := range set.Vectors {
		d := set.Labels[i]
		for r := 0; r < 7; r++ {
			for c := 0; c < 5; c++ {
				want := 0.0
				if digitGlyphs[d][r][c] == '1' {
					want = 1.0
				}
				if v[r*5+c] != want {
					t.Fatalf("digit %d pixel (%d,%d) = %v, want %v", d, r, c, v[r*5+c], want)
				}
			}
		}
	}
}

func TestOCRDeterministic(t *testing.T) {
	a := OCRVectors(9, 50, 0.05, 0.1)
	b := OCRVectors(9, 50, 0.05, 0.1)
	for i := range a.Vectors {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across same-seed runs")
		}
		for j := range a.Vectors[i] {
			if a.Vectors[i][j] != b.Vectors[i][j] {
				t.Fatal("vectors differ across same-seed runs")
			}
		}
	}
}

func TestGlyphsAreWellFormed(t *testing.T) {
	for d, g := range digitGlyphs {
		if len(g) != 7 {
			t.Fatalf("digit %d has %d rows", d, len(g))
		}
		for r, row := range g {
			if len(row) != 5 {
				t.Fatalf("digit %d row %d has %d cols", d, r, len(row))
			}
			for _, ch := range row {
				if ch != '0' && ch != '1' {
					t.Fatalf("digit %d contains %q", d, ch)
				}
			}
		}
	}
}

func TestNoisyImageShape(t *testing.T) {
	img := NoisyImage(1, 32, 16, 5)
	if img.Width != 32 || img.Height != 16 || len(img.Rows) != 16 {
		t.Fatal("wrong shape")
	}
	for _, row := range img.Rows {
		if len(row) != 32 {
			t.Fatal("wrong row width")
		}
	}
}

func TestNoisyImageHasStructureAndNoise(t *testing.T) {
	img := NoisyImage(2, 64, 64, 3)
	// Intensity should trend upward left to right (the gradient term).
	var left, right float64
	for y := 0; y < 64; y++ {
		for x := 0; x < 8; x++ {
			left += img.Rows[y][x]
			right += img.Rows[y][56+x]
		}
	}
	if right <= left {
		t.Fatalf("no left-to-right gradient: left=%v right=%v", left, right)
	}
	// Neighboring pixels should differ (noise present).
	diff := 0.0
	for x := 0; x < 63; x++ {
		diff += math.Abs(img.Rows[0][x+1] - img.Rows[0][x])
	}
	if diff == 0 {
		t.Fatal("image has no noise")
	}
}

func TestWeaklyDominantSystem(t *testing.T) {
	sys := WeaklyDominantSystem(1, 50, 1.5)
	if !sys.A.IsWeaklyDiagonallyDominant() {
		t.Fatal("generated system not weakly diagonally dominant")
	}
	if len(sys.B) != 50 {
		t.Fatalf("b has %d entries", len(sys.B))
	}
	if _, err := sys.A.Solve(sys.B); err != nil {
		t.Fatalf("generated system unsolvable: %v", err)
	}
}

func TestWeaklyDominantSystemDeterministic(t *testing.T) {
	a := WeaklyDominantSystem(3, 20, 2)
	b := WeaklyDominantSystem(3, 20, 2)
	for i := range a.A.Data {
		if a.A.Data[i] != b.A.Data[i] {
			t.Fatal("same seed produced different systems")
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { GaussianMixture(1, 0, 1, 1, 1, 1) },
		func() { OCRVectors(1, 0, 0, 0) },
		func() { NewImage(0, 5) },
		func() { WeaklyDominantSystem(1, 10, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: every generated system is weakly diagonally dominant and
// solvable for any dominance > 1.
func TestQuickSystemsAlwaysDominant(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%30) + 2
		if n < 2 {
			n = 2
		}
		sys := WeaklyDominantSystem(seed, n, 1.2)
		if !sys.A.IsWeaklyDiagonallyDominant() {
			return false
		}
		_, err := sys.A.Solve(sys.B)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package data generates the synthetic datasets that stand in for the
// paper's inputs (§V-A): Gaussian-mixture point clouds for K-means,
// OCR-style training vectors for neural-network training, smooth noisy
// images for the smoother, and weakly diagonally dominant linear
// systems for the equation solver. Every generator is fully determined
// by its seed, so every experiment is reproducible.
package data

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
)

// PointSet is a clustered point cloud with its generating centers.
type PointSet struct {
	// Points are the samples, in randomized order.
	Points []linalg.Vector
	// TrueCenters are the mixture component means the points were
	// drawn from.
	TrueCenters []linalg.Vector
	// Labels[i] is the component Points[i] was drawn from.
	Labels []int
}

// GaussianMixture draws n points from k spherical Gaussian components in
// dims dimensions. Component means are placed uniformly in
// [-spread, spread]^dims and each component has standard deviation
// sigma. The returned order is shuffled, so dealing records round-robin
// yields an unbiased random partition.
func GaussianMixture(seed int64, n, k, dims int, spread, sigma float64) *PointSet {
	if n <= 0 || k <= 0 || dims <= 0 {
		panic(fmt.Sprintf("data: bad mixture shape n=%d k=%d dims=%d", n, k, dims))
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]linalg.Vector, k)
	for c := range centers {
		centers[c] = make(linalg.Vector, dims)
		for d := range centers[c] {
			centers[c][d] = (rng.Float64()*2 - 1) * spread
		}
	}
	ps := &PointSet{TrueCenters: centers, Points: make([]linalg.Vector, n), Labels: make([]int, n)}
	for i := range ps.Points {
		c := i % k // balanced components
		p := make(linalg.Vector, dims)
		for d := range p {
			p[d] = centers[c][d] + rng.NormFloat64()*sigma
		}
		ps.Points[i] = p
		ps.Labels[i] = c
	}
	rng.Shuffle(n, func(i, j int) {
		ps.Points[i], ps.Points[j] = ps.Points[j], ps.Points[i]
		ps.Labels[i], ps.Labels[j] = ps.Labels[j], ps.Labels[i]
	})
	return ps
}

// digitGlyphs are 7x5 bitmaps of the digits 0-9, the prototype patterns
// behind the OCR training vectors (35 inputs, 10 classes).
var digitGlyphs = [10][7]string{
	{"01110", "10001", "10011", "10101", "11001", "10001", "01110"}, // 0
	{"00100", "01100", "00100", "00100", "00100", "00100", "01110"}, // 1
	{"01110", "10001", "00001", "00110", "01000", "10000", "11111"}, // 2
	{"01110", "10001", "00001", "00110", "00001", "10001", "01110"}, // 3
	{"00010", "00110", "01010", "10010", "11111", "00010", "00010"}, // 4
	{"11111", "10000", "11110", "00001", "00001", "10001", "01110"}, // 5
	{"01110", "10000", "10000", "11110", "10001", "10001", "01110"}, // 6
	{"11111", "00001", "00010", "00100", "01000", "01000", "01000"}, // 7
	{"01110", "10001", "10001", "01110", "10001", "10001", "01110"}, // 8
	{"01110", "10001", "10001", "01111", "00001", "00001", "01110"}, // 9
}

// OCRDims is the input dimensionality of OCR vectors (7x5 bitmap).
const OCRDims = 35

// OCRClasses is the number of digit classes.
const OCRClasses = 10

// OCRSet is a labeled optical-character-recognition dataset.
type OCRSet struct {
	// Vectors are the 35-dimensional inputs, in randomized order.
	Vectors []linalg.Vector
	// Labels[i] in [0,10) is the digit of Vectors[i].
	Labels []int
}

// OCRVectors generates n noisy digit images: each sample is a digit's
// bitmap with every pixel independently flipped with probability
// flipProb and Gaussian intensity noise of standard deviation
// pixelNoise added.
func OCRVectors(seed int64, n int, flipProb, pixelNoise float64) *OCRSet {
	if n <= 0 {
		panic("data: OCRVectors needs n ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	set := &OCRSet{Vectors: make([]linalg.Vector, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		digit := i % OCRClasses
		v := make(linalg.Vector, OCRDims)
		for r := 0; r < 7; r++ {
			for c := 0; c < 5; c++ {
				bit := 0.0
				if digitGlyphs[digit][r][c] == '1' {
					bit = 1.0
				}
				if rng.Float64() < flipProb {
					bit = 1 - bit
				}
				v[r*5+c] = bit + rng.NormFloat64()*pixelNoise
			}
		}
		set.Vectors[i] = v
		set.Labels[i] = digit
	}
	rng.Shuffle(n, func(i, j int) {
		set.Vectors[i], set.Vectors[j] = set.Vectors[j], set.Vectors[i]
		set.Labels[i], set.Labels[j] = set.Labels[j], set.Labels[i]
	})
	return set
}

// Image is a grayscale image stored as rows of float64 intensities.
type Image struct {
	Width, Height int
	Rows          []linalg.Vector
}

// NewImage allocates a zero image.
func NewImage(width, height int) *Image {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("data: bad image shape %dx%d", width, height))
	}
	img := &Image{Width: width, Height: height, Rows: make([]linalg.Vector, height)}
	for y := range img.Rows {
		img.Rows[y] = make(linalg.Vector, width)
	}
	return img
}

// NoisyImage generates a smooth two-dimensional intensity field (a sum
// of gradients and a few blobs) corrupted with Gaussian noise of
// standard deviation noise — the smoother's input.
func NoisyImage(seed int64, width, height int, noise float64) *Image {
	rng := rand.New(rand.NewSource(seed))
	img := NewImage(width, height)
	type blob struct{ cx, cy, amp, radius float64 }
	blobs := make([]blob, 4)
	for i := range blobs {
		blobs[i] = blob{
			cx:     rng.Float64() * float64(width),
			cy:     rng.Float64() * float64(height),
			amp:    rng.Float64()*100 + 50,
			radius: rng.Float64()*float64(width)/4 + float64(width)/8,
		}
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := 40 + 80*float64(x)/float64(width) + 40*float64(y)/float64(height)
			for _, b := range blobs {
				dx, dy := float64(x)-b.cx, float64(y)-b.cy
				v += b.amp / (1 + (dx*dx+dy*dy)/(b.radius*b.radius))
			}
			img.Rows[y][x] = v + rng.NormFloat64()*noise
		}
	}
	return img
}

// LinearSystem is a dense system A·x = b with a known weak-diagonal-
// dominance margin.
type LinearSystem struct {
	A *linalg.Matrix
	B linalg.Vector
}

// WeaklyDominantSystem generates an n×n system whose off-diagonal
// entries decay with distance from the diagonal (giving the "nearly
// uncoupled" block structure of §VI-B) and whose diagonal exceeds each
// row's off-diagonal sum by the factor dominance > 1.
func WeaklyDominantSystem(seed int64, n int, dominance float64) *LinearSystem {
	if n <= 0 || dominance <= 1 {
		panic(fmt.Sprintf("data: bad system n=%d dominance=%g", n, dominance))
	}
	rng := rand.New(rand.NewSource(seed))
	a := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dist := i - j
			if dist < 0 {
				dist = -dist
			}
			v := rng.NormFloat64() / (1 + float64(dist)) // band-ish decay
			a.Set(i, j, v)
			if v < 0 {
				off -= v
			} else {
				off += v
			}
		}
		a.Set(i, i, off*dominance+1e-9)
	}
	b := make(linalg.Vector, n)
	for i := range b {
		b[i] = rng.NormFloat64() * 10
	}
	return &LinearSystem{A: a, B: b}
}

// DiffusionSystem generates an n×n weakly diagonally dominant system
// with *positive* off-diagonal entries decaying away from the diagonal —
// a discrete diffusion operator. Unlike the random-sign system, no sign
// cancellation speeds Jacobi up, so the iteration converges at the rate
// ≈1/dominance the dominance margin implies, giving realistically long
// baseline runs (the paper's 100-variable system took the baseline about
// an hour).
func DiffusionSystem(seed int64, n int, dominance float64) *LinearSystem {
	if n <= 0 || dominance <= 1 {
		panic(fmt.Sprintf("data: bad system n=%d dominance=%g", n, dominance))
	}
	rng := rand.New(rand.NewSource(seed))
	a := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dist := i - j
			if dist < 0 {
				dist = -dist
			}
			v := (rng.Float64() + 0.2) / float64((1+dist)*(1+dist))
			a.Set(i, j, v)
			off += v
		}
		a.Set(i, i, off*dominance)
	}
	b := make(linalg.Vector, n)
	for i := range b {
		b[i] = rng.NormFloat64() * 10
	}
	return &LinearSystem{A: a, B: b}
}

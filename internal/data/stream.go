package data

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Out-of-core dataset streams.
//
// The legacy generators in this package materialize a whole dataset
// before anything can consume it; at the scale ladder's upper rungs
// (10⁷–10⁸ records) that O(dataset) buffer is exactly what must never
// exist. Each stream below is the out-of-core counterpart of one legacy
// generator: every record is seeded individually from (seed, index)
// through a splitmix64-derived PRNG, so record i can be generated alone,
// in any order, into a caller-reused buffer — no global shuffle, no
// shared generator state, no dependence on how consumers chunk the
// index space. Materialize() walks the index space once and builds the
// legacy-shaped resident dataset; the streamed-vs-resident equivalence
// tests pin record-level random access to that reference.
//
// The streams intentionally do not reproduce the legacy generators'
// exact bytes: those draw from one sequential math/rand stream and end
// with a global Fisher-Yates shuffle, which cannot be replayed one
// record at a time without O(n) state. Balanced interleaving (component
// i%k, digit i%10) gives streams the same statistical role the shuffle
// gave the legacy sets: dealing records round-robin yields an unbiased
// partition.

// prng is a tiny deterministic per-record generator: splitmix64 over a
// 64-bit state. It exists so streams can afford one generator per
// record — math/rand's source carries ~5 KiB of state, this carries 8
// bytes and allocates nothing.
type prng struct{ state uint64 }

// recordSeed derives the PRNG state for one record (or row, or stream
// component) of a seeded dataset. stream 0 is reserved for dataset-wide
// draws (mixture centers, image blobs); records use index+1.
func recordSeed(seed int64, stream uint64) prng {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15*(stream+0x632be59bd9b4e019)
	return prng{state: z}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in (0, 1).
func (p *prng) Float64() float64 {
	return (float64(p.next()>>11) + 0.5) / (1 << 53)
}

// NormFloat64 returns a standard normal draw (Box–Muller).
func (p *prng) NormFloat64() float64 {
	u1 := p.Float64()
	u2 := p.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// MixtureStream is the out-of-core counterpart of GaussianMixture:
// n points from k spherical Gaussian components, one point per call.
type MixtureStream struct {
	seed       int64
	n, k, dims int
	sigma      float64
	centers    []linalg.Vector
}

// NewMixtureStream prepares a stream of n points from k components in
// dims dimensions; only the k component centers (drawn uniformly in
// [-spread, spread]^dims) are resident.
func NewMixtureStream(seed int64, n, k, dims int, spread, sigma float64) *MixtureStream {
	if n <= 0 || k <= 0 || dims <= 0 {
		panic(fmt.Sprintf("data: bad mixture shape n=%d k=%d dims=%d", n, k, dims))
	}
	rng := recordSeed(seed, 0)
	centers := make([]linalg.Vector, k)
	for c := range centers {
		centers[c] = make(linalg.Vector, dims)
		for d := range centers[c] {
			centers[c][d] = (rng.Float64()*2 - 1) * spread
		}
	}
	return &MixtureStream{seed: seed, n: n, k: k, dims: dims, sigma: sigma, centers: centers}
}

// Len reports the number of points in the stream.
func (s *MixtureStream) Len() int { return s.n }

// Dims reports the point dimensionality.
func (s *MixtureStream) Dims() int { return s.dims }

// Centers returns the mixture component means (read-only).
func (s *MixtureStream) Centers() []linalg.Vector { return s.centers }

// Label reports the component point i is drawn from.
func (s *MixtureStream) Label(i int) int { return i % s.k }

// Point writes point i into dst (reusing its storage when it has the
// right capacity) and returns it.
func (s *MixtureStream) Point(i int, dst linalg.Vector) linalg.Vector {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("data: mixture point %d out of range [0,%d)", i, s.n))
	}
	dst = sized(dst, s.dims)
	rng := recordSeed(s.seed, uint64(i)+1)
	c := s.centers[i%s.k]
	for d := range dst {
		dst[d] = c[d] + rng.NormFloat64()*s.sigma
	}
	return dst
}

// Materialize builds the resident dataset the stream describes — the
// in-memory path the equivalence tests compare record-level access to.
func (s *MixtureStream) Materialize() *PointSet {
	ps := &PointSet{
		TrueCenters: s.centers,
		Points:      make([]linalg.Vector, s.n),
		Labels:      make([]int, s.n),
	}
	for i := range ps.Points {
		ps.Points[i] = s.Point(i, nil)
		ps.Labels[i] = s.Label(i)
	}
	return ps
}

// OCRStream is the out-of-core counterpart of OCRVectors: n noisy digit
// bitmaps, one 35-dimensional vector per call.
type OCRStream struct {
	seed                 int64
	n                    int
	flipProb, pixelNoise float64
}

// NewOCRStream prepares a stream of n noisy digit vectors.
func NewOCRStream(seed int64, n int, flipProb, pixelNoise float64) *OCRStream {
	if n <= 0 {
		panic("data: OCRStream needs n ≥ 1")
	}
	return &OCRStream{seed: seed, n: n, flipProb: flipProb, pixelNoise: pixelNoise}
}

// Len reports the number of vectors in the stream.
func (s *OCRStream) Len() int { return s.n }

// Label reports the digit class of vector i.
func (s *OCRStream) Label(i int) int { return i % OCRClasses }

// Vec writes vector i into dst (reusing storage when possible) and
// returns it.
func (s *OCRStream) Vec(i int, dst linalg.Vector) linalg.Vector {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("data: OCR vector %d out of range [0,%d)", i, s.n))
	}
	dst = sized(dst, OCRDims)
	rng := recordSeed(s.seed, uint64(i)+1)
	digit := i % OCRClasses
	for r := 0; r < 7; r++ {
		for c := 0; c < 5; c++ {
			bit := 0.0
			if digitGlyphs[digit][r][c] == '1' {
				bit = 1.0
			}
			if rng.Float64() < s.flipProb {
				bit = 1 - bit
			}
			dst[r*5+c] = bit + rng.NormFloat64()*s.pixelNoise
		}
	}
	return dst
}

// Materialize builds the resident OCR dataset.
func (s *OCRStream) Materialize() *OCRSet {
	set := &OCRSet{Vectors: make([]linalg.Vector, s.n), Labels: make([]int, s.n)}
	for i := range set.Vectors {
		set.Vectors[i] = s.Vec(i, nil)
		set.Labels[i] = s.Label(i)
	}
	return set
}

// ImageStream is the out-of-core counterpart of NoisyImage: the smooth
// blob field corrupted with per-pixel noise, one row per call.
type ImageStream struct {
	seed          int64
	width, height int
	noise         float64
	blobs         []imageBlob
}

type imageBlob struct{ cx, cy, amp, radius float64 }

// NewImageStream prepares a streamed width×height noisy image; only the
// four blob parameters are resident.
func NewImageStream(seed int64, width, height int, noise float64) *ImageStream {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("data: bad image shape %dx%d", width, height))
	}
	rng := recordSeed(seed, 0)
	blobs := make([]imageBlob, 4)
	for i := range blobs {
		blobs[i] = imageBlob{
			cx:     rng.Float64() * float64(width),
			cy:     rng.Float64() * float64(height),
			amp:    rng.Float64()*100 + 50,
			radius: rng.Float64()*float64(width)/4 + float64(width)/8,
		}
	}
	return &ImageStream{seed: seed, width: width, height: height, noise: noise, blobs: blobs}
}

// Width and Height report the image shape.
func (s *ImageStream) Width() int  { return s.width }
func (s *ImageStream) Height() int { return s.height }

// Row writes row y into dst (reusing storage when possible) and returns
// it.
func (s *ImageStream) Row(y int, dst linalg.Vector) linalg.Vector {
	if y < 0 || y >= s.height {
		panic(fmt.Sprintf("data: image row %d out of range [0,%d)", y, s.height))
	}
	dst = sized(dst, s.width)
	rng := recordSeed(s.seed, uint64(y)+1)
	for x := 0; x < s.width; x++ {
		v := 40 + 80*float64(x)/float64(s.width) + 40*float64(y)/float64(s.height)
		for _, b := range s.blobs {
			dx, dy := float64(x)-b.cx, float64(y)-b.cy
			v += b.amp / (1 + (dx*dx+dy*dy)/(b.radius*b.radius))
		}
		dst[x] = v + rng.NormFloat64()*s.noise
	}
	return dst
}

// Materialize builds the resident image.
func (s *ImageStream) Materialize() *Image {
	img := NewImage(s.width, s.height)
	for y := range img.Rows {
		img.Rows[y] = s.Row(y, img.Rows[y])
	}
	return img
}

// SystemStream is the out-of-core counterpart of WeaklyDominantSystem
// and DiffusionSystem: one matrix row (with its right-hand-side entry)
// per call.
type SystemStream struct {
	seed      int64
	n         int
	dominance float64
	diffusion bool
}

// NewWeaklyDominantStream prepares a streamed n×n system with
// random-sign band-decay off-diagonals (see WeaklyDominantSystem).
func NewWeaklyDominantStream(seed int64, n int, dominance float64) *SystemStream {
	if n <= 0 || dominance <= 1 {
		panic(fmt.Sprintf("data: bad system n=%d dominance=%g", n, dominance))
	}
	return &SystemStream{seed: seed, n: n, dominance: dominance}
}

// NewDiffusionStream prepares a streamed n×n system with positive
// band-decay off-diagonals (see DiffusionSystem).
func NewDiffusionStream(seed int64, n int, dominance float64) *SystemStream {
	if n <= 0 || dominance <= 1 {
		panic(fmt.Sprintf("data: bad system n=%d dominance=%g", n, dominance))
	}
	return &SystemStream{seed: seed, n: n, dominance: dominance, diffusion: true}
}

// Len reports the system's dimension n.
func (s *SystemStream) Len() int { return s.n }

// Row writes row i of the matrix into dst (n entries, diagonal
// included, reusing storage when possible) and returns it together with
// the right-hand-side entry b[i].
func (s *SystemStream) Row(i int, dst linalg.Vector) (linalg.Vector, float64) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("data: system row %d out of range [0,%d)", i, s.n))
	}
	dst = sized(dst, s.n)
	rng := recordSeed(s.seed, uint64(i)+1)
	var off float64
	for j := 0; j < s.n; j++ {
		if i == j {
			continue
		}
		dist := i - j
		if dist < 0 {
			dist = -dist
		}
		var v float64
		if s.diffusion {
			v = (rng.Float64() + 0.2) / float64((1+dist)*(1+dist))
			off += v
		} else {
			v = rng.NormFloat64() / (1 + float64(dist))
			if v < 0 {
				off -= v
			} else {
				off += v
			}
		}
		dst[j] = v
	}
	if s.diffusion {
		dst[i] = off * s.dominance
	} else {
		dst[i] = off*s.dominance + 1e-9
	}
	return dst, rng.NormFloat64() * 10
}

// Materialize builds the resident linear system.
func (s *SystemStream) Materialize() *LinearSystem {
	a := linalg.NewMatrix(s.n, s.n)
	b := make(linalg.Vector, s.n)
	row := make(linalg.Vector, s.n)
	for i := 0; i < s.n; i++ {
		var bi float64
		row, bi = s.Row(i, row)
		for j, v := range row {
			a.Set(i, j, v)
		}
		b[i] = bi
	}
	return &LinearSystem{A: a, B: b}
}

// sized returns dst resliced to n entries, reusing its backing array
// when the capacity suffices.
func sized(dst linalg.Vector, n int) linalg.Vector {
	if cap(dst) < n {
		return make(linalg.Vector, n)
	}
	return dst[:n]
}

package data

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func vecEqual(a, b linalg.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Every stream must agree bit-for-bit with its own Materialize() output
// under random access with a reused buffer — the property that makes
// streamed split generation byte-identical to the resident path.
func TestMixtureStreamMatchesMaterialize(t *testing.T) {
	s := NewMixtureStream(42, 101, 5, 3, 100, 2.5)
	ps := s.Materialize()
	if len(ps.Points) != 101 || len(ps.TrueCenters) != 5 {
		t.Fatalf("materialized shape: %d points, %d centers", len(ps.Points), len(ps.TrueCenters))
	}
	var buf linalg.Vector
	// Deliberately out of order: reverse, then a few repeats.
	for i := s.Len() - 1; i >= 0; i-- {
		buf = s.Point(i, buf)
		if !vecEqual(buf, ps.Points[i]) {
			t.Fatalf("point %d: stream %v != materialized %v", i, buf, ps.Points[i])
		}
		if s.Label(i) != ps.Labels[i] {
			t.Fatalf("label %d: stream %d != materialized %d", i, s.Label(i), ps.Labels[i])
		}
	}
	for _, i := range []int{7, 7, 0, 100, 50} {
		buf = s.Point(i, buf)
		if !vecEqual(buf, ps.Points[i]) {
			t.Fatalf("repeat access point %d diverged", i)
		}
	}
}

func TestOCRStreamMatchesMaterialize(t *testing.T) {
	s := NewOCRStream(7, 53, 0.05, 0.1)
	set := s.Materialize()
	var buf linalg.Vector
	for i := s.Len() - 1; i >= 0; i-- {
		buf = s.Vec(i, buf)
		if !vecEqual(buf, set.Vectors[i]) {
			t.Fatalf("vector %d diverged", i)
		}
		if s.Label(i) != set.Labels[i] {
			t.Fatalf("label %d: %d != %d", i, s.Label(i), set.Labels[i])
		}
	}
}

func TestImageStreamMatchesMaterialize(t *testing.T) {
	s := NewImageStream(11, 40, 17, 4)
	img := s.Materialize()
	if img.Width != 40 || img.Height != 17 {
		t.Fatalf("materialized shape %dx%d", img.Width, img.Height)
	}
	var buf linalg.Vector
	for y := s.Height() - 1; y >= 0; y-- {
		buf = s.Row(y, buf)
		if !vecEqual(buf, img.Rows[y]) {
			t.Fatalf("row %d diverged", y)
		}
	}
}

func TestSystemStreamsMatchMaterialize(t *testing.T) {
	for name, s := range map[string]*SystemStream{
		"weakly-dominant": NewWeaklyDominantStream(3, 37, 1.5),
		"diffusion":       NewDiffusionStream(3, 37, 1.5),
	} {
		sys := s.Materialize()
		var buf linalg.Vector
		for i := s.Len() - 1; i >= 0; i-- {
			var bi float64
			buf, bi = s.Row(i, buf)
			for j, v := range buf {
				if v != sys.A.At(i, j) {
					t.Fatalf("%s: A[%d][%d] stream %v != materialized %v", name, i, j, v, sys.A.At(i, j))
				}
			}
			if bi != sys.B[i] {
				t.Fatalf("%s: b[%d] stream %v != materialized %v", name, i, bi, sys.B[i])
			}
		}
	}
}

// Streams must be diagonally dominant and well-conditioned like their
// legacy counterparts: diffusion rows must dominate by the configured
// margin.
func TestSystemStreamDominance(t *testing.T) {
	s := NewDiffusionStream(9, 25, 1.4)
	row := make(linalg.Vector, 25)
	for i := 0; i < s.Len(); i++ {
		row, _ = s.Row(i, row)
		var off float64
		for j, v := range row {
			if j != i {
				off += math.Abs(v)
			}
		}
		if row[i] < off*1.39 {
			t.Fatalf("row %d diag %v not dominant over off-sum %v", i, row[i], off)
		}
	}
}

// Buffer reuse must never leak values between records: generating into a
// dirty buffer must give the same bytes as a fresh one.
func TestStreamBufferHygiene(t *testing.T) {
	s := NewMixtureStream(1, 20, 3, 4, 10, 1)
	fresh := s.Point(5, nil)
	dirty := make(linalg.Vector, 4)
	for i := range dirty {
		dirty[i] = math.Inf(1)
	}
	if got := s.Point(5, dirty); !vecEqual(got, fresh) {
		t.Fatalf("dirty buffer changed output: %v != %v", got, fresh)
	}
	// Undersized buffer: must allocate, not panic or truncate.
	if got := s.Point(5, make(linalg.Vector, 1)); !vecEqual(got, fresh) {
		t.Fatal("undersized buffer changed output")
	}
}

func TestStreamValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("mixture n=0", func() { NewMixtureStream(1, 0, 2, 2, 1, 1) })
	expectPanic("ocr n=0", func() { NewOCRStream(1, 0, 0, 0) })
	expectPanic("image w=0", func() { NewImageStream(1, 0, 5, 1) })
	expectPanic("system dominance=1", func() { NewWeaklyDominantStream(1, 5, 1) })
	expectPanic("diffusion n=0", func() { NewDiffusionStream(1, 0, 2) })
	s := NewMixtureStream(1, 5, 2, 2, 1, 1)
	expectPanic("point out of range", func() { s.Point(5, nil) })
	expectPanic("negative index", func() { s.Point(-1, nil) })
}

// Per-record seeding means chunking cannot matter, but the draws must
// still look like the distribution they claim: mean of mixture noise
// near the centers, normals with roughly unit variance.
func TestStreamStatisticalSanity(t *testing.T) {
	const n, k, dims = 6000, 3, 2
	s := NewMixtureStream(123, n, k, dims, 50, 1.0)
	sums := make([]linalg.Vector, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make(linalg.Vector, dims)
	}
	var buf linalg.Vector
	for i := 0; i < n; i++ {
		buf = s.Point(i, buf)
		c := s.Label(i)
		counts[c]++
		for d := range buf {
			sums[c][d] += buf[d]
		}
	}
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			mean := sums[c][d] / float64(counts[c])
			if math.Abs(mean-s.Centers()[c][d]) > 0.15 {
				t.Fatalf("component %d dim %d: empirical mean %v far from center %v",
					c, d, mean, s.Centers()[c][d])
			}
		}
	}
}

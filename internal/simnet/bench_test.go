package simnet

import "testing"

func benchFlows(n int) []Flow {
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{Src: i % 8, Dst: (i + 3) % 8, Bytes: int64(1000 + i)}
	}
	return flows
}

func BenchmarkTransferTime64Flows(b *testing.B) {
	f := New(testConfig())
	flows := benchFlows(64)
	for i := 0; i < b.N; i++ {
		f.TransferTime(flows)
	}
}

func BenchmarkMaxMinTransferTime64Flows(b *testing.B) {
	f := New(testConfig())
	flows := benchFlows(64)
	for i := 0; i < b.N; i++ {
		f.MaxMinTransferTime(flows)
	}
}

func BenchmarkRecord64Flows(b *testing.B) {
	f := New(testConfig())
	flows := benchFlows(64)
	for i := 0; i < b.N; i++ {
		f.Record(flows)
	}
}

package simnet

import (
	"fmt"
	"math"

	"repro/internal/simtime"
)

// MaxMinTransferTime computes the completion time of a set of concurrent
// flows under progressive max-min fair sharing: at every instant each
// flow receives its max-min fair rate over the links it traverses
// (water-filling), and as flows finish, the survivors speed up. This is
// the classic fluid model of TCP-like bandwidth sharing, and it is
// never faster than the bottleneck bound TransferTime computes — the
// most-loaded link still has to drain — but it can be slower, because
// fair sharing does not schedule transfers optimally.
//
// The engine's cost model uses the bottleneck bound by default
// (optimally scheduled transfers); this model is the skeptical
// alternative used to check that the reproduced shapes do not depend on
// that optimism.
func (f *Fabric) MaxMinTransferTime(flows []Flow) simtime.Duration {
	type resource struct {
		capacity float64
	}
	resources := map[string]*resource{}
	flowLinks := make([][]string, len(flows))
	remaining := make([]float64, len(flows))
	active := 0
	addLink := func(name string, capacity float64) string {
		if _, ok := resources[name]; !ok {
			resources[name] = &resource{capacity: capacity}
		}
		return name
	}
	for i, fl := range flows {
		if fl.Bytes < 0 {
			panic("simnet: negative flow size")
		}
		if fl.Src == fl.Dst || fl.Bytes == 0 {
			continue
		}
		remaining[i] = float64(fl.Bytes)
		active++
		// Capacities are the residual left by registered co-tenant
		// loads, like TransferTime's.
		links := []string{
			addLink(fmt.Sprintf("up/%d", fl.Src), f.cfg.NodeBandwidth*residual(f.bgNodeUp[fl.Src])),
			addLink(fmt.Sprintf("down/%d", fl.Dst), f.cfg.NodeBandwidth*residual(f.bgNodeDown[fl.Dst])),
		}
		sr, dr := f.Rack(fl.Src), f.Rack(fl.Dst)
		if sr != dr {
			links = append(links,
				addLink(fmt.Sprintf("rackup/%d", sr), f.cfg.RackBandwidth*residual(f.bgRackUp[sr])),
				addLink(fmt.Sprintf("rackdown/%d", dr), f.cfg.RackBandwidth*residual(f.bgRackDown[dr])),
				addLink("core", f.cfg.CoreBandwidth*residual(f.bgCore)),
			)
		}
		flowLinks[i] = links
	}
	if active == 0 {
		return 0
	}

	var now float64
	for active > 0 {
		// Water-filling: repeatedly saturate the tightest link.
		rates := make([]float64, len(flows))
		fixed := make([]bool, len(flows))
		avail := map[string]float64{}
		users := map[string]int{}
		for name, r := range resources {
			avail[name] = r.capacity
			users[name] = 0
		}
		for i := range flows {
			if remaining[i] > 0 {
				for _, l := range flowLinks[i] {
					users[l]++
				}
			}
		}
		for {
			// Tightest link: least available capacity per unfixed user.
			bottleneck, share := "", math.Inf(1)
			for name := range resources {
				if users[name] == 0 {
					continue
				}
				if s := avail[name] / float64(users[name]); s < share {
					bottleneck, share = name, s
				}
			}
			if bottleneck == "" {
				break
			}
			// Fix every unfixed flow crossing the bottleneck at the
			// fair share, releasing capacity elsewhere.
			for i := range flows {
				if fixed[i] || remaining[i] <= 0 {
					continue
				}
				crosses := false
				for _, l := range flowLinks[i] {
					if l == bottleneck {
						crosses = true
						break
					}
				}
				if !crosses {
					continue
				}
				fixed[i] = true
				rates[i] = share
				for _, l := range flowLinks[i] {
					avail[l] -= share
					users[l]--
				}
			}
		}

		// Advance to the next completion.
		dt := math.Inf(1)
		for i := range flows {
			if remaining[i] > 0 && rates[i] > 0 {
				if t := remaining[i] / rates[i]; t < dt {
					dt = t
				}
			}
		}
		if math.IsInf(dt, 1) {
			panic("simnet: starved flows in max-min computation")
		}
		now += dt
		for i := range flows {
			if remaining[i] <= 0 {
				continue
			}
			remaining[i] -= rates[i] * dt
			if remaining[i] < 1e-6 {
				remaining[i] = 0
				active--
			}
		}
	}
	return simtime.Duration(now)
}

package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func testConfig() Config {
	return Config{
		Nodes:         8,
		RackSize:      4,
		NodeBandwidth: 100,
		CoreBandwidth: 200,
		RackBandwidth: 150,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Nodes: -1, RackSize: 4, NodeBandwidth: 1, CoreBandwidth: 1, RackBandwidth: 1},
		{Nodes: 4, RackSize: 0, NodeBandwidth: 1, CoreBandwidth: 1, RackBandwidth: 1},
		{Nodes: 4, RackSize: 4, NodeBandwidth: 0, CoreBandwidth: 1, RackBandwidth: 1},
		{Nodes: 4, RackSize: 4, NodeBandwidth: 1, CoreBandwidth: 0, RackBandwidth: 1},
		{Nodes: 4, RackSize: 4, NodeBandwidth: 1, CoreBandwidth: 1, RackBandwidth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRacks(t *testing.T) {
	cases := []struct {
		nodes, rackSize, want int
	}{
		{8, 4, 2}, {9, 4, 3}, {1, 4, 1}, {4, 4, 1}, {64, 16, 4},
	}
	for _, c := range cases {
		cfg := Config{Nodes: c.nodes, RackSize: c.rackSize, NodeBandwidth: 1, CoreBandwidth: 1, RackBandwidth: 1}
		if got := cfg.Racks(); got != c.want {
			t.Errorf("Racks(%d nodes, %d/rack) = %d, want %d", c.nodes, c.rackSize, got, c.want)
		}
	}
}

func TestRackAssignment(t *testing.T) {
	f := New(testConfig())
	for n := 0; n < 8; n++ {
		want := n / 4
		if got := f.Rack(n); got != want {
			t.Errorf("Rack(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRackOutOfRangePanics(t *testing.T) {
	f := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("Rack(-1) did not panic")
		}
	}()
	f.Rack(-1)
}

func TestLocalFlowIsFree(t *testing.T) {
	f := New(testConfig())
	d := f.Transfer([]Flow{{Src: 3, Dst: 3, Bytes: 1 << 20}})
	if d != 0 {
		t.Fatalf("local flow took %v, want 0", d)
	}
	c := f.Counters()
	if c.Total != 0 || c.Local != 1<<20 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestIntraRackTransferTime(t *testing.T) {
	f := New(testConfig())
	// 1000 bytes node 0 -> node 1, same rack: bottleneck is the NIC.
	d := f.Transfer([]Flow{{Src: 0, Dst: 1, Bytes: 1000}})
	if want := simtime.Duration(10); d != want {
		t.Fatalf("duration = %v, want %v", d, want)
	}
	c := f.Counters()
	if c.IntraRack != 1000 || c.CrossRack != 0 || c.Total != 1000 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestCrossRackUsesCore(t *testing.T) {
	f := New(testConfig())
	d := f.Transfer([]Flow{{Src: 0, Dst: 4, Bytes: 1000}})
	// NIC: 1000/100 = 10s; rack uplink: 1000/150 ≈ 6.67s; core: 1000/200 = 5s.
	if want := simtime.Duration(10); d != want {
		t.Fatalf("duration = %v, want %v", d, want)
	}
	c := f.Counters()
	if c.CrossRack != 1000 || c.IntraRack != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRackUplinkBecomesBottleneck(t *testing.T) {
	f := New(testConfig())
	// Four parallel cross-rack flows of 1000 bytes from distinct sources
	// to distinct destinations: each NIC carries 1000 (10s), the core
	// carries 4000 (20s), rack 0's uplink carries 4000 (4000/150 ≈
	// 26.67s) -> rack uplink dominates.
	flows := []Flow{
		{Src: 0, Dst: 4, Bytes: 1000},
		{Src: 1, Dst: 5, Bytes: 1000},
		{Src: 2, Dst: 6, Bytes: 1000},
		{Src: 3, Dst: 7, Bytes: 1000},
	}
	d := f.TransferTime(flows)
	if want := simtime.Duration(4000.0 / 150.0); d != want {
		t.Fatalf("duration = %v, want %v", d, want)
	}
}

func TestCoreBecomesBottleneck(t *testing.T) {
	cfg := testConfig()
	cfg.RackBandwidth = 10000 // rack uplinks out of the way
	f := New(cfg)
	flows := []Flow{
		{Src: 0, Dst: 4, Bytes: 1000},
		{Src: 1, Dst: 5, Bytes: 1000},
		{Src: 2, Dst: 6, Bytes: 1000},
		{Src: 3, Dst: 7, Bytes: 1000},
	}
	// Core carries 4000 at 200 B/s -> 20s, beating the 10s NIC time.
	d := f.TransferTime(flows)
	if want := simtime.Duration(20); d != want {
		t.Fatalf("duration = %v, want %v", d, want)
	}
}

func TestParallelIntraRackScales(t *testing.T) {
	f := New(testConfig())
	// Two disjoint intra-rack flows proceed in parallel: same time as one.
	one := f.TransferTime([]Flow{{Src: 0, Dst: 1, Bytes: 1000}})
	two := f.TransferTime([]Flow{
		{Src: 0, Dst: 1, Bytes: 1000},
		{Src: 2, Dst: 3, Bytes: 1000},
	})
	if one != two {
		t.Fatalf("parallel disjoint flows: one=%v two=%v", one, two)
	}
}

func TestFanInCongestsDownlink(t *testing.T) {
	f := New(testConfig())
	// Three nodes send 1000 bytes each to node 0: downlink carries 3000.
	flows := []Flow{
		{Src: 1, Dst: 0, Bytes: 1000},
		{Src: 2, Dst: 0, Bytes: 1000},
		{Src: 3, Dst: 0, Bytes: 1000},
	}
	d := f.TransferTime(flows)
	if want := simtime.Duration(30); d != want {
		t.Fatalf("duration = %v, want %v", d, want)
	}
}

func TestZeroByteFlowIgnored(t *testing.T) {
	f := New(testConfig())
	d := f.Transfer([]Flow{{Src: 0, Dst: 1, Bytes: 0}})
	if d != 0 {
		t.Fatalf("zero-byte flow took %v", d)
	}
	if c := f.Counters(); c.Total != 0 || c.Transfers != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestNegativeFlowPanics(t *testing.T) {
	f := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative flow did not panic")
		}
	}()
	f.Record([]Flow{{Src: 0, Dst: 1, Bytes: -1}})
}

func TestResetCounters(t *testing.T) {
	f := New(testConfig())
	f.Record([]Flow{{Src: 0, Dst: 5, Bytes: 10}})
	f.ResetCounters()
	if c := f.Counters(); c != (Counters{}) {
		t.Fatalf("counters after reset = %+v", c)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Total: 1, CrossRack: 2, IntraRack: 3, Local: 4, Transfers: 5}
	b := Counters{Total: 10, CrossRack: 20, IntraRack: 30, Local: 40, Transfers: 50}
	a.Add(b)
	want := Counters{Total: 11, CrossRack: 22, IntraRack: 33, Local: 44, Transfers: 55}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

// Property: Total == CrossRack + IntraRack, and recording is additive.
func TestQuickByteConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(testConfig())
		var wantTotal, wantLocal int64
		n := rng.Intn(30)
		flows := make([]Flow, 0, n)
		for i := 0; i < n; i++ {
			fl := Flow{Src: rng.Intn(8), Dst: rng.Intn(8), Bytes: int64(rng.Intn(1000))}
			flows = append(flows, fl)
			if fl.Src == fl.Dst {
				wantLocal += fl.Bytes
			} else {
				wantTotal += fl.Bytes
			}
		}
		fab.Record(flows)
		c := fab.Counters()
		return c.Total == wantTotal && c.Local == wantLocal && c.Total == c.CrossRack+c.IntraRack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: transfer time is monotone — adding a flow never makes the
// set finish sooner.
func TestQuickMonotoneTransferTime(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(testConfig())
		n := rng.Intn(20) + 1
		flows := make([]Flow, n)
		for i := range flows {
			flows[i] = Flow{Src: rng.Intn(8), Dst: rng.Intn(8), Bytes: int64(rng.Intn(5000))}
		}
		prev := simtime.Duration(0)
		for i := 1; i <= n; i++ {
			d := fab.TransferTime(flows[:i])
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	f := New(Config{Nodes: 4, RackSize: 2, NodeBandwidth: 100, RackBandwidth: 200, CoreBandwidth: 400})
	// One intra-rack flow (0->1) and one cross-rack flow (0->2).
	f.Record([]Flow{{Src: 0, Dst: 1, Bytes: 100}, {Src: 0, Dst: 2, Bytes: 400}})
	u := f.Utilization()
	if got := float64(u.NodeUp[0]); got != 5 { // (100+400)/100
		t.Fatalf("NodeUp[0] = %g, want 5", got)
	}
	if got := float64(u.NodeDown[1]); got != 1 {
		t.Fatalf("NodeDown[1] = %g, want 1", got)
	}
	if got := float64(u.NodeDown[2]); got != 4 {
		t.Fatalf("NodeDown[2] = %g, want 4", got)
	}
	if got := float64(u.RackUp[0]); got != 2 { // 400/200, cross-rack only
		t.Fatalf("RackUp[0] = %g, want 2", got)
	}
	if got := float64(u.RackDown[1]); got != 2 {
		t.Fatalf("RackDown[1] = %g, want 2", got)
	}
	if got := float64(u.Core); got != 1 { // 400/400
		t.Fatalf("Core = %g, want 1", got)
	}
	if u.MaxNode() != u.NodeUp[0]+u.NodeDown[0] {
		t.Fatalf("MaxNode = %v", u.MaxNode())
	}
	if u.MaxRack() != u.RackUp[0]+u.RackDown[0] {
		t.Fatalf("MaxRack = %v", u.MaxRack())
	}
	// Local and zero flows charge nothing.
	before := f.Utilization()
	f.Record([]Flow{{Src: 3, Dst: 3, Bytes: 50}, {Src: 0, Dst: 1, Bytes: 0}})
	after := f.Utilization()
	if after.NodeUp[3] != before.NodeUp[3] || after.Core != before.Core {
		t.Fatal("local/zero flow charged utilization")
	}
	// The snapshot is a copy, not a live view.
	after.NodeUp[0] = 999
	if f.Utilization().NodeUp[0] == 999 {
		t.Fatal("Utilization returned a live slice")
	}
}

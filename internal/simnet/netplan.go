package simnet

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Network fault injection.
//
// A NetworkPlan scripts link degradation and outage against the
// simulated clock, mirroring simcluster.FailurePlan's shape: validate
// at registration, sort, replay deterministically. Where a FailurePlan
// kills whole nodes, a NetworkPlan leaves every node computing but
// degrades the fabric between them — a node's NIC, a rack's uplink,
// the core bisection, or a full bipartition of the cluster. Faults are
// piecewise-constant: a transfer is priced by the overlay active at
// its start time.

// FaultKind identifies which fabric resource a NetFault degrades.
type FaultKind string

const (
	// FaultNodeLink degrades one node's NIC (both directions).
	FaultNodeLink FaultKind = "node-link"
	// FaultRackUplink degrades one rack switch's uplink to the core
	// (both directions).
	FaultRackUplink FaultKind = "rack-uplink"
	// FaultCore degrades the core bisection bandwidth.
	FaultCore FaultKind = "core"
	// FaultPartition splits the cluster in two: no traffic crosses
	// between Nodes and the rest while the fault is active. Factor
	// must be zero — a partition is total by definition.
	FaultPartition FaultKind = "partition"
)

// NetFault is one scripted fault window [Start, End) on the simulated
// clock. Factor is the capacity multiplier the targeted resource keeps
// while the fault is active: 0 is a hard outage (the resource is
// unreachable), 0 < Factor < 1 is a brownout. Target fields not used
// by the fault's Kind must be left zero.
type NetFault struct {
	Kind FaultKind
	// Node targets FaultNodeLink.
	Node int
	// Rack targets FaultRackUplink.
	Rack int
	// Nodes is one side of a FaultPartition cut; the other side is
	// every remaining node.
	Nodes []int
	// Start and End bound the window; the fault is active for
	// Start <= t < End.
	Start, End simtime.Time
	// Factor is the residual capacity fraction in [0, 1).
	Factor float64
}

// target returns a stable identity for overlap checking: faults with
// equal targets may not have overlapping windows.
func (nf NetFault) target() string {
	switch nf.Kind {
	case FaultNodeLink:
		return fmt.Sprintf("node:%d", nf.Node)
	case FaultRackUplink:
		return fmt.Sprintf("rack:%d", nf.Rack)
	case FaultCore:
		return "core"
	case FaultPartition:
		// Any two partitions overlap by construction: each cuts the
		// cluster in two, and composing cuts is not modelled.
		return "partition"
	}
	return string(nf.Kind)
}

// Describe renders the fault for schedules and trace events.
func (nf NetFault) Describe() string {
	switch nf.Kind {
	case FaultNodeLink:
		return fmt.Sprintf("node-link node=%d factor=%g [%g,%g)", nf.Node, nf.Factor, float64(nf.Start), float64(nf.End))
	case FaultRackUplink:
		return fmt.Sprintf("rack-uplink rack=%d factor=%g [%g,%g)", nf.Rack, nf.Factor, float64(nf.Start), float64(nf.End))
	case FaultCore:
		return fmt.Sprintf("core factor=%g [%g,%g)", nf.Factor, float64(nf.Start), float64(nf.End))
	case FaultPartition:
		return fmt.Sprintf("partition side=%v [%g,%g)", nf.Nodes, float64(nf.Start), float64(nf.End))
	}
	return string(nf.Kind)
}

// activeAt reports whether the fault window covers time t.
func (nf NetFault) activeAt(t simtime.Time) bool {
	return nf.Start <= t && t < nf.End
}

// PlanError reports why a NetworkPlan failed validation. Index is the
// offending fault's position in Faults.
type PlanError struct {
	Index  int
	Reason string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("simnet: network fault %d: %s", e.Index, e.Reason)
}

// NetworkPlan scripts network faults against the simulated clock.
// Register it with Fabric.SetNetworkPlan (or
// simcluster.Cluster.SetNetworkPlan) before building runtimes; the
// transfer models then honor it. A nil plan — or a plan whose windows
// never cover a transfer's start time — changes nothing: transfer
// times stay float-identical to an unfaulted fabric.
type NetworkPlan struct {
	Faults []NetFault
}

// Validate reports whether every fault targets an existing resource of
// cfg with a sane window and factor, and that no two faults on the
// same target overlap. Errors are typed *PlanError.
func (p *NetworkPlan) Validate(cfg Config) error {
	if p == nil {
		return nil
	}
	type window struct {
		index      int
		start, end simtime.Time
	}
	byTarget := map[string][]window{}
	for i, nf := range p.Faults {
		fail := func(format string, args ...any) error {
			return &PlanError{Index: i, Reason: fmt.Sprintf(format, args...)}
		}
		switch nf.Kind {
		case FaultNodeLink:
			if nf.Node < 0 || nf.Node >= cfg.Nodes {
				return fail("node %d out of range [0,%d)", nf.Node, cfg.Nodes)
			}
		case FaultRackUplink:
			if nf.Rack < 0 || nf.Rack >= cfg.Racks() {
				return fail("rack %d out of range [0,%d)", nf.Rack, cfg.Racks())
			}
		case FaultCore:
			// No target id.
		case FaultPartition:
			if len(nf.Nodes) == 0 {
				return fail("partition has an empty side")
			}
			seen := map[int]bool{}
			for _, n := range nf.Nodes {
				if n < 0 || n >= cfg.Nodes {
					return fail("partition node %d out of range [0,%d)", n, cfg.Nodes)
				}
				if seen[n] {
					return fail("partition lists node %d twice", n)
				}
				seen[n] = true
			}
			if len(seen) == cfg.Nodes {
				return fail("partition side covers every node; nothing is cut")
			}
			if nf.Factor != 0 {
				return fail("partition factor %g must be zero; a partition is a total cut", nf.Factor)
			}
		default:
			return fail("unknown fault kind %q", nf.Kind)
		}
		if nf.Start < 0 {
			return fail("negative start time %g", float64(nf.Start))
		}
		if nf.End <= nf.Start {
			return fail("window [%g,%g) is empty or inverted", float64(nf.Start), float64(nf.End))
		}
		if nf.Factor != nf.Factor || nf.Factor < 0 || nf.Factor >= 1 {
			return fail("factor %g outside [0, 1)", nf.Factor)
		}
		tgt := nf.target()
		for _, w := range byTarget[tgt] {
			if nf.Start < w.end && w.start < nf.End {
				return fail("window overlaps fault %d on the same target (%s)", w.index, tgt)
			}
		}
		byTarget[tgt] = append(byTarget[tgt], window{index: i, start: nf.Start, end: nf.End})
	}
	return nil
}

// Sorted returns the faults ordered by start time; faults starting at
// equal times keep their plan order, so replaying is deterministic.
func (p *NetworkPlan) Sorted() []NetFault {
	if p == nil {
		return nil
	}
	out := append([]NetFault(nil), p.Faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// NextTransition returns the earliest fault-window boundary (a start
// or an end) strictly after t, and whether one exists. Degraded-mode
// callers block until the next transition: the overlay is constant in
// between, so nothing can change earlier.
func (p *NetworkPlan) NextTransition(t simtime.Time) (simtime.Time, bool) {
	if p == nil {
		return 0, false
	}
	var next simtime.Time
	found := false
	consider := func(b simtime.Time) {
		if b > t && (!found || b < next) {
			next, found = b, true
		}
	}
	for _, nf := range p.Faults {
		consider(nf.Start)
		consider(nf.End)
	}
	return next, found
}

// ActiveAt returns the faults whose windows cover time t, in plan
// order.
func (p *NetworkPlan) ActiveAt(t simtime.Time) []NetFault {
	if p == nil {
		return nil
	}
	var out []NetFault
	for _, nf := range p.Faults {
		if nf.activeAt(t) {
			out = append(out, nf)
		}
	}
	return out
}

// TransferErrorKind classifies a failed transfer attempt.
type TransferErrorKind string

const (
	// TransferTimeout: the transfer would have outlived the caller's
	// deadline. Produced by the engine, which knows the deadline.
	TransferTimeout TransferErrorKind = "timeout"
	// TransferUnreachable: an active outage or partition severs the
	// path, so no deadline would help. Produced by the fabric.
	TransferUnreachable TransferErrorKind = "unreachable"
	// TransferCorrupt: every attempt inside the corruption retry budget
	// arrived with a bad checksum. Produced by the engine, which owns
	// checksum verification (see the corrupt package).
	TransferCorrupt TransferErrorKind = "corrupt"
)

// TransferError is the typed failure a degraded transfer returns. Src
// and Dst identify the first offending flow; At is the attempt time.
type TransferError struct {
	Kind     TransferErrorKind
	Src, Dst int
	At       simtime.Time
}

func (e *TransferError) Error() string {
	return fmt.Sprintf("simnet: transfer %d->%d %s at t=%g", e.Src, e.Dst, e.Kind, float64(e.At))
}

// overlay is the capacity picture at one instant: per-resource
// multipliers (absent means 1) and active partition cuts.
type overlay struct {
	node map[int]float64
	rack map[int]float64
	core float64 // 1 when unfaulted
	cuts []map[int]bool
}

// overlayAt builds the overlay active at time t; ok is false when no
// fault is active (callers then take the exact unfaulted path).
func (f *Fabric) overlayAt(t simtime.Time) (overlay, bool) {
	if f.netplan == nil {
		return overlay{}, false
	}
	ov := overlay{core: 1}
	any := false
	for _, nf := range f.netplan.Faults {
		if !nf.activeAt(t) {
			continue
		}
		any = true
		switch nf.Kind {
		case FaultNodeLink:
			if ov.node == nil {
				ov.node = map[int]float64{}
			}
			ov.node[nf.Node] = nf.Factor
		case FaultRackUplink:
			if ov.rack == nil {
				ov.rack = map[int]float64{}
			}
			ov.rack[nf.Rack] = nf.Factor
		case FaultCore:
			ov.core = nf.Factor
		case FaultPartition:
			side := make(map[int]bool, len(nf.Nodes))
			for _, n := range nf.Nodes {
				side[n] = true
			}
			ov.cuts = append(ov.cuts, side)
		}
	}
	return ov, any
}

// nodeFactor returns the capacity multiplier for node n's NIC.
func (ov overlay) nodeFactor(n int) float64 {
	if v, ok := ov.node[n]; ok {
		return v
	}
	return 1
}

// rackFactor returns the capacity multiplier for rack r's uplink.
func (ov overlay) rackFactor(r int) float64 {
	if v, ok := ov.rack[r]; ok {
		return v
	}
	return 1
}

// severs reports whether the overlay makes src->dst unreachable: an
// endpoint NIC is out, a traversed rack uplink or the core is out for
// a cross-rack path, or a partition cut separates the endpoints.
func (ov overlay) severs(src, dst, srcRack, dstRack int) bool {
	if ov.nodeFactor(src) == 0 || ov.nodeFactor(dst) == 0 {
		return true
	}
	if srcRack != dstRack {
		if ov.rackFactor(srcRack) == 0 || ov.rackFactor(dstRack) == 0 || ov.core == 0 {
			return true
		}
	}
	for _, side := range ov.cuts {
		if side[src] != side[dst] {
			return true
		}
	}
	return false
}

// SetNetworkPlan registers a network fault script on the fabric. Pass
// nil to clear. It panics on an invalid plan; use NetworkPlan.Validate
// for the typed error.
func (f *Fabric) SetNetworkPlan(p *NetworkPlan) {
	if err := p.Validate(f.cfg); err != nil {
		panic(err)
	}
	f.netplan = p
}

// NetworkPlan returns the registered network fault script (nil when
// none).
func (f *Fabric) NetworkPlan() *NetworkPlan { return f.netplan }

// ReachableAt reports whether a transfer src->dst can make progress at
// time t under the registered network plan. Src == dst is always
// reachable (in-memory hand-off).
func (f *Fabric) ReachableAt(src, dst int, t simtime.Time) bool {
	if src == dst {
		return true
	}
	ov, any := f.overlayAt(t)
	if !any {
		return true
	}
	return !ov.severs(src, dst, f.Rack(src), f.Rack(dst))
}

// UnreachableFrom returns the set of nodes that cannot be reached from
// node `from` at time t under the registered network plan. The result
// is nil when everything is reachable.
func (f *Fabric) UnreachableFrom(from int, t simtime.Time) map[int]bool {
	ov, any := f.overlayAt(t)
	if !any {
		return nil
	}
	fr := f.Rack(from)
	var cut map[int]bool
	for n := 0; n < f.cfg.Nodes; n++ {
		if n == from {
			continue
		}
		if ov.severs(from, n, fr, f.Rack(n)) {
			if cut == nil {
				cut = map[int]bool{}
			}
			cut[n] = true
		}
	}
	return cut
}

// TransferTimeAt computes, without recording any traffic, how long the
// given concurrent flows take when started at time t under the
// registered network plan. When no fault window covers t it delegates
// to TransferTime, so an idle or absent plan is float-identical to an
// unfaulted fabric. If an active outage or partition severs any flow's
// path it returns a typed *TransferError (unreachable) naming the
// first offending flow; brownouts stretch the time instead. Faults are
// evaluated piecewise-constant at t: a window opening or closing
// mid-transfer does not re-price it.
func (f *Fabric) TransferTimeAt(flows []Flow, t simtime.Time) (simtime.Duration, error) {
	ov, any := f.overlayAt(t)
	if !any {
		return f.TransferTime(flows), nil
	}
	up := make(map[int]int64)
	down := make(map[int]int64)
	rackUp := make(map[int]int64)
	rackDown := make(map[int]int64)
	var core int64
	for _, fl := range flows {
		if fl.Bytes < 0 {
			panic("simnet: negative flow size")
		}
		if fl.Src == fl.Dst || fl.Bytes == 0 {
			continue
		}
		sr, dr := f.Rack(fl.Src), f.Rack(fl.Dst)
		if ov.severs(fl.Src, fl.Dst, sr, dr) {
			return 0, &TransferError{Kind: TransferUnreachable, Src: fl.Src, Dst: fl.Dst, At: t}
		}
		up[fl.Src] += fl.Bytes
		down[fl.Dst] += fl.Bytes
		if sr != dr {
			core += fl.Bytes
			rackUp[sr] += fl.Bytes
			rackDown[dr] += fl.Bytes
		}
	}
	// Identical to TransferTime, with each resource's capacity further
	// scaled by its active brownout factor.
	var worst simtime.Duration
	for n, b := range up {
		worst = max(worst, simtime.Duration(float64(b)/(f.cfg.NodeBandwidth*residual(f.bgNodeUp[n])*ov.nodeFactor(n))))
	}
	for n, b := range down {
		worst = max(worst, simtime.Duration(float64(b)/(f.cfg.NodeBandwidth*residual(f.bgNodeDown[n])*ov.nodeFactor(n))))
	}
	for r, b := range rackUp {
		worst = max(worst, simtime.Duration(float64(b)/(f.cfg.RackBandwidth*residual(f.bgRackUp[r])*ov.rackFactor(r))))
	}
	for r, b := range rackDown {
		worst = max(worst, simtime.Duration(float64(b)/(f.cfg.RackBandwidth*residual(f.bgRackDown[r])*ov.rackFactor(r))))
	}
	worst = max(worst, simtime.Duration(float64(core)/(f.cfg.CoreBandwidth*residual(f.bgCore)*ov.core)))
	return worst, nil
}

package simnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func approx(a, b simtime.Duration) bool { return math.Abs(float64(a-b)) < 1e-6 }

func TestMaxMinSingleFlow(t *testing.T) {
	f := New(testConfig())
	d := f.MaxMinTransferTime([]Flow{{Src: 0, Dst: 1, Bytes: 1000}})
	if !approx(d, 10) { // 1000 B at 100 B/s NIC
		t.Fatalf("duration = %v, want 10", d)
	}
}

func TestMaxMinSharedDownlinkSerializes(t *testing.T) {
	f := New(testConfig())
	// Two equal flows into node 0: each gets half the downlink, both
	// finish together at 2x the solo time.
	d := f.MaxMinTransferTime([]Flow{
		{Src: 1, Dst: 0, Bytes: 1000},
		{Src: 2, Dst: 0, Bytes: 1000},
	})
	if !approx(d, 20) {
		t.Fatalf("duration = %v, want 20", d)
	}
}

func TestMaxMinProgressiveSpeedup(t *testing.T) {
	f := New(testConfig())
	// A short and a long flow share a downlink. The short one finishes
	// at t=10 (500 B at 50 B/s); the long one then gets the full link:
	// 500 B done at t=10, 1500 left at 100 B/s -> t=25.
	d := f.MaxMinTransferTime([]Flow{
		{Src: 1, Dst: 0, Bytes: 500},
		{Src: 2, Dst: 0, Bytes: 2000},
	})
	if !approx(d, 25) {
		t.Fatalf("duration = %v, want 25", d)
	}
}

func TestMaxMinDisjointFlowsRunInParallel(t *testing.T) {
	f := New(testConfig())
	d := f.MaxMinTransferTime([]Flow{
		{Src: 0, Dst: 1, Bytes: 1000},
		{Src: 2, Dst: 3, Bytes: 1000},
	})
	if !approx(d, 10) {
		t.Fatalf("duration = %v, want 10", d)
	}
}

func TestMaxMinLocalAndEmptyFlowsFree(t *testing.T) {
	f := New(testConfig())
	if d := f.MaxMinTransferTime([]Flow{{Src: 1, Dst: 1, Bytes: 500}, {Src: 0, Dst: 1, Bytes: 0}}); d != 0 {
		t.Fatalf("duration = %v, want 0", d)
	}
	if d := f.MaxMinTransferTime(nil); d != 0 {
		t.Fatalf("duration = %v, want 0", d)
	}
}

func TestMaxMinCrossRackUsesCore(t *testing.T) {
	cfg := testConfig()
	cfg.CoreBandwidth = 50 // slower than any NIC
	f := New(cfg)
	d := f.MaxMinTransferTime([]Flow{{Src: 0, Dst: 4, Bytes: 1000}})
	if !approx(d, 20) { // 1000/50
		t.Fatalf("duration = %v, want 20", d)
	}
}

// Property: the max-min completion time is never below the bottleneck
// bound and never above fully serialized execution.
func TestQuickMaxMinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(testConfig())
		n := rng.Intn(12) + 1
		flows := make([]Flow, n)
		var serial simtime.Duration
		for i := range flows {
			flows[i] = Flow{Src: rng.Intn(8), Dst: rng.Intn(8), Bytes: int64(rng.Intn(5000))}
			serial += fab.TransferTime(flows[i : i+1])
		}
		mm := fab.MaxMinTransferTime(flows)
		lower := fab.TransferTime(flows)
		return mm >= lower-1e-6 && mm <= serial+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min time scales linearly when every flow scales.
// (Per-flow monotonicity is NOT a property of max-min: growing one flow
// keeps it active longer, and the extra contention on its links can
// *raise* the fair share granted to flows elsewhere, finishing the
// whole set earlier. Scaling all flows together preserves the active
// sets, so every phase just stretches by the same factor.)
func TestQuickMaxMinScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(testConfig())
		n := rng.Intn(8) + 1
		flows := make([]Flow, n)
		scaled := make([]Flow, n)
		for i := range flows {
			flows[i] = Flow{Src: rng.Intn(8), Dst: rng.Intn(8), Bytes: int64(rng.Intn(3000) + 1)}
			scaled[i] = flows[i]
			scaled[i].Bytes *= 3
		}
		base := fab.MaxMinTransferTime(flows)
		tripled := fab.MaxMinTransferTime(scaled)
		return tripled >= 3*base-1e-6 && tripled <= 3*base+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package simnet

import (
	"errors"
	"testing"

	"repro/internal/simtime"
)

// TestNetworkPlanValidation drives every rejected fault shape through
// Validate and checks that the typed *PlanError points at the offending
// fault.
func TestNetworkPlanValidation(t *testing.T) {
	cfg := testConfig() // 8 nodes, 2 racks
	cases := []struct {
		name  string
		fault NetFault
	}{
		{"node out of range", NetFault{Kind: FaultNodeLink, Node: 8, Start: 0, End: 1}},
		{"negative node", NetFault{Kind: FaultNodeLink, Node: -1, Start: 0, End: 1}},
		{"rack out of range", NetFault{Kind: FaultRackUplink, Rack: 2, Start: 0, End: 1}},
		{"empty partition side", NetFault{Kind: FaultPartition, Start: 0, End: 1}},
		{"partition node out of range", NetFault{Kind: FaultPartition, Nodes: []int{9}, Start: 0, End: 1}},
		{"partition node listed twice", NetFault{Kind: FaultPartition, Nodes: []int{1, 1}, Start: 0, End: 1}},
		{"partition covers everything", NetFault{Kind: FaultPartition, Nodes: []int{0, 1, 2, 3, 4, 5, 6, 7}, Start: 0, End: 1}},
		{"partition with nonzero factor", NetFault{Kind: FaultPartition, Nodes: []int{0}, Start: 0, End: 1, Factor: 0.5}},
		{"unknown kind", NetFault{Kind: "wat", Start: 0, End: 1}},
		{"negative start", NetFault{Kind: FaultCore, Start: -1, End: 1}},
		{"empty window", NetFault{Kind: FaultCore, Start: 2, End: 2}},
		{"inverted window", NetFault{Kind: FaultCore, Start: 3, End: 2}},
		{"negative factor", NetFault{Kind: FaultCore, Start: 0, End: 1, Factor: -0.1}},
		{"factor one", NetFault{Kind: FaultCore, Start: 0, End: 1, Factor: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &NetworkPlan{Faults: []NetFault{
				{Kind: FaultCore, Start: 100, End: 101}, // a valid decoy at index 0
				tc.fault,
			}}
			err := p.Validate(cfg)
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *PlanError", err)
			}
			if pe.Index != 1 {
				t.Fatalf("PlanError.Index = %d, want 1 (%v)", pe.Index, err)
			}
		})
	}
}

func TestNetworkPlanValidationOverlap(t *testing.T) {
	cfg := testConfig()
	p := &NetworkPlan{Faults: []NetFault{
		{Kind: FaultRackUplink, Rack: 0, Start: 0, End: 5},
		{Kind: FaultRackUplink, Rack: 1, Start: 2, End: 3}, // different target: fine
		{Kind: FaultRackUplink, Rack: 0, Start: 4, End: 6}, // overlaps fault 0
	}}
	err := p.Validate(cfg)
	var pe *PlanError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v, want *PlanError at index 2", err)
	}
	// Back-to-back windows on one target are legal: [0,5) then [5,8).
	p.Faults[2] = NetFault{Kind: FaultRackUplink, Rack: 0, Start: 5, End: 8}
	if err := p.Validate(cfg); err != nil {
		t.Fatalf("abutting windows rejected: %v", err)
	}
	// Two partitions always share the "partition" target.
	p = &NetworkPlan{Faults: []NetFault{
		{Kind: FaultPartition, Nodes: []int{0}, Start: 0, End: 5},
		{Kind: FaultPartition, Nodes: []int{7}, Start: 3, End: 4},
	}}
	if err := p.Validate(cfg); err == nil {
		t.Fatal("overlapping partitions accepted")
	}
	if p := (*NetworkPlan)(nil); p.Validate(cfg) != nil {
		t.Fatal("nil plan rejected")
	}
}

// TestSetNetworkPlanPanicsOnInvalid pins registration-time enforcement:
// a plan naming a nonexistent resource never reaches the fabric.
func TestSetNetworkPlanPanicsOnInvalid(t *testing.T) {
	f := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("SetNetworkPlan accepted an invalid plan")
		}
	}()
	f.SetNetworkPlan(&NetworkPlan{Faults: []NetFault{{Kind: FaultNodeLink, Node: 99, Start: 0, End: 1}}})
}

// TestTransferTimeAtDelegatesOutsideWindows is the zero-fault no-op
// guarantee: with no window covering the start time — idle plan or no
// plan — TransferTimeAt must be float-identical to TransferTime.
func TestTransferTimeAtDelegatesOutsideWindows(t *testing.T) {
	flows := []Flow{
		{Src: 0, Dst: 4, Bytes: 1234},
		{Src: 1, Dst: 5, Bytes: 999},
		{Src: 2, Dst: 3, Bytes: 777},
	}
	clean := New(testConfig())
	want := clean.TransferTime(flows)

	planned := New(testConfig())
	planned.SetNetworkPlan(&NetworkPlan{Faults: []NetFault{
		{Kind: FaultCore, Start: 50, End: 60},
		{Kind: FaultNodeLink, Node: 0, Start: 70, End: 80},
	}})
	for _, at := range []simtime.Time{0, 49.999, 60, 65, 1000} {
		got, err := planned.TransferTimeAt(flows, at)
		if err != nil {
			t.Fatalf("t=%g: %v", float64(at), err)
		}
		if got != want {
			t.Fatalf("t=%g: TransferTimeAt = %v, TransferTime = %v (must be identical)", float64(at), got, want)
		}
	}
	none := New(testConfig())
	if got, err := none.TransferTimeAt(flows, 55); err != nil || got != want {
		t.Fatalf("nil plan: got %v, %v; want %v, nil", got, err, want)
	}
}

// TestTransferTimeAtBrownout prices a transfer under a half-capacity
// core window: cross-rack slows down exactly by the factor, intra-rack
// is untouched.
func TestTransferTimeAtBrownout(t *testing.T) {
	cfg := testConfig()
	cfg.RackBandwidth = 10000 // uplinks out of the way: core is the cross-rack bottleneck
	f := New(cfg)
	f.SetNetworkPlan(&NetworkPlan{Faults: []NetFault{
		{Kind: FaultCore, Start: 10, End: 20, Factor: 0.5},
	}})
	cross := []Flow{
		{Src: 0, Dst: 4, Bytes: 1000},
		{Src: 1, Dst: 5, Bytes: 1000},
		{Src: 2, Dst: 6, Bytes: 1000},
		{Src: 3, Dst: 7, Bytes: 1000},
	}
	healthy, err := f.TransferTimeAt(cross, 0)
	if err != nil {
		t.Fatal(err)
	}
	browned, err := f.TransferTimeAt(cross, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: core carries 4000 B at 200 B/s = 20 s. At factor 0.5 the
	// core runs at 100 B/s = 40 s.
	if healthy != simtime.Duration(20) || browned != simtime.Duration(40) {
		t.Fatalf("healthy = %v, browned = %v; want 20, 40", healthy, browned)
	}
	intra := []Flow{{Src: 0, Dst: 1, Bytes: 1000}}
	same, err := f.TransferTimeAt(intra, 15)
	if err != nil {
		t.Fatal(err)
	}
	if want := f.TransferTime(intra); same != want {
		t.Fatalf("intra-rack transfer repriced under a core brownout: %v vs %v", same, want)
	}
}

// TestTransferTimeAtSevered covers each outage kind's reachability cut
// and the typed error it produces.
func TestTransferTimeAtSevered(t *testing.T) {
	cases := []struct {
		name     string
		fault    NetFault
		src, dst int
		cut      bool
	}{
		{"node NIC out cuts the node", NetFault{Kind: FaultNodeLink, Node: 1, Start: 0, End: 10}, 0, 1, true},
		{"node NIC out spares others", NetFault{Kind: FaultNodeLink, Node: 1, Start: 0, End: 10}, 0, 2, false},
		{"rack uplink out cuts cross-rack", NetFault{Kind: FaultRackUplink, Rack: 0, Start: 0, End: 10}, 0, 4, true},
		{"rack uplink out spares intra-rack", NetFault{Kind: FaultRackUplink, Rack: 0, Start: 0, End: 10}, 0, 1, false},
		{"core out cuts cross-rack", NetFault{Kind: FaultCore, Start: 0, End: 10}, 0, 4, true},
		{"core out spares intra-rack", NetFault{Kind: FaultCore, Start: 0, End: 10}, 0, 1, false},
		{"partition cuts across the side", NetFault{Kind: FaultPartition, Nodes: []int{0, 1}, Start: 0, End: 10}, 1, 2, true},
		{"partition spares within the side", NetFault{Kind: FaultPartition, Nodes: []int{0, 1}, Start: 0, End: 10}, 0, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := New(testConfig())
			f.SetNetworkPlan(&NetworkPlan{Faults: []NetFault{tc.fault}})
			_, err := f.TransferTimeAt([]Flow{{Src: tc.src, Dst: tc.dst, Bytes: 100}}, 5)
			if got := f.ReachableAt(tc.src, tc.dst, 5); got != !tc.cut {
				t.Fatalf("ReachableAt = %v, want %v", got, !tc.cut)
			}
			if !tc.cut {
				if err != nil {
					t.Fatalf("uncut path errored: %v", err)
				}
				return
			}
			var te *TransferError
			if !errors.As(err, &te) {
				t.Fatalf("err = %v, want *TransferError", err)
			}
			if te.Kind != TransferUnreachable || te.Src != tc.src || te.Dst != tc.dst || te.At != 5 {
				t.Fatalf("TransferError = %+v", te)
			}
			// Outside the window the same path flows freely.
			if _, err := f.TransferTimeAt([]Flow{{Src: tc.src, Dst: tc.dst, Bytes: 100}}, 10); err != nil {
				t.Fatalf("path still cut after window end: %v", err)
			}
		})
	}
}

func TestUnreachableFrom(t *testing.T) {
	f := New(testConfig())
	f.SetNetworkPlan(&NetworkPlan{Faults: []NetFault{
		{Kind: FaultPartition, Nodes: []int{0, 1, 2}, Start: 0, End: 10},
	}})
	cut := f.UnreachableFrom(0, 5)
	if len(cut) != 5 {
		t.Fatalf("UnreachableFrom(0) = %v, want the 5 far-side nodes", cut)
	}
	for n := 3; n < 8; n++ {
		if !cut[n] {
			t.Fatalf("node %d missing from cut set %v", n, cut)
		}
	}
	if f.UnreachableFrom(0, 20) != nil {
		t.Fatal("cut set nonempty outside the window")
	}
	if !f.ReachableAt(3, 3, 5) {
		t.Fatal("src == dst must always be reachable")
	}
}

func TestNextTransition(t *testing.T) {
	p := &NetworkPlan{Faults: []NetFault{
		{Kind: FaultCore, Start: 10, End: 20},
		{Kind: FaultNodeLink, Node: 0, Start: 15, End: 30},
	}}
	cases := []struct {
		at   simtime.Time
		want simtime.Time
		ok   bool
	}{
		{0, 10, true},
		{10, 15, true}, // strictly after t
		{15, 20, true},
		{20, 30, true},
		{30, 0, false},
	}
	for _, tc := range cases {
		got, ok := p.NextTransition(tc.at)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Fatalf("NextTransition(%g) = %g, %v; want %g, %v", float64(tc.at), float64(got), ok, float64(tc.want), tc.ok)
		}
	}
	if _, ok := (*NetworkPlan)(nil).NextTransition(0); ok {
		t.Fatal("nil plan has a transition")
	}
}

// Package simnet models the cluster interconnect: a two-level tree of
// node NICs feeding rack switches that attach to an (oversubscribed)
// core switch. This is the topology whose bisection bandwidth the PIC
// paper identifies as the scarce resource stressed by MapReduce shuffle
// traffic.
//
// The fabric uses a bottleneck transfer model: the time for a set of
// concurrent flows is the utilization of the most-loaded resource (a node
// uplink or downlink, a rack uplink or downlink, or the core). The model
// is deterministic, conserves bytes, and captures the property that
// matters for PIC — cross-rack traffic contends for core bandwidth that
// does not grow with cluster size, while intra-node transfers are free.
package simnet

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Config describes the fabric topology and link speeds.
type Config struct {
	// Nodes is the number of compute nodes attached to the fabric.
	Nodes int
	// RackSize is the number of nodes per rack. The last rack may be
	// partially filled.
	RackSize int
	// NodeBandwidth is the full-duplex NIC speed per direction, in
	// bytes per second (1 GbE ≈ 125e6).
	NodeBandwidth float64
	// CoreBandwidth is the aggregate bisection bandwidth of the core,
	// in bytes per second. Cross-rack traffic in either direction
	// shares it.
	CoreBandwidth float64
	// RackBandwidth is the uplink speed of each rack switch to the
	// core, per direction, in bytes per second.
	RackBandwidth float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("simnet: Nodes = %d, must be positive", c.Nodes)
	case c.RackSize <= 0:
		return fmt.Errorf("simnet: RackSize = %d, must be positive", c.RackSize)
	case c.NodeBandwidth <= 0:
		return fmt.Errorf("simnet: NodeBandwidth = %g, must be positive", c.NodeBandwidth)
	case c.CoreBandwidth <= 0:
		return fmt.Errorf("simnet: CoreBandwidth = %g, must be positive", c.CoreBandwidth)
	case c.RackBandwidth <= 0:
		return fmt.Errorf("simnet: RackBandwidth = %g, must be positive", c.RackBandwidth)
	}
	return nil
}

// Racks reports the number of racks implied by the configuration.
func (c Config) Racks() int { return (c.Nodes + c.RackSize - 1) / c.RackSize }

// Flow is a point-to-point transfer of Bytes from node Src to node Dst.
// A flow with Src == Dst is an in-memory hand-off: it takes no time and
// is not counted as network traffic.
type Flow struct {
	Src, Dst int
	Bytes    int64
}

// Counters accumulates the traffic a fabric has carried. All fields are
// bytes.
type Counters struct {
	// Total is every byte that crossed a node boundary.
	Total int64
	// CrossRack is the subset of Total that crossed the core switch.
	CrossRack int64
	// IntraRack is the subset of Total that stayed within one rack.
	IntraRack int64
	// Local is bytes "transferred" within a single node (free).
	Local int64
	// Transfers counts network flows (Src != Dst, Bytes > 0).
	Transfers int64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Total += o.Total
	c.CrossRack += o.CrossRack
	c.IntraRack += o.IntraRack
	c.Local += o.Local
	c.Transfers += o.Transfers
}

// Utilization accumulates per-link busy time: for every byte the fabric
// carries, each traversed resource is busy bytes/bandwidth seconds.
// Busy time is charged from the same Record calls that feed Counters, so
// the two views are always consistent. Because concurrent flows share
// links, busy time is transmission time, not wall time: a link's busy
// seconds can exceed the simulated span when the simulation overlaps
// transfers on it.
type Utilization struct {
	// NodeUp and NodeDown are per-node NIC busy seconds (egress and
	// ingress), indexed by global node id.
	NodeUp, NodeDown []simtime.Duration
	// RackUp and RackDown are per-rack uplink busy seconds, indexed by
	// rack id.
	RackUp, RackDown []simtime.Duration
	// Core is bisection busy seconds: cross-rack bytes over the core
	// bandwidth.
	Core simtime.Duration
}

// MaxNode returns the busiest node's combined up+down busy time.
func (u Utilization) MaxNode() simtime.Duration {
	var worst simtime.Duration
	for i := range u.NodeUp {
		if b := u.NodeUp[i] + u.NodeDown[i]; b > worst {
			worst = b
		}
	}
	return worst
}

// MaxRack returns the busiest rack uplink's combined busy time.
func (u Utilization) MaxRack() simtime.Duration {
	var worst simtime.Duration
	for i := range u.RackUp {
		if b := u.RackUp[i] + u.RackDown[i]; b > worst {
			worst = b
		}
	}
	return worst
}

// TenantLoad is the sustained background utilization one co-tenant
// imposes on the fabric while its traffic overlaps other jobs', as
// fractions of each capacity class in [0, 1]. Missing map entries mean
// zero. Registered loads reduce the capacity the transfer-time models
// see: this is how concurrent jobs on one shared cluster slow each
// other down on the links they share.
type TenantLoad struct {
	// NodeUp and NodeDown are per-node NIC fractions (egress and
	// ingress), keyed by global node id.
	NodeUp, NodeDown map[int]float64
	// RackUp and RackDown are per-rack uplink fractions, keyed by rack.
	RackUp, RackDown map[int]float64
	// Core is the fraction of the core bisection bandwidth consumed.
	Core float64
}

// minResidualCapacity bounds how far background load can squeeze a
// link: even a saturated co-tenant leaves 5% of the capacity, the way
// fair queueing guarantees a throttled flow forward progress.
const minResidualCapacity = 0.05

// residual converts an aggregate background share into the capacity
// fraction left for a foreground transfer.
func residual(share float64) float64 {
	if r := 1 - share; r > minResidualCapacity {
		return r
	}
	return minResidualCapacity
}

// Fabric is an instantiated interconnect with traffic counters.
type Fabric struct {
	cfg      Config
	counters Counters
	util     Utilization

	// tenants holds registered background loads; the bg* fields are the
	// per-resource aggregates, recomputed in sorted-tenant order on
	// every change so summation order (and therefore float rounding) is
	// deterministic.
	tenants              map[string]TenantLoad
	bgNodeUp, bgNodeDown []float64
	bgRackUp, bgRackDown []float64
	bgCore               float64

	// netplan is the registered network fault script (nil when none);
	// see netplan.go.
	netplan *NetworkPlan
}

// New builds a fabric from cfg. It panics if cfg is invalid; topology
// parameters come from experiment code, not user input.
func New(cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fabric{cfg: cfg, util: Utilization{
		NodeUp:   make([]simtime.Duration, cfg.Nodes),
		NodeDown: make([]simtime.Duration, cfg.Nodes),
		RackUp:   make([]simtime.Duration, cfg.Racks()),
		RackDown: make([]simtime.Duration, cfg.Racks()),
	},
		tenants:    map[string]TenantLoad{},
		bgNodeUp:   make([]float64, cfg.Nodes),
		bgNodeDown: make([]float64, cfg.Nodes),
		bgRackUp:   make([]float64, cfg.Racks()),
		bgRackDown: make([]float64, cfg.Racks()),
	}
}

// validateShare panics on an unusable load fraction; loads come from
// scheduler code, not user input.
func (f *Fabric) validateShare(v float64, what string) {
	if v != v || v < 0 || v > 1 {
		panic(fmt.Sprintf("simnet: tenant load %s = %g outside [0, 1]", what, v))
	}
}

// SetTenantLoad registers (or replaces) the background load of the
// co-tenant identified by id. Fractions must lie in [0, 1]; per-node and
// per-rack indices must exist in the topology.
func (f *Fabric) SetTenantLoad(id string, load TenantLoad) {
	f.validateShare(load.Core, "Core")
	for n, v := range load.NodeUp {
		f.Rack(n) // bounds check
		f.validateShare(v, fmt.Sprintf("NodeUp[%d]", n))
	}
	for n, v := range load.NodeDown {
		f.Rack(n)
		f.validateShare(v, fmt.Sprintf("NodeDown[%d]", n))
	}
	racks := f.cfg.Racks()
	for r, v := range load.RackUp {
		if r < 0 || r >= racks {
			panic(fmt.Sprintf("simnet: rack %d out of range [0,%d)", r, racks))
		}
		f.validateShare(v, fmt.Sprintf("RackUp[%d]", r))
	}
	for r, v := range load.RackDown {
		if r < 0 || r >= racks {
			panic(fmt.Sprintf("simnet: rack %d out of range [0,%d)", r, racks))
		}
		f.validateShare(v, fmt.Sprintf("RackDown[%d]", r))
	}
	f.tenants[id] = load
	f.recomputeBackground()
}

// ClearTenantLoad removes a registered background load. Clearing an
// unknown id is a no-op.
func (f *Fabric) ClearTenantLoad(id string) {
	if _, ok := f.tenants[id]; !ok {
		return
	}
	delete(f.tenants, id)
	f.recomputeBackground()
}

// ClearAllTenantLoads removes every registered background load.
func (f *Fabric) ClearAllTenantLoads() {
	if len(f.tenants) == 0 {
		return
	}
	f.tenants = map[string]TenantLoad{}
	f.recomputeBackground()
}

// TenantLoads reports the registered co-tenant ids, sorted.
func (f *Fabric) TenantLoads() []string {
	out := make([]string, 0, len(f.tenants))
	for id := range f.tenants {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CoreLoad reports the aggregate background share of the core bisection.
func (f *Fabric) CoreLoad() float64 { return f.bgCore }

// recomputeBackground rebuilds the per-resource aggregates from scratch
// in sorted-tenant order.
func (f *Fabric) recomputeBackground() {
	clear(f.bgNodeUp)
	clear(f.bgNodeDown)
	clear(f.bgRackUp)
	clear(f.bgRackDown)
	f.bgCore = 0
	for _, id := range f.TenantLoads() {
		load := f.tenants[id]
		for n, v := range load.NodeUp {
			f.bgNodeUp[n] += v
		}
		for n, v := range load.NodeDown {
			f.bgNodeDown[n] += v
		}
		for r, v := range load.RackUp {
			f.bgRackUp[r] += v
		}
		for r, v := range load.RackDown {
			f.bgRackDown[r] += v
		}
		f.bgCore += load.Core
	}
	// Map iteration order inside one tenant's load is the remaining
	// nondeterminism; summing each map into its slot independently is
	// order-sensitive only across tenants, which the sorted loop fixes.
	// Within one map the additions target distinct slots, so order does
	// not matter.
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Rack reports the rack that node n belongs to.
func (f *Fabric) Rack(n int) int {
	if n < 0 || n >= f.cfg.Nodes {
		panic(fmt.Sprintf("simnet: node %d out of range [0,%d)", n, f.cfg.Nodes))
	}
	return n / f.cfg.RackSize
}

// Counters returns a snapshot of the traffic carried so far.
func (f *Fabric) Counters() Counters { return f.counters }

// Utilization returns a snapshot of the per-link busy time accumulated
// so far.
func (f *Fabric) Utilization() Utilization {
	u := f.util
	u.NodeUp = append([]simtime.Duration(nil), f.util.NodeUp...)
	u.NodeDown = append([]simtime.Duration(nil), f.util.NodeDown...)
	u.RackUp = append([]simtime.Duration(nil), f.util.RackUp...)
	u.RackDown = append([]simtime.Duration(nil), f.util.RackDown...)
	return u
}

// CoreBusy returns the accumulated bisection busy time without copying
// the per-link slices — cheap enough for event-boundary sampling.
func (f *Fabric) CoreBusy() simtime.Duration { return f.util.Core }

// ResetCounters zeroes the traffic counters.
func (f *Fabric) ResetCounters() { f.counters = Counters{} }

// TransferTime computes, without recording any traffic, how long the
// given set of concurrent flows takes under the bottleneck model.
func (f *Fabric) TransferTime(flows []Flow) simtime.Duration {
	up := make(map[int]int64)   // node -> egress bytes
	down := make(map[int]int64) // node -> ingress bytes
	rackUp := make(map[int]int64)
	rackDown := make(map[int]int64)
	var core int64
	for _, fl := range flows {
		if fl.Bytes < 0 {
			panic("simnet: negative flow size")
		}
		if fl.Src == fl.Dst || fl.Bytes == 0 {
			continue
		}
		up[fl.Src] += fl.Bytes
		down[fl.Dst] += fl.Bytes
		sr, dr := f.Rack(fl.Src), f.Rack(fl.Dst)
		if sr != dr {
			core += fl.Bytes
			rackUp[sr] += fl.Bytes
			rackDown[dr] += fl.Bytes
		}
	}
	// Each resource serves the transfer with whatever capacity the
	// registered co-tenant loads leave it.
	var worst simtime.Duration
	for n, b := range up {
		worst = max(worst, simtime.Duration(float64(b)/(f.cfg.NodeBandwidth*residual(f.bgNodeUp[n]))))
	}
	for n, b := range down {
		worst = max(worst, simtime.Duration(float64(b)/(f.cfg.NodeBandwidth*residual(f.bgNodeDown[n]))))
	}
	for r, b := range rackUp {
		worst = max(worst, simtime.Duration(float64(b)/(f.cfg.RackBandwidth*residual(f.bgRackUp[r]))))
	}
	for r, b := range rackDown {
		worst = max(worst, simtime.Duration(float64(b)/(f.cfg.RackBandwidth*residual(f.bgRackDown[r]))))
	}
	worst = max(worst, simtime.Duration(float64(core)/(f.cfg.CoreBandwidth*residual(f.bgCore))))
	return worst
}

// Transfer records the traffic of the given concurrent flows and returns
// the time they take. It is the combination of Record and TransferTime.
func (f *Fabric) Transfer(flows []Flow) simtime.Duration {
	f.Record(flows)
	return f.TransferTime(flows)
}

// Record accumulates the byte counters for flows without computing a
// duration. Use it when a higher-level model charges time separately.
func (f *Fabric) Record(flows []Flow) {
	for _, fl := range flows {
		if fl.Bytes < 0 {
			panic("simnet: negative flow size")
		}
		if fl.Bytes == 0 {
			continue
		}
		if fl.Src == fl.Dst {
			f.counters.Local += fl.Bytes
			continue
		}
		f.counters.Total += fl.Bytes
		f.counters.Transfers++
		f.util.NodeUp[fl.Src] += simtime.Duration(float64(fl.Bytes) / f.cfg.NodeBandwidth)
		f.util.NodeDown[fl.Dst] += simtime.Duration(float64(fl.Bytes) / f.cfg.NodeBandwidth)
		if sr, dr := f.Rack(fl.Src), f.Rack(fl.Dst); sr != dr {
			f.counters.CrossRack += fl.Bytes
			f.util.RackUp[sr] += simtime.Duration(float64(fl.Bytes) / f.cfg.RackBandwidth)
			f.util.RackDown[dr] += simtime.Duration(float64(fl.Bytes) / f.cfg.RackBandwidth)
			f.util.Core += simtime.Duration(float64(fl.Bytes) / f.cfg.CoreBandwidth)
		} else {
			f.counters.IntraRack += fl.Bytes
		}
	}
}

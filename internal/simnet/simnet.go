// Package simnet models the cluster interconnect: a two-level tree of
// node NICs feeding rack switches that attach to an (oversubscribed)
// core switch. This is the topology whose bisection bandwidth the PIC
// paper identifies as the scarce resource stressed by MapReduce shuffle
// traffic.
//
// The fabric uses a bottleneck transfer model: the time for a set of
// concurrent flows is the utilization of the most-loaded resource (a node
// uplink or downlink, a rack uplink or downlink, or the core). The model
// is deterministic, conserves bytes, and captures the property that
// matters for PIC — cross-rack traffic contends for core bandwidth that
// does not grow with cluster size, while intra-node transfers are free.
package simnet

import (
	"fmt"

	"repro/internal/simtime"
)

// Config describes the fabric topology and link speeds.
type Config struct {
	// Nodes is the number of compute nodes attached to the fabric.
	Nodes int
	// RackSize is the number of nodes per rack. The last rack may be
	// partially filled.
	RackSize int
	// NodeBandwidth is the full-duplex NIC speed per direction, in
	// bytes per second (1 GbE ≈ 125e6).
	NodeBandwidth float64
	// CoreBandwidth is the aggregate bisection bandwidth of the core,
	// in bytes per second. Cross-rack traffic in either direction
	// shares it.
	CoreBandwidth float64
	// RackBandwidth is the uplink speed of each rack switch to the
	// core, per direction, in bytes per second.
	RackBandwidth float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("simnet: Nodes = %d, must be positive", c.Nodes)
	case c.RackSize <= 0:
		return fmt.Errorf("simnet: RackSize = %d, must be positive", c.RackSize)
	case c.NodeBandwidth <= 0:
		return fmt.Errorf("simnet: NodeBandwidth = %g, must be positive", c.NodeBandwidth)
	case c.CoreBandwidth <= 0:
		return fmt.Errorf("simnet: CoreBandwidth = %g, must be positive", c.CoreBandwidth)
	case c.RackBandwidth <= 0:
		return fmt.Errorf("simnet: RackBandwidth = %g, must be positive", c.RackBandwidth)
	}
	return nil
}

// Racks reports the number of racks implied by the configuration.
func (c Config) Racks() int { return (c.Nodes + c.RackSize - 1) / c.RackSize }

// Flow is a point-to-point transfer of Bytes from node Src to node Dst.
// A flow with Src == Dst is an in-memory hand-off: it takes no time and
// is not counted as network traffic.
type Flow struct {
	Src, Dst int
	Bytes    int64
}

// Counters accumulates the traffic a fabric has carried. All fields are
// bytes.
type Counters struct {
	// Total is every byte that crossed a node boundary.
	Total int64
	// CrossRack is the subset of Total that crossed the core switch.
	CrossRack int64
	// IntraRack is the subset of Total that stayed within one rack.
	IntraRack int64
	// Local is bytes "transferred" within a single node (free).
	Local int64
	// Transfers counts network flows (Src != Dst, Bytes > 0).
	Transfers int64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Total += o.Total
	c.CrossRack += o.CrossRack
	c.IntraRack += o.IntraRack
	c.Local += o.Local
	c.Transfers += o.Transfers
}

// Utilization accumulates per-link busy time: for every byte the fabric
// carries, each traversed resource is busy bytes/bandwidth seconds.
// Busy time is charged from the same Record calls that feed Counters, so
// the two views are always consistent. Because concurrent flows share
// links, busy time is transmission time, not wall time: a link's busy
// seconds can exceed the simulated span when the simulation overlaps
// transfers on it.
type Utilization struct {
	// NodeUp and NodeDown are per-node NIC busy seconds (egress and
	// ingress), indexed by global node id.
	NodeUp, NodeDown []simtime.Duration
	// RackUp and RackDown are per-rack uplink busy seconds, indexed by
	// rack id.
	RackUp, RackDown []simtime.Duration
	// Core is bisection busy seconds: cross-rack bytes over the core
	// bandwidth.
	Core simtime.Duration
}

// MaxNode returns the busiest node's combined up+down busy time.
func (u Utilization) MaxNode() simtime.Duration {
	var worst simtime.Duration
	for i := range u.NodeUp {
		if b := u.NodeUp[i] + u.NodeDown[i]; b > worst {
			worst = b
		}
	}
	return worst
}

// MaxRack returns the busiest rack uplink's combined busy time.
func (u Utilization) MaxRack() simtime.Duration {
	var worst simtime.Duration
	for i := range u.RackUp {
		if b := u.RackUp[i] + u.RackDown[i]; b > worst {
			worst = b
		}
	}
	return worst
}

// Fabric is an instantiated interconnect with traffic counters.
type Fabric struct {
	cfg      Config
	counters Counters
	util     Utilization
}

// New builds a fabric from cfg. It panics if cfg is invalid; topology
// parameters come from experiment code, not user input.
func New(cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fabric{cfg: cfg, util: Utilization{
		NodeUp:   make([]simtime.Duration, cfg.Nodes),
		NodeDown: make([]simtime.Duration, cfg.Nodes),
		RackUp:   make([]simtime.Duration, cfg.Racks()),
		RackDown: make([]simtime.Duration, cfg.Racks()),
	}}
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Rack reports the rack that node n belongs to.
func (f *Fabric) Rack(n int) int {
	if n < 0 || n >= f.cfg.Nodes {
		panic(fmt.Sprintf("simnet: node %d out of range [0,%d)", n, f.cfg.Nodes))
	}
	return n / f.cfg.RackSize
}

// Counters returns a snapshot of the traffic carried so far.
func (f *Fabric) Counters() Counters { return f.counters }

// Utilization returns a snapshot of the per-link busy time accumulated
// so far.
func (f *Fabric) Utilization() Utilization {
	u := f.util
	u.NodeUp = append([]simtime.Duration(nil), f.util.NodeUp...)
	u.NodeDown = append([]simtime.Duration(nil), f.util.NodeDown...)
	u.RackUp = append([]simtime.Duration(nil), f.util.RackUp...)
	u.RackDown = append([]simtime.Duration(nil), f.util.RackDown...)
	return u
}

// CoreBusy returns the accumulated bisection busy time without copying
// the per-link slices — cheap enough for event-boundary sampling.
func (f *Fabric) CoreBusy() simtime.Duration { return f.util.Core }

// ResetCounters zeroes the traffic counters.
func (f *Fabric) ResetCounters() { f.counters = Counters{} }

// TransferTime computes, without recording any traffic, how long the
// given set of concurrent flows takes under the bottleneck model.
func (f *Fabric) TransferTime(flows []Flow) simtime.Duration {
	up := make(map[int]int64)   // node -> egress bytes
	down := make(map[int]int64) // node -> ingress bytes
	rackUp := make(map[int]int64)
	rackDown := make(map[int]int64)
	var core int64
	for _, fl := range flows {
		if fl.Bytes < 0 {
			panic("simnet: negative flow size")
		}
		if fl.Src == fl.Dst || fl.Bytes == 0 {
			continue
		}
		up[fl.Src] += fl.Bytes
		down[fl.Dst] += fl.Bytes
		sr, dr := f.Rack(fl.Src), f.Rack(fl.Dst)
		if sr != dr {
			core += fl.Bytes
			rackUp[sr] += fl.Bytes
			rackDown[dr] += fl.Bytes
		}
	}
	var worst simtime.Duration
	for _, b := range up {
		worst = max(worst, simtime.Duration(float64(b)/f.cfg.NodeBandwidth))
	}
	for _, b := range down {
		worst = max(worst, simtime.Duration(float64(b)/f.cfg.NodeBandwidth))
	}
	for _, b := range rackUp {
		worst = max(worst, simtime.Duration(float64(b)/f.cfg.RackBandwidth))
	}
	for _, b := range rackDown {
		worst = max(worst, simtime.Duration(float64(b)/f.cfg.RackBandwidth))
	}
	worst = max(worst, simtime.Duration(float64(core)/f.cfg.CoreBandwidth))
	return worst
}

// Transfer records the traffic of the given concurrent flows and returns
// the time they take. It is the combination of Record and TransferTime.
func (f *Fabric) Transfer(flows []Flow) simtime.Duration {
	f.Record(flows)
	return f.TransferTime(flows)
}

// Record accumulates the byte counters for flows without computing a
// duration. Use it when a higher-level model charges time separately.
func (f *Fabric) Record(flows []Flow) {
	for _, fl := range flows {
		if fl.Bytes < 0 {
			panic("simnet: negative flow size")
		}
		if fl.Bytes == 0 {
			continue
		}
		if fl.Src == fl.Dst {
			f.counters.Local += fl.Bytes
			continue
		}
		f.counters.Total += fl.Bytes
		f.counters.Transfers++
		f.util.NodeUp[fl.Src] += simtime.Duration(float64(fl.Bytes) / f.cfg.NodeBandwidth)
		f.util.NodeDown[fl.Dst] += simtime.Duration(float64(fl.Bytes) / f.cfg.NodeBandwidth)
		if sr, dr := f.Rack(fl.Src), f.Rack(fl.Dst); sr != dr {
			f.counters.CrossRack += fl.Bytes
			f.util.RackUp[sr] += simtime.Duration(float64(fl.Bytes) / f.cfg.RackBandwidth)
			f.util.RackDown[dr] += simtime.Duration(float64(fl.Bytes) / f.cfg.RackBandwidth)
			f.util.Core += simtime.Duration(float64(fl.Bytes) / f.cfg.CoreBandwidth)
		} else {
			f.counters.IntraRack += fl.Bytes
		}
	}
}

package integrity

import (
	"bytes"
	"testing"
)

// FuzzOpen exercises the frame parser with arbitrary byte streams: it
// must never panic, Open must accept exactly what Seal produced, and
// any frame Open accepts must round-trip through Seal to the same
// bytes (the framing is canonical).
func FuzzOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add(Seal(nil))
	f.Add(Seal([]byte("hello, frame")))
	f.Add(Seal(bytes.Repeat([]byte{0x5A}, 300)))
	corrupt := Seal([]byte("flip me"))
	corrupt[len(corrupt)-5] ^= 0x01
	f.Add(corrupt)
	f.Add([]byte{magic0, magic1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Open(data)
		if err != nil {
			// Structural errors must agree between checked and
			// unchecked opens; only checksum mismatches may differ.
			if fe, ok := err.(*FrameError); ok && fe.Kind != "checksum" {
				if _, uerr := OpenUnchecked(data); uerr == nil {
					t.Fatalf("OpenUnchecked accepted frame Open rejected structurally: %v", err)
				}
			}
			return
		}
		if _, uerr := OpenUnchecked(data); uerr != nil {
			t.Fatalf("OpenUnchecked rejected frame Open accepted: %v", uerr)
		}
		again := Seal(payload)
		if !bytes.Equal(again, data[:len(again)]) {
			t.Fatalf("Seal(Open(%x)) = %x", data, again)
		}
		start, end := PayloadRange(len(payload))
		if end > len(data) || !bytes.Equal(data[start:end], payload) {
			t.Fatalf("PayloadRange(%d) = [%d,%d) does not bracket payload", len(payload), start, end)
		}
	})
}

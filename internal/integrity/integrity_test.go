package integrity

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		[]byte("hello, frame"),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	for _, p := range payloads {
		frame := Seal(p)
		got, err := Open(frame)
		if err != nil {
			t.Fatalf("Open(Seal(%d bytes)): %v", len(p), err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload round-trip mismatch for %d bytes", len(p))
		}
		unchecked, err := OpenUnchecked(frame)
		if err != nil || !bytes.Equal(unchecked, p) {
			t.Fatalf("OpenUnchecked mismatch for %d bytes: %v", len(p), err)
		}
	}
}

func TestOpenDetectsPayloadFlip(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	frame := Seal(payload)
	start, end := PayloadRange(len(payload))
	if got := frame[start:end]; !bytes.Equal(got, payload) {
		t.Fatalf("PayloadRange does not bracket payload: got %q", got)
	}
	for off := start; off < end; off++ {
		mut := append([]byte(nil), frame...)
		mut[off] ^= 0x40
		_, err := Open(mut)
		var fe *FrameError
		if !errors.As(err, &fe) || fe.Kind != "checksum" {
			t.Fatalf("flip at %d: want checksum FrameError, got %v", off, err)
		}
		// Detection off must serve the damaged payload structurally intact.
		p, err := OpenUnchecked(mut)
		if err != nil {
			t.Fatalf("flip at %d: OpenUnchecked: %v", off, err)
		}
		if bytes.Equal(p, payload) {
			t.Fatalf("flip at %d: unchecked payload unexpectedly clean", off)
		}
	}
}

func TestOpenRejectsMalformedFrames(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       {magic0},
		"bad magic":   {0x00, 0x00, 0x01, 0x02},
		"no varint":   {magic0, magic1},
		"truncated":   Seal([]byte("abcdef"))[:5],
		"long length": {magic0, magic1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	}
	for name, frame := range cases {
		if _, err := Open(frame); err == nil {
			t.Errorf("%s: Open accepted malformed frame", name)
		}
		if _, err := OpenUnchecked(frame); err == nil {
			t.Errorf("%s: OpenUnchecked accepted malformed frame", name)
		}
	}
}

func TestChecksumMatchesKnownVector(t *testing.T) {
	// CRC32C("123456789") is the standard check value.
	if got := Checksum([]byte("123456789")); got != 0xE3069283 {
		t.Fatalf("Checksum check vector: got %08x", got)
	}
}

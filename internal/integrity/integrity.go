// Package integrity provides the checksum primitives used by the
// end-to-end data-integrity layer: a CRC32C content checksum and a
// small self-describing frame codec that wraps a payload with its
// length and checksum.
//
// Frames are bookkeeping, not wire format: the simulator stores a frame
// alongside each DFS file's bytes and verifies it on read, but charged
// byte counts everywhere remain the payload size, so enabling the
// integrity layer never perturbs the priced traffic of a healthy run.
//
// Frame layout:
//
//	magic   [2]byte  0xC5 0x1C
//	length  uvarint  payload length in bytes
//	payload [length]byte
//	crc32c  [4]byte  little-endian CRC32C of payload
package integrity

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC32C polynomial table. CRC32C is the same
// checksum HDFS and most RPC stacks use for block/transfer integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of data.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Frame magic bytes. Two bytes keep accidental payload/frame confusion
// detectable without burning real space (frames are never priced).
const (
	magic0 = 0xC5
	magic1 = 0x1C
)

// FrameError describes why a frame failed to open. Kind is one of
// "short", "magic", "length", or "checksum".
type FrameError struct {
	Kind string
	// Want and Got carry the expected/observed checksum for Kind
	// "checksum" and the declared/available payload length for Kind
	// "length"; both are zero otherwise.
	Want, Got uint64
}

func (e *FrameError) Error() string {
	switch e.Kind {
	case "checksum":
		return fmt.Sprintf("integrity: frame checksum mismatch: want %08x, got %08x", e.Want, e.Got)
	case "length":
		return fmt.Sprintf("integrity: frame declares %d payload bytes, only %d present", e.Want, e.Got)
	case "magic":
		return "integrity: bad frame magic"
	default:
		return "integrity: frame truncated"
	}
}

// Seal wraps payload in a checksummed frame.
func Seal(payload []byte) []byte {
	frame := make([]byte, 0, 2+binary.MaxVarintLen64+len(payload)+4)
	frame = append(frame, magic0, magic1)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	return binary.LittleEndian.AppendUint32(frame, Checksum(payload))
}

// parse splits a frame into payload and stored checksum without
// verifying the checksum.
func parse(frame []byte) (payload []byte, sum uint32, err error) {
	if len(frame) < 2 {
		return nil, 0, &FrameError{Kind: "short"}
	}
	if frame[0] != magic0 || frame[1] != magic1 {
		return nil, 0, &FrameError{Kind: "magic"}
	}
	rest := frame[2:]
	n, used := binary.Uvarint(rest)
	if used <= 0 || used != uvarintLen(n) { // reject truncated and non-minimal lengths
		return nil, 0, &FrameError{Kind: "short"}
	}
	rest = rest[used:]
	if uint64(len(rest)) < n+4 || n > uint64(len(rest)) { // second clause guards n+4 overflow
		return nil, 0, &FrameError{Kind: "length", Want: n, Got: uint64(len(rest))}
	}
	payload = rest[:n]
	sum = binary.LittleEndian.Uint32(rest[n : n+4])
	return payload, sum, nil
}

// Open verifies a frame and returns its payload (aliasing frame's
// backing array). A checksum mismatch returns a *FrameError with Kind
// "checksum".
func Open(frame []byte) ([]byte, error) {
	payload, want, err := parse(frame)
	if err != nil {
		return nil, err
	}
	if got := Checksum(payload); got != want {
		return nil, &FrameError{Kind: "checksum", Want: uint64(want), Got: uint64(got)}
	}
	return payload, nil
}

// OpenUnchecked parses a frame structurally but skips checksum
// verification. This is the detection-off read path: corrupt payload
// bytes flow through exactly as a checksum-less system would serve
// them.
func OpenUnchecked(frame []byte) ([]byte, error) {
	payload, _, err := parse(frame)
	return payload, err
}

// PayloadRange returns the [start, end) offsets of the payload within
// a sealed frame for a payload of the given length. Corruption
// injection uses this to restrict byte flips to payload bytes so that
// framing always stays parseable and only checksums catch the damage.
func PayloadRange(payloadLen int) (start, end int) {
	start = 2 + uvarintLen(uint64(payloadLen))
	return start, start + payloadLen
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

package corrupt

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/writable"
)

func TestValidateAcceptsNilAndEmpty(t *testing.T) {
	var p *Plan
	if err := p.Validate(4); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if err := (&Plan{}).Validate(4); err != nil {
		t.Fatalf("empty plan: %v", err)
	}
	if p.Sorted() != nil || p.HasTransferEvents() {
		t.Fatal("nil plan is not inert")
	}
	if got := p.Describe(); got != "corruption plan: none" {
		t.Fatalf("Describe: %q", got)
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"no file", Event{Kind: KindBlockReplica, Node: 0}, "file name"},
		{"bad block", Event{Kind: KindBlockReplica, File: "f", Block: -1}, "block index"},
		{"bad node", Event{Kind: KindBlockReplica, File: "f", Node: 9}, "out of range"},
		{"negative at", Event{Kind: KindBlockReplica, File: "f", At: -1}, "negative time"},
		{"no model", Event{Kind: KindCheckpoint}, "model name"},
		{"bad window", Event{Kind: KindTransfer, Node: 1, Start: 5, End: 5, Rate: 0.5}, "bad window"},
		{"bad rate", Event{Kind: KindTransfer, Node: 1, Start: 0, End: 1}, "rate"},
		{"bad budget", Event{Kind: KindScrub}, "budget"},
		{"unknown", Event{Kind: "gremlin"}, "unknown kind"},
	}
	for _, tc := range cases {
		err := (&Plan{Events: []Event{tc.ev}}).Validate(4)
		var pe *PlanError
		if !errors.As(err, &pe) || pe.Index != 0 || !strings.Contains(pe.Reason, tc.want) {
			t.Errorf("%s: got %v, want PlanError mentioning %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateRejectsOverlappingWindows(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindTransfer, Node: 2, Start: 0, End: 10, Rate: 0.5, Seed: 1},
		{Kind: KindTransfer, Node: 2, Start: 5, End: 15, Rate: 0.5, Seed: 2},
	}}
	var pe *PlanError
	if err := p.Validate(4); !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("want overlap PlanError at index 1, got %v", err)
	}
	// Same windows on different nodes are fine.
	p.Events[1].Node = 3
	if err := p.Validate(4); err != nil {
		t.Fatalf("disjoint nodes: %v", err)
	}
	// Back-to-back windows on one node are fine.
	p.Events[1] = Event{Kind: KindTransfer, Node: 2, Start: 10, End: 15, Rate: 0.5}
	if err := p.Validate(4); err != nil {
		t.Fatalf("abutting windows: %v", err)
	}
}

func TestSortedIsStableByTime(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindScrub, At: 7, Budget: 1},
		{Kind: KindTransfer, Node: 0, Start: 2, End: 3, Rate: 1},
		{Kind: KindCheckpoint, Model: "m", At: 2},
		{Kind: KindBlockReplica, File: "f", At: 2},
	}}
	got := p.Sorted()
	if got[0].Kind != KindTransfer || got[1].Kind != KindCheckpoint || got[2].Kind != KindBlockReplica || got[3].Kind != KindScrub {
		t.Fatalf("bad order: %v %v %v %v", got[0].Kind, got[1].Kind, got[2].Kind, got[3].Kind)
	}
}

func TestTransferHitDeterministicAndScoped(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindTransfer, Node: 1, Start: 10, End: 20, Rate: 1, Seed: 42},
	}}
	seed1, hit1 := p.TransferHit(1, 3, 15)
	seed2, hit2 := p.TransferHit(1, 3, 15)
	if !hit1 || !hit2 || seed1 != seed2 {
		t.Fatalf("same transfer must re-roll identically: (%v %v) vs (%v %v)", seed1, hit1, seed2, hit2)
	}
	if _, hit := p.TransferHit(3, 1, 15); !hit {
		t.Fatal("window must match dst endpoint too")
	}
	if _, hit := p.TransferHit(2, 3, 15); hit {
		t.Fatal("transfer not touching node 1 was hit")
	}
	if _, hit := p.TransferHit(1, 3, 20); hit {
		t.Fatal("window end is exclusive")
	}
	if _, hit := p.TransferHit(1, 3, 9.5); hit {
		t.Fatal("hit before window start")
	}
	// Partial rates must hit sometimes and miss sometimes across times.
	p.Events[0].Rate = 0.5
	hits := 0
	for i := 0; i < 64; i++ {
		at := simtime.Duration(10 + float64(i)*0.15)
		if _, hit := p.TransferHit(1, 3, at); hit {
			hits++
		}
	}
	if hits == 0 || hits == 64 {
		t.Fatalf("rate 0.5 produced %d/64 hits", hits)
	}
}

func TestPerturbModelDeterministicAndDecodable(t *testing.T) {
	mk := func() *model.Model {
		m := model.New()
		m.Set("centroid/0", writable.Vector{1.5, -2.5, 3.25})
		m.Set("centroid/1", writable.Vector{0, 10, -7})
		m.Set("count", writable.Int64(12))
		return m
	}
	a := PerturbModel(mk(), 99)
	b := PerturbModel(mk(), 99)
	if !a.Equal(b) {
		t.Fatal("same seed produced different perturbations")
	}
	if a.Equal(mk()) {
		t.Fatal("perturbation did not change the model")
	}
	// The damaged model must still encode/decode: this is *silent*
	// corruption, not a parse failure.
	enc := a.Encode(nil)
	if _, err := model.Decode(enc); err != nil {
		t.Fatalf("perturbed model does not round-trip: %v", err)
	}
	c := PerturbModel(mk(), 100)
	if c.Equal(a) {
		t.Fatal("different seeds should (here) perturb differently")
	}
	// Empty models pass through untouched.
	empty := model.New()
	if got := PerturbModel(empty, 5); got != empty || len(got.Keys()) != 0 {
		t.Fatal("empty model was not a no-op")
	}
}

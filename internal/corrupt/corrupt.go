// Package corrupt scripts silent data corruption against the simulated
// clock, the third fault dimension next to node crashes
// (simcluster.FailurePlan) and network faults (simnet.NetworkPlan).
//
// A Plan is a validated list of deterministic corruption events: byte
// flips in DFS block replicas, bit-error windows on a node's transfers,
// corruption of a model's checkpoint chain, and scheduled scrubber
// passes. Every decision a plan makes is a pure function of the plan,
// the event seeds, and simulated time — never of wall time or map
// order — so runs with the same plan are byte-identical across worker
// counts and repeats, and a zero plan is a byte-identical no-op.
package corrupt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/writable"
)

// Kind names a corruption event type.
type Kind string

const (
	// KindBlockReplica flips bytes in one replica of one DFS block at
	// time At. Node selects the replica; Node == PrimaryReplica means
	// "whichever replica is listed first", so plans need not predict
	// placement.
	KindBlockReplica Kind = "block-replica"
	// KindCheckpoint corrupts the latest stored checkpoint of model
	// family Model at time At (every replica, so replica failover
	// cannot mask it and rollback must engage).
	KindCheckpoint Kind = "checkpoint"
	// KindTransfer is a bit-error window [Start, End) on node Node:
	// while active, any transfer with Node as an endpoint is corrupted
	// in flight with probability Rate per attempt.
	KindTransfer Kind = "transfer"
	// KindScrub schedules a background scrubber pass at time At that
	// scans up to Budget replica bytes, verifying and repairing as it
	// goes.
	KindScrub Kind = "scrub"
)

// PrimaryReplica is the Node value that targets a block's
// first-listed replica.
const PrimaryReplica = -1

// Event is one scripted corruption action. Which fields matter depends
// on Kind; Validate enforces the rules.
type Event struct {
	Kind Kind

	// At is when point events (block-replica, checkpoint, scrub) fire.
	At simtime.Duration
	// Start and End bound transfer bit-error windows.
	Start, End simtime.Duration

	// File and Block locate the target of a block-replica event; Node
	// picks the replica (or PrimaryReplica).
	File  string
	Block int
	Node  int

	// Model names the checkpoint family a checkpoint event targets.
	Model string

	// Rate is the per-attempt corruption probability inside a transfer
	// window, in (0, 1].
	Rate float64

	// Budget is the scrub byte budget per pass.
	Budget int64

	// Seed feeds every pseudo-random decision the event makes.
	Seed uint64
}

// Time is the instant the event becomes relevant: At for point events,
// Start for windows. Plans drain in Time order.
func (ev *Event) Time() simtime.Duration {
	if ev.Kind == KindTransfer {
		return ev.Start
	}
	return ev.At
}

// Describe renders the event for logs and plan dumps.
func (ev *Event) Describe() string {
	switch ev.Kind {
	case KindBlockReplica:
		who := fmt.Sprintf("node %d", ev.Node)
		if ev.Node == PrimaryReplica {
			who = "primary replica"
		}
		return fmt.Sprintf("corrupt %q block %d on %s at t=%g", ev.File, ev.Block, who, float64(ev.At))
	case KindCheckpoint:
		return fmt.Sprintf("corrupt checkpoint of model %q at t=%g", ev.Model, float64(ev.At))
	case KindTransfer:
		return fmt.Sprintf("bit errors on node %d transfers [%g, %g) rate %g", ev.Node, float64(ev.Start), float64(ev.End), ev.Rate)
	case KindScrub:
		return fmt.Sprintf("scrub pass (budget %d B) at t=%g", ev.Budget, float64(ev.At))
	default:
		return fmt.Sprintf("unknown corruption event %q", string(ev.Kind))
	}
}

// PlanError reports an invalid corruption event by index.
type PlanError struct {
	Index  int
	Reason string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("corrupt: corruption event %d: %s", e.Index, e.Reason)
}

// Plan scripts corruption events. Register it with
// simcluster.Cluster.SetCorruptionPlan before building runtimes. A nil
// plan — or a plan with no events — never alters a byte.
type Plan struct {
	Events []Event
}

// Validate checks the plan against a cluster of n nodes. It returns a
// *PlanError naming the first offending event, or nil.
func (p *Plan) Validate(nodes int) error {
	if p == nil {
		return nil
	}
	fail := func(i int, format string, args ...any) error {
		return &PlanError{Index: i, Reason: fmt.Sprintf(format, args...)}
	}
	byNode := map[int][][2]simtime.Duration{}
	for i := range p.Events {
		ev := &p.Events[i]
		switch ev.Kind {
		case KindBlockReplica:
			if ev.File == "" {
				return fail(i, "block-replica event needs a file name")
			}
			if ev.Block < 0 {
				return fail(i, "negative block index %d", ev.Block)
			}
			if ev.Node != PrimaryReplica && (ev.Node < 0 || ev.Node >= nodes) {
				return fail(i, "node %d out of range [0, %d)", ev.Node, nodes)
			}
			if ev.At < 0 {
				return fail(i, "negative time %g", float64(ev.At))
			}
		case KindCheckpoint:
			if ev.Model == "" {
				return fail(i, "checkpoint event needs a model name")
			}
			if ev.At < 0 {
				return fail(i, "negative time %g", float64(ev.At))
			}
		case KindTransfer:
			if ev.Node < 0 || ev.Node >= nodes {
				return fail(i, "node %d out of range [0, %d)", ev.Node, nodes)
			}
			if ev.Start < 0 || ev.End <= ev.Start {
				return fail(i, "bad window [%g, %g)", float64(ev.Start), float64(ev.End))
			}
			if ev.Rate <= 0 || ev.Rate > 1 {
				return fail(i, "rate %g outside (0, 1]", ev.Rate)
			}
			for _, w := range byNode[ev.Node] {
				if ev.Start < w[1] && w[0] < ev.End {
					return fail(i, "window [%g, %g) overlaps an earlier window [%g, %g) on node %d",
						float64(ev.Start), float64(ev.End), float64(w[0]), float64(w[1]), ev.Node)
				}
			}
			byNode[ev.Node] = append(byNode[ev.Node], [2]simtime.Duration{ev.Start, ev.End})
		case KindScrub:
			if ev.Budget <= 0 {
				return fail(i, "scrub budget must be positive, got %d", ev.Budget)
			}
			if ev.At < 0 {
				return fail(i, "negative time %g", float64(ev.At))
			}
		default:
			return fail(i, "unknown kind %q", string(ev.Kind))
		}
	}
	return nil
}

// Sorted returns the events ordered by Time (stable, so equal-time
// events keep plan order).
func (p *Plan) Sorted() []Event {
	if p == nil || len(p.Events) == 0 {
		return nil
	}
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time() < out[j].Time() })
	return out
}

// HasTransferEvents reports whether any bit-error windows are
// scripted; transfer paths use it to keep the zero-window fast path.
func (p *Plan) HasTransferEvents() bool {
	if p == nil {
		return false
	}
	for i := range p.Events {
		if p.Events[i].Kind == KindTransfer {
			return true
		}
	}
	return false
}

// TransferHit decides whether a transfer between src and dst priced at
// time `at` is corrupted in flight. It returns a per-hit seed (for
// payload perturbation downstream) and whether the transfer was hit.
// The decision is a pure function of (plan, src, dst, at), so retries
// priced at later times re-roll and identical flows in one batch agree.
func (p *Plan) TransferHit(src, dst int, at simtime.Duration) (uint64, bool) {
	if p == nil {
		return 0, false
	}
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Kind != KindTransfer || at < ev.Start || at >= ev.End {
			continue
		}
		if ev.Node != src && ev.Node != dst {
			continue
		}
		h := Mix(ev.Seed, uint64(i)+1, uint64(src)+1, uint64(dst)+1, math.Float64bits(float64(at)))
		if unitFloat(h) < ev.Rate {
			return Mix(h, 0xD1CE), true
		}
	}
	return 0, false
}

// Describe renders the whole plan, one event per line, in Time order.
func (p *Plan) Describe() string {
	evs := p.Sorted()
	if len(evs) == 0 {
		return "corruption plan: none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "corruption plan: %d events\n", len(evs))
	for i := range evs {
		fmt.Fprintf(&b, "  %s\n", evs[i].Describe())
	}
	return b.String()
}

// Mix folds salts into seed with splitmix64 steps; it is the one hash
// all corruption decisions derive from.
func Mix(seed uint64, salts ...uint64) uint64 {
	x := splitmix(seed + 0x9E3779B97F4A7C15)
	for _, s := range salts {
		x = splitmix(x ^ (s + 0x9E3779B97F4A7C15))
	}
	return x
}

func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// PerturbModel deterministically damages one value of m in place, the
// way an undetected corrupt payload would after decoding: it picks a
// key from seed, flips one byte inside the value's encoding (never the
// kind tag, so the result still decodes), and stores the damaged value
// back. Models with no keys are returned unchanged. The model is
// returned for chaining.
func PerturbModel(m *model.Model, seed uint64) *model.Model {
	keys := m.Keys()
	if len(keys) == 0 {
		return m
	}
	h := Mix(seed, uint64(len(keys)))
	key := keys[h%uint64(len(keys))]
	v, _ := m.Get(key)
	enc := writable.Encode(nil, v)
	if len(enc) < 2 {
		return m
	}
	span := uint64(len(enc) - 1)
	mask := byte(h >> 32)
	if mask == 0 {
		mask = 0xA5
	}
	for probe := uint64(0); probe < span; probe++ {
		off := 1 + int(((h>>8)+probe)%span)
		enc[off] ^= mask
		if w, rest, err := writable.Decode(enc); err == nil && len(rest) == 0 {
			m.Set(key, w)
			return m
		}
		enc[off] ^= mask // undo and probe the next offset
	}
	return m
}

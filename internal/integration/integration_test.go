// Package integration exercises the full stack end to end: every case
// study runs under both schemes on a simulated cluster, with the PIC
// invariants the paper claims — speedup over the conventional baseline,
// collapsed recurring network traffic, equivalent solution quality, and
// resilience to task failures and stragglers.
package integration

import (
	"math"
	"testing"

	"repro/internal/apps/kmeans"
	"repro/internal/apps/linsolve"
	"repro/internal/apps/pagerank"
	"repro/internal/apps/smoothing"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/simcluster"
	"repro/internal/webgraph"
)

// comparisons runs a workload and applies the invariants every
// application must satisfy.
func checkComparison(t *testing.T, c *bench.Comparison) {
	t.Helper()
	if !c.PIC.TopOffConverged && c.IC.Converged {
		t.Error("baseline converged but PIC top-off did not")
	}
	if c.Speedup() <= 1 {
		t.Errorf("PIC slower than baseline: %.2fx", c.Speedup())
	}
	recurring := c.PICNetworkBytes() - c.PIC.RepartitionBytes
	if recurring >= c.ICNetworkBytes() {
		t.Errorf("PIC recurring traffic %d not below baseline %d", recurring, c.ICNetworkBytes())
	}
	if c.PIC.BEIterations == 0 {
		t.Error("no best-effort iterations ran")
	}
}

func TestKMeansEndToEnd(t *testing.T) {
	w, ps := bench.KMeansWorkload("kmeans-e2e", simcluster.Small(), 60_000, 10, 3, 6, 1)
	c, err := bench.RunComparison(w)
	if err != nil {
		t.Fatal(err)
	}
	checkComparison(t, c)
	icQ := quality.JagotaIndex(ps.Points, kmeans.Centroids(c.IC.Model))
	picQ := quality.JagotaIndex(ps.Points, kmeans.Centroids(c.PIC.Model))
	if diff := quality.PercentDifference(picQ, icQ); diff > 3 {
		t.Errorf("PIC clustering quality %.2f%% from IC (paper: ≤2.75%%)", diff)
	}
}

func TestPageRankEndToEnd(t *testing.T) {
	w, g := bench.PageRankWorkload("pagerank-e2e", simcluster.Small(), 5_000, 5, 0.05, 1)
	c, err := bench.RunComparison(w)
	if err != nil {
		t.Fatal(err)
	}
	checkComparison(t, c)
	icRanks := pagerank.Ranks(c.IC.Model, g.N)
	picRanks := pagerank.Ranks(c.PIC.Model, g.N)
	var l1, norm float64
	for v := range icRanks {
		l1 += math.Abs(icRanks[v] - picRanks[v])
		norm += icRanks[v]
	}
	if rel := l1 / norm; rel > 0.02 {
		t.Errorf("PIC ranks deviate %.2f%% from IC in L1", rel*100)
	}
}

func TestLinSolveEndToEnd(t *testing.T) {
	w, app := bench.LinSolveWorkload("linsolve-e2e", simcluster.Small(), 80, 6, 1)
	c, err := bench.RunComparison(w)
	if err != nil {
		t.Fatal(err)
	}
	checkComparison(t, c)
	golden, err := app.Golden()
	if err != nil {
		t.Fatal(err)
	}
	x := linsolve.Solution(c.PIC.Model, 80)
	if e := x.Sub(golden).NormInf(); e > 1e-3 {
		t.Errorf("PIC solution error %v", e)
	}
}

func TestNeuralNetEndToEnd(t *testing.T) {
	w, app, _, valid := bench.NeuralNetWorkload("neuralnet-e2e", simcluster.Small(), 1_000, 6, 1)
	ic, err := w.RunIC(nil)
	if err != nil {
		t.Fatal(err)
	}
	pic, err := w.RunPIC(nil)
	if err != nil {
		t.Fatal(err)
	}
	icErr := app.ModelError(ic.Model, valid.Vectors, valid.Labels)
	picErr := app.ModelError(pic.Model, valid.Vectors, valid.Labels)
	// PIC trains at least as far within the same epoch budgets.
	if picErr > icErr+0.05 {
		t.Errorf("PIC validation error %.3f much worse than IC %.3f", picErr, icErr)
	}
}

func TestSmoothingEndToEnd(t *testing.T) {
	w, img := bench.SmoothingWorkload("smoothing-e2e", simcluster.Small(), 128, 128, 6, 1)
	c, err := bench.RunComparison(w)
	if err != nil {
		t.Fatal(err)
	}
	checkComparison(t, c)
	want := smoothing.Reference(img, 2.0, 1e-7, 50_000)
	got := smoothing.ImageOf(c.PIC.Model, 128, 128)
	var worst float64
	for y := range want.Rows {
		for x := range want.Rows[y] {
			if d := math.Abs(got.Rows[y][x] - want.Rows[y][x]); d > worst {
				worst = d
			}
		}
	}
	// Within the convergence tolerance of the sequential fixed point.
	if worst > 0.2 {
		t.Errorf("PIC image deviates %v from sequential fixed point", worst)
	}
}

// TestFaultToleranceAcrossPIC mirrors the paper's §VII: task failures
// are recovered by the runtime under both phases, changing time but not
// results.
func TestFaultToleranceAcrossPIC(t *testing.T) {
	w, _ := bench.KMeansWorkload("kmeans-faults", simcluster.Small(), 30_000, 8, 3, 6, 1)

	rtClean := w.NewRuntime()
	clean, err := core.RunPIC(rtClean, w.MakeApp(), w.MakeInput(rtClean.Cluster()), w.MakeModel(), w.PICOpts)
	if err != nil {
		t.Fatal(err)
	}

	rtFaulty := w.NewRuntime()
	rtFaulty.Engine().FailEveryNthMapTask = 5
	faulty, err := core.RunPIC(rtFaulty, w.MakeApp(), w.MakeInput(rtFaulty.Cluster()), w.MakeModel(), w.PICOpts)
	if err != nil {
		t.Fatal(err)
	}

	if faulty.Metrics.TaskRetries == 0 {
		t.Fatal("no retries recorded under failure injection")
	}
	if faulty.Duration <= clean.Duration {
		t.Errorf("failures did not cost time: %v vs %v", faulty.Duration, clean.Duration)
	}
	if !faulty.Model.Equal(clean.Model) {
		t.Error("failures changed the computed model")
	}
}

// TestSpeculationAcrossPIC: stragglers hurt, speculation recovers, and
// neither changes the result.
func TestSpeculationAcrossPIC(t *testing.T) {
	w, _ := bench.KMeansWorkload("kmeans-stragglers", simcluster.Small(), 30_000, 8, 3, 6, 1)

	run := func(straggle, speculate bool) *core.PICResult {
		rt := w.NewRuntime()
		if straggle {
			rt.Engine().StraggleEveryNthMapTask = 6
			rt.Engine().StragglerSlowdown = 8
			rt.Engine().SpeculativeExecution = speculate
		}
		res, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), w.PICOpts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(false, false)
	straggled := run(true, false)
	rescued := run(true, true)

	if straggled.Duration <= clean.Duration {
		t.Errorf("stragglers did not cost time: %v vs %v", straggled.Duration, clean.Duration)
	}
	if rescued.Duration >= straggled.Duration {
		t.Errorf("speculation did not help: %v vs %v", rescued.Duration, straggled.Duration)
	}
	if !rescued.Model.Equal(clean.Model) {
		t.Error("speculation changed the computed model")
	}
}

// TestDeterminismAcrossFullStack: two identical PIC runs are
// byte-identical in model and metrics.
func TestDeterminismAcrossFullStack(t *testing.T) {
	run := func() *core.PICResult {
		w, _ := bench.PageRankWorkload("pagerank-det", simcluster.Small(), 2_000, 4, 0.1, 3)
		res, err := w.RunPIC(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Model.Equal(b.Model) {
		t.Fatal("identical runs produced different models")
	}
	if a.Duration != b.Duration || a.Metrics != b.Metrics {
		t.Fatal("identical runs produced different metrics")
	}
}

// TestMultilevelPartitionInPIC drives the METIS-style partitioner
// through a full PIC PageRank run.
func TestMultilevelPartitionInPIC(t *testing.T) {
	g := webgraph.NearlyUncoupled(3, 3_000, 6, 0.05, 4)
	app := pagerank.New(g, 0.85, 0.01, 3)
	app.Strategy = pagerank.PartitionMultilevel

	w, _ := bench.PageRankWorkload("pagerank-ml", simcluster.Small(), 3_000, 6, 0.05, 3)
	rt := w.NewRuntime()
	in := w.MakeInput(rt.Cluster())
	res, err := core.RunPIC(rt, app, in, pagerank.InitialModel(g), w.PICOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TopOffConverged {
		t.Fatal("multilevel-partitioned PIC did not converge")
	}
	ranks := pagerank.Ranks(res.Model, g.N)
	ref := pagerank.Reference(g, 0.85, 200)
	var l1, norm float64
	for v := range ref {
		l1 += math.Abs(ranks[v] - ref[v])
		norm += ref[v]
	}
	if rel := l1 / norm; rel > 0.02 {
		t.Errorf("ranks deviate %.2f%% from reference", rel*100)
	}
}

// TestOCRTrainingImprovesOnValidation closes the loop on the data
// generators: a model trained under PIC beats chance on held-out data.
func TestOCRTrainingImprovesOnValidation(t *testing.T) {
	w, app, _, valid := bench.NeuralNetWorkload("neuralnet-val", simcluster.Small(), 1_000, 6, 2)
	res, err := w.RunPIC(nil)
	if err != nil {
		t.Fatal(err)
	}
	errRate := app.ModelError(res.Model, valid.Vectors, valid.Labels)
	if errRate > 0.85 { // chance is 0.9 for 10 classes
		t.Errorf("validation error %.3f no better than chance", errRate)
	}
}

// TestAsyncLinSolve: asynchronous block Jacobi is chaotic relaxation
// (Chazan–Miranker), which converges for weakly dominant systems — the
// paper cites this literature in §VI-B/§VIII.
func TestAsyncLinSolve(t *testing.T) {
	w, app := bench.LinSolveWorkload("linsolve-async", simcluster.Small(), 80, 6, 1)
	rt := w.NewRuntime()
	res, err := core.RunPICAsync(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(),
		core.AsyncOptions{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TopOffConverged {
		t.Fatal("asynchronous run did not converge")
	}
	golden, err := app.Golden()
	if err != nil {
		t.Fatal(err)
	}
	x := linsolve.Solution(res.Model, 80)
	if e := x.Sub(golden).NormInf(); e > 1e-3 {
		t.Errorf("async solution error %v", e)
	}
}

// TestDistributedMergeKMeans drives §III-C's distributed merge through a
// full K-means run: same solution, merge traffic accounted as shuffle.
func TestDistributedMergeKMeans(t *testing.T) {
	w, ps := bench.KMeansWorkload("kmeans-distmerge", simcluster.Small(), 60_000, 10, 3, 6, 1)

	central, err := w.RunPIC(nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := w.NewRuntime()
	opts := w.PICOpts
	opts.DistributedMerge = true
	dist, err := core.RunPIC(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if dist.MergeTrafficBytes == 0 {
		t.Fatal("distributed merge charged no traffic")
	}
	qCentral := quality.JagotaIndex(ps.Points, kmeans.Centroids(central.Model))
	qDist := quality.JagotaIndex(ps.Points, kmeans.Centroids(dist.Model))
	if diff := quality.PercentDifference(qDist, qCentral); diff > 1 {
		t.Errorf("distributed merge changed quality by %.2f%%", diff)
	}
}

// TestCheckpointResumeMidRun: a driver restart resumes from the last
// persisted model and finishes with the same solution a continuous run
// reaches.
func TestCheckpointResumeMidRun(t *testing.T) {
	w, _ := bench.KMeansWorkload("kmeans-resume", simcluster.Small(), 30_000, 8, 3, 6, 1)

	full, err := w.RunIC(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Run half the iterations, "crash", restore, finish.
	rt := w.NewRuntime()
	app := w.MakeApp()
	in := w.MakeInput(rt.Cluster())
	half := w.ICOpts
	half.MaxIterations = full.Iterations / 2
	if _, err := core.RunIC(rt, app, in, w.MakeModel(), &half); err != nil {
		t.Fatal(err)
	}
	restored, err := rt.RestoreModel(app.Name())
	if err != nil {
		t.Fatal(err)
	}
	rt2 := w.NewRuntime() // the restarted driver
	resumed, err := core.RunIC(rt2, w.MakeApp(), w.MakeInput(rt2.Cluster()), restored, &w.ICOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Converged {
		t.Fatal("resumed run did not converge")
	}
	if resumed.Iterations >= full.Iterations {
		t.Errorf("resume replayed all work: %d vs %d iterations", resumed.Iterations, full.Iterations)
	}
}

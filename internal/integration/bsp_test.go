package integration

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps/pagerank"
	"repro/internal/apps/smoothing"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/webgraph"
)

// bspChaosRun is one full run on the BSP backend: model bytes, runtime
// metrics and the rendered trace — everything the determinism contract
// covers.
type bspChaosRun struct {
	model   []byte
	metrics mapred.Metrics
	trace   string
	elapsed simtime.Duration
}

// bspCluster builds the 6-node Small-preset cluster with optional
// crash and network chaos registered before the runtime snapshots it.
func bspCluster(fail *simcluster.FailurePlan, net *simnet.NetworkPlan) *simcluster.Cluster {
	c := simcluster.New(simcluster.Small())
	if fail != nil {
		c.SetFailurePlan(fail)
	}
	if net != nil {
		c.SetNetworkPlan(net)
	}
	return c
}

// runPageRankBSP runs the native PageRank vertex program (IC or PIC)
// on the BSP backend under the given chaos plans.
func runPageRankBSP(t *testing.T, pic bool, workers int, fail *simcluster.FailurePlan, net *simnet.NetworkPlan) bspChaosRun {
	t.Helper()
	g := webgraph.NearlyUncoupled(21, 400, 4, 0.1, 3)
	c := bspCluster(fail, net)
	rt := core.NewRuntime(c, dfs.Config{Replication: 3, BlockSize: 64 << 20})
	rt.Engine().Workers = workers
	if err := rt.SetBackend(core.BackendBSP); err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	rt.SetTracer(tr)
	rt.SetObservability(metrics.New())
	app := pagerank.New(g, 0.85, 1e-10, 4)
	in := mapred.NewInput(pagerank.Records(g), c, c.MapSlots())
	var (
		m   *core.ICResult
		p   *core.PICResult
		err error
	)
	if pic {
		p, err = core.RunPIC(rt, app, in, pagerank.InitialModel(g), core.PICOptions{
			Partitions:          4,
			MaxBEIterations:     3,
			MaxLocalIterations:  5,
			MaxTopOffIterations: 3,
		})
	} else {
		m, err = core.RunIC(rt, app, in, pagerank.InitialModel(g), &core.ICOptions{MaxIterations: 6})
	}
	if err != nil {
		t.Fatal(err)
	}
	run := bspChaosRun{trace: tr.Render(), metrics: rt.Metrics(), elapsed: rt.Elapsed()}
	if pic {
		run.model = p.Model.Encode(nil)
	} else {
		run.model = m.Model.Encode(nil)
	}
	return run
}

// chaosPlans derives a combined crash + network chaos script from a
// clean run's elapsed time, so every fault provably lands inside the
// run window: node 5 crashes a third of the way in and recovers, node 2
// browns out for most of the run, and a short hard outage severs node
// 1's link (the typed-transfer-error path the driver waits out).
func chaosPlans(d simtime.Duration) (*simcluster.FailurePlan, *simnet.NetworkPlan) {
	t := simtime.Time(0)
	fail := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 5, Time: t + simtime.Time(0.3*float64(d))},
		{Node: 5, Time: t + simtime.Time(0.7*float64(d)), Recover: true},
	}}
	net := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultNodeLink, Node: 2, Factor: 0.4,
			Start: simtime.Time(0.1 * float64(d)), End: simtime.Time(0.9 * float64(d))},
		{Kind: simnet.FaultNodeLink, Node: 1, Factor: 0,
			Start: simtime.Time(0.45 * float64(d)), End: simtime.Time(0.5 * float64(d))},
	}}
	return fail, net
}

func TestBSPPageRankDeterministicUnderCombinedChaos(t *testing.T) {
	for _, scheme := range []struct {
		name string
		pic  bool
	}{{"ic", false}, {"pic", true}} {
		t.Run(scheme.name, func(t *testing.T) {
			clean := runPageRankBSP(t, scheme.pic, 1, nil, nil)
			fail, net := chaosPlans(clean.elapsed)
			base := runPageRankBSP(t, scheme.pic, 1, fail, net)
			if base.elapsed <= clean.elapsed {
				t.Fatalf("chaos run (%v) not slower than clean run (%v) — chaos never engaged",
					base.elapsed, clean.elapsed)
			}
			// Chaos vs clean is rounding-equal, not byte-equal: crash
			// re-homing regroups the sender-side float-sum combiner, so
			// inbound scores sum in a different order. Byte identity is
			// the contract across workers and repeats under the same
			// plans, checked below.
			if len(base.model) != len(clean.model) {
				t.Fatal("chaos changed the model shape, not just its cost")
			}
			for name, workers := range map[string]int{"workers=8": 8, "repeat": 1, "workers=3": 3} {
				got := runPageRankBSP(t, scheme.pic, workers, fail, net)
				if !bytes.Equal(got.model, base.model) {
					t.Errorf("%s: model bytes diverge under chaos", name)
				}
				if got.trace != base.trace {
					t.Errorf("%s: trace diverges under chaos", name)
				}
				if !reflect.DeepEqual(got.metrics, base.metrics) {
					t.Errorf("%s: metrics diverge under chaos:\n got %+v\nwant %+v",
						name, got.metrics, base.metrics)
				}
			}
		})
	}
}

// runSmoothingBSP runs the native smoothing vertex program IC loop on
// the BSP backend.
func runSmoothingBSP(t *testing.T, workers int, fail *simcluster.FailurePlan, net *simnet.NetworkPlan) bspChaosRun {
	t.Helper()
	img := data.NoisyImage(31, 64, 48, 15)
	c := bspCluster(fail, net)
	rt := core.NewRuntime(c, dfs.Config{Replication: 3, BlockSize: 64 << 20})
	rt.Engine().Workers = workers
	if err := rt.SetBackend(core.BackendBSP); err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	rt.SetTracer(tr)
	app := smoothing.New(64, 48, 0.5, 1e-6)
	in := mapred.NewInput(smoothing.Records(img), c, c.MapSlots())
	res, err := core.RunIC(rt, app, in, smoothing.InitialModel(img), &core.ICOptions{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	return bspChaosRun{
		model:   res.Model.Encode(nil),
		metrics: rt.Metrics(),
		trace:   tr.Render(),
		elapsed: rt.Elapsed(),
	}
}

func TestBSPSmoothingDeterministicUnderCombinedChaos(t *testing.T) {
	clean := runSmoothingBSP(t, 1, nil, nil)
	fail, net := chaosPlans(clean.elapsed)
	base := runSmoothingBSP(t, 1, fail, net)
	if base.elapsed <= clean.elapsed {
		t.Fatalf("chaos run (%v) not slower than clean run (%v) — chaos never engaged",
			base.elapsed, clean.elapsed)
	}
	if !bytes.Equal(base.model, clean.model) {
		t.Fatal("chaos changed the smoothed image, not just its cost")
	}
	for name, workers := range map[string]int{"workers=8": 8, "repeat": 1} {
		got := runSmoothingBSP(t, workers, fail, net)
		if !bytes.Equal(got.model, base.model) {
			t.Errorf("%s: model bytes diverge under chaos", name)
		}
		if got.trace != base.trace {
			t.Errorf("%s: trace diverges under chaos", name)
		}
		if !reflect.DeepEqual(got.metrics, base.metrics) {
			t.Errorf("%s: metrics diverge under chaos", name)
		}
	}
}

// TestAblationBackendSmoke runs the shrunken IC/PIC × mapred/BSP grid
// end to end — the abl-backend cell of the CI backend-smoke job.
func TestAblationBackendSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("abl-backend smoke is not a -short test")
	}
	old := bench.Scale()
	bench.SetScale(0.1)
	defer bench.SetScale(old)
	res, err := bench.AblationBackend()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical() {
		t.Fatal("abl-backend: BSP cells not identical across workers/repeats")
	}
	if len(res.Cells) != 8 {
		t.Fatalf("abl-backend: %d cells, want 8", len(res.Cells))
	}
}

// Package metrics provides the simulation-native metrics registry: a
// deterministic collection of typed counters, gauges and simulated-clock
// time series that every layer of the runtime reports through. Unlike
// wall-clock metric systems, series are sampled at event boundaries on
// the simulated clock, so two identical runs produce byte-identical
// snapshots.
//
// A nil *Registry ignores all instrumentation (like a nil trace.Tracer),
// so layers can record unconditionally. Metric identity is the metric
// name plus its label set; labels are kept sorted, and every rendering
// (text and JSON) is ordered by the canonical identity string, never by
// map iteration order.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/simtime"
)

// Kind classifies a metric.
type Kind string

// The metric kinds.
const (
	KindCounter Kind = "counter"
	KindGauge   Kind = "gauge"
	KindSeries  Kind = "series"
)

// Label is one key=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L builds a label set from alternating key, value strings. It panics on
// an odd count; label construction happens in instrumentation code, not
// on user input.
func L(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("metrics: L requires an even number of strings")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// id renders the canonical identity of a metric: name{k=v,k=v} with
// labels sorted by key, or the bare name when there are no labels —
// lookups of unlabeled metrics must use the name alone, not "name{}".
func id(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Sample is one point of a time series, on the simulated clock.
type Sample struct {
	Time  simtime.Time `json:"t"`
	Value float64      `json:"v"`
}

// metric is the shared storage behind the typed handles.
type metric struct {
	name    string
	labels  []Label
	kind    Kind
	value   float64
	samples []Sample
}

// Registry holds the metrics of one run. The zero value is not usable;
// call New. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// New returns an empty registry.
func New() *Registry { return &Registry{metrics: make(map[string]*metric)} }

// lookup returns the metric under the canonical id, creating it with the
// given kind on first use. Re-registering the same id with a different
// kind panics: that is an instrumentation bug, not a runtime condition.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *metric {
	key := id(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[key]
	if !ok {
		sorted := append([]Label(nil), labels...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		m = &metric{name: name, labels: sorted, kind: kind}
		r.metrics[key] = m
		return m
	}
	if m.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", key, m.kind, kind))
	}
	return m
}

// Counter is a monotonically accumulating value.
type Counter struct {
	r *Registry
	m *metric
}

// Counter returns the counter with the given name and labels, creating
// it at zero on first use. On a nil registry it returns a no-op counter.
func (r *Registry) Counter(name string, labels ...Label) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r: r, m: r.lookup(name, KindCounter, labels)}
}

// Add increases the counter. Negative deltas panic: counters only grow.
func (c Counter) Add(delta float64) {
	if c.r == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("metrics: negative counter delta %g on %s", delta, c.m.name))
	}
	c.r.mu.Lock()
	c.m.value += delta
	c.r.mu.Unlock()
}

// Value returns the accumulated total (zero on a no-op counter).
func (c Counter) Value() float64 {
	if c.r == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.m.value
}

// Gauge is a value that can move in both directions.
type Gauge struct {
	r *Registry
	m *metric
}

// Gauge returns the gauge with the given name and labels, creating it at
// zero on first use. On a nil registry it returns a no-op gauge.
func (r *Registry) Gauge(name string, labels ...Label) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r: r, m: r.lookup(name, KindGauge, labels)}
}

// Set stores the gauge's current value.
func (g Gauge) Set(v float64) {
	if g.r == nil {
		return
	}
	g.r.mu.Lock()
	g.m.value = v
	g.r.mu.Unlock()
}

// Value returns the gauge's current value (zero on a no-op gauge).
func (g Gauge) Value() float64 {
	if g.r == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.m.value
}

// Series is a simulated-clock time series. Samples are appended at event
// boundaries — after a job, a transfer, a model write — never on wall
// time, so series are deterministic and replayable.
type Series struct {
	r *Registry
	m *metric
}

// Series returns the series with the given name and labels, creating it
// empty on first use. On a nil registry it returns a no-op series.
func (r *Registry) Series(name string, labels ...Label) Series {
	if r == nil {
		return Series{}
	}
	return Series{r: r, m: r.lookup(name, KindSeries, labels)}
}

// Sample appends one (time, value) point. Out-of-order times are allowed
// (parallel simulated lanes overlap); Snapshot keeps arrival order,
// which is deterministic.
func (s Series) Sample(t simtime.Time, v float64) {
	if s.r == nil {
		return
	}
	s.r.mu.Lock()
	s.m.samples = append(s.m.samples, Sample{Time: t, Value: v})
	s.r.mu.Unlock()
}

// Len reports the number of samples recorded so far.
func (s Series) Len() int {
	if s.r == nil {
		return 0
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	return len(s.m.samples)
}

// Metric is one exported metric of a snapshot.
type Metric struct {
	Name    string   `json:"name"`
	Labels  []Label  `json:"labels,omitempty"`
	Kind    Kind     `json:"kind"`
	Value   float64  `json:"value"`
	Samples []Sample `json:"samples,omitempty"`
}

// ID returns the metric's canonical identity string.
func (m Metric) ID() string { return id(m.Name, m.Labels) }

// Snapshot is a point-in-time copy of a registry, ordered by canonical
// metric identity.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := Snapshot{Metrics: make([]Metric, 0, len(keys))}
	for _, k := range keys {
		m := r.metrics[k]
		out.Metrics = append(out.Metrics, Metric{
			Name:    m.name,
			Labels:  append([]Label(nil), m.labels...),
			Kind:    m.kind,
			Value:   m.value,
			Samples: append([]Sample(nil), m.samples...),
		})
	}
	return out
}

// Get returns the metric with the given canonical id, if present.
func (s Snapshot) Get(canonicalID string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.ID() == canonicalID {
			return m, true
		}
	}
	return Metric{}, false
}

// Sub returns the activity between prev and s: counter and gauge values
// are subtracted (gauges report their change), and series keep only the
// samples appended after prev was taken. Metrics absent from prev pass
// through unchanged.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	before := make(map[string]Metric, len(prev.Metrics))
	for _, m := range prev.Metrics {
		before[m.ID()] = m
	}
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		p, ok := before[m.ID()]
		if ok {
			m.Value -= p.Value
			if len(p.Samples) <= len(m.Samples) {
				m.Samples = append([]Sample(nil), m.Samples[len(p.Samples):]...)
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// Text renders the snapshot one metric per line, sorted by identity.
// Series render their sample count and final point; use JSON for the
// full sample list.
func (s Snapshot) Text() string {
	var sb strings.Builder
	for _, m := range s.Metrics {
		switch m.Kind {
		case KindSeries:
			if n := len(m.Samples); n > 0 {
				last := m.Samples[n-1]
				fmt.Fprintf(&sb, "%s %s n=%d last=(%.6g, %.6g)\n", m.ID(), m.Kind, n,
					float64(last.Time), last.Value)
			} else {
				fmt.Fprintf(&sb, "%s %s n=0\n", m.ID(), m.Kind)
			}
		default:
			fmt.Fprintf(&sb, "%s %s %.6g\n", m.ID(), m.Kind, m.Value)
		}
	}
	return sb.String()
}

// JSON renders the snapshot as stable-ordered indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

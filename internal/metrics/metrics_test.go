package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil registry counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("nil registry gauge stored")
	}
	s := r.Series("z")
	s.Sample(1, 2)
	if s.Len() != 0 {
		t.Fatal("nil registry series sampled")
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestCounterGaugeSeries(t *testing.T) {
	r := New()
	c := r.Counter("bytes", L("node", "3")...)
	c.Add(10)
	r.Counter("bytes", L("node", "3")...).Add(5) // same identity
	if got := c.Value(); got != 15 {
		t.Fatalf("counter = %g, want 15", got)
	}
	g := r.Gauge("occupancy")
	g.Set(2)
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %g", g.Value())
	}
	s := r.Series("busy", L("resource", "core")...)
	s.Sample(1.5, 0.25)
	s.Sample(2.5, 0.75)
	if s.Len() != 2 {
		t.Fatalf("series len = %d", s.Len())
	}
}

func TestNegativeCounterPanics(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter delta accepted")
		}
	}()
	r.Counter("x").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch accepted")
		}
	}()
	r.Gauge("x")
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := New()
	r.Counter("m", L("b", "2", "a", "1")...).Add(1)
	r.Counter("m", L("a", "1", "b", "2")...).Add(1)
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 {
		t.Fatalf("label order created distinct metrics: %+v", snap.Metrics)
	}
	if got := snap.Metrics[0].ID(); got != "m{a=1,b=2}" {
		t.Fatalf("ID = %q", got)
	}
	if snap.Metrics[0].Value != 2 {
		t.Fatalf("value = %g", snap.Metrics[0].Value)
	}
}

func TestSnapshotOrderingAndText(t *testing.T) {
	r := New()
	r.Gauge("zeta").Set(1)
	r.Counter("alpha").Add(2)
	r.Series("mid").Sample(3, 4)
	snap := r.Snapshot()
	ids := make([]string, len(snap.Metrics))
	for i, m := range snap.Metrics {
		ids[i] = m.ID()
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
	text := snap.Text()
	if !strings.Contains(text, "alpha counter 2") ||
		!strings.Contains(text, "mid series n=1 last=(3, 4)") ||
		!strings.Contains(text, "zeta gauge 1") {
		t.Fatalf("text rendering:\n%s", text)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := New()
	c := r.Counter("jobs")
	s := r.Series("busy")
	c.Add(2)
	s.Sample(1, 10)
	before := r.Snapshot()
	c.Add(3)
	s.Sample(2, 20)
	s.Sample(3, 30)
	delta := r.Snapshot().Sub(before)
	m, ok := delta.Get("jobs")
	if !ok || m.Value != 3 {
		t.Fatalf("counter delta = %+v", m)
	}
	sm, ok := delta.Get("busy")
	if !ok || len(sm.Samples) != 2 || sm.Samples[0].Value != 20 {
		t.Fatalf("series delta = %+v", sm)
	}
}

func TestJSONStable(t *testing.T) {
	build := func() Snapshot {
		r := New()
		r.Counter("b", L("x", "1")...).Add(1)
		r.Counter("a").Add(2)
		r.Series("s").Sample(0.5, 1.5)
		return r.Snapshot()
	}
	j1, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("snapshot JSON not byte-identical across identical runs")
	}
	var decoded Snapshot
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(decoded.Metrics) != 3 {
		t.Fatalf("round-trip lost metrics: %+v", decoded)
	}
}

package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/writable"
)

func bigModel(version int) *model.Model {
	m := model.New()
	for i := 0; i < 50; i++ {
		v := writable.Vector{float64(i), float64(i) * 2, 3, 4}
		if i == version%50 {
			v[0] += float64(version) // one entry changes per version
		}
		m.Set(fmt.Sprintf("w%03d", i), v)
	}
	return m
}

// With delta checkpoints on, successive near-identical versions must be
// stored as sparse deltas (visible as .delta files and far fewer write
// bytes) and RestoreModel must still return the exact latest version.
func TestDeltaCheckpointsRoundTripAndShrink(t *testing.T) {
	const versions = 6
	write := func(delta bool) (rt *Runtime, bytes int64) {
		rt = testRuntime()
		rt.SetDeltaCheckpoints(delta)
		for v := 0; v < versions; v++ {
			rt.WriteModel("app-be", bigModel(v))
		}
		return rt, rt.ModelUpdateBytes()
	}
	full, fullBytes := write(false)
	deltaRT, deltaBytes := write(true)
	if deltaBytes >= fullBytes {
		t.Fatalf("delta checkpoints wrote %d bytes, full wrote %d", deltaBytes, fullBytes)
	}

	want := bigModel(versions - 1)
	for name, rt := range map[string]*Runtime{"full": full, "delta": deltaRT} {
		got, err := rt.RestoreModel("app-be")
		if err != nil {
			t.Fatalf("%s: RestoreModel: %v", name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: restored model is not the latest version", name)
		}
	}

	// The latest pointer must reference a .delta file on the delta
	// runtime (version 5 differs from version 0's base by one entry).
	ptr, ok := deltaRT.FS().Open("models/app-be/latest")
	if !ok {
		t.Fatal("no latest pointer")
	}
	target, _ := deltaRT.FS().ReadData(ptr, 0)
	if !strings.HasSuffix(string(target), ".delta") {
		t.Fatalf("latest checkpoint %q is not a delta", target)
	}
}

// The delta chain is bounded: after maxDeltaChain deltas a full
// checkpoint must be rewritten so restores never walk long chains.
func TestDeltaCheckpointChainBounded(t *testing.T) {
	rt := testRuntime()
	rt.SetDeltaCheckpoints(true)
	for v := 0; v < maxDeltaChain+3; v++ {
		rt.WriteModel("app-be", bigModel(v))
	}
	fulls := 0
	for seq := 0; seq < maxDeltaChain+3; seq++ {
		if _, ok := rt.FS().Open(fmt.Sprintf("models/app-be/%d", seq)); ok {
			fulls++
		}
	}
	if fulls < 2 {
		t.Fatalf("only %d full checkpoints across %d writes; chain not bounded", fulls, maxDeltaChain+3)
	}
	got, err := rt.RestoreModel("app-be")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(bigModel(maxDeltaChain + 2)) {
		t.Fatal("restore after chain rollover returned the wrong version")
	}
}

// Default off: a runtime without SetDeltaCheckpoints must write every
// version in full, keeping existing experiment traffic unchanged.
func TestDeltaCheckpointsDefaultOff(t *testing.T) {
	rt := testRuntime()
	for v := 0; v < 3; v++ {
		rt.WriteModel("app-be", bigModel(v))
	}
	for seq := 0; seq < 3; seq++ {
		if _, ok := rt.FS().Open(fmt.Sprintf("models/app-be/%d", seq)); !ok {
			t.Fatalf("version %d not stored as a full checkpoint", seq)
		}
	}
}

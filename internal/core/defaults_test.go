package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

func someRecords(n int) []mapred.Record {
	recs := make([]mapred.Record, n)
	for i := range recs {
		recs[i] = mapred.Record{Key: fmt.Sprintf("k%d", i), Value: writable.Int64(i)}
	}
	return recs
}

func TestDealRecordsBalanced(t *testing.T) {
	groups := DealRecords(someRecords(10), 3)
	sizes := []int{len(groups[0]), len(groups[1]), len(groups[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	seen := map[string]bool{}
	for _, g := range groups {
		for _, r := range g {
			if seen[r.Key] {
				t.Fatalf("record %q dealt twice", r.Key)
			}
			seen[r.Key] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d records", len(seen))
	}
}

func TestDealRecordsPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 did not panic")
		}
	}()
	DealRecords(someRecords(3), 0)
}

func TestPartitionRecordsBy(t *testing.T) {
	recs := someRecords(6)
	groups, err := PartitionRecordsBy(recs, 2, func(r mapred.Record) int {
		return int(r.Value.(writable.Int64)) % 2
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range groups[0] {
		if int(r.Value.(writable.Int64))%2 != 0 {
			t.Fatalf("wrong partition for %v", r)
		}
	}
	if len(groups[0])+len(groups[1]) != 6 {
		t.Fatal("records lost")
	}
}

func TestPartitionRecordsByOutOfRange(t *testing.T) {
	if _, err := PartitionRecordsBy(someRecords(2), 2, func(mapred.Record) int { return 5 }); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	if _, err := PartitionRecordsBy(someRecords(2), 0, nil); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestCopyModelsDeep(t *testing.T) {
	m := model.New()
	m.Set("v", writable.Vector{1, 2})
	copies := CopyModels(m, 3)
	if len(copies) != 3 {
		t.Fatalf("got %d copies", len(copies))
	}
	v, _ := copies[0].Vector("v")
	v[0] = 99
	orig, _ := m.Vector("v")
	other, _ := copies[1].Vector("v")
	if orig[0] != 1 || other[0] != 1 {
		t.Fatal("copies share storage")
	}
}

func TestAverageModels(t *testing.T) {
	a := model.New()
	a.Set("c", writable.Vector{1, 3})
	a.Set("f", writable.Float64(2))
	b := model.New()
	b.Set("c", writable.Vector{3, 5})
	b.Set("f", writable.Float64(4))
	out, err := AverageModels([]*model.Model{a, b})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Vector("c")
	if v[0] != 2 || v[1] != 4 {
		t.Fatalf("averaged vector = %v", v)
	}
	f, _ := out.Float("f")
	if f != 3 {
		t.Fatalf("averaged float = %v", f)
	}
}

func TestAverageModelsKeyInOnePartition(t *testing.T) {
	a := model.New()
	a.Set("only-a", writable.Vector{4})
	b := model.New()
	out, err := AverageModels([]*model.Model{a, b})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := out.Vector("only-a")
	if !ok || v[0] != 4 {
		t.Fatalf("singleton key averaged wrongly: %v", v)
	}
}

func TestSumModels(t *testing.T) {
	a := model.New()
	a.Set("v", writable.Vector{1, 1})
	b := model.New()
	b.Set("v", writable.Vector{2, 3})
	out, err := SumModels([]*model.Model{a, b})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Vector("v")
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("summed vector = %v", v)
	}
}

func TestCombineModelErrors(t *testing.T) {
	a := model.New()
	a.Set("v", writable.Vector{1})
	b := model.New()
	b.Set("v", writable.Vector{1, 2})
	if _, err := AverageModels([]*model.Model{a, b}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	c := model.New()
	c.Set("v", writable.Float64(1))
	if _, err := SumModels([]*model.Model{a, c}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := AverageModels(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
}

func TestCombineDoesNotMutateParts(t *testing.T) {
	a := model.New()
	a.Set("v", writable.Vector{1, 1})
	b := model.New()
	b.Set("v", writable.Vector{3, 3})
	if _, err := AverageModels([]*model.Model{a, b}); err != nil {
		t.Fatal(err)
	}
	av, _ := a.Vector("v")
	bv, _ := b.Vector("v")
	if av[0] != 1 || bv[0] != 3 {
		t.Fatalf("merge mutated inputs: a=%v b=%v", av, bv)
	}
}

func TestConcatModels(t *testing.T) {
	a := model.New()
	a.Set("x0", writable.Float64(1))
	b := model.New()
	b.Set("x1", writable.Float64(2))
	out, err := ConcatModels([]*model.Model{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("Len = %d", out.Len())
	}
}

func TestConcatModelsDuplicateKey(t *testing.T) {
	a := model.New()
	a.Set("x", writable.Float64(1))
	b := model.New()
	b.Set("x", writable.Float64(2))
	if _, err := ConcatModels([]*model.Model{a, b}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

// Property: averaging p copies of a model returns the model.
func TestQuickAverageOfCopiesIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := model.New()
		for i := 0; i < rng.Intn(5)+1; i++ {
			v := make(writable.Vector, rng.Intn(4)+1)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			m.Set(fmt.Sprintf("k%d", i), v)
		}
		p := rng.Intn(5) + 1
		out, err := AverageModels(CopyModels(m, p))
		if err != nil {
			return false
		}
		ok := true
		out.Range(func(key string, v writable.Writable) bool {
			want, _ := m.Vector(key)
			got := v.(writable.Vector)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					ok = false
					return false
				}
			}
			return true
		})
		return ok && out.Len() == m.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: DealRecords covers every record exactly once for any p.
func TestQuickDealCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		p := rng.Intn(8) + 1
		groups := DealRecords(someRecords(n), p)
		if len(groups) != p {
			return false
		}
		seen := map[string]bool{}
		for _, g := range groups {
			for _, r := range g {
				if seen[r.Key] {
					return false
				}
				seen[r.Key] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

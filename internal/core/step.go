package core

import (
	"errors"
	"fmt"

	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Stepper advances an iterative run one iteration at a time, so a
// driver — the multi-tenant scheduler in internal/sched — can suspend
// a run between iterations, let other work use the cluster, and resume
// it later. RunIC and RunPIC are thin loops over the steppers, so a
// stepped run performs exactly the operations (and allocates exactly
// the trace span ids) a monolithic run does.
type Stepper interface {
	// Step executes one iteration. It reports done when the run has
	// finished (converged or hit its iteration cap); further calls
	// after done are no-ops. An error abandons the run.
	Step() (done bool, err error)
}

// ICStepper is the resumable form of RunIC. Create one with
// NewICStepper, call Step until it reports done, then read Result.
type ICStepper struct {
	rt  *Runtime
	app App
	in  *mapred.Input
	opt ICOptions

	startElapsed    simtime.Duration
	startMetrics    mapred.Metrics
	startModelBytes int64
	phaseID         int64

	m    *model.Model
	res  *ICResult
	done bool
}

// NewICStepper prepares a conventional iterative-convergence run over
// rt without executing any iterations yet.
func NewICStepper(rt *Runtime, app App, in *mapred.Input, m0 *model.Model, opts *ICOptions) *ICStepper {
	s := &ICStepper{
		rt:              rt,
		app:             app,
		in:              in,
		opt:             opts.withDefaults(),
		startElapsed:    rt.Elapsed(),
		startMetrics:    rt.Metrics(),
		startModelBytes: rt.ModelUpdateBytes(),
		m:               m0,
		res:             &ICResult{},
	}
	// The phase span encloses every job the iterations run: allocate
	// its id up front so children parent under it; the event itself is
	// recorded when the run finishes and the extent is known.
	s.phaseID = rt.tracer.NextID()
	return s
}

// Step runs one iteration.
func (s *ICStepper) Step() (bool, error) {
	if s.done {
		return true, nil
	}
	rt, opt := s.rt, s.opt
	prevSpan := rt.span
	rt.span = s.phaseID
	defer func() { rt.span = prevSpan }()

	next, err := rt.runIteration(s.app, s.in, s.m)
	if err != nil {
		// A transfer severed by an outage or partition is not fatal:
		// stall until the network plan's next fault transition and
		// re-run the iteration against the changed overlay. Only when
		// no transition lies ahead (the cut is permanent) does the
		// typed error surface. A transfer that exhausted its checksum
		// re-send budget inside a bit-error window stalls the same way,
		// to the window's next boundary.
		var te *simnet.TransferError
		if errors.As(err, &te) {
			wait, ok := simtime.Duration(0), false
			if te.Kind == simnet.TransferCorrupt {
				wait, ok = rt.blockUntilCorruptWindowEnd()
			} else {
				wait, ok = rt.blockUntilNetTransition()
			}
			if ok {
				s.res.Blocked += wait
				s.res.BlockedIterations++
				return false, nil
			}
		}
		return false, fmt.Errorf("core: %s iteration %d: %w", s.app.Name(), s.res.Iterations, err)
	}
	if next == nil {
		return false, fmt.Errorf("core: %s iteration %d returned a nil model", s.app.Name(), s.res.Iterations)
	}
	s.res.Iterations++
	if !opt.DisableModelWrites {
		rt.WriteModel(s.app.Name(), next)
	}
	if opt.Observer != nil {
		opt.Observer(Sample{
			Phase:     opt.Phase,
			Iteration: s.res.Iterations,
			Time:      opt.TimeOffset + simtime.Time(rt.Elapsed()-s.startElapsed),
			Model:     next,
		})
	}
	if rt.obs != nil && !rt.local {
		delta := max(model.MaxVectorDelta(s.m, next), model.MaxFloatDelta(s.m, next))
		rt.obs.Series("core.residual", metrics.L("phase", string(opt.Phase))...).
			Sample(rt.now(), delta)
	}
	converged := s.app.Converged(s.m, next)
	s.m = next
	if converged {
		s.res.Converged = true
	}
	if converged || s.res.Iterations >= opt.MaxIterations {
		s.finish()
		return true, nil
	}
	return false, nil
}

// finish closes the run: final result fields and the phase trace span.
// Called with rt.span already restored or about to be restored; the
// phase event carries its own pre-allocated id.
func (s *ICStepper) finish() {
	rt := s.rt
	s.res.Model = s.m
	s.res.Duration = rt.Elapsed() - s.startElapsed
	s.res.Metrics = rt.Metrics().Sub(s.startMetrics)
	s.res.ModelUpdateBytes = rt.ModelUpdateBytes() - s.startModelBytes
	rt.tracer.Record(trace.Event{
		Kind:  trace.KindPhase,
		Name:  s.app.Name() + "/" + string(s.opt.Phase),
		Start: rt.now() - simtime.Time(s.res.Duration),
		End:   rt.now(),
		Lane:  rt.lane,
		ID:    s.phaseID,
	})
	s.done = true
}

// Result returns the run's result once Step has reported done, nil
// before that.
func (s *ICStepper) Result() *ICResult {
	if !s.done {
		return nil
	}
	return s.res
}

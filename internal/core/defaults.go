package core

import (
	"fmt"

	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

// Default partition and merge building blocks (the paper's Figure 4
// notes that PIC ships default partitioner classes and default mergers —
// vector concatenation, sum and average — that applications can use
// instead of writing their own).

// DealRecords deals records into p near-equal groups round-robin —
// PIC's "simple random partition" default, made deterministic. Input
// generators in this repository already emit records in randomized
// order, so dealing is an unbiased random partition with reproducible
// results.
func DealRecords(records []mapred.Record, p int) [][]mapred.Record {
	if p <= 0 {
		panic("core: DealRecords needs p ≥ 1")
	}
	out := make([][]mapred.Record, p)
	for i, r := range records {
		out[i%p] = append(out[i%p], r)
	}
	return out
}

// PartitionRecordsBy groups records by an application-supplied
// assignment (e.g. a graph partitioner's vertex→partition map). assign
// must return a value in [0,p).
func PartitionRecordsBy(records []mapred.Record, p int, assign func(mapred.Record) int) ([][]mapred.Record, error) {
	if p <= 0 {
		return nil, fmt.Errorf("core: PartitionRecordsBy needs p ≥ 1")
	}
	out := make([][]mapred.Record, p)
	for _, r := range records {
		g := assign(r)
		if g < 0 || g >= p {
			return nil, fmt.Errorf("core: record %q assigned to partition %d of %d", r.Key, g, p)
		}
		out[g] = append(out[g], r)
	}
	return out, nil
}

// CopyModels returns p deep copies of m — the partitioning strategy for
// applications like K-means where every sub-problem refines the whole
// model (§III-B).
func CopyModels(m *model.Model, p int) []*model.Model {
	out := make([]*model.Model, p)
	for i := range out {
		out[i] = m.Clone()
	}
	return out
}

// AverageModels is the default "average corresponding entries" merger:
// for every key, Vector values are averaged component-wise and Float64
// values are averaged, over the partial models containing the key.
// Non-numeric values are taken from the first partial model holding the
// key. It returns an error on vector length disagreements.
func AverageModels(parts []*model.Model) (*model.Model, error) {
	return combineModels(parts, true)
}

// SumModels is the default "sum corresponding entries" merger, with the
// same correspondence rules as AverageModels.
func SumModels(parts []*model.Model) (*model.Model, error) {
	return combineModels(parts, false)
}

func combineModels(parts []*model.Model, average bool) (*model.Model, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: merge of zero partial models")
	}
	out := model.New()
	counts := map[string]int{}
	for _, part := range parts {
		var err error
		part.Range(func(key string, v writable.Writable) bool {
			prev, seen := out.Get(key)
			if !seen {
				out.Set(key, writable.Clone(v))
				counts[key] = 1
				return true
			}
			switch pv := prev.(type) {
			case writable.Vector:
				nv, ok := v.(writable.Vector)
				if !ok || len(nv) != len(pv) {
					err = fmt.Errorf("core: merge key %q: incompatible vectors", key)
					return false
				}
				for i := range pv {
					pv[i] += nv[i]
				}
				counts[key]++
			case writable.Float64:
				nv, ok := v.(writable.Float64)
				if !ok {
					err = fmt.Errorf("core: merge key %q: incompatible kinds", key)
					return false
				}
				out.Set(key, pv+nv)
				counts[key]++
			default:
				// Non-numeric: first writer wins.
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	if !average {
		return out, nil
	}
	for key, n := range counts {
		if n <= 1 {
			continue
		}
		v, _ := out.Get(key)
		switch pv := v.(type) {
		case writable.Vector:
			for i := range pv {
				pv[i] /= float64(n)
			}
		case writable.Float64:
			out.Set(key, pv/writable.Float64(n))
		}
	}
	return out, nil
}

// ConcatModels is the default merger for disjointly partitioned models
// (§III-B: "piece them back together"): the union of the partial
// models' entries. Duplicate keys are an error — disjoint partitioning
// must produce disjoint models.
func ConcatModels(parts []*model.Model) (*model.Model, error) {
	out := model.New()
	for _, part := range parts {
		var err error
		part.Range(func(key string, v writable.Writable) bool {
			if _, dup := out.Get(key); dup {
				err = fmt.Errorf("core: concat merge: duplicate key %q", key)
				return false
			}
			out.Set(key, writable.Clone(v))
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/simcluster"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// failureTracker replays a cluster's FailurePlan against the runtime
// clock. One tracker is shared by a root runtime and all its forks (like
// the DFS and fabric), so every crash and recovery is processed exactly
// once — by whichever runtime's clock first passes the event — no matter
// which sub-runtime is executing when it strikes.
type failureTracker struct {
	events []simcluster.NodeEvent // sorted by time
	next   int
	dead   map[int]bool
}

func newFailureTracker(plan *simcluster.FailurePlan) *failureTracker {
	if plan == nil || len(plan.Events) == 0 {
		return nil
	}
	return &failureTracker{events: plan.Sorted(), dead: map[int]bool{}}
}

// processNodeEvent applies one failure event (the next one on the
// plan): a crash destroys the node's DFS replicas and triggers a
// re-replication pass (charged as traffic, in metrics and on the trace;
// the copies run in the background, so the driver clock does not block
// on them), and a recovery returns the node to service with empty
// disks. syncFaults orders these against network-fault onsets.
func (rt *Runtime) processNodeEvent() {
	ft := rt.fails
	ev := ft.events[ft.next]
	ft.next++
	if ev.Recover {
		if !ft.dead[ev.Node] {
			return
		}
		delete(ft.dead, ev.Node)
		rt.fs.MarkAlive(ev.Node)
		rt.tracer.Record(trace.Event{
			Kind: trace.KindNodeRecover, Name: fmt.Sprintf("node %d", ev.Node),
			Start: ev.Time, End: ev.Time, Lane: rt.lane,
		})
		// A returning node may let blocks stuck below full
		// replication (too few live nodes) top back up.
		rt.repairDFS(ev.Time)
		return
	}
	if ft.dead[ev.Node] {
		return
	}
	ft.dead[ev.Node] = true
	rt.metrics.NodeCrashes++
	rt.fs.MarkDead(ev.Node)
	rt.tracer.Record(trace.Event{
		Kind: trace.KindNodeCrash, Name: fmt.Sprintf("node %d", ev.Node),
		Start: ev.Time, End: ev.Time, Lane: rt.lane,
	})
	// A crash takes the node's persistent worker — and its invariant-
	// input cache — with it. Splits re-homed onto surviving replicas
	// re-stage cold there on the next iteration.
	if rt.family != nil {
		rt.family.EvictNode(ev.Node)
		rt.observeCache(ev.Time)
	}
	rt.repairDFS(ev.Time)
}

// repairDFS runs one DFS re-replication pass and records its traffic.
func (rt *Runtime) repairDFS(at simtime.Time) {
	report, d := rt.fs.Repair()
	if report.ReplicatedBytes == 0 {
		return
	}
	rt.metrics.ReReplicationBytes += report.ReplicatedBytes
	rt.tracer.Record(trace.Event{
		Kind: trace.KindReReplication, Name: fmt.Sprintf("%d blocks", report.ReplicatedBlocks),
		Start: at, End: at + d, Bytes: report.ReplicatedBytes, Lane: rt.lane,
	})
}

// DeadNodes returns the nodes currently dead on the runtime's clock, in
// sorted order.
func (rt *Runtime) DeadNodes() []int {
	if rt.fails == nil {
		return nil
	}
	out := make([]int, 0, len(rt.fails.dead))
	for n := range rt.fails.dead {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// deadSnapshot copies the current dead set.
func (rt *Runtime) deadSnapshot() map[int]bool {
	if rt.fails == nil {
		return nil
	}
	out := make(map[int]bool, len(rt.fails.dead))
	for n := range rt.fails.dead {
		out[n] = true
	}
	return out
}

// newlyDead lists the nodes dead now that were not dead in before, in
// sorted order.
func newlyDead(rt *Runtime, before map[int]bool) []int {
	if rt.fails == nil {
		return nil
	}
	var out []int
	for n := range rt.fails.dead {
		if !before[n] {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// viewTouches reports whether any of the given nodes belongs to view.
func viewTouches(view *simcluster.Cluster, nodes []int) bool {
	for _, n := range nodes {
		if view.Contains(n) {
			return true
		}
	}
	return false
}

// liveView restricts a cluster view to its currently-live nodes,
// returning the view unchanged when nothing in it is dead and nil when
// nothing in it is alive.
func (rt *Runtime) liveView(view *simcluster.Cluster) *simcluster.Cluster {
	if rt.fails == nil || len(rt.fails.dead) == 0 {
		return view
	}
	live := make([]int, 0, view.Size())
	for _, n := range view.Nodes() {
		if !rt.fails.dead[n] {
			live = append(live, n)
		}
	}
	switch {
	case len(live) == 0:
		return nil
	case len(live) == view.Size():
		return view
	}
	return view.Subset(live)
}

// LiveModelHome returns the engine's model-home node, re-homing it to
// the first live node of the view when the configured home has crashed
// (HDFS would have re-replicated the model file's blocks off the dead
// primary already).
func (rt *Runtime) LiveModelHome() int {
	home := rt.engine.ModelHome
	if rt.fails == nil || !rt.fails.dead[home] {
		return home
	}
	for _, n := range rt.Cluster().Nodes() {
		if !rt.fails.dead[n] {
			rt.engine.ModelHome = n
			return n
		}
	}
	panic("core: no live nodes remain in the runtime's view")
}

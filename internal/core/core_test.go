package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/trace"
	"repro/internal/writable"
)

// meanSeeker is a minimal iterative-convergence application for testing
// the drivers: its model is a single vector that moves halfway toward
// the mean of the input points each iteration, so it converges
// geometrically to the mean. Under PIC it partitions points round-robin,
// copies the model, and merges by averaging — K-means in miniature.
type meanSeeker struct {
	eps       float64
	failIter  func(iter *int) error // optional fault hook
	iterCount int
}

func (a *meanSeeker) Name() string { return "mean-seeker" }

func (a *meanSeeker) Iteration(rt *Runtime, in *mapred.Input, m *model.Model) (*model.Model, error) {
	a.iterCount++
	if a.failIter != nil {
		if err := a.failIter(&a.iterCount); err != nil {
			return nil, err
		}
	}
	job := &mapred.Job{
		Name: "mean",
		Mapper: mapred.MapperFunc(func(_ string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			p := v.(writable.Vector)
			withCount := append(p.Clone(), 1)
			emit.Emit("mean", withCount)
			return nil
		}),
		Combiner: sumReducer{},
		Reducer:  sumReducer{},
	}
	out, err := rt.RunJob(job, in, m)
	if err != nil {
		return nil, err
	}
	cur, _ := m.Vector("mean")
	next := model.New()
	for _, rec := range out.Records {
		acc := rec.Value.(writable.Vector)
		n := acc[len(acc)-1]
		moved := make(writable.Vector, len(acc)-1)
		for i := range moved {
			moved[i] = cur[i] + 0.5*(acc[i]/n-cur[i])
		}
		next.Set("mean", moved)
	}
	return next, nil
}

type sumReducer struct{}

func (sumReducer) Reduce(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
	acc := values[0].(writable.Vector).Clone()
	for _, v := range values[1:] {
		vec := v.(writable.Vector)
		for i := range acc {
			acc[i] += vec[i]
		}
	}
	emit.Emit(key, acc)
	return nil
}

func (a *meanSeeker) Converged(prev, next *model.Model) bool {
	return model.MaxVectorDelta(prev, next) < a.eps
}

func (a *meanSeeker) Partition(in *mapred.Input, m *model.Model, p int) ([]SubProblem, error) {
	groups := DealRecords(in.Records(), p)
	models := CopyModels(m, p)
	subs := make([]SubProblem, p)
	for i := range subs {
		subs[i] = SubProblem{Records: groups[i], Model: models[i]}
	}
	return subs, nil
}

func (a *meanSeeker) Merge(parts []*model.Model, _ *model.Model) (*model.Model, error) {
	return AverageModels(parts)
}

func testRuntime() *Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              4,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
	return NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 10})
}

func pointsInput(rt *Runtime, n int) (*mapred.Input, writable.Vector) {
	recs := make([]mapred.Record, n)
	var sum writable.Vector = writable.Vector{0, 0}
	for i := range recs {
		p := writable.Vector{float64(i%7) - 3, float64(i%5) * 2}
		sum[0] += p[0]
		sum[1] += p[1]
		recs[i] = mapred.Record{Key: fmt.Sprintf("p%d", i), Value: p}
	}
	mean := writable.Vector{sum[0] / float64(n), sum[1] / float64(n)}
	return mapred.NewInput(recs, rt.Cluster(), 8), mean
}

func startModel() *model.Model {
	m := model.New()
	m.Set("mean", writable.Vector{100, -100})
	return m
}

func TestRunICConvergesToMean(t *testing.T) {
	rt := testRuntime()
	in, mean := pointsInput(rt, 20)
	app := &meanSeeker{eps: 1e-9}
	res, err := RunIC(rt, app, in, startModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got, _ := res.Model.Vector("mean")
	for i := range mean {
		if math.Abs(got[i]-mean[i]) > 1e-6 {
			t.Fatalf("mean = %v, want %v", got, mean)
		}
	}
	if res.Iterations < 10 {
		t.Fatalf("converged suspiciously fast: %d iterations", res.Iterations)
	}
	if res.Duration <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if res.Metrics.Jobs != res.Iterations {
		t.Fatalf("Jobs = %d, want %d", res.Metrics.Jobs, res.Iterations)
	}
	if res.ModelUpdateBytes == 0 {
		t.Fatal("no model update traffic recorded")
	}
}

func TestRunICIterationCap(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 10)
	app := &meanSeeker{eps: 0} // never converges
	res, err := RunIC(rt, app, in, startModel(), &ICOptions{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 5 {
		t.Fatalf("converged=%v iterations=%d, want capped at 5", res.Converged, res.Iterations)
	}
}

func TestRunICObserver(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 10)
	app := &meanSeeker{eps: 1e-6}
	var samples []Sample
	res, err := RunIC(rt, app, in, startModel(), &ICOptions{
		Observer: func(s Sample) { samples = append(samples, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != res.Iterations {
		t.Fatalf("got %d samples for %d iterations", len(samples), res.Iterations)
	}
	for i, s := range samples {
		if s.Phase != PhaseIC {
			t.Fatalf("sample %d phase = %q", i, s.Phase)
		}
		if s.Iteration != i+1 {
			t.Fatalf("sample %d iteration = %d", i, s.Iteration)
		}
		if i > 0 && s.Time <= samples[i-1].Time {
			t.Fatalf("sample times not increasing: %v", samples)
		}
		if s.Model == nil {
			t.Fatalf("sample %d has nil model", i)
		}
	}
}

func TestRunICWithModelWritesDisabled(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 10)
	app := &meanSeeker{eps: 1e-6}
	res, err := RunIC(rt, app, in, startModel(), &ICOptions{DisableModelWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelUpdateBytes != 0 {
		t.Fatalf("ModelUpdateBytes = %d with writes disabled", res.ModelUpdateBytes)
	}
}

func TestRunICErrorPropagates(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 10)
	app := &meanSeeker{eps: 1e-6, failIter: func(iter *int) error {
		if *iter == 3 {
			return errors.New("iteration exploded")
		}
		return nil
	}}
	if _, err := RunIC(rt, app, in, startModel(), nil); err == nil {
		t.Fatal("iteration error swallowed")
	}
}

func TestRunPICMatchesICSolution(t *testing.T) {
	rtIC := testRuntime()
	in, mean := pointsInput(rtIC, 24)
	appIC := &meanSeeker{eps: 1e-9}
	ic, err := RunIC(rtIC, appIC, in, startModel(), nil)
	if err != nil {
		t.Fatal(err)
	}

	rtPIC := testRuntime()
	inPIC, _ := pointsInput(rtPIC, 24)
	appPIC := &meanSeeker{eps: 1e-9}
	pic, err := RunPIC(rtPIC, appPIC, inPIC, startModel(), PICOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}

	icMean, _ := ic.Model.Vector("mean")
	picMean, _ := pic.Model.Vector("mean")
	for i := range mean {
		if math.Abs(picMean[i]-icMean[i]) > 1e-6 {
			t.Fatalf("PIC mean %v != IC mean %v", picMean, icMean)
		}
	}
	if pic.BEIterations < 1 {
		t.Fatal("no best-effort iterations")
	}
	if len(pic.LocalIterations) != pic.BEIterations {
		t.Fatalf("LocalIterations has %d rows for %d BE iterations",
			len(pic.LocalIterations), pic.BEIterations)
	}
	for b, row := range pic.LocalIterations {
		if len(row) != 4 {
			t.Fatalf("BE iteration %d has %d sub-problems", b, len(row))
		}
	}
	if pic.Duration != pic.BEDuration+pic.TopOffDuration {
		t.Fatalf("Duration %v != BE %v + top-off %v", pic.Duration, pic.BEDuration, pic.TopOffDuration)
	}
	if pic.BEMetrics.LocalJobs == 0 {
		t.Fatal("best-effort phase ran no local jobs")
	}
}

func TestRunPICFirstBEIterationDoesMostWork(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 24)
	app := &meanSeeker{eps: 1e-9}
	pic, err := RunPIC(rt, app, in, startModel(), PICOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	maxLocal := pic.MaxLocalIterationsPerBE()
	if len(maxLocal) < 2 {
		t.Skipf("only %d BE iterations; cannot compare", len(maxLocal))
	}
	// The paper's Table I: the first best-effort iteration does almost
	// all local iterations; later ones need only a few.
	if maxLocal[0] <= maxLocal[1] {
		t.Fatalf("local iterations per BE iteration = %v, want decreasing", maxLocal)
	}
}

func TestRunPICDegeneratesToIC(t *testing.T) {
	// §III-B special case: with one partition, an identity merge and a
	// BE_converged that stops after one best-effort iteration, PIC
	// reduces to the conventional execution — same solution (to within
	// floating-point summation order; the paper notes PIC does not
	// preserve bitwise numerical equivalence) and the same iteration
	// count, executed as local iterations.
	rtIC := testRuntime()
	in, _ := pointsInput(rtIC, 20)
	ic, err := RunIC(rtIC, &meanSeeker{eps: 1e-9}, in, startModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rtPIC := testRuntime()
	inPIC, _ := pointsInput(rtPIC, 20)
	pic, err := RunPIC(rtPIC, &looseBE{meanSeeker{eps: 1e-9}}, inPIC, startModel(), PICOptions{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	icMean, _ := ic.Model.Vector("mean")
	picMean, _ := pic.Model.Vector("mean")
	for i := range icMean {
		if math.Abs(icMean[i]-picMean[i]) > 1e-9 {
			t.Fatalf("degenerate PIC mean %v differs from IC %v", picMean, icMean)
		}
	}
	if got := pic.LocalIterations[0][0]; got != ic.Iterations {
		t.Fatalf("degenerate PIC ran %d local iterations, IC ran %d", got, ic.Iterations)
	}
}

func TestRunPICMorePartitionsThanNodes(t *testing.T) {
	rt := testRuntime() // 4 nodes
	in, _ := pointsInput(rt, 30)
	app := &meanSeeker{eps: 1e-9}
	pic, err := RunPIC(rt, app, in, startModel(), PICOptions{Partitions: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pic.LocalIterations[0]) != 10 {
		t.Fatalf("got %d sub-problems, want 10", len(pic.LocalIterations[0]))
	}
}

func TestRunPICRequiresPartitions(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 10)
	if _, err := RunPIC(rt, &meanSeeker{eps: 1e-6}, in, startModel(), PICOptions{}); err == nil {
		t.Fatal("Partitions = 0 accepted")
	}
}

type badPartitioner struct{ meanSeeker }

func (b *badPartitioner) Partition(*mapred.Input, *model.Model, int) ([]SubProblem, error) {
	return nil, errors.New("partition failed")
}

type wrongCountPartitioner struct{ meanSeeker }

func (w *wrongCountPartitioner) Partition(in *mapred.Input, m *model.Model, p int) ([]SubProblem, error) {
	return []SubProblem{{Records: in.Records(), Model: m.Clone()}}, nil
}

type badMerger struct{ meanSeeker }

func (b *badMerger) Merge([]*model.Model, *model.Model) (*model.Model, error) {
	return nil, errors.New("merge failed")
}

func TestRunPICPartitionErrors(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 10)
	if _, err := RunPIC(rt, &badPartitioner{meanSeeker{eps: 1e-6}}, in, startModel(), PICOptions{Partitions: 2}); err == nil {
		t.Fatal("partition error swallowed")
	}
	if _, err := RunPIC(rt, &wrongCountPartitioner{meanSeeker{eps: 1e-6}}, in, startModel(), PICOptions{Partitions: 2}); err == nil {
		t.Fatal("wrong sub-problem count accepted")
	}
	if _, err := RunPIC(rt, &badMerger{meanSeeker{eps: 1e-6}}, in, startModel(), PICOptions{Partitions: 2}); err == nil {
		t.Fatal("merge error swallowed")
	}
}

// looseBE terminates the best-effort phase after the first iteration.
type looseBE struct{ meanSeeker }

func (l *looseBE) BEConverged(_, _ *model.Model) bool { return true }

func TestBEConvergedOverride(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 20)
	pic, err := RunPIC(rt, &looseBE{meanSeeker{eps: 1e-9}}, in, startModel(), PICOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pic.BEIterations != 1 {
		t.Fatalf("BEIterations = %d, want 1 with always-true BEConverged", pic.BEIterations)
	}
	// Top-off must still reach the true solution.
	if !pic.TopOffConverged {
		t.Fatal("top-off did not converge")
	}
}

func TestRunPICObserverPhases(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 20)
	var be, topoff int
	var lastBETime, firstTopOffTime float64
	_, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), PICOptions{
		Partitions: 4,
		Observer: func(s Sample) {
			switch s.Phase {
			case PhaseBestEffort:
				be++
				lastBETime = float64(s.Time)
			case PhaseTopOff:
				if topoff == 0 {
					firstTopOffTime = float64(s.Time)
				}
				topoff++
			default:
				t.Errorf("unexpected phase %q", s.Phase)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if be == 0 || topoff == 0 {
		t.Fatalf("samples: be=%d topoff=%d", be, topoff)
	}
	if firstTopOffTime <= lastBETime {
		t.Fatalf("top-off samples (%v) do not continue after best-effort (%v)", firstTopOffTime, lastBETime)
	}
}

func TestRunPICChargesPartitionAndMergeTraffic(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 24)
	pic, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), PICOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pic.RepartitionBytes == 0 {
		t.Error("no repartition traffic charged")
	}
	if pic.MergeTrafficBytes == 0 {
		t.Error("no merge traffic charged")
	}
	if pic.ModelUpdateBytes == 0 {
		t.Error("no model update traffic charged")
	}
}

func TestRunPICLocalIterationsCapped(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 20)
	app := &meanSeeker{eps: 0} // local loops never converge
	pic, err := RunPIC(rt, app, in, startModel(), PICOptions{
		Partitions:          2,
		MaxLocalIterations:  3,
		MaxBEIterations:     2,
		MaxTopOffIterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range pic.LocalIterations {
		for _, n := range row {
			if n > 3 {
				t.Fatalf("local iterations %d exceeded cap", n)
			}
		}
	}
	if pic.BEIterations != 2 || pic.TopOffIterations != 2 {
		t.Fatalf("caps not honored: %+v", pic)
	}
}

func TestModelCheckpointRestore(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 20)
	app := &meanSeeker{eps: 1e-9}
	res, err := RunIC(rt, app, in, startModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The last persisted checkpoint is the converged model: a restarted
	// driver resumes from exactly that state.
	restored, err := rt.RestoreModel(app.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Equal(res.Model) {
		t.Fatal("restored checkpoint differs from the final model")
	}
	// Resuming from the checkpoint converges immediately.
	resumed, err := RunIC(rt, app, in, restored, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Iterations > 1 {
		t.Fatalf("resume from checkpoint took %d iterations", resumed.Iterations)
	}
}

func TestRestoreModelWithoutCheckpoint(t *testing.T) {
	rt := testRuntime()
	if _, err := rt.RestoreModel("never-written"); err == nil {
		t.Fatal("missing checkpoint restored")
	}
}

func TestCheckpointsAdvance(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 20)
	app := &meanSeeker{eps: 1e-6}
	// Run a few capped iterations, snapshot, run more: the restored
	// model must track the newest write.
	res1, err := RunIC(rt, app, in, startModel(), &ICOptions{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap1, err := rt.RestoreModel(app.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !snap1.Equal(res1.Model) {
		t.Fatal("checkpoint does not match model after first run")
	}
	res2, err := RunIC(rt, app, in, res1.Model, &ICOptions{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := rt.RestoreModel(app.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !snap2.Equal(res2.Model) {
		t.Fatal("checkpoint not advanced by second run")
	}
	if snap2.Equal(snap1) {
		t.Fatal("second checkpoint identical to first")
	}
}

func TestTracerRecordsTimeline(t *testing.T) {
	rt := testRuntime()
	tr := trace.New()
	rt.SetTracer(tr)
	in, _ := pointsInput(rt, 24)
	res, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), PICOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	kinds := map[trace.Kind]int{}
	var maxLane int
	for _, e := range tr.Events() {
		kinds[e.Kind]++
		if e.Lane > maxLane {
			maxLane = e.Lane
		}
	}
	if kinds[trace.KindLocalJob] == 0 {
		t.Error("no local jobs on the timeline")
	}
	if kinds[trace.KindJob] == 0 {
		t.Error("no framework jobs on the timeline (top-off)")
	}
	if kinds[trace.KindModelWrite] == 0 {
		t.Error("no model writes on the timeline")
	}
	if kinds[trace.KindPhase] == 0 {
		t.Error("no phase spans on the timeline")
	}
	if kinds[trace.KindTransfer] == 0 {
		t.Error("no transfers on the timeline")
	}
	if maxLane < 4 {
		t.Errorf("expected 4 group lanes, max lane = %d", maxLane)
	}
	_, end := tr.Span()
	if float64(end) < float64(res.Duration)*0.99 {
		t.Errorf("timeline ends at %v but run took %v", end, res.Duration)
	}
}

// keyMergingSeeker extends meanSeeker with a per-key merge so the
// distributed-merge path can run.
type keyMergingSeeker struct{ meanSeeker }

func (k *keyMergingSeeker) MergeKey(key string, values []writable.Writable) (writable.Writable, error) {
	acc := values[0].(writable.Vector).Clone()
	for _, v := range values[1:] {
		vec := v.(writable.Vector)
		for i := range acc {
			acc[i] += vec[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(len(values))
	}
	return acc, nil
}

func TestDistributedMergeMatchesCentralized(t *testing.T) {
	run := func(distributed bool) *PICResult {
		rt := testRuntime()
		in, _ := pointsInput(rt, 24)
		res, err := RunPIC(rt, &keyMergingSeeker{meanSeeker{eps: 1e-9}}, in, startModel(), PICOptions{
			Partitions:       4,
			DistributedMerge: distributed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	central := run(false)
	dist := run(true)
	if !central.Model.Equal(dist.Model) {
		t.Fatal("distributed merge changed the final model")
	}
	if dist.MergeTrafficBytes == 0 {
		t.Fatal("distributed merge charged no traffic")
	}
}

func TestDistributedMergeRequiresKeyMerger(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 10)
	_, err := RunPIC(rt, &meanSeeker{eps: 1e-6}, in, startModel(), PICOptions{
		Partitions:       2,
		DistributedMerge: true,
	})
	if err == nil {
		t.Fatal("DistributedMerge without KeyMerger accepted")
	}
}

func TestObservabilityInstrumentation(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 24)
	reg := metrics.New()
	tr := trace.New()
	rt.SetObservability(reg)
	rt.SetTracer(tr)

	res, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), PICOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	jobs, ok := snap.Get("mapred.jobs")
	if !ok || jobs.Value < 1 {
		t.Fatalf("mapred.jobs missing or zero: %+v", jobs)
	}
	be, ok := snap.Get("core.be_delta")
	if !ok || len(be.Samples) != res.BEIterations {
		t.Fatalf("core.be_delta samples = %+v, want %d", be, res.BEIterations)
	}
	for i := 1; i < len(be.Samples); i++ {
		if be.Samples[i].Time <= be.Samples[i-1].Time {
			t.Fatal("be_delta samples not strictly increasing in time")
		}
	}
	if _, ok := snap.Get("core.residual{phase=top-off}"); !ok {
		var ids []string
		for _, m := range snap.Metrics {
			ids = append(ids, m.ID())
		}
		t.Fatalf("no top-off residual series; have %v", ids)
	}
	if skew, ok := snap.Get("core.be_skew"); !ok || len(skew.Samples) == 0 || skew.Samples[0].Value < 1 {
		t.Fatalf("core.be_skew = %+v", skew)
	}
	if cb, ok := snap.Get("simnet.core_busy_seconds"); !ok || len(cb.Samples) == 0 {
		t.Fatalf("simnet.core_busy_seconds = %+v", cb)
	}

	// The trace carries hierarchical spans: jobs parent under phase
	// spans, and framework jobs decompose into phase sub-spans.
	var phaseIDs []int64
	for _, e := range tr.Events() {
		if e.Kind == trace.KindPhase {
			if e.ID == 0 {
				t.Fatalf("phase span without id: %+v", e)
			}
			phaseIDs = append(phaseIDs, e.ID)
		}
	}
	if len(phaseIDs) < 2 { // best-effort + top-off
		t.Fatalf("phase spans = %d", len(phaseIDs))
	}
	parented, subSpans := 0, 0
	isPhase := map[int64]bool{}
	for _, id := range phaseIDs {
		isPhase[id] = true
	}
	for _, e := range tr.Events() {
		if isPhase[e.Parent] {
			parented++
		}
		switch e.Kind {
		case trace.KindMap, trace.KindShuffle, trace.KindReduce, trace.KindOverhead, trace.KindModelDist:
			subSpans++
			if e.Parent == 0 {
				t.Fatalf("sub-span without parent: %+v", e)
			}
		}
	}
	if parented == 0 {
		t.Fatal("no events parented under phase spans")
	}
	if subSpans == 0 {
		t.Fatal("no per-job phase sub-spans recorded")
	}
}

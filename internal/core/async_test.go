package core

import (
	"math"
	"testing"
)

func TestAsyncConvergesToSameSolution(t *testing.T) {
	rtSync := testRuntime()
	in, mean := pointsInput(rtSync, 24)
	sync, err := RunPIC(rtSync, &meanSeeker{eps: 1e-9}, in, startModel(), PICOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}

	rtAsync := testRuntime()
	inAsync, _ := pointsInput(rtAsync, 24)
	async, err := RunPICAsync(rtAsync, &meanSeeker{eps: 1e-9}, inAsync, startModel(), AsyncOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}

	syncMean, _ := sync.Model.Vector("mean")
	asyncMean, _ := async.Model.Vector("mean")
	for i := range mean {
		if math.Abs(syncMean[i]-asyncMean[i]) > 1e-6 {
			t.Fatalf("async mean %v differs from sync %v", asyncMean, syncMean)
		}
	}
	if !async.TopOffConverged {
		t.Fatal("async top-off did not converge")
	}
	for g, r := range async.RoundsPerGroup {
		if r == 0 {
			t.Fatalf("group %d ran no rounds", g)
		}
	}
	if async.Duration != async.BEDuration+async.TopOffDuration {
		t.Fatalf("durations inconsistent: %v != %v + %v",
			async.Duration, async.BEDuration, async.TopOffDuration)
	}
}

func TestAsyncIsDeterministic(t *testing.T) {
	run := func() *AsyncResult {
		rt := testRuntime()
		in, _ := pointsInput(rt, 20)
		res, err := RunPICAsync(rt, &meanSeeker{eps: 1e-9}, in, startModel(), AsyncOptions{Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Model.Equal(b.Model) {
		t.Fatal("async runs produced different models")
	}
	if a.Duration != b.Duration {
		t.Fatalf("async runs produced different durations: %v vs %v", a.Duration, b.Duration)
	}
	for g := range a.RoundsPerGroup {
		if a.RoundsPerGroup[g] != b.RoundsPerGroup[g] {
			t.Fatalf("round counts differ: %v vs %v", a.RoundsPerGroup, b.RoundsPerGroup)
		}
	}
}

func TestAsyncRoundCap(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 20)
	app := &meanSeeker{eps: 0} // snapshots never converge
	res, err := RunPICAsync(rt, app, in, startModel(), AsyncOptions{
		Partitions:          2,
		MaxRoundsPerGroup:   3,
		MaxLocalIterations:  3,
		MaxTopOffIterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for g, r := range res.RoundsPerGroup {
		if r > 3 {
			t.Fatalf("group %d ran %d rounds past the cap", g, r)
		}
	}
	if res.TopOffIterations != 2 {
		t.Fatalf("top-off cap not honored: %d", res.TopOffIterations)
	}
}

func TestAsyncValidation(t *testing.T) {
	rt := testRuntime() // 4 nodes
	in, _ := pointsInput(rt, 10)
	app := &meanSeeker{eps: 1e-6}
	if _, err := RunPICAsync(rt, app, in, startModel(), AsyncOptions{Partitions: 0}); err == nil {
		t.Fatal("P=0 accepted")
	}
	if _, err := RunPICAsync(rt, app, in, startModel(), AsyncOptions{Partitions: 9}); err == nil {
		t.Fatal("P > nodes accepted")
	}
}

func TestAsyncErrorsPropagate(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 10)
	if _, err := RunPICAsync(rt, &badPartitioner{meanSeeker{eps: 1e-6}}, in, startModel(), AsyncOptions{Partitions: 2}); err == nil {
		t.Fatal("partition error swallowed")
	}
	if _, err := RunPICAsync(rt, &badMerger{meanSeeker{eps: 1e-6}}, in, startModel(), AsyncOptions{Partitions: 2}); err == nil {
		t.Fatal("merge error swallowed")
	}
}

func TestAsyncDoesNotBarrierOnStragglers(t *testing.T) {
	// With one group straggling, the synchronous driver pays the slow
	// group's time every best-effort iteration (barrier); the
	// asynchronous driver lets fast groups go quiet on their own clocks.
	mkRT := func() *Runtime {
		rt := testRuntime()
		rt.Engine().StraggleEveryNthMapTask = 3
		rt.Engine().StragglerSlowdown = 10
		return rt
	}
	rtSync := mkRT()
	in, _ := pointsInput(rtSync, 24)
	sync, err := RunPIC(rtSync, &meanSeeker{eps: 1e-9}, in, startModel(), PICOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	rtAsync := mkRT()
	inAsync, _ := pointsInput(rtAsync, 24)
	async, err := RunPICAsync(rtAsync, &meanSeeker{eps: 1e-9}, inAsync, startModel(), AsyncOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Both must converge to the same place; async must not be slower in
	// its best-effort phase than sync is (it has no barriers to wait at).
	syncMean, _ := sync.Model.Vector("mean")
	asyncMean, _ := async.Model.Vector("mean")
	for i := range syncMean {
		if math.Abs(syncMean[i]-asyncMean[i]) > 1e-6 {
			t.Fatalf("async mean %v differs from sync %v under stragglers", asyncMean, syncMean)
		}
	}
	if async.BEDuration > sync.BEDuration*2 {
		t.Fatalf("async best-effort (%v) wildly slower than sync (%v)",
			async.BEDuration, sync.BEDuration)
	}
}

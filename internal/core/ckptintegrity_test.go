package core

import (
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/writable"
)

// plantCheckpoint writes raw bytes as checkpoint seq of family name and
// points the latest pointer at it, bypassing WriteModel — the shape a
// damaged or adversarial checkpoint store presents to a fresh driver.
func plantCheckpoint(rt *Runtime, name string, seq int64, delta bool, data []byte) string {
	file := checkpointName(name, seq)
	if delta {
		file += deltaSuffix
	}
	rt.FS().CreateWithData(file, data, 0)
	rt.FS().Delete(latestPointer(name))
	rt.FS().CreateWithData(latestPointer(name), []byte(file), 0)
	return file
}

// TestRestoreModelCorruptionErrors drives every decode-path corruption
// mode and pins the error messages: each must name the position in the
// chain (full checkpoint, delta, or its anchor) and the sequence
// numbers involved. Detection is off so the raw decode error surfaces
// without the rollback walk.
func TestRestoreModelCorruptionErrors(t *testing.T) {
	validFull := func() []byte {
		m := model.New()
		m.Set("mean", writable.Vector{1, 2})
		return m.Encode(nil)
	}
	cases := []struct {
		name  string
		plant func(rt *Runtime)
		want  []string
	}{
		{
			name: "garbage full checkpoint",
			plant: func(rt *Runtime) {
				plantCheckpoint(rt, "m", 0, false, []byte{0xFF, 0xFE, 0xFD, 0xFC})
			},
			want: []string{`corrupt checkpoint "models/m/0" (full, seq 0)`},
		},
		{
			name: "delta with bad base varint",
			plant: func(rt *Runtime) {
				plantCheckpoint(rt, "m", 1, true, []byte{0x80})
			},
			want: []string{`corrupt delta checkpoint "models/m/1.delta" (seq 1)`, "bad base-sequence varint"},
		},
		{
			name: "delta anchored at or after itself",
			plant: func(rt *Runtime) {
				data := binary.AppendUvarint(nil, 5)
				plantCheckpoint(rt, "m", 1, true, data)
			},
			want: []string{"base sequence 5 not before the delta's own"},
		},
		{
			name: "delta referencing missing base",
			plant: func(rt *Runtime) {
				data := binary.AppendUvarint(nil, 1)
				plantCheckpoint(rt, "m", 2, true, data)
			},
			want: []string{`references missing base "models/m/1" (seq 1)`},
		},
		{
			name: "delta over garbage base",
			plant: func(rt *Runtime) {
				rt.FS().CreateWithData(checkpointName("m", 0), []byte{0xFF, 0xFE, 0xFD}, 0)
				data := binary.AppendUvarint(nil, 0)
				plantCheckpoint(rt, "m", 1, true, data)
			},
			want: []string{`corrupt checkpoint base "models/m/0" (seq 0, anchor of delta seq 1)`},
		},
		{
			name: "garbage delta over valid base",
			plant: func(rt *Runtime) {
				rt.FS().CreateWithData(checkpointName("m", 0), validFull(), 0)
				data := binary.AppendUvarint(nil, 0)
				data = append(data, 0xFF, 0xFE, 0xFD)
				plantCheckpoint(rt, "m", 1, true, data)
			},
			want: []string{`corrupt delta checkpoint "models/m/1.delta" (seq 1 over base seq 0)`},
		},
		{
			name: "dangling pointer",
			plant: func(rt *Runtime) {
				rt.FS().CreateWithData(latestPointer("m"), []byte("models/m/9"), 0)
			},
			want: []string{`dangling checkpoint pointer "models/m/9"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := testRuntime()
			rt.SetIntegrityChecks(false)
			tc.plant(rt)
			_, err := rt.RestoreModel("m")
			if err == nil {
				t.Fatal("restore of a corrupt checkpoint succeeded")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q does not name %q", err, want)
				}
			}
		})
	}
}

// TestRestoreModelContentChecksumMismatch pins the end-to-end seal: a
// checkpoint whose blocks read back clean (they were rewritten whole,
// so block checksums match) but whose content differs from what
// WriteModel sealed must fail restore — and with no earlier checkpoint
// to fall back to, the rollback-exhausted error wraps it.
func TestRestoreModelContentChecksumMismatch(t *testing.T) {
	rt := testRuntime()
	rt.SetIntegrityChecks(true)
	m := model.New()
	m.Set("mean", writable.Vector{4, 5})
	rt.WriteModel("m", m)

	imp := model.New()
	imp.Set("mean", writable.Vector{-9, 9})
	rt.FS().Delete(checkpointName("m", 0))
	rt.FS().CreateWithData(checkpointName("m", 0), imp.Encode(nil), 0)

	_, err := rt.RestoreModel("m")
	if err == nil {
		t.Fatal("restore of a swapped checkpoint succeeded")
	}
	for _, want := range []string{"content checksum mismatch", "no verified checkpoint to roll back to"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
}

// TestRestoreModelRollsBack is the recovery half: when every replica of
// the latest checkpoint is damaged, restore must roll back to the
// newest earlier checkpoint that still verifies, count the rollback,
// and record it on the timeline.
func TestRestoreModelRollsBack(t *testing.T) {
	rt := testRuntime()
	tr := trace.New()
	rt.SetTracer(tr)
	rt.SetIntegrityChecks(true)
	m0 := model.New()
	m0.Set("mean", writable.Vector{1, 1})
	rt.WriteModel("m", m0)
	m1 := model.New()
	m1.Set("mean", writable.Vector{2, 2})
	rt.WriteModel("m", m1)

	if n := rt.FS().CorruptFileAll(checkpointName("m", 1), 99); n == 0 {
		t.Fatal("CorruptFileAll damaged no replicas")
	}
	got, err := rt.RestoreModel("m")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Encode(nil), m0.Encode(nil)) {
		t.Fatalf("rollback restored %v, want the seq-0 model %v", got, m0)
	}
	if rt.IntegrityRollbacks() != 1 {
		t.Fatalf("IntegrityRollbacks = %d, want 1", rt.IntegrityRollbacks())
	}
	if countKind(tr, trace.KindCheckpointRollback) != 1 {
		t.Fatalf("trace has %d checkpoint-rollback events, want 1", countKind(tr, trace.KindCheckpointRollback))
	}

	// With detection off the same damage is silent poison: the raw read
	// serves the damaged bytes, no rollback engages, and the restore
	// either fails outright or hands back a wrong model.
	blind := testRuntime()
	blind.SetIntegrityChecks(false)
	blind.WriteModel("m", m0)
	blind.WriteModel("m", m1)
	blind.FS().CorruptFileAll(checkpointName("m", 1), 99)
	if blind.IntegrityRollbacks() != 0 {
		t.Fatal("checks-off runtime counted a rollback")
	}
	if got, err := blind.RestoreModel("m"); err == nil {
		if reflect.DeepEqual(got.Encode(nil), m1.Encode(nil)) {
			t.Fatal("checks-off restore of a damaged checkpoint returned the undamaged model")
		}
	} else if strings.Contains(err.Error(), "roll back") {
		t.Fatalf("checks-off restore attempted rollback: %v", err)
	}
}

// FuzzCheckpointDecode fuzzes the full restore path — pointer, decode,
// verify, rollback — with arbitrary bytes planted as the latest
// checkpoint, full or delta. It must never panic: any undecodable input
// either rolls back to the verified seq-0 anchor or fails typed.
func FuzzCheckpointDecode(f *testing.F) {
	full := model.New()
	full.Set("mean", writable.Vector{1, 2})
	next := model.New()
	next.Set("mean", writable.Vector{1, 3})
	validDelta := binary.AppendUvarint(nil, 0)
	validDelta = model.EncodeDelta(full, next, validDelta)
	f.Add(false, full.Encode(nil))
	f.Add(true, validDelta)
	f.Add(true, []byte{0x80})
	f.Add(true, []byte{})
	f.Add(false, []byte("garbage"))
	f.Add(true, binary.AppendUvarint(nil, 1<<40))
	f.Fuzz(func(t *testing.T, isDelta bool, data []byte) {
		rt := testRuntime()
		rt.SetIntegrityChecks(true)
		anchor := model.New()
		anchor.Set("mean", writable.Vector{3, 4})
		rt.WriteModel("fz", anchor)
		plantCheckpoint(rt, "fz", 1, isDelta, data)
		m, err := rt.RestoreModel("fz")
		if err == nil && m == nil {
			t.Fatal("restore returned neither model nor error")
		}
	})
}

package core_test

import (
	"fmt"

	"repro/internal/apps/kmeans"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/simcluster"
)

// ExampleRunPIC clusters a small synthetic dataset under partitioned
// iterative convergence on the paper's 6-node testbed.
func ExampleRunPIC() {
	points := data.GaussianMixture(1, 6_000, 4, 3, 100, 8).Points

	cluster := simcluster.New(simcluster.Small())
	rt := core.NewRuntime(cluster, dfs.DefaultConfig())

	app := kmeans.New(4, 0.5)
	in := mapred.NewInput(kmeans.Records(points), cluster, cluster.MapSlots())

	res, err := core.RunPIC(rt, app, in, kmeans.InitialModel(points, 4),
		core.PICOptions{Partitions: 6})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("best-effort iterations: %d\n", res.BEIterations)
	fmt.Printf("top-off converged: %v\n", res.TopOffConverged)
	fmt.Printf("centroids: %d\n", res.Model.Len())
	// Output:
	// best-effort iterations: 4
	// top-off converged: true
	// centroids: 4
}

// ExampleRunIC runs the conventional baseline on the same problem.
func ExampleRunIC() {
	points := data.GaussianMixture(1, 6_000, 4, 3, 100, 8).Points

	cluster := simcluster.New(simcluster.Small())
	rt := core.NewRuntime(cluster, dfs.DefaultConfig())

	app := kmeans.New(4, 0.5)
	in := mapred.NewInput(kmeans.Records(points), cluster, cluster.MapSlots())

	res, err := core.RunIC(rt, app, in, kmeans.InitialModel(points, 4), nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("converged: %v with iterations: %v\n", res.Converged, res.Iterations > 0)
	// Output:
	// converged: true with iterations: true
}

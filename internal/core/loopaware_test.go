package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/writable"
)

// Loop-aware chaos regression tests.
//
// The meanSeeker chaos workload gains a fused-capable twin here so the
// invariant-input cache is actually exercised under failure plans: a
// crash must evict exactly the dead node's cache (re-homed splits
// re-stage cold on survivors), a network partition must retry the model
// delta with the same accounting as a cold run, and in every case the
// warm run's simulated observables must match the cold run's exactly.

// fusedMeanMapper is meanSeeker's mapper with the loop-aware fused
// capabilities bolted on. Every arithmetic step reproduces the cold
// pipeline's floating-point order exactly: the combiner clones the
// first emitted value and adds the rest in arrival order, so the fused
// kernels copy the first point and add the rest in record order.
type fusedMeanMapper struct{}

func (fusedMeanMapper) Map(_ string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
	p := v.(writable.Vector)
	withCount := append(p.Clone(), 1)
	emit.Emit("mean", withCount)
	return nil
}

// packedMeanPoints is the cached derived form: points flattened into
// one contiguous array.
type packedMeanPoints struct {
	flat    []float64
	n, dims int
}

func (p *packedMeanPoints) SizeBytes() int64 { return int64(8 * len(p.flat)) }

func (fusedMeanMapper) NewDerived(recs []mapred.Record) mapred.SplitDerived {
	if len(recs) == 0 {
		return nil
	}
	first, ok := recs[0].Value.(writable.Vector)
	if !ok || len(first) == 0 {
		return nil
	}
	dims := len(first)
	pp := &packedMeanPoints{flat: make([]float64, 0, len(recs)*dims), n: len(recs), dims: dims}
	for _, r := range recs {
		p, ok := r.Value.(writable.Vector)
		if !ok || len(p) != dims {
			return nil
		}
		pp.flat = append(pp.flat, p...)
	}
	return pp
}

func (fusedMeanMapper) MapSplit(d mapred.SplitDerived, _ *model.Model, emit mapred.Emitter) (int64, int64, error) {
	pp := d.(*packedMeanPoints)
	acc := make(writable.Vector, pp.dims+1)
	for i := 0; i < pp.n; i++ {
		row := pp.flat[i*pp.dims : (i+1)*pp.dims]
		if i == 0 {
			copy(acc, row)
			acc[pp.dims] = 1
		} else {
			for j, x := range row {
				acc[j] += x
			}
			acc[pp.dims] += 1
		}
	}
	rec := mapred.Record{Key: "mean", Value: make(writable.Vector, pp.dims+1)}
	emit.Emit("mean", acc)
	return int64(pp.n), int64(pp.n) * rec.Size(), nil
}

func (fusedMeanMapper) FuseLocal(ds []mapred.SplitDerived, _ *model.Model, _ func(int, func(int)), emit mapred.Emitter) (int64, error) {
	var acc writable.Vector
	var total int64
	dims := -1
	for _, d := range ds {
		pp := d.(*packedMeanPoints)
		if dims < 0 {
			dims = pp.dims
		} else if pp.dims != dims {
			return 0, mapred.ErrFusedUnsupported
		}
		for i := 0; i < pp.n; i++ {
			row := pp.flat[i*pp.dims : (i+1)*pp.dims]
			if acc == nil {
				acc = make(writable.Vector, pp.dims+1)
				copy(acc, row)
				acc[pp.dims] = 1
			} else {
				for j, x := range row {
					acc[j] += x
				}
				acc[pp.dims] += 1
			}
			total++
		}
	}
	if acc != nil {
		emit.Emit("mean", acc)
	}
	return total, nil
}

// fusedSeeker is meanSeeker with the fused mapper and loop-aware
// partition layout reuse.
type fusedSeeker struct{ meanSeeker }

func (a *fusedSeeker) Iteration(rt *Runtime, in *mapred.Input, m *model.Model) (*model.Model, error) {
	job := &mapred.Job{
		Name:     "mean",
		Mapper:   fusedMeanMapper{},
		Combiner: sumReducer{},
		Reducer:  sumReducer{},
	}
	out, err := rt.RunJob(job, in, m)
	if err != nil {
		return nil, err
	}
	cur, _ := m.Vector("mean")
	next := model.New()
	for _, rec := range out.Records {
		acc := rec.Value.(writable.Vector)
		n := acc[len(acc)-1]
		moved := make(writable.Vector, len(acc)-1)
		for i := range moved {
			moved[i] = cur[i] + 0.5*(acc[i]/n-cur[i])
		}
		next.Set("mean", moved)
	}
	return next, nil
}

// PartitionModels implements LoopPartitioner: meanSeeker's Partition
// deals records deterministically and copies the model, so the stepper
// may pin the record layout and rebuild only the models.
func (a *fusedSeeker) PartitionModels(m *model.Model, p int) []*model.Model {
	return CopyModels(m, p)
}

// runLoopChaosPIC runs the fused chaos workload under optional failure
// and network plans, warm or cold.
func runLoopChaosPIC(t *testing.T, failplan *simcluster.FailurePlan, netplan *simnet.NetworkPlan, warm bool) (*PICResult, *Runtime, *trace.Tracer) {
	t.Helper()
	cluster := simcluster.New(simcluster.Config{
		Nodes:              4,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
	cluster.SetFailurePlan(failplan)
	cluster.SetNetworkPlan(netplan)
	rt := NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 10})
	if !warm {
		rt.SetLoopCache(false)
	}
	tr := trace.New()
	rt.SetTracer(tr)
	if netplan != nil {
		rt.Engine().TransferTimeout = 1
		rt.Engine().TransferRetries = 2
	}
	rt.FS().CreateWithData("input/points", make([]byte, 200<<10), 0)
	in, _ := pointsInput(rt, 40)
	opts := chaosPICOpts
	if netplan != nil {
		opts.MergeQuorum = 3
		opts.MergeTimeout = 0.5
	}
	res, err := RunPIC(rt, &fusedSeeker{meanSeeker{eps: 1e-9}}, in, startModel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, rt, tr
}

// renderSansCache renders a timeline without the cache's point
// annotations — the only events permitted to differ cold vs warm.
func renderSansCache(tr *trace.Tracer) string {
	var sb strings.Builder
	for _, e := range tr.Events() {
		if e.Kind == trace.KindCacheWarm || e.Kind == trace.KindCacheEvict {
			continue
		}
		fmt.Fprintf(&sb, "%s|%s|%v|%v|%d|%d|%d|%d\n",
			e.Kind, e.Name, e.Start, e.End, e.Bytes, e.Lane, e.ID, e.Parent)
	}
	return sb.String()
}

// TestLoopAwareChaosWarmMatchesCold is the cache-coherence-under-faults
// conformance check: with a node crash scripted mid-run, a warm run's
// metrics, final model and timeline (cache annotations aside) must be
// byte-identical to a cold run under the same plan.
func TestLoopAwareChaosWarmMatchesCold(t *testing.T) {
	healthy, _, _ := runLoopChaosPIC(t, nil, nil, true)
	if !healthy.TopOffConverged {
		t.Fatal("healthy warm run did not converge")
	}
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 0, Time: simtime.Time(healthy.BEDuration) / 3},
	}}
	cold, _, coldTr := runLoopChaosPIC(t, plan, nil, false)
	warmRes, _, warmTr := runLoopChaosPIC(t, plan, nil, true)
	if cold.Metrics != warmRes.Metrics {
		t.Fatalf("metrics differ cold vs warm under a crash:\n%+v\n%+v", cold.Metrics, warmRes.Metrics)
	}
	if cold.Duration != warmRes.Duration {
		t.Fatalf("durations differ cold vs warm: %v vs %v", cold.Duration, warmRes.Duration)
	}
	if string(cold.Model.Encode(nil)) != string(warmRes.Model.Encode(nil)) {
		t.Fatal("final models differ cold vs warm under a crash")
	}
	if renderSansCache(coldTr) != renderSansCache(warmTr) {
		t.Fatalf("timelines differ cold vs warm (cache events excluded):\n--- cold ---\n%s--- warm ---\n%s",
			renderSansCache(coldTr), renderSansCache(warmTr))
	}
}

// TestLoopAwareChaosCrashEvictsOnlyDeadNode crashes one node mid-family:
// exactly that node's cache is evicted, the survivors keep theirs, and
// the splits re-homed off the dead node re-stage cold (extra misses
// relative to a healthy run).
func TestLoopAwareChaosCrashEvictsOnlyDeadNode(t *testing.T) {
	healthy, healthyRt, _ := runLoopChaosPIC(t, nil, nil, true)
	healthyStats := healthyRt.LoopCacheStats()
	if healthyStats.Hits == 0 || healthyStats.Misses == 0 {
		t.Fatalf("healthy warm run exercised no cache: %+v", healthyStats)
	}
	if healthyStats.Evictions != 0 {
		t.Fatalf("healthy run evicted %d entries with nothing failing", healthyStats.Evictions)
	}

	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 0, Time: simtime.Time(healthy.BEDuration) / 3},
	}}
	res, rt, tr := runLoopChaosPIC(t, plan, nil, true)
	if !res.TopOffConverged {
		t.Fatal("crash run did not converge")
	}
	stats := rt.LoopCacheStats()
	if stats.Evictions == 0 {
		t.Fatal("crash evicted nothing from the dead node's cache")
	}
	if countKind(tr, trace.KindCacheEvict) == 0 {
		t.Fatal("trace has no cache-evict events for the crash")
	}
	if countKind(tr, trace.KindCacheWarm) == 0 {
		t.Fatal("trace has no cache-warm events")
	}
	// The dead node's cache is empty; at least one survivor's is not.
	if entries, bytes := rt.LoopFamily().NodeResident(0); entries != 0 || bytes != 0 {
		t.Fatalf("crashed node still holds %d cached entries (%d bytes)", entries, bytes)
	}
	surviving := 0
	for n := 1; n < 4; n++ {
		if entries, _ := rt.LoopFamily().NodeResident(n); entries > 0 {
			surviving++
		}
	}
	if surviving == 0 {
		t.Fatal("crash emptied the survivors' caches too")
	}
	// Re-homed splits re-stage cold on their new homes.
	if stats.Misses <= healthyStats.Misses {
		t.Fatalf("crash run staged %d splits, healthy run %d — re-homed splits did not re-stage",
			stats.Misses, healthyStats.Misses)
	}
}

// TestLoopAwareNetChaosRetryAccounting drops a deep core brownout onto
// the middle of a warm IC run: the per-iteration delta shipments blow
// the transfer deadline and retry through the window with exactly the
// cold run's retry accounting — RetryBytes present once, not
// double-counted, and every other metric identical.
func TestLoopAwareNetChaosRetryAccounting(t *testing.T) {
	run := func(warm bool, plan *simnet.NetworkPlan) (*ICResult, mapred.FamilyStats) {
		cluster := simcluster.New(simcluster.Config{
			Nodes:              4,
			RackSize:           2,
			MapSlotsPerNode:    2,
			ReduceSlotsPerNode: 1,
			ComputeRate:        1e6,
			NodeBandwidth:      1e6,
			RackBandwidth:      4e6,
			CoreBandwidth:      4e6,
		})
		cluster.SetNetworkPlan(plan)
		rt := NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 10})
		if !warm {
			rt.SetLoopCache(false)
		}
		rt.Engine().TransferTimeout = 0.05
		rt.Engine().TransferRetries = 3
		in, _ := pointsInput(rt, 40)
		res, err := RunIC(rt, &fusedSeeker{meanSeeker{eps: 1e-9}}, in, startModel(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, rt.LoopCacheStats()
	}
	healthy, _ := run(true, nil)
	if !healthy.Converged {
		t.Fatal("healthy run did not converge")
	}
	// Core capacity at one millionth for a one-second window in the
	// middle of the run: transfer attempts inside it blow the 0.05 s
	// deadline and bridge the window on a later retry.
	mid := simtime.Time(healthy.Duration) / 3
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultCore, Start: mid, End: mid + 1, Factor: 1e-6},
	}}
	cold, coldStats := run(false, plan)
	warmRes, warmStats := run(true, plan)
	if coldStats.Hits != 0 || coldStats.Misses != 0 {
		t.Fatalf("cold run touched the cache: %+v", coldStats)
	}
	if warmStats.Hits == 0 {
		t.Fatal("warm run under the brownout hit nothing — cache not exercised")
	}
	if cold.Metrics.TransferRetries == 0 || cold.Metrics.RetryBytes == 0 {
		t.Fatalf("brownout caused no retries in the cold run: %+v", cold.Metrics)
	}
	if warmRes.Metrics.TransferRetries != cold.Metrics.TransferRetries {
		t.Fatalf("TransferRetries differ warm vs cold: %d vs %d",
			warmRes.Metrics.TransferRetries, cold.Metrics.TransferRetries)
	}
	if warmRes.Metrics.RetryBytes != cold.Metrics.RetryBytes {
		t.Fatalf("RetryBytes differ warm vs cold: %d vs %d — delta shipment double-counted",
			warmRes.Metrics.RetryBytes, cold.Metrics.RetryBytes)
	}
	if cold.Metrics != warmRes.Metrics {
		t.Fatalf("metrics differ warm vs cold under the brownout:\n%+v\n%+v", cold.Metrics, warmRes.Metrics)
	}
	if string(cold.Model.Encode(nil)) != string(warmRes.Model.Encode(nil)) {
		t.Fatal("final models differ warm vs cold under the brownout")
	}
}

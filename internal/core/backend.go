package core

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Backend selects the execution engine an iteration's jobs run on. The
// IC and PIC drivers are backend-neutral: an App's Iteration runs its
// mapred jobs through Runtime.RunJob, which executes them on the
// selected backend, and an App that additionally implements VertexApp
// runs natively as a BSP vertex program when the BSP backend is
// selected.
type Backend string

const (
	// BackendMapred is the default MapReduce engine: per-iteration jobs
	// with map, shuffle and reduce phases.
	BackendMapred Backend = "mapred"
	// BackendBSP runs iterations as Pregel-style superstep programs:
	// native vertex programs for apps that provide one, the
	// partition-level adapter (split vertices → message exchange →
	// reduce vertices) for everything else.
	BackendBSP Backend = "bsp"
)

// BackendError is the typed "unsupported on this backend" error: a
// feature combination that a backend cannot honor fails loudly instead
// of silently degrading.
type BackendError struct {
	Backend Backend
	Feature string
	Reason  string
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("core: backend %q does not support %s: %s", e.Backend, e.Feature, e.Reason)
}

// VertexApp is optionally implemented by an App that has a native
// vertex program: under the BSP backend its iterations skip the mapred
// job shape entirely and run per-vertex compute with message passing.
// VertexProgram builds a fresh program for one iteration over (in, m);
// it must not mutate m, and the returned program must implement
// bsp.Modeler so the runtime can assemble the next model. Vertex state
// is per-vertex (model keys partition across vertices), so the model
// distribution is priced as a partitioned share per home node — the
// same accounting a PartitionedModel mapred job gets.
type VertexApp interface {
	App
	VertexProgram(in *mapred.Input, m *model.Model) (bsp.Program, error)
}

// MergeFinalizer is optionally implemented by a PICApp whose Merge does
// app-specific post-processing after concatenating partials (dropping
// frozen boundary keys, recomputing cross-partition terms). The
// distributed and hierarchical merge paths combine partials key by key
// and never call Merge, so they apply FinalizeMerge to the key-merged
// model instead; the flat gather path ignores it (Merge already
// finalizes). merged may be mutated and returned; prev is the model the
// best-effort iteration started from and must not be mutated.
type MergeFinalizer interface {
	FinalizeMerge(merged, prev *model.Model) (*model.Model, error)
}

// SetBackend selects the execution backend for jobs and iterations run
// through this runtime (and inherited by its forks). Selecting the BSP
// backend validates the engine configuration: mapred-specific fault and
// scheduling knobs that BSP's lockstep execution model cannot honor are
// rejected with a typed *BackendError rather than silently ignored.
// Crash fault plans (restart at the barrier) and network plans (typed
// transfer errors the IC driver waits out) are fully supported.
func (rt *Runtime) SetBackend(b Backend) error {
	switch b {
	case "", BackendMapred:
		rt.backend = BackendMapred
		return nil
	case BackendBSP:
	default:
		return &BackendError{Backend: b, Feature: "backend selection", Reason: "unknown backend"}
	}
	e := rt.engine
	switch {
	case e.FailEveryNthMapTask > 0:
		return &BackendError{Backend: BackendBSP, Feature: "task-level failure injection (FailEveryNthMapTask)",
			Reason: "BSP has no per-task retry; node crashes restart the superstep program at the barrier"}
	case e.StraggleEveryNthMapTask > 0:
		return &BackendError{Backend: BackendBSP, Feature: "straggler injection (StraggleEveryNthMapTask)",
			Reason: "BSP compute is pinned to vertex homes; there is no task list to straggle"}
	case e.SpeculativeExecution:
		return &BackendError{Backend: BackendBSP, Feature: "speculative execution",
			Reason: "BSP cannot run backup copies of pinned vertex work"}
	case e.FairSharingNetwork:
		return &BackendError{Backend: BackendBSP, Feature: "max-min fair shuffle pricing (FairSharingNetwork)",
			Reason: "BSP message exchanges are priced with the bottleneck transfer model only"}
	case e.TransferTimeout > 0 || e.TransferRetries > 0:
		return &BackendError{Backend: BackendBSP, Feature: "transfer retry (TransferTimeout/TransferRetries)",
			Reason: "BSP surfaces transfer faults to the driver, which blocks until the network plan transitions"}
	}
	rt.backend = BackendBSP
	return nil
}

// Backend reports the selected execution backend.
func (rt *Runtime) Backend() Backend {
	if rt.backend == "" {
		return BackendMapred
	}
	return rt.backend
}

// bspEngine lazily builds the runtime's BSP engine over its cluster
// view, refreshing the derived cost model on every call so later
// SetCostModel calls on the mapred engine stay coherent across
// backends.
func (rt *Runtime) bspEngine() *bsp.Engine {
	if rt.bspEng == nil {
		rt.bspEng = bsp.NewEngine(rt.Cluster())
	}
	rt.bspEng.SetCostModel(bsp.DeriveCost(rt.engine.CostModelValue()))
	rt.bspEng.IntegrityChecks = rt.IntegrityChecks()
	return rt.bspEng
}

// runIteration is the backend dispatch seam for one driver iteration:
// the mapred backend (and any app without a native vertex program) runs
// the app's ordinary Iteration — under BSP its framework jobs divert to
// the partition-level adapter inside RunJob — while a VertexApp on the
// BSP backend runs its native superstep program.
func (rt *Runtime) runIteration(app App, in *mapred.Input, m *model.Model) (*model.Model, error) {
	if rt.Backend() != BackendBSP {
		return app.Iteration(rt, in, m)
	}
	va, ok := app.(VertexApp)
	if !ok {
		return app.Iteration(rt, in, m)
	}
	return rt.runVertexIteration(va, in, m)
}

// runVertexIteration executes one native vertex-program iteration on
// the BSP engine, with the same clock/metrics/trace bookkeeping RunJob
// gives a framework job: the BSP run appears as one job event whose
// children are its superstep and barrier spans.
func (rt *Runtime) runVertexIteration(app VertexApp, in *mapred.Input, m *model.Model) (*model.Model, error) {
	e := rt.bspEngine()
	start := rt.now()
	opt := &bsp.RunOptions{
		Name:             app.Name(),
		At:               start,
		Local:            rt.local,
		Workers:          rt.engine.Workers,
		Model:            m,
		PartitionedModel: true,
		Family:           rt.family,
	}
	if !rt.local {
		opt.ModelHome = rt.LiveModelHome()
	}
	res, err := e.Run(func() (bsp.Program, error) { return app.VertexProgram(in, m) }, opt)
	if err != nil {
		return nil, err
	}
	modeler, ok := res.Program.(bsp.Modeler)
	if !ok {
		return nil, &BackendError{Backend: BackendBSP, Feature: fmt.Sprintf("vertex program for %s", app.Name()),
			Reason: "program does not implement bsp.Modeler"}
	}
	rt.finishBSP(app.Name(), start, res, rt.local)
	next, err := modeler.Model(m)
	if err != nil {
		return nil, fmt.Errorf("core: %s: assemble model from vertex program: %w", app.Name(), err)
	}
	return next, nil
}

// finishBSP folds one completed BSP run into the runtime: clock,
// metrics, the job trace event with superstep/barrier children, and the
// bsp.* registry family.
func (rt *Runtime) finishBSP(name string, start simtime.Time, res *bsp.Result, local bool) {
	folded := res.Metrics.Fold(local)
	rt.metrics.Add(folded)
	rt.elapsed += folded.Duration
	rt.syncFaults()
	kind := trace.KindJob
	if local {
		kind = trace.KindLocalJob
	}
	id := rt.tracer.NextID()
	rt.tracer.Record(trace.Event{
		Kind: kind, Name: name, Start: start, End: rt.now(),
		Bytes: folded.ShuffleNetworkBytes + folded.ModelBytes, Lane: rt.lane,
		ID: id, Parent: rt.span,
	})
	if rt.tracer != nil && !local {
		for _, ev := range res.Spans {
			ev.Name = name + "/" + ev.Name
			ev.Lane = rt.lane
			ev.Parent = id
			rt.tracer.Record(ev)
		}
	}
	rt.observeBSP(res.Metrics, local)
	rt.observeCache(start)
	rt.observeNow()
}

// observeBSP records one BSP run into the metrics registry: the bsp.*
// counter family always, plus per-run series for framework runs (local
// best-effort solves are counter-only, like mapred local jobs).
func (rt *Runtime) observeBSP(bm bsp.Metrics, local bool) {
	if rt.obs == nil {
		return
	}
	rt.obs.Counter("bsp.jobs").Add(1)
	rt.obs.Counter("bsp.supersteps").Add(float64(bm.Supersteps))
	rt.obs.Counter("bsp.messages").Add(float64(bm.Messages))
	rt.obs.Counter("bsp.combined_messages").Add(float64(bm.CombinedMessages))
	rt.obs.Counter("bsp.message_bytes").Add(float64(bm.MessageBytes))
	if bm.MessageNetworkBytes != 0 {
		rt.obs.Counter("bsp.message_network_bytes").Add(float64(bm.MessageNetworkBytes))
	}
	if bm.MessageCrossRackBytes != 0 {
		rt.obs.Counter("bsp.message_cross_rack_bytes").Add(float64(bm.MessageCrossRackBytes))
	}
	if bm.Restarts != 0 {
		rt.obs.Counter("bsp.restarts").Add(float64(bm.Restarts))
	}
	for _, p := range [...]struct {
		phase string
		d     float64
	}{
		{"compute", float64(bm.ComputePhase)},
		{"message", float64(bm.MessagePhase)},
		{"barrier", float64(bm.BarrierPhase)},
		{"model", float64(bm.ModelPhase)},
	} {
		if p.d != 0 {
			rt.obs.Counter("bsp.phase_seconds", metrics.L("phase", p.phase)...).Add(p.d)
		}
	}
	if !local {
		now := rt.now()
		rt.obs.Series("bsp.job_seconds").Sample(now, float64(bm.Duration))
		rt.obs.Series("bsp.barrier_seconds").Sample(now, float64(bm.BarrierPhase))
	}
}

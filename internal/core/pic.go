package core

import (
	"fmt"
	"strconv"

	"repro/internal/corrupt"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/writable"
)

// PICOptions configure a partitioned-iterative-convergence run (the
// paper's Figure 3 template).
type PICOptions struct {
	// Partitions is the number of sub-problems P (required, ≥ 1). When
	// P exceeds the cluster size, several sub-problems share a node
	// group and run back to back, as the paper's §III-B allows ("we
	// can create more sub-problems than the number of nodes").
	Partitions int
	// MaxBEIterations bounds the best-effort phase (default 50).
	MaxBEIterations int
	// MaxLocalIterations bounds each sub-problem's local convergence
	// loop within one best-effort iteration (default 200).
	MaxLocalIterations int
	// MaxTopOffIterations bounds the top-off phase (default 1000).
	MaxTopOffIterations int
	// Observer receives a Sample per best-effort iteration (with the
	// merged model) and per top-off iteration.
	Observer Observer
	// DistributedMerge executes each best-effort merge as a MapReduce
	// job over the partial models (§III-C) instead of gathering them
	// to the driver. Requires the application to implement KeyMerger.
	DistributedMerge bool
	// HierarchicalMerge executes each best-effort merge as a two-level
	// rack tree: partials pre-combine on a per-rack aggregator over
	// intra-rack links and only one combined model per rack crosses the
	// core switch, with the scatter deduplicated symmetrically when a
	// rack's partitions share a starting model. Requires the application
	// to implement WeightedKeyMerger; mutually exclusive with
	// DistributedMerge. The tree reduction equals the flat one up to
	// floating-point summation order (each strategy is individually
	// deterministic), so flat and hierarchical runs are compared by
	// quality and traffic, not by byte identity.
	HierarchicalMerge bool

	// MergeQuorum is the minimum number Q of fresh partial models a
	// best-effort merge may proceed with when a network fault cuts some
	// node groups off from the driver; the cut partitions merge their
	// starting model instead (same graceful degradation as a lost
	// partial, §VII). Zero requires all Partitions — today's strict
	// behavior — so faults without a quorum surface as errors. Only
	// consulted when the cluster carries a simnet.NetworkPlan.
	MergeQuorum int
	// MergeTimeout is how long the merge waits for cut groups to come
	// back before settling for a quorum. Zero merges a quorum
	// immediately; with fewer than MergeQuorum fresh partials the wait
	// continues regardless, since merging below quorum is never allowed.
	MergeTimeout simtime.Duration
	// ResumeFromCheckpoint starts the best-effort phase from the last
	// "<app>-be" model checkpoint when one exists in the DFS — the
	// driver-restart story: a run interrupted mid-phase (say, by a
	// partition it could not tolerate) resumes from its last merged
	// model instead of from scratch.
	ResumeFromCheckpoint bool
}

func (o PICOptions) withDefaults() PICOptions {
	if o.MaxBEIterations <= 0 {
		o.MaxBEIterations = 50
	}
	if o.MaxLocalIterations <= 0 {
		o.MaxLocalIterations = 200
	}
	if o.MaxTopOffIterations <= 0 {
		o.MaxTopOffIterations = 1000
	}
	return o
}

// PICResult reports a PIC run with the per-phase breakdown the paper's
// evaluation tables and figures are built from.
type PICResult struct {
	// Model is the final model after the top-off phase.
	Model *model.Model
	// BestEffortModel is the model at the end of the best-effort
	// phase, before top-off — compared against the IC solution in the
	// paper's §VI quality evaluation.
	BestEffortModel *model.Model

	// BEIterations is the number of best-effort iterations executed.
	BEIterations int
	// LocalIterations[b][i] is the local iteration count of
	// sub-problem i in best-effort iteration b (the paper's Table I).
	LocalIterations [][]int
	// TopOffIterations and TopOffConverged report the top-off phase.
	TopOffIterations int
	TopOffConverged  bool

	// DegradedMerges describes every best-effort merge that proceeded
	// on a quorum of partials because a network fault cut groups off
	// (empty for fault-free runs). ResumedFromCheckpoint reports that
	// the best-effort phase started from a restored "<app>-be"
	// checkpoint rather than the caller's initial model.
	DegradedMerges        []DegradedMergeInfo
	ResumedFromCheckpoint bool
	// Blocked is simulated time stalled on network faults: best-effort
	// dispatch/gather waits for reachable groups plus top-off
	// iterations stalled on severed transfers (see ICResult.Blocked).
	Blocked simtime.Duration

	// GroupRepairs counts sub-problem dispatches that ran on a repaired
	// node group — one shrunk around dead nodes, or a sibling standing
	// in for a fully-dead group. LostPartials counts best-effort
	// partials discarded because their group lost a node mid-iteration;
	// the merge proceeds with the partition's starting model in their
	// place, the graceful degradation of the paper's §VII (a
	// conventional IC iteration must instead re-execute).
	GroupRepairs int
	LostPartials int
	// RejectedPartials counts merge inputs (scatter or gather legs)
	// whose verified delivery failed under a corruption plan — the
	// checksum re-send budget ran out, or the path was severed
	// mid-retry. The partition's starting model stands in, through the
	// same stale machinery a cut group uses; with detection off this
	// stays zero and the damage flows into the merge silently.
	RejectedPartials int

	// Duration = BEDuration + TopOffDuration, in simulated seconds.
	Duration       simtime.Duration
	BEDuration     simtime.Duration
	TopOffDuration simtime.Duration

	// Metrics aggregate the whole run; BEMetrics and TopOffMetrics
	// split it by phase.
	Metrics       mapred.Metrics
	BEMetrics     mapred.Metrics
	TopOffMetrics mapred.Metrics

	// ModelUpdateBytes is replication traffic from persisting merged
	// and top-off models.
	ModelUpdateBytes int64
	// RepartitionBytes is the one-time traffic of distributing the
	// partitioned input data onto the node groups.
	RepartitionBytes int64
	// MergeTrafficBytes is the per-best-effort-iteration traffic of
	// scattering sub-problem models to groups and gathering partial
	// models back for the merge. Under DistributedMerge the gather
	// happens as the merge job's shuffle, so these bytes then also
	// appear in Metrics.ShuffleNetworkBytes — sum the two only for
	// centralized merges.
	MergeTrafficBytes int64
	// MergeCrossRackBytes is the subset of the scatter/gather traffic
	// that crossed the core switch — the bytes HierarchicalMerge exists
	// to reduce. Tracked for every merge strategy from the fabric's
	// cross-rack counter, so flat and hierarchical runs compare
	// like-for-like.
	MergeCrossRackBytes int64
}

// DegradedMergeInfo describes one best-effort merge that proceeded
// without a full complement of fresh partials.
type DegradedMergeInfo struct {
	// Iteration is the 1-based best-effort iteration.
	Iteration int
	// Arrived is how many fresh partial models made it to the merge.
	Arrived int
	// Stale lists the partition indices whose starting model stood in:
	// groups unreachable at dispatch (which never ran) and groups cut
	// off between dispatch and gather.
	Stale []int
	// Waited is the iteration's total network stall: the dispatch-side
	// wait for a quorum of reachable leaders plus the gather-side wait
	// hoping cut groups would come back before settling for the quorum.
	Waited simtime.Duration
}

// MaxLocalIterationsPerBE returns, for each best-effort iteration, the
// maximum local iteration count across sub-problems — the "(Max) number
// of Local Iterations" row of the paper's Table I.
func (r *PICResult) MaxLocalIterationsPerBE() []int {
	out := make([]int, len(r.LocalIterations))
	for b, iters := range r.LocalIterations {
		for _, n := range iters {
			if n > out[b] {
				out[b] = n
			}
		}
	}
	return out
}

// RunPIC executes app under partitioned iterative convergence on rt from
// the initial model m0: the best-effort phase (partition, solve
// sub-problems with in-memory local iterations on disjoint node groups,
// merge, repeat until best-effort convergence) followed by the top-off
// phase (the unmodified IC computation until true convergence). RunPIC
// is PICStepper driven to completion: a stepped run and a monolithic
// run are identical.
func RunPIC(rt *Runtime, app PICApp, in *mapred.Input, m0 *model.Model, opts PICOptions) (*PICResult, error) {
	s, err := NewPICStepper(rt, app, in, m0, opts)
	if err != nil {
		return nil, err
	}
	for {
		done, err := s.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return s.Result(), nil
		}
	}
}

// PICStepper is the resumable form of RunPIC: each Step executes one
// best-effort iteration while that phase lasts, then one top-off
// iteration, so a scheduler can suspend the run at any iteration
// boundary. Create one with NewPICStepper, call Step until it reports
// done, then read Result.
type PICStepper struct {
	rt      *Runtime
	app     PICApp
	in      *mapred.Input
	opt     PICOptions
	cluster *simcluster.Cluster
	nGroups int
	groups  []*simcluster.Cluster

	beConverged func(prev, next *model.Model) bool

	startElapsed    simtime.Duration
	startMetrics    mapred.Metrics
	startModelBytes int64
	beSpan          int64

	m             *model.Model
	res           *PICResult
	redistributed bool
	topOff        *ICStepper // non-nil once the best-effort phase closed
	done          bool

	// Loop-aware partition-layout reuse (apps implementing
	// LoopPartitioner): the record layout from the first Partition call,
	// reused verbatim on later best-effort iterations so each
	// sub-problem keeps the same backing arrays — and therefore its warm
	// job-family cache entries — across iterations. subIns/subInViews
	// cache each partition's Input per live group view; a partition is
	// rebuilt when group repair hands it a different view.
	layout     [][]mapred.Record
	subIns     []*mapred.Input
	subInViews []*simcluster.Cluster
}

// NewPICStepper prepares a PIC run over rt without executing anything.
func NewPICStepper(rt *Runtime, app PICApp, in *mapred.Input, m0 *model.Model, opts PICOptions) (*PICStepper, error) {
	opt := opts.withDefaults()
	if opt.Partitions < 1 {
		return nil, fmt.Errorf("core: RunPIC(%s): Partitions = %d, need ≥ 1", app.Name(), opt.Partitions)
	}
	if opt.MergeQuorum < 0 || opt.MergeQuorum > opt.Partitions {
		return nil, fmt.Errorf("core: RunPIC(%s): MergeQuorum = %d, need 0 ≤ Q ≤ Partitions (%d)",
			app.Name(), opt.MergeQuorum, opt.Partitions)
	}
	if opt.MergeTimeout < 0 {
		return nil, fmt.Errorf("core: RunPIC(%s): MergeTimeout = %g, cannot be negative",
			app.Name(), float64(opt.MergeTimeout))
	}
	if opt.HierarchicalMerge {
		if opt.DistributedMerge {
			return nil, fmt.Errorf("core: RunPIC(%s): HierarchicalMerge and DistributedMerge are mutually exclusive", app.Name())
		}
		if _, ok := app.(WeightedKeyMerger); !ok {
			return nil, fmt.Errorf("core: RunPIC(%s): HierarchicalMerge requires WeightedKeyMerger", app.Name())
		}
	}
	cluster := rt.Cluster()
	nGroups := min(opt.Partitions, cluster.Size())

	beConverged := app.Converged
	if bc, ok := app.(BEConvergedApp); ok {
		beConverged = bc.BEConverged
	}

	s := &PICStepper{
		rt:              rt,
		app:             app,
		in:              in,
		opt:             opt,
		cluster:         cluster,
		nGroups:         nGroups,
		groups:          cluster.Groups(nGroups),
		beConverged:     beConverged,
		startElapsed:    rt.Elapsed(),
		startMetrics:    rt.Metrics(),
		startModelBytes: rt.ModelUpdateBytes(),
		m:               m0,
		res:             &PICResult{},
	}
	// Driver restart: resume the best-effort phase from its last merged
	// model when one was checkpointed. A missing checkpoint is a fresh
	// start, not an error — the flag can be set unconditionally.
	if opt.ResumeFromCheckpoint {
		if m, err := rt.RestoreModel(app.Name() + "-be"); err == nil {
			s.m = m
			s.res.ResumedFromCheckpoint = true
			rt.tracer.Record(trace.Event{
				Kind: trace.KindCheckpoint, Name: app.Name() + "-be: resumed from checkpoint",
				Start: rt.now(), End: rt.now(), Lane: rt.lane,
			})
			if r := rt.obs; r != nil {
				r.Counter("core.checkpoint_resumes").Add(1)
			}
		}
	}
	// The best-effort phase span encloses scatter/gather transfers,
	// merge jobs and model writes; group-local job spans parent under it
	// too, via the forks' inherited span id.
	s.beSpan = rt.tracer.NextID()
	return s, nil
}

// Step executes one iteration of whichever phase the run is in.
func (s *PICStepper) Step() (bool, error) {
	if s.done {
		return true, nil
	}
	if s.topOff == nil {
		beDone, err := s.beStep()
		if err != nil {
			return false, err
		}
		if beDone {
			s.closeBE()
		}
		return false, nil
	}
	topDone, err := s.topOff.Step()
	if err != nil {
		return false, err
	}
	if topDone {
		s.finish()
		return true, nil
	}
	return false, nil
}

// Result returns the run's result once Step has reported done, nil
// before that.
func (s *PICStepper) Result() *PICResult {
	if !s.done {
		return nil
	}
	return s.res
}

// beStep runs one best-effort iteration: partition, solve sub-problems
// on the node groups, merge. It reports whether the best-effort phase
// is over (converged or iteration cap).
func (s *PICStepper) beStep() (bool, error) {
	rt, app, opt, res := s.rt, s.app, s.opt, s.res
	cluster, nGroups, groups := s.cluster, s.nGroups, s.groups
	m := s.m
	prevSpan := rt.span
	rt.span = s.beSpan
	defer func() { rt.span = prevSpan }()
	{
		mergeBytesBefore := res.MergeTrafficBytes
		mergeCrossBefore := res.MergeCrossRackBytes
		// Partition the problem. Apps implementing LoopPartitioner deal
		// records deterministically and model-independently, so after
		// the first iteration only the per-partition models are
		// refreshed and the record layout — with its backing arrays and
		// warm caches — is reused; Partition itself re-deals into fresh
		// arrays, which would turn every cached split cold.
		var subs []SubProblem
		var err error
		if s.layout != nil {
			if lp, ok := app.(LoopPartitioner); ok {
				if models := lp.PartitionModels(m, opt.Partitions); len(models) == opt.Partitions {
					subs = make([]SubProblem, opt.Partitions)
					for i := range subs {
						subs[i] = SubProblem{Records: s.layout[i], Model: models[i]}
					}
				}
			}
		}
		if subs == nil {
			subs, err = app.Partition(s.in, m, opt.Partitions)
			if err != nil {
				return false, fmt.Errorf("core: %s partition: %w", app.Name(), err)
			}
			if len(subs) != opt.Partitions {
				return false, fmt.Errorf("core: %s partition returned %d sub-problems, want %d",
					app.Name(), len(subs), opt.Partitions)
			}
			if _, ok := app.(LoopPartitioner); ok {
				s.layout = make([][]mapred.Record, len(subs))
				for i := range subs {
					s.layout[i] = subs[i].Records
				}
				s.subIns = make([]*mapred.Input, len(subs))
				s.subInViews = make([]*simcluster.Cluster, len(subs))
			}
		}

		// One-time charge: deal the partitioned data onto the groups.
		// Later best-effort iterations reuse the partition layout, so
		// the data is already resident (§III-B: the partition function
		// is fixed; only models move between iterations).
		if !s.redistributed {
			res.RepartitionBytes += rt.ChargeFlows(repartitionFlows(cluster.Nodes(), groups, subs))
			s.redistributed = true
		}

		// Group repair: refresh each group's live membership. A group
		// that lost some nodes shrinks to the survivors; a fully-dead
		// group's sub-problems move to the next usable sibling. The
		// best-effort phase tolerates this because merged models absorb
		// imperfect partials (§VII).
		liveGroups := make([]*simcluster.Cluster, nGroups)
		usable := 0
		for g := range groups {
			liveGroups[g] = rt.liveView(groups[g])
			if liveGroups[g] != nil {
				usable++
			}
		}
		if usable == 0 {
			return false, fmt.Errorf("core: %s: no live nodes remain for the best-effort groups", app.Name())
		}
		assign := make([]int, opt.Partitions)
		leaders := make([]int, opt.Partitions)
		for i := range assign {
			g := i % nGroups
			if liveGroups[g] == nil {
				from := g
				for liveGroups[g] == nil {
					g = (g + 1) % nGroups
				}
				res.GroupRepairs++
				rt.tracer.Record(trace.Event{
					Kind:  trace.KindGroupRepair,
					Name:  fmt.Sprintf("%s: partition %d moved from dead group %d to group %d", app.Name(), i, from, g),
					Start: rt.now(), End: rt.now(), Lane: rt.lane,
				})
			} else if liveGroups[g].Size() < groups[g].Size() {
				res.GroupRepairs++
				rt.tracer.Record(trace.Event{
					Kind: trace.KindGroupRepair,
					Name: fmt.Sprintf("%s: partition %d on group %d shrunk to %d/%d nodes",
						app.Name(), i, g, liveGroups[g].Size(), groups[g].Size()),
					Start: rt.now(), End: rt.now(), Lane: rt.lane,
				})
			}
			assign[i] = g
			leaders[i] = liveGroups[g].Nodes()[0]
		}

		// Network-fault probe: a group whose leader has no fabric path
		// from the model home at dispatch time can receive neither its
		// model nor its records, so its partitions sit this iteration
		// out and merge a stale partial (their starting model) — the
		// same graceful degradation as a lost partial. The local solves
		// themselves need no cross-group traffic, which is exactly why
		// the best-effort phase tolerates network turbulence (§VII).
		// Dispatching below quorum would be pointless, so while fewer
		// than MergeQuorum leaders are reachable the driver waits out
		// fault transitions before scattering at all.
		home := rt.LiveModelHome()
		fabric := cluster.Fabric()
		plan := cluster.NetworkPlan()
		quorum := opt.MergeQuorum
		if quorum == 0 {
			quorum = opt.Partitions
		}
		var waited simtime.Duration
		stale := make([]bool, opt.Partitions)
		if plan != nil {
			for {
				reachable := 0
				for i := range stale {
					stale[i] = !fabric.ReachableAt(home, leaders[i], rt.now())
					if !stale[i] {
						reachable++
					}
				}
				if reachable >= quorum {
					break
				}
				next, ok := plan.NextTransition(rt.now())
				if !ok {
					return false, fmt.Errorf("core: %s best-effort iteration %d: only %d of %d group leaders reachable (quorum %d) and no network transition ahead",
						app.Name(), res.BEIterations+1, reachable, opt.Partitions, quorum)
				}
				d := simtime.Duration(next - rt.now())
				rt.AdvanceTime(d)
				waited += d
				home = rt.LiveModelHome()
			}
		}

		// Scatter each sub-problem's starting model to its group —
		// directly from the model home, or through the rack aggregators
		// (deduplicated on the core links) under HierarchicalMerge.
		var scatter []simnet.Flow
		var scatterPart []int // flat scatter: flow index → partition
		if opt.HierarchicalMerge {
			scatter = hierarchicalScatterFlows(home, leaders, subs, planRacks(fabric, leaders, stale))
		} else {
			for i, sub := range subs {
				if stale[i] {
					continue
				}
				scatter = append(scatter, simnet.Flow{Src: home, Dst: leaders[i], Bytes: sub.Model.Size()})
				scatterPart = append(scatterPart, i)
			}
		}
		crossBefore := fabric.Counters().CrossRack
		scatterMoved, scatterDmg := rt.chargeFlowsVerified(scatter)
		res.MergeTrafficBytes += scatterMoved
		res.MergeCrossRackBytes += fabric.Counters().CrossRack - crossBefore
		s.applyScatterDamage(scatterDmg, scatterPart, stale, subs)

		// Solve the sub-problems independently — no synchronization or
		// communication between them. Groups run in parallel in
		// simulated time; sub-problems sharing a group run back to
		// back, so the phase takes the busiest group's total.
		deadBefore := rt.deadSnapshot()
		parts := make([]*model.Model, opt.Partitions)
		localIters := make([]int, opt.Partitions)
		groupBusy := make([]simtime.Duration, nGroups)
		for i, sub := range subs {
			if stale[i] {
				parts[i] = sub.Model
				continue
			}
			g := assign[i]
			subRT := rt.Fork(liveGroups[g], true)
			subRT.SetLane(g + 1)
			// Reuse the partition's Input while its live group view is
			// unchanged (liveView returns the identical view pointer when
			// nothing died); after a repair the input is rebuilt against
			// the new view, and its splits re-stage cold there.
			var subIn *mapred.Input
			if s.subIns != nil && s.subIns[i] != nil && s.subInViews[i] == liveGroups[g] {
				subIn = s.subIns[i]
			} else {
				subIn = mapred.NewInput(sub.Records, liveGroups[g], liveGroups[g].MapSlots())
				if s.subIns != nil {
					s.subIns[i] = subIn
					s.subInViews[i] = liveGroups[g]
				}
			}
			local, err := RunIC(subRT, app, subIn, sub.Model, &ICOptions{
				MaxIterations:      opt.MaxLocalIterations,
				DisableModelWrites: true,
			})
			if err != nil {
				return false, fmt.Errorf("core: %s sub-problem %d: %w", app.Name(), i, err)
			}
			parts[i] = local.Model
			localIters[i] = local.Iterations
			groupBusy[g] += subRT.Elapsed()
			rt.AddMetrics(subRT.Metrics())
		}
		var busiest simtime.Duration
		for _, b := range groupBusy {
			if b > busiest {
				busiest = b
			}
		}
		rt.AdvanceTime(busiest)
		res.LocalIterations = append(res.LocalIterations, localIters)

		// A node that crashed while the groups were solving takes its
		// group's in-memory partials with it. Merge over the survivors,
		// substituting the lost partition's starting model — no
		// progress there this iteration, but nothing else is lost.
		if crashed := newlyDead(rt, deadBefore); len(crashed) > 0 {
			for i := range parts {
				if !stale[i] && viewTouches(liveGroups[assign[i]], crashed) {
					parts[i] = subs[i].Model
					res.LostPartials++
					rt.tracer.Record(trace.Event{
						Kind:  trace.KindGroupRepair,
						Name:  fmt.Sprintf("%s: partial %d lost to mid-iteration crash, merging its starting model", app.Name(), i),
						Start: rt.now(), End: rt.now(), Lane: rt.lane,
					})
				}
			}
		}

		// Degraded gather: a group cut off between dispatch and gather
		// cannot deliver its partial. While cut groups exist, wait out
		// fault transitions — unconditionally while below the merge
		// quorum, and within MergeTimeout in the hope the cut heals —
		// then merge what arrived, stale partials standing in for the
		// rest. A cut that can never heal (no transition ahead) with
		// less than a quorum of partials is fatal.
		gatherStart := rt.now()
		if plan != nil {
			var gatherWaited simtime.Duration
			for {
				home = rt.LiveModelHome()
				arrived := 0
				for i := range leaders {
					if !stale[i] && fabric.ReachableAt(home, leaders[i], rt.now()) {
						arrived++
					}
				}
				if arrived == opt.Partitions {
					break // nothing cut: the fault-free common case
				}
				if arrived >= quorum && gatherWaited >= opt.MergeTimeout {
					break
				}
				next, ok := plan.NextTransition(rt.now())
				if !ok {
					if arrived >= quorum {
						break
					}
					return false, fmt.Errorf("core: %s best-effort iteration %d: only %d of %d partials reachable (quorum %d) and no network transition ahead",
						app.Name(), res.BEIterations+1, arrived, opt.Partitions, quorum)
				}
				d := simtime.Duration(next - rt.now())
				// With a quorum already in hand the wait is bounded by the
				// merge deadline, not the (possibly distant) transition.
				if rem := opt.MergeTimeout - gatherWaited; arrived >= quorum && d > rem {
					d = rem
				}
				rt.AdvanceTime(d)
				waited += d
				gatherWaited += d
			}
			// Groups still cut at merge time join the stale set.
			for i := range leaders {
				if !stale[i] && !fabric.ReachableAt(home, leaders[i], rt.now()) {
					stale[i] = true
					parts[i] = subs[i].Model
				}
			}
		}
		res.Blocked += waited
		var staleIdx []int
		for i, s := range stale {
			if s {
				staleIdx = append(staleIdx, i)
			}
		}
		if len(staleIdx) > 0 {
			info := DegradedMergeInfo{
				Iteration: res.BEIterations + 1,
				Arrived:   opt.Partitions - len(staleIdx),
				Stale:     staleIdx,
				Waited:    waited,
			}
			res.DegradedMerges = append(res.DegradedMerges, info)
			rt.tracer.Record(trace.Event{
				Kind: trace.KindDegradedMerge,
				Name: fmt.Sprintf("%s: merged %d/%d partials, stale %v",
					app.Name(), info.Arrived, opt.Partitions, info.Stale),
				Start: gatherStart, End: rt.now(), Lane: rt.lane,
			})
			if r := rt.obs; r != nil {
				r.Counter("core.degraded_merges").Add(1)
			}
		}

		// Merge the partial models: either as a real MapReduce job over
		// their key/value entries (§III-C), or by gathering them to the
		// driver and applying the application's merge function. Stale
		// partials already sit at the driver (they never left), so they
		// contribute no gather traffic and their merge-job splits are
		// homed on the driver, not the severed leader.
		var merged *model.Model
		if len(staleIdx) > 0 {
			leaders = append([]int(nil), leaders...)
			for _, i := range staleIdx {
				leaders[i] = rt.LiveModelHome()
			}
		}
		crossBefore = fabric.Counters().CrossRack
		if opt.DistributedMerge {
			km, ok := app.(KeyMerger)
			if !ok {
				return false, fmt.Errorf("core: %s: DistributedMerge requires KeyMerger", app.Name())
			}
			var mergeMetrics mapred.Metrics
			merged, mergeMetrics, err = distributedMerge(rt, app.Name(), km, parts, leaders)
			if err != nil {
				return false, err
			}
			res.MergeTrafficBytes += mergeMetrics.ShuffleNetworkBytes + mergeMetrics.NonLocalInputBytes
			if fin, ok := app.(MergeFinalizer); ok {
				merged, err = fin.FinalizeMerge(merged, m)
				if err != nil {
					return false, fmt.Errorf("core: %s merge finalize: %w", app.Name(), err)
				}
			}
		} else if opt.HierarchicalMerge {
			var traffic int64
			merged, traffic, err = hierarchicalMerge(rt, app.Name(), app.(WeightedKeyMerger),
				parts, leaders, stale, planRacks(fabric, leaders, stale))
			res.MergeTrafficBytes += traffic
			if err != nil {
				return false, err
			}
			if merged == nil {
				return false, fmt.Errorf("core: %s hierarchical merge returned a nil model", app.Name())
			}
			if fin, ok := app.(MergeFinalizer); ok {
				merged, err = fin.FinalizeMerge(merged, m)
				if err != nil {
					return false, fmt.Errorf("core: %s merge finalize: %w", app.Name(), err)
				}
			}
			// Like the flat centralized merge, the tree merge still runs
			// under the framework: one job overhead per iteration.
			rt.AdvanceTime(rt.Engine().CostModelValue().JobOverhead)
		} else {
			var gather []simnet.Flow
			for i, part := range parts {
				gather = append(gather, simnet.Flow{Src: leaders[i], Dst: rt.LiveModelHome(), Bytes: part.Size()})
			}
			gatherMoved, gatherDmg := rt.chargeFlowsVerified(gather)
			res.MergeTrafficBytes += gatherMoved
			s.applyGatherDamage(gatherDmg, stale, parts, subs)
			merged, err = app.Merge(parts, m)
			if err != nil {
				return false, fmt.Errorf("core: %s merge: %w", app.Name(), err)
			}
			if merged == nil {
				return false, fmt.Errorf("core: %s merge returned a nil model", app.Name())
			}
			// The centralized merge still runs under the framework, so
			// each best-effort iteration pays one job overhead on top
			// of the gather/scatter flows charged above.
			rt.AdvanceTime(rt.Engine().CostModelValue().JobOverhead)
		}
		res.MergeCrossRackBytes += fabric.Counters().CrossRack - crossBefore
		rt.WriteModel(app.Name()+"-be", merged)
		res.BEIterations++
		if r := rt.obs; r != nil {
			now := rt.now()
			delta := max(model.MaxVectorDelta(m, merged), model.MaxFloatDelta(m, merged))
			r.Series("core.be_delta").Sample(now, delta)
			r.Series("core.be_merge_bytes").Sample(now, float64(res.MergeTrafficBytes-mergeBytesBefore))
			r.Series("core.be_merge_core_bytes").Sample(now, float64(res.MergeCrossRackBytes-mergeCrossBefore))
			// Partition skew: the busiest group's solve time over the
			// mean across groups that did work — 1.0 is perfect balance.
			var total simtime.Duration
			used := 0
			for _, b := range groupBusy {
				if b > 0 {
					total += b
					used++
				}
			}
			skew := 1.0
			if total > 0 {
				skew = float64(busiest) * float64(used) / float64(total)
			}
			r.Series("core.be_skew").Sample(now, skew)
			// Straggler-attribution signals: every group's busy time
			// this iteration and every partition's record count under
			// its current group assignment, all stamped at the same
			// instant so the detector aligns iterations by sample time
			// even across group repairs.
			for g, b := range groupBusy {
				r.Series("core.be_group_seconds",
					metrics.L("group", strconv.Itoa(g))...).Sample(now, float64(b))
			}
			for i := range subs {
				r.Series("core.partition_records",
					metrics.L("group", strconv.Itoa(assign[i]), "partition", strconv.Itoa(i))...).Sample(now, float64(len(subs[i].Records)))
			}
		}
		if opt.Observer != nil {
			opt.Observer(Sample{
				Phase:     PhaseBestEffort,
				Iteration: res.BEIterations,
				Time:      simtime.Time(rt.Elapsed() - s.startElapsed),
				Model:     merged,
			})
		}
		converged := s.beConverged(m, merged)
		s.m = merged
		return converged || res.BEIterations >= opt.MaxBEIterations, nil
	}
}

// closeBE closes the best-effort phase — result fields, phase span,
// per-phase counters — and prepares the top-off stepper.
func (s *PICStepper) closeBE() {
	rt, res := s.rt, s.res
	res.BestEffortModel = s.m
	res.BEDuration = rt.Elapsed() - s.startElapsed
	res.BEMetrics = rt.Metrics().Sub(s.startMetrics)
	rt.tracer.Record(trace.Event{
		Kind:  trace.KindPhase,
		Name:  s.app.Name() + "/best-effort",
		Start: rt.now() - simtime.Time(res.BEDuration),
		End:   rt.now(),
		Lane:  rt.lane,
		ID:    s.beSpan,
	})
	if r := rt.obs; r != nil {
		r.Counter("core.group_repairs").Add(float64(res.GroupRepairs))
		r.Counter("core.lost_partials").Add(float64(res.LostPartials))
		r.Gauge("core.be_iterations").Set(float64(res.BEIterations))
	}

	// Top-off: the unmodified IC computation from the best-effort model.
	s.topOff = NewICStepper(rt, s.app, s.in, s.m, &ICOptions{
		MaxIterations: s.opt.MaxTopOffIterations,
		Observer:      s.opt.Observer,
		Phase:         PhaseTopOff,
		TimeOffset:    simtime.Time(res.BEDuration),
	})
}

// finish folds the finished top-off stepper into the final result.
func (s *PICStepper) finish() {
	rt, res := s.rt, s.res
	topOff := s.topOff.Result()
	res.Model = topOff.Model
	res.TopOffIterations = topOff.Iterations
	res.TopOffConverged = topOff.Converged
	res.TopOffDuration = topOff.Duration
	res.Blocked += topOff.Blocked
	res.TopOffMetrics = topOff.Metrics
	res.Duration = rt.Elapsed() - s.startElapsed
	res.Metrics = rt.Metrics().Sub(s.startMetrics)
	res.ModelUpdateBytes = rt.ModelUpdateBytes() - s.startModelBytes
	s.done = true
}

// applyScatterDamage folds scatter-leg corruption into the iteration:
// with detection on, a partition whose starting model could not be
// verified-delivered sits the iteration out and merges a stale partial
// (the same machinery a cut group uses); with detection off it solves
// from a silently perturbed model. Hierarchical scatters route through
// rack aggregators and are not attributed per partition (scatterPart
// is nil there) — verified re-sends still happened inside the charge.
func (s *PICStepper) applyScatterDamage(dmg []flowDamage, scatterPart []int, stale []bool, subs []SubProblem) {
	if len(dmg) == 0 || scatterPart == nil {
		return
	}
	rt := s.rt
	sortFlowDamage(dmg)
	for _, d := range dmg {
		i := scatterPart[d.idx]
		if rt.IntegrityChecks() {
			stale[i] = true
			s.res.RejectedPartials++
			rt.tracer.Record(trace.Event{
				Kind:  trace.KindCorruptionDetect,
				Name:  fmt.Sprintf("%s: partition %d model not verifiably deliverable, sitting this iteration out", s.app.Name(), i),
				Start: rt.now(), End: rt.now(), Lane: rt.lane, Parent: rt.span,
			})
			if rt.obs != nil {
				rt.obs.Counter("integrity.rejected_partials").Add(1)
			}
		} else {
			subs[i].Model = corrupt.PerturbModel(subs[i].Model.Clone(), d.seed)
		}
	}
}

// applyGatherDamage folds gather-leg corruption into the merge inputs:
// with detection on, a partial that failed verified delivery is
// rejected and its partition's starting model merged instead; with
// detection off the corrupt partial enters the merge silently
// perturbed. Stale partials never left the driver, so they cannot be
// damaged in flight.
func (s *PICStepper) applyGatherDamage(dmg []flowDamage, stale []bool, parts []*model.Model, subs []SubProblem) {
	if len(dmg) == 0 {
		return
	}
	rt := s.rt
	sortFlowDamage(dmg)
	for _, d := range dmg {
		i := d.idx
		if stale[i] {
			continue
		}
		if rt.IntegrityChecks() {
			parts[i] = subs[i].Model
			s.res.RejectedPartials++
			rt.tracer.Record(trace.Event{
				Kind:  trace.KindCorruptionDetect,
				Name:  fmt.Sprintf("%s: partial %d failed verified gather, merging its starting model", s.app.Name(), i),
				Start: rt.now(), End: rt.now(), Lane: rt.lane, Parent: rt.span,
			})
			if rt.obs != nil {
				rt.obs.Counter("integrity.rejected_partials").Add(1)
			}
		} else {
			parts[i] = corrupt.PerturbModel(parts[i].Clone(), d.seed)
		}
	}
}

// repartitionFlows approximates the one-time movement of sub-problem
// data from its original homes (spread across the whole cluster) onto
// the node groups: each sub-problem's bytes flow from every cluster node
// in equal shares to the group nodes, round-robin.
func repartitionFlows(allNodes []int, groups []*simcluster.Cluster, subs []SubProblem) []simnet.Flow {
	var flows []simnet.Flow
	for i, sub := range subs {
		g := groups[i%len(groups)]
		dsts := g.Nodes()
		bytes := mapred.RecordsSize(sub.Records)
		share := bytes / int64(len(allNodes))
		for si, src := range allNodes {
			dst := dsts[si%len(dsts)]
			if src == dst || share == 0 {
				continue
			}
			flows = append(flows, simnet.Flow{Src: src, Dst: dst, Bytes: share})
		}
	}
	return flows
}

// distributedMerge runs the merge as a MapReduce job: each partition's
// partial model becomes one input split homed on its (live) group
// leader, the identity mapper forwards every entry, and the reducer
// applies the application's per-key merge. The shuffle of partial-model
// entries is the merge traffic.
func distributedMerge(rt *Runtime, appName string, km KeyMerger, parts []*model.Model,
	leaders []int) (*model.Model, mapred.Metrics, error) {
	splits := make([]mapred.Split, len(parts))
	for i, part := range parts {
		var recs []mapred.Record
		part.Range(func(key string, v writable.Writable) bool {
			recs = append(recs, mapred.Record{Key: key, Value: v})
			return true
		})
		splits[i] = mapred.Split{Records: recs, Home: leaders[i]}
	}
	job := &mapred.Job{
		Name: appName + "-merge",
		Mapper: mapred.MapperFunc(func(key string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			emit.Emit(key, v)
			return nil
		}),
		Reducer: mapred.ReducerFunc(func(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			out, err := km.MergeKey(key, values)
			if err != nil {
				return err
			}
			emit.Emit(key, out)
			return nil
		}),
	}
	startMetrics := rt.Metrics()
	out, err := rt.RunJob(job, mapred.InputFromSplits(splits), nil)
	if err != nil {
		return nil, mapred.Metrics{}, fmt.Errorf("core: %s distributed merge: %w", appName, err)
	}
	merged := model.New()
	for _, rec := range out.Records {
		merged.Set(rec.Key, rec.Value)
	}
	return merged, rt.Metrics().Sub(startMetrics), nil
}

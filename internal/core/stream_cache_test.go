package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mapred"
	"repro/internal/writable"
)

// streamedPoints is the out-of-core twin of pointsInput: the same
// deterministic records, dealt into splits with the same SourceRange
// math NewInput uses, but generated on demand instead of held resident.
type streamedPoints struct{ n, splits int }

func (s *streamedPoints) Splits() int { return s.splits }

func (s *streamedPoints) Records(i int, dst []mapred.Record) []mapred.Record {
	lo, hi := mapred.SourceRange(i, s.splits, int64(s.n))
	for j := lo; j < hi; j++ {
		dst = append(dst, mapred.Record{
			Key:   fmt.Sprintf("p%d", j),
			Value: writable.Vector{float64(j%7) - 3, float64(j%5) * 2},
		})
	}
	return dst
}

// TestStreamedInputWarmsLoopCacheLikeResident is the composition test
// for out-of-core inputs over the loop-aware runtime: materializing a
// SplitSource (which copies each split out of the stream's reused
// buffer, giving it the stable backing array the cache keys on) and
// running a fused IC loop over it must be indistinguishable from the
// resident input — model bytes, runtime metrics, and every cache.*
// counter.
func TestStreamedInputWarmsLoopCacheLikeResident(t *testing.T) {
	run := func(streamed bool) (*ICResult, mapred.FamilyStats, mapred.Metrics) {
		rt := testRuntime()
		var in *mapred.Input
		if streamed {
			in = mapred.InputFromSource(&streamedPoints{n: 40, splits: 8}, rt.Cluster())
		} else {
			in, _ = pointsInput(rt, 40)
		}
		res, err := RunIC(rt, &fusedSeeker{meanSeeker{eps: 1e-9}}, in, startModel(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, rt.LoopCacheStats(), rt.Metrics()
	}
	resident, resStats, resMetrics := run(false)
	stream, strStats, strMetrics := run(true)
	if !bytes.Equal(stream.Model.Encode(nil), resident.Model.Encode(nil)) {
		t.Fatal("streamed input converged to different model bytes than resident input")
	}
	if !reflect.DeepEqual(strMetrics, resMetrics) {
		t.Fatalf("runtime metrics diverge:\n streamed %+v\n resident %+v", strMetrics, resMetrics)
	}
	if !reflect.DeepEqual(strStats, resStats) {
		t.Fatalf("cache counters diverge:\n streamed %+v\n resident %+v", strStats, resStats)
	}
	if strStats.Hits == 0 {
		t.Fatal("loop cache never warmed — the composition under test did not engage")
	}
	if strStats.Misses != 8 {
		t.Fatalf("cache staged %d splits, want 8 (one per split, first iteration only)", strStats.Misses)
	}
}

// TestStreamedInputSplitsMatchResident pins the lower-level contract
// the test above relies on: InputFromSource over the twin source
// produces byte-identical splits (records, homes, sizes) to NewInput.
func TestStreamedInputSplitsMatchResident(t *testing.T) {
	rt := testRuntime()
	resident, _ := pointsInput(rt, 40)
	streamed := mapred.InputFromSource(&streamedPoints{n: 40, splits: 8}, rt.Cluster())
	if !reflect.DeepEqual(streamed, resident) {
		t.Fatalf("streamed splits diverge from resident:\n streamed %+v\n resident %+v", streamed, resident)
	}
}

package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/writable"
)

// weightedSeeker extends keyMergingSeeker with the weighted merge the
// hierarchical tree needs.
type weightedSeeker struct{ keyMergingSeeker }

func (w *weightedSeeker) MergeKeyWeighted(_ string, values []writable.Writable, weights []int) (writable.Writable, error) {
	acc := make(writable.Vector, len(values[0].(writable.Vector)))
	total := 0
	for vi, v := range values {
		vec := v.(writable.Vector)
		total += weights[vi]
		for i := range acc {
			acc[i] += float64(weights[vi]) * vec[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(total)
	}
	return acc, nil
}

func TestHierarchicalMergeValidation(t *testing.T) {
	rt := testRuntime()
	in, _ := pointsInput(rt, 12)
	if _, err := RunPIC(rt, &weightedSeeker{}, in, startModel(), PICOptions{
		Partitions: 2, HierarchicalMerge: true, DistributedMerge: true,
	}); err == nil {
		t.Fatal("HierarchicalMerge+DistributedMerge accepted")
	}
	// meanSeeker has no WeightedKeyMerger.
	if _, err := RunPIC(rt, &meanSeeker{eps: 1e-6}, in, startModel(), PICOptions{
		Partitions: 2, HierarchicalMerge: true,
	}); err == nil {
		t.Fatal("HierarchicalMerge without WeightedKeyMerger accepted")
	}
}

// The point of the tree: with several partitions per rack, both scatter
// (dedup) and gather (rack pre-combine) move fewer bytes across the
// core switch than the flat strategy, while the model still converges
// to the same place up to floating-point reassociation.
func TestHierarchicalMergeReducesCoreBytes(t *testing.T) {
	run := func(hier bool) *PICResult {
		rt := testRuntime() // 4 nodes in 2 racks → 2 partitions per rack
		in, _ := pointsInput(rt, 24)
		app := &weightedSeeker{keyMergingSeeker{meanSeeker{eps: 1e-9}}}
		res, err := RunPIC(rt, app, in, startModel(), PICOptions{
			Partitions:        4,
			HierarchicalMerge: hier,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := run(false)
	hier := run(true)
	if hier.MergeCrossRackBytes >= flat.MergeCrossRackBytes {
		t.Fatalf("hierarchical merge did not reduce core-link bytes: %d >= %d",
			hier.MergeCrossRackBytes, flat.MergeCrossRackBytes)
	}
	if flat.MergeCrossRackBytes == 0 || hier.MergeTrafficBytes == 0 {
		t.Fatalf("missing traffic accounting: flat cross-rack %d, hier total %d",
			flat.MergeCrossRackBytes, hier.MergeTrafficBytes)
	}
	// Same logical reduction: the final models agree to FP tolerance.
	fv, _ := flat.Model.Vector("mean")
	hv, _ := hier.Model.Vector("mean")
	if len(fv) != len(hv) {
		t.Fatalf("model shapes differ: %v vs %v", fv, hv)
	}
	for i := range fv {
		if math.Abs(fv[i]-hv[i]) > 1e-9 {
			t.Fatalf("models diverged at dim %d: flat %v, hier %v", i, fv, hv)
		}
	}
}

// Each strategy must be individually deterministic: byte-identical
// models and identical metrics across repeated runs and worker counts.
func TestHierarchicalMergeDeterministic(t *testing.T) {
	run := func(workers int) ([]byte, string) {
		rt := testRuntime()
		rt.Engine().Workers = workers
		reg := metrics.New()
		rt.SetObservability(reg)
		in, _ := pointsInput(rt, 24)
		app := &weightedSeeker{keyMergingSeeker{meanSeeker{eps: 1e-9}}}
		res, err := RunPIC(rt, app, in, startModel(), PICOptions{
			Partitions:        4,
			HierarchicalMerge: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Model.Encode(nil), fmt.Sprintf("%+v %v", res.Metrics, res.Duration)
	}
	m1, s1 := run(1)
	m8, s8 := run(8)
	m1b, s1b := run(1)
	if !bytes.Equal(m1, m8) || s1 != s8 {
		t.Fatal("hierarchical merge differs across worker counts")
	}
	if !bytes.Equal(m1, m1b) || s1 != s1b {
		t.Fatal("hierarchical merge differs across repeated runs")
	}
}

// Rack planning must skip stale partitions and keep deterministic
// ascending order; scatter must dedup a rack's shared model down to one
// core crossing.
func TestPlanRacksAndScatterDedup(t *testing.T) {
	rt := testRuntime()
	fabric := rt.Cluster().Fabric()
	leaders := []int{0, 2, 1, 3} // racks: {0,1} and {2,3}
	stale := []bool{false, false, false, true}
	racks := planRacks(fabric, leaders, stale)
	if len(racks) != 2 {
		t.Fatalf("got %d racks, want 2", len(racks))
	}
	if racks[0].rack != 0 || racks[0].agg != 0 || len(racks[0].members) != 2 {
		t.Fatalf("rack 0 plan wrong: %+v", racks[0])
	}
	if racks[1].rack != 1 || racks[1].agg != 2 || len(racks[1].members) != 1 {
		t.Fatalf("rack 1 plan wrong: %+v", racks[1])
	}

	shared := model.New()
	shared.Set("mean", writable.Vector{1, 2})
	subs := make([]SubProblem, 4)
	for i := range subs {
		subs[i] = SubProblem{Model: shared.Clone()}
	}
	flows := hierarchicalScatterFlows(0, leaders, subs, racks)
	// Rack 0 (agg=0, members partitions 0 and 2 on nodes 0 and 1): one
	// home→agg copy (src==dst, free) plus one agg→node1 fan-out. Rack 1
	// is a singleton: one direct home→node2 flow.
	core := 0
	for _, f := range flows {
		if fabric.Rack(f.Src) != fabric.Rack(f.Dst) {
			core++
		}
	}
	if core != 1 {
		t.Fatalf("scatter crossed the core %d times, want 1 (flows %+v)", core, flows)
	}
	// Divergent models disable the dedup.
	subs[2].Model.Set("mean", writable.Vector{9, 9})
	direct := hierarchicalScatterFlows(0, leaders, subs, racks)
	core = 0
	for _, f := range direct {
		if fabric.Rack(f.Src) != fabric.Rack(f.Dst) {
			core++
		}
	}
	if core != 1 { // partition 2's leader is node 1 (rack 0): only rack-1 singleton crosses
		t.Fatalf("mixed-model scatter crossed the core %d times, want 1 (flows %+v)", core, direct)
	}
}

// The weighted combine of rack pre-averages must equal the flat average
// of the underlying partials when the arithmetic is exact.
func TestWeightedMergeUnbiased(t *testing.T) {
	app := &weightedSeeker{}
	a := writable.Vector{1, 8}
	b := writable.Vector{3, 16}
	c := writable.Vector{5, 4}
	d := writable.Vector{7, 12}
	rack1, _ := app.MergeKey("k", []writable.Writable{a, b})
	rack2, _ := app.MergeKey("k", []writable.Writable{c, d})
	got, err := app.MergeKeyWeighted("k", []writable.Writable{rack1, rack2}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	flat, _ := app.MergeKey("k", []writable.Writable{a, b, c, d})
	gv, fv := got.(writable.Vector), flat.(writable.Vector)
	for i := range gv {
		if gv[i] != fv[i] {
			t.Fatalf("weighted combine biased: got %v, flat %v", gv, fv)
		}
	}
}

// The core.be_merge_core_bytes series must land one sample per
// best-effort iteration for both strategies.
func TestMergeCoreBytesSeries(t *testing.T) {
	for _, hier := range []bool{false, true} {
		rt := testRuntime()
		reg := metrics.New()
		rt.SetObservability(reg)
		in, _ := pointsInput(rt, 24)
		app := &weightedSeeker{keyMergingSeeker{meanSeeker{eps: 1e-9}}}
		res, err := RunPIC(rt, app, in, startModel(), PICOptions{
			Partitions:        4,
			HierarchicalMerge: hier,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, ok := reg.Snapshot().Get("core.be_merge_core_bytes")
		if !ok || len(s.Samples) != res.BEIterations {
			t.Fatalf("hier=%v: core-bytes series has %d samples, want %d",
				hier, len(s.Samples), res.BEIterations)
		}
	}
}

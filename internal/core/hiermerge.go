package core

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/writable"
)

// Hierarchical rack-local merge trees (PICOptions.HierarchicalMerge).
//
// The flat best-effort merge moves every partial model and every
// scattered sub-problem model over the model home's core-switch links:
// P partials in, P models out, per iteration. On large clusters the
// core links become the merge bottleneck long before the racks do. The
// hierarchical strategy prices the same logical merge as a two-level
// tree aligned with the simnet topology: partials first combine inside
// their rack (intra-rack links, which the fabric prices independently
// per rack), and only one rack-combined model per rack crosses the core
// to the home. The scatter direction dedups symmetrically: when every
// partition in a rack starts from the same model (the replicated-model
// apps — K-means, neural-net training), one copy crosses the core and
// the rack aggregator fans it out locally.
//
// The tree merge is NOT bit-identical to the flat merge: combining
// rack-first reorders the floating-point accumulation. It is the same
// logical reduction — the WeightedKeyMerger contract makes rack-level
// pre-combination unbiased — and each strategy is individually
// deterministic at any worker count.

// rackGroup is one rack's worth of fresh partitions in a best-effort
// merge tree.
type rackGroup struct {
	rack int
	// agg is the aggregator node: the group leader of the rack's first
	// member partition.
	agg int
	// members are the partition indices homed in this rack, ascending.
	members []int
}

// planRacks groups the fresh (non-stale) partitions by the rack of
// their group leader, in ascending rack order — the deterministic shape
// of the merge tree for this iteration.
func planRacks(fabric *simnet.Fabric, leaders []int, stale []bool) []rackGroup {
	byRack := map[int]*rackGroup{}
	var order []int
	for i, leader := range leaders {
		if stale[i] {
			continue
		}
		r := fabric.Rack(leader)
		g := byRack[r]
		if g == nil {
			g = &rackGroup{rack: r, agg: leader}
			byRack[r] = g
			order = append(order, r)
		}
		g.members = append(g.members, i)
	}
	sort.Ints(order)
	out := make([]rackGroup, len(order))
	for i, r := range order {
		out[i] = *byRack[r]
	}
	return out
}

// hierarchicalScatterFlows prices the dispatch of sub-problem models
// through the rack aggregators. A rack whose members all start from the
// same model receives one copy across the core and fans it out on rack
// links; mixed racks (partition-the-model apps) fall back to direct
// home→leader flows, which is what the flat scatter charges.
func hierarchicalScatterFlows(home int, leaders []int, subs []SubProblem, racks []rackGroup) []simnet.Flow {
	var flows []simnet.Flow
	for _, rg := range racks {
		shared := true
		first := subs[rg.members[0]].Model
		for _, i := range rg.members[1:] {
			if !subs[i].Model.Equal(first) {
				shared = false
				break
			}
		}
		if !shared || len(rg.members) == 1 {
			for _, i := range rg.members {
				flows = append(flows, simnet.Flow{Src: home, Dst: leaders[i], Bytes: subs[i].Model.Size()})
			}
			continue
		}
		flows = append(flows, simnet.Flow{Src: home, Dst: rg.agg, Bytes: first.Size()})
		for _, i := range rg.members {
			if leaders[i] == rg.agg {
				continue
			}
			flows = append(flows, simnet.Flow{Src: rg.agg, Dst: leaders[i], Bytes: first.Size()})
		}
	}
	return flows
}

// hierarchicalMerge gathers and combines the partial models through the
// rack tree: members flow to their rack aggregator (intra-rack links),
// each rack pre-combines with MergeKey, one combined model per rack
// crosses the core to home, and the final combine applies
// MergeKeyWeighted with each rack's member count as its weight — so the
// two-level reduction equals the flat one-level reduction up to
// floating-point order. Stale partials join the final combine with
// weight 1 and no gather traffic (they never left the driver).
func hierarchicalMerge(rt *Runtime, appName string, wm WeightedKeyMerger,
	parts []*model.Model, leaders []int, stale []bool, racks []rackGroup) (*model.Model, int64, error) {
	home := rt.LiveModelHome()

	// Stage 1: members → rack aggregators, one flow set for the whole
	// level (racks drain in parallel on their own links).
	var up []simnet.Flow
	for _, rg := range racks {
		for _, i := range rg.members {
			up = append(up, simnet.Flow{Src: leaders[i], Dst: rg.agg, Bytes: parts[i].Size()})
		}
	}
	traffic := rt.ChargeFlows(up)

	// Rack-level pre-combine: per key, MergeKey over the members holding
	// it (member order), remembering how many partials each combined
	// value summarizes.
	rackModels := make([]*model.Model, len(racks))
	rackCounts := make([]map[string]int, len(racks))
	for ri, rg := range racks {
		rackKeys := keyUnion(parts, rg.members)
		rm := model.NewWithCapacity(len(rackKeys))
		counts := make(map[string]int, len(rackKeys))
		for _, key := range rackKeys {
			var vals []writable.Writable
			for _, i := range rg.members {
				if v, ok := parts[i].Get(key); ok {
					vals = append(vals, v)
				}
			}
			merged, err := wm.MergeKey(key, vals)
			if err != nil {
				return nil, traffic, fmt.Errorf("core: %s rack merge: %w", appName, err)
			}
			rm.Set(key, merged)
			counts[key] = len(vals)
		}
		rackModels[ri] = rm
		rackCounts[ri] = counts
	}

	// Stage 2: one combined model per rack crosses the core to home.
	var down []simnet.Flow
	for ri, rg := range racks {
		down = append(down, simnet.Flow{Src: rg.agg, Dst: home, Bytes: rackModels[ri].Size()})
	}
	traffic += rt.ChargeFlows(down)

	// Final combine: rack models weighted by their member counts, stale
	// partials appended with weight 1.
	var staleIdx []int
	for i, st := range stale {
		if st {
			staleIdx = append(staleIdx, i)
		}
	}
	sources := make([]*model.Model, 0, len(rackModels)+len(staleIdx))
	sources = append(sources, rackModels...)
	for _, i := range staleIdx {
		sources = append(sources, parts[i])
	}
	allKeys := keyUnion(sources, nil)
	merged := model.NewWithCapacity(len(allKeys))
	for _, key := range allKeys {
		var vals []writable.Writable
		var weights []int
		for ri, rm := range rackModels {
			if v, ok := rm.Get(key); ok {
				vals = append(vals, v)
				weights = append(weights, rackCounts[ri][key])
			}
		}
		for _, i := range staleIdx {
			if v, ok := parts[i].Get(key); ok {
				vals = append(vals, v)
				weights = append(weights, 1)
			}
		}
		out, err := wm.MergeKeyWeighted(key, vals, weights)
		if err != nil {
			return nil, traffic, fmt.Errorf("core: %s weighted merge: %w", appName, err)
		}
		merged.Set(key, out)
	}
	return merged, traffic, nil
}

// keyUnion returns the sorted union of keys across the selected models
// (all of them when idx is nil).
func keyUnion(models []*model.Model, idx []int) []string {
	seen := map[string]bool{}
	var keys []string
	add := func(m *model.Model) {
		for _, k := range m.Keys() {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	if idx == nil {
		for _, m := range models {
			add(m)
		}
	} else {
		for _, i := range idx {
			add(models[i])
		}
	}
	sort.Strings(keys)
	return keys
}

package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/corrupt"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// corruptTracker replays a cluster's corrupt.Plan against the runtime
// clock, the third fault dimension next to failureTracker and
// netTracker. One tracker is shared by a root runtime and all its
// forks, so each scripted corruption fires exactly once — by whichever
// runtime's clock first passes it. Transfer bit-error windows need no
// processing here: the engines consult the plan per transfer attempt,
// so only the point events (block flips, checkpoint damage, scrub
// passes) have side effects at onset.
type corruptTracker struct {
	events []corrupt.Event // sorted by Time
	next   int
}

func newCorruptTracker(plan *corrupt.Plan) *corruptTracker {
	if plan == nil || len(plan.Events) == 0 {
		return nil
	}
	return &corruptTracker{events: plan.Sorted()}
}

// integrityState is the shared end-to-end integrity bookkeeping of a
// runtime and all its forks: whether detection is on, the content
// checksum of every checkpoint written (verified again on restore, so
// damage that slips past the block layer is still caught), and how
// many restores had to roll back to an earlier verified checkpoint.
type integrityState struct {
	checks    bool
	ckptSums  map[string]uint32
	rollbacks int
}

// SetIntegrityChecks turns end-to-end corruption detection on or off
// for this runtime and its forks: checksum verification on DFS reads,
// on engine transfer payloads, and on checkpoint restore. On by
// default; the detection-off ablation turns it off to show what silent
// corruption does to convergence. With no corruption plan registered
// the setting is unobservable — all paths are byte-identical.
func (rt *Runtime) SetIntegrityChecks(on bool) {
	rt.integ.checks = on
	rt.fs.SetVerifyReads(on)
	rt.engine.IntegrityChecks = on
	if rt.bspEng != nil {
		rt.bspEng.IntegrityChecks = on
	}
}

// IntegrityChecks reports whether corruption detection is on.
func (rt *Runtime) IntegrityChecks() bool { return rt.integ != nil && rt.integ.checks }

// IntegrityRollbacks reports how many checkpoint restores rolled back
// past a damaged checkpoint to an earlier verified one.
func (rt *Runtime) IntegrityRollbacks() int {
	if rt.integ == nil {
		return 0
	}
	return rt.integ.rollbacks
}

// processCorruptEvent applies one corruption event (the next one on
// the plan). Injection itself is the adversary's move — free and
// instantaneous — while detection and repair are charged when reads or
// scrubs encounter the damage. syncFaults orders these against node
// and network events.
func (rt *Runtime) processCorruptEvent() {
	ct := rt.corrupts
	ev := ct.events[ct.next]
	ct.next++
	switch ev.Kind {
	case corrupt.KindBlockReplica:
		if rt.fs.CorruptReplica(ev.File, ev.Block, ev.Node, ev.Seed) && rt.obs != nil {
			rt.obs.Counter("integrity.injected_blocks").Add(1)
		}
	case corrupt.KindCheckpoint:
		// Damage the latest stored checkpoint of the model family — every
		// replica, so replica failover cannot mask it and restore must
		// roll back. The pointer file is resolved directly (the adversary
		// pays no read traffic).
		target := rt.checkpointTarget(ev.Model)
		if target == "" {
			return
		}
		if n := rt.fs.CorruptFileAll(target, ev.Seed); n > 0 && rt.obs != nil {
			rt.obs.Counter("integrity.injected_blocks").Add(float64(n))
		}
	case corrupt.KindScrub:
		// A checksum-less system (integrity checks off) has nothing to
		// verify replicas against: scheduled scrub passes are inert, like
		// the read paths.
		if !rt.IntegrityChecks() {
			return
		}
		rep, d := rt.fs.Scrub(ev.Budget, ev.At)
		rt.tracer.Record(trace.Event{
			Kind: trace.KindScrub,
			Name: fmt.Sprintf("scrub: %d replicas scanned, %d repaired", rep.ScannedBlocks, rep.RepairedBlocks),
			// Like re-replication, the scrub runs in the background: the
			// span carries its extent but the driver clock does not block.
			Start: ev.At, End: ev.At + d, Bytes: rep.ScannedBytes, Lane: rt.lane,
		})
		if rt.obs != nil {
			rt.obs.Counter("integrity.scrub_passes").Add(1)
			rt.obs.Counter("integrity.scrubbed_bytes").Add(float64(rep.ScannedBytes))
		}
		rt.drainIntegrity(ev.At)
	case corrupt.KindTransfer:
		// Window onset: nothing to apply. Engines consult the plan on
		// every transfer attempt priced inside the window.
	}
}

// checkpointTarget resolves the file the latest-checkpoint pointer of
// a model family names, without charging any traffic (the corruption
// plan is the adversary, not a tenant). Empty when no checkpoint
// exists yet or the pointer carries no payload.
func (rt *Runtime) checkpointTarget(name string) string {
	ptr, ok := rt.fs.Open(latestPointer(name))
	if !ok {
		return ""
	}
	return string(ptr.Data())
}

// drainIntegrity folds the DFS integrity layer's detection and repair
// activity since the last drain into the trace, the metrics and the
// registry. Called after every clock advance (from syncFaults), so
// detections surface next to the read that triggered them.
func (rt *Runtime) drainIntegrity(at simtime.Time) {
	evs := rt.fs.DrainIntegrityEvents()
	if len(evs) == 0 {
		return
	}
	var detected, repaired int
	var detectedBytes, repairedBytes int64
	for _, ev := range evs {
		switch ev.Op {
		case "detect":
			detected++
			detectedBytes += ev.Bytes
			rt.tracer.Record(trace.Event{
				Kind: trace.KindCorruptionDetect,
				Name: fmt.Sprintf("%q block %d: checksum mismatch on node %d, replica quarantined", ev.File, ev.Block, ev.Node),
				Start: at, End: at, Bytes: ev.Bytes, Lane: rt.lane, Parent: rt.span,
			})
		case "repair":
			repaired++
			repairedBytes += ev.Bytes
			rt.tracer.Record(trace.Event{
				Kind: trace.KindReReplication,
				Name: fmt.Sprintf("%q block %d: re-replicated to node %d after corruption", ev.File, ev.Block, ev.Node),
				Start: at, End: at, Bytes: ev.Bytes, Lane: rt.lane, Parent: rt.span,
			})
		}
	}
	rt.metrics.ReReplicationBytes += repairedBytes
	if rt.obs != nil {
		if detected > 0 {
			rt.obs.Counter("integrity.detected_blocks").Add(float64(detected))
			rt.obs.Counter("integrity.detected_bytes").Add(float64(detectedBytes))
		}
		if repaired > 0 {
			rt.obs.Counter("integrity.repaired_blocks").Add(float64(repaired))
			rt.obs.Counter("integrity.repair_bytes").Add(float64(repairedBytes))
		}
	}
}

// flowDamage names one flow of a charged batch that a bit-error window
// hit: idx is the flow's index in the caller's slice, seed the per-hit
// perturbation seed. With detection on a damaged flow only surfaces
// after verified delivery failed for good (re-send budget exhausted or
// the path severed mid-retry); with detection off every corrupt
// arrival surfaces, silently, for the caller to model the damage.
type flowDamage struct {
	idx  int
	seed uint64
}

// corruptResendCap bounds how many times one flow's corrupt arrival is
// re-sent before ChargeFlows gives it up as undeliverable — the bulk
// twin of the engines' per-transfer budget.
const corruptResendCap = 8

// ChargeFlows records the given transfers on the cluster fabric and
// advances the clock by their bottleneck transfer time, returning the
// total bytes that crossed node boundaries. The PIC driver uses it for
// partition-scatter and merge-gather traffic.
//
// Under a registered NetworkPlan the flows are priced by the overlay
// active at the charge time, and flows whose path is severed by an
// outage or partition are dropped rather than charged — bulk placement
// is best-effort, and the PIC driver routes around cut groups anyway
// (their sub-problems merge a stale partial). Dropped flows are
// visible as the shortfall in the returned byte count and on the
// net.dropped_flows counter.
//
// Under a registered corrupt.Plan with detection on, arrivals inside a
// bit-error window fail their checksum and are re-sent at the advanced
// clock until they land clean (bounded by corruptResendCap); the
// re-sent bytes are real traffic and appear in the returned count.
func (rt *Runtime) ChargeFlows(flows []simnet.Flow) int64 {
	moved, _ := rt.chargeFlowsVerified(flows)
	return moved
}

// chargeFlowsVerified is ChargeFlows plus the integrity outcome: the
// returned damage list is empty for fault-free runs and, with
// detection on, for every batch whose corrupt arrivals were
// successfully re-sent.
func (rt *Runtime) chargeFlowsVerified(flows []simnet.Flow) (int64, []flowDamage) {
	start := rt.now()
	fabric := rt.Cluster().Fabric()
	// kept maps the charged slice back to the caller's indices once
	// severed flows are filtered out.
	kept := make([]int, 0, len(flows))
	for i := range flows {
		kept = append(kept, i)
	}
	if fabric.NetworkPlan() != nil {
		deliverable := flows[:0:0]
		keptIn := kept[:0]
		dropped := 0
		for i, fl := range flows {
			if fabric.ReachableAt(fl.Src, fl.Dst, start) {
				deliverable = append(deliverable, fl)
				keptIn = append(keptIn, i)
			} else {
				dropped++
			}
		}
		if dropped > 0 && rt.obs != nil {
			rt.obs.Counter("net.dropped_flows").Add(float64(dropped))
		}
		flows, kept = deliverable, keptIn
	}
	before := fabric.Counters().Total
	tt, err := fabric.TransferTimeAt(flows, start)
	if err != nil {
		// Severed flows were filtered above and the overlay is constant
		// at an instant, so a typed failure here cannot happen.
		panic("core: ChargeFlows: " + err.Error())
	}
	fabric.Record(flows)
	rt.elapsed += tt
	rt.syncFaults()
	damage := rt.resolveFlowCorruption(flows, kept, start)
	moved := fabric.Counters().Total - before
	if moved > 0 {
		var attrs []trace.Attr
		if rt.tracer != nil {
			attrs = []trace.Attr{{Key: "class", Value: dominantClass(fabric, flows)}}
		}
		rt.tracer.Record(trace.Event{
			Kind: trace.KindTransfer, Name: "flows", Start: start, End: rt.now(),
			Bytes: moved, Lane: rt.lane, Parent: rt.span, Attrs: attrs,
		})
	}
	rt.observeNow()
	return moved, damage
}

// resolveFlowCorruption checks a just-recorded batch against the
// corruption plan's bit-error windows (priced at time start) and, with
// detection on, re-sends corrupt arrivals until they land clean. The
// clock advances by the re-send times; re-pricing at the advanced
// clock re-rolls the window, so a finite window is eventually escaped.
func (rt *Runtime) resolveFlowCorruption(flows []simnet.Flow, kept []int, start simtime.Time) []flowDamage {
	plan := rt.Cluster().CorruptionPlan()
	if !plan.HasTransferEvents() {
		return nil
	}
	var hit []flowDamage // indices into flows, not the caller's slice
	for i, fl := range flows {
		if fl.Src == fl.Dst || fl.Bytes == 0 {
			continue
		}
		if seed, h := plan.TransferHit(fl.Src, fl.Dst, start); h {
			hit = append(hit, flowDamage{idx: i, seed: seed})
		}
	}
	if len(hit) == 0 {
		return nil
	}
	if !rt.IntegrityChecks() {
		// Silent damage: report every corrupt arrival against the
		// caller's indices and say nothing anywhere else.
		for k := range hit {
			hit[k].idx = kept[hit[k].idx]
		}
		return hit
	}
	fabric := rt.Cluster().Fabric()
	useNetplan := fabric.NetworkPlan() != nil
	detects := len(hit)
	var resends int
	var resentBytes int64
	var failed []flowDamage
	pending := hit
	for attempt := 0; len(pending) > 0; attempt++ {
		if attempt >= corruptResendCap {
			break
		}
		now := rt.now()
		subset := make([]simnet.Flow, 0, len(pending))
		keptPending := pending[:0:0]
		for _, d := range pending {
			fl := flows[d.idx]
			if useNetplan && !fabric.ReachableAt(fl.Src, fl.Dst, now) {
				// The path was severed between the corrupt arrival and
				// the re-send: the flow is undeliverable verified.
				failed = append(failed, d)
				continue
			}
			subset = append(subset, fl)
			keptPending = append(keptPending, d)
		}
		if len(subset) == 0 {
			pending = nil
			break
		}
		tt, err := fabric.TransferTimeAt(subset, now)
		if err != nil {
			panic("core: ChargeFlows re-send: " + err.Error())
		}
		fabric.Record(subset)
		for _, fl := range subset {
			resentBytes += fl.Bytes
		}
		resends += len(subset)
		rt.elapsed += tt
		rt.syncFaults()
		// Re-roll each re-sent flow at the time it was priced.
		still := keptPending[:0:0]
		for _, d := range keptPending {
			fl := flows[d.idx]
			if seed, h := plan.TransferHit(fl.Src, fl.Dst, now); h {
				d.seed = seed
				still = append(still, d)
				detects++
			}
		}
		pending = still
	}
	failed = append(failed, pending...)
	rt.metrics.CorruptRetries += resends
	rt.metrics.CorruptRetryBytes += resentBytes
	rt.tracer.Record(trace.Event{
		Kind: trace.KindCorruptionDetect,
		Name: fmt.Sprintf("%d corrupt transfer arrivals, %d re-sent", detects, resends),
		Start: start, End: rt.now(), Bytes: resentBytes, Lane: rt.lane, Parent: rt.span,
	})
	if rt.obs != nil {
		rt.obs.Counter("integrity.transfer_detects").Add(float64(detects))
		rt.obs.Counter("integrity.retried_bytes").Add(float64(resentBytes))
	}
	for k := range failed {
		failed[k].idx = kept[failed[k].idx]
	}
	return failed
}

// blockUntilCorruptWindowEnd advances the clock to the corruption
// plan's next bit-error window boundary ahead of now and reports the
// wait; ok is false when no boundary lies ahead (the windows will
// never change again, so waiting is pointless). The IC stepper uses it
// when a transfer exhausted its checksum re-send budget — the
// conventional driver's only recourse, like waiting out a network
// fault.
func (rt *Runtime) blockUntilCorruptWindowEnd() (simtime.Duration, bool) {
	plan := rt.Cluster().CorruptionPlan()
	if plan == nil {
		return 0, false
	}
	now := rt.now()
	next := simtime.Time(-1)
	for i := range plan.Events {
		ev := &plan.Events[i]
		if ev.Kind != corrupt.KindTransfer {
			continue
		}
		for _, edge := range [...]simtime.Time{ev.Start, ev.End} {
			if edge > now && (next < 0 || edge < next) {
				next = edge
			}
		}
	}
	if next < 0 {
		return 0, false
	}
	start := rt.now()
	wait := simtime.Duration(next - start)
	rt.AdvanceTime(wait)
	rt.tracer.Record(trace.Event{
		Kind: trace.KindTransfer, Name: "blocked: waiting out bit-error window",
		Start: start, End: rt.now(), Lane: rt.lane, Parent: rt.span,
	})
	return wait, true
}

// blindModelDamage decides whether a job's model distribution at time
// start arrives damaged when detection is off: the plan's bit-error
// windows are consulted for the home→node transfer of every view node,
// exactly as the engine's checksum layer would have. Detection on
// means the engine re-sends internally, so this path never engages.
func (rt *Runtime) blindModelDamage(start simtime.Time) (uint64, bool) {
	plan := rt.Cluster().CorruptionPlan()
	if !plan.HasTransferEvents() || rt.IntegrityChecks() {
		return 0, false
	}
	home := rt.LiveModelHome()
	for _, n := range rt.Cluster().Nodes() {
		if n == home {
			continue
		}
		if seed, hit := plan.TransferHit(home, n, start); hit {
			return seed, true
		}
	}
	return 0, false
}

// ckptSeq parses the sequence number out of a checkpoint file name
// ("models/<name>/<seq>[.delta]"), -1 when the name has another shape.
func ckptSeq(file string) int64 {
	base := strings.TrimSuffix(file, deltaSuffix)
	i := strings.LastIndexByte(base, '/')
	if i < 0 {
		return -1
	}
	seq, err := strconv.ParseInt(base[i+1:], 10, 64)
	if err != nil {
		return -1
	}
	return seq
}

// sortFlowDamage orders a damage list by caller index, so downstream
// handling is independent of re-send scheduling order.
func sortFlowDamage(dmg []flowDamage) {
	sort.Slice(dmg, func(i, j int) bool { return dmg[i].idx < dmg[j].idx })
}

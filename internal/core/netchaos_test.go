package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/dfs"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// netChaosRuntime builds the standard 4-node test runtime with a
// network plan (and optionally a failure plan) registered on the
// cluster before the runtime snapshots it.
func netChaosRuntime(netplan *simnet.NetworkPlan, failplan *simcluster.FailurePlan) *Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              4,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
	cluster.SetNetworkPlan(netplan)
	cluster.SetFailurePlan(failplan)
	return NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 10})
}

// runNetChaosPIC executes the shared mean-seeker PIC workload under a
// network plan, with degraded-transfer knobs and a 3-of-4 merge quorum.
func runNetChaosPIC(t *testing.T, netplan *simnet.NetworkPlan, failplan *simcluster.FailurePlan) (*PICResult, *Runtime, *trace.Tracer) {
	t.Helper()
	rt := netChaosRuntime(netplan, failplan)
	tr := trace.New()
	rt.SetTracer(tr)
	rt.Engine().TransferTimeout = 1
	rt.Engine().TransferRetries = 2
	rt.FS().CreateWithData("input/points", make([]byte, 200<<10), 0)
	in, _ := pointsInput(rt, 40)
	opts := chaosPICOpts
	opts.MergeQuorum = 3
	opts.MergeTimeout = 0.5
	res, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, rt, tr
}

// TestNetChaosIdlePlanIsNoOp is the zero-fault no-op guarantee end to
// end: a registered plan whose windows never cover the run must leave
// the timeline, metrics and final model byte-identical to no plan.
func TestNetChaosIdlePlanIsNoOp(t *testing.T) {
	bare, _, bareTr := runNetChaosPIC(t, nil, nil)
	idle := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultCore, Start: 1e8, End: 1e8 + 10},
		{Kind: simnet.FaultPartition, Nodes: []int{0}, Start: 1e8 + 20, End: 1e8 + 30},
	}}
	planned, _, plannedTr := runNetChaosPIC(t, idle, nil)
	if bareTr.Render() != plannedTr.Render() {
		t.Fatalf("idle plan perturbed the timeline:\n--- no plan ---\n%s--- idle plan ---\n%s",
			bareTr.Render(), plannedTr.Render())
	}
	if bare.Metrics != planned.Metrics || bare.Duration != planned.Duration {
		t.Fatalf("idle plan perturbed metrics or duration:\n%+v\n%+v", bare.Metrics, planned.Metrics)
	}
	if !reflect.DeepEqual(bare.Model.Encode(nil), planned.Model.Encode(nil)) {
		t.Fatal("idle plan perturbed the final model")
	}
}

// TestNetChaosICBlocksThroughOutage isolates the model home mid-run
// with no retry budget: the IC stepper must wait the window out, count
// the stall, and still converge to the healthy answer.
func TestNetChaosICBlocksThroughOutage(t *testing.T) {
	run := func(plan *simnet.NetworkPlan) *ICResult {
		rt := netChaosRuntime(plan, nil)
		in, _ := pointsInput(rt, 40)
		res, err := RunIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(nil)
	if !healthy.Converged {
		t.Fatal("healthy run did not converge")
	}
	cutAt := simtime.Time(healthy.Duration) / 3
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultPartition, Nodes: []int{0}, Start: cutAt, End: cutAt + 5},
	}}
	res := run(plan)
	if !res.Converged {
		t.Fatal("blocked run did not converge")
	}
	if res.Blocked <= 0 || res.BlockedIterations == 0 {
		t.Fatalf("outage cost no stall: Blocked = %v, BlockedIterations = %d", res.Blocked, res.BlockedIterations)
	}
	if res.Duration <= healthy.Duration {
		t.Fatalf("waiting out a 5 s outage cost no time: %v vs %v", res.Duration, healthy.Duration)
	}
	if d := model.MaxVectorDelta(healthy.Model, res.Model); d > 1e-6 {
		t.Fatalf("blocked run converged %g away from the healthy solution", d)
	}
}

// TestNetChaosPersistentFailureSurfacesTyped drives the stepper's
// give-up path: a deadline no healthy transfer can meet fails every
// attempt, the stepper waits out what transitions the plan has, and
// once none lie ahead the typed transfer error surfaces instead of an
// infinite wait.
func TestNetChaosPersistentFailureSurfacesTyped(t *testing.T) {
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultCore, Start: 0.1, End: 0.2, Factor: 0.5},
	}}
	rt := netChaosRuntime(plan, nil)
	rt.Engine().TransferTimeout = 1e-12
	in, _ := pointsInput(rt, 40)
	_, err := RunIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), nil)
	if err == nil {
		t.Fatal("run with an impossible transfer deadline converged")
	}
	var te *simnet.TransferError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *simnet.TransferError", err)
	}
	if te.Kind != simnet.TransferTimeout {
		t.Fatalf("TransferError.Kind = %q, want timeout", te.Kind)
	}
}

// TestNetChaosQuorumMergeConverges is the degraded-merge acceptance
// test: a partition cuts one group's leader mid-best-effort, the merge
// proceeds on a 3-of-4 quorum with the cut partition's partial stale,
// and the run still converges to the fault-free model.
func TestNetChaosQuorumMergeConverges(t *testing.T) {
	healthy, _, _ := runNetChaosPIC(t, nil, nil)
	if !healthy.TopOffConverged {
		t.Fatal("healthy run did not converge")
	}
	cutAt := simtime.Time(healthy.BEDuration) / 3
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultPartition, Nodes: []int{3}, Start: cutAt, End: cutAt + 3},
	}}
	res, _, tr := runNetChaosPIC(t, plan, nil)

	if !res.TopOffConverged {
		t.Fatal("degraded run did not converge")
	}
	if d := model.MaxVectorDelta(healthy.Model, res.Model); d > 1e-6 {
		t.Fatalf("degraded run converged %g away from the fault-free model", d)
	}
	if len(res.DegradedMerges) == 0 {
		t.Fatal("no merge went degraded while a group was cut")
	}
	for _, dm := range res.DegradedMerges {
		if dm.Arrived < 3 || dm.Arrived >= 4 {
			t.Fatalf("degraded merge arrived = %d, want quorum 3", dm.Arrived)
		}
		if len(dm.Stale) == 0 {
			t.Fatalf("degraded merge reports no stale partitions: %+v", dm)
		}
	}
	if res.Blocked <= 0 {
		t.Fatal("degraded merges waited no time")
	}
	if countKind(tr, trace.KindDegradedMerge) != len(res.DegradedMerges) {
		t.Fatalf("trace has %d degraded-merge events, result reports %d",
			countKind(tr, trace.KindDegradedMerge), len(res.DegradedMerges))
	}
	if countKind(tr, trace.KindNetFault) == 0 {
		t.Fatal("trace has no net-fault events")
	}
}

// TestNetChaosCheckpointResume converges a run, then starts a second
// driver on the same runtime with ResumeFromCheckpoint: it must pick up
// the "-be" checkpoint (and say so), and a fresh runtime without one
// must silently start from scratch.
func TestNetChaosCheckpointResume(t *testing.T) {
	first, rt, tr := runNetChaosPIC(t, nil, nil)
	if !first.TopOffConverged {
		t.Fatal("first run did not converge")
	}
	opts := chaosPICOpts
	opts.ResumeFromCheckpoint = true
	in, _ := pointsInput(rt, 40)
	stepper, err := NewPICStepper(rt, &meanSeeker{eps: 1e-9}, in, startModel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := stepper.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	res := stepper.Result()
	if !res.ResumedFromCheckpoint {
		t.Fatal("second driver did not resume from the checkpoint")
	}
	if !res.TopOffConverged {
		t.Fatal("resumed run did not converge")
	}
	if d := model.MaxVectorDelta(first.Model, res.Model); d > 1e-6 {
		t.Fatalf("resumed run converged %g away", d)
	}
	if countKind(tr, trace.KindCheckpoint) == 0 {
		t.Fatal("trace has no checkpoint event for the resume")
	}

	// No checkpoint in the DFS: ResumeFromCheckpoint is a fresh start,
	// not an error.
	fresh := netChaosRuntime(nil, nil)
	fresh.FS().CreateWithData("input/points", make([]byte, 200<<10), 0)
	in2, _ := pointsInput(fresh, 40)
	stepper2, err := NewPICStepper(fresh, &meanSeeker{eps: 1e-9}, in2, startModel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := stepper2.Step(); err != nil || done {
		t.Fatalf("fresh resume step: done=%v err=%v", done, err)
	}
}

// TestNetChaosCrashPlusOutageDeterminism is the combined-fault ordering
// guarantee: a node crash and a network fault scripted at the same
// instant (on the same node) replay identically, with the node event
// processed first.
func TestNetChaosCrashPlusOutageDeterminism(t *testing.T) {
	const at = simtime.Time(0.4)
	netplan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultNodeLink, Node: 1, Start: at, End: at + 2},
		{Kind: simnet.FaultCore, Start: at + 3, End: at + 4, Factor: 0.25},
	}}
	failplan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 1, Time: at},
	}}
	run := func() (*PICResult, string) {
		res, _, tr := runNetChaosPIC(t, netplan, failplan)
		return res, tr.Render()
	}
	res1, tl1 := run()
	res2, tl2 := run()
	if tl1 != tl2 {
		t.Fatalf("timelines differ between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", tl1, tl2)
	}
	if res1.Metrics != res2.Metrics || res1.Duration != res2.Duration {
		t.Fatalf("results differ:\n%+v\n%+v", res1, res2)
	}
	if !res1.TopOffConverged {
		t.Fatal("combined-fault run did not converge")
	}
	if res1.Metrics.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", res1.Metrics.NodeCrashes)
	}
	// The crash and the fault onset share a timestamp; the node event
	// must precede the net-fault event in the recorded timeline.
	var crashIdx, faultIdx = -1, -1
	tr := func() *trace.Tracer { _, _, tr := runNetChaosPIC(t, netplan, failplan); return tr }()
	for i, e := range tr.Events() {
		if e.Kind == trace.KindNodeCrash && crashIdx < 0 {
			crashIdx = i
		}
		if e.Kind == trace.KindNetFault && faultIdx < 0 {
			faultIdx = i
		}
	}
	if crashIdx < 0 || faultIdx < 0 {
		t.Fatalf("missing events: crash %d, net fault %d", crashIdx, faultIdx)
	}
	if crashIdx > faultIdx {
		t.Fatalf("net fault recorded before the simultaneous node crash (%d vs %d)", faultIdx, crashIdx)
	}
}

// TestNetChaosWorkerCountByteIdentical is the engine half of the
// determinism guard under a partition-heavy plan: real execution
// parallelism must not leak into the simulated timeline.
func TestNetChaosWorkerCountByteIdentical(t *testing.T) {
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultPartition, Nodes: []int{3}, Start: 0.3, End: 2.3},
		{Kind: simnet.FaultCore, Start: 3, End: 4, Factor: 0.1},
	}}
	run := func(workers int) (*PICResult, string) {
		rt := netChaosRuntime(plan, nil)
		tr := trace.New()
		rt.SetTracer(tr)
		rt.Engine().TransferTimeout = 1
		rt.Engine().TransferRetries = 2
		rt.Engine().Workers = workers
		rt.FS().CreateWithData("input/points", make([]byte, 200<<10), 0)
		in, _ := pointsInput(rt, 40)
		opts := chaosPICOpts
		opts.MergeQuorum = 3
		opts.MergeTimeout = 0.5
		res, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, tr.Render()
	}
	one, tl1 := run(1)
	eight, tl8 := run(8)
	if tl1 != tl8 {
		t.Fatalf("timelines differ across worker counts:\n--- 1 worker ---\n%s--- 8 workers ---\n%s", tl1, tl8)
	}
	if one.Metrics != eight.Metrics || one.Duration != eight.Duration {
		t.Fatalf("results differ across worker counts:\n%+v\n%+v", one, eight)
	}
	if !reflect.DeepEqual(one.Model.Encode(nil), eight.Model.Encode(nil)) {
		t.Fatal("final models differ across worker counts")
	}
}

package core

import (
	"reflect"
	"testing"

	"repro/internal/corrupt"
	"repro/internal/dfs"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// corruptChaosRuntime builds the standard 4-node test runtime with a
// corruption plan (and optionally network and failure plans) registered
// on the cluster before the runtime snapshots it.
func corruptChaosRuntime(cplan *corrupt.Plan, netplan *simnet.NetworkPlan, failplan *simcluster.FailurePlan) *Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              4,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
	cluster.SetNetworkPlan(netplan)
	cluster.SetFailurePlan(failplan)
	cluster.SetCorruptionPlan(cplan)
	return NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 10})
}

// runCorruptChaosPIC executes the shared mean-seeker PIC workload under
// a corruption plan, mirroring runNetChaosPIC: degraded-transfer knobs,
// a 3-of-4 merge quorum, and integrity detection toggled per arm.
func runCorruptChaosPIC(t *testing.T, cplan *corrupt.Plan, netplan *simnet.NetworkPlan,
	failplan *simcluster.FailurePlan, workers int, detect bool) (*PICResult, *Runtime, *trace.Tracer) {
	t.Helper()
	rt := corruptChaosRuntime(cplan, netplan, failplan)
	tr := trace.New()
	rt.SetTracer(tr)
	rt.Engine().TransferTimeout = 1
	rt.Engine().TransferRetries = 2
	if workers > 0 {
		rt.Engine().Workers = workers
	}
	rt.SetIntegrityChecks(detect)
	rt.FS().CreateWithData("input/points", make([]byte, 200<<10), 0)
	in, _ := pointsInput(rt, 40)
	opts := chaosPICOpts
	opts.MergeQuorum = 3
	opts.MergeTimeout = 0.5
	res, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, rt, tr
}

// TestCorruptChaosZeroPlanIsNoOp is the zero-corruption no-op
// guarantee end to end: a registered plan whose events never cover the
// run — including a bit-error window, which flips the engines onto
// their payload-checking path — must leave the timeline, metrics and
// final model byte-identical to no plan at all.
func TestCorruptChaosZeroPlanIsNoOp(t *testing.T) {
	bare, bareRT, bareTr := runCorruptChaosPIC(t, nil, nil, nil, 0, true)
	idle := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 1, Start: 1e8, End: 1e8 + 10, Rate: 1, Seed: 7},
		{Kind: corrupt.KindBlockReplica, File: "input/points", Block: 0, Node: corrupt.PrimaryReplica, At: 1e8, Seed: 8},
		{Kind: corrupt.KindCheckpoint, Model: "mean-seeker-be", At: 1e8, Seed: 9},
		{Kind: corrupt.KindScrub, Budget: 1 << 30, At: 1e8},
	}}
	planned, plannedRT, plannedTr := runCorruptChaosPIC(t, idle, nil, nil, 0, true)
	if bareTr.Render() != plannedTr.Render() {
		t.Fatalf("idle corruption plan perturbed the timeline:\n--- no plan ---\n%s--- idle plan ---\n%s",
			bareTr.Render(), plannedTr.Render())
	}
	if bare.Metrics != planned.Metrics || bare.Duration != planned.Duration {
		t.Fatalf("idle corruption plan perturbed metrics or duration:\n%+v\n%+v", bare.Metrics, planned.Metrics)
	}
	if !reflect.DeepEqual(bare.Model.Encode(nil), planned.Model.Encode(nil)) {
		t.Fatal("idle corruption plan perturbed the final model")
	}
	if got := plannedRT.FS().Integrity(); got != (dfs.IntegrityCounters{}) {
		t.Fatalf("idle plan left integrity counters: %+v", got)
	}
	if got := bareRT.FS().Integrity(); got != (dfs.IntegrityCounters{}) {
		t.Fatalf("plan-free run left integrity counters: %+v", got)
	}
}

// TestCorruptChaosDetectionConverges drives the whole detection stack
// at once — bit-error windows over most of the run, a poisoned input
// replica, a scheduled scrub — and requires the detected-and-repaired
// run to land on the healthy answer.
func TestCorruptChaosDetectionConverges(t *testing.T) {
	healthy, _, _ := runCorruptChaosPIC(t, nil, nil, nil, 0, true)
	if !healthy.TopOffConverged {
		t.Fatal("healthy run did not converge")
	}
	horizon := simtime.Duration(healthy.Duration) * 8
	plan := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 1, Start: 0, End: horizon, Rate: 0.6, Seed: 11},
		{Kind: corrupt.KindTransfer, Node: 2, Start: 0, End: horizon, Rate: 0.6, Seed: 12},
		{Kind: corrupt.KindTransfer, Node: 3, Start: 0, End: horizon, Rate: 0.6, Seed: 13},
		{Kind: corrupt.KindBlockReplica, File: "input/points", Block: 0, Node: corrupt.PrimaryReplica,
			At: simtime.Duration(healthy.Duration) / 10, Seed: 14},
		{Kind: corrupt.KindScrub, Budget: 1 << 30, At: simtime.Duration(healthy.Duration) / 3},
	}}
	res, rt, tr := runCorruptChaosPIC(t, plan, nil, nil, 0, true)
	if !res.TopOffConverged {
		t.Fatal("detected run did not converge")
	}
	if d := model.MaxVectorDelta(healthy.Model, res.Model); d > 1e-6 {
		t.Fatalf("detected run converged %g away from the healthy solution", d)
	}
	if res.Metrics.CorruptRetries == 0 {
		t.Fatal("rate-0.6 windows over the whole run caused no checksum re-sends")
	}
	if res.Metrics.CorruptRetryBytes == 0 {
		t.Fatal("re-sends carried no bytes")
	}
	if countKind(tr, trace.KindCorruptionDetect) == 0 {
		t.Fatal("trace has no corruption-detect events")
	}
	if countKind(tr, trace.KindScrub) != 1 {
		t.Fatalf("trace has %d scrub events, want 1", countKind(tr, trace.KindScrub))
	}
	ic := rt.FS().Integrity()
	if ic.InjectedBlocks == 0 {
		t.Fatalf("block poisoning never landed: %+v", ic)
	}
	if ic.DetectedBlocks == 0 || ic.RepairedBlocks == 0 {
		t.Fatalf("poisoned replica neither detected nor repaired: %+v", ic)
	}
	if res.Duration <= healthy.Duration {
		t.Fatalf("re-sends and repairs cost no time: %v vs healthy %v", res.Duration, healthy.Duration)
	}
}

// TestCorruptChaosSilentFlowsPerturb pins the detection-off contract of
// the flow-charging hub: a corrupt arrival is reported to the caller as
// silent damage (for the caller to model), nothing is re-sent, and no
// counter or trace event betrays it — while detection on re-sends the
// same flow until it lands clean and charges the re-sent bytes.
func TestCorruptChaosSilentFlowsPerturb(t *testing.T) {
	plan := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 1, Start: 0, End: 0.2, Rate: 1, Seed: 21},
	}}
	flows := []simnet.Flow{{Src: 1, Dst: 0, Bytes: 64 << 10}}

	silent := corruptChaosRuntime(plan, nil, nil)
	silent.SetIntegrityChecks(false)
	before := silent.Cluster().Fabric().Counters().Total
	moved, dmg := silent.chargeFlowsVerified(flows)
	if len(dmg) != 1 || dmg[0].idx != 0 || dmg[0].seed == 0 {
		t.Fatalf("silent charge reported damage %+v, want one seeded hit on flow 0", dmg)
	}
	if moved != 64<<10 || silent.Cluster().Fabric().Counters().Total-before != 64<<10 {
		t.Fatalf("silent damage moved %d bytes, want exactly one send", moved)
	}
	if m := silent.Metrics(); m.CorruptRetries != 0 || m.CorruptRetryBytes != 0 {
		t.Fatalf("silent damage counted re-sends: %+v", m)
	}

	checked := corruptChaosRuntime(plan, nil, nil)
	checked.SetIntegrityChecks(true)
	moved2, dmg2 := checked.chargeFlowsVerified(flows)
	if len(dmg2) != 0 {
		t.Fatalf("verified charge leaked damage %+v", dmg2)
	}
	m := checked.Metrics()
	if m.CorruptRetries == 0 {
		t.Fatal("verified charge re-sent nothing through a rate-1 window")
	}
	if want := int64(m.CorruptRetries+1) * (64 << 10); moved2 != want {
		t.Fatalf("verified charge moved %d bytes, want %d (%d re-sends conserved)", moved2, want, m.CorruptRetries)
	}
}

// TestCorruptChaosSilentRunDegrades compares a full PIC run with
// detection off against the healthy run: the corruption must leave no
// trace anywhere — no detects, no re-sends, no repairs — while still
// actually perturbing the execution, and identical silent runs must
// stay byte-identical (the damage is scripted, not random).
func TestCorruptChaosSilentRunDegrades(t *testing.T) {
	healthy, _, _ := runCorruptChaosPIC(t, nil, nil, nil, 0, false)
	plan := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 1, Start: 0, End: 1e6, Rate: 1, Seed: 31},
		{Kind: corrupt.KindTransfer, Node: 2, Start: 0, End: 1e6, Rate: 1, Seed: 32},
		{Kind: corrupt.KindTransfer, Node: 3, Start: 0, End: 1e6, Rate: 1, Seed: 33},
	}}
	silent, rt, tr := runCorruptChaosPIC(t, plan, nil, nil, 0, false)
	silent2, _, tr2 := runCorruptChaosPIC(t, plan, nil, nil, 0, false)

	if silent.Metrics.CorruptRetries != 0 || silent.Metrics.CorruptRetryBytes != 0 {
		t.Fatalf("silent run counted re-sends: %+v", silent.Metrics)
	}
	if n := countKind(tr, trace.KindCorruptionDetect); n != 0 {
		t.Fatalf("silent run recorded %d corruption-detect events", n)
	}
	if ic := rt.FS().Integrity(); ic.DetectedBlocks != 0 || ic.RepairedBlocks != 0 {
		t.Fatalf("silent run detected or repaired blocks: %+v", ic)
	}
	sameModel := reflect.DeepEqual(healthy.Model.Encode(nil), silent.Model.Encode(nil))
	if sameModel && silent.Duration == healthy.Duration && silent.BEIterations == healthy.BEIterations {
		t.Fatal("rate-1 bit errors on three nodes left the silent run identical to healthy")
	}
	if tr.Render() != tr2.Render() {
		t.Fatal("silent damage not deterministic across identical runs")
	}
	if silent.Metrics != silent2.Metrics || silent.Duration != silent2.Duration ||
		!reflect.DeepEqual(silent.Model.Encode(nil), silent2.Model.Encode(nil)) {
		t.Fatal("silent runs differ between repeats")
	}
}

// allKindsPlan scripts every corruption event kind at once for the
// determinism tests: a bit-error window, a poisoned input replica,
// checkpoint damage, and a scrub pass.
func allKindsPlan() *corrupt.Plan {
	return &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 2, Start: 0.2, End: 2.2, Rate: 0.7, Seed: 41},
		{Kind: corrupt.KindBlockReplica, File: "input/points", Block: 0, Node: corrupt.PrimaryReplica, At: 0.3, Seed: 42},
		{Kind: corrupt.KindCheckpoint, Model: "mean-seeker-be", At: 1.0, Seed: 43},
		{Kind: corrupt.KindScrub, Budget: 1 << 30, At: 1.5},
	}}
}

// TestCorruptChaosWorkerCountByteIdentical is the engine half of the
// determinism guard under a corruption-heavy plan: real execution
// parallelism must not leak into the simulated timeline, and repeats
// must replay byte-identically.
func TestCorruptChaosWorkerCountByteIdentical(t *testing.T) {
	plan := allKindsPlan()
	run := func(workers int) (*PICResult, string) {
		res, _, tr := runCorruptChaosPIC(t, plan, nil, nil, workers, true)
		return res, tr.Render()
	}
	one, tl1 := run(1)
	again, tlAgain := run(1)
	eight, tl8 := run(8)
	if tl1 != tl8 {
		t.Fatalf("timelines differ across worker counts:\n--- 1 worker ---\n%s--- 8 workers ---\n%s", tl1, tl8)
	}
	if tl1 != tlAgain {
		t.Fatal("timelines differ between repeated identical runs")
	}
	if one.Metrics != eight.Metrics || one.Duration != eight.Duration ||
		one.Metrics != again.Metrics || one.Duration != again.Duration {
		t.Fatalf("results differ across worker counts or repeats:\n%+v\n%+v\n%+v",
			one.Metrics, eight.Metrics, again.Metrics)
	}
	if !reflect.DeepEqual(one.Model.Encode(nil), eight.Model.Encode(nil)) {
		t.Fatal("final models differ across worker counts")
	}
}

// TestCorruptChaosThreeWayDeterminism is the combined-fault acceptance
// test: a node crash, a network fault and scripted corruption in one
// run must replay byte-identically across worker counts and repeats,
// with the documented tie order (node event, then net fault, then
// corruption) holding at shared timestamps — and still converge.
func TestCorruptChaosThreeWayDeterminism(t *testing.T) {
	const at = simtime.Time(0.4)
	cplan := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 2, Start: simtime.Duration(at), End: simtime.Duration(at) + 3, Rate: 0.5, Seed: 51},
		{Kind: corrupt.KindBlockReplica, File: "input/points", Block: 0, Node: corrupt.PrimaryReplica,
			At: simtime.Duration(at), Seed: 52},
		{Kind: corrupt.KindScrub, Budget: 1 << 30, At: 1.0},
	}}
	netplan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultNodeLink, Node: 1, Start: at, End: at + 2},
	}}
	failplan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 1, Time: at},
	}}
	run := func(workers int) (*PICResult, *trace.Tracer) {
		res, _, tr := runCorruptChaosPIC(t, cplan, netplan, failplan, workers, true)
		return res, tr
	}
	one, tr1 := run(1)
	again, trAgain := run(1)
	eight, tr8 := run(8)
	if tr1.Render() != tr8.Render() {
		t.Fatalf("timelines differ across worker counts:\n--- 1 worker ---\n%s--- 8 workers ---\n%s",
			tr1.Render(), tr8.Render())
	}
	if tr1.Render() != trAgain.Render() {
		t.Fatal("timelines differ between repeated identical runs")
	}
	if one.Metrics != eight.Metrics || one.Duration != eight.Duration ||
		one.Metrics != again.Metrics || one.Duration != again.Duration {
		t.Fatalf("results differ across worker counts or repeats:\n%+v\n%+v", one.Metrics, eight.Metrics)
	}
	if !reflect.DeepEqual(one.Model.Encode(nil), eight.Model.Encode(nil)) {
		t.Fatal("final models differ across worker counts")
	}
	if !one.TopOffConverged {
		t.Fatal("three-way chaos run did not converge")
	}
	if one.Metrics.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", one.Metrics.NodeCrashes)
	}
	if countKind(tr1, trace.KindNetFault) == 0 {
		t.Fatal("trace has no net-fault events")
	}
	if countKind(tr1, trace.KindScrub) != 1 {
		t.Fatalf("trace has %d scrub events, want 1", countKind(tr1, trace.KindScrub))
	}
	// The crash and the fault onset share a timestamp: the node event
	// must precede the net-fault event in the recorded timeline.
	crashIdx, faultIdx := -1, -1
	for i, e := range tr1.Events() {
		if e.Kind == trace.KindNodeCrash && crashIdx < 0 {
			crashIdx = i
		}
		if e.Kind == trace.KindNetFault && faultIdx < 0 {
			faultIdx = i
		}
	}
	if crashIdx < 0 || faultIdx < 0 {
		t.Fatalf("missing events: crash %d, net fault %d", crashIdx, faultIdx)
	}
	if crashIdx > faultIdx {
		t.Fatalf("net fault recorded before the simultaneous node crash (%d vs %d)", faultIdx, crashIdx)
	}
}

package core

import (
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simtime"
)

// ICOptions configure a conventional iterative-convergence run — the
// paper's Figure 1(a) template and the baseline of every experiment.
type ICOptions struct {
	// MaxIterations is a safety bound (default 1000). Reaching it
	// without convergence is not an error: some algorithms (PageRank
	// in Nutch) terminate on an iteration cap by design.
	MaxIterations int
	// DisableModelWrites skips persisting each iteration's model to
	// the DFS. Conventional Hadoop implementations must write the
	// model every iteration (with replication) for fault tolerance, so
	// writes are on by default; the PIC driver disables them for
	// best-effort local iterations, whose models live in group memory.
	DisableModelWrites bool
	// Observer, when set, receives a Sample after every iteration.
	Observer Observer
	// Phase labels emitted samples (default PhaseIC; the PIC driver
	// sets PhaseTopOff).
	Phase Phase
	// TimeOffset shifts sample timestamps, so a top-off phase's
	// trajectory continues from the end of the best-effort phase.
	TimeOffset simtime.Time
}

func (o *ICOptions) withDefaults() ICOptions {
	out := ICOptions{MaxIterations: 1000, Phase: PhaseIC}
	if o == nil {
		return out
	}
	out.Observer = o.Observer
	out.TimeOffset = o.TimeOffset
	if o.MaxIterations > 0 {
		out.MaxIterations = o.MaxIterations
	}
	out.DisableModelWrites = o.DisableModelWrites
	if o.Phase != "" {
		out.Phase = o.Phase
	}
	return out
}

// ICResult reports a conventional run.
type ICResult struct {
	// Model is the converged (or iteration-capped) final model.
	Model *model.Model
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the convergence criterion was met
	// (false when MaxIterations stopped the run).
	Converged bool
	// Duration is the simulated time of the run.
	Duration simtime.Duration
	// Blocked is the part of Duration spent stalled on network faults:
	// when an iteration's transfers find their path severed, the
	// conventional driver can only wait for the fault window to move
	// and re-run the iteration (the paper's turbulence argument — IC
	// genuinely needs the full network every iteration).
	Blocked simtime.Duration
	// BlockedIterations counts iteration attempts abandoned to a
	// severed network and re-run after the stall.
	BlockedIterations int
	// Metrics aggregates the run's job metrics.
	Metrics mapred.Metrics
	// ModelUpdateBytes is replication traffic from persisting models.
	ModelUpdateBytes int64
}

// RunIC executes app's iterative-convergence computation on rt from the
// initial model m0 until Converged or the iteration cap. It is both the
// experimental baseline and the building block PIC reuses for local
// iterations and the top-off phase. RunIC is ICStepper driven to
// completion: a stepped run and a monolithic run are identical.
func RunIC(rt *Runtime, app App, in *mapred.Input, m0 *model.Model, opts *ICOptions) (*ICResult, error) {
	s := NewICStepper(rt, app, in, m0, opts)
	for {
		done, err := s.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return s.Result(), nil
		}
	}
}

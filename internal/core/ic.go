package core

import (
	"fmt"

	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// ICOptions configure a conventional iterative-convergence run — the
// paper's Figure 1(a) template and the baseline of every experiment.
type ICOptions struct {
	// MaxIterations is a safety bound (default 1000). Reaching it
	// without convergence is not an error: some algorithms (PageRank
	// in Nutch) terminate on an iteration cap by design.
	MaxIterations int
	// DisableModelWrites skips persisting each iteration's model to
	// the DFS. Conventional Hadoop implementations must write the
	// model every iteration (with replication) for fault tolerance, so
	// writes are on by default; the PIC driver disables them for
	// best-effort local iterations, whose models live in group memory.
	DisableModelWrites bool
	// Observer, when set, receives a Sample after every iteration.
	Observer Observer
	// Phase labels emitted samples (default PhaseIC; the PIC driver
	// sets PhaseTopOff).
	Phase Phase
	// TimeOffset shifts sample timestamps, so a top-off phase's
	// trajectory continues from the end of the best-effort phase.
	TimeOffset simtime.Time
}

func (o *ICOptions) withDefaults() ICOptions {
	out := ICOptions{MaxIterations: 1000, Phase: PhaseIC}
	if o == nil {
		return out
	}
	out.Observer = o.Observer
	out.TimeOffset = o.TimeOffset
	if o.MaxIterations > 0 {
		out.MaxIterations = o.MaxIterations
	}
	out.DisableModelWrites = o.DisableModelWrites
	if o.Phase != "" {
		out.Phase = o.Phase
	}
	return out
}

// ICResult reports a conventional run.
type ICResult struct {
	// Model is the converged (or iteration-capped) final model.
	Model *model.Model
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the convergence criterion was met
	// (false when MaxIterations stopped the run).
	Converged bool
	// Duration is the simulated time of the run.
	Duration simtime.Duration
	// Metrics aggregates the run's job metrics.
	Metrics mapred.Metrics
	// ModelUpdateBytes is replication traffic from persisting models.
	ModelUpdateBytes int64
}

// RunIC executes app's iterative-convergence computation on rt from the
// initial model m0 until Converged or the iteration cap. It is both the
// experimental baseline and the building block PIC reuses for local
// iterations and the top-off phase.
func RunIC(rt *Runtime, app App, in *mapred.Input, m0 *model.Model, opts *ICOptions) (*ICResult, error) {
	opt := opts.withDefaults()
	startElapsed := rt.Elapsed()
	startMetrics := rt.Metrics()
	startModelBytes := rt.ModelUpdateBytes()

	// The phase span encloses every job the loop runs: allocate its id
	// up front so children parent under it, record the event at the end
	// when the extent is known.
	phaseID := rt.tracer.NextID()
	prevSpan := rt.span
	rt.span = phaseID
	defer func() { rt.span = prevSpan }()

	m := m0
	res := &ICResult{}
	for res.Iterations < opt.MaxIterations {
		next, err := app.Iteration(rt, in, m)
		if err != nil {
			return nil, fmt.Errorf("core: %s iteration %d: %w", app.Name(), res.Iterations, err)
		}
		if next == nil {
			return nil, fmt.Errorf("core: %s iteration %d returned a nil model", app.Name(), res.Iterations)
		}
		res.Iterations++
		if !opt.DisableModelWrites {
			rt.WriteModel(app.Name(), next)
		}
		if opt.Observer != nil {
			opt.Observer(Sample{
				Phase:     opt.Phase,
				Iteration: res.Iterations,
				Time:      opt.TimeOffset + simtime.Time(rt.Elapsed()-startElapsed),
				Model:     next,
			})
		}
		if rt.obs != nil && !rt.local {
			delta := max(model.MaxVectorDelta(m, next), model.MaxFloatDelta(m, next))
			rt.obs.Series("core.residual", metrics.L("phase", string(opt.Phase))...).
				Sample(rt.now(), delta)
		}
		converged := app.Converged(m, next)
		m = next
		if converged {
			res.Converged = true
			break
		}
	}
	res.Model = m
	res.Duration = rt.Elapsed() - startElapsed
	res.Metrics = rt.Metrics().Sub(startMetrics)
	res.ModelUpdateBytes = rt.ModelUpdateBytes() - startModelBytes
	rt.tracer.Record(trace.Event{
		Kind:  trace.KindPhase,
		Name:  app.Name() + "/" + string(opt.Phase),
		Start: rt.now() - simtime.Time(res.Duration),
		End:   rt.now(),
		Lane:  rt.lane,
		ID:    phaseID,
	})
	return res, nil
}

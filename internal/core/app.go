// Package core implements Partitioned Iterative Convergence (PIC), the
// contribution of the paper: a two-phase driver for iterative-convergence
// algorithms layered on top of the MapReduce runtime.
//
// A conventional iterative-convergence application (the paper's Figure
// 1(a) template) implements App: one Iteration over the data and model,
// plus a convergence criterion. Such an application runs unchanged under
// RunIC — the baseline — and under the top-off phase of RunPIC.
//
// To opt into PIC (the paper's Figure 3 template), the application
// additionally implements the three best-effort-phase functions of the
// Figure 4 API: Partition and Merge on PICApp, and optionally
// BEConverged via the BEConvergedApp interface (defaulting to the
// ordinary convergence criterion, as the paper allows). Everything else
// an application needs — map, reduce, model handling — is the standard
// MapReduce surface, which is the paper's point: migrating a
// conventional implementation to PIC is a small effort.
package core

import (
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/writable"
)

// App is a conventional iterative-convergence application.
type App interface {
	// Name labels the application in metrics, file names and errors.
	Name() string
	// Iteration executes one iteration of the computation: one or more
	// MapReduce jobs over the input data and current model (run
	// through rt), returning the refined model. It must not mutate m.
	Iteration(rt *Runtime, in *mapred.Input, m *model.Model) (*model.Model, error)
	// Converged reports whether the model has stopped changing
	// meaningfully between successive iterations.
	Converged(prev, next *model.Model) bool
}

// SubProblem is one partition of the problem: a slice of the input data
// together with the model the partition starts from (a disjoint piece of
// the full model, or a copy of it, depending on the application's
// partitioning strategy — §III-B of the paper).
type SubProblem struct {
	Records []mapred.Record
	Model   *model.Model
}

// PICApp extends App with the best-effort-phase API of the paper's
// Figure 4.
type PICApp interface {
	App
	// Partition splits the input data and model into p sub-problems.
	// It may partition the model into disjoint parts (PageRank) or
	// replicate it (K-means). It must not mutate m.
	Partition(in *mapred.Input, m *model.Model, p int) ([]SubProblem, error)
	// Merge combines the partial models computed by the sub-problems
	// into a single model. prev is the model the best-effort iteration
	// started from, for merge strategies that need it. It must not
	// mutate parts or prev.
	Merge(parts []*model.Model, prev *model.Model) (*model.Model, error)
}

// LoopPartitioner is optionally implemented by a PICApp whose Partition
// deals records deterministically and independently of the model. The
// PIC stepper then computes the record layout once per run and calls
// PartitionModels for the per-iteration model refresh, so the
// loop-invariant half of every sub-problem keeps the same backing
// arrays across best-effort iterations — which is what lets the
// job-family caches stay warm between them. Partition is still the
// source of truth: implementations must guarantee PartitionModels(m, p)
// yields exactly the models Partition(in, m, p) would.
type LoopPartitioner interface {
	PartitionModels(m *model.Model, p int) []*model.Model
}

// KeyMerger is optionally implemented by a PICApp whose merge combines
// partial models key by key (averaging centroids, summing gradients).
// With PICOptions.DistributedMerge, the driver then executes the merge
// as a real MapReduce job — §III-C: "representing the model as key/value
// pairs also allows the merge function itself to execute in a
// distributed fashion as a MapReduce job" — instead of gathering the
// partial models to one node.
type KeyMerger interface {
	// MergeKey combines all partial-model values recorded under one
	// key into the merged value.
	MergeKey(key string, values []writable.Writable) (writable.Writable, error)
}

// WeightedKeyMerger extends KeyMerger for merge strategies that combine
// pre-combined partials: values[i] already summarizes weights[i]
// partial models, and MergeKeyWeighted must produce the same logical
// result as MergeKey over the underlying partials (an averaging merger,
// for instance, computes the weights-weighted mean). It is what lets
// PICOptions.HierarchicalMerge pre-combine partials inside each rack
// without biasing the final model toward small racks.
type WeightedKeyMerger interface {
	KeyMerger
	// MergeKeyWeighted combines partial values under one key, where
	// values[i] stands for weights[i] original partials (weights[i] ≥ 1,
	// len(weights) == len(values)).
	MergeKeyWeighted(key string, values []writable.Writable, weights []int) (writable.Writable, error)
}

// BEConvergedApp is optionally implemented by a PICApp to terminate the
// best-effort phase with a looser criterion than Converged. When absent,
// the paper's default applies: the ordinary convergence criterion is
// used for best-effort convergence too.
type BEConvergedApp interface {
	BEConverged(prev, next *model.Model) bool
}

// Phase identifies which part of an execution produced a sample.
type Phase string

// The three execution phases.
const (
	PhaseIC         Phase = "ic"
	PhaseBestEffort Phase = "best-effort"
	PhaseTopOff     Phase = "top-off"
)

// Sample is one point on an execution's model-quality trajectory: the
// model as it stood when the phase's iteration completed, with the
// simulated time on the runtime's clock. Observers receive the live
// model and must not mutate it.
type Sample struct {
	Phase     Phase
	Iteration int
	Time      simtime.Time
	Model     *model.Model
}

// Observer receives a Sample at the end of every iteration (IC), every
// best-effort iteration, and every top-off iteration. The error-vs-time
// plots of the paper's Figure 12 are drawn from these samples.
type Observer func(Sample)

package core

import (
	"fmt"
	"sort"

	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// netTracker replays a cluster's NetworkPlan against the runtime clock,
// the network twin of failureTracker: one tracker is shared by a root
// runtime and all its forks, so each fault window's onset is processed
// exactly once — by whichever runtime's clock first passes it. Window
// closings need no processing: transfers re-price themselves from the
// plan's overlay at their own start time, so only onsets have side
// effects (trace span, counters, and for a partition a DFS repair pass
// on the reachable side).
type netTracker struct {
	faults []simnet.NetFault // sorted by Start
	next   int
}

func newNetTracker(plan *simnet.NetworkPlan) *netTracker {
	if plan == nil || len(plan.Faults) == 0 {
		return nil
	}
	return &netTracker{faults: plan.Sorted()}
}

// syncFaults drains every failure, network and corruption event the
// clock has passed, in global time order; at a tied instant a node
// event processes before a network-fault onset, which processes before
// a corruption event, so the same script replays identically no matter
// which plan the driver registered first. Runtimes call it after every
// clock advance. After the drain, any detection/repair activity the
// DFS integrity layer accumulated (from verified reads anywhere) is
// folded into the trace and counters.
func (rt *Runtime) syncFaults() {
	for {
		ft, nt, ct := rt.fails, rt.net, rt.corrupts
		now := rt.now()
		fPending := ft != nil && ft.next < len(ft.events) && ft.events[ft.next].Time <= now
		nPending := nt != nil && nt.next < len(nt.faults) && nt.faults[nt.next].Start <= now
		cPending := ct != nil && ct.next < len(ct.events) && ct.events[ct.next].Time() <= now
		var fT, nT, cT simtime.Time
		if fPending {
			fT = ft.events[ft.next].Time
		}
		if nPending {
			nT = nt.faults[nt.next].Start
		}
		if cPending {
			cT = ct.events[ct.next].Time()
		}
		switch {
		case fPending && (!nPending || fT <= nT) && (!cPending || fT <= cT):
			rt.processNodeEvent()
		case nPending && (!cPending || nT <= cT):
			rt.processNetFault()
		case cPending:
			rt.processCorruptEvent()
		default:
			rt.drainIntegrity(now)
			return
		}
	}
}

// processNetFault applies one fault window's onset: the net-fault trace
// span (recorded with the window's full extent), the net.faults
// counter, and — for a partition — a re-replication pass on the model
// home's side of the cut, so reads there keep a full complement of
// reachable replicas (the far side heals on its own when the window
// closes; any replicas it holds are retained, not forgotten).
func (rt *Runtime) processNetFault() {
	nt := rt.net
	nf := nt.faults[nt.next]
	nt.next++
	rt.tracer.Record(trace.Event{
		Kind: trace.KindNetFault, Name: nf.Describe(),
		Start: nf.Start, End: nf.End, Lane: rt.lane,
	})
	if rt.obs != nil {
		rt.obs.Counter("net.faults").Add(1)
	}
	if nf.Kind != simnet.FaultPartition {
		return
	}
	report, d := rt.fs.RepairReachable(rt.LiveModelHome(), nf.Start)
	if rt.obs != nil && report.UnreachableBlocks > 0 {
		rt.obs.Counter("net.unreachable_blocks").Add(float64(report.UnreachableBlocks))
	}
	if report.ReplicatedBytes == 0 {
		return
	}
	rt.metrics.ReReplicationBytes += report.ReplicatedBytes
	rt.tracer.Record(trace.Event{
		Kind: trace.KindReReplication, Name: fmt.Sprintf("%d blocks (around partition)", report.ReplicatedBlocks),
		Start: nf.Start, End: nf.Start + d, Bytes: report.ReplicatedBytes, Lane: rt.lane,
	})
}

// blockUntilNetTransition advances the clock to the network plan's next
// fault-window boundary and reports the wait; ok is false when no plan
// is registered or no boundary lies ahead (the overlay will never
// change again, so waiting is pointless). The IC stepper uses it to
// stall out a severed iteration — the conventional driver's only
// recourse, per the paper's turbulence argument.
func (rt *Runtime) blockUntilNetTransition() (simtime.Duration, bool) {
	plan := rt.Cluster().NetworkPlan()
	if plan == nil {
		return 0, false
	}
	next, ok := plan.NextTransition(rt.now())
	if !ok {
		return 0, false
	}
	start := rt.now()
	wait := simtime.Duration(next - start)
	rt.AdvanceTime(wait)
	rt.tracer.Record(trace.Event{
		Kind: trace.KindTransfer, Name: "blocked: waiting out network fault",
		Start: start, End: rt.now(), Lane: rt.lane, Parent: rt.span,
	})
	return wait, true
}

// UnreachableNodes returns the view nodes with no fabric path from the
// model home at the runtime's current time, in sorted order (nil when
// no plan is registered or nothing is cut off).
func (rt *Runtime) UnreachableNodes() []int {
	fabric := rt.Cluster().Fabric()
	if fabric.NetworkPlan() == nil {
		return nil
	}
	cut := fabric.UnreachableFrom(rt.LiveModelHome(), rt.now())
	if len(cut) == 0 {
		return nil
	}
	var out []int
	for _, n := range rt.Cluster().Nodes() {
		if cut[n] {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

package core

import (
	"fmt"

	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// AsyncOptions configure RunPICAsync.
type AsyncOptions struct {
	// Partitions is the number of sub-problems; the asynchronous
	// driver requires one node group per sub-problem (P ≤ nodes).
	Partitions int
	// MaxRoundsPerGroup bounds each group's asynchronous best-effort
	// rounds (default 50).
	MaxRoundsPerGroup int
	// MaxLocalIterations bounds each round's local convergence loop
	// (default 200).
	MaxLocalIterations int
	// MaxTopOffIterations bounds the top-off phase (default 1000).
	MaxTopOffIterations int
}

func (o AsyncOptions) withDefaults() AsyncOptions {
	if o.MaxRoundsPerGroup <= 0 {
		o.MaxRoundsPerGroup = 50
	}
	if o.MaxLocalIterations <= 0 {
		o.MaxLocalIterations = 200
	}
	if o.MaxTopOffIterations <= 0 {
		o.MaxTopOffIterations = 1000
	}
	return o
}

// AsyncResult reports an asynchronous PIC run.
type AsyncResult struct {
	Model           *model.Model
	BestEffortModel *model.Model

	// RoundsPerGroup[g] is how many asynchronous rounds group g ran.
	RoundsPerGroup []int
	// BEDuration is when the last group went quiet; Duration adds the
	// top-off phase.
	BEDuration     simtime.Duration
	TopOffDuration simtime.Duration
	Duration       simtime.Duration

	TopOffIterations int
	TopOffConverged  bool
}

// RunPICAsync executes the best-effort phase asynchronously: groups
// never barrier at a cluster-wide merge. Each group repeatedly (a) takes
// a snapshot merge of the *latest published* partial models — however
// stale the other groups' entries are — (b) re-partitions against that
// snapshot, (c) locally solves its own sub-problem, and (d) publishes
// its new partial model, all on its own clock. The paper positions PIC
// as "fully synchronous and deterministic" against asynchronous
// MapReduce [15] and chaotic relaxation [22]; this driver is that
// alternative, made deterministic by executing group events on the
// discrete-event engine in timestamp order.
//
// A group goes quiet once its consecutive snapshots satisfy the
// best-effort criterion (or its round cap); when all groups are quiet,
// the final snapshot feeds the ordinary top-off phase.
func RunPICAsync(rt *Runtime, app PICApp, in *mapred.Input, m0 *model.Model, opts AsyncOptions) (*AsyncResult, error) {
	opt := opts.withDefaults()
	cluster := rt.Cluster()
	if opt.Partitions < 1 || opt.Partitions > cluster.Size() {
		return nil, fmt.Errorf("core: RunPICAsync(%s): Partitions = %d, need 1..%d",
			app.Name(), opt.Partitions, cluster.Size())
	}
	p := opt.Partitions
	groups := cluster.Groups(p)

	beConverged := app.Converged
	if bc, ok := app.(BEConvergedApp); ok {
		beConverged = bc.BEConverged
	}

	// Initial partition seeds the published partials.
	subs, err := app.Partition(in, m0, p)
	if err != nil {
		return nil, fmt.Errorf("core: %s partition: %w", app.Name(), err)
	}
	if len(subs) != p {
		return nil, fmt.Errorf("core: %s partition returned %d sub-problems, want %d",
			app.Name(), len(subs), p)
	}
	res := &AsyncResult{RoundsPerGroup: make([]int, p)}
	partials := make([]*model.Model, p)
	for i := range partials {
		partials[i] = subs[i].Model
	}
	lastSnapshot := make([]*model.Model, p) // per group, snapshot of its previous round
	quiet := make([]bool, p)
	clocks := make([]simtime.Time, p)
	mergeOverhead := rt.Engine().CostModelValue().JobOverhead

	startElapsed := rt.Elapsed()

	eng := simtime.NewEngine()
	var runErr error
	var round func(g int)
	round = func(g int) {
		if runErr != nil || quiet[g] {
			return
		}
		// Snapshot merge of the latest published partials (stale reads
		// of other groups' models — the asynchronous step).
		snapshot, err := app.Merge(partials, m0)
		if err != nil {
			runErr = fmt.Errorf("core: %s async merge: %w", app.Name(), err)
			return
		}
		if lastSnapshot[g] != nil && beConverged(lastSnapshot[g], snapshot) {
			quiet[g] = true
			return
		}
		lastSnapshot[g] = snapshot
		if res.RoundsPerGroup[g] >= opt.MaxRoundsPerGroup {
			quiet[g] = true
			return
		}

		subs, err := app.Partition(in, snapshot, p)
		if err != nil {
			runErr = fmt.Errorf("core: %s async partition: %w", app.Name(), err)
			return
		}
		subRT := rt.Fork(groups[g], true)
		subRT.SetLane(g + 1)
		subIn := mapred.NewInput(subs[g].Records, groups[g], groups[g].MapSlots())
		local, err := RunIC(subRT, app, subIn, subs[g].Model, &ICOptions{
			MaxIterations:      opt.MaxLocalIterations,
			DisableModelWrites: true,
		})
		if err != nil {
			runErr = fmt.Errorf("core: %s async group %d: %w", app.Name(), g, err)
			return
		}
		rt.AddMetrics(subRT.Metrics())
		// Publishing the partial and fetching the next snapshot moves
		// the group's model to and from the merge home.
		leader := groups[g].Nodes()[0]
		home := rt.Engine().ModelHome
		flows := []simnet.Flow{
			{Src: leader, Dst: home, Bytes: local.Model.Size()},
			{Src: home, Dst: leader, Bytes: subs[g].Model.Size()},
		}
		fabric := cluster.Fabric()
		fabric.Record(flows)
		partials[g] = local.Model
		res.RoundsPerGroup[g]++
		clocks[g] += subRT.Elapsed() + mergeOverhead + fabric.TransferTime(flows)
		eng.At(clocks[g], func() { round(g) })
	}
	for g := 0; g < p; g++ {
		g := g
		eng.At(0, func() { round(g) })
	}
	eng.Run()
	if runErr != nil {
		return nil, runErr
	}

	var beEnd simtime.Duration
	for _, c := range clocks {
		if simtime.Duration(c) > beEnd {
			beEnd = simtime.Duration(c)
		}
	}
	rt.AdvanceTime(beEnd)

	merged, err := app.Merge(partials, m0)
	if err != nil {
		return nil, fmt.Errorf("core: %s final merge: %w", app.Name(), err)
	}
	rt.WriteModel(app.Name()+"-async", merged)
	res.BestEffortModel = merged
	res.BEDuration = rt.Elapsed() - startElapsed

	topOff, err := RunIC(rt, app, in, merged, &ICOptions{
		MaxIterations: opt.MaxTopOffIterations,
		Phase:         PhaseTopOff,
		TimeOffset:    simtime.Time(res.BEDuration),
	})
	if err != nil {
		return nil, err
	}
	res.Model = topOff.Model
	res.TopOffIterations = topOff.Iterations
	res.TopOffConverged = topOff.Converged
	res.TopOffDuration = topOff.Duration
	res.Duration = rt.Elapsed() - startElapsed
	return res, nil
}

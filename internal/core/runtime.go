package core

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/bsp"
	"repro/internal/corrupt"
	"repro/internal/dfs"
	"repro/internal/integrity"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Runtime binds a MapReduce engine, a cluster view and the distributed
// file system, and accumulates the simulated clock and metrics of
// everything executed through it. The IC and PIC drivers, and
// application Iteration methods, run all their work through a Runtime.
type Runtime struct {
	engine *mapred.Engine
	fs     *dfs.FS

	// local selects in-memory execution (Engine.RunLocal) for jobs run
	// through this runtime; the PIC driver sets it on the sub-runtimes
	// that execute best-effort local iterations.
	local bool

	elapsed          simtime.Duration
	metrics          mapred.Metrics
	modelUpdateBytes int64
	modelWrites      int64

	// deltaCkpt enables sparse delta checkpoints: WriteModel persists
	// only the changed keys against the last full checkpoint when that
	// encoding is smaller, cutting the replication traffic every
	// best-effort merge pays. Off by default — delta checkpoints change
	// simulated model-update traffic, so the golden experiment numbers
	// keep the full-checkpoint behavior unless a run opts in. ckptBase
	// tracks the last full checkpoint per model name; encBuf is the
	// reused encode scratch (the DFS copies data it stores).
	deltaCkpt bool
	ckptBase  map[string]*ckptBase
	encBuf    []byte

	// tracer, lane and base implement the optional execution timeline:
	// forked runtimes inherit the tracer, carry their own lane, and
	// stamp events relative to the parent clock at fork time. span is
	// the id of the enclosing phase span; job events parent under it.
	tracer *trace.Tracer
	lane   int
	base   simtime.Time
	span   int64

	// obs, when set, accumulates observability metrics: resource series
	// sampled at event boundaries (job/write/transfer completion) plus
	// the per-phase counters the engine records. Shared by forks.
	obs *metrics.Registry

	// fails replays the cluster's FailurePlan, net replays its
	// NetworkPlan and corrupts replays its corrupt.Plan (nil when none
	// is registered); all are shared by all forks of a runtime, and
	// syncFaults drains them in global time order after every clock
	// advance. integ is the shared end-to-end integrity state (see
	// corruption.go).
	fails    *failureTracker
	net      *netTracker
	corrupts *corruptTracker
	integ    *integrityState

	// backend selects the execution engine (mapred by default, BSP via
	// SetBackend); bspEng is the lazily built BSP engine over this
	// runtime's cluster view.
	backend Backend
	bspEng  *bsp.Engine

	// family is the loop-aware job family: persistent per-node workers
	// whose caches keep each split's loop-invariant bytes and derived
	// structures warm across IC/PIC iterations. Attached by default;
	// SetLoopCache(false) detaches it for cold (conformance) runs. Nil
	// never changes simulated outcomes — only real wall-clock and the
	// cache.* observability counters.
	family *mapred.JobFamily
}

// NewRuntime creates a runtime over a full cluster view with a fresh
// DFS using the given configuration. Register any FailurePlan or
// NetworkPlan on the cluster before calling: the runtime snapshots
// them here and processes their events as the simulated clock
// advances.
func NewRuntime(cluster *simcluster.Cluster, fsCfg dfs.Config) *Runtime {
	rt := &Runtime{
		engine:   mapred.NewEngine(cluster),
		fs:       dfs.New(cluster, fsCfg),
		fails:    newFailureTracker(cluster.FailurePlan()),
		net:      newNetTracker(cluster.NetworkPlan()),
		corrupts: newCorruptTracker(cluster.CorruptionPlan()),
		integ:    &integrityState{checks: true, ckptSums: map[string]uint32{}},
		family:   mapred.NewJobFamily("runtime", mapred.DefaultNodeCacheBytes),
	}
	rt.engine.Family = rt.family
	rt.engine.IntegrityChecks = true
	rt.syncFaults() // apply any events scripted at time zero
	return rt
}

// SetLoopCache attaches (the default) or detaches the loop-aware job
// family. Detached, every job runs cold: derived structures are rebuilt
// from the raw records each iteration. Outputs, Metrics and traced
// spans are byte-identical either way — the cache-conformance suite
// runs both and compares.
func (rt *Runtime) SetLoopCache(enabled bool) {
	if enabled {
		if rt.family == nil {
			rt.family = mapred.NewJobFamily("runtime", mapred.DefaultNodeCacheBytes)
		}
		rt.engine.Family = rt.family
		return
	}
	rt.family = nil
	rt.engine.Family = nil
}

// LoopCacheStats snapshots the job family's cache counters (zero when
// the cache is detached).
func (rt *Runtime) LoopCacheStats() mapred.FamilyStats {
	if rt.family == nil {
		return mapred.FamilyStats{}
	}
	return rt.family.Stats()
}

// LoopFamily exposes the attached job family (nil when detached) for
// the fault layers and tests.
func (rt *Runtime) LoopFamily() *mapred.JobFamily { return rt.family }

// ReleaseLoopCache drops every cached entry on every node, returning
// the persistent workers' memory — the scheduler calls this when a job
// is preempted or restarted; the caches re-warm on first touch after
// resume. The release is recorded as cache-evict activity at the
// runtime's current time.
func (rt *Runtime) ReleaseLoopCache() {
	if rt.family == nil {
		return
	}
	rt.family.Release()
	rt.observeCache(rt.now())
}

// Engine exposes the underlying MapReduce engine (to set cost models or
// failure injection).
func (rt *Runtime) Engine() *mapred.Engine { return rt.engine }

// SetTracer attaches an execution-timeline tracer. A nil tracer (the
// default) records nothing.
func (rt *Runtime) SetTracer(t *trace.Tracer) { rt.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer }

// SetLane labels this runtime's timeline events (the PIC driver gives
// each node group its own lane).
func (rt *Runtime) SetLane(lane int) { rt.lane = lane }

// SetObservability attaches a metrics registry. The runtime samples
// resource timelines into it at event boundaries and wires it into the
// engine for per-phase counters. A nil registry (the default) records
// nothing.
func (rt *Runtime) SetObservability(r *metrics.Registry) {
	rt.obs = r
	rt.engine.Obs = r
}

// Observability returns the attached registry (nil when metrics are
// off).
func (rt *Runtime) Observability() *metrics.Registry { return rt.obs }

// observeNow samples the shared resource accumulators at the current
// simulated time. Called after every clock-advancing operation, it
// yields utilization-over-time series without any wall-clock sampling.
func (rt *Runtime) observeNow() {
	// In-memory local iterations are invisible to the fabric and DFS
	// counters, so sampling from a local fork would only duplicate the
	// previous point.
	if rt.obs == nil || rt.local {
		return
	}
	now := rt.now()
	fabric := rt.Cluster().Fabric()
	rt.obs.Series("simnet.core_busy_seconds").Sample(now, float64(fabric.CoreBusy()))
	c := fabric.Counters()
	rt.obs.Series("simnet.cross_rack_bytes").Sample(now, float64(c.CrossRack))
	rt.obs.Series("dfs.re_replication_bytes").Sample(now, float64(rt.fs.Counters().ReReplication))
	// Co-tenant compute pressure, for straggler attribution. Sampled
	// only while someone is actually squeezing the nodes, so untenanted
	// runs carry no empty series.
	if load := rt.Cluster().MaxComputeLoad(); load > 0 {
		rt.obs.Series("simcluster.tenant_load").Sample(now, load)
	}
}

// now is the runtime's position on the global simulated clock.
func (rt *Runtime) now() simtime.Time { return rt.base + simtime.Time(rt.elapsed) }

// Cluster returns the runtime's cluster view.
func (rt *Runtime) Cluster() *simcluster.Cluster { return rt.engine.Cluster() }

// FS returns the shared distributed file system.
func (rt *Runtime) FS() *dfs.FS { return rt.fs }

// Elapsed reports the simulated time consumed through this runtime.
func (rt *Runtime) Elapsed() simtime.Duration { return rt.elapsed }

// Metrics returns the accumulated job metrics.
func (rt *Runtime) Metrics() mapred.Metrics { return rt.metrics }

// ModelUpdateBytes reports the network bytes spent persisting model
// versions (the replication-pipeline traffic of WriteModel calls) — the
// paper's "model updates" counter.
func (rt *Runtime) ModelUpdateBytes() int64 { return rt.modelUpdateBytes }

// SetTimeOrigin shifts the runtime's clock base so its current position
// equals t on the global simulated clock. The multi-tenant scheduler
// uses it when starting or resuming a job, so trace events from the
// job's next step are stamped at the cluster-wide time it actually ran,
// not at the job's private elapsed time.
func (rt *Runtime) SetTimeOrigin(t simtime.Time) {
	rt.base = t - simtime.Time(rt.elapsed)
}

// Now reports the runtime's position on the global simulated clock.
func (rt *Runtime) Now() simtime.Time { return rt.now() }

// AdvanceTime adds d to the runtime's clock, for costs computed outside
// the engine (e.g. the parallel best-effort groups, whose wall time is
// the maximum over groups).
func (rt *Runtime) AdvanceTime(d simtime.Duration) {
	if d < 0 {
		panic("core: negative time advance")
	}
	rt.elapsed += d
	rt.syncFaults()
}

// AddMetrics folds externally measured metrics (e.g. a sub-runtime's)
// into this runtime's accumulator without advancing the clock.
func (rt *Runtime) AddMetrics(m mapred.Metrics) { rt.metrics.Add(m) }

// RunJob executes a job over in with model m, advancing the clock and
// accumulating metrics. Applications call this from Iteration.
func (rt *Runtime) RunJob(job *mapred.Job, in *mapred.Input, m *model.Model) (*mapred.Output, error) {
	var (
		out     *mapred.Output
		metrics mapred.Metrics
		err     error
	)
	start := rt.now()
	// Silent model-distribution damage: with detection off, a bit-error
	// window over the distribution leg hands the workers a perturbed
	// model — the caller's copy stays untouched, but the iteration
	// computes from damaged state. With detection on the engines verify
	// and re-send internally, so this path never engages.
	if m != nil && !rt.local {
		if seed, hit := rt.blindModelDamage(start); hit {
			m = corrupt.PerturbModel(m.Clone(), seed)
		}
	}
	kind := trace.KindJob
	var bspRes *bsp.Result
	if rt.local {
		kind = trace.KindLocalJob
		out, metrics, err = rt.engine.RunLocal(job, in, m)
	} else if rt.Backend() == BackendBSP {
		// Divert framework jobs to the partition-level BSP adapter:
		// splits map as vertices, the shuffle rides messages, reducers
		// are vertices — priced on the same fabric.
		out, bspRes, err = bsp.RunJob(rt.bspEngine(), job, in, m, &bsp.RunOptions{
			Name:      job.Name,
			At:        start,
			Workers:   rt.engine.Workers,
			ModelHome: rt.LiveModelHome(),
			Family:    rt.family,
		})
		if err == nil {
			metrics = bspRes.Metrics.Fold(false)
		}
	} else {
		rt.LiveModelHome() // re-home model distribution off crashed nodes
		out, metrics, err = rt.engine.RunAt(job, in, m, start)
	}
	if err != nil {
		return nil, err
	}
	rt.metrics.Add(metrics)
	rt.elapsed += metrics.Duration
	rt.syncFaults()
	id := rt.tracer.NextID()
	rt.tracer.Record(trace.Event{
		Kind: kind, Name: job.Name, Start: start, End: rt.now(),
		Bytes: metrics.ShuffleNetworkBytes + metrics.ModelBytes, Lane: rt.lane,
		ID: id, Parent: rt.span,
	})
	if bspRes != nil {
		if rt.tracer != nil {
			for _, ev := range bspRes.Spans {
				ev.Name = job.Name + "/" + ev.Name
				ev.Lane = rt.lane
				ev.Parent = id
				rt.tracer.Record(ev)
			}
		}
		rt.observeBSP(bspRes.Metrics, false)
	} else if kind == trace.KindJob {
		rt.recordJobSpans(id, job.Name, start, metrics)
	}
	rt.observeCache(start)
	rt.observeNow()
	return out, nil
}

// observeCache drains the job family's cache activity into the
// timeline and registry: one cache-warm/cache-evict point annotation
// per staging or eviction, stamped at the triggering event's time, plus
// the cache.* counter family. Cache annotations never take tracer IDs
// and never parent other events, so a cold run and a warm run assign
// identical IDs to every remaining event — the conformance suite
// filters the cache kinds and counters and compares the rest
// byte-for-byte.
func (rt *Runtime) observeCache(at simtime.Time) {
	f := rt.family
	if f == nil {
		return
	}
	if rt.tracer != nil {
		for _, ev := range f.DrainEvents() {
			kind := trace.KindCacheWarm
			name := fmt.Sprintf("node %d: %d records staged", ev.Node, ev.Records)
			if ev.Kind == mapred.CacheEvict {
				kind = trace.KindCacheEvict
				name = fmt.Sprintf("node %d: entry released", ev.Node)
			}
			rt.tracer.Record(trace.Event{
				Kind: kind, Name: name, Start: at, End: at,
				Bytes: ev.Bytes, Lane: rt.lane, Parent: rt.span,
			})
		}
	} else {
		f.DrainEvents()
	}
	if rt.obs != nil {
		d := f.DrainStatsDelta()
		if d.Hits != 0 {
			rt.obs.Counter("cache.hits").Add(float64(d.Hits))
		}
		if d.Misses != 0 {
			rt.obs.Counter("cache.misses").Add(float64(d.Misses))
		}
		if d.Evictions != 0 {
			rt.obs.Counter("cache.evictions").Add(float64(d.Evictions))
		}
		if d.DeltaBytes != 0 {
			rt.obs.Counter("cache.delta_bytes").Add(float64(d.DeltaBytes))
		}
		if d.FullBytes != 0 {
			rt.obs.Counter("cache.full_bytes").Add(float64(d.FullBytes))
		}
		rt.obs.Gauge("cache.resident_bytes").Set(float64(d.ResidentBytes))
	}
}

// recordJobSpans decomposes a framework job's extent into its phase
// sub-spans, sequenced in the same order RunAt charges them (overhead,
// model distribution, map, shuffle, reduce) and parented under the job
// span so the critical-path pass attributes leaf time, not the
// container.
func (rt *Runtime) recordJobSpans(job int64, name string, start simtime.Time, m mapred.Metrics) {
	if rt.tracer == nil {
		return
	}
	t := start
	sub := func(kind trace.Kind, suffix string, d simtime.Duration, bytes int64, attrs ...trace.Attr) {
		if d <= 0 {
			return
		}
		rt.tracer.Record(trace.Event{
			Kind: kind, Name: name + "/" + suffix, Start: t, End: t + simtime.Time(d),
			Bytes: bytes, Lane: rt.lane, Parent: job, Attrs: attrs,
		})
		t += simtime.Time(d)
	}
	sub(trace.KindOverhead, "overhead", m.OverheadPhase, 0)
	sub(trace.KindModelDist, "model", m.ModelPhase, m.ModelBytes)
	sub(trace.KindMap, "map", m.MapPhase, m.NonLocalInputBytes)
	// The shuffle span carries its dominant link class, so the
	// telemetry layer can bucket shuffle latency per class.
	if m.ShuffleNetworkBytes > 0 {
		class := "intra-rack"
		if 2*m.ShuffleCrossRackBytes >= m.ShuffleNetworkBytes {
			class = "cross-rack"
		}
		sub(trace.KindShuffle, "shuffle", m.ShufflePhase, m.ShuffleNetworkBytes, trace.Attr{Key: "class", Value: class})
	} else {
		sub(trace.KindShuffle, "shuffle", m.ShufflePhase, m.ShuffleNetworkBytes)
	}
	sub(trace.KindReduce, "reduce", m.ReducePhase, 0)
	if m.TransferRetries > 0 {
		// The retries themselves are interleaved inside the phases
		// above, so this is a point annotation on the job, not a span.
		rt.tracer.Record(trace.Event{
			Kind: trace.KindTransferRetry, Name: fmt.Sprintf("%s: %d transfer retries", name, m.TransferRetries),
			Start: start, End: start, Bytes: m.RetryBytes, Lane: rt.lane, Parent: job,
		})
	}
}

// ckptBase is the delta-checkpoint anchor for one model name: the last
// full checkpoint's sequence number and content, plus how many deltas
// have chained off it since.
type ckptBase struct {
	seq    int64
	m      *model.Model
	deltas int
}

// maxDeltaChain bounds how many delta checkpoints may follow a full one
// before the next write is forced full again, so a restore is always at
// most one full read plus one delta read, and drift from the anchor
// cannot grow without bound.
const maxDeltaChain = 8

// SetDeltaCheckpoints opts this runtime's WriteModel into sparse delta
// checkpoints (see the deltaCkpt field). Enable before the first write;
// restores transparently handle both formats either way.
func (rt *Runtime) SetDeltaCheckpoints(enabled bool) {
	rt.deltaCkpt = enabled
	if enabled && rt.ckptBase == nil {
		rt.ckptBase = map[string]*ckptBase{}
	}
}

// WriteModel persists a model version (its real encoded bytes) to the
// DFS with replication, charging the pipeline traffic and time — one
// "model update" in the paper's terminology. The checkpoint can be
// recovered with RestoreModel after a driver restart. With
// SetDeltaCheckpoints enabled the version is stored as a sparse delta
// against the last full checkpoint whenever that encoding is smaller.
func (rt *Runtime) WriteModel(name string, m *model.Model) {
	start := rt.now()
	home := rt.LiveModelHome()
	before := rt.fs.Counters().WritePipeline
	file := checkpointName(name, rt.modelWrites)
	rt.encBuf = rt.encBuf[:0]
	base := rt.ckptBase[name]
	if rt.deltaCkpt && base != nil && base.deltas < maxDeltaChain &&
		int64(uvarintLen(uint64(base.seq)))+model.DeltaSize(base.m, m) < m.Size() {
		file += deltaSuffix
		rt.encBuf = binary.AppendUvarint(rt.encBuf, uint64(base.seq))
		rt.encBuf = model.EncodeDelta(base.m, m, rt.encBuf)
		base.deltas++
	} else {
		rt.encBuf = m.Encode(rt.encBuf)
		if rt.deltaCkpt {
			rt.ckptBase[name] = &ckptBase{seq: rt.modelWrites, m: m.Clone()}
		}
	}
	// Seal the checkpoint's content checksum, verified again on restore:
	// even damage that slips past the block layer (or lands while
	// detection is off) is caught before a restored model is trusted.
	rt.integ.ckptSums[file] = integrity.Checksum(rt.encBuf)
	_, d := rt.fs.CreateWithData(file, rt.encBuf, home)
	rt.fs.Delete(latestPointer(name))
	rt.fs.CreateWithData(latestPointer(name), []byte(file), home)
	rt.modelWrites++
	rt.elapsed += d
	rt.syncFaults()
	delta := rt.fs.Counters().WritePipeline - before
	rt.modelUpdateBytes += delta
	rt.tracer.Record(trace.Event{
		Kind: trace.KindModelWrite, Name: name, Start: start, End: rt.now(),
		Bytes: delta, Lane: rt.lane, Parent: rt.span,
	})
	if rt.obs != nil {
		rt.obs.Counter("core.model_writes").Add(1)
		rt.obs.Counter("core.model_update_bytes").Add(float64(delta))
	}
	rt.observeNow()
}

// RestoreModel recovers the most recent checkpoint WriteModel stored
// under name — the driver-restart half of the fault-tolerance story
// (§VII): task failures are retried by the runtime, and a lost driver
// resumes from the last persisted model. With integrity checks on the
// restore is verified end to end — block checksums with replica
// failover on every read, plus the checkpoint's sealed content
// checksum — and a checkpoint damaged beyond repair rolls back to the
// newest earlier full checkpoint that still verifies.
func (rt *Runtime) RestoreModel(name string) (*model.Model, error) {
	ptr, ok := rt.fs.Open(latestPointer(name))
	if !ok {
		return nil, fmt.Errorf("core: no checkpoint for %q", name)
	}
	if rt.fs.Lost(ptr) {
		return nil, fmt.Errorf("core: checkpoint pointer for %q lost to node failures", name)
	}
	target, err := rt.readCheckpointData(ptr)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint pointer for %q unreadable: %w", name, err)
	}
	m, err := rt.decodeCheckpoint(name, string(target))
	if err == nil {
		return m, nil
	}
	if !rt.IntegrityChecks() {
		return nil, err
	}
	// Rollback: the pointed-at checkpoint is damaged beyond the block
	// layer's repair (every replica bad, or its chain broken). Walk the
	// sequence downward to the newest earlier full checkpoint that
	// still verifies and restore that — stale but trustworthy. Delta
	// files are skipped on the way down (they carry the .delta suffix,
	// so the plain sequence name only resolves full checkpoints): their
	// anchor may be the damaged file itself.
	start := rt.now()
	fromSeq := ckptSeq(string(target))
	if fromSeq < 0 {
		fromSeq = rt.modelWrites
	}
	for seq := fromSeq - 1; seq >= 0; seq-- {
		file := checkpointName(name, seq)
		if f, ok := rt.fs.Open(file); !ok || rt.fs.Lost(f) {
			continue
		}
		m, rerr := rt.decodeCheckpoint(name, file)
		if rerr != nil {
			continue // damaged too; keep walking
		}
		rt.integ.rollbacks++
		rt.tracer.Record(trace.Event{
			Kind:  trace.KindCheckpointRollback,
			Name:  fmt.Sprintf("%s: seq %d damaged, rolled back to verified seq %d", name, fromSeq, seq),
			Start: start, End: rt.now(), Lane: rt.lane, Parent: rt.span,
		})
		if rt.obs != nil {
			rt.obs.Counter("integrity.rollbacks").Add(1)
		}
		return m, nil
	}
	return nil, fmt.Errorf("core: %s: no verified checkpoint to roll back to: %w", name, err)
}

// readCheckpointData reads a checkpoint file on the charged read path:
// verified (with replica failover and repair) when detection is on,
// raw otherwise — a raw read of damaged blocks serves the damaged
// bytes, exactly what a checksum-less storage stack would do.
func (rt *Runtime) readCheckpointData(f *dfs.File) ([]byte, error) {
	home := rt.LiveModelHome()
	if rt.IntegrityChecks() {
		data, d, err := rt.fs.ReadDataChecked(f, home)
		rt.elapsed += d
		rt.syncFaults()
		return data, err
	}
	data, d := rt.fs.ReadData(f, home)
	rt.elapsed += d
	rt.syncFaults()
	return data, nil
}

// decodeCheckpoint reads and decodes the checkpoint stored in target —
// a full encoding, or a delta plus its anchor — verifying content
// checksums when detection is on. Errors name the position in the
// chain (the delta, its anchor, or the full checkpoint) and the
// sequence numbers involved, so a failed restore says exactly which
// file is damaged and why.
func (rt *Runtime) decodeCheckpoint(name, target string) (*model.Model, error) {
	f, ok := rt.fs.Open(target)
	if !ok {
		return nil, fmt.Errorf("core: dangling checkpoint pointer %q", target)
	}
	if rt.fs.Lost(f) {
		return nil, fmt.Errorf("core: checkpoint %q lost to node failures", target)
	}
	data, err := rt.readCheckpointData(f)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %q unreadable: %w", target, err)
	}
	seq := ckptSeq(target)
	if err := rt.verifyCkptSum(target, data); err != nil {
		return nil, err
	}
	if !strings.HasSuffix(target, deltaSuffix) {
		m, err := model.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt checkpoint %q (full, seq %d): %w", target, seq, err)
		}
		return m, nil
	}
	// Delta checkpoint: a varint anchor sequence number followed by the
	// sparse delta against that full checkpoint. Read the anchor (one
	// more charged read) and patch it.
	baseSeq, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("core: corrupt delta checkpoint %q (seq %d): bad base-sequence varint", target, seq)
	}
	if seq >= 0 && int64(baseSeq) >= seq {
		return nil, fmt.Errorf("core: corrupt delta checkpoint %q (seq %d): base sequence %d not before the delta's own",
			target, seq, baseSeq)
	}
	baseFile := checkpointName(name, int64(baseSeq))
	bf, ok := rt.fs.Open(baseFile)
	if !ok {
		return nil, fmt.Errorf("core: delta checkpoint %q (seq %d) references missing base %q (seq %d)",
			target, seq, baseFile, baseSeq)
	}
	if rt.fs.Lost(bf) {
		return nil, fmt.Errorf("core: checkpoint base %q (seq %d, anchor of %q) lost to node failures",
			baseFile, baseSeq, target)
	}
	baseData, err := rt.readCheckpointData(bf)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint base %q (seq %d, anchor of %q) unreadable: %w",
			baseFile, baseSeq, target, err)
	}
	if err := rt.verifyCkptSum(baseFile, baseData); err != nil {
		return nil, err
	}
	baseModel, err := model.Decode(baseData)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint base %q (seq %d, anchor of delta seq %d): %w",
			baseFile, baseSeq, seq, err)
	}
	m, err := model.ApplyDeltaBytes(baseModel, data[n:])
	if err != nil {
		return nil, fmt.Errorf("core: corrupt delta checkpoint %q (seq %d over base seq %d): %w",
			target, seq, baseSeq, err)
	}
	return m, nil
}

// verifyCkptSum checks a checkpoint's bytes against the content
// checksum sealed at write time (a no-op when this runtime never wrote
// the file — a fresh driver has no seals — or when detection is off).
func (rt *Runtime) verifyCkptSum(file string, data []byte) error {
	if !rt.IntegrityChecks() {
		return nil
	}
	want, ok := rt.integ.ckptSums[file]
	if !ok {
		return nil
	}
	if got := integrity.Checksum(data); got != want {
		return fmt.Errorf("core: corrupt checkpoint %q (seq %d): content checksum mismatch: want %08x, got %08x",
			file, ckptSeq(file), want, got)
	}
	return nil
}

// deltaSuffix marks a checkpoint file holding a sparse delta rather
// than a full model encoding.
const deltaSuffix = ".delta"

func checkpointName(name string, seq int64) string {
	return fmt.Sprintf("models/%s/%d", name, seq)
}

func latestPointer(name string) string {
	return fmt.Sprintf("models/%s/latest", name)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// dominantClass reports the link class that carried the most bytes in
// the flow set — the transfer span's class attribute for per-class
// latency telemetry. Ties break toward the more expensive class.
func dominantClass(fabric *simnet.Fabric, flows []simnet.Flow) string {
	var local, intra, cross int64
	for _, fl := range flows {
		switch {
		case fl.Src == fl.Dst:
			local += fl.Bytes
		case fabric.Rack(fl.Src) == fabric.Rack(fl.Dst):
			intra += fl.Bytes
		default:
			cross += fl.Bytes
		}
	}
	switch {
	case cross >= intra && cross >= local:
		return "cross-rack"
	case intra >= local:
		return "intra-rack"
	default:
		return "node-local"
	}
}

// Fork creates a runtime over a sub-cluster view, sharing the file
// system and fabric but with a fresh clock and metrics. When local is
// true, jobs run through the fork execute in memory (best-effort local
// iterations).
func (rt *Runtime) Fork(view *simcluster.Cluster, local bool) *Runtime {
	e := mapred.NewEngine(view)
	e.SetCostModel(rt.engine.CostModelValue())
	e.FailEveryNthMapTask = rt.engine.FailEveryNthMapTask
	e.StraggleEveryNthMapTask = rt.engine.StraggleEveryNthMapTask
	e.StragglerSlowdown = rt.engine.StragglerSlowdown
	e.SpeculativeExecution = rt.engine.SpeculativeExecution
	e.FairSharingNetwork = rt.engine.FairSharingNetwork
	e.Workers = rt.engine.Workers
	e.ModelSources = rt.engine.ModelSources
	e.TransferTimeout = rt.engine.TransferTimeout
	e.TransferRetries = rt.engine.TransferRetries
	e.RetryBackoff = rt.engine.RetryBackoff
	e.IntegrityChecks = rt.engine.IntegrityChecks
	// Local forks run in-memory iterations whose registry traffic is
	// counter-only (observeLocal); framework forks share the full
	// registry wiring.
	e.Obs = rt.engine.Obs
	// The job family is shared: a PIC run's best-effort sub-runtimes and
	// top-off all keep the same per-node caches warm.
	e.Family = rt.engine.Family
	return &Runtime{engine: e, fs: rt.fs, local: local, tracer: rt.tracer, base: rt.now(),
		fails: rt.fails, net: rt.net, corrupts: rt.corrupts, integ: rt.integ,
		span: rt.span, obs: rt.obs, family: rt.family, backend: rt.backend}
}

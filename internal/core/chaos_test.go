package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// chaosRuntime builds the standard 4-node test runtime with a failure
// plan registered on the cluster before the runtime snapshots it.
func chaosRuntime(plan *simcluster.FailurePlan) *Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              4,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
	cluster.SetFailurePlan(plan)
	return NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 10})
}

// picOpts are the PIC options shared by the chaos tests: enough
// partitions that node groups are single nodes, so one crash takes out
// a whole group.
var chaosPICOpts = PICOptions{Partitions: 4, MaxLocalIterations: 50}

func runChaosPIC(t *testing.T, plan *simcluster.FailurePlan) (*PICResult, *Runtime, *trace.Tracer) {
	t.Helper()
	rt := chaosRuntime(plan)
	tr := trace.New()
	rt.SetTracer(tr)
	// The input dataset lives in the DFS (as it would on a real
	// cluster), so a crash has replicated state to lose and restore.
	rt.FS().CreateWithData("input/points", make([]byte, 200<<10), 0)
	in, _ := pointsInput(rt, 40)
	res, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), chaosPICOpts)
	if err != nil {
		t.Fatal(err)
	}
	return res, rt, tr
}

func countKind(tr *trace.Tracer, kind trace.Kind) int {
	n := 0
	for _, e := range tr.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestPICChaosCrashMidBestEffort kills one node partway through the
// best-effort phase: the run must still converge to the healthy
// solution, repair its node groups around the hole, and charge
// observable re-replication traffic on the trace.
func TestPICChaosCrashMidBestEffort(t *testing.T) {
	healthy, _, _ := runChaosPIC(t, nil)
	if !healthy.TopOffConverged {
		t.Fatal("healthy run did not converge")
	}

	// Crash node 0 — the model home and a replica holder of every DFS
	// block under the HDFS-style local+remote-rack placement — so the
	// failure exercises re-homing and re-replication at once.
	crashAt := simtime.Time(healthy.BEDuration) / 3
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{{Node: 0, Time: crashAt}}}
	res, rt, tr := runChaosPIC(t, plan)

	if !res.TopOffConverged {
		t.Fatal("crash run did not converge")
	}
	if d := model.MaxVectorDelta(healthy.Model, res.Model); d > 1e-6 {
		t.Fatalf("crash run converged %g away from the healthy solution", d)
	}
	if res.Metrics.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", res.Metrics.NodeCrashes)
	}
	if res.GroupRepairs == 0 && res.LostPartials == 0 {
		t.Fatalf("mid-BE crash repaired no groups and lost no partials: %+v", res)
	}
	if res.Metrics.ReReplicationBytes == 0 {
		t.Fatal("crash charged no DFS re-replication traffic")
	}
	if got := countKind(tr, trace.KindNodeCrash); got != 1 {
		t.Fatalf("trace has %d node-crash events, want 1", got)
	}
	if countKind(tr, trace.KindReReplication) == 0 {
		t.Fatal("trace has no re-replication events")
	}
	if countKind(tr, trace.KindGroupRepair) == 0 {
		t.Fatal("trace has no group-repair events")
	}
	if tr.TotalBytes(trace.KindReReplication) != res.Metrics.ReReplicationBytes {
		t.Fatalf("trace re-replication bytes %d != metrics %d",
			tr.TotalBytes(trace.KindReReplication), res.Metrics.ReReplicationBytes)
	}
	if res.Duration <= healthy.Duration {
		t.Fatalf("losing a quarter of the cluster cost no time: %v vs %v", res.Duration, healthy.Duration)
	}
	if got := rt.DeadNodes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("DeadNodes = %v", got)
	}
}

// TestPICChaosCrashMidTopOff kills a node after the best-effort phase,
// while the unmodified IC top-off is running framework jobs; the
// engine's task rescheduling carries the run to convergence.
func TestPICChaosCrashMidTopOff(t *testing.T) {
	healthy, _, _ := runChaosPIC(t, nil)
	crashAt := simtime.Time(healthy.BEDuration + healthy.TopOffDuration/2)
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{{Node: 2, Time: crashAt}}}
	res, _, tr := runChaosPIC(t, plan)

	if !res.TopOffConverged {
		t.Fatal("crash run did not converge")
	}
	if d := model.MaxVectorDelta(healthy.Model, res.Model); d > 1e-6 {
		t.Fatalf("crash run converged %g away from the healthy solution", d)
	}
	if res.Metrics.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", res.Metrics.NodeCrashes)
	}
	if res.Metrics.ReReplicationBytes == 0 {
		t.Fatal("crash charged no DFS re-replication traffic")
	}
	if countKind(tr, trace.KindNodeCrash) != 1 {
		t.Fatal("trace missing the node-crash event")
	}
}

// TestPICChaosCrashAndRecover crashes a node in the best-effort phase
// and brings it back (with an empty disk) before the top-off; the run
// converges and the recovery appears on the trace.
func TestPICChaosCrashAndRecover(t *testing.T) {
	healthy, _, _ := runChaosPIC(t, nil)
	crashAt := simtime.Time(healthy.BEDuration) / 3
	backAt := simtime.Time(healthy.BEDuration) * 2 / 3
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 1, Time: crashAt},
		{Node: 1, Time: backAt, Recover: true},
	}}
	res, rt, tr := runChaosPIC(t, plan)
	if !res.TopOffConverged {
		t.Fatal("crash+recover run did not converge")
	}
	if countKind(tr, trace.KindNodeRecover) != 1 {
		t.Fatal("trace missing the node-recover event")
	}
	if got := rt.DeadNodes(); len(got) != 0 {
		t.Fatalf("DeadNodes after recovery = %v", got)
	}
}

// TestPICChaosDeterminism replays the identical workload and failure
// plan twice; the simulator must produce byte-identical timelines and
// exactly equal metrics — the property that makes chaos runs
// debuggable.
func TestPICChaosDeterminism(t *testing.T) {
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 1, Time: 0.4},
		{Node: 3, Time: 0.9},
		{Node: 1, Time: 1.5, Recover: true},
	}}
	run := func() (*PICResult, string) {
		res, rt, tr := runChaosPIC(t, plan)
		_ = rt
		return res, tr.Render()
	}
	res1, trace1 := run()
	res2, trace2 := run()
	if trace1 != trace2 {
		t.Fatalf("timelines differ between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", trace1, trace2)
	}
	if res1.Metrics != res2.Metrics {
		t.Fatalf("metrics differ:\n%+v\n%+v", res1.Metrics, res2.Metrics)
	}
	if res1.Duration != res2.Duration || res1.BEIterations != res2.BEIterations ||
		res1.GroupRepairs != res2.GroupRepairs || res1.LostPartials != res2.LostPartials {
		t.Fatalf("results differ:\n%+v\n%+v", res1, res2)
	}
	if !reflect.DeepEqual(res1.Model.Encode(nil), res2.Model.Encode(nil)) {
		t.Fatal("final models differ between identical runs")
	}
}

// TestPICChaosAllNodesDead fails with a clear error when the whole
// cluster dies before any best-effort group can run.
func TestPICChaosAllNodesDead(t *testing.T) {
	var events []simcluster.NodeEvent
	for n := 0; n < 4; n++ {
		events = append(events, simcluster.NodeEvent{Node: n, Time: 0})
	}
	rt := chaosRuntime(&simcluster.FailurePlan{Events: events})
	in, _ := pointsInput(rt, 40)
	_, err := RunPIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), chaosPICOpts)
	if err == nil {
		t.Fatal("fully-dead cluster converged")
	}
	if !strings.Contains(err.Error(), "no live nodes") {
		t.Fatalf("err = %v, want no-live-nodes failure", err)
	}
}

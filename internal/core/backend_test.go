package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/bsp"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
)

func TestSetBackendRejectsUnsupportedKnobs(t *testing.T) {
	cases := []struct {
		name string
		set  func(e *mapred.Engine)
	}{
		{"FailEveryNthMapTask", func(e *mapred.Engine) { e.FailEveryNthMapTask = 3 }},
		{"StraggleEveryNthMapTask", func(e *mapred.Engine) { e.StraggleEveryNthMapTask = 5 }},
		{"SpeculativeExecution", func(e *mapred.Engine) { e.SpeculativeExecution = true }},
		{"FairSharingNetwork", func(e *mapred.Engine) { e.FairSharingNetwork = true }},
		{"TransferTimeout", func(e *mapred.Engine) { e.TransferTimeout = 10; e.TransferRetries = 2 }},
	}
	for _, tc := range cases {
		rt := testRuntime()
		tc.set(rt.Engine())
		err := rt.SetBackend(BackendBSP)
		var be *BackendError
		if !errors.As(err, &be) {
			t.Fatalf("%s: SetBackend(bsp) = %v, want *BackendError", tc.name, err)
		}
		if be.Backend != BackendBSP {
			t.Fatalf("%s: error names backend %q", tc.name, be.Backend)
		}
		// The failed switch must not leave the runtime half-configured.
		if rt.Backend() != BackendMapred {
			t.Fatalf("%s: backend changed to %q after rejected switch", tc.name, rt.Backend())
		}
	}
}

func TestSetBackendUnknownRejected(t *testing.T) {
	rt := testRuntime()
	var be *BackendError
	if err := rt.SetBackend("ppml"); !errors.As(err, &be) {
		t.Fatalf("SetBackend(ppml) = %v, want *BackendError", err)
	}
	if rt.Backend() != BackendMapred {
		t.Fatalf("backend = %q after rejected switch", rt.Backend())
	}
}

func TestSetBackendEmptyAndMapredReset(t *testing.T) {
	rt := testRuntime()
	if err := rt.SetBackend(BackendBSP); err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendBSP {
		t.Fatalf("backend = %q, want bsp", rt.Backend())
	}
	if err := rt.SetBackend(""); err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendMapred {
		t.Fatalf("backend = %q after reset, want mapred", rt.Backend())
	}
}

// runMeanIC runs the meanSeeker IC loop on the given backend with a
// fresh runtime and returns the result plus the final encoded model.
func runMeanIC(t *testing.T, b Backend, workers int) (*ICResult, string) {
	t.Helper()
	rt := testRuntime()
	rt.Engine().Workers = workers
	if err := rt.SetBackend(b); err != nil {
		t.Fatal(err)
	}
	in, _ := pointsInput(rt, 40)
	res, err := RunIC(rt, &meanSeeker{eps: 1e-9}, in, startModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(res.Model.Encode(nil))
}

func TestICOnBSPAdapterMatchesMapredModel(t *testing.T) {
	_, mrModel := runMeanIC(t, BackendMapred, 1)
	bspRes, bspModel := runMeanIC(t, BackendBSP, 1)
	// The partition-level adapter re-executes the very same mapper,
	// combiner and reducer in the same deterministic order, so the
	// converged model is byte-identical across backends.
	if bspModel != mrModel {
		t.Fatal("IC model on BSP adapter diverges from mapred backend")
	}
	got, _ := bspRes.Model.Vector("mean")
	want := 0.0
	for i := 0; i < 40; i++ {
		want += float64(i%7) - 3
	}
	want /= 40
	if diff := got[0] - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("converged mean[0] = %g, want %g", got[0], want)
	}
}

func TestICOnBSPDeterministicAcrossWorkersAndRepeats(t *testing.T) {
	base, baseModel := runMeanIC(t, BackendBSP, 1)
	for name, workers := range map[string]int{"workers=8": 8, "repeat": 1} {
		got, gotModel := runMeanIC(t, BackendBSP, workers)
		if gotModel != baseModel {
			t.Errorf("%s: model bytes diverge", name)
		}
		if !reflect.DeepEqual(got.Metrics, base.Metrics) {
			t.Errorf("%s: metrics diverge:\n got %+v\nwant %+v", name, got.Metrics, base.Metrics)
		}
		if got.Iterations != base.Iterations {
			t.Errorf("%s: iterations %d != %d", name, got.Iterations, base.Iterations)
		}
	}
}

func TestPICOnBSPAdapterConverges(t *testing.T) {
	run := func() (*PICResult, string) {
		rt := testRuntime()
		if err := rt.SetBackend(BackendBSP); err != nil {
			t.Fatal(err)
		}
		in, _ := pointsInput(rt, 40)
		res, err := RunPIC(rt, &meanSeeker{eps: 1e-6}, in, startModel(), PICOptions{Partitions: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res, string(res.Model.Encode(nil))
	}
	a, am := run()
	b, bm := run()
	if am != bm {
		t.Fatal("PIC on BSP backend not deterministic across repeats")
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("PIC metrics diverge:\n got %+v\nwant %+v", a.Metrics, b.Metrics)
	}
	mean, ok := a.Model.Vector("mean")
	if !ok {
		t.Fatal("no mean in PIC model")
	}
	if mean[0] < -3 || mean[0] > 3 {
		t.Fatalf("PIC mean[0] = %g, implausibly far from data", mean[0])
	}
}

func TestBSPBackendInheritedByForks(t *testing.T) {
	rt := testRuntime()
	if err := rt.SetBackend(BackendBSP); err != nil {
		t.Fatal(err)
	}
	sub := rt.Fork(rt.Cluster(), true)
	if sub.Backend() != BackendBSP {
		t.Fatalf("fork backend = %q, want bsp", sub.Backend())
	}
}

// modelessApp is a VertexApp whose program does not implement
// bsp.Modeler — the runtime must fail with a typed *BackendError, not
// silently fall back to the mapred iteration.
type modelessApp struct{ meanSeeker }

type modelessProgram struct{}

func (p *modelessProgram) Vertices() []bsp.VertexInfo {
	return []bsp.VertexInfo{{ID: "v", Home: 0}}
}

func (p *modelessProgram) Compute(step int, id string, msgs []bsp.Message, s bsp.Sender) (bool, error) {
	return true, nil
}

func (a *modelessApp) VertexProgram(in *mapred.Input, m *model.Model) (bsp.Program, error) {
	return &modelessProgram{}, nil
}

func TestVertexProgramWithoutModelerFailsTyped(t *testing.T) {
	rt := testRuntime()
	if err := rt.SetBackend(BackendBSP); err != nil {
		t.Fatal(err)
	}
	in, _ := pointsInput(rt, 8)
	_, err := RunIC(rt, &modelessApp{meanSeeker{eps: 1e-9}}, in, startModel(), nil)
	var be *BackendError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BackendError for Modeler-less vertex program", err)
	}
}

func TestBSPRunRecordsRegistryAndSpans(t *testing.T) {
	rt := testRuntime()
	if err := rt.SetBackend(BackendBSP); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	rt.SetObservability(reg)
	in, _ := pointsInput(rt, 40)
	if _, err := RunIC(rt, &meanSeeker{eps: 1e-6}, in, startModel(), nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"bsp.jobs", "bsp.supersteps", "bsp.messages", "bsp.message_bytes"} {
		m, ok := snap.Get(name)
		if !ok || m.Value <= 0 {
			t.Errorf("registry missing %s after BSP run (got %+v, ok=%v)", name, m, ok)
		}
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeChrome parses exporter output back through encoding/json.
func decodeChrome(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var out chromeTrace
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("exporter output does not parse: %v\n%s", err, data)
	}
	return out
}

func TestChromeTraceNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	var nilT *Tracer
	if err := nilT.ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeChrome(t, buf.Bytes())
	if len(out.TraceEvents) != 0 {
		t.Fatalf("nil tracer exported events: %+v", out.TraceEvents)
	}

	buf.Reset()
	if err := New().ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out = decodeChrome(t, buf.Bytes())
	if len(out.TraceEvents) != 0 {
		t.Fatalf("empty tracer exported events: %+v", out.TraceEvents)
	}
}

func TestChromeTraceEventsAndLanes(t *testing.T) {
	tr := New()
	jobID := tr.NextID()
	tr.Record(Event{Kind: KindJob, Name: "iter", Start: 0, End: 2, Lane: 0, ID: jobID})
	tr.Record(Event{Kind: KindMap, Name: "iter/map", Start: 0, End: 1, Lane: 0, Parent: jobID})
	tr.Record(Event{Kind: KindTransfer, Name: "flows", Start: 1, End: 2, Lane: 1, Bytes: 42,
		Attrs: []Attr{{Key: "dir", Value: "scatter"}}})
	tr.Record(Event{Kind: KindNodeCrash, Name: "node 3", Start: 1.5, End: 1.5, Lane: 0})

	var buf bytes.Buffer
	if err := tr.ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeChrome(t, buf.Bytes())

	var meta, durable, instant int
	cats := map[string]bool{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			durable++
			cats[e.Cat] = true
		case "i":
			instant++
			if e.Scope != "t" {
				t.Fatalf("instant event scope = %q", e.Scope)
			}
		}
	}
	if meta != 2 { // lanes 0 and 1 named
		t.Fatalf("metadata events = %d", meta)
	}
	if durable != 3 || instant != 1 {
		t.Fatalf("durable = %d, instant = %d", durable, instant)
	}
	if !cats["mapred"] || !cats["simnet"] {
		t.Fatalf("categories = %v", cats)
	}
	// Span linkage and attributes survive the round trip.
	found := false
	for _, e := range out.TraceEvents {
		if e.Name == "iter/map" {
			found = true
			if e.Args == nil || e.Args.Parent != jobID {
				t.Fatalf("child lost parent: %+v", e.Args)
			}
		}
		if e.Name == "flows" {
			if e.Args.Bytes != 42 || len(e.Args.Attrs) != 1 || e.Args.Attrs[0] != "dir=scatter" {
				t.Fatalf("flow args = %+v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("child span missing from export")
	}
}

// TestChromeTraceGolden pins the exact serialized form: the exporter
// must produce stable ordering and byte-identical output across runs.
func TestChromeTraceGolden(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		tr.Record(Event{Kind: KindTransfer, Name: "t", Start: 1, End: 2, Bytes: 7, Lane: 1})
		tr.Record(Event{Kind: KindJob, Name: "j", Start: 0, End: 2, Lane: 0, ID: 1})
		return tr
	}
	var a, b bytes.Buffer
	if err := build().ChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export not byte-identical across identical timelines")
	}
	const golden = `{
 "displayTimeUnit": "ms",
 "traceEvents": [
  {
   "name": "thread_name",
   "cat": "__metadata",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "driver"
   }
  },
  {
   "name": "thread_name",
   "cat": "__metadata",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 1,
   "args": {
    "name": "group 1"
   }
  },
  {
   "name": "j",
   "cat": "mapred",
   "ph": "X",
   "ts": 0,
   "dur": 2000000,
   "pid": 0,
   "tid": 0,
   "args": {
    "kind": "job",
    "id": 1
   }
  },
  {
   "name": "t",
   "cat": "simnet",
   "ph": "X",
   "ts": 1000000,
   "dur": 1000000,
   "pid": 0,
   "tid": 1,
   "args": {
    "kind": "transfer",
    "bytes": 7
   }
  }
 ]
}
`
	if a.String() != golden {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", a.String(), golden)
	}
}

// TestChromeTraceFaultAndCacheKinds round-trips the network-fault,
// degraded-mode and loop-cache event kinds through the exporter: the
// JSON must stay valid, every kind must land in its layer's category,
// point annotations must export as instants, and the serialized order
// must be stable (start-sorted) and byte-identical across identical
// timelines.
func TestChromeTraceFaultAndCacheKinds(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		// Recorded deliberately out of start order: the exporter must
		// emit the start-sorted view.
		tr.Record(Event{Kind: KindDegradedMerge, Name: "merge iter 2", Start: 5, End: 5,
			Attrs: []Attr{{Key: "partials", Value: "4/6"}}})
		tr.Record(Event{Kind: KindNetFault, Name: "rack 1 uplink", Start: 1, End: 3, Lane: 0,
			Attrs: []Attr{{Key: "factor", Value: "0"}}})
		tr.Record(Event{Kind: KindCacheWarm, Name: "family kmeans", Start: 2, End: 2, Bytes: 4096, Lane: 1})
		tr.Record(Event{Kind: KindCacheEvict, Name: "family kmeans", Start: 6, End: 6, Bytes: 4096, Lane: 1})
		tr.Record(Event{Kind: KindTransferRetry, Name: "retry shuffle", Start: 2, End: 2.5, Lane: 1})
		tr.Record(Event{Kind: KindCheckpoint, Name: "model@iter2", Start: 4, End: 4.5, Bytes: 1 << 16})
		return tr
	}

	var a, b bytes.Buffer
	if err := build().ChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export not byte-identical across identical timelines")
	}

	out := decodeChrome(t, a.Bytes())
	wantCat := map[string]string{
		"rack 1 uplink": "simnet",
		"merge iter 2":  "core",
		"model@iter2":   "core",
		"family kmeans": "mapred",
		"retry shuffle": "mapred",
	}
	instants := 0
	lastTs := -1.0
	for _, e := range out.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if cat, ok := wantCat[e.Name]; ok && e.Cat != cat {
			t.Fatalf("%s category = %q, want %q", e.Name, e.Cat, cat)
		}
		if e.Ph == "i" {
			instants++
		}
		if e.Ts < lastTs {
			t.Fatalf("events not start-sorted: ts %g after %g", e.Ts, lastTs)
		}
		lastTs = e.Ts
	}
	// net-fault window and checkpoint/retry spans are durable; the two
	// cache annotations and the zero-width degraded merge are instants.
	if instants != 3 {
		t.Fatalf("instant events = %d, want 3", instants)
	}
	// Attributes survive the round trip on the new kinds.
	for _, e := range out.TraceEvents {
		if e.Name == "rack 1 uplink" {
			if e.Args == nil || len(e.Args.Attrs) != 1 || e.Args.Attrs[0] != "factor=0" {
				t.Fatalf("net-fault args = %+v", e.Args)
			}
		}
		if e.Name == "merge iter 2" {
			if e.Args == nil || len(e.Args.Attrs) != 1 || e.Args.Attrs[0] != "partials=4/6" {
				t.Fatalf("degraded-merge args = %+v", e.Args)
			}
		}
		if e.Name == "family kmeans" && e.Args.Bytes != 4096 {
			t.Fatalf("cache event lost bytes: %+v", e.Args)
		}
	}
}

func TestCriticalPathAttribution(t *testing.T) {
	tr := New()
	jobID := tr.NextID()
	// A job span [0,10] decomposed into sub-phases; the job itself must
	// not be double-counted.
	tr.Record(Event{Kind: KindJob, Name: "j", Start: 0, End: 10, ID: jobID})
	tr.Record(Event{Kind: KindMap, Name: "j/map", Start: 0, End: 4, Parent: jobID})
	tr.Record(Event{Kind: KindShuffle, Name: "j/shuffle", Start: 4, End: 7, Parent: jobID})
	tr.Record(Event{Kind: KindReduce, Name: "j/reduce", Start: 7, End: 10, Parent: jobID})
	// A transfer overlapping the map phase: lower precedence than
	// shuffle, higher than compute, so [2,4] goes to transfer.
	tr.Record(Event{Kind: KindTransfer, Name: "t", Start: 2, End: 4})
	// Idle tail.
	tr.Record(Event{Kind: KindModelWrite, Name: "m", Start: 12, End: 13})

	bd := tr.CriticalPath()
	if bd.Total != 13 {
		t.Fatalf("Total = %v", bd.Total)
	}
	want := map[Category]float64{
		CatCompute:  5, // map [0,2) + reduce [7,10): transfer takes [2,4)
		CatShuffle:  3,
		CatTransfer: 2,
		CatModel:    1,
	}
	for cat, w := range want {
		if got := float64(bd.ByCategory[cat]); got != w {
			t.Fatalf("%s = %g, want %g (full: %+v)", cat, got, w, bd.ByCategory)
		}
	}
	if float64(bd.Idle) != 2 { // [10,12)
		t.Fatalf("Idle = %v", bd.Idle)
	}
	out := bd.Render()
	if !strings.Contains(out, "shuffle") || !strings.Contains(out, "idle") {
		t.Fatalf("Render:\n%s", out)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	var nilT *Tracer
	if bd := nilT.CriticalPath(); bd.Total != 0 || len(bd.ByCategory) != 0 {
		t.Fatalf("nil breakdown = %+v", bd)
	}
	if bd := New().CriticalPath(); bd.Total != 0 {
		t.Fatalf("empty breakdown = %+v", bd)
	}
}

package trace

import (
	"bytes"
	"testing"
)

// TestChromeTraceIntegrityKinds round-trips the data-integrity event
// kinds through the exporter: corruption-detect points must export as
// instants in the dfs category next to the re-replication repairs,
// scrub and checkpoint-rollback spans must be durable in their layers'
// categories, and identical timelines must serialize byte-identically.
func TestChromeTraceIntegrityKinds(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		// Recorded deliberately out of start order: the exporter must
		// emit the start-sorted view.
		tr.Record(Event{Kind: KindCheckpointRollback, Name: "m: seq 5 damaged, rolled back to verified seq 4",
			Start: 3, End: 3.5})
		tr.Record(Event{Kind: KindScrub, Name: "scrub: 12 replicas scanned, 2 repaired", Start: 1, End: 4,
			Bytes: 1 << 20})
		tr.Record(Event{Kind: KindCorruptionDetect, Name: "bad block", Start: 2, End: 2, Bytes: 512,
			Attrs: []Attr{{Key: "node", Value: "3"}}})
		tr.Record(Event{Kind: KindReReplication, Name: "repair", Start: 2.5, End: 2.5, Bytes: 512})
		return tr
	}

	var a, b bytes.Buffer
	if err := build().ChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export not byte-identical across identical timelines")
	}

	out := decodeChrome(t, a.Bytes())
	wantCat := map[string]string{
		"bad block": "dfs",
		"repair":    "dfs",
		"scrub: 12 replicas scanned, 2 repaired":       "dfs",
		"m: seq 5 damaged, rolled back to verified seq 4": "core",
	}
	instants, durable := 0, 0
	lastTs := -1.0
	for _, e := range out.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if cat, ok := wantCat[e.Name]; ok && e.Cat != cat {
			t.Fatalf("%s category = %q, want %q", e.Name, e.Cat, cat)
		}
		switch e.Ph {
		case "i":
			instants++
			if e.Scope != "t" {
				t.Fatalf("instant event scope = %q", e.Scope)
			}
		case "X":
			durable++
		}
		if e.Ts < lastTs {
			t.Fatalf("events not start-sorted: ts %g after %g", e.Ts, lastTs)
		}
		lastTs = e.Ts
	}
	// The detect and repair annotations are zero-width instants; the
	// scrub pass and the rollback are durable spans.
	if instants != 2 || durable != 2 {
		t.Fatalf("instants = %d, durable = %d, want 2 and 2", instants, durable)
	}
	// Attributes and byte counts survive the round trip.
	for _, e := range out.TraceEvents {
		if e.Name == "bad block" {
			if e.Args == nil || e.Args.Bytes != 512 || len(e.Args.Attrs) != 1 || e.Args.Attrs[0] != "node=3" {
				t.Fatalf("corruption-detect args = %+v", e.Args)
			}
		}
		if e.Name == "scrub: 12 replicas scanned, 2 repaired" && e.Args.Bytes != 1<<20 {
			t.Fatalf("scrub span lost bytes: %+v", e.Args)
		}
	}
}

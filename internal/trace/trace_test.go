package trace

import (
	"strings"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: KindJob, Name: "x", End: 1})
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
	if tr.TotalBytes("") != 0 {
		t.Fatal("nil tracer has bytes")
	}
}

func TestRecordAndEventsSorted(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: KindJob, Name: "b", Start: 5, End: 6})
	tr.Record(Event{Kind: KindJob, Name: "a", Start: 1, End: 2})
	tr.Record(Event{Kind: KindJob, Name: "c", Start: 5, End: 7})
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("Len = %d", len(events))
	}
	if events[0].Name != "a" {
		t.Fatalf("events not sorted: %v", events)
	}
	// Stable for ties.
	if events[1].Name != "b" || events[2].Name != "c" {
		t.Fatalf("tie order not stable: %v", events)
	}
}

func TestRecordRejectsNegativeDuration(t *testing.T) {
	tr := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative-duration event accepted")
		}
	}()
	tr.Record(Event{Start: 5, End: 3})
}

func TestSpan(t *testing.T) {
	tr := New()
	if s, e := tr.Span(); s != 0 || e != 0 {
		t.Fatal("empty span not zero")
	}
	tr.Record(Event{Start: 2, End: 9})
	tr.Record(Event{Start: 1, End: 4})
	s, e := tr.Span()
	if s != 1 || e != 9 {
		t.Fatalf("Span = %v, %v", s, e)
	}
}

func TestTotalBytesByKind(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: KindJob, Bytes: 10, End: 1})
	tr.Record(Event{Kind: KindTransfer, Bytes: 5, End: 1})
	tr.Record(Event{Kind: KindTransfer, Bytes: 7, End: 1})
	if got := tr.TotalBytes(KindTransfer); got != 12 {
		t.Fatalf("transfer bytes = %d", got)
	}
	if got := tr.TotalBytes(""); got != 22 {
		t.Fatalf("total bytes = %d", got)
	}
}

func TestRenderContainsEvents(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: KindModelWrite, Name: "kmeans", Start: 1, End: 2, Bytes: 100, Lane: 3})
	out := tr.Render()
	for _, want := range []string{"model-write", "kmeans", "lane 3", "(100 B)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestGantt(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: KindJob, Name: "iter1", Start: 0, End: 5, Lane: 0})
	tr.Record(Event{Kind: KindLocalJob, Name: "sub", Start: 5, End: 10, Lane: 1})
	out := tr.Gantt(40)
	if !strings.Contains(out, "lane 0:") || !strings.Contains(out, "lane 1:") {
		t.Fatalf("Gantt missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "=") {
		t.Fatalf("Gantt has no bars:\n%s", out)
	}
	if e := New().Gantt(40); !strings.Contains(e, "empty") {
		t.Fatalf("empty Gantt = %q", e)
	}
	// Tiny widths are clamped.
	if out := tr.Gantt(1); out == "" {
		t.Fatal("clamped Gantt empty")
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 2, End: 5.5}
	if e.Duration() != 3.5 {
		t.Fatalf("Duration = %v", e.Duration())
	}
}

func TestEventsCacheInvalidatedOnRecord(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: KindJob, Name: "b", Start: 5, End: 6})
	first := tr.Events()
	if len(first) != 1 {
		t.Fatalf("len = %d", len(first))
	}
	// The cached view must be reused between reads...
	if &first[0] != &tr.Events()[0] {
		t.Fatal("Events re-sorted between reads with no Record")
	}
	// ...and refreshed after a Record.
	tr.Record(Event{Kind: KindJob, Name: "a", Start: 1, End: 2})
	events := tr.Events()
	if len(events) != 2 || events[0].Name != "a" {
		t.Fatalf("cache not invalidated: %v", events)
	}
	if s, e := tr.Span(); s != 1 || e != 6 {
		t.Fatalf("Span after invalidation = %v, %v", s, e)
	}
}

func TestNextID(t *testing.T) {
	var nilT *Tracer
	if nilT.NextID() != 0 {
		t.Fatal("nil tracer allocated an ID")
	}
	tr := New()
	if a, b := tr.NextID(), tr.NextID(); a != 1 || b != 2 {
		t.Fatalf("NextID = %d, %d", a, b)
	}
}

func TestLayerMapping(t *testing.T) {
	cases := map[Kind]string{
		KindJob:           "mapred",
		KindShuffle:       "mapred",
		KindTransfer:      "simnet",
		KindModelWrite:    "dfs",
		KindReReplication: "dfs",
		KindNodeCrash:     "simcluster",
		KindPhase:         "core",
		Kind("bogus"):     "other",
	}
	for k, want := range cases {
		if got := Layer(k); got != want {
			t.Fatalf("Layer(%s) = %q, want %q", k, got, want)
		}
	}
}

// Package trace records a structured timeline of a simulated execution:
// every job, model write, transfer burst and phase boundary, with its
// start time, duration and byte counts on the simulated clock. The
// timeline renders as text for debugging and as a compact Gantt-style
// view per phase — the observability layer of the runtime.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Kind classifies a timeline event.
type Kind string

// The recorded event kinds.
const (
	KindJob        Kind = "job"
	KindLocalJob   Kind = "local-job"
	KindModelWrite Kind = "model-write"
	KindTransfer   Kind = "transfer"
	KindPhase      Kind = "phase"
	// Sub-spans of a job: the per-phase segments a job's duration is
	// composed of (overhead + model distribution + map + shuffle +
	// reduce), recorded as children of the job's span.
	KindOverhead  Kind = "overhead"
	KindModelDist Kind = "model-dist"
	KindMap       Kind = "map"
	KindShuffle   Kind = "shuffle"
	KindReduce    Kind = "reduce"
	// Fault-injection events: a whole-node crash, a node recovery, the
	// DFS re-replication burst a crash triggers, and a PIC best-effort
	// group repaired around dead nodes.
	KindNodeCrash     Kind = "node-crash"
	KindNodeRecover   Kind = "node-recover"
	KindReReplication Kind = "re-replicate"
	KindGroupRepair   Kind = "group-repair"
	// Multi-tenant scheduler events: a job's residency on the cluster
	// (start to completion), its wait in the admission queue, and a
	// preemption point where a lower-priority job yielded its nodes.
	KindSchedJob     Kind = "sched-job"
	KindSchedWait    Kind = "sched-wait"
	KindSchedPreempt Kind = "sched-preempt"
	// Network-fault events: a scripted fault window on the fabric, a
	// transfer that needed retries to get through, a best-effort merge
	// that proceeded degraded on a quorum of partials, and a model
	// checkpoint written or restored.
	KindNetFault      Kind = "net-fault"
	KindTransferRetry Kind = "transfer-retry"
	KindDegradedMerge Kind = "degraded-merge"
	KindCheckpoint    Kind = "checkpoint"
	// Loop-aware runtime events: a split's derived structures staged into
	// a node's job-family cache (cache-warm) and cache entries dropped —
	// by capacity pressure, a node crash, or a scheduler preemption
	// releasing the family (cache-evict). Both are point annotations
	// (Start == End) with Bytes carrying the resident bytes staged or
	// released; they never take tracer IDs, so cold and warm runs assign
	// identical IDs to every other event.
	KindCacheWarm  Kind = "cache-warm"
	KindCacheEvict Kind = "cache-evict"
	// BSP backend events: one superstep's compute+message exchange, and
	// the global barrier that follows it. Both are recorded as children
	// of the BSP job's span.
	KindSuperstep Kind = "superstep"
	KindBarrier   Kind = "barrier"
	// Data-integrity events: a checksum mismatch caught on a read,
	// transfer, or checkpoint (corruption-detect, a point annotation
	// with Bytes carrying the poisoned bytes re-fetched or re-sent), a
	// background scrubber pass over DFS replicas (scrub, a span whose
	// Bytes is the replica bytes scanned), and a checkpoint chain
	// rolled back to its last verified link (checkpoint-rollback).
	KindCorruptionDetect   Kind = "corruption-detect"
	KindScrub              Kind = "scrub"
	KindCheckpointRollback Kind = "checkpoint-rollback"
)

// Layer reports the runtime layer that produces events of the given
// kind; exporters use it as the event category, so a trace viewer can
// filter spans per subsystem.
func Layer(k Kind) string {
	switch k {
	case KindJob, KindLocalJob, KindOverhead, KindModelDist, KindMap, KindShuffle, KindReduce, KindTransferRetry,
		KindCacheWarm, KindCacheEvict:
		return "mapred"
	case KindTransfer, KindNetFault:
		return "simnet"
	case KindModelWrite, KindReReplication, KindCorruptionDetect, KindScrub:
		return "dfs"
	case KindNodeCrash, KindNodeRecover:
		return "simcluster"
	case KindPhase, KindGroupRepair, KindDegradedMerge, KindCheckpoint, KindCheckpointRollback:
		return "core"
	case KindSchedJob, KindSchedWait, KindSchedPreempt:
		return "sched"
	case KindSuperstep, KindBarrier:
		return "bsp"
	default:
		return "other"
	}
}

// Attr is one key=value attribute of an event.
type Attr struct {
	Key, Value string
}

// Event is one entry on the timeline.
type Event struct {
	Kind  Kind
	Name  string
	Start simtime.Time
	End   simtime.Time
	Bytes int64
	// Lane groups events that proceed in parallel (e.g. one lane per
	// best-effort node group). Lane 0 is the driver.
	Lane int
	// ID identifies this event when other events name it as their
	// parent; zero means the event parents nothing. IDs come from
	// Tracer.NextID.
	ID int64
	// Parent is the ID of the enclosing span, or zero for a root event.
	// Parents are recorded after their children (a span's extent is
	// known only when it closes), so consumers must not assume parents
	// precede children in the timeline.
	Parent int64
	// Attrs carries optional exporter-visible attributes.
	Attrs []Attr
}

// Duration is the event's extent.
func (e Event) Duration() simtime.Duration { return e.End - e.Start }

// Tracer accumulates events. The zero value is ready to use; a nil
// *Tracer ignores all records, so callers never need nil checks.
type Tracer struct {
	events []Event
	// sorted caches the start-ordered view Events returns; Record
	// invalidates it, so accessors that all call Events (Span, Render,
	// Gantt, TotalBytes, exporters) share one sort instead of re-sorting
	// per call.
	sorted []Event
	nextID int64
	// OnRecord, when set, observes every event synchronously as Record
	// appends it. The live run inspector uses it to forward events off
	// the driver goroutine (the hook typically writes to a buffered
	// channel); the tracer itself stays single-goroutine. A nil hook
	// costs one predictable branch.
	OnRecord func(Event)
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// NextID allocates a fresh span ID for an event that will parent other
// events. A nil tracer returns zero (the "no span" ID).
func (t *Tracer) NextID() int64 {
	if t == nil {
		return 0
	}
	t.nextID++
	return t.nextID
}

// Record appends an event. Recording on a nil tracer is a no-op.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	if e.End < e.Start {
		panic("trace: event ends before it starts")
	}
	t.events = append(t.events, e)
	t.sorted = nil
	if t.OnRecord != nil {
		t.OnRecord(e)
	}
}

// Events returns the recorded events sorted by start time (ties by
// insertion order). The returned slice is a cached view shared between
// calls; callers must not modify it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.sorted == nil && len(t.events) > 0 {
		t.sorted = append([]Event(nil), t.events...)
		sort.SliceStable(t.sorted, func(i, j int) bool { return t.sorted[i].Start < t.sorted[j].Start })
	}
	return t.sorted
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Span reports the timeline's extent.
func (t *Tracer) Span() (start, end simtime.Time) {
	events := t.Events()
	if len(events) == 0 {
		return 0, 0
	}
	// Events are start-sorted, so the first event's start is the
	// timeline's start; only the end needs a scan.
	start = events[0].Start
	for _, e := range events {
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// Render prints the timeline as one line per event.
func (t *Tracer) Render() string {
	var sb strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&sb, "%9.3fs %9.3fs  lane %-3d %-12s %s", float64(e.Start), float64(e.End),
			e.Lane, e.Kind, e.Name)
		if e.Bytes > 0 {
			fmt.Fprintf(&sb, "  (%d B)", e.Bytes)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Gantt renders a width-column ASCII Gantt chart, one row per event,
// grouped by lane.
func (t *Tracer) Gantt(width int) string {
	events := t.Events()
	if len(events) == 0 {
		return "(empty timeline)\n"
	}
	if width < 20 {
		width = 20
	}
	start, end := t.Span()
	if end <= start {
		end = start + 1
	}
	scale := float64(width) / float64(end-start)

	byLane := map[int][]Event{}
	lanes := []int{}
	for _, e := range events {
		if _, ok := byLane[e.Lane]; !ok {
			lanes = append(lanes, e.Lane)
		}
		byLane[e.Lane] = append(byLane[e.Lane], e)
	}
	sort.Ints(lanes)

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %.3fs – %.3fs\n", float64(start), float64(end))
	for _, lane := range lanes {
		fmt.Fprintf(&sb, "lane %d:\n", lane)
		for _, e := range byLane[lane] {
			from := int(float64(e.Start-start) * scale)
			to := int(float64(e.End-start) * scale)
			if to <= from {
				to = from + 1
			}
			if to > width {
				to = width
			}
			bar := strings.Repeat(" ", from) + strings.Repeat("=", to-from)
			fmt.Fprintf(&sb, "  |%-*s| %-12s %s\n", width, bar, e.Kind, e.Name)
		}
	}
	return sb.String()
}

// TotalBytes sums the byte counts of events of the given kind (all
// kinds when kind is empty).
func (t *Tracer) TotalBytes(kind Kind) int64 {
	var sum int64
	for _, e := range t.Events() {
		if kind == "" || e.Kind == kind {
			sum += e.Bytes
		}
	}
	return sum
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (loadable in Perfetto and chrome://tracing). Field order is fixed by
// the struct, so encoding is deterministic.
type chromeEvent struct {
	Name  string      `json:"name"`
	Cat   string      `json:"cat"`
	Ph    string      `json:"ph"`
	Ts    float64     `json:"ts"`
	Dur   *float64    `json:"dur,omitempty"`
	Pid   int         `json:"pid"`
	Tid   int         `json:"tid"`
	Scope string      `json:"s,omitempty"`
	Args  *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the simulator-specific attributes of an event.
type chromeArgs struct {
	Kind   Kind     `json:"kind,omitempty"`
	Bytes  int64    `json:"bytes,omitempty"`
	ID     int64    `json:"id,omitempty"`
	Parent int64    `json:"parent,omitempty"`
	Attrs  []string `json:"attrs,omitempty"`
	Name   string   `json:"name,omitempty"` // thread_name metadata payload
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// ChromeTrace writes the timeline in Chrome trace-event JSON. Simulated
// seconds map to trace microseconds (the format's native unit), each
// lane becomes a named thread, zero-duration events export as instants,
// and every event carries its kind, byte count and span IDs in args.
// Output is byte-deterministic for a given timeline. A nil or empty
// tracer writes a valid trace with no events.
func (t *Tracer) ChromeTrace(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms"}

	lanes := map[int]bool{}
	for _, e := range events {
		lanes[e.Lane] = true
	}
	laneIDs := make([]int, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)
	for _, l := range laneIDs {
		name := fmt.Sprintf("group %d", l)
		if l == 0 {
			name = "driver"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: 0, Tid: l,
			Args: &chromeArgs{Name: name},
		})
	}

	for _, e := range events {
		attrs := make([]string, 0, len(e.Attrs))
		for _, a := range e.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		ce := chromeEvent{
			Name: e.Name,
			Cat:  Layer(e.Kind),
			Ts:   float64(e.Start) * 1e6,
			Pid:  0,
			Tid:  e.Lane,
			Args: &chromeArgs{Kind: e.Kind, Bytes: e.Bytes, ID: e.ID, Parent: e.Parent, Attrs: attrs},
		}
		if e.End == e.Start {
			ce.Ph = "i"
			ce.Scope = "t"
		} else {
			ce.Ph = "X"
			dur := float64(e.End-e.Start) * 1e6
			ce.Dur = &dur
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Category is a wall-clock attribution bucket of the critical-path
// summary.
type Category string

// The attribution categories, in descending precedence: when events of
// several categories overlap in simulated time, the overlapping span is
// attributed to the highest-precedence one — the scarce resources
// (recovery traffic, shuffle, model movement) win over compute, which is
// assumed to overlap them.
const (
	CatFault    Category = "fault-recovery"
	CatShuffle  Category = "shuffle"
	CatModel    Category = "model-distribution"
	CatTransfer Category = "data-transfer"
	CatCompute  Category = "compute"
	CatOverhead Category = "overhead"
)

// categories lists the buckets in precedence order.
var categories = []Category{CatFault, CatShuffle, CatModel, CatTransfer, CatCompute, CatOverhead}

// categoryOf maps an event kind to its attribution bucket; the empty
// category marks container events (phases) that only group others.
func categoryOf(k Kind) Category {
	switch k {
	case KindReReplication, KindNodeCrash, KindNodeRecover, KindGroupRepair:
		return CatFault
	case KindShuffle:
		return CatShuffle
	case KindModelDist, KindModelWrite:
		return CatModel
	case KindTransfer:
		return CatTransfer
	case KindMap, KindReduce, KindJob, KindLocalJob, KindSuperstep:
		return CatCompute
	case KindOverhead, KindBarrier:
		return CatOverhead
	default:
		return ""
	}
}

// Breakdown attributes a timeline's end-to-end extent to categories.
type Breakdown struct {
	Start, End simtime.Time
	// Total is the timeline extent End - Start.
	Total simtime.Duration
	// ByCategory holds the attributed time per bucket; every instant is
	// attributed to at most one bucket, so the values plus Idle sum to
	// Total exactly.
	ByCategory map[Category]simtime.Duration
	// Idle is the extent covered by no leaf event.
	Idle simtime.Duration
}

// interval is a half-open simulated-time span.
type interval struct{ lo, hi simtime.Time }

// mergeIntervals collapses a sorted-or-not interval list into disjoint
// sorted spans.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// measureOutside returns the total length of ivs not covered by the
// disjoint sorted list covered. Both inputs must be merged.
func measureOutside(ivs, covered []interval) simtime.Duration {
	var total simtime.Duration
	ci := 0
	for _, iv := range ivs {
		lo := iv.lo
		for ci < len(covered) && covered[ci].hi <= lo {
			ci++
		}
		cj := ci
		for lo < iv.hi {
			if cj >= len(covered) || covered[cj].lo >= iv.hi {
				total += iv.hi - lo
				break
			}
			c := covered[cj]
			if c.lo > lo {
				total += c.lo - lo
			}
			if c.hi > lo {
				lo = c.hi
			}
			cj++
		}
	}
	return total
}

// CriticalPath attributes the timeline's end-to-end extent to the
// categories above. Only leaf events participate (container spans —
// phases, jobs with recorded sub-phases — are skipped, so time is not
// double-counted); where leaves of several categories overlap, the span
// goes to the highest-precedence category. Extent no leaf covers is
// Idle. A nil or empty tracer returns a zero breakdown.
func (t *Tracer) CriticalPath() Breakdown {
	events := t.Events()
	bd := Breakdown{ByCategory: map[Category]simtime.Duration{}}
	if len(events) == 0 {
		return bd
	}
	bd.Start, bd.End = t.Span()
	bd.Total = bd.End - bd.Start

	parents := map[int64]bool{}
	for _, e := range events {
		if e.Parent != 0 {
			parents[e.Parent] = true
		}
	}
	byCat := map[Category][]interval{}
	for _, e := range events {
		if e.ID != 0 && parents[e.ID] {
			continue // container span: its children carry the time
		}
		cat := categoryOf(e.Kind)
		if cat == "" || e.End == e.Start {
			continue
		}
		byCat[cat] = append(byCat[cat], interval{e.Start, e.End})
	}

	var covered []interval
	var attributed simtime.Duration
	for _, cat := range categories {
		ivs := mergeIntervals(byCat[cat])
		if len(ivs) == 0 {
			continue
		}
		d := measureOutside(ivs, covered)
		if d > 0 {
			bd.ByCategory[cat] = d
			attributed += d
		}
		covered = mergeIntervals(append(covered, ivs...))
	}
	bd.Idle = bd.Total - attributed
	return bd
}

// Render formats the breakdown as a fixed-order table of seconds and
// shares of the end-to-end extent.
func (b Breakdown) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "end-to-end %.3fs (%.3fs – %.3fs)\n", float64(b.Total), float64(b.Start), float64(b.End))
	if b.Total <= 0 {
		return sb.String()
	}
	for _, cat := range categories {
		d, ok := b.ByCategory[cat]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "  %-20s %10.3fs  %5.1f%%\n", cat, float64(d), 100*float64(d)/float64(b.Total))
	}
	fmt.Fprintf(&sb, "  %-20s %10.3fs  %5.1f%%\n", "idle", float64(b.Idle), 100*float64(b.Idle)/float64(b.Total))
	return sb.String()
}

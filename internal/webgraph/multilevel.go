package webgraph

import "sort"

// MultilevelPartition is a METIS-style min-cut partitioner (the paper
// explicitly suggests METIS for PageRank partitioning, §III-B/§VI-B):
//
//  1. coarsen the graph by repeated heavy-edge matching until it is
//     small;
//  2. partition the coarse graph greedily into p balanced parts;
//  3. project the assignment back through the matchings, refining at
//     each level with a Kernighan–Lin-style pass that moves boundary
//     vertices to the neighboring part where most of their edges live,
//     subject to a balance constraint.
//
// The partitioner is deterministic and treats the graph as undirected
// for cut purposes (an edge in either direction couples two vertices).
func MultilevelPartition(g *Graph, p int) []int {
	if p <= 0 || p > g.N {
		panic("webgraph: bad partition count")
	}
	if p == 1 {
		return make([]int, g.N)
	}
	levels := coarsen(symmetrize(g), 4*p)
	coarsest := levels[len(levels)-1]
	assign := greedyGrow(coarsest.g, p)
	// Project back up, refining at each level.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		refine(lv.g, assign, p, 3)
		if i > 0 {
			fine := make([]int, len(levels[i-1].match))
			for v := range fine {
				fine[v] = assign[levels[i-1].match[v]]
			}
			assign = fine
		}
	}
	return assign
}

// wgraph is an undirected weighted graph used during coarsening.
type wgraph struct {
	n      int
	adj    []map[int32]float64 // neighbor -> edge weight
	weight []float64           // vertex weights (fine-vertex counts)
}

type level struct {
	g *wgraph
	// match maps each vertex of the next-finer level to its coarse
	// vertex (identity at the coarsest level's own entry).
	match []int
}

// symmetrize folds the directed graph into an undirected weighted one.
func symmetrize(g *Graph) *wgraph {
	w := &wgraph{n: g.N, adj: make([]map[int32]float64, g.N), weight: make([]float64, g.N)}
	for v := range w.adj {
		w.adj[v] = make(map[int32]float64)
		w.weight[v] = 1
	}
	for v, out := range g.Out {
		for _, u := range out {
			if int(u) == v {
				continue
			}
			w.adj[v][u]++
			w.adj[u][int32(v)]++
		}
	}
	return w
}

// coarsen repeatedly contracts heavy-edge matchings until the graph has
// at most target vertices (or contraction stalls). The returned slice
// is ordered fine→coarse; levels[i].match maps level-i vertices to
// level-i+1 vertices (the last level's match is its own identity).
func coarsen(g *wgraph, target int) []level {
	// Cap coarse-vertex weight so no single vertex can swallow the
	// graph and make balanced partitioning impossible (METIS uses the
	// same guard).
	var total float64
	for _, w := range g.weight {
		total += w
	}
	maxW := 1.5 * total / float64(target)

	levels := []level{{g: g}}
	for levels[len(levels)-1].g.n > target {
		cur := levels[len(levels)-1].g
		match := heavyEdgeMatch(cur, maxW)
		next, mapping := contract(cur, match)
		if float64(next.n) > 0.95*float64(cur.n) { // stalled
			break
		}
		levels[len(levels)-1].match = mapping
		levels = append(levels, level{g: next})
	}
	last := levels[len(levels)-1].g
	identity := make([]int, last.n)
	for v := range identity {
		identity[v] = v
	}
	levels[len(levels)-1].match = identity
	return levels
}

// heavyEdgeMatch pairs each unmatched vertex with its heaviest
// unmatched neighbor whose combined weight stays under maxW, visiting
// vertices in order (deterministic).
func heavyEdgeMatch(g *wgraph, maxW float64) []int {
	match := make([]int, g.n)
	for v := range match {
		match[v] = -1
	}
	for v := 0; v < g.n; v++ {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, 0.0
		// Deterministic neighbor order.
		nbrs := make([]int32, 0, len(g.adj[v]))
		for u := range g.adj[v] {
			nbrs = append(nbrs, u)
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, u := range nbrs {
			if match[u] >= 0 || int(u) == v {
				continue
			}
			if g.weight[v]+g.weight[u] > maxW {
				continue
			}
			if w := g.adj[v][u]; w > bestW {
				best, bestW = int(u), w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v // self-matched
		}
	}
	return match
}

// contract merges matched pairs into coarse vertices.
func contract(g *wgraph, match []int) (*wgraph, []int) {
	mapping := make([]int, g.n)
	for v := range mapping {
		mapping[v] = -1
	}
	next := 0
	for v := 0; v < g.n; v++ {
		if mapping[v] >= 0 {
			continue
		}
		mapping[v] = next
		if m := match[v]; m != v && m >= 0 {
			mapping[m] = next
		}
		next++
	}
	out := &wgraph{n: next, adj: make([]map[int32]float64, next), weight: make([]float64, next)}
	for v := range out.adj {
		out.adj[v] = make(map[int32]float64)
	}
	for v := 0; v < g.n; v++ {
		cv := mapping[v]
		out.weight[cv] += g.weight[v]
		for u, w := range g.adj[v] {
			cu := mapping[u]
			if cu != cv {
				out.adj[cv][int32(cu)] += w
			}
		}
	}
	return out, mapping
}

// greedyGrow seeds p parts and grows them by repeatedly assigning the
// unassigned vertex most attached to the lightest part.
func greedyGrow(g *wgraph, p int) []int {
	assign := make([]int, g.n)
	for v := range assign {
		assign[v] = -1
	}
	var total float64
	for _, w := range g.weight {
		total += w
	}
	capacity := total / float64(p) * 1.1
	loads := make([]float64, p)
	part := 0
	for v := 0; v < g.n && part < p; v++ {
		if assign[v] == -1 {
			assign[v] = part
			loads[part] += g.weight[v]
			grow(g, v, part, assign, loads, capacity)
			part++
		}
	}
	// Anything untouched goes to the lightest part.
	for v := range assign {
		if assign[v] == -1 {
			l := lightest(loads)
			assign[v] = l
			loads[l] += g.weight[v]
		}
	}
	return assign
}

// grow breadth-first expands part from seed until it reaches capacity.
func grow(g *wgraph, seed, part int, assign []int, loads []float64, capacity float64) {
	queue := []int{seed}
	for len(queue) > 0 && loads[part] < capacity {
		v := queue[0]
		queue = queue[1:]
		nbrs := make([]int32, 0, len(g.adj[v]))
		for u := range g.adj[v] {
			nbrs = append(nbrs, u)
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, u := range nbrs {
			if assign[u] != -1 || loads[part]+g.weight[u] > capacity {
				continue
			}
			assign[u] = part
			loads[part] += g.weight[u]
			queue = append(queue, int(u))
		}
	}
}

func lightest(loads []float64) int {
	best := 0
	for i, l := range loads {
		if l < loads[best] {
			best = i
		}
	}
	_ = loads[best]
	return best
}

// refine runs Kernighan–Lin-style boundary passes: each pass moves
// vertices whose external attachment to some neighbor part exceeds
// their internal attachment, provided balance is preserved.
func refine(g *wgraph, assign []int, p, passes int) {
	var total float64
	for _, w := range g.weight {
		total += w
	}
	capacity := total / float64(p) * 1.15
	floor := total / float64(p) * 0.75
	loads := make([]float64, p)
	for v, a := range assign {
		loads[a] += g.weight[v]
	}
	for pass := 0; pass < passes; pass++ {
		moved := false
		for v := 0; v < g.n; v++ {
			cur := assign[v]
			// Keep every part above the balance floor.
			if loads[cur]-g.weight[v] < floor {
				continue
			}
			gain := make(map[int]float64)
			internal := 0.0
			for u, w := range g.adj[v] {
				if assign[u] == cur {
					internal += w
				} else {
					gain[assign[u]] += w
				}
			}
			bestPart, bestGain := -1, 0.0
			// Deterministic part order.
			parts := make([]int, 0, len(gain))
			for q := range gain {
				parts = append(parts, q)
			}
			sort.Ints(parts)
			for _, q := range parts {
				improvement := gain[q] - internal
				if improvement > bestGain && loads[q]+g.weight[v] <= capacity {
					bestPart, bestGain = q, improvement
				}
			}
			if bestPart >= 0 {
				loads[cur] -= g.weight[v]
				loads[bestPart] += g.weight[v]
				assign[v] = bestPart
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

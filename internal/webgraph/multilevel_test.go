package webgraph

import (
	"testing"
	"testing/quick"
)

func TestMultilevelPartitionCoversAllVertices(t *testing.T) {
	g := NearlyUncoupled(1, 1000, 8, 0.05, 4)
	assign := MultilevelPartition(g, 8)
	if len(assign) != g.N {
		t.Fatalf("assignment has %d entries", len(assign))
	}
	for v, a := range assign {
		if a < 0 || a >= 8 {
			t.Fatalf("vertex %d assigned to %d", v, a)
		}
	}
}

func TestMultilevelPartitionBalance(t *testing.T) {
	g := NearlyUncoupled(2, 2000, 8, 0.05, 4)
	assign := MultilevelPartition(g, 8)
	sizes := PartitionSizes(assign, 8)
	for p, s := range sizes {
		// Within 35% of perfect balance (the refiner's slack is 15%,
		// plus coarsening granularity).
		if s < 2000/8*65/100 || s > 2000/8*135/100 {
			t.Fatalf("partition %d holds %d vertices (sizes %v)", p, s, sizes)
		}
	}
}

func TestMultilevelBeatsRandomCut(t *testing.T) {
	g := NearlyUncoupled(3, 3000, 6, 0.1, 4)
	multilevel := CutEdges(g, MultilevelPartition(g, 6))
	random := CutEdges(g, RandomPartition(3, 3000, 6))
	if multilevel >= random/2 {
		t.Fatalf("multilevel cut %d not well below random cut %d", multilevel, random)
	}
}

func TestMultilevelCompetitiveWithLocalityOnCommunityGraphs(t *testing.T) {
	// On graphs whose communities are contiguous, LocalityPartition is
	// near-optimal; multilevel must come close (within 2x) without
	// knowing the labeling.
	g := NearlyUncoupled(4, 3000, 6, 0.05, 4)
	multilevel := CutEdges(g, MultilevelPartition(g, 6))
	locality := CutEdges(g, LocalityPartition(3000, 6))
	if multilevel > 2*locality+10 {
		t.Fatalf("multilevel cut %d far above locality cut %d", multilevel, locality)
	}
}

func TestMultilevelScrambledCommunities(t *testing.T) {
	// Scramble vertex ids so contiguity no longer matches communities:
	// LocalityPartition degrades to random, multilevel must still find
	// the structure.
	g := NearlyUncoupled(5, 2000, 4, 0.05, 4)
	perm := RandomPartition(9, g.N, g.N) // reuse as a permutation source
	// Build an actual permutation deterministically.
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	for i := g.N - 1; i > 0; i-- {
		j := perm[i] % (i + 1)
		order[i], order[j] = order[j], order[i]
	}
	scrambled := &Graph{N: g.N, Out: make([][]int32, g.N)}
	pos := make([]int32, g.N)
	for newID, oldID := range order {
		pos[oldID] = int32(newID)
	}
	for oldID, out := range g.Out {
		newOut := make([]int32, len(out))
		for i, w := range out {
			newOut[i] = pos[w]
		}
		scrambled.Out[pos[oldID]] = newOut
	}

	multilevel := CutEdges(scrambled, MultilevelPartition(scrambled, 4))
	locality := CutEdges(scrambled, LocalityPartition(scrambled.N, 4))
	if multilevel >= locality {
		t.Fatalf("multilevel cut %d not below naive contiguous cut %d on scrambled graph",
			multilevel, locality)
	}
}

func TestMultilevelSinglePartition(t *testing.T) {
	g := NearlyUncoupled(6, 100, 2, 0.1, 3)
	assign := MultilevelPartition(g, 1)
	for _, a := range assign {
		if a != 0 {
			t.Fatal("p=1 assignment not all zero")
		}
	}
}

func TestMultilevelPanicsOnBadP(t *testing.T) {
	g := NearlyUncoupled(7, 10, 2, 0.1, 2)
	for _, p := range []int{0, -1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%d did not panic", p)
				}
			}()
			MultilevelPartition(g, p)
		}()
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := NearlyUncoupled(8, 500, 4, 0.1, 3)
	a := MultilevelPartition(g, 4)
	b := MultilevelPartition(g, 4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("multilevel partitioning not deterministic")
		}
	}
}

// Property: for any graph, the multilevel assignment is valid (complete,
// in range, covers all p parts for reasonably sized graphs).
func TestQuickMultilevelValidity(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%400) + 100
		if n < 100 {
			n = 100
		}
		p := int(seed%5) + 2
		if p < 2 {
			p = 2
		}
		g := NearlyUncoupled(seed, n, p, 0.2, 3)
		assign := MultilevelPartition(g, p)
		if len(assign) != n {
			return false
		}
		seen := make([]bool, p)
		for _, a := range assign {
			if a < 0 || a >= p {
				return false
			}
			seen[a] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Package webgraph provides the directed web graphs for the PageRank
// case study: a generator for "nearly uncoupled" graphs (the dependency
// structure of §VI-B that makes PIC effective — the web graph "is
// typically local"), plus the partitioners the best-effort phase splits
// the graph with.
package webgraph

import (
	"fmt"
	"math/rand"
)

// Graph is a directed graph on vertices 0..N-1 with out-adjacency lists.
type Graph struct {
	N   int
	Out [][]int32
}

// NumEdges reports the total directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, out := range g.Out {
		n += len(out)
	}
	return n
}

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v int) int { return len(g.Out[v]) }

// NearlyUncoupled generates a graph of n vertices organized in `blocks`
// communities: each vertex's edges stay within its community with
// probability 1-crossFrac and go anywhere otherwise. Out-degrees follow
// a heavy-tailed distribution with the given mean. Vertices are numbered
// so that communities are contiguous ranges. Every vertex has at least
// one outgoing edge (no dangling pages), matching the Nutch PageRank
// setup the paper builds on.
func NearlyUncoupled(seed int64, n, blocks int, crossFrac, meanOutDeg float64) *Graph {
	if n <= 0 || blocks <= 0 || blocks > n {
		panic(fmt.Sprintf("webgraph: bad shape n=%d blocks=%d", n, blocks))
	}
	if crossFrac < 0 || crossFrac > 1 {
		panic(fmt.Sprintf("webgraph: crossFrac = %g out of [0,1]", crossFrac))
	}
	if meanOutDeg < 1 {
		panic("webgraph: meanOutDeg must be ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n, Out: make([][]int32, n)}
	blockOf := func(v int) int { return v * blocks / n }
	blockRange := func(b int) (int, int) { return b * n / blocks, (b + 1) * n / blocks }
	for v := 0; v < n; v++ {
		// Heavy-tailed degree: geometric-ish with the requested mean,
		// at least 1.
		deg := 1
		for float64(deg) < meanOutDeg*8 && rng.Float64() < 1-1/meanOutDeg {
			deg++
		}
		out := make([]int32, 0, deg)
		seen := map[int32]bool{}
		lo, hi := blockRange(blockOf(v))
		for e := 0; e < deg; e++ {
			var dst int
			if rng.Float64() < crossFrac {
				dst = rng.Intn(n)
			} else {
				dst = lo + rng.Intn(hi-lo)
			}
			if dst == v {
				dst = (dst + 1) % n
			}
			// Edges are simple: duplicate destinations are dropped
			// (edge scores are keyed per (src,dst) pair).
			if d := int32(dst); !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
		g.Out[v] = out
	}
	return g
}

// RandomPartition assigns each vertex independently to one of p
// partitions, deterministically from the seed — the paper's default
// partitioning for PageRank ("our partitioning function randomly divides
// the web graph").
func RandomPartition(seed int64, n, p int) []int {
	if p <= 0 {
		panic("webgraph: p must be ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, n)
	for v := range assign {
		assign[v] = rng.Intn(p)
	}
	return assign
}

// LocalityPartition splits vertices into p contiguous ranges. Because
// NearlyUncoupled numbers communities contiguously, this approximates a
// min-cut partitioning (the paper's METIS suggestion) without an
// external package.
func LocalityPartition(n, p int) []int {
	if p <= 0 || p > n {
		panic(fmt.Sprintf("webgraph: bad partition count %d for %d vertices", p, n))
	}
	assign := make([]int, n)
	for v := range assign {
		assign[v] = v * p / n
	}
	return assign
}

// CutEdges counts directed edges whose endpoints fall in different
// partitions under assign.
func CutEdges(g *Graph, assign []int) int {
	if len(assign) != g.N {
		panic("webgraph: assignment length mismatch")
	}
	cut := 0
	for v, out := range g.Out {
		for _, w := range out {
			if assign[v] != assign[int(w)] {
				cut++
			}
		}
	}
	return cut
}

// PartitionSizes reports how many vertices each of the p partitions
// received.
func PartitionSizes(assign []int, p int) []int {
	sizes := make([]int, p)
	for _, a := range assign {
		sizes[a]++
	}
	return sizes
}

// CrossEdge is a directed edge between partitions.
type CrossEdge struct {
	Src, Dst int32
}

// CrossEdgeGroups groups the cut edges into p×p sets indexed by (source
// partition, destination partition) — the paper's PageRank
// implementation forms exactly these groups (18² = 324 sets for its 18
// partitions) so the merge step can process inter-partition score flow
// per pair.
func CrossEdgeGroups(g *Graph, assign []int, p int) [][][]CrossEdge {
	groups := make([][][]CrossEdge, p)
	for i := range groups {
		groups[i] = make([][]CrossEdge, p)
	}
	for v, out := range g.Out {
		for _, w := range out {
			sp, dp := assign[v], assign[int(w)]
			if sp != dp {
				groups[sp][dp] = append(groups[sp][dp], CrossEdge{Src: int32(v), Dst: w})
			}
		}
	}
	return groups
}

package webgraph

import "testing"

func BenchmarkNearlyUncoupled10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NearlyUncoupled(1, 10_000, 10, 0.05, 4)
	}
}

func BenchmarkMultilevelPartition5k(b *testing.B) {
	g := NearlyUncoupled(1, 5_000, 8, 0.05, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultilevelPartition(g, 8)
	}
}

func BenchmarkCutEdges(b *testing.B) {
	g := NearlyUncoupled(1, 10_000, 10, 0.05, 4)
	assign := RandomPartition(1, g.N, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CutEdges(g, assign)
	}
}

package webgraph

import (
	"testing"
	"testing/quick"
)

func TestNearlyUncoupledShape(t *testing.T) {
	g := NearlyUncoupled(1, 1000, 10, 0.05, 4)
	if g.N != 1000 || len(g.Out) != 1000 {
		t.Fatal("wrong vertex count")
	}
	for v := 0; v < g.N; v++ {
		if g.OutDegree(v) < 1 {
			t.Fatalf("vertex %d is dangling", v)
		}
		for _, w := range g.Out[v] {
			if int(w) < 0 || int(w) >= g.N {
				t.Fatalf("edge to %d out of range", w)
			}
			if int(w) == v {
				t.Fatalf("self-loop at %d", v)
			}
		}
	}
}

func TestNearlyUncoupledDeterministic(t *testing.T) {
	a := NearlyUncoupled(5, 200, 4, 0.1, 3)
	b := NearlyUncoupled(5, 200, 4, 0.1, 3)
	for v := range a.Out {
		if len(a.Out[v]) != len(b.Out[v]) {
			t.Fatal("same seed produced different graphs")
		}
		for i := range a.Out[v] {
			if a.Out[v][i] != b.Out[v][i] {
				t.Fatal("same seed produced different edges")
			}
		}
	}
}

func TestNearlyUncoupledMeanDegree(t *testing.T) {
	g := NearlyUncoupled(2, 5000, 10, 0.05, 5)
	mean := float64(g.NumEdges()) / float64(g.N)
	if mean < 3 || mean > 8 {
		t.Fatalf("mean out-degree = %v, want ≈5", mean)
	}
}

func TestNearlyUncoupledIsActuallyLocal(t *testing.T) {
	g := NearlyUncoupled(3, 2000, 10, 0.05, 4)
	assign := LocalityPartition(2000, 10) // aligned with communities
	cut := CutEdges(g, assign)
	frac := float64(cut) / float64(g.NumEdges())
	// With crossFrac 0.05, ~5% of edges leave their community (a cross
	// edge can land in its own block by chance, so slightly less).
	if frac > 0.08 {
		t.Fatalf("cut fraction = %v, want ≤ 0.08", frac)
	}
	if cut == 0 {
		t.Fatal("no cross edges at all; generator degenerate")
	}
}

func TestFullCouplingIsMostlyCut(t *testing.T) {
	g := NearlyUncoupled(4, 2000, 10, 1.0, 4)
	assign := LocalityPartition(2000, 10)
	frac := float64(CutEdges(g, assign)) / float64(g.NumEdges())
	if frac < 0.8 {
		t.Fatalf("cut fraction = %v for fully random edges, want ≈0.9", frac)
	}
}

func TestRandomPartitionCoversAndBalances(t *testing.T) {
	assign := RandomPartition(1, 10000, 8)
	sizes := PartitionSizes(assign, 8)
	for p, s := range sizes {
		if s < 1000 || s > 1500 {
			t.Fatalf("partition %d has %d vertices (sizes %v)", p, s, sizes)
		}
	}
}

func TestLocalityPartitionContiguous(t *testing.T) {
	assign := LocalityPartition(10, 3)
	for v := 1; v < 10; v++ {
		if assign[v] < assign[v-1] {
			t.Fatalf("assignment not monotone: %v", assign)
		}
	}
	sizes := PartitionSizes(assign, 3)
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Fatalf("sizes = %v", sizes)
		}
	}
}

func TestLocalityBeatsRandomOnCut(t *testing.T) {
	g := NearlyUncoupled(6, 3000, 6, 0.05, 4)
	local := CutEdges(g, LocalityPartition(3000, 6))
	random := CutEdges(g, RandomPartition(6, 3000, 6))
	if local >= random {
		t.Fatalf("locality cut %d not better than random cut %d", local, random)
	}
}

func TestCrossEdgeGroups(t *testing.T) {
	g := &Graph{N: 4, Out: [][]int32{{1, 2}, {0}, {3}, {0}}}
	assign := []int{0, 0, 1, 1}
	groups := CrossEdgeGroups(g, assign, 2)
	// Cut edges: 0->2 (p0->p1), 3->0 (p1->p0).
	if len(groups[0][1]) != 1 || groups[0][1][0] != (CrossEdge{0, 2}) {
		t.Fatalf("groups[0][1] = %v", groups[0][1])
	}
	if len(groups[1][0]) != 1 || groups[1][0][0] != (CrossEdge{3, 0}) {
		t.Fatalf("groups[1][0] = %v", groups[1][0])
	}
	if len(groups[0][0]) != 0 || len(groups[1][1]) != 0 {
		t.Fatal("intra-partition edges grouped as cross edges")
	}
}

func TestCutEdgesMismatchPanics(t *testing.T) {
	g := &Graph{N: 2, Out: [][]int32{{1}, {0}}}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	CutEdges(g, []int{0})
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { NearlyUncoupled(1, 0, 1, 0, 2) },
		func() { NearlyUncoupled(1, 10, 20, 0, 2) },
		func() { NearlyUncoupled(1, 10, 2, 1.5, 2) },
		func() { NearlyUncoupled(1, 10, 2, 0, 0.5) },
		func() { RandomPartition(1, 10, 0) },
		func() { LocalityPartition(5, 9) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: cross-edge groups together contain exactly the cut edges,
// and partition sizes always sum to n.
func TestQuickCrossEdgeAccounting(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%500) + 20
		if n < 20 {
			n = 20
		}
		p := int(seed%7) + 2
		if p < 2 {
			p = 2
		}
		g := NearlyUncoupled(seed, n, p, 0.2, 3)
		assign := RandomPartition(seed, n, p)
		sizes := PartitionSizes(assign, p)
		total := 0
		for _, s := range sizes {
			total += s
		}
		if total != n {
			return false
		}
		groups := CrossEdgeGroups(g, assign, p)
		grouped := 0
		for i := range groups {
			for j := range groups[i] {
				if i == j && len(groups[i][j]) != 0 {
					return false
				}
				grouped += len(groups[i][j])
			}
		}
		return grouped == CutEdges(g, assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

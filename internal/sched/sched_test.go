package sched_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/simcluster"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/writable"
)

// meanSeeker is the drivers' standard miniature workload: the model is
// one vector moving halfway to the mean of the input points each
// iteration, so it converges geometrically. It implements core.PICApp.
type meanSeeker struct{ eps float64 }

func (a *meanSeeker) Name() string { return "mean-seeker" }

func (a *meanSeeker) Iteration(rt *core.Runtime, in *mapred.Input, m *model.Model) (*model.Model, error) {
	job := &mapred.Job{
		Name: "mean",
		Mapper: mapred.MapperFunc(func(_ string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			p := v.(writable.Vector)
			withCount := append(p.Clone(), 1)
			emit.Emit("mean", withCount)
			return nil
		}),
		Combiner: sumReducer{},
		Reducer:  sumReducer{},
	}
	out, err := rt.RunJob(job, in, m)
	if err != nil {
		return nil, err
	}
	cur, _ := m.Vector("mean")
	next := model.New()
	for _, rec := range out.Records {
		acc := rec.Value.(writable.Vector)
		n := acc[len(acc)-1]
		moved := make(writable.Vector, len(acc)-1)
		for i := range moved {
			moved[i] = cur[i] + 0.5*(acc[i]/n-cur[i])
		}
		next.Set("mean", moved)
	}
	return next, nil
}

type sumReducer struct{}

func (sumReducer) Reduce(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
	acc := values[0].(writable.Vector).Clone()
	for _, v := range values[1:] {
		vec := v.(writable.Vector)
		for i := range acc {
			acc[i] += vec[i]
		}
	}
	emit.Emit(key, acc)
	return nil
}

func (a *meanSeeker) Converged(prev, next *model.Model) bool {
	return model.MaxVectorDelta(prev, next) < a.eps
}

func (a *meanSeeker) Partition(in *mapred.Input, m *model.Model, p int) ([]core.SubProblem, error) {
	groups := core.DealRecords(in.Records(), p)
	models := core.CopyModels(m, p)
	subs := make([]core.SubProblem, p)
	for i := range subs {
		subs[i] = core.SubProblem{Records: groups[i], Model: models[i]}
	}
	return subs, nil
}

func (a *meanSeeker) Merge(parts []*model.Model, _ *model.Model) (*model.Model, error) {
	return core.AverageModels(parts)
}

func testCluster(nodes int) *simcluster.Cluster {
	return simcluster.New(simcluster.Config{
		Nodes:              nodes,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
}

func points(n int) []mapred.Record {
	recs := make([]mapred.Record, n)
	for i := range recs {
		recs[i] = mapred.Record{Key: fmt.Sprintf("p%d", i),
			Value: writable.Vector{float64(i%7) - 3, float64(i%5) * 2}}
	}
	return recs
}

// icJob builds a Start callback running a conventional IC workload of n
// points with the given engine parallelism.
func icJob(n int, workers int) func(rt *core.Runtime) (core.Stepper, error) {
	return func(rt *core.Runtime) (core.Stepper, error) {
		rt.Engine().Workers = workers
		in := mapred.NewInput(points(n), rt.Cluster(), rt.Cluster().MapSlots())
		m0 := model.New()
		m0.Set("mean", writable.Vector{100, -100})
		return core.NewICStepper(rt, &meanSeeker{eps: 1e-3}, in, m0, nil), nil
	}
}

// picJob builds a Start callback running a PIC workload.
func picJob(n, partitions, workers int) func(rt *core.Runtime) (core.Stepper, error) {
	return func(rt *core.Runtime) (core.Stepper, error) {
		rt.Engine().Workers = workers
		in := mapred.NewInput(points(n), rt.Cluster(), rt.Cluster().MapSlots())
		m0 := model.New()
		m0.Set("mean", writable.Vector{100, -100})
		return core.NewPICStepper(rt, &meanSeeker{eps: 1e-3}, in, m0,
			core.PICOptions{Partitions: partitions, MaxBEIterations: 3, MaxLocalIterations: 10})
	}
}

func mustRun(t *testing.T, s *sched.Scheduler) []sched.JobResult {
	t.Helper()
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestFIFOSerializesFullClusterJobs(t *testing.T) {
	s := sched.New(testCluster(8), sched.Config{})
	for i := 0; i < 3; i++ {
		s.Submit(sched.JobSpec{Tenant: "t", Name: fmt.Sprintf("j%d", i), Nodes: 8, Start: icJob(24, 1)})
	}
	results := mustRun(t, s)
	for i, r := range results {
		if r.State != sched.StateDone || r.Err != nil {
			t.Fatalf("job %d: state %s err %v", i, r.State, r.Err)
		}
		if r.Steps == 0 {
			t.Fatalf("job %d ran no iterations", i)
		}
	}
	for i := 1; i < len(results); i++ {
		if results[i].Start < results[i-1].End {
			t.Fatalf("FIFO overlap: job %d started %.3f before job %d ended %.3f",
				i, float64(results[i].Start), i-1, float64(results[i-1].End))
		}
		if results[i].Wait <= 0 {
			t.Fatalf("job %d reported no queue wait", i)
		}
	}
}

func TestCoTenantLoadSlowsAJobDown(t *testing.T) {
	run := func(withLoad bool) sched.JobResult {
		s := sched.New(testCluster(8), sched.Config{})
		s.Submit(sched.JobSpec{Tenant: "fg", Name: "job", Nodes: 4, Start: icJob(24, 1)})
		if withLoad {
			s.Submit(sched.JobSpec{Tenant: "bg", Name: "noise", Nodes: 4,
				Load: &sched.Load{Duration: 1e6, Compute: 0.9, NodeUp: 0.9, NodeDown: 0.9,
					RackUp: 0.9, RackDown: 0.9, Core: 0.9}})
		}
		return mustRun(t, s)[0]
	}
	alone := run(false)
	contended := run(true)
	if alone.State != sched.StateDone || contended.State != sched.StateDone {
		t.Fatalf("unexpected states: %s / %s", alone.State, contended.State)
	}
	if contended.Busy <= alone.Busy {
		t.Fatalf("co-tenant load did not slow the job: alone %.3f, contended %.3f",
			float64(alone.Busy), float64(contended.Busy))
	}
	if alone.Steps != contended.Steps {
		t.Fatalf("contention changed the iteration count: %d vs %d (timing must not leak into model math)",
			alone.Steps, contended.Steps)
	}
}

func TestFairSharePrefersLightTenant(t *testing.T) {
	s := sched.New(testCluster(4), sched.Config{Policy: sched.FairShare})
	s.Submit(sched.JobSpec{Tenant: "heavy", Name: "first", Nodes: 4, Start: icJob(24, 1)})
	s.Submit(sched.JobSpec{Tenant: "heavy", Name: "second", Nodes: 4, Start: icJob(24, 1)})
	s.Submit(sched.JobSpec{Tenant: "light", Name: "only", Nodes: 4, Start: icJob(24, 1)})
	results := mustRun(t, s)
	heavy2, light := results[1], results[2]
	if light.Start >= heavy2.Start {
		t.Fatalf("fair share should run light tenant (start %.3f) before heavy's second job (start %.3f)",
			float64(light.Start), float64(heavy2.Start))
	}
}

func TestCapacityCapsTenantNodes(t *testing.T) {
	s := sched.New(testCluster(8), sched.Config{
		Policy:        sched.Capacity,
		TenantNodeCap: map[string]int{"capped": 4},
	})
	s.Submit(sched.JobSpec{Tenant: "capped", Name: "a", Nodes: 4, Start: icJob(24, 1)})
	s.Submit(sched.JobSpec{Tenant: "capped", Name: "b", Nodes: 4, Start: icJob(24, 1)})
	s.Submit(sched.JobSpec{Tenant: "free", Name: "c", Nodes: 4, Start: icJob(24, 1)})
	results := mustRun(t, s)
	a, b, c := results[0], results[1], results[2]
	if b.Start < a.End {
		t.Fatalf("capacity cap violated: capped/b started %.3f while capped/a held the cap until %.3f",
			float64(b.Start), float64(a.End))
	}
	if c.Start != 0 {
		t.Fatalf("free tenant should start immediately on the spare nodes, started %.3f", float64(c.Start))
	}
}

func TestAdmissionQueueLimitRejects(t *testing.T) {
	s := sched.New(testCluster(4), sched.Config{MaxQueued: 1})
	s.Submit(sched.JobSpec{Tenant: "t", Name: "running", Nodes: 4, Start: icJob(24, 1)})
	s.Submit(sched.JobSpec{Tenant: "t", Name: "queued", Nodes: 4, Submit: 1, Start: icJob(24, 1)})
	s.Submit(sched.JobSpec{Tenant: "t", Name: "rejected", Nodes: 4, Submit: 2, Start: icJob(24, 1)})
	results := mustRun(t, s)
	if results[1].State != sched.StateDone {
		t.Fatalf("queued job should run, got %s (%v)", results[1].State, results[1].Err)
	}
	r := results[2]
	if r.State != sched.StateRejected {
		t.Fatalf("third job should be rejected, got %s", r.State)
	}
	var adm *sched.AdmissionError
	if !errors.As(r.Err, &adm) {
		t.Fatalf("want AdmissionError, got %T: %v", r.Err, r.Err)
	}
}

func TestOversizedJobRejected(t *testing.T) {
	s := sched.New(testCluster(4), sched.Config{})
	s.Submit(sched.JobSpec{Tenant: "t", Name: "huge", Nodes: 5, Start: icJob(24, 1)})
	results := mustRun(t, s)
	var adm *sched.AdmissionError
	if results[0].State != sched.StateRejected || !errors.As(results[0].Err, &adm) {
		t.Fatalf("oversized job: state %s err %v", results[0].State, results[0].Err)
	}
}

func TestPreemptionYieldsAndResumes(t *testing.T) {
	cluster := testCluster(8)
	s := sched.New(cluster, sched.Config{Preemption: true})
	reg := metrics.New()
	tr := trace.New()
	s.SetObservability(reg)
	s.SetTracer(tr)
	s.Submit(sched.JobSpec{Tenant: "batch", Name: "low", Priority: 0, Nodes: 8, Start: icJob(48, 1)})
	s.Submit(sched.JobSpec{Tenant: "prod", Name: "high", Priority: 10, Nodes: 8, Submit: 0.5,
		Start: icJob(24, 1)})
	results := mustRun(t, s)
	low, high := results[0], results[1]
	if low.State != sched.StateDone || high.State != sched.StateDone {
		t.Fatalf("states: low %s (%v), high %s (%v)", low.State, low.Err, high.State, high.Err)
	}
	if low.Preemptions == 0 {
		t.Fatal("low-priority job was never preempted")
	}
	if high.End >= low.End {
		t.Fatal("high-priority job should finish before the preempted job")
	}
	preempts := 0
	for _, e := range tr.Events() {
		if e.Kind == trace.KindSchedPreempt {
			preempts++
		}
	}
	if preempts != low.Preemptions {
		t.Fatalf("trace records %d preemptions, result says %d", preempts, low.Preemptions)
	}
	if got := reg.Counter("sched.preemptions", metrics.L("tenant", "batch")...).Value(); got != float64(low.Preemptions) {
		t.Fatalf("sched.preemptions{tenant=batch} = %g, want %d", got, low.Preemptions)
	}
}

func TestPICJobUnderScheduler(t *testing.T) {
	s := sched.New(testCluster(8), sched.Config{})
	s.Submit(sched.JobSpec{Tenant: "t", Name: "pic", Nodes: 8, Start: picJob(48, 4, 1)})
	results := mustRun(t, s)
	if results[0].State != sched.StateDone || results[0].Err != nil {
		t.Fatalf("PIC job: state %s err %v", results[0].State, results[0].Err)
	}
	if results[0].Steps < 4 {
		t.Fatalf("PIC job took %d steps, want best-effort + top-off iterations", results[0].Steps)
	}
}

func TestPerTenantMetricsAndSpans(t *testing.T) {
	s := sched.New(testCluster(8), sched.Config{})
	reg := metrics.New()
	tr := trace.New()
	s.SetObservability(reg)
	s.SetTracer(tr)
	s.Submit(sched.JobSpec{Tenant: "a", Name: "j", Nodes: 8, Start: icJob(24, 1)})
	s.Submit(sched.JobSpec{Tenant: "b", Name: "j", Nodes: 8, Start: icJob(24, 1)})
	results := mustRun(t, s)
	for _, tenant := range []string{"a", "b"} {
		if got := reg.Counter("sched.jobs_completed", metrics.L("tenant", tenant)...).Value(); got != 1 {
			t.Fatalf("sched.jobs_completed{tenant=%s} = %g, want 1", tenant, got)
		}
	}
	if got := reg.Counter("sched.wait_seconds", metrics.L("tenant", "b")...).Value(); got <= 0 {
		t.Fatalf("tenant b waited %g seconds, want > 0", got)
	}
	jobSpans := 0
	for _, e := range tr.Events() {
		if e.Kind == trace.KindSchedJob {
			jobSpans++
			if e.ID == 0 {
				t.Fatal("sched-job span has no id")
			}
		}
	}
	if jobSpans != 2 {
		t.Fatalf("want 2 sched-job spans, got %d", jobSpans)
	}
	// The jobs' own phase spans must be stamped on the global clock:
	// tenant b's phase events start at or after its scheduler start.
	var bStart simtime.Time
	for _, r := range results {
		if r.Tenant == "b" {
			bStart = r.Start
		}
	}
	if bStart <= 0 {
		t.Fatal("tenant b should start after tenant a's run")
	}
}

func TestResumeReusesOriginalNodes(t *testing.T) {
	s := sched.New(testCluster(8), sched.Config{Preemption: true})
	s.Submit(sched.JobSpec{Tenant: "batch", Name: "low", Priority: 0, Nodes: 6, Start: icJob(36, 1)})
	s.Submit(sched.JobSpec{Tenant: "prod", Name: "high", Priority: 5, Nodes: 4, Submit: 0.5,
		Start: icJob(12, 1)})
	results := mustRun(t, s)
	low := results[0]
	if low.State != sched.StateDone {
		t.Fatalf("low job: %s (%v)", low.State, low.Err)
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(low.Nodes) != len(want) {
		t.Fatalf("low job nodes = %v", low.Nodes)
	}
	for i, n := range want {
		if low.Nodes[i] != n {
			t.Fatalf("low job nodes = %v, want %v (resume must reuse the original subset)", low.Nodes, want)
		}
	}
}

// brokenStepper stands in for a driver a mid-run fault killed: every
// step fails.
type brokenStepper struct{ err error }

func (b brokenStepper) Step() (bool, error) { return false, b.err }

// TestDriverRestartResumesJob answers a failed step with a driver
// restart: the scheduler re-invokes Start over the job's existing
// runtime and the rebuilt stepper finishes the run cleanly.
func TestDriverRestartResumesJob(t *testing.T) {
	s := sched.New(testCluster(4), sched.Config{})
	builds := 0
	start := func(rt *core.Runtime) (core.Stepper, error) {
		builds++
		if builds == 1 {
			return brokenStepper{err: errors.New("driver lost")}, nil
		}
		return picJob(24, 2, 1)(rt)
	}
	s.Submit(sched.JobSpec{Tenant: "t", Name: "flaky", Nodes: 4, Start: start, Restarts: 1})
	res := mustRun(t, s)[0]
	if res.State != sched.StateDone || res.Err != nil {
		t.Fatalf("job = %s (%v), want done without error", res.State, res.Err)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Restarts)
	}
	if builds != 2 {
		t.Fatalf("Start invoked %d times, want 2", builds)
	}
	if res.Steps < 2 {
		t.Fatalf("Steps = %d, want the failed step plus real iterations", res.Steps)
	}
}

// TestDriverRestartBudgetExhausted keeps failing past the restart
// budget: the job retires with the step error after using every
// restart.
func TestDriverRestartBudgetExhausted(t *testing.T) {
	s := sched.New(testCluster(4), sched.Config{})
	builds := 0
	boom := errors.New("driver keeps dying")
	start := func(rt *core.Runtime) (core.Stepper, error) {
		builds++
		return brokenStepper{err: boom}, nil
	}
	s.Submit(sched.JobSpec{Tenant: "t", Name: "doomed", Nodes: 4, Start: start, Restarts: 2})
	res := mustRun(t, s)[0]
	if res.State != sched.StateDone || !errors.Is(res.Err, boom) {
		t.Fatalf("job = %s (%v), want done with the step error", res.State, res.Err)
	}
	if res.Restarts != 2 {
		t.Fatalf("Restarts = %d, want the full budget of 2", res.Restarts)
	}
	if builds != 3 {
		t.Fatalf("Start invoked %d times, want 3 (initial + 2 restarts)", builds)
	}
}

// Package sched is a deterministic, simulated-clock workload scheduler:
// it admits many named jobs — each a full IC or PIC run from
// internal/core, or a synthetic background load — onto ONE shared
// simcluster/simnet, so concurrent jobs genuinely contend for the
// cluster the way the PIC paper's production setting implies.
//
// Jobs run on disjoint node subsets of the shared cluster, but their
// traffic meets in the one fabric: while a job executes an iteration,
// every other resident job's measured footprint is registered as a
// co-tenant load (simnet.TenantLoad + simcluster tenant compute), so
// the iteration sees only the residual capacity. The scheduler advances
// a single global simulated clock, interleaving jobs at iteration
// boundaries via core.Stepper — which is also where preemption happens:
// a preempted job finishes its current iteration, yields its nodes, and
// resumes later on the same nodes (its DFS blocks live there).
//
// Everything is deterministic: events at equal times process in
// submission order, co-tenant aggregates are summed in sorted-tenant
// order, and no wall-clock time or map-iteration order ever reaches a
// decision. The same submission set yields byte-identical metrics and
// traces at any engine parallelism.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Policy selects how queued jobs are ordered for dispatch.
type Policy string

const (
	// FIFO dispatches in submission order (with backfill: a job that
	// does not fit is skipped, not a barrier).
	FIFO Policy = "fifo"
	// FairShare orders tenants by virtual usage — accumulated
	// node-seconds divided by the tenant's weight — so light tenants
	// get in ahead of heavy ones.
	FairShare Policy = "fair"
	// Capacity is FIFO plus a per-tenant cap on nodes in use: a job
	// that would push its tenant over the cap waits.
	Capacity Policy = "capacity"
)

// Config tunes the scheduler.
type Config struct {
	// Policy defaults to FIFO.
	Policy Policy
	// MaxRunning caps concurrently running jobs (0 = unlimited).
	MaxRunning int
	// MaxQueued caps the admission queue; a job submitted while the
	// queue is full is rejected with an AdmissionError (0 = unlimited).
	MaxQueued int
	// Preemption lets a queued job with strictly higher Priority force
	// lower-priority running jobs to yield their nodes at the next
	// iteration boundary.
	Preemption bool
	// TenantWeights are FairShare weights (default 1 per tenant).
	TenantWeights map[string]float64
	// TenantNodeCap is the Capacity policy's per-tenant node budget; a
	// missing or zero entry means unlimited.
	TenantNodeCap map[string]int
	// FS configures each job's file system (zero value: dfs defaults).
	FS dfs.Config
}

// JobSpec describes one submission. Exactly one of Start and Load must
// be set: Start builds a resumable IC/PIC run over the runtime the
// scheduler provisions on the job's nodes; Load is a synthetic
// background tenant with a fixed resource footprint.
type JobSpec struct {
	// Tenant names the submitting tenant (metrics are labeled by it).
	Tenant string
	// Name labels the job within its tenant.
	Name string
	// Priority orders preemption: higher preempts lower (default 0).
	Priority int
	// Nodes is how many cluster nodes the job needs.
	Nodes int
	// Submit is when the job enters the admission queue.
	Submit simtime.Time
	// Start builds the job's stepper over a runtime bound to its node
	// subset. The callback may configure the engine (cost model, knobs)
	// before building the stepper.
	Start func(rt *core.Runtime) (core.Stepper, error)
	// Restarts is how many times a failed step is answered by
	// re-invoking Start over the job's existing runtime (same nodes,
	// same DFS — so a PIC stepper built with ResumeFromCheckpoint picks
	// up its last "-be" checkpoint) instead of retiring the job. The
	// driver-restart half of the fault story: a run a network partition
	// killed resumes from its last merged model once the fault passes.
	Restarts int
	// Load describes a synthetic background occupancy instead.
	Load *Load
}

// Load is a fixed-footprint background tenant: for Duration of
// simulated time it consumes the given capacity fractions on the nodes
// the scheduler assigns it, slowing co-resident jobs down.
type Load struct {
	// Duration is how long the load stays resident once started.
	Duration simtime.Duration
	// Compute is the per-node compute fraction consumed on its nodes.
	Compute float64
	// NodeUp and NodeDown are per-node NIC fractions on its nodes.
	NodeUp, NodeDown float64
	// RackUp and RackDown are uplink fractions on the racks its nodes
	// occupy.
	RackUp, RackDown float64
	// Core is the core bisection fraction consumed.
	Core float64
}

// State is a job's lifecycle position.
type State string

const (
	StatePending   State = "pending"   // submitted, before its Submit time
	StateQueued    State = "queued"    // admitted, waiting for nodes
	StateRunning   State = "running"   // resident on the cluster
	StateSuspended State = "suspended" // preempted at an iteration boundary
	StateDone      State = "done"      // finished (Err records a failure)
	StateRejected  State = "rejected"  // refused at admission
)

// AdmissionError is the typed rejection the scheduler records when a
// submission cannot be admitted.
type AdmissionError struct {
	Tenant, Job, Reason string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("sched: %s/%s rejected: %s", e.Tenant, e.Job, e.Reason)
}

// JobResult reports one job's outcome.
type JobResult struct {
	Tenant, Name string
	State        State
	// Err is the admission error or run error, nil on success.
	Err error
	// Submit, Start and End are global simulated times; Start is zero
	// for jobs that never dispatched.
	Submit, Start, End simtime.Time
	// Wait is time spent in the admission queue plus time suspended.
	Wait simtime.Duration
	// Busy is simulated time spent executing iterations (or resident,
	// for loads).
	Busy simtime.Duration
	// Steps counts executed iterations; Preemptions counts yields;
	// Restarts counts error-triggered driver restarts actually used.
	Steps       int
	Preemptions int
	Restarts    int
	// Nodes is the node subset the job ran on.
	Nodes []int
}

// footprint is the co-tenant occupancy one resident job imposes on the
// shared cluster while another job executes.
type footprint struct {
	net     simnet.TenantLoad
	compute map[int]float64
}

// job is the scheduler's per-submission state.
type job struct {
	spec JobSpec
	idx  int // submission order; the deterministic tie-break everywhere

	state   State
	nodes   []int
	view    *simcluster.Cluster
	rt      *core.Runtime
	stepper core.Stepper
	foot    *footprint

	// readyAt is the job's next event on the global clock: step start
	// for a running job, expiry for a load, completion when finished.
	readyAt    simtime.Time
	finished   bool
	preemptReq bool

	start, end  simtime.Time
	waitFrom    simtime.Time
	wait        simtime.Duration
	busy        simtime.Duration
	steps       int
	preemptions int
	restarts    int
	err         error
	span        int64
}

func (j *job) key() string {
	return fmt.Sprintf("%s/%s#%d", j.spec.Tenant, j.spec.Name, j.idx)
}

// maxStepsPerJob is a runaway guard: a stepper that keeps reporting
// not-done without consuming simulated time would otherwise spin the
// event loop forever.
const maxStepsPerJob = 1 << 20

// Scheduler multiplexes submitted jobs onto one shared cluster.
type Scheduler struct {
	cfg     Config
	cluster *simcluster.Cluster
	obs     *metrics.Registry
	tracer  *trace.Tracer

	jobs []*job
	free []int // sorted free global node ids
	now  simtime.Time
	// tenantUsage is FairShare's accumulator: node-seconds consumed.
	tenantUsage map[string]float64
}

// New builds a scheduler over the full-cluster view. Jobs are submitted
// with Submit and executed by Run.
func New(cluster *simcluster.Cluster, cfg Config) *Scheduler {
	if cfg.Policy == "" {
		cfg.Policy = FIFO
	}
	if cfg.FS == (dfs.Config{}) {
		cfg.FS = dfs.DefaultConfig()
	}
	return &Scheduler{
		cfg:         cfg,
		cluster:     cluster,
		free:        append([]int(nil), cluster.Nodes()...),
		tenantUsage: map[string]float64{},
	}
}

// SetObservability attaches a metrics registry for per-tenant counters
// and queue series. A nil registry records nothing.
func (s *Scheduler) SetObservability(r *metrics.Registry) { s.obs = r }

// Observability returns the attached registry.
func (s *Scheduler) Observability() *metrics.Registry { return s.obs }

// SetTracer attaches a tracer; scheduler spans and every job's internal
// timeline land on it, stamped on the global clock.
func (s *Scheduler) SetTracer(t *trace.Tracer) { s.tracer = t }

// Tracer returns the attached tracer.
func (s *Scheduler) Tracer() *trace.Tracer { return s.tracer }

// Submit registers a job for admission at spec.Submit. It panics on a
// spec that is structurally unusable (no Start and no Load, or both);
// resource-level rejections are reported through JobResult instead.
func (s *Scheduler) Submit(spec JobSpec) {
	if (spec.Start == nil) == (spec.Load == nil) {
		panic("sched: JobSpec needs exactly one of Start and Load")
	}
	if spec.Load != nil {
		if spec.Load.Duration <= 0 {
			panic("sched: Load.Duration must be positive")
		}
		for _, v := range []float64{spec.Load.Compute, spec.Load.NodeUp, spec.Load.NodeDown,
			spec.Load.RackUp, spec.Load.RackDown, spec.Load.Core} {
			if v != v || v < 0 || v > 1 {
				panic(fmt.Sprintf("sched: load fraction %g outside [0, 1]", v))
			}
		}
	}
	s.jobs = append(s.jobs, &job{spec: spec, idx: len(s.jobs), state: StatePending})
}

// tenantCounter returns the named counter labeled with the job's tenant.
func (s *Scheduler) tenantCounter(name, tenant string) metrics.Counter {
	return s.obs.Counter(name, metrics.L("tenant", tenant)...)
}

// Run executes every submitted job to completion (or rejection) and
// returns the results in submission order. It errors only when the
// workload can make no further progress — a configuration bug, since
// unsatisfiable submissions are rejected at admission.
func (s *Scheduler) Run() ([]JobResult, error) {
	for {
		t, any := s.nextEvent()
		if !any {
			break
		}
		s.now = t
		s.admitAt(t)
		s.settleAt(t)
		if err := s.stepAt(t); err != nil {
			return nil, err
		}
		s.dispatchAt(t)
		s.sample(t)
	}
	s.cluster.Fabric().ClearAllTenantLoads()
	s.cluster.ClearAllTenantCompute()
	for _, j := range s.jobs {
		if j.state != StateDone && j.state != StateRejected {
			return nil, fmt.Errorf("sched: stalled with %s in state %s", j.key(), j.state)
		}
	}
	if s.obs != nil {
		s.obs.Gauge("sched.makespan_seconds").Set(float64(s.now))
	}
	results := make([]JobResult, len(s.jobs))
	for i, j := range s.jobs {
		results[i] = JobResult{
			Tenant: j.spec.Tenant, Name: j.spec.Name, State: j.state, Err: j.err,
			Submit: j.spec.Submit, Start: j.start, End: j.end,
			Wait: j.wait, Busy: j.busy, Steps: j.steps, Preemptions: j.preemptions,
			Restarts: j.restarts, Nodes: j.nodes,
		}
	}
	return results, nil
}

// nextEvent finds the earliest pending global time: a submission, or a
// running job's readyAt.
func (s *Scheduler) nextEvent() (simtime.Time, bool) {
	var t simtime.Time
	any := false
	consider := func(c simtime.Time) {
		if !any || c < t {
			t, any = c, true
		}
	}
	for _, j := range s.jobs {
		switch j.state {
		case StatePending:
			consider(j.spec.Submit)
		case StateRunning:
			consider(j.readyAt)
		}
	}
	return t, any
}

// admitAt moves jobs whose Submit time has arrived into the queue,
// rejecting unsatisfiable or over-quota submissions.
func (s *Scheduler) admitAt(t simtime.Time) {
	for _, j := range s.jobs {
		if j.state != StatePending || j.spec.Submit > t {
			continue
		}
		if s.obs != nil {
			s.tenantCounter("sched.jobs_submitted", j.spec.Tenant).Add(1)
		}
		if reason := s.admissible(j); reason != "" {
			j.state = StateRejected
			j.err = &AdmissionError{Tenant: j.spec.Tenant, Job: j.spec.Name, Reason: reason}
			j.end = t
			if s.obs != nil {
				s.tenantCounter("sched.jobs_rejected", j.spec.Tenant).Add(1)
			}
			continue
		}
		j.state = StateQueued
		j.waitFrom = t
	}
}

// admissible screens a submission, returning a rejection reason or "".
func (s *Scheduler) admissible(j *job) string {
	if j.spec.Nodes < 1 {
		return "requests no nodes"
	}
	if j.spec.Nodes > s.cluster.Size() {
		return fmt.Sprintf("requests %d nodes, cluster has %d", j.spec.Nodes, s.cluster.Size())
	}
	if cap := s.cfg.TenantNodeCap[j.spec.Tenant]; s.cfg.Policy == Capacity && cap > 0 && j.spec.Nodes > cap {
		return fmt.Sprintf("requests %d nodes, tenant capacity is %d", j.spec.Nodes, cap)
	}
	if s.cfg.MaxQueued > 0 {
		queued := 0
		for _, o := range s.jobs {
			if o.state == StateQueued {
				queued++
			}
		}
		if queued >= s.cfg.MaxQueued {
			return fmt.Sprintf("admission queue full (%d queued)", queued)
		}
	}
	return ""
}

// settleAt processes iteration boundaries that land at t: jobs whose
// run finished complete, and jobs marked for preemption yield.
func (s *Scheduler) settleAt(t simtime.Time) {
	for _, j := range s.jobs {
		if j.state != StateRunning || j.readyAt != t {
			continue
		}
		switch {
		case j.finished:
			s.complete(j, t)
		case j.preemptReq:
			s.suspend(j, t)
		}
	}
}

// stepAt executes one iteration for every running job due at t, in
// submission order.
func (s *Scheduler) stepAt(t simtime.Time) error {
	for _, j := range s.jobs {
		if j.state != StateRunning || j.readyAt != t || j.finished || j.spec.Load != nil {
			continue
		}
		if err := s.step(j, t); err != nil {
			return err
		}
	}
	return nil
}

// step runs one iteration of j with every other resident job's
// footprint registered as co-tenant load.
func (s *Scheduler) step(j *job, t simtime.Time) error {
	if j.steps >= maxStepsPerJob {
		return fmt.Errorf("sched: %s exceeded %d steps without finishing", j.key(), maxStepsPerJob)
	}
	s.applyLoads(j)
	j.rt.SetTimeOrigin(t)

	fabric := s.cluster.Fabric()
	utilBefore := fabric.Utilization()
	usageBefore := s.cluster.Usage()
	elapsedBefore := j.rt.Elapsed()

	done, err := j.stepper.Step()
	d := j.rt.Elapsed() - elapsedBefore
	j.busy += d
	j.steps++
	s.tenantUsage[j.spec.Tenant] += float64(d) * float64(len(j.nodes))
	j.readyAt = t + simtime.Time(d)
	if err != nil {
		// Driver restart: rebuild the stepper over the same runtime —
		// same nodes, same DFS, same clock — so checkpointed state
		// survives. The rebuilt stepper re-enters the event loop at the
		// failed step's boundary time.
		if j.restarts < j.spec.Restarts {
			j.restarts++
			// The restarted driver must not trust caches warmed by the
			// failed run: release them so the rebuilt stepper re-stages
			// from the (checkpointed) source of truth.
			j.rt.ReleaseLoopCache()
			stepper, rerr := j.spec.Start(j.rt)
			if rerr == nil {
				j.stepper = stepper
				if s.obs != nil {
					s.tenantCounter("sched.restarts", j.spec.Tenant).Add(1)
				}
				s.tracer.Record(trace.Event{
					Kind: trace.KindCheckpoint, Name: j.key() + ": driver restarted",
					Start: j.readyAt, End: j.readyAt,
				})
				return nil
			}
			err = fmt.Errorf("sched: %s restart: %w", j.key(), rerr)
		}
		j.err = err
		j.finished = true
		return nil
	}
	if d > 0 {
		j.foot = measureFootprint(utilBefore, fabric.Utilization(), usageBefore, s.cluster.Usage(),
			j.nodes, s.cluster.Config(), d)
	}
	if done {
		j.finished = true
	}
	return nil
}

// applyLoads registers the footprints of every resident job except j as
// co-tenant loads on the shared fabric and cluster, replacing any
// previous registration. Jobs are applied in submission order; the
// fabric re-sums per sorted tenant key, so the aggregate is independent
// of this order anyway.
func (s *Scheduler) applyLoads(j *job) {
	fabric := s.cluster.Fabric()
	fabric.ClearAllTenantLoads()
	s.cluster.ClearAllTenantCompute()
	for _, o := range s.jobs {
		if o == j || o.state != StateRunning || o.foot == nil {
			continue
		}
		fabric.SetTenantLoad(o.key(), o.foot.net)
		s.cluster.SetTenantCompute(o.key(), o.foot.compute)
	}
}

// measureFootprint converts the utilization a job's iteration added to
// the shared accumulators into sustained capacity fractions: busy
// seconds over the iteration's duration, clamped to [0, 1]. This is the
// occupancy co-resident jobs will see while this job runs its next
// iteration.
func measureFootprint(utilBefore, utilAfter simnet.Utilization,
	usageBefore, usageAfter simcluster.Usage,
	nodes []int, cfg simcluster.Config, d simtime.Duration) *footprint {
	share := func(busyAfter, busyBefore simtime.Duration) float64 {
		v := float64(busyAfter-busyBefore) / float64(d)
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	f := &footprint{
		net: simnet.TenantLoad{
			NodeUp:   map[int]float64{},
			NodeDown: map[int]float64{},
			RackUp:   map[int]float64{},
			RackDown: map[int]float64{},
		},
		compute: map[int]float64{},
	}
	racks := map[int]bool{}
	for _, n := range nodes {
		if v := share(utilAfter.NodeUp[n], utilBefore.NodeUp[n]); v > 0 {
			f.net.NodeUp[n] = v
		}
		if v := share(utilAfter.NodeDown[n], utilBefore.NodeDown[n]); v > 0 {
			f.net.NodeDown[n] = v
		}
		// A node's slots all running for the whole iteration is full
		// occupancy; slot busy time is per-slot, so normalize by the
		// map slot count.
		slotBusy := usageAfter.SlotBusy[n] - usageBefore.SlotBusy[n]
		if v := float64(slotBusy) / (float64(d) * float64(cfg.MapSlotsPerNode)); v > 0 {
			if v > 1 {
				v = 1
			}
			f.compute[n] = v
		}
		racks[n/cfg.RackSize] = true
	}
	rackIDs := make([]int, 0, len(racks))
	for r := range racks {
		rackIDs = append(rackIDs, r)
	}
	sort.Ints(rackIDs)
	for _, r := range rackIDs {
		if v := share(utilAfter.RackUp[r], utilBefore.RackUp[r]); v > 0 {
			f.net.RackUp[r] = v
		}
		if v := share(utilAfter.RackDown[r], utilBefore.RackDown[r]); v > 0 {
			f.net.RackDown[r] = v
		}
	}
	f.net.Core = share(utilAfter.Core, utilBefore.Core)
	return f
}

// loadFootprint builds the fixed footprint of a synthetic Load on its
// assigned nodes.
func loadFootprint(l *Load, nodes []int, rackSize int) *footprint {
	f := &footprint{
		net: simnet.TenantLoad{
			NodeUp:   map[int]float64{},
			NodeDown: map[int]float64{},
			RackUp:   map[int]float64{},
			RackDown: map[int]float64{},
			Core:     l.Core,
		},
		compute: map[int]float64{},
	}
	for _, n := range nodes {
		if l.NodeUp > 0 {
			f.net.NodeUp[n] = l.NodeUp
		}
		if l.NodeDown > 0 {
			f.net.NodeDown[n] = l.NodeDown
		}
		if l.Compute > 0 {
			f.compute[n] = l.Compute
		}
		r := n / rackSize
		if l.RackUp > 0 {
			f.net.RackUp[r] = l.RackUp
		}
		if l.RackDown > 0 {
			f.net.RackDown[r] = l.RackDown
		}
	}
	return f
}

// dispatchAt starts as much queued and suspended work as fits, looping
// until nothing more can start. Queued jobs dispatch first (in policy
// order), then suspended jobs resume: a preempted job must not reclaim
// its nodes ahead of the higher-priority work that displaced it. A
// suspended job resumes only onto its original node subset — its DFS
// blocks and partition data live there.
func (s *Scheduler) dispatchAt(t simtime.Time) {
	for progress := true; progress; {
		progress = false
		for _, j := range s.queuedInPolicyOrder() {
			if !s.canRun() {
				break
			}
			if !s.capacityOK(j) {
				continue
			}
			nodes := s.allocate(j.spec.Nodes)
			if nodes == nil {
				if s.cfg.Preemption {
					s.requestPreemption(j)
				}
				continue
			}
			s.dispatch(j, nodes, t)
			progress = true
		}
		for _, j := range s.jobs {
			if j.state == StateSuspended && s.canRun() && s.capacityOK(j) && s.nodesFree(j.nodes) {
				s.take(j.nodes)
				s.resume(j, t)
				progress = true
			}
		}
	}
}

// canRun checks the MaxRunning cap.
func (s *Scheduler) canRun() bool {
	if s.cfg.MaxRunning <= 0 {
		return true
	}
	running := 0
	for _, j := range s.jobs {
		if j.state == StateRunning {
			running++
		}
	}
	return running < s.cfg.MaxRunning
}

// capacityOK checks the Capacity policy's per-tenant node budget.
func (s *Scheduler) capacityOK(j *job) bool {
	if s.cfg.Policy != Capacity {
		return true
	}
	cap := s.cfg.TenantNodeCap[j.spec.Tenant]
	if cap <= 0 {
		return true
	}
	inUse := 0
	for _, o := range s.jobs {
		if o.state == StateRunning && o.spec.Tenant == j.spec.Tenant {
			inUse += len(o.nodes)
		}
	}
	return inUse+j.spec.Nodes <= cap
}

// queuedInPolicyOrder lists queued jobs in the order the policy wants
// them considered for dispatch.
func (s *Scheduler) queuedInPolicyOrder() []*job {
	var queued []*job
	for _, j := range s.jobs {
		if j.state == StateQueued {
			queued = append(queued, j)
		}
	}
	if s.cfg.Policy == FairShare {
		sort.SliceStable(queued, func(a, b int) bool {
			ua := s.virtualUsage(queued[a].spec.Tenant)
			ub := s.virtualUsage(queued[b].spec.Tenant)
			if ua != ub {
				return ua < ub
			}
			return queued[a].idx < queued[b].idx
		})
	}
	return queued
}

// virtualUsage is a tenant's accumulated node-seconds over its weight.
func (s *Scheduler) virtualUsage(tenant string) float64 {
	w := 1.0
	if v, ok := s.cfg.TenantWeights[tenant]; ok && v > 0 {
		w = v
	}
	return s.tenantUsage[tenant] / w
}

// allocate takes the n lowest free node ids, or nil if fewer are free.
func (s *Scheduler) allocate(n int) []int {
	if len(s.free) < n {
		return nil
	}
	nodes := append([]int(nil), s.free[:n]...)
	s.free = s.free[n:]
	return nodes
}

// take removes specific node ids from the free list; the caller has
// verified they are free.
func (s *Scheduler) take(nodes []int) {
	kept := s.free[:0]
	for _, f := range s.free {
		held := false
		for _, n := range nodes {
			if f == n {
				held = true
				break
			}
		}
		if !held {
			kept = append(kept, f)
		}
	}
	s.free = kept
}

// release returns node ids to the free list.
func (s *Scheduler) release(nodes []int) {
	s.free = append(s.free, nodes...)
	sort.Ints(s.free)
}

// nodesFree reports whether every listed node is currently free.
func (s *Scheduler) nodesFree(nodes []int) bool {
	for _, n := range nodes {
		i := sort.SearchInts(s.free, n)
		if i >= len(s.free) || s.free[i] != n {
			return false
		}
	}
	return true
}

// requestPreemption marks the lowest-priority running victims so the
// queued job can fit once they yield at their next iteration boundary.
// Synthetic loads are not preemptible (they model demand outside the
// scheduler's control) and suspended jobs hold no nodes.
func (s *Scheduler) requestPreemption(j *job) {
	var victims []*job
	for _, o := range s.jobs {
		if o.state == StateRunning && !o.preemptReq && o.spec.Load == nil &&
			o.spec.Priority < j.spec.Priority && !o.finished {
			victims = append(victims, o)
		}
	}
	// Lowest priority yields first; among equals the youngest goes.
	sort.SliceStable(victims, func(a, b int) bool {
		if victims[a].spec.Priority != victims[b].spec.Priority {
			return victims[a].spec.Priority < victims[b].spec.Priority
		}
		return victims[a].idx > victims[b].idx
	})
	need := j.spec.Nodes - len(s.free)
	for _, v := range s.jobs { // count nodes already yielding
		if v.state == StateRunning && v.preemptReq {
			need -= len(v.nodes)
		}
	}
	for _, v := range victims {
		if need <= 0 {
			return
		}
		v.preemptReq = true
		need -= len(v.nodes)
	}
}

// dispatch starts a queued job on freshly allocated nodes.
func (s *Scheduler) dispatch(j *job, nodes []int, t simtime.Time) {
	j.nodes = nodes
	j.view = s.cluster.Subset(nodes)
	j.state = StateRunning
	j.start = t
	j.readyAt = t
	s.chargeWait(j, t)
	j.span = s.tracer.NextID()
	if j.spec.Load != nil {
		j.foot = loadFootprint(j.spec.Load, nodes, s.cluster.Config().RackSize)
		j.readyAt = t + simtime.Time(j.spec.Load.Duration)
		j.busy = j.spec.Load.Duration
		s.tenantUsage[j.spec.Tenant] += float64(j.spec.Load.Duration) * float64(len(nodes))
		j.finished = true
		return
	}
	rt := core.NewRuntime(j.view, s.cfg.FS)
	rt.SetTracer(s.tracer)
	rt.SetObservability(s.obs)
	rt.SetLane(j.idx + 1)
	rt.SetTimeOrigin(t)
	j.rt = rt
	stepper, err := j.spec.Start(rt)
	if err != nil {
		j.err = fmt.Errorf("sched: %s start: %w", j.key(), err)
		j.finished = true
		return
	}
	j.stepper = stepper
}

// resume returns a suspended job to the cluster on its original nodes.
func (s *Scheduler) resume(j *job, t simtime.Time) {
	j.state = StateRunning
	j.readyAt = t
	s.chargeWait(j, t)
}

// chargeWait accounts the queue or suspension wait ending at t and
// records it on the timeline.
func (s *Scheduler) chargeWait(j *job, t simtime.Time) {
	if d := t - j.waitFrom; d > 0 {
		j.wait += simtime.Duration(d)
		if s.obs != nil {
			s.tenantCounter("sched.wait_seconds", j.spec.Tenant).Add(float64(d))
		}
		s.tracer.Record(trace.Event{
			Kind: trace.KindSchedWait, Name: j.key(),
			Start: j.waitFrom, End: t,
			Attrs: []trace.Attr{{Key: "tenant", Value: j.spec.Tenant}},
		})
	}
}

// suspend parks a running job at an iteration boundary, freeing its
// nodes for the preemptor. The job's loop-aware caches are released
// with the nodes — a preemptor gets the workers' memory too — and
// re-warm on first touch after resume (resume itself reattaches the
// family without re-staging anything).
func (s *Scheduler) suspend(j *job, t simtime.Time) {
	j.state = StateSuspended
	j.preemptReq = false
	j.preemptions++
	j.waitFrom = t
	j.foot = nil
	j.rt.ReleaseLoopCache()
	s.release(j.nodes)
	if s.obs != nil {
		s.tenantCounter("sched.preemptions", j.spec.Tenant).Add(1)
	}
	s.tracer.Record(trace.Event{
		Kind: trace.KindSchedPreempt, Name: j.key(),
		Start: t, End: t,
		Attrs: []trace.Attr{{Key: "tenant", Value: j.spec.Tenant}},
	})
}

// complete retires a finished job at t.
func (s *Scheduler) complete(j *job, t simtime.Time) {
	j.state = StateDone
	j.end = t
	j.foot = nil
	s.release(j.nodes)
	if s.obs != nil {
		s.tenantCounter("sched.jobs_completed", j.spec.Tenant).Add(1)
		s.tenantCounter("sched.busy_seconds", j.spec.Tenant).Add(float64(j.busy))
	}
	s.tracer.Record(trace.Event{
		Kind: trace.KindSchedJob, Name: j.key(),
		Start: j.start, End: t, ID: j.span,
		Attrs: []trace.Attr{{Key: "tenant", Value: j.spec.Tenant}},
	})
}

// sample records the queue and residency depth at t.
func (s *Scheduler) sample(t simtime.Time) {
	if s.obs == nil {
		return
	}
	queued, running := 0, 0
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	s.obs.Series("sched.queue_depth").Sample(t, float64(queued))
	s.obs.Series("sched.running").Sample(t, float64(running))
}

package sched_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// mixedWorkload submits a multi-tenant mix — IC jobs, a PIC job, a
// background load, staggered arrivals, preemption pressure — to a fresh
// scheduler, with every job's engine pinned to the given real
// parallelism. It is the shared fixture of the determinism and chaos
// tests: simulated outcomes must not depend on workers.
func mixedWorkload(workers int) *sched.Scheduler {
	s := sched.New(testCluster(8), sched.Config{
		Policy:        sched.FairShare,
		Preemption:    true,
		TenantWeights: map[string]float64{"prod": 4, "batch": 1},
	})
	s.Submit(sched.JobSpec{Tenant: "batch", Name: "ic-long", Nodes: 6, Start: icJob(36, workers)})
	s.Submit(sched.JobSpec{Tenant: "batch", Name: "pic", Nodes: 8, Submit: 0.2, Start: picJob(48, 4, workers)})
	s.Submit(sched.JobSpec{Tenant: "prod", Name: "ic-hot", Priority: 10, Nodes: 4, Submit: 0.5,
		Start: icJob(16, workers)})
	s.Submit(sched.JobSpec{Tenant: "svc", Name: "noise", Nodes: 2, Submit: 0.1,
		Load: &sched.Load{Duration: 30, Compute: 0.5, NodeUp: 0.4, NodeDown: 0.4, Core: 0.3}})
	s.Submit(sched.JobSpec{Tenant: "prod", Name: "ic-tail", Priority: 10, Nodes: 3, Submit: 2,
		Start: icJob(12, workers)})
	return s
}

// runMixed executes the fixture and returns its comparable artifacts:
// the job results, the metrics snapshot text, and the trace render.
func runMixed(t *testing.T, workers int) ([]sched.JobResult, string, string) {
	t.Helper()
	s := mixedWorkload(workers)
	reg := metrics.New()
	tr := trace.New()
	s.SetObservability(reg)
	s.SetTracer(tr)
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return results, reg.Snapshot().Text(), tr.Render()
}

// TestSchedulerDeterministicAcrossWorkers mirrors the repo's standing
// byte-identical guarantee: the same submissions produce identical
// per-tenant outcomes, metrics and traces whether the engines execute
// with 1 or 8 real workers (the simulated cluster is unchanged either
// way). CI runs this under -race as well.
func TestSchedulerDeterministicAcrossWorkers(t *testing.T) {
	res1, snap1, trace1 := runMixed(t, 1)
	res8, snap8, trace8 := runMixed(t, 8)
	if !reflect.DeepEqual(res1, res8) {
		t.Fatalf("job results differ across workers:\n1: %#v\n8: %#v", res1, res8)
	}
	if snap1 != snap8 {
		t.Fatalf("metrics snapshots differ across workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", snap1, snap8)
	}
	if trace1 != trace8 {
		t.Fatalf("traces differ across workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", trace1, trace8)
	}
}

// TestSchedulerDeterministicAcrossRuns re-runs the identical workload
// and demands byte-identical artifacts — no wall-clock time, map
// iteration order or allocation address may leak into scheduling.
func TestSchedulerDeterministicAcrossRuns(t *testing.T) {
	resA, snapA, traceA := runMixed(t, 4)
	resB, snapB, traceB := runMixed(t, 4)
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("job results differ across runs:\nA: %#v\nB: %#v", resA, resB)
	}
	if snapA != snapB || traceA != traceB {
		t.Fatal("metrics or trace artifacts differ across identical runs")
	}
}

// TestSchedulerChaos floods the scheduler with a larger adversarial mix
// — every policy feature at once, capacity-scale contention, repeated
// preemption — and requires that everything drains deterministically.
// CI runs this (and the determinism tests) under the race detector.
func TestSchedulerChaos(t *testing.T) {
	run := func() ([]sched.JobResult, string) {
		s := sched.New(testCluster(8), sched.Config{
			Policy:        sched.FairShare,
			Preemption:    true,
			MaxRunning:    3,
			MaxQueued:     12,
			TenantWeights: map[string]float64{"t0": 1, "t1": 2, "t2": 3},
		})
		reg := metrics.New()
		s.SetObservability(reg)
		s.SetTracer(trace.New())
		for i := 0; i < 12; i++ {
			tenant := fmt.Sprintf("t%d", i%3)
			switch i % 4 {
			case 0:
				s.Submit(sched.JobSpec{Tenant: tenant, Name: fmt.Sprintf("ic-%d", i),
					Priority: i % 3, Nodes: 2 + i%3, Submit: simtime.Time(i) * 0.3,
					Start: icJob(12+4*(i%3), 1+i%2)})
			case 1:
				s.Submit(sched.JobSpec{Tenant: tenant, Name: fmt.Sprintf("pic-%d", i),
					Priority: i % 2, Nodes: 4, Submit: simtime.Time(i) * 0.3,
					Start: picJob(24, 2, 1+i%2)})
			case 2:
				s.Submit(sched.JobSpec{Tenant: tenant, Name: fmt.Sprintf("load-%d", i),
					Nodes: 1 + i%2, Submit: simtime.Time(i) * 0.3,
					Load: &sched.Load{Duration: 5 + simtime.Duration(i), Compute: 0.3, NodeUp: 0.2,
						NodeDown: 0.2, Core: 0.2}})
			case 3:
				s.Submit(sched.JobSpec{Tenant: tenant, Name: fmt.Sprintf("hot-%d", i),
					Priority: 10, Nodes: 3, Submit: simtime.Time(i) * 0.3,
					Start: icJob(8, 1)})
			}
		}
		results, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return results, reg.Snapshot().Text()
	}
	resA, snapA := run()
	resB, snapB := run()
	for i, r := range resA {
		if r.State != sched.StateDone && r.State != sched.StateRejected {
			t.Fatalf("job %d (%s/%s) stuck in state %s", i, r.Tenant, r.Name, r.State)
		}
		if r.State == sched.StateDone && r.Err != nil {
			t.Fatalf("job %d (%s/%s) failed: %v", i, r.Tenant, r.Name, r.Err)
		}
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("chaos results differ across runs:\nA: %#v\nB: %#v", resA, resB)
	}
	if snapA != snapB {
		t.Fatal("chaos metrics snapshots differ across runs")
	}
}

package mapred

import (
	"errors"
	"reflect"
	"testing"
)

// TestEngineConfigValidation drives every rejected knob value through
// both execution paths (the framework run and the in-memory local run)
// and checks that the typed error names the offending field.
func TestEngineConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		field  string
		mutate func(e *Engine)
	}{
		{"model home outside view", "ModelHome",
			func(e *Engine) { e.ModelHome = 99 }},
		{"negative model home", "ModelHome",
			func(e *Engine) { e.ModelHome = -1 }},
		{"no model sources", "ModelSources",
			func(e *Engine) { e.ModelSources = 0 }},
		{"negative fail period", "FailEveryNthMapTask",
			func(e *Engine) { e.FailEveryNthMapTask = -3 }},
		{"negative straggle period", "StraggleEveryNthMapTask",
			func(e *Engine) { e.StraggleEveryNthMapTask = -1 }},
		{"negative straggler slowdown", "StragglerSlowdown",
			func(e *Engine) { e.StragglerSlowdown = -2 }},
		{"straggler speedup", "StragglerSlowdown",
			func(e *Engine) { e.StraggleEveryNthMapTask = 2; e.StragglerSlowdown = 0.5 }},
		{"negative workers", "Workers",
			func(e *Engine) { e.Workers = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testCluster()
			in := textInput(c, "a b", "c")
			job := wordCountJob(false)

			check := func(what string, err error) {
				t.Helper()
				var cfgErr *ConfigError
				if !errors.As(err, &cfgErr) {
					t.Fatalf("%s: err = %v, want *ConfigError", what, err)
				}
				if cfgErr.Field != tc.field {
					t.Fatalf("%s: ConfigError.Field = %q, want %q (%v)", what, cfgErr.Field, tc.field, err)
				}
			}

			e := NewEngine(c)
			tc.mutate(e)
			_, _, err := e.Run(job, in, nil)
			check("Run", err)

			e = NewEngine(c)
			tc.mutate(e)
			_, _, err = e.RunLocal(job, in, nil)
			check("RunLocal", err)
		})
	}
}

// TestEngineConfigAcceptsEdgeValues pins the boundary of the valid
// range: zero periods disable injection, a 1x "slowdown" is legal (and
// pointless), and larger slowdowns pass through unchanged.
func TestEngineConfigAcceptsEdgeValues(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	e.StraggleEveryNthMapTask = 2
	e.StragglerSlowdown = 1
	if _, _, err := e.Run(wordCountJob(false), textInput(c, "a b", "c"), nil); err != nil {
		t.Fatalf("edge-valid config rejected: %v", err)
	}
}

// distinctMetrics fills every Metrics field with a distinct non-zero
// value via reflection, so the Add/Sub round-trip below exercises a
// newly added field automatically — and fails loudly on a field kind
// the fill (and therefore Add and Sub) does not know how to handle.
func distinctMetrics(t *testing.T, seed int64) Metrics {
	t.Helper()
	var m Metrics
	v := reflect.ValueOf(&m).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		val := seed + int64(i) + 1
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(val)
		case reflect.Float64:
			f.SetFloat(float64(val))
		default:
			t.Fatalf("Metrics.%s has kind %s: teach Add, Sub and this test about it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return m
}

// driftedFields names the fields on which two Metrics values disagree.
func driftedFields(a, b Metrics) []string {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	var fields []string
	for i := 0; i < va.NumField(); i++ {
		if !va.Field(i).Equal(vb.Field(i)) {
			fields = append(fields, va.Type().Field(i).Name)
		}
	}
	return fields
}

// TestMetricsAddSubRoundTrip enforces that Add and Sub cover every
// Metrics field: accumulating a fully-populated value and subtracting
// it back must be the identity. A field added to the struct but
// forgotten in either method shows up by name in the failure.
func TestMetricsAddSubRoundTrip(t *testing.T) {
	a := distinctMetrics(t, 100)
	b := distinctMetrics(t, 2000)

	var sum Metrics
	sum.Add(a)
	if drift := driftedFields(sum, a); len(drift) > 0 {
		t.Fatalf("Add misses fields %v", drift)
	}
	sum.Add(b)
	if got := sum.Sub(b); !reflect.DeepEqual(got, a) {
		t.Fatalf("Add/Sub round-trip drifts on fields %v", driftedFields(got, a))
	}
	if got := sum.Sub(a).Sub(b); got != (Metrics{}) {
		t.Fatalf("subtracting everything leaves residue on fields %v", driftedFields(got, Metrics{}))
	}
}

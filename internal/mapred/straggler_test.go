package mapred

import "testing"

func TestStragglersSlowTheJob(t *testing.T) {
	c := testCluster()
	in := textInput(c, "a", "b", "c", "d", "e", "f", "g", "h")

	clean := NewEngine(c)
	_, base, err := clean.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}

	slow := NewEngine(c)
	slow.StraggleEveryNthMapTask = 4
	_, straggled, err := slow.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if straggled.StragglerTasks == 0 {
		t.Fatal("no stragglers injected")
	}
	if straggled.MapPhase <= base.MapPhase {
		t.Fatalf("stragglers did not slow the map phase: %v vs %v",
			straggled.MapPhase, base.MapPhase)
	}
}

func TestSpeculativeExecutionRescuesStragglers(t *testing.T) {
	c := testCluster()
	in := textInput(c, "a", "b", "c", "d", "e", "f", "g", "h")

	run := func(speculative bool) Metrics {
		e := NewEngine(c)
		e.StraggleEveryNthMapTask = 4
		e.StragglerSlowdown = 8
		e.SpeculativeExecution = speculative
		_, m, err := e.Run(wordCountJob(true), in, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	without := run(false)
	with := run(true)
	if with.SpeculativeTasks == 0 {
		t.Fatal("no speculative tasks recorded")
	}
	if with.MapPhase >= without.MapPhase {
		t.Fatalf("speculation did not help: %v vs %v", with.MapPhase, without.MapPhase)
	}
}

func TestSpeculationPreservesResults(t *testing.T) {
	c := testCluster()
	in := textInput(c, "x y x", "y z", "x z z")
	clean := NewEngine(c)
	want, _, err := clean.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c)
	e.StraggleEveryNthMapTask = 2
	e.SpeculativeExecution = true
	got, _, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	wc, gc := countsFromOutput(want), countsFromOutput(got)
	for k, v := range wc {
		if gc[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, gc[k], v)
		}
	}
}

func TestDefaultSlowdownApplied(t *testing.T) {
	c := testCluster()
	in := textInput(c, "a", "b")
	e := NewEngine(c)
	e.StraggleEveryNthMapTask = 1 // every task straggles, slowdown default 4
	_, m, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := NewEngine(c)
	_, base, err := clean.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(m.MapPhase) / float64(base.MapPhase)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("default slowdown ratio = %v, want ≈4", ratio)
	}
}

func TestFairSharingNetworkIsNeverFaster(t *testing.T) {
	c := testCluster()
	lines := make([]string, 8)
	for i := range lines {
		lines[i] = "a b c d e f g h i j k l m n o p"
	}
	in := textInput(c, lines...)

	bottleneck := NewEngine(c)
	_, base, err := bottleneck.Run(wordCountJob(false), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	fair := NewEngine(c)
	fair.FairSharingNetwork = true
	out, shared, err := fair.Run(wordCountJob(false), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if float64(shared.ShufflePhase) < float64(base.ShufflePhase)*(1-1e-9) {
		t.Fatalf("fair sharing shuffled faster than the bottleneck bound: %v vs %v",
			shared.ShufflePhase, base.ShufflePhase)
	}
	// Byte counters are independent of the timing model.
	if shared.ShuffleNetworkBytes != base.ShuffleNetworkBytes {
		t.Fatalf("network model changed byte counters: %d vs %d",
			shared.ShuffleNetworkBytes, base.ShuffleNetworkBytes)
	}
	if len(out.Records) == 0 {
		t.Fatal("no output")
	}
}

package mapred

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/simcluster"
	"repro/internal/simtime"
	"repro/internal/writable"
)

// chaosCluster builds the shared 4-node test cluster with a failure
// plan registered before any engine sees it.
func chaosCluster(plan *simcluster.FailurePlan) *simcluster.Cluster {
	c := testCluster()
	c.SetFailurePlan(plan)
	return c
}

// chaosInput builds a word-count input large enough that every node has
// tasks in flight for a while: 16 splits over 8 map slots, ~50 records
// each.
func chaosInput(c *simcluster.Cluster) *Input {
	recs := make([]Record, 800)
	for i := range recs {
		recs[i] = Record{Key: fmt.Sprintf("line%d", i), Value: writable.Text(fmt.Sprintf("w%d w%d common", i%7, i%13))}
	}
	return NewInput(recs, c, 16)
}

// TestChaosCrashesPreserveOutput crashes a node at several points of a
// job's life — before it starts, mid-map-wave, mid-reduce-wave — and
// checks the job still produces exactly the healthy run's output, with
// mid-wave crashes observable as rescheduled tasks.
func TestChaosCrashesPreserveOutput(t *testing.T) {
	healthyC := testCluster()
	healthyE := NewEngine(healthyC)
	healthyOut, healthy, err := healthyE.Run(wordCountJob(false), chaosInput(healthyC), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := countsFromOutput(healthyOut)

	cases := []struct {
		name           string
		crashAt        simtime.Duration
		wantReschedule bool
	}{
		{"at-job-start", 0, false},
		{"mid-map", healthy.OverheadPhase + healthy.ModelPhase + healthy.MapPhase/2, true},
		// Early in the reduce wave, while every reducer (including the
		// cheap ones) is still in flight.
		{"mid-reduce", healthy.OverheadPhase + healthy.ModelPhase + healthy.MapPhase +
			healthy.ReducePhase/8, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
				{Node: 1, Time: simtime.Time(tc.crashAt)},
			}}
			c := chaosCluster(plan)
			out, m, err := NewEngine(c).RunAt(wordCountJob(false), chaosInput(c), nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := countsFromOutput(out)
			if len(got) != len(want) {
				t.Fatalf("distinct keys differ: %d vs %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("count[%q] = %d after crash, want %d", k, got[k], v)
				}
			}
			if tc.wantReschedule && m.RescheduledTasks == 0 {
				t.Fatalf("%s crash killed no in-flight tasks: %+v", tc.name, m)
			}
			if !tc.wantReschedule && m.RescheduledTasks != 0 {
				t.Fatalf("pre-start crash rescheduled %d tasks", m.RescheduledTasks)
			}
			if m.Duration < healthy.Duration {
				t.Fatalf("crash run finished faster than healthy: %v vs %v", m.Duration, healthy.Duration)
			}
		})
	}
}

// TestChaosRecoveryRestoresCapacity crashes a node mid-map and brings
// it back before the reduce wave; the job completes correctly and no
// slower than the run without the recovery.
func TestChaosRecoveryRestoresCapacity(t *testing.T) {
	healthyC := testCluster()
	_, healthy, err := NewEngine(healthyC).Run(wordCountJob(false), chaosInput(healthyC), nil)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := simtime.Time(healthy.OverheadPhase + healthy.ModelPhase + healthy.MapPhase/2)
	run := func(events ...simcluster.NodeEvent) Metrics {
		c := chaosCluster(&simcluster.FailurePlan{Events: events})
		_, m, err := NewEngine(c).RunAt(wordCountJob(false), chaosInput(c), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	noRecover := run(simcluster.NodeEvent{Node: 1, Time: crashAt})
	recovered := run(
		simcluster.NodeEvent{Node: 1, Time: crashAt},
		simcluster.NodeEvent{Node: 1, Time: crashAt + simtime.Time(healthy.MapPhase/4), Recover: true},
	)
	if recovered.RescheduledTasks == 0 {
		t.Fatal("crash before recovery killed no tasks")
	}
	if recovered.Duration > noRecover.Duration {
		t.Fatalf("recovery made the job slower: %v vs %v", recovered.Duration, noRecover.Duration)
	}
}

// TestChaosSplitRehomedToSurvivingReplica homes a split on a node that
// is dead at job start; the engine must read it from the surviving
// replica and charge the non-local read.
func TestChaosSplitRehomedToSurvivingReplica(t *testing.T) {
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{{Node: 1, Time: 0}}}
	c := chaosCluster(plan)
	recs := []Record{{Key: "a", Value: writable.Text("x y x")}}
	in := InputFromSplits([]Split{{Records: recs, Home: 1, Replicas: []int{1, 2}}})
	out, m, err := NewEngine(c).RunAt(wordCountJob(false), in, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := countsFromOutput(out); got["x"] != 2 || got["y"] != 1 {
		t.Fatalf("counts = %v", got)
	}
	if m.NonLocalInputBytes == 0 {
		t.Fatal("re-homed split charged no non-local input traffic")
	}
}

// TestChaosAllReplicasLost fails the job — rather than silently losing
// records — when every replica of a split is on dead nodes.
func TestChaosAllReplicasLost(t *testing.T) {
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{
		{Node: 1, Time: 0}, {Node: 2, Time: 0},
	}}
	c := chaosCluster(plan)
	recs := []Record{{Key: "a", Value: writable.Text("x")}}
	in := InputFromSplits([]Split{{Records: recs, Home: 1, Replicas: []int{1, 2}}})
	_, _, err := NewEngine(c).RunAt(wordCountJob(false), in, nil, 0)
	if err == nil || !strings.Contains(err.Error(), "all replicas lost") {
		t.Fatalf("err = %v, want all-replicas-lost failure", err)
	}
}

// TestChaosNoLiveNodes fails cleanly when the whole view is dead at job
// start.
func TestChaosNoLiveNodes(t *testing.T) {
	var events []simcluster.NodeEvent
	for n := 0; n < 4; n++ {
		events = append(events, simcluster.NodeEvent{Node: n, Time: 0})
	}
	c := chaosCluster(&simcluster.FailurePlan{Events: events})
	_, _, err := NewEngine(c).RunAt(wordCountJob(false), chaosInput(c), nil, 0)
	if err == nil || !strings.Contains(err.Error(), "no live nodes") {
		t.Fatalf("err = %v, want no-live-nodes failure", err)
	}
}

// TestChaosInertPlanMatchesHealthySchedule runs the same job through
// the failure-aware scheduler (a plan whose only event fires long after
// the job ends) and the plain scheduler; timings, metrics and output
// must agree exactly.
func TestChaosInertPlanMatchesHealthySchedule(t *testing.T) {
	healthyC := testCluster()
	healthyOut, healthy, err := NewEngine(healthyC).Run(wordCountJob(false), chaosInput(healthyC), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := &simcluster.FailurePlan{Events: []simcluster.NodeEvent{{Node: 1, Time: 1e9}}}
	c := chaosCluster(plan)
	out, m, err := NewEngine(c).RunAt(wordCountJob(false), chaosInput(c), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The failure-aware scheduler may place tasks on different nodes
	// than the greedy list scheduler (shifting shuffle bytes between
	// links), but with no live failures the makespans — and so every
	// phase duration — must agree exactly.
	if m.Duration != healthy.Duration || m.MapPhase != healthy.MapPhase ||
		m.ReducePhase != healthy.ReducePhase || m.OverheadPhase != healthy.OverheadPhase {
		t.Fatalf("failure-aware schedule diverged from plain schedule with no failures:\n%+v\n%+v", m, healthy)
	}
	if m.RescheduledTasks != 0 || m.NodeCrashes != 0 {
		t.Fatalf("inert plan recorded faults: %+v", m)
	}
	a, b := countsFromOutput(healthyOut), countsFromOutput(out)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("count[%q]: %d vs %d", k, v, b[k])
		}
	}
}

package mapred_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/simcluster"
	"repro/internal/writable"
)

// vectorRowSource adapts any per-index vector generator to a
// SplitSource producing kmeans-shaped records ("p<i>" → Vector),
// dealing record indexes contiguously with SourceRange.
type vectorRowSource struct {
	n, splits int
	row       func(i int, dst linalg.Vector) linalg.Vector
	keyFmt    string // defaults to "p%d"
}

func (s *vectorRowSource) Splits() int { return s.splits }

func (s *vectorRowSource) Records(i int, dst []mapred.Record) []mapred.Record {
	keyFmt := s.keyFmt
	if keyFmt == "" {
		keyFmt = "p%d"
	}
	lo, hi := mapred.SourceRange(i, s.splits, int64(s.n))
	var buf linalg.Vector
	for r := lo; r < hi; r++ {
		buf = s.row(int(r), buf)
		v := make(writable.Vector, len(buf))
		copy(v, buf)
		dst = append(dst, mapred.Record{Key: fmt.Sprintf(keyFmt, r), Value: v})
	}
	return dst
}

// streamSources builds one source per generator family, each paired
// with the resident record slice the legacy path would materialize from
// the same stream.
func streamSources(t *testing.T, n, splits int) map[string]*vectorRowSource {
	t.Helper()
	mix := data.NewMixtureStream(42, n, 4, 3, 100, 2)
	ocr := data.NewOCRStream(42, n, 0.05, 0.1)
	img := data.NewImageStream(42, 24, n, 3)
	wd := data.NewWeaklyDominantStream(42, n, 1.5)
	diff := data.NewDiffusionStream(42, n, 1.5)
	return map[string]*vectorRowSource{
		"gaussian-mixture": {n: n, splits: splits, row: mix.Point},
		"ocr-vectors":      {n: n, splits: splits, row: ocr.Vec},
		"noisy-image":      {n: n, splits: splits, row: img.Row},
		"weakly-dominant": {n: n, splits: splits, row: func(i int, dst linalg.Vector) linalg.Vector {
			row, b := wd.Row(i, dst)
			return append(row, b)
		}},
		"diffusion": {n: n, splits: splits, row: func(i int, dst linalg.Vector) linalg.Vector {
			row, b := diff.Row(i, dst)
			return append(row, b)
		}},
	}
}

func encodeInput(t *testing.T, in *mapred.Input) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, sp := range in.Splits {
		fmt.Fprintf(&out, "home=%d bytes=%d\n", sp.Home, sp.Bytes)
		for _, rec := range sp.Records {
			out.WriteString(rec.Key)
			out.Write(writable.Encode(nil, rec.Value))
		}
	}
	return out.Bytes()
}

// The streamed path must produce byte-identical splits to the resident
// path for every generator family: same records, same homes, same
// sizes.
func TestStreamedSplitsMatchResident(t *testing.T) {
	c := simcluster.New(simcluster.Small())
	const n, splits = 60, 7
	for name, src := range streamSources(t, n, splits) {
		t.Run(name, func(t *testing.T) {
			// Resident reference: materialize all records at once, then
			// deal them with NewInput's math.
			all := src.Records(0, nil)
			for i := 1; i < splits; i++ {
				all = src.Records(i, all)
			}
			resident := mapred.NewInput(all, c, splits)

			streamed := mapred.InputFromSource(src, c)
			if got, want := encodeInput(t, streamed), encodeInput(t, resident); !bytes.Equal(got, want) {
				t.Fatal("streamed splits differ from resident splits")
			}

			// The streaming driver itself must visit the same bytes.
			stats, err := mapred.StreamSplits(src, c, nil)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Bytes != resident.TotalBytes() {
				t.Fatalf("streamed %d bytes, resident %d", stats.Bytes, resident.TotalBytes())
			}
			if stats.Records != resident.NumRecords() {
				t.Fatalf("streamed %d records, resident %d", stats.Records, resident.NumRecords())
			}
			if stats.Splits != splits {
				t.Fatalf("streamed %d splits, want %d", stats.Splits, splits)
			}
		})
	}
}

// The memory-bound guarantee: scaling the dataset with proportionally
// more splits must leave the peak resident split size unchanged — no
// O(dataset) buffer anywhere in the streaming path.
func TestStreamSplitsMemoryBound(t *testing.T) {
	c := simcluster.New(simcluster.Small())
	mk := func(n, splits int) mapred.StreamStats {
		s := data.NewMixtureStream(7, n, 4, 3, 100, 2)
		// Fixed-width keys so per-record encoded size is independent of
		// the index's digit count and the peaks compare exactly.
		src := &vectorRowSource{n: n, splits: splits, row: s.Point, keyFmt: "p%08d"}
		stats, err := mapred.StreamSplits(src, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	small := mk(4096, 16)
	large := mk(8*4096, 8*16) // 8× data, 8× splits: same records per split
	if small.PeakResidentBytes != large.PeakResidentBytes {
		t.Fatalf("peak resident bytes grew with n: %d → %d",
			small.PeakResidentBytes, large.PeakResidentBytes)
	}
	if large.Records != 8*small.Records || large.Bytes <= small.Bytes {
		t.Fatalf("scaling mismatch: small=%+v large=%+v", small, large)
	}
}

// Errors from the callback must abort the pass and propagate.
func TestStreamSplitsPropagatesCallbackError(t *testing.T) {
	c := simcluster.New(simcluster.Small())
	s := data.NewMixtureStream(7, 64, 4, 3, 100, 2)
	src := &vectorRowSource{n: 64, splits: 8, row: s.Point}
	boom := fmt.Errorf("boom")
	visited := 0
	_, err := mapred.StreamSplits(src, c, func(mapred.Split) error {
		visited++
		if visited == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if visited != 3 {
		t.Fatalf("visited %d splits after error, want 3", visited)
	}
}

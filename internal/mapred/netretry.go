package mapred

import (
	"repro/internal/corrupt"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// Degraded transfers. When the cluster's fabric carries a
// simnet.NetworkPlan, every framework transfer is priced at its start
// time under the plan's active overlay and may fail typed: too slow
// for the engine's TransferTimeout, or with its path severed by an
// outage or partition. The engine reacts like a Hadoop shuffle client:
// abandon the attempt, back off exponentially (capped), and re-price
// at the advanced clock — a fault window that has closed by then no
// longer hurts. With no plan registered, none of this code runs and
// transfers are charged exactly as before.

// defaultRetryBackoff is the base backoff when Engine.RetryBackoff is
// zero: one simulated second, Hadoop's fetch-retry starting delay.
const defaultRetryBackoff = simtime.Duration(1.0)

// retryBackoffCap bounds the exponential backoff at this multiple of
// the base, so a long fault window is polled rather than escaped.
const retryBackoffCap = 8

// corruptRetryCap bounds how many corrupt arrivals of one transfer are
// re-sent before the engine gives up with a typed
// *simnet.TransferError (kind corrupt). Independent of
// Engine.TransferRetries: checksum re-sends must work even on engines
// with no transfer deadline configured.
const corruptRetryCap = 8

// backoffDelay is the capped exponential wait before retry attempt
// k (0-based).
func backoffDelay(base simtime.Duration, attempt int) simtime.Duration {
	d := base
	for i := 0; i < attempt; i++ {
		if d >= base*retryBackoffCap {
			return base * retryBackoffCap
		}
		d *= 2
	}
	return d
}

// transferResult describes one possibly-degraded transfer: the total
// elapsed time (failed attempts, backoff waits and the successful
// attempt), how many attempts failed and were retried, and the network
// traffic the retried attempts carried before being abandoned.
type transferResult struct {
	elapsed        simtime.Duration
	retries        int
	retryBytes     int64
	retryCrossRack int64
	// corruptRetries / corruptRetryBytes count attempts that arrived
	// whole but failed checksum verification and were re-sent.
	corruptRetries    int
	corruptRetryBytes int64
}

// transferAt records flows on the fabric and charges their time, like
// transfer, but honoring the registered NetworkPlan from the given
// start time. An attempt that would outlive TransferTimeout is
// abandoned at the deadline — its bytes crossed the fabric before the
// abort and are recorded, then re-sent — while an attempt whose path
// is severed records nothing. Failed attempts are retried up to
// TransferRetries times with capped exponential backoff; when retries
// are exhausted (or disabled) the typed *simnet.TransferError of the
// last attempt is returned, with nothing recorded for that final
// attempt.
func (e *Engine) transferAt(flows []simnet.Flow, at simtime.Time) (transferResult, error) {
	fabric := e.cluster.Fabric()
	cplan := e.cluster.CorruptionPlan()
	// Checksum verification only engages when both the plan scripts
	// bit-error windows and the engine checks payloads; otherwise
	// corrupt arrivals are consumed silently (callers model the damage).
	checkPayloads := e.IntegrityChecks && cplan.HasTransferEvents()
	if fabric.NetworkPlan() == nil && !checkPayloads {
		return transferResult{elapsed: e.transfer(flows)}, nil
	}
	var netBytes, crossRack int64
	firstSrc, firstDst := -1, -1
	for _, fl := range flows {
		if fl.Src != fl.Dst && fl.Bytes > 0 {
			if firstSrc < 0 {
				firstSrc, firstDst = fl.Src, fl.Dst
			}
			netBytes += fl.Bytes
			if fabric.Rack(fl.Src) != fabric.Rack(fl.Dst) {
				crossRack += fl.Bytes
			}
		}
	}
	timeout := e.TransferTimeout
	backoff := e.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	var res transferResult
	corruptAttempts := 0
	for attempt := 0; ; attempt++ {
		now := at + res.elapsed
		tt, err := fabric.TransferTimeAt(flows, now)
		if err == nil && (timeout == 0 || tt <= timeout) {
			if checkPayloads {
				if src, dst, hit := corruptFlowAt(cplan, flows, now); hit {
					if corruptAttempts >= corruptRetryCap {
						// Give up like an exhausted retry budget: the
						// final attempt records nothing.
						return res, &simnet.TransferError{Kind: simnet.TransferCorrupt, Src: src, Dst: dst, At: now}
					}
					// The damaged payload crossed the fabric whole; the
					// checksum failed on arrival, so it crosses again
					// after a backoff. Re-pricing at the advanced clock
					// re-rolls the bit-error window.
					fabric.Record(flows)
					res.corruptRetries++
					res.corruptRetryBytes += netBytes
					res.retryCrossRack += crossRack
					res.elapsed += tt + backoffDelay(backoff, corruptAttempts)
					corruptAttempts++
					continue
				}
			}
			fabric.Record(flows)
			res.elapsed += tt
			return res, nil
		}
		// With no deadline there is nothing to bound a retry loop, so
		// an unreachable path fails immediately; validateConfig
		// guarantees TransferRetries > 0 implies a deadline.
		abandon := timeout == 0 || attempt >= e.TransferRetries
		if err == nil {
			err = &simnet.TransferError{Kind: simnet.TransferTimeout, Src: firstSrc, Dst: firstDst, At: now}
			if !abandon {
				// The attempt ran to its deadline: the payload crossed
				// the fabric once and will cross again on the retry.
				fabric.Record(flows)
				res.retryBytes += netBytes
				res.retryCrossRack += crossRack
			}
		}
		if abandon {
			return res, err
		}
		res.retries++
		res.elapsed += timeout + backoffDelay(backoff, attempt)
	}
}

// chargeRetries folds one transfer's retry accounting into the job
// metrics: the global retry counters plus the byte counter of the
// phase that paid for the re-sent traffic.
func chargeRetries(m *Metrics, res transferResult, phaseBytes *int64) {
	m.TransferRetries += res.retries
	m.RetryBytes += res.retryBytes
	m.CorruptRetries += res.corruptRetries
	m.CorruptRetryBytes += res.corruptRetryBytes
	if phaseBytes != nil {
		*phaseBytes += res.retryBytes + res.corruptRetryBytes
	}
}

// corruptFlowAt asks the corruption plan whether any network flow of
// this attempt is hit by an active bit-error window at time at,
// returning the first offending flow.
func corruptFlowAt(p *corrupt.Plan, flows []simnet.Flow, at simtime.Time) (src, dst int, hit bool) {
	for _, fl := range flows {
		if fl.Src == fl.Dst || fl.Bytes == 0 {
			continue
		}
		if _, h := p.TransferHit(fl.Src, fl.Dst, at); h {
			return fl.Src, fl.Dst, true
		}
	}
	return 0, 0, false
}

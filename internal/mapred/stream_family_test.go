package mapred_test

import (
	"fmt"
	"testing"

	"repro/internal/mapred"
	"repro/internal/simcluster"
	"repro/internal/writable"
)

// uniformSource deals n Float64 records into equal-length splits, so
// every split's record slice has the same length — the worst case for
// the cache's address-based split identity.
type uniformSource struct{ n, splits int }

func (s *uniformSource) Splits() int { return s.splits }

func (s *uniformSource) Records(i int, dst []mapred.Record) []mapred.Record {
	lo, hi := mapred.SourceRange(i, s.splits, int64(s.n))
	for j := lo; j < hi; j++ {
		dst = append(dst, mapred.Record{
			Key:   fmt.Sprintf("r%03d", j),
			Value: writable.Float64(float64(j)),
		})
	}
	return dst
}

type countingDerived struct{ builds *int }

func (d *countingDerived) SizeBytes() int64 { return 8 }

// TestStreamedBufferAliasesFamilyIdentity pins the sharp edge between
// the two subsystems: JobFamily keys a split by its backing array
// (&recs[0], len), and StreamSplits reuses one buffer across splits, so
// staging streamed splits directly produces false cache hits — the
// second split is mistaken for the first and served its stale derived
// form. InputFromSource copies each split out of the stream buffer,
// which is exactly what makes the materialized splits safe to cache.
func TestStreamedBufferAliasesFamilyIdentity(t *testing.T) {
	src := &uniformSource{n: 64, splits: 8}
	c := simcluster.New(simcluster.Small())
	builds := 0
	build := func([]mapred.Record) mapred.SplitDerived { builds++; return &countingDerived{builds: &builds} }

	// Staging the stream's reused buffer directly: every split after the
	// first aliases the same backing array and length, so the cache
	// wrongly serves split 0's entry for all of them.
	direct := mapred.NewJobFamily("direct", 1<<30)
	if _, err := mapred.StreamSplits(src, c, func(sp mapred.Split) error {
		direct.AcquireDerived(0, sp.Records, sp.Bytes, build)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := direct.Stats(); st.Hits != 7 || st.Misses != 1 || builds != 1 {
		t.Fatalf("direct staging: hits=%d misses=%d builds=%d — expected the reused "+
			"stream buffer to alias every split onto one cache entry (7/1/1)",
			st.Hits, st.Misses, builds)
	}

	// Materialized splits have distinct, stable backing arrays: a full
	// first pass misses, a full second pass hits — real warm reuse.
	builds = 0
	materialized := mapred.NewJobFamily("materialized", 1<<30)
	in := mapred.InputFromSource(src, c)
	for pass := 0; pass < 2; pass++ {
		for _, sp := range in.Splits {
			materialized.AcquireDerived(sp.Home, sp.Records, sp.Bytes, build)
		}
	}
	if st := materialized.Stats(); st.Hits != 8 || st.Misses != 8 || builds != 8 {
		t.Fatalf("materialized staging: hits=%d misses=%d builds=%d, want 8/8/8", st.Hits, st.Misses, builds)
	}
}

package mapred

import "repro/internal/simtime"

// CostModel translates the real work a job performed into simulated
// compute cost units (retired at simcluster.Config.ComputeRate units per
// second per slot) and fixes the job's structural overheads. Costs are
// charged against counts measured from the actual execution — records
// processed, bytes emitted — so relative costs between the IC and PIC
// schemes fall out of the algorithms themselves.
type CostModel struct {
	// MapCostPerRecord is charged for each input record a map task
	// consumes.
	MapCostPerRecord float64
	// MapCostPerByte is charged for each input byte a map task reads.
	MapCostPerByte float64
	// EmitCostPerByte is charged for each byte a map or reduce task
	// emits (serialization + spill).
	EmitCostPerByte float64
	// ReduceCostPerValue is charged for each grouped value a reduce
	// task consumes.
	ReduceCostPerValue float64
	// ShuffleOverlap is the fraction of shuffle time hidden under the
	// map phase (Hadoop overlaps shuffle with mapping; §II notes this
	// is a well-known optimization the baseline gets). 0 ≤ v < 1.
	ShuffleOverlap float64
	// JobOverhead is the fixed start/finish cost of one job. The paper
	// subtracts repeated-initialization overhead from its baseline, so
	// the default is small; both IC and PIC pay it per job.
	JobOverhead simtime.Duration
	// LocalComputeFactor scales per-record compute for in-memory local
	// execution (Engine.RunLocal) relative to framework execution. The
	// best-effort phase of PIC runs the same map/reduce code as a
	// tight loop without per-record serialization, record-reader and
	// context-switch overhead; measurements of Hadoop-era per-record
	// framework cost versus raw loops put the ratio around 3:1, so the
	// default is 1/3. The ablation benches sweep this knob.
	LocalComputeFactor float64
}

// DefaultCostModel returns the cost model used when a job does not
// provide one. The per-record cost corresponds to a few thousand machine
// operations — the right order for distance computations, rank updates
// and gradient contributions on Hadoop-era Xeons once per-record
// framework overhead is included.
func DefaultCostModel() CostModel {
	return CostModel{
		MapCostPerRecord:   4000,
		MapCostPerByte:     2,
		EmitCostPerByte:    4,
		ReduceCostPerValue: 1500,
		ShuffleOverlap:     0.5,
		JobOverhead:        0.5,
		LocalComputeFactor: 1.0 / 3.0,
	}
}

// Validate reports whether the cost model is usable.
func (c CostModel) Validate() error {
	if c.ShuffleOverlap < 0 || c.ShuffleOverlap >= 1 {
		return errOverlap
	}
	if c.MapCostPerRecord < 0 || c.MapCostPerByte < 0 || c.EmitCostPerByte < 0 ||
		c.ReduceCostPerValue < 0 || c.JobOverhead < 0 {
		return errNegativeCost
	}
	if c.LocalComputeFactor <= 0 {
		return errLocalFactor
	}
	return nil
}

var (
	errOverlap      = costErr("ShuffleOverlap must be in [0,1)")
	errNegativeCost = costErr("cost components must be non-negative")
	errLocalFactor  = costErr("LocalComputeFactor must be positive")
)

type costErr string

func (e costErr) Error() string { return "mapred: " + string(e) }

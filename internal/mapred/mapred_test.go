package mapred

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/writable"
)

func testCluster() *simcluster.Cluster {
	return simcluster.New(simcluster.Config{
		Nodes:              4,
		RackSize:           2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
}

// wordCountJob tokenizes record values and counts word occurrences.
func wordCountJob(withCombiner bool) *Job {
	sum := ReducerFunc(func(key string, values []writable.Writable, _ *model.Model, emit Emitter) error {
		var total int64
		for _, v := range values {
			total += int64(v.(writable.Int64))
		}
		emit.Emit(key, writable.Int64(total))
		return nil
	})
	j := &Job{
		Name: "wordcount",
		Mapper: MapperFunc(func(_ string, value writable.Writable, _ *model.Model, emit Emitter) error {
			for _, w := range strings.Fields(string(value.(writable.Text))) {
				emit.Emit(w, writable.Int64(1))
			}
			return nil
		}),
		Reducer: sum,
	}
	if withCombiner {
		j.Combiner = sum
	}
	return j
}

func textInput(c *simcluster.Cluster, lines ...string) *Input {
	recs := make([]Record, len(lines))
	for i, l := range lines {
		recs[i] = Record{Key: fmt.Sprintf("line%d", i), Value: writable.Text(l)}
	}
	return NewInput(recs, c, 4)
}

func countsFromOutput(out *Output) map[string]int64 {
	counts := map[string]int64{}
	for _, r := range out.Records {
		counts[r.Key] += int64(r.Value.(writable.Int64))
	}
	return counts
}

func TestWordCount(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "a b a", "b c", "a")
	out, metrics, err := e.Run(wordCountJob(false), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := countsFromOutput(out)
	want := map[string]int64{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, counts[k], v)
		}
	}
	if len(counts) != len(want) {
		t.Errorf("got %d distinct words, want %d", len(counts), len(want))
	}
	if metrics.InputRecords != 3 {
		t.Errorf("InputRecords = %d, want 3", metrics.InputRecords)
	}
	if metrics.MapOutputRecords != 6 {
		t.Errorf("MapOutputRecords = %d, want 6", metrics.MapOutputRecords)
	}
	if metrics.Duration <= 0 {
		t.Error("job took no simulated time")
	}
}

func TestCombinerDoesNotChangeResult(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "x y x y x", "y z", "x z z")
	noComb, _, err := e.Run(wordCountJob(false), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	withComb, _, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := countsFromOutput(noComb), countsFromOutput(withComb)
	if len(a) != len(b) {
		t.Fatalf("distinct keys differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("count[%q]: %d without combiner, %d with", k, v, b[k])
		}
	}
}

func TestCombinerReducesShuffleBytes(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	lines := make([]string, 8)
	for i := range lines {
		lines[i] = strings.Repeat("hot ", 50)
	}
	in := textInput(c, lines...)
	_, plain, err := e.Run(wordCountJob(false), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, combined, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d", combined.ShuffleBytes, plain.ShuffleBytes)
	}
	if combined.MapOutputBytes != plain.MapOutputBytes {
		t.Fatalf("combiner changed pre-combine intermediate data: %d vs %d",
			combined.MapOutputBytes, plain.MapOutputBytes)
	}
}

func TestMapOnlyJob(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "p q", "r")
	job := &Job{
		Name: "tokenize",
		Mapper: MapperFunc(func(_ string, value writable.Writable, _ *model.Model, emit Emitter) error {
			for _, w := range strings.Fields(string(value.(writable.Text))) {
				emit.Emit(w, writable.Null{})
			}
			return nil
		}),
	}
	out, metrics, err := e.Run(job, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(out.Records))
	}
	if out.ByReducer != nil {
		t.Fatal("map-only job produced reducer outputs")
	}
	if metrics.ReduceTasks != 0 || metrics.ShuffleBytes != 0 {
		t.Fatalf("map-only job shuffled: %+v", metrics)
	}
}

func TestReduceKeysAreSorted(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	recs := []Record{
		{Key: "in", Value: writable.Null{}},
	}
	in := NewInput(recs, c, 1)
	var seen []string
	job := &Job{
		Name: "order",
		Mapper: MapperFunc(func(_ string, _ writable.Writable, _ *model.Model, emit Emitter) error {
			for _, k := range []string{"zeta", "alpha", "mid"} {
				emit.Emit(k, writable.Null{})
			}
			return nil
		}),
		Reducer: ReducerFunc(func(key string, _ []writable.Writable, _ *model.Model, emit Emitter) error {
			seen = append(seen, key)
			emit.Emit(key, writable.Null{})
			return nil
		}),
		NumReducers: 1,
	}
	if _, _, err := e.Run(job, in, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(seen) != 3 {
		t.Fatalf("reducer saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("reducer key order %v, want %v", seen, want)
		}
	}
}

func TestModelIsPassedToTasks(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	m := model.New()
	m.Set("bias", writable.Float64(10))
	// Four splits across four nodes, so nodes other than ModelHome run
	// tasks and need the model delivered.
	recs := []Record{
		{Key: "r", Value: writable.Float64(5)},
		{Key: "s", Value: writable.Float64(6)},
		{Key: "t", Value: writable.Float64(7)},
		{Key: "u", Value: writable.Float64(8)},
	}
	in := NewInput(recs, c, 4)
	job := &Job{
		Name: "add-bias",
		Mapper: MapperFunc(func(key string, value writable.Writable, m *model.Model, emit Emitter) error {
			bias, ok := m.Float("bias")
			if !ok {
				return errors.New("model missing in mapper")
			}
			emit.Emit(key, writable.Float64(float64(value.(writable.Float64))+bias))
			return nil
		}),
		Reducer: ReducerFunc(func(key string, values []writable.Writable, m *model.Model, emit Emitter) error {
			if _, ok := m.Float("bias"); !ok {
				return errors.New("model missing in reducer")
			}
			emit.Emit(key, values[0])
			return nil
		}),
		NumReducers: 1,
	}
	out, metrics, err := e.Run(job, in, m)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, r := range out.Records {
		got[r.Key] = float64(r.Value.(writable.Float64))
	}
	for key, want := range map[string]float64{"r": 15, "s": 16, "t": 17, "u": 18} {
		if got[key] != want {
			t.Fatalf("output[%s] = %v, want %v", key, got[key], want)
		}
	}
	if metrics.ModelBytes == 0 {
		t.Error("model distribution charged no traffic")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "a")
	job := &Job{
		Name: "boom",
		Mapper: MapperFunc(func(string, writable.Writable, *model.Model, Emitter) error {
			return errors.New("map exploded")
		}),
		Reducer: ReducerFunc(func(string, []writable.Writable, *model.Model, Emitter) error { return nil }),
	}
	if _, _, err := e.Run(job, in, nil); err == nil || !strings.Contains(err.Error(), "map exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "a")
	job := &Job{
		Name: "boom",
		Mapper: MapperFunc(func(k string, v writable.Writable, _ *model.Model, emit Emitter) error {
			emit.Emit(k, v)
			return nil
		}),
		Reducer: ReducerFunc(func(string, []writable.Writable, *model.Model, Emitter) error {
			return errors.New("reduce exploded")
		}),
	}
	if _, _, err := e.Run(job, in, nil); err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingMapperRejected(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	if _, _, err := e.Run(&Job{Name: "nil"}, textInput(c, "a"), nil); err == nil {
		t.Fatal("job without mapper accepted")
	}
}

func TestFailureInjectionRetriesTasks(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "a", "b", "c", "d")
	_, clean, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.FailEveryNthMapTask = 2
	out, faulty, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.TaskRetries == 0 {
		t.Fatal("no retries recorded")
	}
	if faulty.Duration <= clean.Duration {
		t.Fatalf("failures did not cost time: %v vs %v", faulty.Duration, clean.Duration)
	}
	// Fault tolerance must not corrupt results.
	counts := countsFromOutput(out)
	for _, w := range []string{"a", "b", "c", "d"} {
		if counts[w] != 1 {
			t.Fatalf("counts after failures = %v", counts)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func(workers int) (*Output, Metrics) {
		c := testCluster()
		e := NewEngine(c)
		e.Workers = workers
		in := textInput(c, "m n o", "n o p", "o p q", "q r s t")
		out, metrics, err := e.Run(wordCountJob(true), in, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out, metrics
	}
	out1, m1 := run(1)
	out2, m2 := run(8)
	if m1 != m2 {
		t.Fatalf("metrics differ:\n%+v\n%+v", m1, m2)
	}
	if len(out1.Records) != len(out2.Records) {
		t.Fatalf("output sizes differ: %d vs %d", len(out1.Records), len(out2.Records))
	}
	for i := range out1.Records {
		if out1.Records[i].Key != out2.Records[i].Key ||
			!writable.Equal(out1.Records[i].Value, out2.Records[i].Value) {
			t.Fatalf("record %d differs: %v vs %v", i, out1.Records[i], out2.Records[i])
		}
	}
}

func TestSingleNodeJobHasNoNetworkShuffle(t *testing.T) {
	c := testCluster()
	sub := c.Subset([]int{2})
	e := NewEngine(sub)
	recs := []Record{
		{Key: "a", Value: writable.Text("x y z")},
		{Key: "b", Value: writable.Text("y z")},
	}
	in := NewInput(recs, sub, 2)
	_, metrics, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ShuffleNetworkBytes != 0 {
		t.Fatalf("single-node job moved %d shuffle bytes over the network", metrics.ShuffleNetworkBytes)
	}
	if metrics.ShuffleBytes == 0 {
		t.Fatal("expected local shuffle data")
	}
}

func TestSubClusterShuffleStaysInRack(t *testing.T) {
	c := testCluster() // racks {0,1} and {2,3}
	sub := c.Subset([]int{0, 1})
	e := NewEngine(sub)
	lines := make([]string, 8)
	for i := range lines {
		lines[i] = fmt.Sprintf("w%d w%d w%d", i, i+1, i+2)
	}
	recs := make([]Record, len(lines))
	for i, l := range lines {
		recs[i] = Record{Key: fmt.Sprintf("l%d", i), Value: writable.Text(l)}
	}
	in := NewInput(recs, sub, 4)
	_, metrics, err := e.Run(wordCountJob(false), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ShuffleCrossRackBytes != 0 {
		t.Fatalf("rack-confined job crossed racks: %d bytes", metrics.ShuffleCrossRackBytes)
	}
}

func TestHashPartitionInRange(t *testing.T) {
	for r := 1; r <= 7; r++ {
		for i := 0; i < 100; i++ {
			p := HashPartition(fmt.Sprintf("key%d", i), r)
			if p < 0 || p >= r {
				t.Fatalf("HashPartition out of range: %d with r=%d", p, r)
			}
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "aa ab ba bb")
	var firstLetterPart Partitioner = func(key string, r int) int {
		return int(key[0]-'a') % r
	}
	job := wordCountJob(false)
	job.Partition = firstLetterPart
	job.NumReducers = 2
	out, _, err := e.Run(job, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reducer 0 must hold exactly the 'a'-words, reducer 1 the 'b'-words.
	for _, r := range out.ByReducer[0] {
		if r.Key[0] != 'a' {
			t.Fatalf("reducer 0 got %q", r.Key)
		}
	}
	for _, r := range out.ByReducer[1] {
		if r.Key[0] != 'b' {
			t.Fatalf("reducer 1 got %q", r.Key)
		}
	}
}

func TestInputRoundRobinHomes(t *testing.T) {
	c := testCluster()
	recs := make([]Record, 8)
	for i := range recs {
		recs[i] = Record{Key: fmt.Sprintf("k%d", i), Value: writable.Int64(i)}
	}
	in := NewInput(recs, c, 8)
	if len(in.Splits) != 8 {
		t.Fatalf("got %d splits", len(in.Splits))
	}
	for i, s := range in.Splits {
		if s.Home != i%4 {
			t.Fatalf("split %d homed on %d", i, s.Home)
		}
	}
	if in.NumRecords() != 8 {
		t.Fatalf("NumRecords = %d", in.NumRecords())
	}
}

func TestInputSplitCountClamped(t *testing.T) {
	c := testCluster()
	recs := []Record{{Key: "only", Value: writable.Null{}}}
	in := NewInput(recs, c, 16)
	if len(in.Splits) != 1 {
		t.Fatalf("got %d splits for 1 record", len(in.Splits))
	}
}

func TestInputBytesMatchRecords(t *testing.T) {
	c := testCluster()
	recs := []Record{
		{Key: "a", Value: writable.Vector{1, 2, 3}},
		{Key: "b", Value: writable.Text("hello")},
	}
	in := NewInput(recs, c, 2)
	if in.TotalBytes() != RecordsSize(recs) {
		t.Fatalf("TotalBytes = %d, want %d", in.TotalBytes(), RecordsSize(recs))
	}
}

func TestRecordSizeMatchesEncoding(t *testing.T) {
	r := Record{Key: "centroid-17", Value: writable.Vector{1, 2, 3}}
	// Key encoding: uvarint length + bytes; value: kind + payload.
	want := int64(1+len(r.Key)) + int64(writable.Size(r.Value))
	if r.Size() != want {
		t.Fatalf("Size = %d, want %d", r.Size(), want)
	}
}

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelValidate(t *testing.T) {
	bad := DefaultCostModel()
	bad.ShuffleOverlap = 1
	if bad.Validate() == nil {
		t.Error("overlap 1 accepted")
	}
	bad = DefaultCostModel()
	bad.MapCostPerRecord = -1
	if bad.Validate() == nil {
		t.Error("negative cost accepted")
	}
}

func TestJobLevelCostOverride(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "a b c")
	job := wordCountJob(false)
	slow := DefaultCostModel()
	slow.MapCostPerRecord *= 100
	job.Cost = &slow
	_, slowMetrics, err := e.Run(job, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	job.Cost = nil
	_, fastMetrics, err := e.Run(job, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if slowMetrics.MapPhase <= fastMetrics.MapPhase {
		t.Fatalf("cost override ignored: %v vs %v", slowMetrics.MapPhase, fastMetrics.MapPhase)
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Duration: 1, Jobs: 1, MapOutputBytes: 10, ShuffleNetworkBytes: 5}
	a.Add(Metrics{Duration: 2, Jobs: 1, MapOutputBytes: 20, ShuffleNetworkBytes: 7})
	if a.Duration != 3 || a.Jobs != 2 || a.MapOutputBytes != 30 || a.ShuffleNetworkBytes != 12 {
		t.Fatalf("Add = %+v", a)
	}
}

// Property: for random word streams, word counts from the runtime match
// a sequential reference count, with and without a combiner.
func TestQuickWordCountMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLines := rng.Intn(10) + 1
		lines := make([]string, nLines)
		ref := map[string]int64{}
		for i := range lines {
			nWords := rng.Intn(20)
			words := make([]string, nWords)
			for j := range words {
				words[j] = fmt.Sprintf("w%d", rng.Intn(8))
				ref[words[j]]++
			}
			lines[i] = strings.Join(words, " ")
		}
		c := testCluster()
		e := NewEngine(c)
		in := textInput(c, lines...)
		for _, withComb := range []bool{false, true} {
			out, _, err := e.Run(wordCountJob(withComb), in, nil)
			if err != nil {
				return false
			}
			counts := countsFromOutput(out)
			if len(counts) != len(ref) {
				return false
			}
			for k, v := range ref {
				if counts[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffle network bytes never exceed total shuffle bytes, and
// cross-rack never exceeds network.
func TestQuickShuffleByteOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lines := make([]string, rng.Intn(6)+1)
		for i := range lines {
			lines[i] = fmt.Sprintf("a%d b%d", rng.Intn(5), rng.Intn(5))
		}
		c := testCluster()
		e := NewEngine(c)
		in := textInput(c, lines...)
		_, m, err := e.Run(wordCountJob(rng.Intn(2) == 0), in, nil)
		if err != nil {
			return false
		}
		return m.ShuffleNetworkBytes <= m.ShuffleBytes &&
			m.ShuffleCrossRackBytes <= m.ShuffleNetworkBytes &&
			m.ShuffleBytes <= m.MapOutputBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

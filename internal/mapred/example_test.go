package mapred_test

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/writable"
)

// Example runs the canonical word count on a simulated 4-node cluster,
// showing the runtime's job surface: mapper, combiner, reducer, and the
// byte-exact traffic counters.
func Example() {
	cluster := simcluster.New(simcluster.Config{
		Nodes: 4, RackSize: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		ComputeRate: 1e6, NodeBandwidth: 1e6, RackBandwidth: 4e6, CoreBandwidth: 4e6,
	})
	engine := mapred.NewEngine(cluster)

	sum := mapred.ReducerFunc(func(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
		var n int64
		for _, v := range values {
			n += int64(v.(writable.Int64))
		}
		emit.Emit(key, writable.Int64(n))
		return nil
	})
	job := &mapred.Job{
		Name: "wordcount",
		Mapper: mapred.MapperFunc(func(_ string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			for _, w := range strings.Fields(string(v.(writable.Text))) {
				emit.Emit(w, writable.Int64(1))
			}
			return nil
		}),
		Combiner: sum,
		Reducer:  sum,
	}

	records := []mapred.Record{
		{Key: "line1", Value: writable.Text("to be or not to be")},
		{Key: "line2", Value: writable.Text("that is the question")},
	}
	in := mapred.NewInput(records, cluster, 2)

	out, metrics, err := engine.Run(job, in, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	counts := map[string]int64{}
	keys := []string{}
	for _, r := range out.Records {
		counts[r.Key] = int64(r.Value.(writable.Int64))
		keys = append(keys, r.Key)
	}
	sort.Strings(keys)
	for _, k := range keys[:3] {
		fmt.Printf("%s: %d\n", k, counts[k])
	}
	fmt.Printf("map tasks: %d, reduce tasks ran: %v\n", metrics.MapTasks, metrics.ReduceTasks > 0)
	// Output:
	// be: 2
	// is: 1
	// not: 1
	// map tasks: 2, reduce tasks ran: true
}

package mapred

import "fmt"

// ConfigError reports an Engine knob whose value (or combination with
// other knobs) cannot produce a meaningful run. Run, RunAt and RunLocal
// return it before touching the cluster, so a bad configuration fails
// loudly at the first execution instead of being silently reinterpreted.
type ConfigError struct {
	Field  string // the offending Engine field
	Reason string // why the value is rejected
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("mapred: invalid Engine.%s: %s", e.Field, e.Reason)
}

// validateConfig screens the engine's knobs at run time. Validation
// happens per run rather than per assignment because the fields are set
// directly (there are no setters to intercept) and because some checks
// depend on the cluster view the run executes against.
func (e *Engine) validateConfig() error {
	if !e.cluster.Contains(e.ModelHome) {
		return &ConfigError{"ModelHome",
			fmt.Sprintf("node %d is not in the cluster view", e.ModelHome)}
	}
	if e.ModelSources < 1 {
		return &ConfigError{"ModelSources",
			fmt.Sprintf("%d; at least one replica node must serve model reads", e.ModelSources)}
	}
	if e.FailEveryNthMapTask < 0 {
		return &ConfigError{"FailEveryNthMapTask",
			fmt.Sprintf("%d; injection periods are positive (zero disables injection)", e.FailEveryNthMapTask)}
	}
	if e.StraggleEveryNthMapTask < 0 {
		return &ConfigError{"StraggleEveryNthMapTask",
			fmt.Sprintf("%d; injection periods are positive (zero disables injection)", e.StraggleEveryNthMapTask)}
	}
	if e.StragglerSlowdown < 0 || (e.StragglerSlowdown > 0 && e.StragglerSlowdown < 1) {
		return &ConfigError{"StragglerSlowdown",
			fmt.Sprintf("%g; stragglers run slower, not faster (zero selects the default)", e.StragglerSlowdown)}
	}
	if e.Workers < 0 {
		return &ConfigError{"Workers",
			fmt.Sprintf("%d; real parallelism cannot be negative (zero means GOMAXPROCS)", e.Workers)}
	}
	if e.TransferTimeout < 0 {
		return &ConfigError{"TransferTimeout",
			fmt.Sprintf("%g; deadlines are positive (zero disables the deadline)", float64(e.TransferTimeout))}
	}
	if e.TransferRetries < 0 {
		return &ConfigError{"TransferRetries",
			fmt.Sprintf("%d; retry caps cannot be negative (zero disables retries)", e.TransferRetries)}
	}
	if e.TransferRetries > 0 && e.TransferTimeout == 0 {
		return &ConfigError{"TransferRetries",
			fmt.Sprintf("%d retries with no TransferTimeout; without a deadline an attempt never fails over", e.TransferRetries)}
	}
	if e.RetryBackoff < 0 {
		return &ConfigError{"RetryBackoff",
			fmt.Sprintf("%g; backoff cannot be negative (zero selects the default)", float64(e.RetryBackoff))}
	}
	if e.FairSharingNetwork && e.cluster.NetworkPlan() != nil {
		return &ConfigError{"FairSharingNetwork",
			"incompatible with a registered NetworkPlan; degraded transfers are priced by the bottleneck model"}
	}
	return nil
}

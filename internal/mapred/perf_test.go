package mapred

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/writable"
)

// benchRecords builds a duplicate-heavy intermediate record set: n
// records cycling through k distinct keys, the shape every iterative
// workload's shuffle produces (e.g. 100k points onto 25 centroid keys).
func benchRecords(n, k int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: fmt.Sprintf("key%03d", i%k), Value: writable.Int64(int64(i))}
	}
	return recs
}

// sumReducer sums Int64 values per key.
var sumReducer = ReducerFunc(func(key string, values []writable.Writable, _ *model.Model, emit Emitter) error {
	var total int64
	for _, v := range values {
		total += int64(v.(writable.Int64))
	}
	emit.Emit(key, writable.Int64(total))
	return nil
})

// benchJob re-emits its input through the sum reducer — the cheapest
// user code that still drives the full grouping and accounting paths.
func benchJob() *Job {
	return &Job{
		Name: "bench-grouped",
		Mapper: MapperFunc(func(k string, v writable.Writable, _ *model.Model, emit Emitter) error {
			emit.Emit(k, v)
			return nil
		}),
		Reducer:     sumReducer,
		NumReducers: 4,
	}
}

// BenchmarkRunGrouped measures the sort-based grouping and reduce scan
// in isolation. The input is re-shuffled (copied) every iteration so
// the stable sort never hits its already-sorted fast path.
func BenchmarkRunGrouped(b *testing.B) {
	src := benchRecords(20_000, 25)
	work := make([]Record, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		if _, err := runGrouped(sumReducer, work, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffleAccounting measures the framework path — mapping,
// two-pass partitioning, per-(split,partition) size accounting and the
// simulated shuffle — end to end.
func BenchmarkShuffleAccounting(b *testing.B) {
	c := testCluster()
	e := NewEngine(c)
	in := NewInput(benchRecords(20_000, 25), c, c.MapSlots())
	job := benchJob()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(job, in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalIteration measures the in-memory path (Engine.RunLocal)
// — PIC's best-effort local iteration hot loop: pooled map emission,
// concatenation, grouping and the sharded reduce.
func BenchmarkLocalIteration(b *testing.B) {
	c := testCluster()
	e := NewEngine(c)
	in := NewInput(benchRecords(20_000, 25), c, c.MapSlots())
	job := benchJob()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunLocal(job, in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// randomTextLines builds deterministic pseudo-random word lines so
// worker-count tests see many splits, many keys and ragged group sizes.
func randomTextLines(n int) []string {
	rng := rand.New(rand.NewSource(7))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	lines := make([]string, n)
	for i := range lines {
		var sb strings.Builder
		for w := 0; w < 3+rng.Intn(6); w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		lines[i] = sb.String()
	}
	return lines
}

func requireSameRun(t *testing.T, o1, o2 *Output, m1, m2 Metrics) {
	t.Helper()
	if !reflect.DeepEqual(o1.Records, o2.Records) {
		t.Fatalf("outputs differ between worker counts:\n%v\nvs\n%v", o1.Records, o2.Records)
	}
	if !reflect.DeepEqual(o1.ByReducer, o2.ByReducer) {
		t.Fatal("per-reducer outputs differ between worker counts")
	}
	if m1 != m2 {
		t.Fatalf("metrics differ between worker counts:\n%+v\nvs\n%+v", m1, m2)
	}
}

// TestRunDeterministicAcrossWorkerCounts holds the tentpole invariant
// on the framework path: real execution parallelism must not change a
// single output byte or metric.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	lines := randomTextLines(64)
	run := func(workers int) (*Output, Metrics) {
		c := testCluster()
		e := NewEngine(c)
		e.Workers = workers
		out, m, err := e.Run(wordCountJob(true), textInput(c, lines...), nil)
		if err != nil {
			t.Fatal(err)
		}
		return out, m
	}
	o1, m1 := run(1)
	o8, m8 := run(8)
	requireSameRun(t, o1, o8, m1, m8)
}

// TestRunLocalDeterministicAcrossWorkerCounts holds the same invariant
// on the in-memory path, whose grouped reduce is sharded across the
// worker pool.
func TestRunLocalDeterministicAcrossWorkerCounts(t *testing.T) {
	lines := randomTextLines(64)
	run := func(workers int) (*Output, Metrics) {
		c := testCluster()
		e := NewEngine(c)
		e.Workers = workers
		out, m, err := e.RunLocal(wordCountJob(false), textInput(c, lines...), nil)
		if err != nil {
			t.Fatal(err)
		}
		return out, m
	}
	o1, m1 := run(1)
	o8, m8 := run(8)
	requireSameRun(t, o1, o8, m1, m8)
}

// TestSortRecordsByKeyMatchesStableSort checks the counting sort against
// the defining property: keys ascending, arrival order preserved within
// a key.
func TestSortRecordsByKeyMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200)
		recs := make([]Record, n)
		for i := range recs {
			// Value carries the arrival index so stability is checkable.
			recs[i] = Record{Key: fmt.Sprintf("k%02d", rng.Intn(7)), Value: writable.Int64(int64(i))}
		}
		sortRecordsByKey(recs)
		for i := 1; i < len(recs); i++ {
			if recs[i-1].Key > recs[i].Key {
				t.Fatalf("trial %d: keys out of order at %d: %q > %q", trial, i, recs[i-1].Key, recs[i].Key)
			}
			if recs[i-1].Key == recs[i].Key && recs[i-1].Value.(writable.Int64) > recs[i].Value.(writable.Int64) {
				t.Fatalf("trial %d: stability violated within %q", trial, recs[i].Key)
			}
		}
	}
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4},   // empty range: no calls, no hang
		{1, 4},   // single index
		{3, 8},   // fewer items than workers
		{100, 4}, // chunked hand-out
	} {
		e := NewEngine(testCluster())
		e.Workers = tc.workers
		visited := make([]int, tc.n)
		e.parallelFor(tc.n, func(i int) { visited[i]++ })
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, v)
			}
		}
	}
}

func TestParallelForPanicPropagates(t *testing.T) {
	e := NewEngine(testCluster())
	e.Workers = 4
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want worker panic value", r)
		}
	}()
	e.parallelFor(100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("parallelFor returned after worker panic")
}

// TestShuffleBytesEqualMapOutputWithoutCombiner pins the size-accounting
// invariant: with no combiner, every emitted byte is shuffled, so the
// cached per-(split,partition) sizes must sum to exactly the map output.
func TestShuffleBytesEqualMapOutputWithoutCombiner(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	_, m, err := e.Run(wordCountJob(false), textInput(c, randomTextLines(32)...), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ShuffleBytes != m.MapOutputBytes {
		t.Fatalf("ShuffleBytes %d != MapOutputBytes %d without combiner", m.ShuffleBytes, m.MapOutputBytes)
	}
	if m.ShuffleRecords != m.MapOutputRecords {
		t.Fatalf("ShuffleRecords %d != MapOutputRecords %d without combiner", m.ShuffleRecords, m.MapOutputRecords)
	}
}

// TestShuffleBytesMatchCombinedSizes recomputes the post-combine
// shuffle volume independently — per split, the combiner collapses each
// word to one (word, count) record — and requires the engine's cached
// size accounting to agree byte for byte.
func TestShuffleBytesMatchCombinedSizes(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, randomTextLines(32)...)

	var want int64
	var wantRecords int64
	for _, sp := range in.Splits {
		counts := map[string]int64{}
		for _, rec := range sp.Records {
			for _, w := range strings.Fields(string(rec.Value.(writable.Text))) {
				counts[w]++
			}
		}
		for w, n := range counts {
			want += Record{Key: w, Value: writable.Int64(n)}.Size()
			wantRecords++
		}
	}

	_, m, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ShuffleBytes != want {
		t.Fatalf("ShuffleBytes %d, independently computed combined size %d", m.ShuffleBytes, want)
	}
	if m.ShuffleRecords != wantRecords {
		t.Fatalf("ShuffleRecords %d, want %d", m.ShuffleRecords, wantRecords)
	}
}

// Package mapred is a from-scratch MapReduce runtime in the style of
// Hadoop 0.20, executing on the simulated cluster of internal/simcluster.
// User map, combine and reduce functions run for real — the key/value
// records they emit are genuine — while task scheduling, shuffle and
// model distribution are charged to the simulated clock and fabric, so
// every experiment is deterministic and byte-exact.
//
// The runtime mirrors the conventional iterative-convergence template of
// the PIC paper's Figure 1(a): each iteration of an algorithm is one or
// more jobs that read the (cached) input data and the current model and
// produce the records from which the next model is assembled.
//
// Consistent with the paper's baseline, which already includes the
// prior-work optimizations of Twister/Spark/HaLoop (§V: no repeated job
// initialization, no repeated input reads), input splits are considered
// cached at their home nodes across iterations; only genuinely new
// traffic — shuffle, model distribution, model updates — is charged.
package mapred

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/writable"
)

// Record is one key/value pair flowing through the runtime.
type Record struct {
	Key   string
	Value writable.Writable
}

// Size reports the encoded size of the record in bytes: a
// length-prefixed key plus the encoded value. This is the unit in which
// all traffic counters are maintained.
func (r Record) Size() int64 {
	n := 1
	for k := uint64(len(r.Key)); k >= 0x80; k >>= 7 {
		n++
	}
	return int64(n + len(r.Key) + writable.Size(r.Value))
}

// RecordsSize sums the encoded sizes of a batch of records.
func RecordsSize(recs []Record) int64 {
	var n int64
	for _, r := range recs {
		n += r.Size()
	}
	return n
}

// Emitter receives the key/value pairs produced by map and reduce
// functions.
type Emitter interface {
	Emit(key string, value writable.Writable)
}

// Mapper is the user map computation. It is invoked once per input
// record with the current model; the model must be treated as
// read-only — tasks run concurrently.
type Mapper interface {
	Map(key string, value writable.Writable, m *model.Model, emit Emitter) error
}

// Reducer is the user reduce (or combine) computation, invoked once per
// distinct key with all values for that key. As with Mapper, the model
// is read-only. The values slice is a buffer the runtime reuses between
// keys (as Hadoop reuses its value iterator): implementations must not
// retain it — or any re-slice of it — past the call. The Writables it
// holds may be retained freely.
type Reducer interface {
	Reduce(key string, values []writable.Writable, m *model.Model, emit Emitter) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(key string, value writable.Writable, m *model.Model, emit Emitter) error

// Map implements Mapper.
func (f MapperFunc) Map(key string, value writable.Writable, m *model.Model, emit Emitter) error {
	return f(key, value, m, emit)
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values []writable.Writable, m *model.Model, emit Emitter) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values []writable.Writable, m *model.Model, emit Emitter) error {
	return f(key, values, m, emit)
}

// Partitioner maps an intermediate key to one of r reduce partitions.
type Partitioner func(key string, r int) int

// HashPartition is the default partitioner: FNV-1a modulo r. The hash is
// inlined rather than taken from hash/fnv so the per-record hot path
// allocates nothing (the stdlib constructor and []byte(key) conversion
// both escape).
func HashPartition(key string, r int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(r))
}

// Job describes one MapReduce job.
type Job struct {
	// Name labels the job in metrics and errors.
	Name string
	// Mapper is required.
	Mapper Mapper
	// Combiner optionally pre-aggregates map output per partition
	// before it is shuffled, as Hadoop combiners do. The paper's
	// baselines all use combiners (§V-D).
	Combiner Reducer
	// Reducer is required unless the job is map-only.
	Reducer Reducer
	// NumReducers defaults to the cluster view's reduce slot count.
	NumReducers int
	// Partition defaults to HashPartition.
	Partition Partitioner
	// PartitionedModel declares that each task reads only the model
	// entries co-located with its input split (PageRank's per-vertex
	// state, the smoother's image rows) rather than the whole model.
	// Distribution then moves each node's share of the model once —
	// the HDFS re-read of the updated state — instead of broadcasting
	// the full model to every task node (K-means centroids, network
	// weights).
	PartitionedModel bool
	// Cost overrides the engine's default cost model when non-zero.
	Cost *CostModel
}

func (j *Job) validate() error {
	if j.Mapper == nil {
		return fmt.Errorf("mapred: job %q has no mapper", j.Name)
	}
	if j.NumReducers < 0 {
		return fmt.Errorf("mapred: job %q has negative NumReducers", j.Name)
	}
	return nil
}

// listEmitter collects emissions in order.
type listEmitter struct {
	records []Record
}

// Emit implements Emitter.
func (e *listEmitter) Emit(key string, value writable.Writable) {
	e.records = append(e.records, Record{Key: key, Value: value})
}

// emitterPool recycles listEmitter record buffers between map tasks.
// Only buffers whose records have been copied out (or discarded) may be
// returned; tasks whose emissions are handed off wholesale simply never
// call putEmitter.
var emitterPool = sync.Pool{New: func() any { return &listEmitter{} }}

func getEmitter() *listEmitter { return emitterPool.Get().(*listEmitter) }

func putEmitter(e *listEmitter) {
	e.records = e.records[:0]
	emitterPool.Put(e)
}

// partIdxPool recycles the per-task partition-index scratch used by the
// two-pass partitioning in Engine.RunAt.
var partIdxPool = sync.Pool{New: func() any { return []int32(nil) }}

func getPartIdx(n int) []int32 {
	idx := partIdxPool.Get().([]int32)
	if cap(idx) < n {
		idx = make([]int32, n)
	}
	return idx[:n]
}

func putPartIdx(idx []int32) { partIdxPool.Put(idx[:0]) } //nolint:staticcheck // slice header boxing is fine here

// countsPool recycles the per-task partition-count scratch that sizes
// the exactly-fitted per-partition buffers in Engine.RunAt.
var countsPool = sync.Pool{New: func() any { return []int(nil) }}

func getCounts(n int) []int {
	c := countsPool.Get().([]int)
	if cap(c) < n {
		c = make([]int, n)
	}
	c = c[:n]
	for i := range c {
		c[i] = 0
	}
	return c
}

func putCounts(c []int) { countsPool.Put(c[:0]) } //nolint:staticcheck // slice header boxing is fine here

// valsPool recycles the values scratch buffer reduceSorted hands to
// reducers (which, per Reducer's contract, must not retain it).
var valsPool = sync.Pool{New: func() any { return []writable.Writable(nil) }}

func getVals() []writable.Writable { return valsPool.Get().([]writable.Writable) }

func putVals(vals []writable.Writable) {
	vals = vals[:cap(vals)]
	clear(vals)            // drop value references so the pool doesn't pin them
	valsPool.Put(vals[:0]) //nolint:staticcheck // slice header boxing is fine here
}

// recScratchPool recycles the scatter buffer used by sortRecordsByKey.
var recScratchPool = sync.Pool{New: func() any { return []Record(nil) }}

func getRecScratch(n int) []Record {
	s := recScratchPool.Get().([]Record)
	if cap(s) < n {
		s = make([]Record, n)
	}
	return s[:n]
}

func putRecScratch(s []Record) {
	clear(s)                  // drop key/value references so the pool doesn't pin them
	recScratchPool.Put(s[:0]) //nolint:staticcheck // slice header boxing is fine here
}

package mapred

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/simcluster"
	"repro/internal/simnet"
)

// netChaosCluster builds the standard 4-node test cluster with a
// network plan registered before the engine snapshots it.
func netChaosCluster(plan *simnet.NetworkPlan) *simcluster.Cluster {
	c := testCluster()
	c.SetNetworkPlan(plan)
	return c
}

// netChaosRun executes one wordcount with degraded-transfer knobs set
// and returns the output counts, the metrics, and the fabric's byte
// counters after the run.
func netChaosRun(t *testing.T, plan *simnet.NetworkPlan) (map[string]int64, Metrics, simnet.Counters) {
	t.Helper()
	c := netChaosCluster(plan)
	e := NewEngine(c)
	e.TransferTimeout = 0.05
	e.TransferRetries = 3
	out, m, err := e.Run(wordCountJob(false), textInput(c, "a b a", "c b", "d d d"), nil)
	if err != nil {
		t.Fatal(err)
	}
	return countsFromOutput(out), m, c.Fabric().Counters()
}

// TestNetChaosRetryBridgesBrownout runs a job whose shuffle starts
// inside a deep core brownout: attempts exceed the engine's deadline,
// are abandoned, and a backoff later the window has closed and the
// retry succeeds. The output must match the clean run exactly, and the
// retried attempts' traffic must be conserved: the faulted run's fabric
// total equals the clean total plus exactly Metrics.RetryBytes.
func TestNetChaosRetryBridgesBrownout(t *testing.T) {
	cleanCounts, clean, cleanNet := netChaosRun(t, nil)
	if clean.TransferRetries != 0 || clean.RetryBytes != 0 {
		t.Fatalf("clean run charged retries: %+v", clean)
	}

	// Core capacity at one millionth for the first two seconds — wide
	// enough to cover the job's overhead and map phases, so the shuffle
	// attempt starts inside it and blows the 0.05 s deadline; a backoff
	// or two later the window has closed.
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultCore, Start: 0, End: 2, Factor: 1e-6},
	}}
	faultCounts, faulted, faultedNet := netChaosRun(t, plan)

	if !reflect.DeepEqual(faultCounts, cleanCounts) {
		t.Fatalf("degraded run changed the answer: %v vs %v", faultCounts, cleanCounts)
	}
	if faulted.TransferRetries == 0 {
		t.Fatal("no transfer was retried through the brownout")
	}
	if faulted.RetryBytes == 0 {
		t.Fatal("retries carried no re-sent bytes")
	}
	if got, want := faultedNet.Total, cleanNet.Total+faulted.RetryBytes; got != want {
		t.Fatalf("retry bytes not conserved: fabric total %d, want clean %d + retry %d = %d",
			got, cleanNet.Total, faulted.RetryBytes, want)
	}
}

// TestNetChaosRehomesAroundPartition isolates one node for the whole
// run: the scheduler re-homes its task attempts onto the reachable
// side, and the job completes with the clean answer.
func TestNetChaosRehomesAroundPartition(t *testing.T) {
	cleanCounts, _, _ := netChaosRun(t, nil)
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultPartition, Nodes: []int{3}, Start: 0, End: 1e6},
	}}
	faultCounts, _, _ := netChaosRun(t, plan)
	if !reflect.DeepEqual(faultCounts, cleanCounts) {
		t.Fatalf("partitioned run changed the answer: %v vs %v", faultCounts, cleanCounts)
	}
}

// TestNetChaosModelHomeCutFailsTyped severs the model home from every
// other node with no retry budget: the run must fail with the typed
// transfer error, not hang or panic.
func TestNetChaosModelHomeCutFailsTyped(t *testing.T) {
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultPartition, Nodes: []int{0}, Start: 0, End: 1e6},
	}}
	c := netChaosCluster(plan)
	e := NewEngine(c)
	_, _, err := e.Run(wordCountJob(false), textInput(c, "a b", "c"), nil)
	var te *simnet.TransferError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *simnet.TransferError", err)
	}
	if te.Kind != simnet.TransferUnreachable {
		t.Fatalf("TransferError.Kind = %q, want unreachable", te.Kind)
	}
}

// TestNetChaosDeterminism replays an identical degraded run twice and
// requires exactly equal outputs, metrics and traffic counters.
func TestNetChaosDeterminism(t *testing.T) {
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultCore, Start: 0, End: 0.3, Factor: 1e-4},
		{Kind: simnet.FaultNodeLink, Node: 2, Start: 0.4, End: 0.6, Factor: 0.1},
	}}
	counts1, m1, net1 := netChaosRun(t, plan)
	counts2, m2, net2 := netChaosRun(t, plan)
	if !reflect.DeepEqual(counts1, counts2) || m1 != m2 || net1 != net2 {
		t.Fatalf("identical degraded runs diverged:\n%v %+v %+v\n%v %+v %+v",
			counts1, m1, net1, counts2, m2, net2)
	}
}

// TestNetChaosConfigValidation drives the degraded-transfer knobs'
// rejected values through validateConfig.
func TestNetChaosConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		field  string
		plan   *simnet.NetworkPlan
		mutate func(e *Engine)
	}{
		{"negative transfer timeout", "TransferTimeout", nil,
			func(e *Engine) { e.TransferTimeout = -1 }},
		{"negative retry cap", "TransferRetries", nil,
			func(e *Engine) { e.TransferRetries = -1 }},
		{"retries without a deadline", "TransferRetries", nil,
			func(e *Engine) { e.TransferRetries = 2; e.TransferTimeout = 0 }},
		{"negative retry backoff", "RetryBackoff", nil,
			func(e *Engine) { e.RetryBackoff = -0.5 }},
		{"fair sharing under a network plan", "FairSharingNetwork",
			&simnet.NetworkPlan{Faults: []simnet.NetFault{{Kind: simnet.FaultCore, Start: 0, End: 1}}},
			func(e *Engine) { e.FairSharingNetwork = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := netChaosCluster(tc.plan)
			e := NewEngine(c)
			tc.mutate(e)
			_, _, err := e.Run(wordCountJob(false), textInput(c, "a b", "c"), nil)
			var cfgErr *ConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
			if cfgErr.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q (%v)", cfgErr.Field, tc.field, err)
			}
		})
	}
}

package mapred

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/writable"
)

// Engine executes MapReduce jobs on a cluster view. The same engine type
// serves the full cluster (conventional IC execution and PIC's top-off
// phase) and the node-group sub-clusters of PIC's best-effort phase.
type Engine struct {
	cluster *simcluster.Cluster
	cost    CostModel

	// ModelHome is the node models are distributed from at job start
	// (the node holding the primary replica of the model file).
	// Defaults to the first node of the view.
	ModelHome int

	// ModelSources is the number of replica nodes that can serve model
	// reads (HDFS replication: default 3). Distribution flows fan out
	// round-robin across the sources, as Hadoop's distributed cache
	// fetches do.
	ModelSources int

	// FailEveryNthMapTask injects a failure into every Nth map task,
	// which the engine recovers from by re-executing the task, as
	// Hadoop's fault tolerance does (§VII of the paper). Zero disables
	// injection.
	FailEveryNthMapTask int

	// StraggleEveryNthMapTask makes every Nth map task a straggler
	// running StragglerSlowdown times longer (a slow disk, a busy
	// node). Zero disables injection.
	StraggleEveryNthMapTask int
	// StragglerSlowdown is the straggler's cost multiplier (default 4
	// when stragglers are enabled).
	StragglerSlowdown float64
	// SpeculativeExecution launches Hadoop-style backup tasks for
	// stragglers: the job finishes when the first copy does, so a
	// straggler costs only the speculative-launch lag (30% over the
	// normal duration) instead of the full slowdown.
	SpeculativeExecution bool

	// FairSharingNetwork charges transfers under progressive max-min
	// fair sharing (simnet.MaxMinTransferTime) instead of the
	// optimally-scheduled bottleneck bound — the skeptical network
	// model for robustness checks. Incompatible with a registered
	// NetworkPlan (degraded transfers are priced by the bottleneck
	// model only).
	FairSharingNetwork bool

	// TransferTimeout is the deadline one transfer attempt may take
	// before the engine abandons it (shuffle stall detection). Zero
	// disables the deadline: an unreachable transfer then fails
	// immediately and a slow one is waited out. Only consulted when
	// the cluster carries a NetworkPlan.
	TransferTimeout simtime.Duration
	// TransferRetries is how many times a failed transfer attempt is
	// retried with capped exponential backoff before the job surfaces
	// a typed *simnet.TransferError. Requires TransferTimeout > 0.
	TransferRetries int
	// RetryBackoff is the base backoff charged between transfer
	// attempts; attempt k waits RetryBackoff·2^k, capped at
	// retryBackoffCap times the base. Zero selects 1s.
	RetryBackoff simtime.Duration

	// IntegrityChecks enables checksum verification of transfer
	// payloads against the cluster's registered corruption plan: a
	// corrupt arrival is detected and re-sent (with backoff) instead of
	// silently consumed. Independent of TransferTimeout/TransferRetries
	// — corrupt re-sends have their own bounded budget. Off by default
	// on a bare Engine; core.NewRuntime turns it on.
	IntegrityChecks bool

	// Workers bounds real (not simulated) execution parallelism of
	// user code. Zero means GOMAXPROCS.
	Workers int

	// Family, when set, attaches the engine to a loop-aware job family:
	// persistent per-node workers whose caches hold each split's
	// loop-invariant bytes and derived structures across iterations, so
	// mappers implementing FusedMapper/LocalFuser run over pre-parsed
	// input and only the model delta ships per iteration. Nil runs every
	// job cold. The cache never changes simulated outcomes — outputs,
	// Metrics and traced spans are byte-identical either way.
	Family *JobFamily

	// Obs, when set, receives per-job observability metrics: phase-time
	// counters and per-job time series stamped on the simulated clock at
	// job completion. Nil (the default) records nothing.
	Obs *metrics.Registry
}

// NewEngine returns an engine for the given cluster view with the
// default cost model.
func NewEngine(c *simcluster.Cluster) *Engine {
	return &Engine{cluster: c, cost: DefaultCostModel(), ModelHome: c.Nodes()[0], ModelSources: 3}
}

// SetCostModel replaces the engine's default cost model. It panics on an
// invalid model.
func (e *Engine) SetCostModel(cost CostModel) {
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	e.cost = cost
}

// CostModelValue returns the engine's default cost model.
func (e *Engine) CostModelValue() CostModel { return e.cost }

// Cluster returns the engine's cluster view.
func (e *Engine) Cluster() *simcluster.Cluster { return e.cluster }

// Metrics aggregates everything measured about one or more job
// executions. Byte counters are exact encoded sizes of the records the
// user code actually emitted.
type Metrics struct {
	// Duration is total simulated job time.
	Duration simtime.Duration
	// Phase breakdown of Duration.
	MapPhase      simtime.Duration
	ShufflePhase  simtime.Duration
	ReducePhase   simtime.Duration
	ModelPhase    simtime.Duration
	OverheadPhase simtime.Duration

	Jobs        int
	MapTasks    int
	ReduceTasks int
	TaskRetries int
	// StragglerTasks counts injected slow tasks; SpeculativeTasks the
	// subset rescued by speculative backup copies.
	StragglerTasks   int
	SpeculativeTasks int

	// NodeCrashes counts whole-node crash events processed;
	// RescheduledTasks the in-flight task attempts those crashes killed
	// (each re-ran on a survivor); ReReplicationBytes the DFS traffic
	// spent restoring block replication afterwards.
	NodeCrashes        int
	RescheduledTasks   int
	ReReplicationBytes int64

	// TransferRetries counts transfer attempts that failed (timed out
	// or found their path severed) and were retried under the
	// registered NetworkPlan; RetryBytes is the network traffic those
	// failed attempts carried before being abandoned. Retry traffic is
	// also folded into the byte counter of the phase that paid it
	// (shuffle, model or input), so no byte the fabric carried goes
	// unaccounted.
	TransferRetries int
	RetryBytes      int64

	// CorruptRetries counts transfer attempts that arrived with a bad
	// checksum under the registered corruption plan and were re-sent;
	// CorruptRetryBytes is the traffic the corrupt arrivals carried.
	// Like RetryBytes, it also lands in the paying phase's counter.
	CorruptRetries    int
	CorruptRetryBytes int64

	// LocalJobs and LocalRecords count in-memory executions
	// (Engine.RunLocal) — PIC's best-effort local iterations.
	LocalJobs    int
	LocalRecords int64

	InputRecords int64

	// MapOutputRecords/Bytes measure mapper output before the
	// combiner — the paper's "intermediate data".
	MapOutputRecords int64
	MapOutputBytes   int64

	// ShuffleRecords/Bytes measure post-combine data handed to the
	// shuffle; the network counters are the subset that actually
	// crossed node and rack boundaries.
	ShuffleRecords        int64
	ShuffleBytes          int64
	ShuffleNetworkBytes   int64
	ShuffleCrossRackBytes int64

	// ModelBytes is model-distribution traffic (bytes that crossed a
	// node boundary to deliver the current model to task nodes).
	ModelBytes int64

	ReduceInputValues int64
	OutputRecords     int64
	OutputBytes       int64

	NonLocalInputBytes int64
}

// Add accumulates o into m.
func (m *Metrics) Add(o Metrics) {
	m.Duration += o.Duration
	m.MapPhase += o.MapPhase
	m.ShufflePhase += o.ShufflePhase
	m.ReducePhase += o.ReducePhase
	m.ModelPhase += o.ModelPhase
	m.OverheadPhase += o.OverheadPhase
	m.Jobs += o.Jobs
	m.MapTasks += o.MapTasks
	m.ReduceTasks += o.ReduceTasks
	m.TaskRetries += o.TaskRetries
	m.StragglerTasks += o.StragglerTasks
	m.SpeculativeTasks += o.SpeculativeTasks
	m.NodeCrashes += o.NodeCrashes
	m.RescheduledTasks += o.RescheduledTasks
	m.ReReplicationBytes += o.ReReplicationBytes
	m.TransferRetries += o.TransferRetries
	m.RetryBytes += o.RetryBytes
	m.CorruptRetries += o.CorruptRetries
	m.CorruptRetryBytes += o.CorruptRetryBytes
	m.LocalJobs += o.LocalJobs
	m.LocalRecords += o.LocalRecords
	m.InputRecords += o.InputRecords
	m.MapOutputRecords += o.MapOutputRecords
	m.MapOutputBytes += o.MapOutputBytes
	m.ShuffleRecords += o.ShuffleRecords
	m.ShuffleBytes += o.ShuffleBytes
	m.ShuffleNetworkBytes += o.ShuffleNetworkBytes
	m.ShuffleCrossRackBytes += o.ShuffleCrossRackBytes
	m.ModelBytes += o.ModelBytes
	m.ReduceInputValues += o.ReduceInputValues
	m.OutputRecords += o.OutputRecords
	m.OutputBytes += o.OutputBytes
	m.NonLocalInputBytes += o.NonLocalInputBytes
}

// Sub returns the component-wise difference m - o; with o a snapshot
// taken earlier from the same accumulator, the result is the activity
// between the two points.
func (m Metrics) Sub(o Metrics) Metrics {
	m.Duration -= o.Duration
	m.MapPhase -= o.MapPhase
	m.ShufflePhase -= o.ShufflePhase
	m.ReducePhase -= o.ReducePhase
	m.ModelPhase -= o.ModelPhase
	m.OverheadPhase -= o.OverheadPhase
	m.Jobs -= o.Jobs
	m.MapTasks -= o.MapTasks
	m.ReduceTasks -= o.ReduceTasks
	m.TaskRetries -= o.TaskRetries
	m.StragglerTasks -= o.StragglerTasks
	m.SpeculativeTasks -= o.SpeculativeTasks
	m.NodeCrashes -= o.NodeCrashes
	m.RescheduledTasks -= o.RescheduledTasks
	m.ReReplicationBytes -= o.ReReplicationBytes
	m.TransferRetries -= o.TransferRetries
	m.RetryBytes -= o.RetryBytes
	m.CorruptRetries -= o.CorruptRetries
	m.CorruptRetryBytes -= o.CorruptRetryBytes
	m.LocalJobs -= o.LocalJobs
	m.LocalRecords -= o.LocalRecords
	m.InputRecords -= o.InputRecords
	m.MapOutputRecords -= o.MapOutputRecords
	m.MapOutputBytes -= o.MapOutputBytes
	m.ShuffleRecords -= o.ShuffleRecords
	m.ShuffleBytes -= o.ShuffleBytes
	m.ShuffleNetworkBytes -= o.ShuffleNetworkBytes
	m.ShuffleCrossRackBytes -= o.ShuffleCrossRackBytes
	m.ModelBytes -= o.ModelBytes
	m.ReduceInputValues -= o.ReduceInputValues
	m.OutputRecords -= o.OutputRecords
	m.OutputBytes -= o.OutputBytes
	m.NonLocalInputBytes -= o.NonLocalInputBytes
	return m
}

// Output is the result of one job.
type Output struct {
	// Records is every reduce-output record (or map output for
	// map-only jobs), concatenated in reducer order.
	Records []Record
	// ByReducer holds each reduce task's output; ReducerNodes the node
	// each task ran on. Both are nil for map-only jobs.
	ByReducer    [][]Record
	ReducerNodes []int
}

// fusedMapTask runs one map task over its cached derived structure:
// the fused kernel emits post-combine records in key order and reports
// the pre-combine count/bytes the cold pipeline would have charged, so
// costs and counters come out identical. Returns true when the task was
// handled (success or hard error); false on ErrFusedUnsupported, which
// sends the caller down the cold body.
func (e *Engine) fusedMapTask(fm FusedMapper, d SplitDerived, i int, split Split, job *Job, m *model.Model,
	cost CostModel, numReducers int, partition Partitioner,
	mapCosts []float64, mapOutBytes, mapOutRecords []int64, mapParts [][][]Record, partSizes [][]int64,
	errs []error) bool {
	em := getEmitter()
	preRecs, preBytes, err := fm.MapSplit(d, m, em)
	if err != nil {
		putEmitter(em)
		if errors.Is(err, ErrFusedUnsupported) {
			return false
		}
		errs[i] = fmt.Errorf("job %q map task %d: %w", job.Name, i, err)
		return true
	}
	mapOutBytes[i] = preBytes
	mapOutRecords[i] = preRecs
	mapCosts[i] = cost.MapCostPerRecord*float64(len(split.Records)) +
		cost.MapCostPerByte*float64(split.Bytes) +
		cost.EmitCostPerByte*float64(preBytes)
	// Partition the (few) combined records. Key order within each
	// partition stays ascending — a filtered subsequence of the kernel's
	// sorted emission — exactly as the cold combiner leaves it.
	parts := make([][]Record, numReducers)
	for _, r := range em.records {
		p := partition(r.Key, numReducers)
		parts[p] = append(parts[p], r)
	}
	putEmitter(em)
	sizes := make([]int64, numReducers)
	for p := range parts {
		sizes[p] = RecordsSize(parts[p])
	}
	partSizes[i] = sizes
	mapParts[i] = parts
	return true
}

// Run executes one job over the input with the given read-only model
// (nil for model-free jobs) and returns its output and metrics. The job
// is placed at simulated time zero; use RunAt to align it with a
// FailurePlan's absolute clock.
func (e *Engine) Run(job *Job, in *Input, m *model.Model) (*Output, Metrics, error) {
	return e.RunAt(job, in, m, 0)
}

// RunAt executes one job like Run, with the job starting at the given
// simulated time. When the cluster view carries a FailurePlan the
// schedule honors it: tasks never run on dead nodes, in-flight tasks on
// a node that crashes mid-wave are killed and re-executed on survivors
// (counted in Metrics.RescheduledTasks), splits homed on dead nodes are
// re-read from their surviving replicas, and the job fails only when
// every replica of a needed split is gone or no live node remains.
func (e *Engine) RunAt(job *Job, in *Input, m *model.Model, start simtime.Time) (*Output, Metrics, error) {
	if err := e.validateConfig(); err != nil {
		return nil, Metrics{}, err
	}
	if err := job.validate(); err != nil {
		return nil, Metrics{}, err
	}
	cost := e.cost
	if job.Cost != nil {
		if err := job.Cost.Validate(); err != nil {
			return nil, Metrics{}, fmt.Errorf("job %q: %w", job.Name, err)
		}
		cost = *job.Cost
	}
	partition := job.Partition
	if partition == nil {
		partition = HashPartition
	}
	numReducers := job.NumReducers
	if numReducers == 0 {
		numReducers = e.cluster.ReduceSlots()
	}
	if job.Reducer == nil {
		numReducers = 0
	}

	var metrics Metrics
	metrics.Jobs = 1
	metrics.OverheadPhase = cost.JobOverhead
	metrics.InputRecords = in.NumRecords()

	// ---- Node liveness: with a FailurePlan registered, resolve which
	// view nodes are dead at the job start and re-home splits whose
	// home node has crashed onto a surviving replica.
	plan := e.cluster.FailurePlan()
	fabric := e.cluster.Fabric()
	var dead map[int]bool
	if plan != nil {
		dead = plan.DeadAt(start)
		live := 0
		for _, n := range e.cluster.Nodes() {
			if !dead[n] {
				live++
			}
		}
		if live == 0 {
			return nil, Metrics{}, fmt.Errorf("job %q: no live nodes in view at t=%.3fs", job.Name, float64(start))
		}
	}
	// ---- Network reachability: with a NetworkPlan registered, view
	// nodes an active outage or partition severs from the model home
	// cannot receive the model or report results, so task attempts are
	// re-homed off them like off dead nodes. Reachability is probed
	// once, at the time the first wave dispatches.
	var cut map[int]bool
	if fabric.NetworkPlan() != nil {
		severed := fabric.UnreachableFrom(e.ModelHome, start+cost.JobOverhead)
		reachable := 0
		for _, n := range e.cluster.Nodes() {
			switch {
			case dead[n]:
			case severed[n]:
				if cut == nil {
					cut = map[int]bool{}
				}
				cut[n] = true
			default:
				reachable++
			}
		}
		if reachable == 0 {
			return nil, Metrics{}, &simnet.TransferError{Kind: simnet.TransferUnreachable,
				Src: e.ModelHome, Dst: -1, At: start + cost.JobOverhead}
		}
	}
	homes := make([]int, len(in.Splits))
	for i, split := range in.Splits {
		homes[i] = split.Home
		if split.Home >= 0 && dead[split.Home] {
			homes[i] = -1
			if len(split.Replicas) > 0 {
				found := false
				for _, r := range split.Replicas {
					if !dead[r] {
						homes[i] = r
						found = true
						break
					}
				}
				if !found {
					return nil, Metrics{}, fmt.Errorf("job %q: split %d: all replicas lost to node failures", job.Name, i)
				}
			}
		}
		if homes[i] >= 0 && cut[homes[i]] {
			// Prefer a replica on the reachable side. When every
			// replica is severed the home stands: the input fetch then
			// crosses the cut and the transfer layer retries or fails
			// typed.
			for _, r := range split.Replicas {
				if !dead[r] && !cut[r] {
					homes[i] = r
					break
				}
			}
		}
	}

	// ---- Loop-aware fusion: with a JobFamily attached and a mapper
	// implementing FusedMapper, stage each split's derived structure in
	// the family's per-node cache and run map+combine fused over it.
	// Staging is serial, in split order, so cache counters and eviction
	// are deterministic at any Workers setting; splits re-homed off a
	// crashed node stage cold on the surviving replica (homes[i] keys
	// the node bucket). The fused kernel's output is byte-identical to
	// the record-at-a-time path by contract; splits whose derived form
	// is unavailable or whose shape the kernel rejects fall back to the
	// cold body below.
	var fused FusedMapper
	var deriveds []SplitDerived
	if e.Family != nil && numReducers > 0 && job.Combiner != nil {
		if fm, ok := job.Mapper.(FusedMapper); ok {
			fused = fm
			deriveds = make([]SplitDerived, len(in.Splits))
			var warmBytes int64
			for i, split := range in.Splits {
				d, hit := e.Family.acquire(homes[i], split.Records, split.Bytes, fm.NewDerived)
				deriveds[i] = d
				if hit {
					warmBytes += split.Bytes
				}
			}
			if warmBytes > 0 {
				// A warm iteration ships only the sparse model delta to
				// its workers; the hit splits' bytes are what it did not
				// have to re-stage.
				e.Family.noteIteration(e.Family.shippedDelta(job.Name, m), warmBytes)
			}
		}
	}

	// ---- Map phase: execute user code per split, partition and
	// combine the output.
	nSplits := len(in.Splits)
	mapParts := make([][][]Record, nSplits) // split -> partition -> records
	partSizes := make([][]int64, nSplits)   // split -> partition -> encoded bytes, computed once
	mapOnlyOut := make([][]Record, nSplits)
	mapCosts := make([]float64, nSplits)
	mapOutBytes := make([]int64, nSplits)
	mapOutRecords := make([]int64, nSplits)
	errs := make([]error, nSplits)

	e.parallelFor(nSplits, func(i int) {
		split := in.Splits[i]
		if fused != nil && deriveds[i] != nil &&
			e.fusedMapTask(fused, deriveds[i], i, split, job, m, cost, numReducers, partition,
				mapCosts, mapOutBytes, mapOutRecords, mapParts, partSizes, errs) {
			return
		}
		em := getEmitter()
		for _, rec := range split.Records {
			if err := job.Mapper.Map(rec.Key, rec.Value, m, em); err != nil {
				errs[i] = fmt.Errorf("job %q map task %d: %w", job.Name, i, err)
				return
			}
		}
		outBytes := RecordsSize(em.records)
		mapOutBytes[i] = outBytes
		mapOutRecords[i] = int64(len(em.records))
		mapCosts[i] = cost.MapCostPerRecord*float64(len(split.Records)) +
			cost.MapCostPerByte*float64(split.Bytes) +
			cost.EmitCostPerByte*float64(outBytes)

		if numReducers == 0 {
			// The emitted records are the task's output: hand the
			// buffer off instead of recycling it.
			mapOnlyOut[i] = em.records
			return
		}
		// Partition in two passes — count, then fill exactly-sized
		// slices — so per-partition buffers never re-grow.
		idx := getPartIdx(len(em.records))
		counts := getCounts(numReducers)
		for j, r := range em.records {
			p := partition(r.Key, numReducers)
			idx[j] = int32(p)
			counts[p]++
		}
		parts := make([][]Record, numReducers)
		for p, c := range counts {
			if c > 0 {
				parts[p] = make([]Record, 0, c)
			}
		}
		for j, r := range em.records {
			p := idx[j]
			parts[p] = append(parts[p], r)
		}
		putCounts(counts)
		putPartIdx(idx)
		putEmitter(em)
		if job.Combiner != nil {
			for p := range parts {
				combined, err := runGrouped(job.Combiner, parts[p], m)
				if err != nil {
					errs[i] = fmt.Errorf("job %q combine task %d: %w", job.Name, i, err)
					return
				}
				parts[p] = combined
			}
		}
		// Encoded sizes of the post-combine partitions, computed here
		// exactly once; the reduce-in accumulation and the shuffle-flow
		// construction below both read this table instead of
		// re-serializing.
		sizes := make([]int64, numReducers)
		for p := range parts {
			sizes[p] = RecordsSize(parts[p])
		}
		partSizes[i] = sizes
		mapParts[i] = parts
	})
	for _, err := range errs {
		if err != nil {
			return nil, Metrics{}, err
		}
	}
	for i := range mapOutBytes {
		metrics.MapOutputBytes += mapOutBytes[i]
		metrics.MapOutputRecords += mapOutRecords[i]
	}

	// ---- Schedule map tasks (with failure re-execution).
	tasks := make([]simcluster.Task, nSplits)
	for i := range in.Splits {
		tasks[i] = simcluster.Task{Cost: mapCosts[i], Preferred: homes[i]}
		if e.FailEveryNthMapTask > 0 && (i+1)%e.FailEveryNthMapTask == 0 {
			// The failed attempt's work is lost and the re-execution
			// runs after it, so the task occupies a slot for twice its
			// cost — Hadoop-style recovery without result corruption.
			tasks[i].Cost *= 2
			metrics.TaskRetries++
		}
		if e.StraggleEveryNthMapTask > 0 && (i+1)%e.StraggleEveryNthMapTask == 0 {
			slowdown := e.StragglerSlowdown
			if slowdown == 0 { // validateConfig guarantees 0 or >= 1
				slowdown = 4
			}
			metrics.StragglerTasks++
			if e.SpeculativeExecution {
				// A backup copy launches once the task is observed
				// lagging; the winner finishes ≈30% late.
				tasks[i].Cost *= 1.3
				metrics.SpeculativeTasks++
			} else {
				tasks[i].Cost *= slowdown
			}
		}
	}
	var placements []simcluster.Placement
	var mapMakespan simtime.Duration
	if plan != nil || len(cut) > 0 {
		var killed int
		var err error
		placements, mapMakespan, killed, err = e.cluster.ScheduleFailureAware(tasks, e.cluster.Config().MapSlotsPerNode, start+cost.JobOverhead, cut)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("job %q map wave: %w", job.Name, err)
		}
		metrics.RescheduledTasks += killed
	} else {
		placements, mapMakespan = e.cluster.Schedule(tasks, e.cluster.Config().MapSlotsPerNode)
	}
	metrics.MapTasks = nSplits

	// Non-local tasks pull their split from its home node.
	var inputFlows []simnet.Flow
	// splitNode records where each split's map task ran; shuffle flows
	// originate there.
	splitNode := make([]int, nSplits)
	for i, p := range placements {
		splitNode[i] = p.Node
		if !p.Local && homes[i] >= 0 {
			inputFlows = append(inputFlows, simnet.Flow{Src: homes[i], Dst: p.Node, Bytes: in.Splits[i].Bytes})
			metrics.NonLocalInputBytes += in.Splits[i].Bytes
		}
	}
	inputRes, err := e.transferAt(inputFlows, start+cost.JobOverhead)
	if err != nil {
		return nil, Metrics{}, fmt.Errorf("job %q input fetch: %w", job.Name, err)
	}
	chargeRetries(&metrics, inputRes, &metrics.NonLocalInputBytes)
	metrics.MapPhase = max(mapMakespan, inputRes.elapsed)

	// ---- Model distribution: every node running a task needs the
	// current model (Hadoop distributed cache: one copy per node).
	if m != nil && m.Len() > 0 {
		nodesNeeding := map[int]bool{}
		for _, p := range placements {
			nodesNeeding[p.Node] = true
		}
		// Reduce nodes are chosen below, but every node in the view is
		// a potential reduce node; distribute wherever map tasks run
		// now and charge reduce-node distribution after placement.
		metrics.ModelPhase, err = e.distributeModel(m, nodesNeeding, job.PartitionedModel, dead, cut, start+cost.JobOverhead, &metrics)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("job %q model distribution: %w", job.Name, err)
		}
	}

	// ---- Map-only jobs stop here.
	if numReducers == 0 {
		nOut := 0
		for i := range mapOnlyOut {
			nOut += len(mapOnlyOut[i])
		}
		out := &Output{Records: make([]Record, 0, nOut)}
		for i := range mapOnlyOut {
			out.Records = append(out.Records, mapOnlyOut[i]...)
		}
		metrics.OutputRecords = int64(nOut)
		for _, b := range mapOutBytes {
			metrics.OutputBytes += b
		}
		metrics.Duration = metrics.OverheadPhase + metrics.ModelPhase + metrics.MapPhase
		e.observe(metrics, start)
		return out, metrics, nil
	}

	// ---- Reduce phase: gather, group, execute. Partition sizes come
	// from the partSizes table filled during the map phase.
	reduceIn := make([][]Record, numReducers)
	for p := 0; p < numReducers; p++ {
		total := 0
		for i := 0; i < nSplits; i++ {
			total += len(mapParts[i][p])
		}
		if total > 0 {
			reduceIn[p] = make([]Record, 0, total)
		}
	}
	for i := 0; i < nSplits; i++ {
		for p := 0; p < numReducers; p++ {
			recs := mapParts[i][p]
			reduceIn[p] = append(reduceIn[p], recs...)
			metrics.ShuffleBytes += partSizes[i][p]
			metrics.ShuffleRecords += int64(len(recs))
		}
	}

	reduceOut := make([][]Record, numReducers)
	reduceOutBytes := make([]int64, numReducers)
	reduceCosts := make([]float64, numReducers)
	reduceValues := make([]int64, numReducers)
	rerrs := make([]error, numReducers)
	e.parallelFor(numReducers, func(p int) {
		out, err := runGrouped(job.Reducer, reduceIn[p], m)
		if err != nil {
			rerrs[p] = fmt.Errorf("job %q reduce task %d: %w", job.Name, p, err)
			return
		}
		reduceOut[p] = out
		reduceOutBytes[p] = RecordsSize(out)
		reduceValues[p] = int64(len(reduceIn[p]))
		reduceCosts[p] = cost.ReduceCostPerValue*float64(len(reduceIn[p])) +
			cost.EmitCostPerByte*float64(reduceOutBytes[p])
	})
	for _, err := range rerrs {
		if err != nil {
			return nil, Metrics{}, err
		}
	}

	rTasks := make([]simcluster.Task, numReducers)
	for p := range rTasks {
		rTasks[p] = simcluster.Task{Cost: reduceCosts[p], Preferred: -1}
	}
	var rPlacements []simcluster.Placement
	var reduceMakespan simtime.Duration
	rStart := start + metrics.OverheadPhase + metrics.ModelPhase + metrics.MapPhase
	if plan != nil || len(cut) > 0 {
		// The reduce wave starts once map output and the model are in
		// place; crashes inside the wave reschedule reduce attempts.
		var killed int
		var err error
		rPlacements, reduceMakespan, killed, err = e.cluster.ScheduleFailureAware(rTasks, e.cluster.Config().ReduceSlotsPerNode, rStart, cut)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("job %q reduce wave: %w", job.Name, err)
		}
		metrics.RescheduledTasks += killed
	} else {
		rPlacements, reduceMakespan = e.cluster.Schedule(rTasks, e.cluster.Config().ReduceSlotsPerNode)
	}
	metrics.ReduceTasks = numReducers
	metrics.ReducePhase = reduceMakespan
	for _, v := range reduceValues {
		metrics.ReduceInputValues += v
	}

	// Model distribution to reduce nodes that did not run map tasks.
	if m != nil && m.Len() > 0 {
		nodesNeeding := map[int]bool{}
		for _, p := range placements {
			nodesNeeding[p.Node] = false // already have it
		}
		extra := map[int]bool{}
		for _, p := range rPlacements {
			if _, have := nodesNeeding[p.Node]; !have {
				extra[p.Node] = true
			}
		}
		extraModel, err := e.distributeModel(m, extra, job.PartitionedModel, dead, cut, rStart, &metrics)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("job %q model distribution: %w", job.Name, err)
		}
		metrics.ModelPhase += extraModel
	}

	// ---- Shuffle: post-combine partitions travel from the node each
	// map task ran on to the node its reduce task runs on.
	var shuffleFlows []simnet.Flow
	for i := 0; i < nSplits; i++ {
		for p := 0; p < numReducers; p++ {
			sz := partSizes[i][p]
			if sz == 0 {
				continue
			}
			src, dst := splitNode[i], rPlacements[p].Node
			if src != dst {
				metrics.ShuffleNetworkBytes += sz
				if fabric.Rack(src) != fabric.Rack(dst) {
					metrics.ShuffleCrossRackBytes += sz
				}
			}
			shuffleFlows = append(shuffleFlows, simnet.Flow{Src: src, Dst: dst, Bytes: sz})
		}
	}
	shuffleRes, err := e.transferAt(shuffleFlows, rStart)
	if err != nil {
		return nil, Metrics{}, fmt.Errorf("job %q shuffle: %w", job.Name, err)
	}
	chargeRetries(&metrics, shuffleRes, &metrics.ShuffleNetworkBytes)
	metrics.ShuffleCrossRackBytes += shuffleRes.retryCrossRack
	metrics.ShufflePhase = shuffleRes.elapsed * simtime.Duration(1-cost.ShuffleOverlap)

	nOut := 0
	for p := range reduceOut {
		nOut += len(reduceOut[p])
	}
	out := &Output{ByReducer: reduceOut, ReducerNodes: make([]int, numReducers), Records: make([]Record, 0, nOut)}
	for p := range reduceOut {
		out.Records = append(out.Records, reduceOut[p]...)
		out.ReducerNodes[p] = rPlacements[p].Node
		metrics.OutputBytes += reduceOutBytes[p]
	}
	metrics.OutputRecords = int64(nOut)
	metrics.Duration = metrics.OverheadPhase + metrics.ModelPhase + metrics.MapPhase +
		metrics.ShufflePhase + metrics.ReducePhase
	e.observe(metrics, start)
	return out, metrics, nil
}

// observe folds one framework job's metrics into the engine's registry:
// cumulative per-phase counters plus series samples stamped at the job's
// simulated end time, so phase weight can be read over the run.
func (e *Engine) observe(m Metrics, start simtime.Time) {
	if e.Obs == nil {
		return
	}
	end := start + simtime.Time(m.Duration)
	e.Obs.Counter("mapred.jobs").Add(float64(m.Jobs))
	for _, p := range []struct {
		name string
		d    simtime.Duration
	}{
		{"map", m.MapPhase},
		{"shuffle", m.ShufflePhase},
		{"reduce", m.ReducePhase},
		{"model", m.ModelPhase},
		{"overhead", m.OverheadPhase},
	} {
		e.Obs.Counter("mapred.phase_seconds", metrics.L("phase", p.name)...).Add(float64(p.d))
	}
	e.Obs.Counter("mapred.shuffle_network_bytes").Add(float64(m.ShuffleNetworkBytes))
	e.Obs.Counter("mapred.shuffle_cross_rack_bytes").Add(float64(m.ShuffleCrossRackBytes))
	e.Obs.Counter("mapred.model_bytes").Add(float64(m.ModelBytes))
	if m.TransferRetries > 0 || m.RetryBytes > 0 {
		e.Obs.Counter("retry.transfers").Add(float64(m.TransferRetries))
		e.Obs.Counter("retry.bytes").Add(float64(m.RetryBytes))
	}
	e.Obs.Series("mapred.job_seconds").Sample(end, float64(m.Duration))
	e.Obs.Series("mapred.shuffle_seconds").Sample(end, float64(m.ShufflePhase))
}

// observeLocal records an in-memory execution: local jobs have no
// absolute clock or network phases, so only counters apply.
func (e *Engine) observeLocal(m Metrics) {
	if e.Obs == nil {
		return
	}
	e.Obs.Counter("mapred.local_jobs").Add(float64(m.LocalJobs))
	e.Obs.Counter("mapred.local_records").Add(float64(m.LocalRecords))
	// Local map/reduce compute lands in the same phase counters the
	// framework path uses, so the registry's phase totals stay equal to
	// the driver's Metrics accumulator.
	e.Obs.Counter("mapred.phase_seconds", metrics.L("phase", "map")...).Add(float64(m.MapPhase))
	e.Obs.Counter("mapred.phase_seconds", metrics.L("phase", "reduce")...).Add(float64(m.ReducePhase))
}

// distributeModel charges delivery of m to the given nodes (map values
// that are false are skipped) from the model's replica nodes at
// simulated time at, and returns the transfer time. When partitioned
// is true, each node pulls only its share of the model; otherwise
// every node receives a full copy. Dead nodes and nodes cut off by a
// network fault (both nil when nothing is scripted) never serve as
// sources.
func (e *Engine) distributeModel(m *model.Model, nodes map[int]bool, partitioned bool, dead, cut map[int]bool, at simtime.Time, metrics *Metrics) (simtime.Duration, error) {
	size := m.Size()
	view := e.cluster.Nodes()
	if len(dead) > 0 || len(cut) > 0 {
		live := make([]int, 0, len(view))
		for _, n := range view {
			if !dead[n] && !cut[n] {
				live = append(live, n)
			}
		}
		view = live
	}
	nSources := e.ModelSources
	if nSources < 1 {
		nSources = 1
	}
	if nSources > len(view) {
		nSources = len(view)
	}
	// Replica nodes: the model home plus its successors in the view,
	// mirroring the DFS write pipeline's placement. A crashed home
	// falls back to the first live node.
	homeIdx := 0
	for i, n := range view {
		if n == e.ModelHome {
			homeIdx = i
			break
		}
	}
	sources := make([]int, nSources)
	isSource := map[int]bool{}
	for i := range sources {
		sources[i] = view[(homeIdx+i)%len(view)]
		isSource[sources[i]] = true
	}

	var flows []simnet.Flow
	targets := make([]int, 0, len(nodes))
	for n, need := range nodes {
		if need {
			targets = append(targets, n)
		}
	}
	sort.Ints(targets)
	perNode := size
	if partitioned && len(targets) > 0 {
		perNode = size / int64(len(targets))
	}
	for i, n := range targets {
		if isSource[n] {
			continue
		}
		flows = append(flows, simnet.Flow{Src: sources[i%nSources], Dst: n, Bytes: perNode})
		metrics.ModelBytes += perNode
	}
	res, err := e.transferAt(flows, at)
	if err != nil {
		return 0, err
	}
	chargeRetries(metrics, res, &metrics.ModelBytes)
	return res.elapsed, nil
}

// transfer records flows on the fabric and charges their time under the
// engine's configured network model.
func (e *Engine) transfer(flows []simnet.Flow) simtime.Duration {
	fabric := e.cluster.Fabric()
	fabric.Record(flows)
	if e.FairSharingNetwork {
		return fabric.MaxMinTransferTime(flows)
	}
	return fabric.TransferTime(flows)
}

// sortRecordsByKey stably sorts recs by key in place. Stability keeps
// within-key values in arrival order, so grouped execution over the
// sorted slice visits exactly the (key, values) sequence the previous
// map-based grouping produced.
func sortRecordsByKey(recs []Record) {
	if slices.IsSortedFunc(recs, compareRecordKeys) {
		return
	}
	// Hash-assisted stable counting sort. Intermediate key sets are
	// duplicate-heavy (25 centroid keys across 100k points is typical),
	// where a general comparison sort pays Θ(n log n) string compares
	// and, if stable, Θ(n log n) extra moves for in-place merging. Here
	// each record is hashed once to its key's group, only the (few)
	// distinct keys are comparison-sorted, and a single in-order scatter
	// through a pooled buffer places every record: stable by
	// construction, O(n + k log k) total.
	groupOf := make(map[string]int32, 64)
	keys := make([]string, 0, 64)
	counts := make([]int32, 0, 64)
	idx := getPartIdx(len(recs))
	for j := range recs {
		g, ok := groupOf[recs[j].Key]
		if !ok {
			g = int32(len(keys))
			keys = append(keys, recs[j].Key)
			counts = append(counts, 0)
			groupOf[recs[j].Key] = g
		}
		idx[j] = g
		counts[g]++
	}
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int { return strings.Compare(keys[a], keys[b]) })
	// start[g] is group g's first output slot; it advances as the
	// scatter fills the group.
	start := make([]int32, len(keys))
	var off int32
	for _, g := range order {
		start[g] = off
		off += counts[g]
	}
	scratch := getRecScratch(len(recs))
	for j := range recs {
		g := idx[j]
		scratch[start[g]] = recs[j]
		start[g]++
	}
	copy(recs, scratch)
	putPartIdx(idx)
	putRecScratch(scratch)
}

func compareRecordKeys(a, b Record) int { return strings.Compare(a.Key, b.Key) }

// reduceSorted applies r to each contiguous key group of the
// already-sorted recs, emitting into em. The values slice handed to the
// reducer is a scratch buffer reused across keys (see Reducer's
// documented lifetime contract); the returned slice is the grown scratch
// for the caller to reuse.
func reduceSorted(r Reducer, recs []Record, m *model.Model, em Emitter, vals []writable.Writable) ([]writable.Writable, error) {
	for lo := 0; lo < len(recs); {
		hi := lo + 1
		for hi < len(recs) && recs[hi].Key == recs[lo].Key {
			hi++
		}
		vals = vals[:0]
		for _, rec := range recs[lo:hi] {
			vals = append(vals, rec.Value)
		}
		if err := r.Reduce(recs[lo].Key, vals, m, em); err != nil {
			return vals, err
		}
		lo = hi
	}
	return vals, nil
}

// runGrouped groups records by key with an in-place stable sort and a
// linear group scan, and applies the reducer, returning its emissions.
// Keys are visited in sorted order and, within a key, values keep their
// arrival order, so execution is deterministic. The input slice is
// reordered in place.
func runGrouped(r Reducer, recs []Record, m *model.Model) ([]Record, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	sortRecordsByKey(recs)
	em := getEmitter()
	vals, err := reduceSorted(r, recs, m, em, getVals())
	putVals(vals)
	if err != nil {
		putEmitter(em)
		return nil, err
	}
	out := append([]Record(nil), em.records...)
	putEmitter(em)
	return out, nil
}

// runGroupedParallel is runGrouped with key groups sharded across the
// engine's worker pool: records are stably sorted by key once, the
// contiguous key groups are cut into at most one contiguous shard per
// worker (balanced by record count, never splitting a key), and shard
// outputs are concatenated in key order. Output is therefore
// byte-identical to the serial scan for any worker count.
func (e *Engine) runGroupedParallel(r Reducer, recs []Record, m *model.Model) ([]Record, error) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(recs) == 0 {
		return runGrouped(r, recs, m)
	}
	sortRecordsByKey(recs)
	// Cut points are group starts nearest the ideal even splits.
	cuts := make([]int, 1, workers+1)
	next := 1
	for i := 1; i < len(recs) && next < workers; i++ {
		if recs[i].Key != recs[i-1].Key && i*workers >= next*len(recs) {
			cuts = append(cuts, i)
			next++
		}
	}
	cuts = append(cuts, len(recs))
	nShards := len(cuts) - 1
	outs := make([]*listEmitter, nShards)
	shErrs := make([]error, nShards)
	e.parallelFor(nShards, func(s int) {
		em := getEmitter()
		vals, err := reduceSorted(r, recs[cuts[s]:cuts[s+1]], m, em, getVals())
		putVals(vals)
		if err != nil {
			shErrs[s] = err
		}
		outs[s] = em
	})
	// Shards hold disjoint, ascending key ranges, so the first failing
	// shard holds the lowest failing key — the same error a serial scan
	// reports first.
	for _, err := range shErrs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, o := range outs {
		total += len(o.records)
	}
	out := make([]Record, 0, total)
	for _, o := range outs {
		out = append(out, o.records...)
		putEmitter(o)
	}
	return out, nil
}

// parallelFor runs worker(i) for i in [0,n) on a bounded pool. Output
// slots are indexed, so results are deterministic regardless of
// interleaving. Work is handed out in index ranges rather than single
// indices, so tiny tasks do not pay one channel operation each. A panic
// in any worker is re-raised on the calling goroutine after the pool
// drains.
func (e *Engine) parallelFor(n int, worker func(int)) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			worker(i)
		}
		return
	}
	// ~4 chunks per worker balances scheduling slack against channel
	// traffic; a chunk is never smaller than one index.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	type span struct{ lo, hi int }
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	next := make(chan span)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				func() {
					// Recover so the feeder never blocks on a dead
					// pool; the first panic is re-raised by the caller.
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicVal = r })
						}
					}()
					for i := s.lo; i < s.hi; i++ {
						worker(i)
					}
				}()
			}
		}()
	}
	for lo := 0; lo < n; lo += chunk {
		next <- span{lo, min(lo+chunk, n)}
	}
	close(next)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// String renders the metrics as a compact multi-line report.
func (m Metrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "duration %.3fs (map %.3fs, shuffle %.3fs, reduce %.3fs, model %.3fs, overhead %.3fs)\n",
		float64(m.Duration), float64(m.MapPhase), float64(m.ShufflePhase),
		float64(m.ReducePhase), float64(m.ModelPhase), float64(m.OverheadPhase))
	fmt.Fprintf(&sb, "jobs %d (+%d local), tasks %d map / %d reduce, retries %d, stragglers %d (%d speculated)\n",
		m.Jobs, m.LocalJobs, m.MapTasks, m.ReduceTasks, m.TaskRetries, m.StragglerTasks, m.SpeculativeTasks)
	fmt.Fprintf(&sb, "records: %d in, %d map-out, %d shuffled, %d reduced, %d out\n",
		m.InputRecords, m.MapOutputRecords, m.ShuffleRecords, m.ReduceInputValues, m.OutputRecords)
	fmt.Fprintf(&sb, "bytes: %d map-out, %d shuffled (%d network, %d cross-rack), %d model-dist, %d out\n",
		m.MapOutputBytes, m.ShuffleBytes, m.ShuffleNetworkBytes, m.ShuffleCrossRackBytes,
		m.ModelBytes, m.OutputBytes)
	if m.NodeCrashes > 0 || m.RescheduledTasks > 0 || m.ReReplicationBytes > 0 {
		fmt.Fprintf(&sb, "faults: %d node crashes, %d rescheduled tasks, %d re-replication bytes\n",
			m.NodeCrashes, m.RescheduledTasks, m.ReReplicationBytes)
	}
	if m.TransferRetries > 0 || m.RetryBytes > 0 {
		fmt.Fprintf(&sb, "network faults: %d transfer retries, %d retry bytes\n",
			m.TransferRetries, m.RetryBytes)
	}
	return sb.String()
}

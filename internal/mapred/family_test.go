package mapred

import (
	"math/rand"
	"reflect"
	"testing"
)

// famDerived is a trivially-sized derived structure for cache tests.
type famDerived struct{ bytes int64 }

func (d *famDerived) SizeBytes() int64 { return d.bytes }

func buildFam(bytes int64) func([]Record) SplitDerived {
	return func([]Record) SplitDerived { return &famDerived{bytes: bytes} }
}

// famKey mirrors a splitIdent for test bookkeeping: backing-array
// offset, length, and epoch fully determine the identity.
type famKey struct {
	start, n int
	epoch    uint64
}

// TestFamilyKeysNeverCollide drives acquire with thousands of random
// subslices of one backing array across epoch bumps: a hit must only
// ever be served for a (subslice, epoch) pair staged earlier in the
// same epoch — distinct keys never collide.
func TestFamilyKeysNeverCollide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	backing := make([]Record, 512)
	f := NewJobFamily("collide", 1<<40) // effectively unbounded: no capacity evictions
	seen := map[famKey]bool{}
	for i := 0; i < 5000; i++ {
		if rng.Intn(97) == 0 {
			// New epoch: every previously staged key is dead; re-staging
			// the same subslice must miss.
			f.Invalidate()
		}
		start := rng.Intn(len(backing) - 1)
		n := 1 + rng.Intn(len(backing)-start)
		k := famKey{start: start, n: n, epoch: f.epoch}
		_, hit := f.acquire(rng.Intn(4), backing[start:start+n], int64(n), buildFam(8))
		// Node is part of residency, not identity — but each node has
		// its own entry map, so a hit requires this (key, node) staged
		// before. Weaken to the soundness half: a hit for a key never
		// staged in this epoch is a collision.
		if hit && !seen[k] {
			t.Fatalf("iteration %d: hit on never-staged key %+v — ident collision", i, k)
		}
		seen[k] = true
	}
	stats := f.Stats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("degenerate drive: %+v", stats)
	}
}

// TestFamilyEvictionDeterministic replays one randomized access
// sequence against two fresh families with a deliberately tiny budget:
// the eviction decisions, event logs and final counters must be
// identical — LRU order depends only on the access sequence.
func TestFamilyEvictionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	backing := make([]Record, 256)
	type access struct {
		node, start, n int
	}
	var seq []access
	for i := 0; i < 800; i++ {
		start := rng.Intn(len(backing) - 1)
		seq = append(seq, access{
			node:  rng.Intn(3),
			start: start,
			n:     1 + rng.Intn(min(32, len(backing)-start)),
		})
	}
	run := func() ([]CacheEvent, FamilyStats) {
		f := NewJobFamily("evict", 64) // tiny: a few entries per node
		for _, a := range seq {
			f.acquire(a.node, backing[a.start:a.start+a.n], int64(a.n), buildFam(8))
		}
		return f.DrainEvents(), f.Stats()
	}
	ev1, s1 := run()
	ev2, s2 := run()
	if s1.Evictions == 0 {
		t.Fatalf("budget never forced an eviction — test drives nothing: %+v", s1)
	}
	if s1 != s2 {
		t.Fatalf("stats differ between identical replays:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event logs differ between identical replays (%d vs %d events)", len(ev1), len(ev2))
	}
}

// TestFamilyEvictNodeDropsOnlyThatNode stages entries on three nodes
// and crashes one: exactly its entries go, the others stay resident,
// and the global accounting matches the per-node view.
func TestFamilyEvictNodeDropsOnlyThatNode(t *testing.T) {
	backing := make([]Record, 30)
	f := NewJobFamily("crash", 1<<40)
	for node := 0; node < 3; node++ {
		for s := 0; s < 3; s++ {
			lo := node*10 + s*3
			f.acquire(node, backing[lo:lo+3], 3, buildFam(5))
		}
	}
	entries, bytes := f.EvictNode(1)
	if entries != 3 || bytes != 3*(3+5) {
		t.Fatalf("EvictNode(1) dropped %d entries / %d bytes, want 3 / 24", entries, bytes)
	}
	if n, b := f.NodeResident(1); n != 0 || b != 0 {
		t.Fatalf("node 1 still resident: %d entries, %d bytes", n, b)
	}
	for _, node := range []int{0, 2} {
		if n, b := f.NodeResident(node); n != 3 || b != 24 {
			t.Fatalf("node %d lost entries to another node's eviction: %d entries, %d bytes", node, n, b)
		}
	}
	if got := f.Stats().ResidentBytes; got != 48 {
		t.Fatalf("ResidentBytes = %d after one node's eviction, want 48", got)
	}
	// A crashed node's splits re-staged elsewhere must miss.
	if _, hit := f.acquire(2, backing[10:13], 3, buildFam(5)); hit {
		t.Fatal("evicted split hit on a different node")
	}
}

// TestFamilyReleaseDropsEverything covers the preemption path: Release
// returns every entry on every node and zeroes residency, and a
// subsequent acquire re-stages cold.
func TestFamilyReleaseDropsEverything(t *testing.T) {
	backing := make([]Record, 20)
	f := NewJobFamily("release", 1<<40)
	f.acquire(0, backing[0:5], 5, buildFam(2))
	f.acquire(1, backing[5:10], 5, buildFam(2))
	entries, bytes := f.Release()
	if entries != 2 || bytes != 2*(5+2) {
		t.Fatalf("Release dropped %d entries / %d bytes, want 2 / 14", entries, bytes)
	}
	if got := f.Stats().ResidentBytes; got != 0 {
		t.Fatalf("ResidentBytes = %d after Release", got)
	}
	if _, hit := f.acquire(0, backing[0:5], 5, buildFam(2)); hit {
		t.Fatal("released entry served a hit")
	}
}

// FuzzFamilyAcquire feeds arbitrary op sequences (acquire / crash /
// release / epoch bump) into a small-budget family and checks the
// structural invariants: hits only on keys staged this epoch, per-node
// residency within budget whenever more than one entry is held, and
// global ResidentBytes equal to the per-node sum.
func FuzzFamilyAcquire(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 9, 1, 17, 2, 5, 3, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const cap = 96
		backing := make([]Record, 64)
		fam := NewJobFamily("fuzz", cap)
		seen := map[famKey]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%8, int(data[i+1])
			node := arg % 4
			switch op {
			case 6:
				n, b := fam.EvictNode(node)
				if (n == 0) != (b == 0) {
					t.Fatalf("EvictNode(%d) = %d entries, %d bytes", node, n, b)
				}
			case 7:
				fam.Invalidate()
			default:
				start := arg % (len(backing) - 1)
				n := 1 + int(op)*7%(len(backing)-start)
				k := famKey{start: start, n: n, epoch: fam.epoch}
				_, hit := fam.acquire(node, backing[start:start+n], int64(n), buildFam(16))
				if hit && !seen[k] {
					t.Fatalf("hit on never-staged key %+v", k)
				}
				seen[k] = true
				if entries, bytes := fam.NodeResident(node); entries > 1 && bytes > cap {
					t.Fatalf("node %d over budget with %d entries (%d > %d bytes)", node, entries, bytes, cap)
				}
			}
			var sum int64
			for n := 0; n < 4; n++ {
				_, b := fam.NodeResident(n)
				sum += b
			}
			if got := fam.Stats().ResidentBytes; got != sum {
				t.Fatalf("ResidentBytes %d != per-node sum %d", got, sum)
			}
		}
	})
}

package mapred

import "repro/internal/simcluster"

// Split is one map task's worth of input: a batch of records resident on
// a home node. Splits model cached DFS blocks — the baseline of the PIC
// paper already avoids re-reading input from remote storage each
// iteration, and so does this runtime.
type Split struct {
	Records []Record
	// Home is the node holding the split's data, or -1 when the data
	// has no affinity.
	Home int
	// Replicas optionally lists every node holding a copy of the
	// split's underlying block (Home first, as dfs.Block.Replicas
	// stores them). When Home crashes, the engine re-reads the split
	// from the first surviving replica; if Replicas is non-empty and
	// none survive, the job fails with a data-loss error. An empty list
	// means the split has no tracked replicas: a crash of Home then
	// only costs the locality preference.
	Replicas []int
	// Bytes caches the encoded size of Records.
	Bytes int64
}

// Input is a distributed dataset: the list of splits a job maps over.
type Input struct {
	Splits []Split
}

// NewInput builds an input by dealing records round-robin into
// splitCount splits homed round-robin on the cluster view's nodes.
// Contiguous runs of records stay together: records are dealt in
// chunks, not one at a time, preserving any locality in their order.
func NewInput(records []Record, c *simcluster.Cluster, splitCount int) *Input {
	if splitCount <= 0 {
		panic("mapred: splitCount must be positive")
	}
	if splitCount > len(records) && len(records) > 0 {
		splitCount = len(records)
	}
	nodes := c.Nodes()
	in := &Input{Splits: make([]Split, 0, splitCount)}
	for i := 0; i < splitCount; i++ {
		lo := i * len(records) / splitCount
		hi := (i + 1) * len(records) / splitCount
		recs := records[lo:hi]
		in.Splits = append(in.Splits, Split{
			Records: recs,
			Home:    nodes[i%len(nodes)],
			Bytes:   RecordsSize(recs),
		})
	}
	return in
}

// SplitSource describes a dataset that can produce any split's records
// on demand into a caller-owned buffer — the out-of-core counterpart of
// a materialized record slice. Implementations must be deterministic:
// Records(i, dst) yields the same records regardless of call order or
// buffer reuse, so streamed and resident consumers see identical bytes.
type SplitSource interface {
	// Splits reports how many splits the source produces.
	Splits() int
	// Records appends split i's records to dst (typically dst[:0] of a
	// reused buffer) and returns the extended slice. Returned records
	// may alias generation scratch only if regenerating them later
	// yields identical values; values must not change once returned.
	Records(i int, dst []Record) []Record
}

// SourceRange computes the record index range [lo, hi) of split i when
// n records are dealt contiguously into count splits — the same math
// NewInput uses, so streamed splits line up with resident ones.
func SourceRange(i, count int, n int64) (lo, hi int64) {
	return int64(i) * n / int64(count), int64(i+1) * n / int64(count)
}

// StreamStats summarizes one streaming pass over a SplitSource.
type StreamStats struct {
	// Splits and Records count what the pass visited.
	Splits  int
	Records int64
	// Bytes is the total encoded size of every record visited.
	Bytes int64
	// PeakResidentBytes is the largest encoded size of any single
	// split — the pass's high-water memory mark, which must stay
	// independent of the dataset size for a correctly tiered source.
	PeakResidentBytes int64
}

// StreamSplits drives fn over every split of src with at most one
// split's records resident at a time. The record buffer is reused
// across splits, so fn must not retain the slice (copy anything it
// keeps). Homes follow NewInput's round-robin so a streamed pass visits
// the same placement a resident Input would have.
func StreamSplits(src SplitSource, c *simcluster.Cluster, fn func(Split) error) (StreamStats, error) {
	nodes := c.Nodes()
	var stats StreamStats
	var buf []Record
	n := src.Splits()
	for i := 0; i < n; i++ {
		buf = src.Records(i, buf[:0])
		sp := Split{
			Records: buf,
			Home:    nodes[i%len(nodes)],
			Bytes:   RecordsSize(buf),
		}
		stats.Splits++
		stats.Records += int64(len(buf))
		stats.Bytes += sp.Bytes
		if sp.Bytes > stats.PeakResidentBytes {
			stats.PeakResidentBytes = sp.Bytes
		}
		if fn != nil {
			if err := fn(sp); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// InputFromSource materializes a SplitSource into a resident Input —
// byte-identical to what StreamSplits shows its callback split by
// split, so the engine's in-memory job path and tests can consume a
// streamed dataset directly. Unlike StreamSplits, the result holds
// every record at once; use it below the memory-bound tiers.
func InputFromSource(src SplitSource, c *simcluster.Cluster) *Input {
	in := &Input{Splits: make([]Split, 0, src.Splits())}
	_, err := StreamSplits(src, c, func(sp Split) error {
		recs := make([]Record, len(sp.Records))
		copy(recs, sp.Records)
		sp.Records = recs
		in.Splits = append(in.Splits, sp)
		return nil
	})
	if err != nil {
		panic("mapred: StreamSplits returned an error without a callback error: " + err.Error())
	}
	return in
}

// InputFromSplits wraps pre-assembled splits, computing their sizes.
func InputFromSplits(splits []Split) *Input {
	for i := range splits {
		if splits[i].Bytes == 0 {
			splits[i].Bytes = RecordsSize(splits[i].Records)
		}
	}
	return &Input{Splits: splits}
}

// NumRecords reports the total record count across splits.
func (in *Input) NumRecords() int64 {
	var n int64
	for _, s := range in.Splits {
		n += int64(len(s.Records))
	}
	return n
}

// TotalBytes reports the total encoded size across splits.
func (in *Input) TotalBytes() int64 {
	var n int64
	for _, s := range in.Splits {
		n += s.Bytes
	}
	return n
}

// Records returns all records in split order. The result aliases the
// splits' storage; callers must not mutate it.
func (in *Input) Records() []Record {
	out := make([]Record, 0, in.NumRecords())
	for _, s := range in.Splits {
		out = append(out, s.Records...)
	}
	return out
}

package mapred

import "repro/internal/simcluster"

// Split is one map task's worth of input: a batch of records resident on
// a home node. Splits model cached DFS blocks — the baseline of the PIC
// paper already avoids re-reading input from remote storage each
// iteration, and so does this runtime.
type Split struct {
	Records []Record
	// Home is the node holding the split's data, or -1 when the data
	// has no affinity.
	Home int
	// Replicas optionally lists every node holding a copy of the
	// split's underlying block (Home first, as dfs.Block.Replicas
	// stores them). When Home crashes, the engine re-reads the split
	// from the first surviving replica; if Replicas is non-empty and
	// none survive, the job fails with a data-loss error. An empty list
	// means the split has no tracked replicas: a crash of Home then
	// only costs the locality preference.
	Replicas []int
	// Bytes caches the encoded size of Records.
	Bytes int64
}

// Input is a distributed dataset: the list of splits a job maps over.
type Input struct {
	Splits []Split
}

// NewInput builds an input by dealing records round-robin into
// splitCount splits homed round-robin on the cluster view's nodes.
// Contiguous runs of records stay together: records are dealt in
// chunks, not one at a time, preserving any locality in their order.
func NewInput(records []Record, c *simcluster.Cluster, splitCount int) *Input {
	if splitCount <= 0 {
		panic("mapred: splitCount must be positive")
	}
	if splitCount > len(records) && len(records) > 0 {
		splitCount = len(records)
	}
	nodes := c.Nodes()
	in := &Input{Splits: make([]Split, 0, splitCount)}
	for i := 0; i < splitCount; i++ {
		lo := i * len(records) / splitCount
		hi := (i + 1) * len(records) / splitCount
		recs := records[lo:hi]
		in.Splits = append(in.Splits, Split{
			Records: recs,
			Home:    nodes[i%len(nodes)],
			Bytes:   RecordsSize(recs),
		})
	}
	return in
}

// InputFromSplits wraps pre-assembled splits, computing their sizes.
func InputFromSplits(splits []Split) *Input {
	for i := range splits {
		if splits[i].Bytes == 0 {
			splits[i].Bytes = RecordsSize(splits[i].Records)
		}
	}
	return &Input{Splits: splits}
}

// NumRecords reports the total record count across splits.
func (in *Input) NumRecords() int64 {
	var n int64
	for _, s := range in.Splits {
		n += int64(len(s.Records))
	}
	return n
}

// TotalBytes reports the total encoded size across splits.
func (in *Input) TotalBytes() int64 {
	var n int64
	for _, s := range in.Splits {
		n += s.Bytes
	}
	return n
}

// Records returns all records in split order. The result aliases the
// splits' storage; callers must not mutate it.
func (in *Input) Records() []Record {
	out := make([]Record, 0, in.NumRecords())
	for _, s := range in.Splits {
		out = append(out, s.Records...)
	}
	return out
}

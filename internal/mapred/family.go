package mapred

import (
	"errors"
	"sync"

	"repro/internal/model"
)

// This file implements the loop-aware half of the runtime: a JobFamily
// pins persistent per-node workers for the lifetime of an IC/PIC run and
// caches each split's loop-invariant bytes plus the derived structures a
// fused kernel parses out of them (packed point arrays, graph
// adjacency). Iterations after the first then ship only the model delta
// to the workers instead of re-staging and re-parsing full inputs.
//
// The cache is observationally invisible: outputs, Metrics and traced
// spans are byte-identical to the cold path at any worker count, so all
// of its wins are real wall-clock, not simulated-time accounting tricks.
// The only new observable state is the cache.* counter family and the
// cache-warm/cache-evict point annotations, which conformance tests
// filter when comparing cold against warm runs.

// DefaultNodeCacheBytes is the default per-node budget for resident
// split bytes plus derived structures — sized like the spare heap of a
// commodity 2012 cluster node, far above any bundled workload, so
// capacity eviction only occurs when tests dial the budget down.
const DefaultNodeCacheBytes int64 = 512 << 20

// SplitDerived is a cacheable structure a fused kernel derives from a
// split's records once and reuses every iteration (parsed/packed
// records, adjacency lists). Implementations are read-only after
// construction: iterations run concurrently over them.
type SplitDerived interface {
	// SizeBytes reports the structure's resident size, charged against
	// the owning node's cache budget on top of the split bytes it was
	// derived from.
	SizeBytes() int64
}

// ErrFusedUnsupported is returned by a fused kernel that cannot handle
// the shape of a particular split or model (ragged dimensions, empty
// model). The engine then falls back to the record-at-a-time path for
// that split, which produces byte-identical output by construction.
var ErrFusedUnsupported = errors.New("mapred: fused kernel does not support this split/model shape")

// FusedMapper is the optional capability a Mapper implements to run the
// framework path's map+combine fused over a whole split. The contract is
// strict byte-identity: MapSplit must emit exactly the records the
// record-at-a-time Map → partition → Combiner pipeline would produce,
// in ascending key order, and report the pre-combine emission count and
// encoded bytes that pipeline would have charged.
type FusedMapper interface {
	Mapper
	// NewDerived parses a split's records into the cacheable form
	// MapSplit consumes. Returning nil declares the records unsuitable
	// (the engine runs that split cold and caches nothing).
	NewDerived(recs []Record) SplitDerived
	// MapSplit runs map+combine over one split. preRecords/preBytes are
	// the pre-combine emission count and encoded size the cold pipeline
	// would have produced — the engine charges map costs and
	// MapOutput counters from them.
	MapSplit(d SplitDerived, m *model.Model, emit Emitter) (preRecords, preBytes int64, err error)
}

// LocalFuser is the optional capability a Mapper implements to run
// RunLocal's map+reduce fused across all splits. par schedules f(i) for
// i in [0,n) on the engine's worker pool; implementations must confine
// cross-split floating-point accumulation to a serial pass in global
// arrival order so results stay byte-identical to the cold path at any
// worker count. mapEmits is the map-phase emission count the cold
// pipeline would have produced (it prices the reduce phase).
type LocalFuser interface {
	Mapper
	// NewDerived as in FusedMapper; nil opts the whole job out.
	NewDerived(recs []Record) SplitDerived
	FuseLocal(ds []SplitDerived, m *model.Model, par func(n int, f func(int)), emit Emitter) (mapEmits int64, err error)
}

// FamilyStats is a snapshot of a family's cache counters. Hits through
// Evictions and DeltaBytes/FullBytes are cumulative; ResidentBytes is
// the current total across nodes.
type FamilyStats struct {
	// Hits and Misses count split acquisitions served from / staged
	// into the cache.
	Hits, Misses int64
	// Evictions counts entries dropped — by capacity, node crash, or
	// release.
	Evictions int64
	// ResidentBytes is the current resident total (split bytes plus
	// derived structures) across all nodes.
	ResidentBytes int64
	// DeltaBytes accumulates the model bytes actually shipped to warm
	// workers per iteration; FullBytes accumulates the input bytes those
	// iterations did not have to re-stage. Their ratio is the loop-aware
	// runtime's traffic saving.
	DeltaBytes, FullBytes int64
}

// CacheEventKind distinguishes drained cache events.
type CacheEventKind int

// The cache event kinds.
const (
	CacheWarm CacheEventKind = iota
	CacheEvict
)

// CacheEvent is one staging or eviction a family performed since the
// last drain; the core runtime turns these into cache-warm/cache-evict
// trace annotations.
type CacheEvent struct {
	Kind CacheEventKind
	// Node is the owning node (the split's home, or -1 for in-memory
	// runs with no affinity).
	Node int
	// Records is the staged split's record count (warm events only).
	Records int
	// Bytes is the resident bytes staged or released.
	Bytes int64
}

// splitIdent identifies a split's loop-invariant content within a
// family: the identity of its record backing array (address of the
// first record plus length) and the family's iteration epoch. Two
// distinct live record slices can never collide — entries pin their
// records, so the address cannot be recycled while the entry is
// resident — and re-slicings that share a first record but differ in
// length are distinct by construction.
type splitIdent struct {
	first *Record
	n     int
	epoch uint64
}

func identOf(recs []Record, epoch uint64) splitIdent {
	if len(recs) == 0 {
		return splitIdent{nil, 0, epoch}
	}
	return splitIdent{&recs[0], len(recs), epoch}
}

// cacheEntry is one resident split: the pinned records (keeping the
// backing array live so its address stays unique), the derived
// structure, and LRU bookkeeping.
type cacheEntry struct {
	ident   splitIdent
	recs    []Record
	derived SplitDerived
	bytes   int64
	lastUse uint64
}

// familyNode is one node's share of the cache.
type familyNode struct {
	entries  map[splitIdent]*cacheEntry
	resident int64
}

// JobFamily pins persistent per-node workers across the iterations of
// an IC/PIC run and owns their invariant-input caches. All mutating
// methods are serialized by the family's mutex; the engine only calls
// acquire from its serial warm pre-pass, so eviction order, counters
// and event logs are deterministic regardless of Workers.
type JobFamily struct {
	mu      sync.Mutex
	name    string
	nodeCap int64
	epoch   uint64
	clock   uint64
	nodes   map[int]*familyNode
	stats   FamilyStats
	drained FamilyStats
	events  []CacheEvent
	// shipped holds, per job name, the model version last shipped to the
	// family's warm workers, so the next warm iteration charges only the
	// sparse delta encoding against it (model.EncodeDelta) instead of the
	// full model size.
	shipped map[string]*model.Model
}

// NewJobFamily creates a family with the given per-node cache budget
// (DefaultNodeCacheBytes if perNodeCapBytes <= 0).
func NewJobFamily(name string, perNodeCapBytes int64) *JobFamily {
	if perNodeCapBytes <= 0 {
		perNodeCapBytes = DefaultNodeCacheBytes
	}
	return &JobFamily{name: name, nodeCap: perNodeCapBytes, nodes: map[int]*familyNode{},
		shipped: map[string]*model.Model{}}
}

// Name reports the family's label.
func (f *JobFamily) Name() string { return f.name }

// Stats snapshots the cache counters.
func (f *JobFamily) Stats() FamilyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// DrainStatsDelta returns the counter increments since the previous
// drain (ResidentBytes is reported as the current value, not a delta).
func (f *JobFamily) DrainStatsDelta() FamilyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FamilyStats{
		Hits:          f.stats.Hits - f.drained.Hits,
		Misses:        f.stats.Misses - f.drained.Misses,
		Evictions:     f.stats.Evictions - f.drained.Evictions,
		ResidentBytes: f.stats.ResidentBytes,
		DeltaBytes:    f.stats.DeltaBytes - f.drained.DeltaBytes,
		FullBytes:     f.stats.FullBytes - f.drained.FullBytes,
	}
	f.drained = f.stats
	return d
}

// DrainEvents returns and clears the staged/evicted event log.
func (f *JobFamily) DrainEvents() []CacheEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	evs := f.events
	f.events = nil
	return evs
}

// NodeResident reports a node's entry count and resident bytes.
func (f *JobFamily) NodeResident(node int) (entries int, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn := f.nodes[node]
	if fn == nil {
		return 0, 0
	}
	return len(fn.entries), fn.resident
}

// acquire returns the derived structure cached for recs on node,
// building and staging it on a miss (hit reports which). A nil result
// means build declined (the split is unsuitable for fusion) and nothing
// was cached. Callers must acquire serially in split order so LRU
// stamps are deterministic.
func (f *JobFamily) acquire(node int, recs []Record, splitBytes int64, build func([]Record) SplitDerived) (d SplitDerived, hit bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ident := identOf(recs, f.epoch)
	fn := f.nodes[node]
	if fn == nil {
		fn = &familyNode{entries: map[splitIdent]*cacheEntry{}}
		f.nodes[node] = fn
	}
	f.clock++
	if e := fn.entries[ident]; e != nil {
		e.lastUse = f.clock
		f.stats.Hits++
		return e.derived, true
	}
	d = build(recs)
	if d == nil {
		return nil, false
	}
	f.stats.Misses++
	e := &cacheEntry{
		ident:   ident,
		recs:    recs,
		derived: d,
		bytes:   splitBytes + d.SizeBytes(),
		lastUse: f.clock,
	}
	fn.entries[ident] = e
	fn.resident += e.bytes
	f.stats.ResidentBytes += e.bytes
	f.events = append(f.events, CacheEvent{Kind: CacheWarm, Node: node, Records: len(recs), Bytes: e.bytes})
	f.evictOverCapLocked(node, fn, e)
	return d, false
}

// evictOverCapLocked drops least-recently-used entries (never keep,
// which was just staged) until the node fits its budget. Ties on
// lastUse cannot occur — the clock is bumped per acquisition under the
// family lock — so eviction order is fully deterministic.
func (f *JobFamily) evictOverCapLocked(node int, fn *familyNode, keep *cacheEntry) {
	for fn.resident > f.nodeCap && len(fn.entries) > 1 {
		var victim *cacheEntry
		for _, e := range fn.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		f.dropLocked(node, fn, victim)
	}
}

func (f *JobFamily) dropLocked(node int, fn *familyNode, e *cacheEntry) {
	delete(fn.entries, e.ident)
	fn.resident -= e.bytes
	f.stats.ResidentBytes -= e.bytes
	f.stats.Evictions++
	f.events = append(f.events, CacheEvent{Kind: CacheEvict, Node: node, Bytes: e.bytes})
}

// noteIteration records one warm iteration's traffic saving: deltaBytes
// of model actually shipped versus fullBytes of input not re-staged.
func (f *JobFamily) noteIteration(deltaBytes, fullBytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.DeltaBytes += deltaBytes
	f.stats.FullBytes += fullBytes
}

// shippedDelta returns the model bytes a warm iteration of job actually
// moves to the family's workers — the full model the first time (the
// workers hold nothing to patch), the sparse delta encoding against the
// previously shipped version after that — and records m as the version
// now resident on the workers. Pure accounting: it never changes what
// the simulation executes, only the cache.delta_bytes honesty.
func (f *JobFamily) shippedDelta(job string, m *model.Model) int64 {
	if m == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	prev := f.shipped[job]
	var d int64
	if prev == nil {
		d = m.Size()
	} else {
		d = model.DeltaSize(prev, m)
	}
	f.shipped[job] = m.Clone()
	return d
}

// ShippedModelBytes is the exported face of shippedDelta for
// alternative execution backends (the BSP engine): it returns the model
// bytes a delta-shipping transport would move for this job's next warm
// iteration and records m as the version now resident. Like the
// internal path, it is pure accounting — callers still price whatever
// distribution they actually execute.
func (f *JobFamily) ShippedModelBytes(job string, m *model.Model) int64 {
	return f.shippedDelta(job, m)
}

// NoteWarmIteration books one warm iteration's traffic saving into the
// family stats (cache.delta_bytes / cache.full_bytes): deltaBytes of
// model actually shipped versus fullBytes of input not re-staged.
// Exported for alternative backends; the mapred engine books its own.
func (f *JobFamily) NoteWarmIteration(deltaBytes, fullBytes int64) {
	f.noteIteration(deltaBytes, fullBytes)
}

// AcquireDerived is the exported face of acquire for tests and
// alternative backends: it returns the derived structure cached on node
// for the split identified by recs (building and staging it on a miss)
// and whether it was a cache hit.
func (f *JobFamily) AcquireDerived(node int, recs []Record, splitBytes int64, build func([]Record) SplitDerived) (SplitDerived, bool) {
	return f.acquire(node, recs, splitBytes, build)
}

// EvictNode drops every entry cached on node — the fault layer calls
// this when the node crashes, so splits re-homed to survivors re-stage
// cold there. Returns what was dropped.
func (f *JobFamily) EvictNode(node int) (entries int, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evictNodeLocked(node)
}

func (f *JobFamily) evictNodeLocked(node int) (entries int, bytes int64) {
	fn := f.nodes[node]
	if fn == nil || len(fn.entries) == 0 {
		return 0, 0
	}
	// Drop in deterministic LRU order so the event log is stable.
	for len(fn.entries) > 0 {
		var victim *cacheEntry
		for _, e := range fn.entries {
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		entries++
		bytes += victim.bytes
		f.dropLocked(node, fn, victim)
	}
	delete(f.nodes, node)
	return entries, bytes
}

// Release drops every entry on every node — the scheduler calls this
// when a job is preempted or restarted, returning the workers' memory
// to the cluster; a later resume re-warms on first touch.
func (f *JobFamily) Release() (entries int, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, node := range f.sortedNodesLocked() {
		n, b := f.evictNodeLocked(node)
		entries += n
		bytes += b
	}
	// The workers are gone, and their resident model versions with them:
	// the next warm iteration ships a full model again.
	f.shipped = map[string]*model.Model{}
	return entries, bytes
}

// Invalidate starts a new iteration epoch: all existing entries are
// released and keys minted afterwards cannot collide with prior epochs
// even if record arrays are recycled.
func (f *JobFamily) Invalidate() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, node := range f.sortedNodesLocked() {
		f.evictNodeLocked(node)
	}
	f.shipped = map[string]*model.Model{}
	f.epoch++
}

func (f *JobFamily) sortedNodesLocked() []int {
	nodes := make([]int, 0, len(f.nodes))
	for n := range f.nodes {
		nodes = append(nodes, n)
	}
	// Insertion sort: node counts are tiny and this avoids an import.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j] < nodes[j-1]; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	return nodes
}

package mapred

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simtime"
)

// RunLocal executes a job entirely in memory on the engine's cluster
// view: the same user map and reduce functions run, but intermediate
// pairs are handed over in memory rather than serialized, spilled,
// sorted and shuffled, and no job is launched on the framework.
//
// This is how the PIC library of the paper executes local iterations in
// the best-effort phase: the sub-problem's records are resident on the
// node group and the original map/reduce computation runs as a tight
// loop. Compute is charged at CostModel.LocalComputeFactor times the
// framework per-record costs (no per-record serialization and framework
// overhead), and no network traffic, model distribution, shuffle or job
// overhead is incurred. Byte counters are untouched: in-memory data is
// invisible to the cluster counters, just as it is invisible to
// Hadoop's.
func (e *Engine) RunLocal(job *Job, in *Input, m *model.Model) (*Output, Metrics, error) {
	if err := e.validateConfig(); err != nil {
		return nil, Metrics{}, err
	}
	if err := job.validate(); err != nil {
		return nil, Metrics{}, err
	}
	cost := e.cost
	if job.Cost != nil {
		if err := job.Cost.Validate(); err != nil {
			return nil, Metrics{}, fmt.Errorf("job %q: %w", job.Name, err)
		}
		cost = *job.Cost
	}
	factor := cost.LocalComputeFactor

	var metrics Metrics
	metrics.LocalJobs = 1
	metrics.InputRecords = in.NumRecords()
	metrics.LocalRecords = in.NumRecords()

	// Loop-aware fusion: with a JobFamily attached and a mapper
	// implementing LocalFuser, run map+reduce fused over the cached
	// derived structures. The kernel confines cross-split floating-point
	// accumulation to a serial pass in arrival order, so its output is
	// byte-identical to the cold map → group → reduce pipeline at any
	// worker count; any split the kernel cannot derive, or a shape it
	// rejects, sends the whole job down the cold path below.
	if e.Family != nil && job.Reducer != nil {
		if lf, ok := job.Mapper.(LocalFuser); ok {
			if out, met, handled, err := e.runLocalFused(lf, job, in, m, cost, metrics); handled {
				return out, met, err
			}
		}
	}

	nSplits := len(in.Splits)
	mapOut := make([]*listEmitter, nSplits)
	mapCosts := make([]float64, nSplits)
	errs := make([]error, nSplits)
	e.parallelFor(nSplits, func(i int) {
		split := in.Splits[i]
		em := getEmitter()
		for _, rec := range split.Records {
			if err := job.Mapper.Map(rec.Key, rec.Value, m, em); err != nil {
				errs[i] = fmt.Errorf("job %q local map %d: %w", job.Name, i, err)
				return
			}
		}
		mapOut[i] = em
		mapCosts[i] = factor * cost.MapCostPerRecord * float64(len(split.Records))
	})
	for _, err := range errs {
		if err != nil {
			return nil, Metrics{}, err
		}
	}

	tasks := make([]simcluster.Task, nSplits)
	for i := range tasks {
		tasks[i] = simcluster.Task{Cost: mapCosts[i], Preferred: in.Splits[i].Home}
	}
	_, mapMakespan := e.cluster.Schedule(tasks, e.cluster.Config().MapSlotsPerNode)
	metrics.MapPhase = mapMakespan

	// Concatenate the per-split emissions into one exactly-sized slice
	// and recycle the emitter buffers: splits are revisited every local
	// iteration, so pooled buffers turn the map phase's dominant
	// allocation into a steady-state copy.
	nMapOut := 0
	for i := range mapOut {
		nMapOut += len(mapOut[i].records)
	}
	all := make([]Record, 0, nMapOut)
	for i := range mapOut {
		all = append(all, mapOut[i].records...)
		putEmitter(mapOut[i])
	}

	if job.Reducer == nil {
		out := &Output{Records: all}
		metrics.OutputRecords = int64(len(out.Records))
		metrics.Duration = metrics.MapPhase
		e.observeLocal(metrics)
		return out, metrics, nil
	}

	// In-memory grouping and reduction: one reduce pass over all emitted
	// pairs, with key groups sharded across the real worker pool.
	outRecs, err := e.runGroupedParallel(job.Reducer, all, m)
	if err != nil {
		return nil, Metrics{}, err
	}
	reduceCost := factor * cost.ReduceCostPerValue * float64(len(all))
	slots := float64(e.cluster.MapSlots())
	metrics.ReducePhase = simtime.Duration(reduceCost / (e.cluster.Config().ComputeRate * slots))
	metrics.ReduceInputValues = int64(len(all))

	out := &Output{Records: outRecs}
	metrics.OutputRecords = int64(len(outRecs))
	metrics.Duration = metrics.MapPhase + metrics.ReducePhase
	e.observeLocal(metrics)
	return out, metrics, nil
}

// runLocalFused executes RunLocal's map+reduce through a LocalFuser
// kernel over cached derived structures. handled=false means the job
// must run cold (a split's derived form is unavailable or the kernel
// rejected the shape); the metrics and costs it produces when handled
// are identical to the cold pipeline's.
func (e *Engine) runLocalFused(lf LocalFuser, job *Job, in *Input, m *model.Model,
	cost CostModel, metrics Metrics) (*Output, Metrics, bool, error) {
	factor := cost.LocalComputeFactor
	nSplits := len(in.Splits)
	deriveds := make([]SplitDerived, nSplits)
	var warmBytes int64
	for i, split := range in.Splits {
		d, hit := e.Family.acquire(split.Home, split.Records, split.Bytes, lf.NewDerived)
		if d == nil {
			return nil, Metrics{}, false, nil
		}
		deriveds[i] = d
		if hit {
			warmBytes += split.Bytes
		}
	}

	em := &listEmitter{}
	mapEmits, err := lf.FuseLocal(deriveds, m, e.parallelFor, em)
	if err != nil {
		if errors.Is(err, ErrFusedUnsupported) {
			return nil, Metrics{}, false, nil
		}
		return nil, Metrics{}, true, fmt.Errorf("job %q local fused: %w", job.Name, err)
	}
	if warmBytes > 0 {
		e.Family.noteIteration(e.Family.shippedDelta(job.Name, m), warmBytes)
	}

	tasks := make([]simcluster.Task, nSplits)
	for i := range tasks {
		tasks[i] = simcluster.Task{
			Cost:      factor * cost.MapCostPerRecord * float64(len(in.Splits[i].Records)),
			Preferred: in.Splits[i].Home,
		}
	}
	_, mapMakespan := e.cluster.Schedule(tasks, e.cluster.Config().MapSlotsPerNode)
	metrics.MapPhase = mapMakespan

	reduceCost := factor * cost.ReduceCostPerValue * float64(mapEmits)
	slots := float64(e.cluster.MapSlots())
	metrics.ReducePhase = simtime.Duration(reduceCost / (e.cluster.Config().ComputeRate * slots))
	metrics.ReduceInputValues = mapEmits

	out := &Output{Records: em.records}
	metrics.OutputRecords = int64(len(em.records))
	metrics.Duration = metrics.MapPhase + metrics.ReducePhase
	e.observeLocal(metrics)
	return out, metrics, true, nil
}

package mapred

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/simtime"
)

// RunLocal executes a job entirely in memory on the engine's cluster
// view: the same user map and reduce functions run, but intermediate
// pairs are handed over in memory rather than serialized, spilled,
// sorted and shuffled, and no job is launched on the framework.
//
// This is how the PIC library of the paper executes local iterations in
// the best-effort phase: the sub-problem's records are resident on the
// node group and the original map/reduce computation runs as a tight
// loop. Compute is charged at CostModel.LocalComputeFactor times the
// framework per-record costs (no per-record serialization and framework
// overhead), and no network traffic, model distribution, shuffle or job
// overhead is incurred. Byte counters are untouched: in-memory data is
// invisible to the cluster counters, just as it is invisible to
// Hadoop's.
func (e *Engine) RunLocal(job *Job, in *Input, m *model.Model) (*Output, Metrics, error) {
	if err := e.validateConfig(); err != nil {
		return nil, Metrics{}, err
	}
	if err := job.validate(); err != nil {
		return nil, Metrics{}, err
	}
	cost := e.cost
	if job.Cost != nil {
		if err := job.Cost.Validate(); err != nil {
			return nil, Metrics{}, fmt.Errorf("job %q: %w", job.Name, err)
		}
		cost = *job.Cost
	}
	factor := cost.LocalComputeFactor

	var metrics Metrics
	metrics.LocalJobs = 1
	metrics.InputRecords = in.NumRecords()
	metrics.LocalRecords = in.NumRecords()

	nSplits := len(in.Splits)
	mapOut := make([]*listEmitter, nSplits)
	mapCosts := make([]float64, nSplits)
	errs := make([]error, nSplits)
	e.parallelFor(nSplits, func(i int) {
		split := in.Splits[i]
		em := getEmitter()
		for _, rec := range split.Records {
			if err := job.Mapper.Map(rec.Key, rec.Value, m, em); err != nil {
				errs[i] = fmt.Errorf("job %q local map %d: %w", job.Name, i, err)
				return
			}
		}
		mapOut[i] = em
		mapCosts[i] = factor * cost.MapCostPerRecord * float64(len(split.Records))
	})
	for _, err := range errs {
		if err != nil {
			return nil, Metrics{}, err
		}
	}

	tasks := make([]simcluster.Task, nSplits)
	for i := range tasks {
		tasks[i] = simcluster.Task{Cost: mapCosts[i], Preferred: in.Splits[i].Home}
	}
	_, mapMakespan := e.cluster.Schedule(tasks, e.cluster.Config().MapSlotsPerNode)
	metrics.MapPhase = mapMakespan

	// Concatenate the per-split emissions into one exactly-sized slice
	// and recycle the emitter buffers: splits are revisited every local
	// iteration, so pooled buffers turn the map phase's dominant
	// allocation into a steady-state copy.
	nMapOut := 0
	for i := range mapOut {
		nMapOut += len(mapOut[i].records)
	}
	all := make([]Record, 0, nMapOut)
	for i := range mapOut {
		all = append(all, mapOut[i].records...)
		putEmitter(mapOut[i])
	}

	if job.Reducer == nil {
		out := &Output{Records: all}
		metrics.OutputRecords = int64(len(out.Records))
		metrics.Duration = metrics.MapPhase
		e.observeLocal(metrics)
		return out, metrics, nil
	}

	// In-memory grouping and reduction: one reduce pass over all emitted
	// pairs, with key groups sharded across the real worker pool.
	outRecs, err := e.runGroupedParallel(job.Reducer, all, m)
	if err != nil {
		return nil, Metrics{}, err
	}
	reduceCost := factor * cost.ReduceCostPerValue * float64(len(all))
	slots := float64(e.cluster.MapSlots())
	metrics.ReducePhase = simtime.Duration(reduceCost / (e.cluster.Config().ComputeRate * slots))
	metrics.ReduceInputValues = int64(len(all))

	out := &Output{Records: outRecs}
	metrics.OutputRecords = int64(len(outRecs))
	metrics.Duration = metrics.MapPhase + metrics.ReducePhase
	e.observeLocal(metrics)
	return out, metrics, nil
}

package mapred

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/writable"
)

func TestRunLocalMatchesFrameworkResults(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "a b a", "b c", "a c c")
	framework, _, err := e.Run(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	local, _, err := e.RunLocal(wordCountJob(true), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	fc, lc := countsFromOutput(framework), countsFromOutput(local)
	if len(fc) != len(lc) {
		t.Fatalf("distinct keys differ: %d vs %d", len(fc), len(lc))
	}
	for k, v := range fc {
		if lc[k] != v {
			t.Errorf("count[%q]: framework %d, local %d", k, v, lc[k])
		}
	}
}

func TestRunLocalIsFasterAndTrafficFree(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	lines := make([]string, 8)
	for i := range lines {
		lines[i] = strings.Repeat("word ", 40)
	}
	in := textInput(c, lines...)
	before := c.Fabric().Counters()
	_, fw, err := e.Run(wordCountJob(false), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	afterFramework := c.Fabric().Counters()
	_, loc, err := e.RunLocal(wordCountJob(false), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	afterLocal := c.Fabric().Counters()

	if loc.Duration >= fw.Duration {
		t.Fatalf("local run not faster: %v vs %v", loc.Duration, fw.Duration)
	}
	if afterFramework == before {
		t.Fatal("framework run produced no traffic (test not meaningful)")
	}
	if afterLocal != afterFramework {
		t.Fatalf("local run produced network traffic: %+v -> %+v", afterFramework, afterLocal)
	}
	if loc.MapOutputBytes != 0 || loc.ShuffleBytes != 0 || loc.ModelBytes != 0 {
		t.Fatalf("local run charged byte counters: %+v", loc)
	}
	if loc.LocalJobs != 1 || fw.LocalJobs != 0 {
		t.Fatalf("LocalJobs misattributed: local=%d framework=%d", loc.LocalJobs, fw.LocalJobs)
	}
}

func TestRunLocalMapOnly(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "p q r")
	job := &Job{
		Name: "tokens",
		Mapper: MapperFunc(func(_ string, v writable.Writable, _ *model.Model, emit Emitter) error {
			for _, w := range strings.Fields(string(v.(writable.Text))) {
				emit.Emit(w, writable.Null{})
			}
			return nil
		}),
	}
	out, metrics, err := e.RunLocal(job, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 3 {
		t.Fatalf("got %d records", len(out.Records))
	}
	if metrics.ReducePhase != 0 {
		t.Fatal("map-only local run charged reduce time")
	}
}

func TestRunLocalErrorPropagates(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	in := textInput(c, "a")
	job := &Job{
		Name: "boom",
		Mapper: MapperFunc(func(string, writable.Writable, *model.Model, Emitter) error {
			return errors.New("map exploded")
		}),
	}
	if _, _, err := e.RunLocal(job, in, nil); err == nil {
		t.Fatal("local map error swallowed")
	}
}

func TestRunLocalRejectsMissingMapper(t *testing.T) {
	c := testCluster()
	e := NewEngine(c)
	if _, _, err := e.RunLocal(&Job{Name: "nil"}, textInput(c, "a"), nil); err == nil {
		t.Fatal("job without mapper accepted")
	}
}

func TestLocalComputeFactorScalesDuration(t *testing.T) {
	c := testCluster()
	in := textInput(c, "a b c d e f g h")
	run := func(factor float64) simtime.Duration {
		e := NewEngine(c)
		cm := DefaultCostModel()
		cm.LocalComputeFactor = factor
		e.SetCostModel(cm)
		_, m, err := e.RunLocal(wordCountJob(false), in, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m.Duration
	}
	fast, slow := run(0.1), run(1.0)
	if fast >= slow {
		t.Fatalf("factor did not scale duration: %v vs %v", fast, slow)
	}
}

func TestMetricsSubInvertsAdd(t *testing.T) {
	a := Metrics{Duration: 5, Jobs: 2, LocalJobs: 1, MapOutputBytes: 100, ShuffleNetworkBytes: 40, LocalRecords: 7}
	b := Metrics{Duration: 2, Jobs: 1, MapOutputBytes: 30, ShuffleNetworkBytes: 10, LocalRecords: 3}
	sum := a
	sum.Add(b)
	if got := sum.Sub(b); got != a {
		t.Fatalf("Sub(Add) != identity: %+v", got)
	}
}

func TestPartitionedModelDistributionMovesFewerBytes(t *testing.T) {
	c := testCluster()
	m := model.New()
	m.Set("big", make(writable.Vector, 1000))
	recs := make([]Record, 8)
	for i := range recs {
		recs[i] = Record{Key: string(rune('a' + i)), Value: writable.Text("x y z")}
	}
	in := NewInput(recs, c, 8)

	run := func(partitioned bool) Metrics {
		e := NewEngine(c)
		job := wordCountJob(false)
		job.PartitionedModel = partitioned
		// The mapper ignores the model; only distribution accounting
		// differs.
		_, metrics, err := e.Run(job, in, m)
		if err != nil {
			t.Fatal(err)
		}
		return metrics
	}
	broadcast := run(false)
	partitioned := run(true)
	if broadcast.ModelBytes == 0 {
		t.Fatal("broadcast moved no model bytes")
	}
	if partitioned.ModelBytes >= broadcast.ModelBytes {
		t.Fatalf("partitioned distribution (%d B) not below broadcast (%d B)",
			partitioned.ModelBytes, broadcast.ModelBytes)
	}
	// Partitioned distribution moves roughly one model's worth of bytes
	// in total (each node pulls its share), broadcast one per node.
	if partitioned.ModelBytes > m.Size()*2 {
		t.Fatalf("partitioned distribution moved %d B for a %d B model",
			partitioned.ModelBytes, m.Size())
	}
}

func TestModelSourcesSpreadDistribution(t *testing.T) {
	c := testCluster()
	m := model.New()
	m.Set("w", make(writable.Vector, 4000))
	recs := make([]Record, 4)
	for i := range recs {
		recs[i] = Record{Key: string(rune('a' + i)), Value: writable.Text("q")}
	}
	in := NewInput(recs, c, 4)

	run := func(sources int) Metrics {
		e := NewEngine(c)
		e.ModelSources = sources
		_, metrics, err := e.Run(wordCountJob(false), in, m)
		if err != nil {
			t.Fatal(err)
		}
		return metrics
	}
	one := run(1)
	three := run(3)
	// Replica nodes already hold the model, so more sources means fewer
	// bytes moved and never more time (the single source's uplink stops
	// being the bottleneck).
	if three.ModelBytes >= one.ModelBytes {
		t.Fatalf("more sources did not reduce distribution bytes: %d vs %d",
			three.ModelBytes, one.ModelBytes)
	}
	if three.ModelPhase > one.ModelPhase {
		t.Fatalf("more sources slowed distribution: %v vs %v", three.ModelPhase, one.ModelPhase)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Duration: 1.5, Jobs: 2, MapTasks: 3, InputRecords: 10, ShuffleNetworkBytes: 42}
	out := m.String()
	for _, want := range []string{"duration 1.500s", "jobs 2", "42 network"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Metrics.String missing %q:\n%s", want, out)
		}
	}
}
